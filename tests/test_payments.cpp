#include <gtest/gtest.h>

#include "common.h"
#include "mechanism/vcg.h"
#include "payments/ledger.h"
#include "payments/traffic.h"

namespace fpss {
namespace {

using payments::Ledger;
using payments::TrafficMatrix;

TEST(Traffic, UniformMatrix) {
  const auto t = TrafficMatrix::uniform(4, 3);
  EXPECT_EQ(t.at(0, 1), 3u);
  EXPECT_EQ(t.at(2, 2), 0u);  // diagonal empty
  EXPECT_EQ(t.total(), 3u * 12u);
}

TEST(Traffic, SetAndAdd) {
  TrafficMatrix t(3);
  t.set(0, 1, 5);
  t.add(0, 1, 2);
  EXPECT_EQ(t.at(0, 1), 7u);
}

TEST(TrafficDeathTest, DiagonalRejected) {
  TrafficMatrix t(3);
  EXPECT_DEATH(t.set(1, 1, 4), "precondition");
}

TEST(Traffic, GravityMeanRoughlyRight) {
  util::Rng rng(1);
  const auto t = TrafficMatrix::gravity(30, 2.0, 10, rng);
  const double mean = static_cast<double>(t.total()) / (30.0 * 29.0);
  EXPECT_GT(mean, 1.0);
  EXPECT_LT(mean, 200.0);
}

TEST(Traffic, HotspotConcentrates) {
  util::Rng rng(2);
  const auto t = TrafficMatrix::hotspot(10, 1, 4, rng);
  // Exactly one destination column is populated.
  std::size_t populated_columns = 0;
  for (NodeId j = 0; j < 10; ++j) {
    std::uint64_t col = 0;
    for (NodeId i = 0; i < 10; ++i) col += t.at(i, j);
    populated_columns += (col > 0);
  }
  EXPECT_EQ(populated_columns, 1u);
  EXPECT_EQ(t.total(), 9u * 4u);
}

TEST(Traffic, SparseDensity) {
  util::Rng rng(3);
  const auto t = TrafficMatrix::sparse_random(40, 0.1, 5, rng);
  std::size_t active = 0;
  for (NodeId i = 0; i < 40; ++i)
    for (NodeId j = 0; j < 40; ++j) active += (t.at(i, j) > 0);
  EXPECT_GT(active, 60u);
  EXPECT_LT(active, 300u);
}

TEST(Ledger, RecordsTransitCharges) {
  const auto f = graphgen::fig1();
  const mechanism::VcgMechanism mech(f.g);
  Ledger ledger(6);
  // One packet X->Z along XBDZ: D earns 3, B earns 4.
  ledger.record_packets(mech.routes().path(f.x, f.z), mech.price_fn(), 1);
  EXPECT_EQ(ledger.owed(f.d), 3);
  EXPECT_EQ(ledger.owed(f.b), 4);
  EXPECT_EQ(ledger.owed(f.a), 0);
  EXPECT_EQ(ledger.total_outstanding(), 7);
}

TEST(Ledger, PacketsMultiply) {
  const auto f = graphgen::fig1();
  const mechanism::VcgMechanism mech(f.g);
  Ledger ledger(6);
  ledger.record_packets(mech.routes().path(f.y, f.z), mech.price_fn(), 10);
  EXPECT_EQ(ledger.owed(f.d), 90);  // 10 packets x price 9
}

TEST(Ledger, SettleMovesBalances) {
  const auto f = graphgen::fig1();
  const mechanism::VcgMechanism mech(f.g);
  Ledger ledger(6);
  ledger.record_packets(mech.routes().path(f.x, f.z), mech.price_fn(), 2);
  ledger.settle();
  EXPECT_EQ(ledger.owed(f.d), 0);
  EXPECT_EQ(ledger.settled(f.d), 6);
  ledger.record_packets(mech.routes().path(f.x, f.z), mech.price_fn(), 1);
  ledger.settle();
  EXPECT_EQ(ledger.settled(f.d), 9);  // cumulative
}

TEST(Settlement, MatchesLedgerTotals) {
  const auto g = test::make_instance({"er", 14, 20, 6});
  const mechanism::VcgMechanism mech(g);
  const auto traffic = TrafficMatrix::uniform(g.node_count(), 2);
  const auto statements =
      payments::settle_traffic(g, mech.routes(), traffic, mech.price_fn());

  Ledger ledger(g.node_count());
  for (NodeId i = 0; i < g.node_count(); ++i)
    for (NodeId j = 0; j < g.node_count(); ++j)
      if (i != j && traffic.at(i, j) > 0)
        ledger.record_packets(mech.routes().path(i, j), mech.price_fn(),
                              traffic.at(i, j));
  for (NodeId k = 0; k < g.node_count(); ++k)
    EXPECT_EQ(ledger.owed(k), statements[k].revenue) << "node " << k;
}

TEST(Settlement, ProfitNonNegativeUnderTruth) {
  // VCG prices are >= declared cost on-path, so truthful nodes never lose.
  const auto g = test::make_instance({"ba", 16, 21, 7});
  const mechanism::VcgMechanism mech(g);
  const auto traffic = TrafficMatrix::uniform(g.node_count(), 1);
  const auto statements =
      payments::settle_traffic(g, mech.routes(), traffic, mech.price_fn());
  for (const auto& s : statements) EXPECT_GE(s.profit(), 0);
}

TEST(Settlement, TransitPacketCountsConsistent) {
  const auto g = test::make_instance({"ring", 8, 22, 3});
  const mechanism::VcgMechanism mech(g);
  const auto traffic = TrafficMatrix::uniform(g.node_count(), 1);
  const auto statements =
      payments::settle_traffic(g, mech.routes(), traffic, mech.price_fn());
  std::uint64_t total_transit = 0;
  for (const auto& s : statements) total_transit += s.transit_packets;
  // Each pair contributes (hops - 1) transit crossings.
  std::uint64_t expected = 0;
  for (NodeId i = 0; i < g.node_count(); ++i)
    for (NodeId j = 0; j < g.node_count(); ++j)
      if (i != j) expected += mech.routes().path(i, j).size() - 2;
  EXPECT_EQ(total_transit, expected);
}

}  // namespace
}  // namespace fpss
