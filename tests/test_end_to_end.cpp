// End-to-end system tests: the full pipeline (distributed price discovery
// -> per-packet charging at the nodes' own learned prices -> settlement)
// and a larger-scale guard instance.
#include <gtest/gtest.h>

#include "common.h"
#include "mechanism/vcg.h"
#include "payments/ledger.h"
#include "payments/traffic.h"
#include "pricing/session.h"
#include "pricing/verify.h"

namespace fpss {
namespace {

using mechanism::VcgMechanism;
using payments::TrafficMatrix;
using pricing::Protocol;
using pricing::Session;

// Sect. 6.4 end to end: every source charges with the prices *it* learned
// from the protocol (not an oracle); the resulting ledgers must equal the
// settlement the centralized mechanism would produce.
TEST(EndToEnd, DistributedPricesDriveCorrectBilling) {
  const auto g = test::make_instance({"tiered", 24, 1100, 7});
  Session session(g, Protocol::kPriceVector);
  ASSERT_TRUE(session.run().converged);

  util::Rng rng(4);
  const auto traffic =
      TrafficMatrix::sparse_random(g.node_count(), 0.4, 5, rng);

  // Charge using the sources' own views.
  payments::Ledger distributed_ledger(g.node_count());
  for (NodeId i = 0; i < g.node_count(); ++i) {
    const payments::PriceFn my_view = [&session, i](NodeId k, NodeId src,
                                                    NodeId dst) {
      (void)src;
      return session.agent(i).price(dst, k);
    };
    for (NodeId j = 0; j < g.node_count(); ++j) {
      if (i == j || traffic.at(i, j) == 0) continue;
      distributed_ledger.record_packets(session.route(i, j).path, my_view,
                                        traffic.at(i, j));
    }
  }

  // The centralized reference settlement.
  const VcgMechanism mech(g);
  const auto statements =
      payments::settle_traffic(g, mech.routes(), traffic, mech.price_fn());

  for (NodeId k = 0; k < g.node_count(); ++k) {
    EXPECT_EQ(distributed_ledger.owed(k), statements[k].revenue)
        << "node " << k << " billed differently than the mechanism demands";
  }
}

TEST(EndToEnd, LargerScaleExactness) {
  // A guard instance well above the property-test sizes: 200 ASs.
  util::Rng rng(2026);
  graphgen::TieredParams params;
  params.core_count = 8;
  params.mid_count = 50;
  params.stub_count = 142;
  graph::Graph g = graphgen::tiered_internet(params, rng);
  graphgen::assign_degree_costs(g, 1, 12);

  Session session(g, Protocol::kPriceVector);
  const auto stats = session.run();
  ASSERT_TRUE(stats.converged);
  const VcgMechanism mech(g);  // subtree engine
  const auto result = pricing::verify_against_centralized(session, mech);
  EXPECT_TRUE(result.ok) << result.first_diff;
  EXPECT_GT(result.price_entries_checked, 10000u);
}

TEST(EndToEndDeathTest, IncrementalRestartRejectedForPriceVector) {
  const auto f = graphgen::fig1();
  Session session(f.g, Protocol::kPriceVector);
  session.run();
  EXPECT_DEATH(session.change_cost(f.d, Cost{3},
                                   pricing::RestartPolicy::kIncremental),
               "precondition");
}

TEST(EndToEndDeathTest, InfinitePriceCannotBeBilled) {
  // Billing a pair whose price is undefined (monopoly) must trip the
  // contract, not silently charge garbage.
  graph::Graph g{3};  // path: node 1 is a monopoly
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.set_cost(1, Cost{2});
  const VcgMechanism mech(g);
  payments::Ledger ledger(3);
  EXPECT_DEATH(
      ledger.record_packets(mech.routes().path(0, 2), mech.price_fn(), 1),
      "precondition");
}

}  // namespace
}  // namespace fpss
