// The remote front end: fpss-wire codec fidelity (round-trips, truncation
// and corruption rejection, pre-allocation bounds), client/server loopback
// equivalence with the in-process query path, warm starts, and delta
// coalescing — the suite the CI ASan job leans on for the "malformed
// frames are rejected without allocation or crash" acceptance bar.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common.h"
#include "graphgen/fixtures.h"
#include "mechanism/vcg.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "service/protocol.h"
#include "service/service.h"
#include "service/snapshot.h"
#include "util/rng.h"

namespace fpss {
namespace {

using service::Reply;
using service::Request;
using service::RequestKind;
using service::RouteService;
using service::Status;

// --- codec round-trips -----------------------------------------------------

TEST(Wire, FrameHeaderRoundTrip) {
  const std::string frame = net::encode_frame(net::FrameType::kQueryBatch,
                                              "payload-bytes");
  ASSERT_EQ(frame.size(), net::kFrameHeaderBytes + 13);
  const auto head = net::decode_frame_header(
      std::string_view(frame).substr(0, net::kFrameHeaderBytes), {});
  ASSERT_TRUE(head.ok()) << head.error;
  EXPECT_EQ(head.header.type, net::FrameType::kQueryBatch);
  EXPECT_EQ(head.header.payload_bytes, 13u);
  EXPECT_TRUE(net::payload_checksum_ok(head.header,
                                       std::string_view(frame).substr(
                                           net::kFrameHeaderBytes)));
}

TEST(Wire, RequestBatchRoundTrip) {
  std::vector<Request> batch;
  batch.push_back({RequestKind::kCost, kInvalidNode, 0, 5});
  batch.push_back({RequestKind::kPrice, 2, 0, 5});
  batch.push_back({RequestKind::kPayment, 7, kInvalidNode, kInvalidNode});
  // An unknown kind tag must survive the codec (the service turns it into
  // a kBadKind reply; the codec is not the place to reject it).
  Request unknown;
  unknown.kind = static_cast<RequestKind>(200);
  batch.push_back(unknown);

  const std::string payload = net::encode_requests(batch);
  const auto decoded = net::decode_requests(payload, 16);
  ASSERT_TRUE(decoded.ok()) << decoded.error;
  ASSERT_EQ(decoded.requests.size(), batch.size());
  for (std::size_t q = 0; q < batch.size(); ++q)
    EXPECT_EQ(decoded.requests[q], batch[q]);
}

TEST(Wire, ReplyBatchRoundTripIncludingInfinitiesAndPaths) {
  std::vector<Reply> batch;
  Reply ok;
  ok.status = Status::kOk;
  ok.value = Cost{42};
  ok.amount = 1234567;
  ok.node = 3;
  ok.path = graph::Path{0, 3, 9, 5};
  ok.snapshot_version = 17;
  ok.published_at_ns = 1754300000000000000ull;
  ok.age_ns = 99999;
  batch.push_back(ok);

  Reply unreachable;
  unreachable.status = Status::kUnreachable;
  unreachable.value = Cost::infinity();
  unreachable.node = kInvalidNode;
  unreachable.snapshot_version = 17;
  batch.push_back(unreachable);

  Reply bad;
  bad.status = Status::kBadKind;
  batch.push_back(bad);

  const std::string payload = net::encode_replies(batch);
  const auto decoded = net::decode_replies(payload, {});
  ASSERT_TRUE(decoded.ok()) << decoded.error;
  ASSERT_EQ(decoded.replies.size(), batch.size());
  for (std::size_t q = 0; q < batch.size(); ++q) {
    EXPECT_EQ(decoded.replies[q], batch[q]);  // every field, age included
    EXPECT_TRUE(service::same_answer(decoded.replies[q], batch[q]));
  }
  EXPECT_TRUE(decoded.replies[1].value.is_infinite());
}

TEST(Wire, DeltaBatchRoundTrip) {
  std::vector<RouteService::Delta> batch;
  batch.push_back(RouteService::Delta::cost_change(4, Cost{11}));
  batch.push_back(RouteService::Delta::add_link(1, 2));
  batch.push_back(RouteService::Delta::remove_link(2, 3));
  batch.push_back(RouteService::Delta::republish());

  const std::string payload = net::encode_deltas(batch);
  const auto decoded = net::decode_deltas(payload, 16);
  ASSERT_TRUE(decoded.ok()) << decoded.error;
  ASSERT_EQ(decoded.deltas.size(), batch.size());
  for (std::size_t d = 0; d < batch.size(); ++d) {
    EXPECT_EQ(decoded.deltas[d].kind, batch[d].kind);
    EXPECT_EQ(decoded.deltas[d].u, batch[d].u);
    EXPECT_EQ(decoded.deltas[d].v, batch[d].v);
    EXPECT_EQ(decoded.deltas[d].cost, batch[d].cost);
  }
}

TEST(Wire, ControlPayloadRoundTrips) {
  net::Hello hello{net::kWireVersion, 512};
  net::Hello hello2;
  ASSERT_TRUE(net::decode_hello(net::encode_hello(hello), hello2));
  EXPECT_EQ(hello2.max_batch, 512u);

  net::HelloAck ack;
  ack.node_count = 60;
  ack.snapshot_version = 9;
  ack.max_batch = 4096;
  ack.hop_count = 3;
  net::HelloAck ack2;
  const std::string ack_payload = net::encode_hello_ack(ack);
  ASSERT_TRUE(net::decode_hello_ack(ack_payload, ack2));
  EXPECT_EQ(ack2.node_count, 60u);
  EXPECT_EQ(ack2.snapshot_version, 9u);
  EXPECT_EQ(ack2.max_batch, 4096u);
  EXPECT_EQ(ack2.hop_count, 3u);
  // A pre-chaining encoder's ack ends after max_batch; it must decode
  // with hop 0, and every other truncation must be rejected.
  ASSERT_TRUE(
      net::decode_hello_ack(ack_payload.substr(0, ack_payload.size() - 4),
                            ack2));
  EXPECT_EQ(ack2.hop_count, 0u);
  EXPECT_EQ(ack2.max_batch, 4096u);
  for (std::size_t cut = 0; cut < ack_payload.size(); ++cut) {
    if (cut == ack_payload.size() - 4) continue;
    EXPECT_FALSE(net::decode_hello_ack(ack_payload.substr(0, cut), ack2))
        << "hello-ack prefix " << cut << " accepted";
  }

  // Delta acks: both fields round-trip, and the legacy accepted-only
  // payload decodes with publish_count 0.
  net::DeltaAck delta_ack{7, 42};
  net::DeltaAck delta_ack2;
  const std::string delta_ack_payload = net::encode_delta_ack(delta_ack);
  ASSERT_TRUE(net::decode_delta_ack(delta_ack_payload, delta_ack2));
  EXPECT_EQ(delta_ack2.accepted, 7u);
  EXPECT_EQ(delta_ack2.publish_count, 42u);
  ASSERT_TRUE(net::decode_delta_ack(net::encode_u64(7), delta_ack2));
  EXPECT_EQ(delta_ack2.accepted, 7u);
  EXPECT_EQ(delta_ack2.publish_count, 0u);
  for (std::size_t cut = 0; cut < delta_ack_payload.size(); ++cut) {
    if (cut == 8) continue;
    EXPECT_FALSE(
        net::decode_delta_ack(delta_ack_payload.substr(0, cut), delta_ack2))
        << "delta-ack prefix " << cut << " accepted";
  }

  net::ErrorFrame error{net::WireStatus::kOversized, "too big"};
  net::ErrorFrame error2;
  ASSERT_TRUE(net::decode_error(net::encode_error(error), error2));
  EXPECT_EQ(error2.code, net::WireStatus::kOversized);
  EXPECT_EQ(error2.message, "too big");

  std::uint64_t value = 0;
  ASSERT_TRUE(net::decode_u64(net::encode_u64(77), value));
  EXPECT_EQ(value, 77u);

  RouteService::Counters counters;
  counters.queries = 1;
  counters.batches = 2;
  counters.total_ns = 3;
  counters.max_batch_ns = 4;
  counters.max_staleness_ns = 5;
  counters.publishes = 6;
  counters.deltas_applied = 7;
  counters.deltas_coalesced = 8;
  counters.charges = 9;
  counters.rows_rebuilt = 10;
  counters.rows_reused = 11;
  counters.shards_republished = 12;
  counters.full_rebuilds = 13;
  counters.publish_total_ns = 14;
  counters.max_publish_ns = 15;
  counters.shard_exports_inflight_max = 16;
  counters.checkpoints_written = 17;
  counters.checkpoint_bytes_written = 18;
  counters.journal_patches = 19;
  counters.journal_compactions = 30;
  net::ServerCounters server;
  server.connections = 20;
  server.frames = 21;
  server.batches = 22;
  server.rejected_frames = 23;
  server.timeouts = 24;
  server.peers.push_back({"127.0.0.1", 2, 40, 5, 1});
  server.peers.push_back({"(other)", 1, 0, 0, 3});
  net::CountersFrame frame;
  ASSERT_TRUE(
      net::decode_counters(net::encode_counters(counters, server), frame));
  EXPECT_EQ(frame.service.queries, 1u);
  EXPECT_EQ(frame.service.max_staleness_ns, 5u);
  EXPECT_EQ(frame.service.deltas_coalesced, 8u);
  EXPECT_EQ(frame.service.charges, 9u);
  EXPECT_EQ(frame.service.rows_rebuilt, 10u);
  EXPECT_EQ(frame.service.rows_reused, 11u);
  EXPECT_EQ(frame.service.shards_republished, 12u);
  EXPECT_EQ(frame.service.full_rebuilds, 13u);
  EXPECT_EQ(frame.service.publish_total_ns, 14u);
  EXPECT_EQ(frame.service.max_publish_ns, 15u);
  EXPECT_EQ(frame.service.shard_exports_inflight_max, 16u);
  EXPECT_EQ(frame.service.checkpoints_written, 17u);
  EXPECT_EQ(frame.service.checkpoint_bytes_written, 18u);
  EXPECT_EQ(frame.service.journal_patches, 19u);
  EXPECT_EQ(frame.service.journal_compactions, 30u);
  EXPECT_EQ(frame.server.connections, 20u);
  EXPECT_EQ(frame.server.timeouts, 24u);
  ASSERT_EQ(frame.server.peers.size(), 2u);
  EXPECT_EQ(frame.server.peers[0].peer, "127.0.0.1");
  EXPECT_EQ(frame.server.peers[0].queries, 40u);
  EXPECT_EQ(frame.server.peers[0].rejected_frames, 1u);
  EXPECT_EQ(frame.server.peers[1].peer, "(other)");
  EXPECT_EQ(frame.server.peers[1].connections, 1u);

  // A default ServerCounters (the single-process / no-daemon case) still
  // round-trips: empty peer table, zeroed totals.
  net::CountersFrame bare;
  ASSERT_TRUE(net::decode_counters(net::encode_counters(counters), bare));
  EXPECT_EQ(bare.service.rows_reused, 11u);
  EXPECT_EQ(bare.server.frames, 0u);
  EXPECT_TRUE(bare.server.peers.empty());
}

// --- rejection: truncation, corruption, bounds -----------------------------

TEST(Wire, EveryTruncationOfEveryPayloadIsRejected) {
  std::vector<Request> requests;
  requests.push_back({RequestKind::kCost, kInvalidNode, 0, 5});
  requests.push_back({RequestKind::kPrice, 2, 0, 5});
  std::vector<Reply> replies;
  Reply reply;
  reply.value = Cost{3};
  reply.path = graph::Path{0, 1, 5};
  replies.push_back(reply);
  replies.push_back(reply);
  std::vector<RouteService::Delta> deltas;
  deltas.push_back(RouteService::Delta::cost_change(4, Cost{11}));
  deltas.push_back(RouteService::Delta::remove_link(2, 3));

  const std::string req_payload = net::encode_requests(requests);
  for (std::size_t cut = 0; cut < req_payload.size(); ++cut)
    EXPECT_FALSE(net::decode_requests(req_payload.substr(0, cut), 16).ok())
        << "request prefix " << cut << " accepted";

  const std::string reply_payload = net::encode_replies(replies);
  for (std::size_t cut = 0; cut < reply_payload.size(); ++cut)
    EXPECT_FALSE(net::decode_replies(reply_payload.substr(0, cut), {}).ok())
        << "reply prefix " << cut << " accepted";

  const std::string delta_payload = net::encode_deltas(deltas);
  for (std::size_t cut = 0; cut < delta_payload.size(); ++cut)
    EXPECT_FALSE(net::decode_deltas(delta_payload.substr(0, cut), 16).ok())
        << "delta prefix " << cut << " accepted";

  // Headers are fixed-size: any truncation is rejected outright.
  const std::string frame = net::encode_frame(net::FrameType::kHello, "x");
  for (std::size_t cut = 0; cut < net::kFrameHeaderBytes; ++cut)
    EXPECT_FALSE(net::decode_frame_header(frame.substr(0, cut), {}).ok());
}

TEST(Wire, HeaderCorruptionIsTypedAndRejected) {
  const net::WireLimits limits;
  std::string frame = net::encode_frame(net::FrameType::kQueryBatch, "abc");
  auto header_of = [&](const std::string& f) {
    return net::decode_frame_header(
        std::string_view(f).substr(0, net::kFrameHeaderBytes), limits);
  };

  std::string bad_magic = frame;
  bad_magic[0] = 'X';
  EXPECT_EQ(header_of(bad_magic).status, net::WireStatus::kMalformed);
  EXPECT_FALSE(header_of(bad_magic).ok());

  std::string bad_version = frame;
  bad_version[4] = 9;
  EXPECT_EQ(header_of(bad_version).status,
            net::WireStatus::kUnsupportedVersion);

  std::string bad_type = frame;
  bad_type[5] = '\x66';
  EXPECT_EQ(header_of(bad_type).status, net::WireStatus::kBadFrameType);

  // A length beyond the limit is rejected from the header alone — before
  // any payload buffer could be allocated.
  std::string oversized = frame;
  const std::uint32_t huge = limits.max_payload_bytes + 1;
  std::memcpy(oversized.data() + 8, &huge, sizeof(huge));
  EXPECT_EQ(header_of(oversized).status, net::WireStatus::kOversized);

  // Corrupted payload fails the checksum.
  const auto head = header_of(frame);
  ASSERT_TRUE(head.ok());
  EXPECT_FALSE(net::payload_checksum_ok(head.header, "abd"));
  EXPECT_FALSE(net::payload_checksum_ok(head.header, "abcd"));
  EXPECT_TRUE(net::payload_checksum_ok(head.header, "abc"));
}

TEST(Wire, LyingBatchCountsAreRejectedBeforeAllocation) {
  // Payload claims 100000 requests but carries none: the exact-size check
  // fires before any reserve happens.
  std::string lying;
  lying.push_back(static_cast<char>(0xa0));
  lying.push_back(static_cast<char>(0x86));
  lying.push_back(0x01);
  lying.push_back(0x00);  // count = 100000, little-endian
  EXPECT_FALSE(net::decode_requests(lying, 4096).ok());
  EXPECT_FALSE(net::decode_deltas(lying, 4096).ok());
  EXPECT_FALSE(net::decode_replies(lying, {}).ok());

  // Batches over the negotiated limit are rejected as oversized.
  std::vector<Request> batch(5);
  const auto too_many = net::decode_requests(net::encode_requests(batch), 4);
  EXPECT_FALSE(too_many.ok());
  EXPECT_EQ(too_many.status, net::WireStatus::kOversized);
}

// --- loopback: remote equals local -----------------------------------------

struct Loopback {
  explicit Loopback(RouteService& svc, net::ServerConfig config = {})
      : server(svc, config) {
    EXPECT_TRUE(server.ok()) << server.error();
    net::ClientConfig client_config;
    client_config.port = server.port();
    client = std::make_unique<net::RouteClient>(client_config);
    EXPECT_TRUE(client->connect().ok());
  }
  net::RouteServer server;
  std::unique_ptr<net::RouteClient> client;
};

TEST(RouteServerNet, LoopbackAnswersBitIdenticalToLocalQuery) {
  const graph::Graph g = test::make_instance({"er", 20, 71, 10});
  RouteService svc(g);
  Loopback loop(svc);

  EXPECT_EQ(loop.client->server_node_count(), g.node_count());
  EXPECT_EQ(loop.client->server_snapshot_version(), svc.version());

  // Every kind, every status: valid pairs, self-pairs, bad nodes, and an
  // unknown kind tag.
  std::vector<Request> batch;
  util::Rng rng(71);
  const NodeId n = static_cast<NodeId>(g.node_count());
  for (int q = 0; q < 200; ++q) {
    Request r;
    r.kind = static_cast<RequestKind>(1 + rng.below(6));
    r.k = static_cast<NodeId>(rng.below(n));
    r.i = static_cast<NodeId>(rng.below(n));
    r.j = static_cast<NodeId>(rng.below(n));
    batch.push_back(r);
  }
  batch.push_back({RequestKind::kCost, 0, n, 2});           // bad node
  batch.push_back({RequestKind::kPrice, n, 0, 2});          // bad node
  batch.push_back({static_cast<RequestKind>(250), 0, 0, 1});  // bad kind

  const auto remote = loop.client->query(batch);
  ASSERT_TRUE(remote.ok()) << remote.error.message;
  const auto local = svc.query(batch);
  ASSERT_EQ(remote.replies.size(), local.size());
  for (std::size_t q = 0; q < local.size(); ++q) {
    EXPECT_TRUE(service::same_answer(remote.replies[q], local[q]))
        << "answer " << q << " diverged";
    EXPECT_EQ(remote.replies[q].snapshot_version, svc.version());
  }
  EXPECT_EQ(remote.replies[batch.size() - 3].status, Status::kBadNode);
  EXPECT_EQ(remote.replies[batch.size() - 1].status, Status::kBadKind);
}

TEST(RouteServerNet, PipelinedBatchesComeBackInOrder) {
  const auto f = graphgen::fig1();
  RouteService svc(f.g);
  Loopback loop(svc);

  const std::vector<Request> a{{RequestKind::kCost, kInvalidNode, f.x, f.z}};
  const std::vector<Request> b{{RequestKind::kPrice, f.d, f.x, f.z}};
  const std::vector<Request> c{{RequestKind::kPath, kInvalidNode, f.x, f.z}};
  ASSERT_TRUE(loop.client->send(a).ok());
  ASSERT_TRUE(loop.client->send(b).ok());
  ASSERT_TRUE(loop.client->send(c).ok());
  EXPECT_EQ(loop.client->outstanding(), 3u);

  const auto ra = loop.client->receive();
  const auto rb = loop.client->receive();
  const auto rc = loop.client->receive();
  ASSERT_TRUE(ra.ok() && rb.ok() && rc.ok());
  EXPECT_EQ(loop.client->outstanding(), 0u);
  EXPECT_EQ(ra.replies.front().value, Cost{3});
  EXPECT_EQ(rb.replies.front().value, Cost{3});
  EXPECT_EQ(rc.replies.front().path, (graph::Path{f.x, f.b, f.d, f.z}));
  EXPECT_FALSE(loop.client->receive().ok());  // nothing outstanding
}

TEST(RouteServerNet, RemoteDeltasCountersAndDrain) {
  const auto f = graphgen::fig1();
  RouteService svc(f.g);
  Loopback loop(svc);

  // One valid delta plus one naming a node outside the network: the server
  // accepts exactly the valid one.
  std::vector<RouteService::Delta> deltas;
  deltas.push_back(RouteService::Delta::cost_change(f.b, Cost{3}));
  deltas.push_back(RouteService::Delta::cost_change(99, Cost{1}));
  const auto accepted = loop.client->submit_deltas(deltas);
  ASSERT_TRUE(accepted.ok()) << accepted.error.message;
  EXPECT_EQ(accepted.accepted, 1u);
  // The ack's publish clock is post-drain: the write is already published.
  EXPECT_EQ(accepted.publish_count, svc.publish_count());
  EXPECT_GE(accepted.publish_count, 2u);

  const auto drained = loop.client->drain();
  ASSERT_TRUE(drained.ok());
  EXPECT_EQ(drained.value, svc.version());
  graph::Graph mutated = f.g;
  mutated.set_cost(f.b, Cost{3});
  const mechanism::VcgMechanism mech(mutated);
  EXPECT_EQ(svc.price(f.d, f.x, f.z), mech.price(f.d, f.x, f.z));
  EXPECT_EQ(svc.cost(f.x, f.z), mech.routes().cost(f.x, f.z));

  // One remote batch so the per-peer query tally below has something to
  // count.
  const std::vector<Request> probe{
      {RequestKind::kCost, kInvalidNode, f.x, f.z},
      {RequestKind::kPrice, f.d, f.x, f.z}};
  ASSERT_TRUE(loop.client->query(probe).ok());

  const auto counters = loop.client->counters();
  ASSERT_TRUE(counters.ok());
  EXPECT_EQ(counters.counters.deltas_applied, 1u);
  EXPECT_GE(counters.counters.publishes, 2u);

  // The same reply carries the daemon's per-peer accounting: everything
  // above came from this one loopback client.
  EXPECT_GE(counters.server.connections, 1u);
  ASSERT_EQ(counters.server.peers.size(), 1u);
  const net::PeerCounters& peer = counters.server.peers.front();
  EXPECT_EQ(peer.peer, "127.0.0.1");
  EXPECT_GE(peer.connections, 1u);
  EXPECT_EQ(peer.batches, 1u);
  EXPECT_EQ(peer.queries, probe.size());
  EXPECT_EQ(peer.rejected_frames, 0u);
}

TEST(RouteServerNet, MalformedAndOversizedFramesAreRejectedWithoutCrash) {
  const auto f = graphgen::fig1();
  RouteService svc(f.g);
  net::RouteServer server(svc);
  ASSERT_TRUE(server.ok());

  // Raw socket: speak deliberately broken fpss-wire at the server.
  auto dial = [&]() {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    return fd;
  };
  auto expect_error = [&](int fd, net::WireStatus code) {
    std::string head(net::kFrameHeaderBytes, '\0');
    std::size_t got = 0;
    while (got < head.size()) {
      const ssize_t n = ::recv(fd, head.data() + got, head.size() - got, 0);
      ASSERT_GT(n, 0);
      got += static_cast<std::size_t>(n);
    }
    const auto decoded = net::decode_frame_header(head, {});
    ASSERT_TRUE(decoded.ok()) << decoded.error;
    ASSERT_EQ(decoded.header.type, net::FrameType::kError);
    std::string payload(decoded.header.payload_bytes, '\0');
    got = 0;
    while (got < payload.size()) {
      const ssize_t n =
          ::recv(fd, payload.data() + got, payload.size() - got, 0);
      ASSERT_GT(n, 0);
      got += static_cast<std::size_t>(n);
    }
    net::ErrorFrame error;
    ASSERT_TRUE(net::decode_error(payload, error));
    EXPECT_EQ(error.code, code);
    // After an error frame the server closes the connection (FIN or RST;
    // either way no further byte arrives).
    char byte;
    EXPECT_LE(::recv(fd, &byte, 1, 0), 0);
  };
  auto send_all = [](int fd, std::string_view bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n =
          ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      sent += static_cast<std::size_t>(n);
    }
  };

  {  // Garbage header: rejected as malformed from 20 bytes alone.
    const int fd = dial();
    send_all(fd, std::string(net::kFrameHeaderBytes, 'Z'));
    expect_error(fd, net::WireStatus::kMalformed);
    ::close(fd);
  }
  {  // Unsupported version byte.
    const int fd = dial();
    std::string frame = net::encode_frame(net::FrameType::kHello,
                                          net::encode_hello({}));
    frame[4] = 3;
    send_all(fd, frame);
    expect_error(fd, net::WireStatus::kUnsupportedVersion);
    ::close(fd);
  }
  {  // Payload length beyond the server's limit: rejected pre-allocation.
    const int fd = dial();
    std::string frame = net::encode_frame(net::FrameType::kQueryBatch, "");
    const std::uint32_t huge = net::WireLimits{}.max_payload_bytes + 1;
    std::memcpy(frame.data() + 8, &huge, sizeof(huge));
    send_all(fd, frame);
    expect_error(fd, net::WireStatus::kOversized);
    ::close(fd);
  }
  {  // Corrupted payload: checksum mismatch.
    const int fd = dial();
    std::string frame =
        net::encode_frame(net::FrameType::kQueryBatch,
                          net::encode_requests(std::vector<Request>(1)));
    frame.back() = static_cast<char>(frame.back() ^ 0x20);
    send_all(fd, frame);
    expect_error(fd, net::WireStatus::kMalformed);
    ::close(fd);
  }
  {  // A reply-only frame type is not a valid request.
    const int fd = dial();
    send_all(fd, net::encode_frame(net::FrameType::kReplyBatch, ""));
    expect_error(fd, net::WireStatus::kBadFrameType);
    ::close(fd);
  }

  EXPECT_GE(server.stats().rejected_frames, 5u);

  // The server is still healthy: a well-formed client gets answers.
  net::ClientConfig config;
  config.port = server.port();
  net::RouteClient client(config);
  ASSERT_TRUE(client.connect().ok());
  const std::vector<Request> batch{{RequestKind::kCost, kInvalidNode, f.x, f.z}};
  const auto result = client.query(batch);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.replies.front().value, Cost{3});
}

TEST(RouteClientNet, TypedErrors) {
  net::ClientConfig config;
  config.port = 1;  // nothing listens here
  config.connect_attempts = 2;
  config.backoff_ms = 1;
  net::RouteClient client(config);

  const std::vector<Request> batch{{RequestKind::kCost, kInvalidNode, 0, 1}};
  const auto before = client.query(batch);
  EXPECT_EQ(before.error.status, net::ClientStatus::kNotConnected);

  const auto err = client.connect();
  EXPECT_EQ(err.status, net::ClientStatus::kConnectFailed);
  EXPECT_FALSE(client.connected());
}

TEST(Wire, ReplicationControlPayloadRoundTrips) {
  // Shard-version vectors (the kSnapshotFetch negotiation payload).
  const std::vector<std::uint64_t> versions = {3, 0, 7, 7, 12};
  const std::string payload = net::encode_shard_versions(versions);
  const auto decoded = net::decode_shard_versions(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.error;
  EXPECT_EQ(decoded.versions, versions);
  const auto empty = net::decode_shard_versions(net::encode_shard_versions({}));
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.versions.empty());
  for (std::size_t cut = 0; cut < payload.size(); ++cut)
    EXPECT_FALSE(net::decode_shard_versions(payload.substr(0, cut)).ok())
        << "shard-versions prefix " << cut << " accepted";

  // Publish notifies.
  net::PublishNotify notify{9, 12345, 17, 4};
  net::PublishNotify notify2;
  const std::string notify_payload = net::encode_publish_notify(notify);
  ASSERT_TRUE(net::decode_publish_notify(notify_payload, notify2));
  EXPECT_EQ(notify2.snapshot_version, 9u);
  EXPECT_EQ(notify2.published_at_ns, 12345u);
  EXPECT_EQ(notify2.publish_count, 17u);
  EXPECT_EQ(notify2.coalesced, 4u);
  for (std::size_t cut = 0; cut < notify_payload.size(); ++cut)
    EXPECT_FALSE(
        net::decode_publish_notify(notify_payload.substr(0, cut), notify2))
        << "notify prefix " << cut << " accepted";
}

TEST(Wire, CountersFrameCarriesOptionalReplicaSection) {
  RouteService::Counters counters;
  counters.queries = 5;
  net::ServerCounters server;
  server.frames = 6;
  net::ReplicaCounters replica;
  replica.full_syncs = 1;
  replica.delta_syncs = 2;
  replica.shards_fetched = 3;
  replica.chunks_fetched = 4;
  replica.bytes_fetched = 5;
  replica.blocks_adopted = 6;
  replica.notifies_received = 7;
  replica.notifies_coalesced = 8;
  replica.resyncs = 9;
  replica.sync_lag_ns = 10;
  replica.hop_count = 2;
  replica.upstream_disconnects = 11;
  replica.deltas_forwarded = 12;
  replica.forward_retries = 13;
  replica.forward_rejected = 14;

  net::CountersFrame with;
  ASSERT_TRUE(net::decode_counters(
      net::encode_counters(counters, server, &replica), with));
  ASSERT_TRUE(with.has_replica);
  EXPECT_EQ(with.replica.full_syncs, 1u);
  EXPECT_EQ(with.replica.delta_syncs, 2u);
  EXPECT_EQ(with.replica.shards_fetched, 3u);
  EXPECT_EQ(with.replica.bytes_fetched, 5u);
  EXPECT_EQ(with.replica.blocks_adopted, 6u);
  EXPECT_EQ(with.replica.notifies_coalesced, 8u);
  EXPECT_EQ(with.replica.sync_lag_ns, 10u);
  EXPECT_EQ(with.replica.hop_count, 2u);
  EXPECT_EQ(with.replica.upstream_disconnects, 11u);
  EXPECT_EQ(with.replica.deltas_forwarded, 12u);
  EXPECT_EQ(with.replica.forward_retries, 13u);
  EXPECT_EQ(with.replica.forward_rejected, 14u);

  // A primary's frame (no replica section) still decodes, as does one
  // with the presence byte explicitly zero — and a truncated replica
  // section is rejected rather than half-read. One cut is legitimate:
  // ending exactly after sync_lag_ns is the pre-chaining encoder's
  // format, which must decode with the chain fields zeroed.
  net::CountersFrame without;
  ASSERT_TRUE(
      net::decode_counters(net::encode_counters(counters, server), without));
  EXPECT_FALSE(without.has_replica);
  const std::string full = net::encode_counters(counters, server, &replica);
  const std::string bare = net::encode_counters(counters, server);
  const std::size_t legacy_end = bare.size() + 10 * 8;  // presence + 10 u64s
  for (std::size_t cut = bare.size() + 1; cut < full.size(); ++cut) {
    net::CountersFrame torn;
    if (cut == legacy_end) {
      ASSERT_TRUE(net::decode_counters(full.substr(0, cut), torn));
      EXPECT_TRUE(torn.has_replica);
      EXPECT_EQ(torn.replica.sync_lag_ns, 10u);
      EXPECT_EQ(torn.replica.hop_count, 0u);
      EXPECT_EQ(torn.replica.deltas_forwarded, 0u);
      continue;
    }
    EXPECT_FALSE(net::decode_counters(full.substr(0, cut), torn))
        << "replica-section prefix " << cut << " accepted";
  }
}

// A well-formed frame of the wrong type must surface as kUnexpectedFrame
// (the stream desynced), not kProtocolError (the bytes were garbage) —
// the satellite distinction a resyncing replica relies on.
TEST(RouteClientNet, UnexpectedFrameTypeIsTypedDistinctFromCorruption) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listener, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  const std::uint16_t port = ntohs(addr.sin_port);

  // A confused fake server: completes the handshake correctly, then
  // answers the query batch with a perfectly valid kDrainReply.
  std::thread impostor([listener] {
    const int fd = ::accept(listener, nullptr, nullptr);
    ASSERT_GE(fd, 0);
    auto read_frame = [fd]() {
      std::string head(net::kFrameHeaderBytes, '\0');
      std::size_t got = 0;
      while (got < head.size()) {
        const ssize_t n = ::recv(fd, head.data() + got, head.size() - got, 0);
        ASSERT_GT(n, 0);
        got += static_cast<std::size_t>(n);
      }
      const auto header = net::decode_frame_header(head, {});
      ASSERT_TRUE(header.ok());
      std::string payload(header.header.payload_bytes, '\0');
      got = 0;
      while (got < payload.size()) {
        const ssize_t n =
            ::recv(fd, payload.data() + got, payload.size() - got, 0);
        ASSERT_GT(n, 0);
        got += static_cast<std::size_t>(n);
      }
    };
    auto write_frame = [fd](net::FrameType type, const std::string& payload) {
      const std::string frame = net::encode_frame(type, payload);
      std::size_t sent = 0;
      while (sent < frame.size()) {
        const ssize_t n = ::send(fd, frame.data() + sent, frame.size() - sent,
                                 MSG_NOSIGNAL);
        ASSERT_GT(n, 0);
        sent += static_cast<std::size_t>(n);
      }
    };
    read_frame();  // kHello
    net::HelloAck ack;
    ack.node_count = 4;
    ack.snapshot_version = 1;
    ack.max_batch = 64;
    write_frame(net::FrameType::kHelloAck, net::encode_hello_ack(ack));
    read_frame();  // kQueryBatch
    write_frame(net::FrameType::kDrainReply, net::encode_u64(1));
    ::close(fd);
  });

  net::ClientConfig config;
  config.port = port;
  net::RouteClient client(config);
  ASSERT_TRUE(client.connect().ok());
  const std::vector<Request> batch{{RequestKind::kCost, kInvalidNode, 0, 1}};
  const auto result = client.query(batch);
  EXPECT_EQ(result.error.status, net::ClientStatus::kUnexpectedFrame);
  EXPECT_NE(result.error.status, net::ClientStatus::kProtocolError);
  EXPECT_FALSE(client.connected());  // a desynced stream is unusable

  impostor.join();
  ::close(listener);
}

TEST(RouteServerNet, GracefulStopDrainsAndRefusesNewWork) {
  const auto f = graphgen::fig1();
  RouteService svc(f.g);
  Loopback loop(svc);

  const std::vector<Request> batch{{RequestKind::kCost, kInvalidNode, f.x, f.z}};
  ASSERT_TRUE(loop.client->query(batch).ok());

  loop.server.stop();
  EXPECT_FALSE(loop.client->query(batch).ok());

  // And a fresh connection is refused outright.
  net::ClientConfig config;
  config.port = loop.server.port();
  config.connect_attempts = 1;
  net::RouteClient late(config);
  EXPECT_FALSE(late.connect().ok());
}

// --- warm start ------------------------------------------------------------

TEST(RouteServiceWarm, WarmStartServesSavedEpochThenReconverges) {
  const graph::Graph g = test::make_instance({"er", 18, 81, 9});
  RouteService cold(g);
  const auto saved_snapshot = cold.snapshot();

  // Through the persistence path, exactly as `route_server --snapshot`
  // does on a daemon restart.
  const std::string file = ::testing::TempDir() + "/fpss_warm_test.bin";
  ASSERT_TRUE(service::save_snapshot(*saved_snapshot, file).ok());
  auto loaded = service::load_snapshot(file);
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  std::remove(file.c_str());

  RouteService warm(g, std::move(loaded.snapshot));
  // Epoch 0: the saved snapshot itself, served before any convergence.
  EXPECT_EQ(warm.version(), saved_snapshot->version());
  EXPECT_EQ(warm.snapshot()->published_at_ns(),
            saved_snapshot->published_at_ns());
  EXPECT_EQ(warm.snapshot()->checksum(), saved_snapshot->checksum());

  // Warm and cold answer identically — same values, same version, same
  // publish stamp (the stamp rode through the file).
  std::vector<Request> batch;
  util::Rng rng(81);
  for (int q = 0; q < 100; ++q) {
    Request r;
    r.kind = static_cast<RequestKind>(1 + rng.below(6));
    r.k = static_cast<NodeId>(rng.below(g.node_count()));
    r.i = static_cast<NodeId>(rng.below(g.node_count()));
    r.j = static_cast<NodeId>(rng.below(g.node_count()));
    batch.push_back(r);
  }
  const auto from_cold = cold.query(batch);
  const auto from_warm = warm.query(batch);
  for (std::size_t q = 0; q < batch.size(); ++q)
    ASSERT_TRUE(service::same_answer(from_cold[q], from_warm[q]))
        << "answer " << q;

  // First delta triggers the deferred initial convergence; both services
  // must land on the same converged state.
  cold.submit(RouteService::Delta::cost_change(2, Cost{55}));
  warm.submit(RouteService::Delta::cost_change(2, Cost{55}));
  cold.drain();
  const auto warm_version = warm.drain();
  EXPECT_GT(warm_version, saved_snapshot->version());

  const auto snap_cold = cold.snapshot();
  const auto snap_warm = warm.snapshot();
  ASSERT_TRUE(snap_warm->self_check());
  for (NodeId i = 0; i < g.node_count(); ++i)
    for (NodeId j = 0; j < g.node_count(); ++j) {
      ASSERT_EQ(snap_warm->cost(i, j), snap_cold->cost(i, j));
      ASSERT_EQ(snap_warm->path(i, j), snap_cold->path(i, j));
      ASSERT_EQ(snap_warm->pair_payment(i, j), snap_cold->pair_payment(i, j));
    }
}

TEST(RouteServiceWarm, WarmStartRestoresPaymentTotals) {
  const auto f = graphgen::fig1();
  RouteService first(f.g);
  first.charge(f.x, f.z, 100);
  first.submit(RouteService::Delta::republish());
  first.drain();
  ASSERT_EQ(first.payment(f.d), 300);

  RouteService second(f.g, first.snapshot());
  // The ledger was seeded from the snapshot: totals survive the restart
  // and further charges accumulate on top.
  EXPECT_EQ(second.payment(f.d), 300);
  second.charge(f.x, f.z, 1);
  second.submit(RouteService::Delta::republish());
  second.drain();
  EXPECT_EQ(second.payment(f.d), 303);
}

// --- delta coalescing ------------------------------------------------------

TEST(RouteServiceCoalesce, BurstCoalescesToOnePublishAndSequentialState) {
  const graph::Graph g = test::make_instance({"er", 16, 91, 8});
  RouteService svc(g);
  const std::uint64_t publishes_before = svc.publish_count();

  // A burst where most deltas are superseded or net no-ops:
  //   node 2: 5 then 9            -> one effective change (9)
  //   node 3: 4 then its old cost -> net no-op, dropped entirely
  //   an absent link: add+remove  -> net no-op, dropped entirely
  //   a republish                 -> folded into the burst's publish
  const auto absent = [&] {
    for (NodeId u = 0; u < g.node_count(); ++u)
      for (NodeId v = static_cast<NodeId>(u + 1); v < g.node_count(); ++v)
        if (!g.has_edge(u, v)) return std::make_pair(u, v);
    return std::make_pair(kInvalidNode, kInvalidNode);
  }();
  ASSERT_NE(absent.first, kInvalidNode);

  std::vector<RouteService::Delta> burst;
  burst.push_back(RouteService::Delta::cost_change(2, Cost{5}));
  burst.push_back(RouteService::Delta::cost_change(3, Cost{4}));
  burst.push_back(RouteService::Delta::add_link(absent.first, absent.second));
  burst.push_back(RouteService::Delta::cost_change(2, Cost{9}));
  burst.push_back(
      RouteService::Delta::remove_link(absent.first, absent.second));
  burst.push_back(RouteService::Delta::cost_change(3, g.cost(3)));
  burst.push_back(RouteService::Delta::republish());
  ASSERT_EQ(svc.submit(burst), burst.size());
  svc.drain();

  // One burst, one publish, one reconvergence.
  EXPECT_EQ(svc.publish_count(), publishes_before + 1);
  const auto counters = svc.counters();
  EXPECT_EQ(counters.deltas_applied, burst.size());
  EXPECT_EQ(counters.deltas_coalesced, burst.size() - 1);

  // The final state is exactly the sequential application's final state.
  graph::Graph mutated = g;
  mutated.set_cost(2, Cost{9});
  RouteService reference(mutated);
  const auto got = svc.snapshot();
  const auto want = reference.snapshot();
  ASSERT_TRUE(got->self_check());
  for (NodeId i = 0; i < g.node_count(); ++i)
    for (NodeId j = 0; j < g.node_count(); ++j) {
      ASSERT_EQ(got->cost(i, j), want->cost(i, j));
      ASSERT_EQ(got->pair_payment(i, j), want->pair_payment(i, j));
    }
}

TEST(RouteServiceCoalesce, StalenessGaugeTracksServedAge) {
  const auto f = graphgen::fig1();
  RouteService svc(f.g);
  EXPECT_EQ(svc.counters().max_staleness_ns, 0u);
  svc.cost(f.x, f.z);
  const auto first = svc.counters().max_staleness_ns;
  EXPECT_GT(first, 0u);  // some nanoseconds passed since the publish
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  svc.cost(f.x, f.z);
  EXPECT_GT(svc.counters().max_staleness_ns, first);

  // Replies carry the same age the gauge saw.
  const std::vector<Request> batch{{RequestKind::kCost, kInvalidNode, f.x, f.z}};
  const auto answers = svc.query(batch);
  EXPECT_GT(answers.front().age_ns, 0u);
  EXPECT_EQ(answers.front().published_at_ns,
            svc.snapshot()->published_at_ns());
}

// --- fuzz-derived regressions ----------------------------------------------

// Hand-minimized malformed frame headers, pinned as regressions so the
// rejection behaviour the fuzz harness (fuzz/fuzz_wire.cpp) relies on
// cannot silently regress. Each input is the smallest byte string that
// reaches its rejection branch.
TEST(Wire, HandMinimizedMalformedHeadersAreRejected) {
  using namespace fpss::net;
  const WireLimits limits;

  // 1. Correct length, wrong magic: the first gate. 20 zero bytes.
  {
    const std::string zeros(kFrameHeaderBytes, '\0');
    const HeaderResult r = decode_frame_header(zeros, limits);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.find("magic"), std::string::npos);
  }

  // 2. Valid magic + version but a payload length one past the limit:
  //    must be rejected as kOversized *before* any payload allocation.
  {
    std::string header = encode_frame(FrameType::kHello, "");
    header.resize(kFrameHeaderBytes);
    const std::uint32_t lying = limits.max_payload_bytes + 1;
    std::memcpy(&header[8], &lying, sizeof(lying));  // payload_bytes field
    const HeaderResult r = decode_frame_header(header, limits);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status, WireStatus::kOversized);
  }

  // 3. Valid header whose checksum does not match the payload: the frame
  //    gate's second step. Flip one payload bit after encoding.
  {
    std::string frame = encode_frame(FrameType::kHello,
                                     encode_hello(Hello{}));
    ASSERT_GT(frame.size(), kFrameHeaderBytes);
    frame.back() = static_cast<char>(frame.back() ^ 0x01);
    const HeaderResult r =
        decode_frame_header(frame.substr(0, kFrameHeaderBytes), limits);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(
        payload_checksum_ok(r.header, frame.substr(kFrameHeaderBytes)));
  }
}

}  // namespace
}  // namespace fpss
