// Unit tests for the BGP substrate pieces below the agent level: the
// message size accounting and the Rib's ingest/reselect/withdraw logic.
#include <gtest/gtest.h>

#include "bgp/message.h"
#include "bgp/rib.h"

namespace fpss {
namespace {

using bgp::MessageSize;
using bgp::Rib;
using bgp::RouteAdvert;
using bgp::TableMessage;

RouteAdvert make_advert(NodeId from, graph::Path path,
                        std::vector<Cost::rep> costs) {
  RouteAdvert advert;
  advert.destination = path.back();
  advert.path = std::move(path);
  advert.node_costs.reserve(costs.size());
  for (Cost::rep c : costs) advert.node_costs.emplace_back(c);
  Cost total = Cost::zero();
  for (std::size_t t = 1; t + 1 < advert.path.size(); ++t)
    total += advert.node_costs[t];
  advert.cost = total;
  (void)from;
  return advert;
}

TEST(MessageSizeTest, CountsWords) {
  TableMessage msg;
  msg.sender = 0;
  msg.sender_cost = Cost{1};
  RouteAdvert advert = make_advert(0, {0, 1, 2}, {1, 2, 3});
  advert.transit_values = {{1, Cost{5}}};
  msg.entries.push_back(advert);
  const MessageSize size = measure(msg);
  EXPECT_EQ(size.entries, 1u);
  EXPECT_EQ(size.path_words, 3u);
  EXPECT_EQ(size.cost_words, 1u + 1u + 3u);  // sender + path cost + node costs
  EXPECT_EQ(size.value_words, 2u);
  EXPECT_EQ(size.total_words(), size.base_words() + 2u);
}

TEST(MessageSizeTest, AccumulateAndSubtract) {
  MessageSize a{1, 2, 3, 4};
  const MessageSize b{10, 20, 30, 40};
  a += b;
  EXPECT_EQ(a.entries, 11u);
  a -= b;
  EXPECT_EQ(a.entries, 1u);
  EXPECT_EQ(a.path_words, 2u);
}

TEST(RibTest, SelfRouteAlwaysPresent) {
  const Rib rib(2, 5, Cost{3});
  const auto& self = rib.selected(2);
  EXPECT_TRUE(self.valid());
  EXPECT_EQ(self.path, (graph::Path{2}));
  EXPECT_EQ(self.cost, Cost::zero());
  EXPECT_EQ(self.node_costs, (std::vector<Cost>{Cost{3}}));
}

TEST(RibTest, IngestAndReselect) {
  Rib rib(0, 4, Cost{1});
  // Neighbor 1 (cost 2) offers a direct route to 3.
  rib.ingest(1, Cost{2}, make_advert(1, {1, 3}, {2, 0}));
  EXPECT_TRUE(rib.reselect(3));
  const auto& route = rib.selected(3);
  EXPECT_EQ(route.path, (graph::Path{0, 1, 3}));
  EXPECT_EQ(route.cost, Cost{2});  // transit = neighbor 1 itself
  EXPECT_EQ(route.next_hop, 1u);
  EXPECT_FALSE(rib.reselect(3));  // unchanged on re-run
}

TEST(RibTest, PrefersCheaperThenFewerHopsThenLowerId) {
  Rib rib(0, 6, Cost{0});
  rib.ingest(1, Cost{5}, make_advert(1, {1, 3}, {5, 0}));
  rib.ingest(2, Cost{1}, make_advert(2, {2, 4, 3}, {1, 1, 0}));
  rib.reselect(3);
  // Via 2: transit cost 1(c2)+1(c4)=2 < via 1: 5.
  EXPECT_EQ(rib.selected(3).next_hop, 2u);

  // Equal costs: fewer hops wins.
  rib.ingest(1, Cost{2}, make_advert(1, {1, 3}, {2, 0}));
  rib.reselect(3);
  EXPECT_EQ(rib.selected(3).next_hop, 1u);

  // Equal cost and hops: lower neighbor id wins.
  rib.ingest(2, Cost{2}, make_advert(2, {2, 3}, {2, 0}));
  rib.reselect(3);
  EXPECT_EQ(rib.selected(3).next_hop, 1u);
}

TEST(RibTest, LoopPreventionRejectsOwnPath) {
  Rib rib(0, 4, Cost{1});
  // Neighbor 1 offers a path that already contains us.
  rib.ingest(1, Cost{2}, make_advert(1, {1, 0, 3}, {2, 1, 0}));
  EXPECT_FALSE(rib.reselect(3));
  EXPECT_FALSE(rib.selected(3).valid());
}

TEST(RibTest, WithdrawalRemovesRoute) {
  Rib rib(0, 4, Cost{1});
  rib.ingest(1, Cost{2}, make_advert(1, {1, 3}, {2, 0}));
  rib.reselect(3);
  ASSERT_TRUE(rib.selected(3).valid());
  RouteAdvert withdrawal;
  withdrawal.destination = 3;
  rib.ingest(1, Cost{2}, withdrawal);
  EXPECT_TRUE(rib.reselect(3));
  EXPECT_FALSE(rib.selected(3).valid());
}

TEST(RibTest, PurgeNeighborDropsItsRoutes) {
  Rib rib(0, 4, Cost{1});
  rib.ingest(1, Cost{2}, make_advert(1, {1, 3}, {2, 0}));
  rib.ingest(1, Cost{2}, make_advert(1, {1, 2}, {2, 0}));
  rib.reselect(3);
  const auto dropped = rib.purge_neighbor(1);
  EXPECT_EQ(dropped, (std::vector<NodeId>{2, 3}));
  EXPECT_TRUE(rib.reselect(3));
  EXPECT_FALSE(rib.selected(3).valid());
  EXPECT_FALSE(rib.heard_from(1));
}

TEST(RibTest, NeighborCostChangeReratesRoutes) {
  Rib rib(0, 4, Cost{0});
  rib.ingest(1, Cost{2}, make_advert(1, {1, 3}, {2, 0}));
  rib.ingest(2, Cost{3}, make_advert(2, {2, 3}, {3, 0}));
  rib.reselect(3);
  EXPECT_EQ(rib.selected(3).next_hop, 1u);
  // Neighbor 2 becomes free: note its new cost, plus its refreshed advert.
  rib.ingest(2, Cost{0}, make_advert(2, {2, 3}, {0, 0}));
  EXPECT_TRUE(rib.reselect(3));
  EXPECT_EQ(rib.selected(3).next_hop, 2u);
}

TEST(RibTest, ClearStoredValuesKeepsRoutes) {
  Rib rib(0, 4, Cost{0});
  RouteAdvert advert = make_advert(1, {1, 2, 3}, {1, 1, 0});
  advert.transit_values = {{2, Cost{9}}};
  rib.ingest(1, Cost{1}, advert);
  rib.clear_stored_values();
  const RouteAdvert* stored = rib.stored(1, 3);
  ASSERT_NE(stored, nullptr);
  EXPECT_TRUE(stored->transit_values.empty());
  EXPECT_EQ(stored->cost, Cost{1});  // routing fields intact
}

TEST(RibTest, StateWordAccounting) {
  Rib rib(0, 4, Cost{1});
  const std::size_t before = rib.selected_words();
  rib.ingest(1, Cost{2}, make_advert(1, {1, 3}, {2, 0}));
  rib.reselect(3);
  EXPECT_GT(rib.selected_words(), before);
  EXPECT_GT(rib.adj_rib_in_words(), 0u);
}

TEST(RibTest, ForceSelectInstallsAndReportsChange) {
  Rib rib(0, 4, Cost{0});
  bgp::SelectedRoute route;
  route.path = {0, 2, 3};
  route.cost = Cost{4};
  route.node_costs = {Cost{0}, Cost{4}, Cost{0}};
  route.next_hop = 2;
  EXPECT_TRUE(rib.force_select(3, route));
  EXPECT_FALSE(rib.force_select(3, route));  // idempotent
  EXPECT_EQ(rib.selected(3).path, (graph::Path{0, 2, 3}));
}

}  // namespace
}  // namespace fpss
