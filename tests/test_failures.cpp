// Failure injection: whole-AS crashes and restorations, and a randomized
// soak test interleaving every event type with periodic exact verification
// against the centralized mechanism.
#include <gtest/gtest.h>

#include "common.h"
#include "graph/analysis.h"
#include "mechanism/vcg.h"
#include "pricing/session.h"
#include "pricing/verify.h"

namespace fpss {
namespace {

using mechanism::VcgMechanism;
using pricing::Protocol;
using pricing::RestartPolicy;
using pricing::Session;

void expect_exact(const Session& session, const graph::Graph& truth,
                  const char* when) {
  const VcgMechanism mech(truth);
  const auto result = pricing::verify_against_centralized(session, mech);
  EXPECT_TRUE(result.ok) << when << ": " << result.first_diff;
}

TEST(NodeFailure, CrashPartitionsPrefixOnly) {
  // Fail a stub AS: everyone else must stay fully routed; the stub's
  // prefix must be withdrawn everywhere.
  const auto g = test::make_instance({"tiered", 24, 500, 6});
  Session session(g, Protocol::kPriceVector);
  ASSERT_TRUE(session.run().converged);

  const NodeId victim = static_cast<NodeId>(g.node_count() - 1);
  graph::Graph after = g;
  for (NodeId u :
       std::vector<NodeId>(g.neighbors(victim).begin(),
                           g.neighbors(victim).end()))
    after.remove_edge(victim, u);

  const auto failure = session.fail_node(victim, RestartPolicy::kRestartBarrier);
  ASSERT_TRUE(failure.stats.converged);
  EXPECT_EQ(failure.links.size(), g.degree(victim));

  for (NodeId i = 0; i < g.node_count(); ++i) {
    if (i == victim) continue;
    EXPECT_FALSE(session.route(i, victim).valid())
        << "AS" << i << " still routes to the dead AS";
    for (NodeId j = 0; j < g.node_count(); ++j) {
      if (j == i || j == victim) continue;
      EXPECT_TRUE(session.route(i, j).valid());
    }
  }
}

TEST(NodeFailure, CrashAndRestoreRoundTripsExactly) {
  const auto g = test::make_instance({"er", 18, 501, 7});
  Session session(g, Protocol::kPriceVector);
  ASSERT_TRUE(session.run().converged);

  // Pick a victim whose removal keeps the rest biconnected (so prices stay
  // defined for the survivors).
  NodeId victim = kInvalidNode;
  for (NodeId v = 0; v < g.node_count() && victim == kInvalidNode; ++v) {
    graph::Graph probe = g;
    for (NodeId u : std::vector<NodeId>(g.neighbors(v).begin(),
                                        g.neighbors(v).end()))
      probe.remove_edge(v, u);
    // Survivors biconnected <=> v was no articulation point and the rest
    // is still 2-connected; test directly on the survivor subgraph.
    graph::Graph survivors{g.node_count() - 1};
    auto remap = [v](NodeId x) { return x < v ? x : x - 1; };
    bool ok = true;
    for (const auto& [a, b] : probe.edges()) {
      if (a == v || b == v) {
        ok = false;
        break;
      }
      survivors.add_edge(remap(a), remap(b));
    }
    if (ok && graph::is_biconnected(survivors)) victim = v;
  }
  ASSERT_NE(victim, kInvalidNode);

  const auto failure = session.fail_node(victim, RestartPolicy::kRestartBarrier);
  const auto stats =
      session.restore_node(failure.links, RestartPolicy::kRestartBarrier);
  ASSERT_TRUE(stats.converged);
  expect_exact(session, g, "after crash+restore");
}

TEST(Soak, RandomEventSequenceStaysExact) {
  util::Rng rng(77);
  graph::Graph g = test::make_instance({"ba", 16, 502, 6});
  Session session(g, Protocol::kPriceVector);
  ASSERT_TRUE(session.run().converged);
  expect_exact(session, g, "cold start");

  for (int step = 0; step < 14; ++step) {
    const auto kind = rng.below(3);
    if (kind == 0) {
      // Cost change.
      const auto v = static_cast<NodeId>(rng.below(g.node_count()));
      const Cost c{rng.uniform_int(0, 12)};
      g.set_cost(v, c);
      ASSERT_TRUE(
          session.change_cost(v, c, RestartPolicy::kRestartBarrier).converged);
    } else if (kind == 1) {
      // Add a random missing link.
      const auto u = static_cast<NodeId>(rng.below(g.node_count()));
      const auto v = static_cast<NodeId>(rng.below(g.node_count()));
      if (u == v || g.has_edge(u, v)) continue;
      g.add_edge(u, v);
      ASSERT_TRUE(
          session.add_link(u, v, RestartPolicy::kRestartBarrier).converged);
    } else {
      // Remove a link if the graph stays biconnected.
      const auto edges = g.edges();
      const auto& [u, v] = edges[rng.below(edges.size())];
      graph::Graph probe = g;
      probe.remove_edge(u, v);
      if (!graph::is_biconnected(probe)) continue;
      g.remove_edge(u, v);
      ASSERT_TRUE(
          session.remove_link(u, v, RestartPolicy::kRestartBarrier).converged);
    }
    expect_exact(session, g, "after soak step");
  }
}

TEST(Soak, AvoidanceProtocolSurvivesTheSameGauntlet) {
  util::Rng rng(78);
  graph::Graph g = test::make_instance({"er", 14, 503, 5});
  Session session(g, Protocol::kAvoidanceVector);
  ASSERT_TRUE(session.run().converged);
  for (int step = 0; step < 10; ++step) {
    const auto v = static_cast<NodeId>(rng.below(g.node_count()));
    const Cost c{rng.uniform_int(0, 9)};
    g.set_cost(v, c);
    ASSERT_TRUE(
        session.change_cost(v, c, RestartPolicy::kRestartBarrier).converged);
    expect_exact(session, g, "avoidance soak step");
  }
}

}  // namespace
}  // namespace fpss
