#include <gtest/gtest.h>

#include "common.h"
#include "mechanism/nisan_ronen.h"
#include "mechanism/strategyproof.h"
#include "mechanism/vcg.h"
#include "mechanism/welfare.h"
#include "payments/traffic.h"

namespace fpss {
namespace {

using mechanism::VcgMechanism;
using payments::TrafficMatrix;

TEST(Feasibility, Fig1Feasible) {
  const auto report = mechanism::check_feasibility(graphgen::fig1().g);
  EXPECT_TRUE(report.feasible);
  EXPECT_TRUE(report.monopolies.empty());
}

TEST(Feasibility, PathGraphHasMonopolies) {
  const auto report = mechanism::check_feasibility(graphgen::path_graph(4));
  EXPECT_FALSE(report.feasible);
  EXPECT_EQ(report.monopolies, (std::vector<NodeId>{1, 2}));
}

TEST(Feasibility, DisconnectedInfeasible) {
  graph::Graph g{4};
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const auto report = mechanism::check_feasibility(g);
  EXPECT_FALSE(report.feasible);
  EXPECT_FALSE(report.connected);
}

// --- The Sect. 4 worked example, exactly as printed in the paper --------

TEST(Vcg, Fig1PaymentsForXtoZ) {
  const auto f = graphgen::fig1();
  const VcgMechanism mech(f.g);
  // "The LCP is XBDZ, which has transit cost 3."
  EXPECT_EQ(mech.routes().cost(f.x, f.z), Cost{3});
  // "Theorem 1 says that D should be paid c_D + [5 - 3] = 3."
  EXPECT_EQ(mech.price(f.d, f.x, f.z), Cost{3});
  // "Similarly, AS B is paid c_B + [5 - 3] = 4."
  EXPECT_EQ(mech.price(f.b, f.x, f.z), Cost{4});
  // Total payments (7) exceed the path's cost (3): overcharging.
  EXPECT_EQ(mech.pair_payment(f.x, f.z), Cost{7});
}

TEST(Vcg, Fig1PaymentsForYtoZ) {
  const auto f = graphgen::fig1();
  const VcgMechanism mech(f.g);
  // "The LCP is YDZ, which has transit cost 1 ... D's payment for this
  //  packet is 1 + [9 - 1] = 9, even though D's cost is still 1."
  EXPECT_EQ(mech.routes().cost(f.y, f.z), Cost{1});
  EXPECT_EQ(mech.price(f.d, f.y, f.z), Cost{9});
  EXPECT_EQ(mech.pair_payment(f.y, f.z), Cost{9});
}

TEST(Vcg, OffPathNodesGetZero) {
  const auto f = graphgen::fig1();
  const VcgMechanism mech(f.g);
  EXPECT_EQ(mech.price(f.a, f.x, f.z), Cost::zero());  // A not on XBDZ
  EXPECT_EQ(mech.price(f.y, f.x, f.z), Cost::zero());
  // Endpoints are never paid.
  EXPECT_EQ(mech.price(f.x, f.x, f.z), Cost::zero());
  EXPECT_EQ(mech.price(f.z, f.x, f.z), Cost::zero());
}

TEST(Vcg, EnginesAgree) {
  for (const auto& spec : test::standard_instances()) {
    const auto g = test::make_instance(spec);
    const VcgMechanism fast(g, VcgMechanism::Engine::kSubtree);
    const VcgMechanism naive(g, VcgMechanism::Engine::kNaiveGroundTruth);
    for (NodeId i = 0; i < g.node_count(); ++i) {
      for (NodeId j = 0; j < g.node_count(); ++j) {
        if (i == j) continue;
        const auto path = fast.routes().path(i, j);
        for (std::size_t t = 1; t + 1 < path.size(); ++t) {
          EXPECT_EQ(fast.price(path[t], i, j), naive.price(path[t], i, j));
        }
      }
    }
  }
}

TEST(Vcg, PriceAtLeastDeclaredCost) {
  const auto g = test::make_instance({"ba", 24, 77, 10});
  const VcgMechanism mech(g);
  for (NodeId i = 0; i < g.node_count(); ++i) {
    for (NodeId j = 0; j < g.node_count(); ++j) {
      if (i == j) continue;
      const auto path = mech.routes().path(i, j);
      for (std::size_t t = 1; t + 1 < path.size(); ++t) {
        const NodeId k = path[t];
        EXPECT_GE(mech.price(k, i, j), g.cost(k));
      }
    }
  }
}

TEST(Vcg, MonopolyPriceInfinite) {
  // Bowtie: node 2 is an articulation point between the triangles.
  graph::Graph g{5};
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 2);
  g.set_cost(2, Cost{1});
  const VcgMechanism mech(g);
  EXPECT_TRUE(mech.price(2, 0, 4).is_infinite());
}

TEST(Vcg, ZeroCostsGiveZeroPricesOnClique) {
  // On a clique with zero costs every pair routes directly: no payments.
  const auto g = graphgen::clique_graph(6);
  const VcgMechanism mech(g);
  for (NodeId i = 0; i < 6; ++i) {
    for (NodeId j = 0; j < 6; ++j) {
      if (i != j) {
        EXPECT_EQ(mech.pair_payment(i, j), Cost::zero());
      }
    }
  }
}

// --- Strategyproofness (Theorem 1) ---------------------------------------

TEST(Strategyproof, Fig1TruthIsDominantForD) {
  const auto f = graphgen::fig1();
  const auto traffic = TrafficMatrix::uniform(6, 1);
  const auto sweep = mechanism::sweep_deviations(
      f.g, f.d, traffic, mechanism::default_deviation_grid(f.g.cost(f.d)));
  EXPECT_TRUE(sweep.strategyproof())
      << "max gain " << sweep.max_gain();
  // Truthful utility is strictly positive: D profits from the premium.
  EXPECT_GT(sweep.truthful_utility, 0);
}

TEST(Strategyproof, RandomInstancesAllNodes) {
  const auto g = test::make_instance({"er", 14, 99, 6});
  const auto traffic = TrafficMatrix::uniform(g.node_count(), 1);
  for (NodeId k = 0; k < g.node_count(); ++k) {
    const auto sweep = mechanism::sweep_deviations(
        g, k, traffic, mechanism::default_deviation_grid(g.cost(k)));
    EXPECT_TRUE(sweep.strategyproof())
        << "node " << k << " gains " << sweep.max_gain() << " by lying";
  }
}

TEST(Strategyproof, SkewedTrafficStillStrategyproof) {
  const auto g = test::make_instance({"ba", 14, 100, 8});
  util::Rng rng(5);
  const auto traffic =
      TrafficMatrix::hotspot(g.node_count(), 2, 50, rng);
  for (NodeId k = 0; k < g.node_count(); ++k) {
    const auto sweep = mechanism::sweep_deviations(
        g, k, traffic, mechanism::default_deviation_grid(g.cost(k)));
    EXPECT_TRUE(sweep.strategyproof()) << "node " << k;
  }
}

TEST(Strategyproof, NoTransitTrafficNoPayment) {
  // A stub node that no LCP crosses must receive zero (the condition that
  // pins down the VCG member in Theorem 1's uniqueness proof).
  const auto g = test::make_instance({"tiered", 24, 101, 5});
  const VcgMechanism mech(g);
  const auto traffic = TrafficMatrix::uniform(g.node_count(), 1);
  const auto statements =
      payments::settle_traffic(g, mech.routes(), traffic, mech.price_fn());
  for (NodeId k = 0; k < g.node_count(); ++k) {
    if (statements[k].transit_packets == 0) {
      EXPECT_EQ(statements[k].revenue, 0);
    }
  }
}

TEST(Strategyproof, UtilityIsPaymentMinusCost) {
  const auto f = graphgen::fig1();
  const auto traffic = TrafficMatrix::uniform(6, 1);
  const VcgMechanism mech(f.g);
  const auto statements =
      payments::settle_traffic(f.g, mech.routes(), traffic, mech.price_fn());
  const Cost::rep utility =
      mechanism::node_utility(f.g, f.d, f.g.cost(f.d), traffic);
  EXPECT_EQ(utility, statements[f.d].profit());
}

// --- Welfare --------------------------------------------------------------

TEST(Welfare, TruthMinimizesTotalCost) {
  const auto g = test::make_instance({"er", 12, 102, 7});
  const auto traffic = TrafficMatrix::uniform(g.node_count(), 1);
  for (NodeId k = 0; k < g.node_count(); ++k) {
    EXPECT_GE(mechanism::welfare_loss_of_lie(g, k, Cost{0}, traffic), 0);
    EXPECT_GE(mechanism::welfare_loss_of_lie(
                  g, k, Cost{g.cost(k).value() * 10 + 3}, traffic),
              0);
  }
}

TEST(Welfare, BigLieCausesStrictLoss) {
  const auto f = graphgen::fig1();
  const auto traffic = TrafficMatrix::uniform(6, 1);
  // D pretending to cost 100 diverts traffic onto strictly worse paths.
  EXPECT_GT(mechanism::welfare_loss_of_lie(f.g, f.d, Cost{100}, traffic), 0);
}

TEST(Welfare, OverchargeFig1) {
  const auto f = graphgen::fig1();
  const VcgMechanism mech(f.g);
  TrafficMatrix traffic(6);
  traffic.set(f.y, f.z, 1);
  const auto report = mechanism::measure_overcharge(mech, traffic);
  EXPECT_EQ(report.total_payment, 9);
  EXPECT_EQ(report.total_true_cost, 1);
  EXPECT_DOUBLE_EQ(report.aggregate_ratio(), 9.0);
  EXPECT_DOUBLE_EQ(report.worst_ratio, 9.0);
}

TEST(Welfare, OverchargeAtLeastOne) {
  const auto g = test::make_instance({"ba", 20, 103, 9});
  const VcgMechanism mech(g);
  const auto traffic = TrafficMatrix::uniform(g.node_count(), 1);
  const auto report = mechanism::measure_overcharge(mech, traffic);
  EXPECT_GE(report.aggregate_ratio(), 1.0);
  EXPECT_GE(report.worst_ratio, 1.0);
}

// --- Nisan-Ronen baseline --------------------------------------------------

TEST(NisanRonen, DiamondPayments) {
  // x=0, y=3; edges: top path 0-1-3 (costs 1+1), bottom 0-2-3 (costs 2+2).
  mechanism::nr::EdgeGraph g(4);
  const auto top1 = g.add_edge(0, 1, Cost{1});
  const auto top2 = g.add_edge(1, 3, Cost{1});
  g.add_edge(0, 2, Cost{2});
  g.add_edge(2, 3, Cost{2});
  const auto result = mechanism::nr::single_pair_mechanism(g, 0, 3);
  EXPECT_EQ(result.lcp_cost, Cost{2});
  ASSERT_EQ(result.lcp_edges.size(), 2u);
  EXPECT_EQ(result.lcp_edges[0], top1);
  EXPECT_EQ(result.lcp_edges[1], top2);
  // Payment per LCP edge: d_{e=inf} - d_{e=0} = 4 - 1 = 3.
  for (const auto& p : result.payments) EXPECT_EQ(p.payment, Cost{3});
}

TEST(NisanRonen, BridgeGetsInfinitePayment) {
  mechanism::nr::EdgeGraph g(3);
  g.add_edge(0, 1, Cost{1});
  g.add_edge(1, 2, Cost{1});
  const auto result = mechanism::nr::single_pair_mechanism(g, 0, 2);
  ASSERT_EQ(result.payments.size(), 2u);
  EXPECT_TRUE(result.payments[0].payment.is_infinite());
}

TEST(NisanRonen, PaymentAtLeastDeclaredCost) {
  const auto node_graph = test::make_instance({"er", 16, 104, 5});
  const auto g = mechanism::nr::edge_twin(node_graph);
  const auto result = mechanism::nr::single_pair_mechanism(g, 0, 5);
  for (const auto& p : result.payments) {
    if (p.payment.is_finite()) {
      EXPECT_GE(p.payment, g.edge_cost(p.edge));
    }
  }
}

TEST(NisanRonen, ShortestPathCostMatchesOverride) {
  mechanism::nr::EdgeGraph g(3);
  const auto e = g.add_edge(0, 1, Cost{5});
  g.add_edge(1, 2, Cost{1});
  g.add_edge(0, 2, Cost{10});
  EXPECT_EQ(g.shortest_path_cost(0, 2), Cost{6});
  EXPECT_EQ(g.shortest_path_cost(0, 2, e, Cost::infinity()), Cost{10});
  EXPECT_EQ(g.shortest_path_cost(0, 2, e, Cost::zero()), Cost{1});
}

TEST(NisanRonen, EdgeTwinTopologyMatches) {
  const auto node_graph = test::make_instance({"ring", 8, 105, 4});
  const auto twin = mechanism::nr::edge_twin(node_graph);
  EXPECT_EQ(twin.node_count(), node_graph.node_count());
  EXPECT_EQ(twin.edge_count(), node_graph.edge_count());
}

}  // namespace
}  // namespace fpss
