#include <gtest/gtest.h>

#include "common.h"
#include "graph/path.h"
#include "policy/relationships.h"
#include "policy/simulation.h"
#include "routing/all_pairs.h"

namespace fpss {
namespace {

using policy::Relation;
using policy::Relationships;

graphgen::TieredGraph make_tiered(std::uint64_t seed, std::size_t core = 4,
                                  std::size_t mid = 10,
                                  std::size_t stub = 26) {
  util::Rng rng(seed);
  graphgen::TieredParams params;
  params.core_count = core;
  params.mid_count = mid;
  params.stub_count = stub;
  auto tiered = graphgen::tiered_internet_annotated(params, rng);
  graphgen::assign_random_costs(tiered.g, 1, 8, rng);
  return tiered;
}

TEST(Relationships, SetAndInverse) {
  Relationships rel;
  rel.set_customer(/*provider=*/0, /*customer=*/1);
  EXPECT_EQ(rel.rel(0, 1), Relation::kCustomer);
  EXPECT_EQ(rel.rel(1, 0), Relation::kProvider);
  rel.set_peer(1, 2);
  EXPECT_EQ(rel.rel(1, 2), Relation::kPeer);
  EXPECT_EQ(rel.rel(2, 1), Relation::kPeer);
  EXPECT_TRUE(rel.knows(0, 1));
  EXPECT_FALSE(rel.knows(0, 2));
}

TEST(Relationships, FromTieredCoversAllLinks) {
  const auto tiered = make_tiered(1);
  const auto rel = Relationships::from_tiered(tiered);
  for (const auto& [u, v] : tiered.g.edges()) {
    EXPECT_TRUE(rel.knows(u, v)) << u << "-" << v;
    EXPECT_TRUE(rel.knows(v, u));
  }
  EXPECT_EQ(rel.link_count(), tiered.g.edge_count());
}

TEST(Relationships, TieredHierarchyIsAcyclic) {
  const auto tiered = make_tiered(2);
  const auto rel = Relationships::from_tiered(tiered);
  EXPECT_TRUE(rel.hierarchy_is_acyclic(tiered.g.node_count()));
}

TEST(Relationships, CoreLinksArePeerings) {
  const auto tiered = make_tiered(3);
  const auto rel = Relationships::from_tiered(tiered);
  for (NodeId u = 0; u < 4; ++u)
    for (NodeId v = u + 1; v < 4; ++v)
      EXPECT_EQ(rel.rel(u, v), Relation::kPeer);
}

TEST(Relationships, ValleyFreeAcceptsUpPeerDown) {
  Relationships rel;
  // 0 and 1 are core peers; 2 is 0's customer; 3 is 1's customer.
  rel.set_peer(0, 1);
  rel.set_customer(0, 2);
  rel.set_customer(1, 3);
  EXPECT_TRUE(rel.is_valley_free({2, 0, 1, 3}));  // up, peer, down
  EXPECT_TRUE(rel.is_valley_free({2, 0}));        // up only
  EXPECT_TRUE(rel.is_valley_free({0, 2}));        // down only
}

TEST(Relationships, ValleyFreeRejectsValleysAndDoublePeering) {
  Relationships rel;
  rel.set_peer(0, 1);
  rel.set_peer(1, 4);
  rel.set_customer(0, 2);
  rel.set_customer(1, 2);
  rel.set_customer(1, 3);
  // 0 -> 2 -> 1 is a valley: provider-to-customer then customer-to-provider.
  EXPECT_FALSE(rel.is_valley_free({0, 2, 1}));
  // Two peering steps: 0 -(peer)- 1 -(peer)- 4.
  EXPECT_FALSE(rel.is_valley_free({0, 1, 4}));
  // Climbing after descending.
  EXPECT_FALSE(rel.is_valley_free({2, 1, 3, 1}));
  // Unknown link.
  EXPECT_FALSE(rel.is_valley_free({0, 3}));
}

TEST(Relationships, DegreeInferencePeersEqualDegrees) {
  const auto g = graphgen::ring_graph(6);  // all degree 2
  const auto rel = Relationships::infer_by_degree(g, 1.5);
  for (const auto& [u, v] : g.edges()) EXPECT_EQ(rel.rel(u, v), Relation::kPeer);
}

TEST(Relationships, DegreeInferenceMakesHubProvider) {
  const auto g = graphgen::wheel_graph(8);  // hub degree 7, rim degree 3
  const auto rel = Relationships::infer_by_degree(g, 1.5);
  for (NodeId v = 1; v < 8; ++v) {
    EXPECT_EQ(rel.rel(0, v), Relation::kCustomer);  // rim is hub's customer
    EXPECT_EQ(rel.rel(v, 0), Relation::kProvider);
  }
}

// --- end-to-end Gao-Rexford routing ----------------------------------------

TEST(PolicyRouting, ConvergesCompleteAndValleyFree) {
  for (std::uint64_t seed : {10u, 11u, 12u}) {
    const auto tiered = make_tiered(seed);
    const auto rel = Relationships::from_tiered(tiered);
    const auto run = policy::run_policy_routing(tiered.g, rel);
    EXPECT_TRUE(run.converged);
    EXPECT_TRUE(run.complete) << "seed " << seed;
    EXPECT_TRUE(run.valley_free) << "seed " << seed;
  }
}

TEST(PolicyRouting, StableUnderReRun) {
  const auto tiered = make_tiered(13);
  const auto rel = Relationships::from_tiered(tiered);
  bgp::Network net(tiered.g, policy::make_policy_factory(
                                 &rel, bgp::UpdatePolicy::kIncremental));
  bgp::Engine engine(net);
  ASSERT_TRUE(engine.run().converged);
  const auto again = engine.run();
  EXPECT_EQ(again.stages, 0u);  // a Gao-Rexford stable state: nothing moves
}

TEST(PolicyRouting, CustomerRoutePreferredOverCheaperProviderRoute) {
  // 0 is 1's provider; 2 is 1's customer; both can reach 3.
  //   1's route via customer 2 costs 5; via provider 0 costs 1.
  // Gao-Rexford prefers the customer route despite the cost.
  graph::Graph g{4};
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 3);
  g.add_edge(2, 3);
  g.set_cost(0, Cost{1});
  g.set_cost(2, Cost{5});
  Relationships rel;
  rel.set_customer(/*provider=*/0, /*customer=*/1);
  rel.set_customer(/*provider=*/1, /*customer=*/2);
  rel.set_customer(/*provider=*/0, /*customer=*/3);
  rel.set_customer(/*provider=*/2, /*customer=*/3);
  const auto run = policy::run_policy_routing(g, rel);
  ASSERT_TRUE(run.converged);
  EXPECT_EQ(run.paths[1][3], (graph::Path{1, 2, 3}));
}

TEST(PolicyRouting, PeerDoesNotTransitForPeer) {
  // 0-1 and 1-2 are peerings, so 0 cannot reach 2 through 1 (that would
  // make 1 carry peer-to-peer transit). 0's valley-free route descends
  // through its customer chain 0 -> 3 -> 2, even though 0-1-2 has fewer
  // transit nodes.
  graph::Graph g{4};
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 3);
  g.add_edge(3, 2);
  Relationships rel;
  rel.set_peer(0, 1);
  rel.set_peer(1, 2);
  rel.set_customer(/*provider=*/0, /*customer=*/3);
  rel.set_customer(/*provider=*/3, /*customer=*/2);
  const auto run = policy::run_policy_routing(g, rel);
  ASSERT_TRUE(run.converged);
  EXPECT_EQ(run.paths[0][2], (graph::Path{0, 3, 2}));
  EXPECT_TRUE(run.valley_free);
  // A valley 0-3-2... reversed: 2 climbs to 0 through its provider chain.
  EXPECT_EQ(run.paths[2][0], (graph::Path{2, 3, 0}));
}

TEST(PolicyRouting, StaysValleyFreeAfterLinkFailure) {
  const auto tiered = make_tiered(15);
  const auto rel = Relationships::from_tiered(tiered);
  bgp::Network net(tiered.g, policy::make_policy_factory(
                                 &rel, bgp::UpdatePolicy::kIncremental));
  bgp::Engine engine(net);
  ASSERT_TRUE(engine.run().converged);

  // Remove one stub uplink (stubs are multihomed, so routing survives).
  const auto stub = static_cast<NodeId>(tiered.g.node_count() - 1);
  const NodeId provider = tiered.g.neighbors(stub)[0];
  net.remove_link(stub, provider);
  ASSERT_TRUE(engine.run().converged);

  for (NodeId i = 0; i < tiered.g.node_count(); ++i) {
    const auto& agent =
        static_cast<const policy::PolicyBgpAgent&>(net.agent(i));
    for (NodeId j = 0; j < tiered.g.node_count(); ++j) {
      if (i == j) continue;
      const auto& route = agent.selected(j);
      if (route.valid()) {
        EXPECT_TRUE(rel.is_valley_free(route.path))
            << i << "->" << j << " violates valley-freeness after churn";
      }
    }
  }
}

TEST(PolicyRouting, FullTablePolicyAlsoConvergesValleyFree) {
  const auto tiered = make_tiered(16);
  const auto rel = Relationships::from_tiered(tiered);
  const auto run = policy::run_policy_routing(tiered.g, rel,
                                              bgp::UpdatePolicy::kFullTable);
  EXPECT_TRUE(run.converged);
  EXPECT_TRUE(run.complete);
  EXPECT_TRUE(run.valley_free);
}

TEST(PolicyRouting, PolicyPathsNeverCheaperThanLcp) {
  const auto tiered = make_tiered(14);
  const auto rel = Relationships::from_tiered(tiered);
  const auto run = policy::run_policy_routing(tiered.g, rel);
  ASSERT_TRUE(run.complete);
  const routing::AllPairsRoutes lcp(tiered.g);
  std::size_t strictly_worse = 0;
  for (NodeId i = 0; i < tiered.g.node_count(); ++i) {
    for (NodeId j = 0; j < tiered.g.node_count(); ++j) {
      if (i == j) continue;
      const Cost policy_cost = graph::transit_cost(tiered.g, run.paths[i][j]);
      EXPECT_GE(policy_cost, lcp.cost(i, j));
      strictly_worse += policy_cost > lcp.cost(i, j);
    }
  }
  // Policy constraints genuinely bite on some pairs (footnote 2: many ASs
  // do not route on lowest cost).
  EXPECT_GT(strictly_worse, 0u);
}

}  // namespace
}  // namespace fpss
