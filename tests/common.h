// Shared helpers for the test suites: randomized biconnected instances and
// convenience assertions.
#pragma once

#include <vector>

#include "graph/analysis.h"
#include "graph/graph.h"
#include "graphgen/costs.h"
#include "graphgen/fixtures.h"
#include "graphgen/random.h"
#include "util/rng.h"

namespace fpss::test {

/// A labelled random biconnected graph family for parameterized suites.
struct InstanceSpec {
  const char* family;
  std::size_t n;
  std::uint64_t seed;
  Cost::rep max_cost;
};

inline graph::Graph make_instance(const InstanceSpec& spec) {
  util::Rng rng(spec.seed);
  graph::Graph g{3};
  const std::string family = spec.family;
  if (family == "er") {
    g = graphgen::erdos_renyi(spec.n, 3.0 / static_cast<double>(spec.n), rng);
    graphgen::make_biconnected(g, rng);
  } else if (family == "ba") {
    g = graphgen::barabasi_albert(spec.n, 2, rng);
    graphgen::make_biconnected(g, rng);
  } else if (family == "tiered") {
    graphgen::TieredParams params;
    params.core_count = 4;
    params.mid_count = spec.n / 4;
    params.stub_count = spec.n - params.core_count - params.mid_count;
    g = graphgen::tiered_internet(params, rng);
  } else if (family == "ring") {
    g = graphgen::ring_graph(spec.n);
  } else if (family == "grid") {
    g = graphgen::grid_graph(spec.n / 4, 4);
  } else if (family == "wheel") {
    g = graphgen::wheel_graph(spec.n);
  } else if (family == "clique") {
    g = graphgen::clique_graph(spec.n);
  } else if (family == "waxman") {
    g = graphgen::waxman(spec.n, 0.9, 0.4, rng);
    graphgen::make_biconnected(g, rng);
  } else if (family == "bipartite") {
    g = graphgen::complete_bipartite(spec.n / 3, spec.n - spec.n / 3);
  } else if (family == "hub") {
    g = graphgen::hub_adversarial(spec.n);
  }
  if (family == "pareto-er") {
    g = graphgen::erdos_renyi(spec.n, 3.5 / static_cast<double>(spec.n), rng);
    graphgen::make_biconnected(g, rng);
    graphgen::assign_pareto_costs(g, 1.2, spec.max_cost, rng);
  } else {
    graphgen::assign_random_costs(g, 0, spec.max_cost, rng);
  }
  return g;
}

inline std::vector<InstanceSpec> standard_instances() {
  return {
      {"er", 16, 1, 10},       {"er", 24, 2, 5},      {"er", 32, 3, 20},
      {"ba", 16, 4, 10},       {"ba", 24, 5, 1},      {"ba", 40, 6, 12},
      {"tiered", 24, 7, 9},    {"tiered", 36, 8, 6},  {"ring", 11, 9, 7},
      {"grid", 24, 10, 5},     {"wheel", 13, 11, 8},  {"clique", 9, 12, 15},
      {"er", 20, 13, 0},       {"ba", 20, 14, 3},     {"ring", 8, 15, 2},
      {"waxman", 24, 16, 9},   {"waxman", 36, 17, 4}, {"bipartite", 12, 18, 7},
      {"hub", 14, 19, 10},     {"pareto-er", 28, 20, 60},
      {"er", 48, 21, 1000000}, {"tiered", 48, 22, 7}, {"ba", 48, 23, 15},
      {"grid", 36, 24, 11},    {"ring", 17, 25, 5},
  };
}

}  // namespace fpss::test
