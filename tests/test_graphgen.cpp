#include <gtest/gtest.h>

#include "graph/analysis.h"
#include "graphgen/costs.h"
#include "graphgen/fixtures.h"
#include "graphgen/random.h"

namespace fpss {
namespace {

TEST(Fixtures, Fig1MatchesPaper) {
  const auto f = graphgen::fig1();
  EXPECT_EQ(f.g.node_count(), 6u);
  EXPECT_EQ(f.g.edge_count(), 7u);
  EXPECT_EQ(f.g.cost(f.a), Cost{5});
  EXPECT_EQ(f.g.cost(f.b), Cost{2});
  EXPECT_EQ(f.g.cost(f.d), Cost{1});
  EXPECT_EQ(f.g.cost(f.x), Cost{2});
  EXPECT_EQ(f.g.cost(f.y), Cost{3});
  EXPECT_EQ(f.g.cost(f.z), Cost{4});
  EXPECT_TRUE(f.g.has_edge(f.x, f.a));
  EXPECT_TRUE(f.g.has_edge(f.a, f.z));
  EXPECT_TRUE(f.g.has_edge(f.x, f.b));
  EXPECT_TRUE(f.g.has_edge(f.b, f.d));
  EXPECT_TRUE(f.g.has_edge(f.d, f.z));
  EXPECT_TRUE(f.g.has_edge(f.y, f.d));
  EXPECT_TRUE(f.g.has_edge(f.y, f.b));
}

TEST(Fixtures, RingGridWheelShapes) {
  EXPECT_EQ(graphgen::ring_graph(7).edge_count(), 7u);
  EXPECT_EQ(graphgen::grid_graph(3, 4).edge_count(), 17u);
  EXPECT_EQ(graphgen::wheel_graph(7).edge_count(), 12u);
  EXPECT_EQ(graphgen::clique_graph(6).edge_count(), 15u);
  EXPECT_EQ(graphgen::complete_bipartite(2, 3).edge_count(), 6u);
}

TEST(Fixtures, HubAdversarialShape) {
  const auto g = graphgen::hub_adversarial(10, 7);
  EXPECT_TRUE(graph::is_biconnected(g));
  EXPECT_EQ(g.cost(0), Cost::zero());
  for (NodeId v = 1; v < 10; ++v) EXPECT_EQ(g.cost(v), Cost{7});
  EXPECT_EQ(g.degree(0), 9u);
}

TEST(Random, ErdosRenyiDensity) {
  util::Rng rng(1);
  const auto g = graphgen::erdos_renyi(50, 0.2, rng);
  const double expected = 0.2 * 50 * 49 / 2;
  EXPECT_NEAR(static_cast<double>(g.edge_count()), expected, expected * 0.4);
}

TEST(Random, ErdosRenyiExtremes) {
  util::Rng rng(2);
  EXPECT_EQ(graphgen::erdos_renyi(10, 0.0, rng).edge_count(), 0u);
  EXPECT_EQ(graphgen::erdos_renyi(10, 1.0, rng).edge_count(), 45u);
}

TEST(Random, BarabasiAlbertEdgeCount) {
  util::Rng rng(3);
  const auto g = graphgen::barabasi_albert(60, 2, rng);
  // 3-clique seed + 2 per additional node.
  EXPECT_EQ(g.edge_count(), 3u + 2u * 57u);
  EXPECT_TRUE(graph::is_connected(g));
}

TEST(Random, BarabasiAlbertSkewedDegrees) {
  util::Rng rng(4);
  const auto g = graphgen::barabasi_albert(300, 2, rng);
  const auto stats = graph::degree_stats(g);
  // Preferential attachment should produce hubs far above the mean.
  EXPECT_GT(static_cast<double>(stats.max), 4 * stats.mean);
}

TEST(Random, WaxmanConnectsSomething) {
  util::Rng rng(5);
  const auto g = graphgen::waxman(60, 0.9, 0.5, rng);
  EXPECT_GT(g.edge_count(), 60u);
}

TEST(Random, MakeBiconnectedRepairsPath) {
  util::Rng rng(6);
  auto g = graphgen::path_graph(12);
  const std::size_t added = graphgen::make_biconnected(g, rng);
  EXPECT_GT(added, 0u);
  EXPECT_TRUE(graph::is_biconnected(g));
}

TEST(Random, MakeBiconnectedRepairsDisconnected) {
  util::Rng rng(7);
  graph::Graph g{9};  // three disjoint triangles
  for (NodeId base : {NodeId{0}, NodeId{3}, NodeId{6}}) {
    g.add_edge(base, base + 1);
    g.add_edge(base + 1, base + 2);
    g.add_edge(base + 2, base);
  }
  graphgen::make_biconnected(g, rng);
  EXPECT_TRUE(graph::is_biconnected(g));
}

TEST(Random, MakeBiconnectedNoopOnRing) {
  util::Rng rng(8);
  auto g = graphgen::ring_graph(9);
  EXPECT_EQ(graphgen::make_biconnected(g, rng), 0u);
}

TEST(Random, TieredInternetIsBiconnected) {
  util::Rng rng(9);
  graphgen::TieredParams params;
  const auto g = graphgen::tiered_internet(params, rng);
  EXPECT_EQ(g.node_count(),
            params.core_count + params.mid_count + params.stub_count);
  EXPECT_TRUE(graph::is_biconnected(g));
}

TEST(Random, TieredInternetCoreIsMeshed) {
  util::Rng rng(10);
  graphgen::TieredParams params;
  const auto g = graphgen::tiered_internet(params, rng);
  for (NodeId u = 0; u < params.core_count; ++u)
    for (NodeId v = u + 1; v < params.core_count; ++v)
      EXPECT_TRUE(g.has_edge(u, v));
}

TEST(Costs, UniformAssignment) {
  auto g = graphgen::ring_graph(5);
  graphgen::assign_uniform_cost(g, Cost{6});
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(g.cost(v), Cost{6});
}

TEST(Costs, RandomAssignmentInRange) {
  util::Rng rng(11);
  auto g = graphgen::ring_graph(40);
  graphgen::assign_random_costs(g, 2, 9, rng);
  for (NodeId v = 0; v < 40; ++v) {
    EXPECT_GE(g.cost(v).value(), 2);
    EXPECT_LE(g.cost(v).value(), 9);
  }
}

TEST(Costs, ParetoAssignmentBounds) {
  util::Rng rng(12);
  auto g = graphgen::ring_graph(100);
  graphgen::assign_pareto_costs(g, 1.1, 50, rng);
  for (NodeId v = 0; v < 100; ++v) {
    EXPECT_GE(g.cost(v).value(), 1);
    EXPECT_LE(g.cost(v).value(), 50);
  }
}

TEST(Costs, DegreeCostsInverseToDegree) {
  auto g = graphgen::wheel_graph(8);
  graphgen::assign_degree_costs(g, 1, 10);
  // Hub (max degree) gets the low cost, rim nodes more.
  EXPECT_EQ(g.cost(0), Cost{1});
  for (NodeId v = 1; v < 8; ++v) EXPECT_GT(g.cost(v), g.cost(0));
}

TEST(Random, GeneratorsAreDeterministic) {
  util::Rng rng1(13), rng2(13);
  const auto a = graphgen::barabasi_albert(40, 2, rng1);
  const auto b = graphgen::barabasi_albert(40, 2, rng2);
  EXPECT_EQ(a.edges(), b.edges());
}

}  // namespace
}  // namespace fpss
