#include <gtest/gtest.h>

#include <algorithm>

#include "audit/audit.h"
#include "audit/cheating_agent.h"
#include "common.h"
#include "pricing/session.h"

namespace fpss {
namespace {

using audit::CheatMode;
using audit::ViolationKind;
using pricing::Session;

Session run_with_cheater(const graph::Graph& g, NodeId cheater,
                         CheatMode mode) {
  Session session(g, audit::make_cheating_factory(
                         cheater, mode, bgp::UpdatePolicy::kIncremental));
  // A deviant implementation can keep the network noisy; cap the stages.
  session.engine().run(500);
  return session;
}

/// A transit-heavy node (so its adverts actually matter).
NodeId busiest_node(const graph::Graph& g) {
  NodeId best = 0;
  for (NodeId v = 0; v < g.node_count(); ++v)
    if (g.degree(v) > g.degree(best)) best = v;
  return best;
}

TEST(Audit, HonestNetworkIsClean) {
  for (const char* family : {"er", "ba", "tiered"}) {
    const auto g = test::make_instance({family, 20, 301, 7});
    Session session(g, pricing::Protocol::kPriceVector);
    ASSERT_TRUE(session.run().converged);
    const auto violations = audit::audit_network(session);
    EXPECT_TRUE(violations.empty())
        << family << ": " << violations.size() << " violations, first: "
        << violations.front().detail;
  }
}

TEST(Audit, HonestAvoidanceNetworkPassesStructuralChecks) {
  // The avoidance protocol advertises B-values, not prices, so only the
  // price checks are protocol-specific; structural checks (A/A') must
  // still pass. Audit is defined for the price protocol; here we verify
  // the structural half on the price protocol with full tables.
  const auto g = test::make_instance({"ba", 18, 302, 5});
  Session session(g, pricing::Protocol::kPriceVector,
                  bgp::UpdatePolicy::kFullTable);
  ASSERT_TRUE(session.run().converged);
  EXPECT_TRUE(audit::audit_network(session).empty());
}

TEST(Audit, DeflaterIsCaughtByNeighbors) {
  const auto g = test::make_instance({"er", 18, 303, 6});
  const NodeId cheater = busiest_node(g);
  Session session = run_with_cheater(g, cheater, CheatMode::kDeflatePrices);
  const auto violations = audit::audit_network(session);
  ASSERT_FALSE(violations.empty());
  const auto flagged = audit::suspects(violations);
  EXPECT_TRUE(std::find(flagged.begin(), flagged.end(), cheater) !=
              flagged.end());
  // Deflation shows up as prices below declared cost.
  const bool below_cost = std::any_of(
      violations.begin(), violations.end(), [&](const audit::Violation& v) {
        return v.suspect == cheater &&
               v.kind == ViolationKind::kPriceBelowCost;
      });
  EXPECT_TRUE(below_cost);
}

TEST(Audit, InflaterIsCaughtByNeighbors) {
  const auto g = test::make_instance({"ba", 18, 304, 6});
  const NodeId cheater = busiest_node(g);
  Session session = run_with_cheater(g, cheater, CheatMode::kInflatePrices);
  const auto violations = audit::audit_network(session);
  const auto flagged = audit::suspects(violations);
  ASSERT_TRUE(std::find(flagged.begin(), flagged.end(), cheater) !=
              flagged.end());
  const bool above_bound = std::any_of(
      violations.begin(), violations.end(), [&](const audit::Violation& v) {
        return v.suspect == cheater &&
               v.kind == ViolationKind::kPriceAboveBound;
      });
  EXPECT_TRUE(above_bound);
}

TEST(Audit, CostPadderIsCaughtArithmetically) {
  const auto g = test::make_instance({"tiered", 24, 305, 5});
  const NodeId cheater = busiest_node(g);
  Session session = run_with_cheater(g, cheater, CheatMode::kPadPathCost);
  const auto violations = audit::audit_network(session);
  const bool mismatch = std::any_of(
      violations.begin(), violations.end(), [&](const audit::Violation& v) {
        return v.suspect == cheater &&
               v.kind == ViolationKind::kCostSumMismatch;
      });
  EXPECT_TRUE(mismatch);
}

TEST(Audit, InflationFlagsASmallSuspectSetContainingTheCheater) {
  // Inflated values survive an honest min-update only where the cheater
  // sits on the sole avoidance chain, so taint is possible but limited;
  // the flagged set stays a small neighborhood around the real deviant.
  const auto g = test::make_instance({"er", 16, 306, 6});
  const NodeId cheater = busiest_node(g);
  Session session = run_with_cheater(g, cheater, CheatMode::kInflatePrices);
  const auto flagged = audit::suspects(audit::audit_network(session));
  ASSERT_FALSE(flagged.empty());
  EXPECT_TRUE(std::find(flagged.begin(), flagged.end(), cheater) !=
              flagged.end());
  EXPECT_LE(flagged.size(), g.node_count() / 2);
}

TEST(Audit, DeflationTaintPropagatesThroughHonestNodes) {
  // Zeroed prices flow into honest nodes' min-updates, so the honest
  // victims end up re-advertising below-cost prices themselves: the audit
  // detects the anomaly network-wide but origin attribution needs more
  // than local checks — the residual open problem.
  const auto g = test::make_instance({"er", 16, 306, 6});
  const NodeId cheater = busiest_node(g);
  Session session = run_with_cheater(g, cheater, CheatMode::kDeflatePrices);
  const auto flagged = audit::suspects(audit::audit_network(session));
  EXPECT_TRUE(std::find(flagged.begin(), flagged.end(), cheater) !=
              flagged.end());
  EXPECT_GT(flagged.size(), 1u);  // the taint spread
}

TEST(Audit, ViolationKindNames) {
  EXPECT_STREQ(audit::to_string(ViolationKind::kCostSumMismatch),
               "cost-sum-mismatch");
  EXPECT_STREQ(audit::to_string(ViolationKind::kPriceBelowCost),
               "price-below-cost");
  EXPECT_STREQ(audit::to_string(ViolationKind::kPriceAboveBound),
               "price-above-bound");
  EXPECT_STREQ(audit::to_string(ViolationKind::kNodeCostDisagreement),
               "node-cost-disagreement");
  EXPECT_STREQ(audit::to_string(CheatMode::kInflatePrices),
               "inflate-prices");
}

}  // namespace
}  // namespace fpss
