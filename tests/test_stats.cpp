#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "stats/experiment.h"

namespace fpss {
namespace {

TEST(Experiment, AllHoldWhenEveryClaimPasses) {
  stats::Experiment exp("T1", "test experiment");
  exp.claim("claim one", "measured one", true);
  exp.claim("claim two", "measured two", true);
  EXPECT_TRUE(exp.all_hold());
  EXPECT_EQ(exp.claim_count(), 2u);
}

TEST(Experiment, OneFailureFlips) {
  stats::Experiment exp("T2", "test");
  exp.claim("good", "yes", true);
  exp.claim("bad", "no", false);
  EXPECT_FALSE(exp.all_hold());
}

TEST(Experiment, EmptyExperimentHolds) {
  const stats::Experiment exp("T3", "nothing");
  EXPECT_TRUE(exp.all_hold());
  EXPECT_EQ(exp.claim_count(), 0u);
}

TEST(Experiment, PrintContainsAllParts) {
  stats::Experiment exp("E99", "printing test");
  exp.note("a free-form note");
  util::Table t({"col"});
  t.add("cell-value");
  exp.table("the table caption", std::move(t));
  exp.claim("paper said so", "we measured it", true);
  exp.claim("paper also said", "we could not", false);

  std::ostringstream out;
  exp.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("[E99] printing test"), std::string::npos);
  EXPECT_NE(text.find("a free-form note"), std::string::npos);
  EXPECT_NE(text.find("the table caption"), std::string::npos);
  EXPECT_NE(text.find("cell-value"), std::string::npos);
  EXPECT_NE(text.find("[PASS] paper said so"), std::string::npos);
  EXPECT_NE(text.find("[FAIL] paper also said"), std::string::npos);
  EXPECT_NE(text.find("CLAIM FAILURES"), std::string::npos);
}

TEST(Experiment, CsvExportWritesOneFilePerTable) {
  stats::Experiment exp("E42", "csv export");
  util::Table a({"x"});
  a.add(1);
  util::Table b({"y"});
  b.add(2);
  exp.table("First Table!", std::move(a));
  exp.table("second (table)", std::move(b));
  const std::string dir = ::testing::TempDir();
  EXPECT_EQ(exp.export_csv(dir), 2u);
  std::ifstream first(dir + "/e42_first-table.csv");
  ASSERT_TRUE(first.good());
  std::string header;
  std::getline(first, header);
  EXPECT_EQ(header, "x");
}

TEST(Experiment, CsvExportToBadDirectoryWritesNothing) {
  stats::Experiment exp("E43", "bad dir");
  util::Table t({"x"});
  t.add(1);
  exp.table("t", std::move(t));
  EXPECT_EQ(exp.export_csv("/nonexistent/place"), 0u);
}

TEST(Experiment, PassBannerWhenAllHold) {
  stats::Experiment exp("E0", "ok");
  exp.claim("c", "m", true);
  std::ostringstream out;
  exp.print(out);
  EXPECT_NE(out.str().find("all claims hold"), std::string::npos);
}

}  // namespace
}  // namespace fpss
