// Staged publish pipeline (PR 7): per-shard export tasks on the engine
// thread pool, each shard published through the store's epoch fence the
// moment its own export completes.
//
// The load-bearing properties:
//   1. The staged fan-out is *logically identical* to the inline export —
//      same content checksum, same self_check — for any dirty set.
//   2. A shard's dirty burst becomes readable without waiting on any other
//      shard's export (the acceptance criterion; pinned on real
//      export-completion ordering via the pipeline hooks).
//   3. While a fence is open, readers may observe at most the two adjacent
//      epochs v-1/v in one acquired cut — never anything older, never a
//      torn row. The reader-vs-fence test is part of the CI tsan job.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common.h"
#include "bgp/engine.h"
#include "graph/graph.h"
#include "pricing/session.h"
#include "service/pipeline.h"
#include "service/service.h"
#include "service/snapshot.h"
#include "service/store.h"
#include "util/rng.h"
#include "util/task_group.h"
#include "util/thread_pool.h"

namespace fpss {
namespace {

using pricing::RestartPolicy;
using pricing::Session;
using service::PipelineHooks;
using service::PipelineStats;
using service::PublishPipeline;
using service::RouteService;
using service::RouteSnapshot;
using service::ServiceConfig;
using service::ShardedSnapshotStore;

// Two disjoint 6-cycles (same shape as test_publish's fixture): a cost
// change in one component cannot dirty the other's sink trees, so shard
// dirtiness is controllable per component.
graph::Graph two_cycles() {
  graph::Graph g{12};
  for (NodeId v = 0; v < 6; ++v) {
    g.add_edge(v, (v + 1) % 6);
    g.add_edge(6 + v, 6 + (v + 1) % 6);
    g.set_cost(v, Cost{static_cast<Cost::rep>(1 + v)});
    g.set_cost(6 + v, Cost{static_cast<Cost::rep>(2 + v)});
  }
  return g;
}

// --- util::TaskGroup -------------------------------------------------------

TEST(TaskGroup, SerialFallbackRunsInOrder) {
  util::TaskGroup group(nullptr);
  EXPECT_EQ(group.run_and_wait(), 0u);  // empty group

  std::vector<int> order;
  for (int t = 0; t < 4; ++t)
    group.add([&order, t] { order.push_back(t); });
  EXPECT_EQ(group.size(), 4u);
  EXPECT_EQ(group.run_and_wait(), 1u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  // The group is reusable after a run.
  EXPECT_EQ(group.size(), 0u);
}

TEST(TaskGroup, PooledRunExecutesEveryTaskOnce) {
  util::ThreadPool pool(3);
  util::TaskGroup group(&pool);
  constexpr std::size_t kTasks = 16;
  std::vector<std::atomic<int>> runs(kTasks);
  for (std::size_t t = 0; t < kTasks; ++t)
    group.add([&runs, t] { runs[t].fetch_add(1, std::memory_order_relaxed); });
  const unsigned high_water = group.run_and_wait();
  EXPECT_GE(high_water, 1u);
  EXPECT_LE(high_water, pool.width());
  for (std::size_t t = 0; t < kTasks; ++t)
    EXPECT_EQ(runs[t].load(), 1) << "t=" << t;
}

TEST(EnginePool, EnsurePoolWidensButNeverShrinks) {
  Session session(two_cycles(), pricing::Protocol::kPriceVector);
  ASSERT_TRUE(session.run().converged);
  util::ThreadPool* pool = session.engine().ensure_pool(3);
  ASSERT_NE(pool, nullptr);
  EXPECT_GE(pool->width(), 3u);
  // Asking for less is a no-op: same pool object.
  EXPECT_EQ(session.engine().ensure_pool(2), pool);
  // The widened pool does not disturb the protocol result.
  ASSERT_TRUE(
      session.change_cost(0, Cost{9}, RestartPolicy::kRestartBarrier)
          .converged);
}

// --- staged == inline ------------------------------------------------------

TEST(PublishPipeline, StagedFanOutEqualsInlineExport) {
  const std::vector<test::InstanceSpec> specs = {
      {"er", 24, 211, 10},
      {"ba", 24, 212, 8},
      {"grid", 24, 213, 5},
  };
  for (const auto& spec : specs) {
    SCOPED_TRACE(std::string(spec.family) + " n=" + std::to_string(spec.n));
    const graph::Graph g = test::make_instance(spec);
    const std::size_t n = g.node_count();
    Session session(g, pricing::Protocol::kPriceVector);
    session.track_dirty_destinations(true);
    ASSERT_TRUE(session.run().converged);
    util::ThreadPool* pool = session.engine().ensure_pool(3);

    ShardedSnapshotStore store(n, 4);
    std::uint64_t prev_epoch = session.engine().converged_epochs();

    // First publish: the full path, every shard swapped.
    PipelineStats first;
    std::shared_ptr<const RouteSnapshot> prev = PublishPipeline::run(
        store, nullptr, nullptr, session, prev_epoch, std::nullopt, nullptr,
        pool, &first);
    ASSERT_TRUE(prev->self_check());
    EXPECT_FALSE(first.pipelined);
    EXPECT_FALSE(first.full_rebuild);
    EXPECT_EQ(first.rows_rebuilt, n);
    EXPECT_EQ(first.shards_swapped, store.shard_count());

    util::Rng rng(spec.seed * 6151);
    for (int round = 0; round < 4; ++round) {
      SCOPED_TRACE("round " + std::to_string(round));
      std::vector<Session::Event> burst;
      const std::size_t count = 1 + rng.below(3);
      for (std::size_t e = 0; e < count; ++e)
        burst.push_back(Session::Event::cost_change(
            static_cast<NodeId>(rng.below(n)),
            Cost{static_cast<Cost::rep>(rng.below(25))}));
      ASSERT_TRUE(
          session.apply_events(burst, RestartPolicy::kRestartBarrier)
              .converged);
      const std::uint64_t epoch = session.engine().converged_epochs();
      const auto dirty = session.dirty_destinations(prev_epoch);
      ASSERT_TRUE(dirty.has_value());

      std::vector<bool> shard_dirty(store.shard_count(), false);
      for (const NodeId j : *dirty) shard_dirty[store.shard_of(j)] = true;
      const std::size_t dirty_shards = static_cast<std::size_t>(
          std::count(shard_dirty.begin(), shard_dirty.end(), true));

      PipelineStats stats;
      const auto snap = PublishPipeline::run(store, prev, nullptr, session,
                                             epoch, dirty, nullptr, pool,
                                             &stats);
      const auto full = RouteSnapshot::from_session(session, epoch);

      // Logically identical to a one-shot export no matter which path ran.
      EXPECT_TRUE(snap->self_check());
      EXPECT_EQ(snap->content_checksum(), full->content_checksum());
      EXPECT_EQ(stats.pipelined, dirty_shards > 1 && pool->width() > 1);
      EXPECT_FALSE(stats.full_rebuild);
      EXPECT_EQ(stats.rows_rebuilt, dirty->size());
      EXPECT_EQ(stats.rows_reused, n - dirty->size());
      EXPECT_EQ(stats.shards_swapped, dirty_shards);
      if (stats.pipelined) {
        EXPECT_GE(stats.max_exports_inflight, 1u);
      }

      // After fence_end the strict store invariant is restored: every
      // destination's block in the acquired cut is the newest root's.
      const auto view = store.acquire();
      ASSERT_FALSE(view.empty());
      EXPECT_EQ(view.newest, snap);
      for (NodeId j = 0; j < n; ++j)
        EXPECT_TRUE(view.for_destination(j).shares_block_with(*snap, j))
            << "j=" << j;
      prev = snap;
      prev_epoch = epoch;
    }
  }
}

// --- the acceptance criterion: no cross-shard waiting ----------------------

// A burst dirtying two shards, with shard `slow`'s export stalled until
// shard `fast` has *published*. If a shard's publish had to wait for the
// whole fan-out (the pre-pipeline behaviour), this handshake would
// deadlock; instead the test asserts on real completion ordering: fast's
// rows were served mid-fence while slow's export had not even run.
TEST(PublishPipeline, SingleShardBurstSwapsWithoutWaitingOnOtherExports) {
  const graph::Graph g = two_cycles();
  const std::size_t n = g.node_count();
  Session session(g, pricing::Protocol::kPriceVector);
  session.track_dirty_destinations(true);
  ASSERT_TRUE(session.run().converged);
  util::ThreadPool* pool = session.engine().ensure_pool(2);
  ASSERT_GE(pool->width(), 2u);

  // Shard 0 = destinations 0-5 (first cycle), shard 1 = 6-11 (second).
  ShardedSnapshotStore store(n, 2);
  ASSERT_EQ(store.shard_size(), 6u);
  const std::uint64_t epoch0 = session.engine().converged_epochs();
  const auto prev = PublishPipeline::run(store, nullptr, nullptr, session,
                                         epoch0, std::nullopt, nullptr, pool);

  // One big cost change per component: both shards dirty, one burst.
  const std::vector<Session::Event> burst = {
      Session::Event::cost_change(1, Cost{50}),
      Session::Event::cost_change(7, Cost{60}),
  };
  ASSERT_TRUE(
      session.apply_events(burst, RestartPolicy::kRestartBarrier).converged);
  const std::uint64_t epoch1 = session.engine().converged_epochs();
  const auto dirty = session.dirty_destinations(epoch0);
  ASSERT_TRUE(dirty.has_value());
  NodeId fast_dirty = kInvalidNode;
  bool slow_shard_dirty = false;
  for (const NodeId j : *dirty) {
    if (store.shard_of(j) == 0 && fast_dirty == kInvalidNode) fast_dirty = j;
    if (store.shard_of(j) == 1) slow_shard_dirty = true;
  }
  ASSERT_NE(fast_dirty, kInvalidNode);
  ASSERT_TRUE(slow_shard_dirty);

  constexpr std::size_t kFast = 0;  // shard 1 is the stalled ("slow") one
  std::mutex m;
  std::condition_variable cv;
  bool slow_started = false, fast_published = false, slow_published = false;
  bool fast_landed_before_slow_finished = false;
  bool mid_fence_serves_fast_rows = false;
  std::uint64_t mid_newest_version = 0, mid_fast_slot_version = 0;

  PipelineHooks hooks;
  hooks.before_export = [&](std::size_t shard) {
    std::unique_lock<std::mutex> lock(m);
    if (shard == kFast) {
      // Both exports are in flight before either finishes: the overlap the
      // high-water counter must report.
      cv.wait(lock, [&] { return slow_started; });
    } else {
      slow_started = true;
      cv.notify_all();
      cv.wait(lock, [&] { return fast_published; });
    }
  };
  hooks.after_shard_publish = [&](std::size_t shard) {
    if (shard == kFast) {
      // Mid-fence probe, taken while the slow export is provably stalled:
      // the fast shard's fresh rows are already being served, the
      // composite version still reports the previous epoch (lower bound).
      const auto view = store.acquire();
      std::unique_lock<std::mutex> lock(m);
      fast_landed_before_slow_finished = !slow_published;
      mid_newest_version = view.newest->version();
      mid_fast_slot_version = view.shards[kFast]->version();
      mid_fence_serves_fast_rows =
          !view.shards[kFast]->shares_block_with(*prev, fast_dirty);
      fast_published = true;
      cv.notify_all();
    } else {
      std::lock_guard<std::mutex> lock(m);
      slow_published = true;
    }
  };

  PipelineStats stats;
  const auto snap = PublishPipeline::run(store, prev, nullptr, session, epoch1,
                                         dirty, nullptr, pool, &stats, &hooks);

  EXPECT_TRUE(stats.pipelined);
  EXPECT_EQ(stats.max_exports_inflight, 2u);
  EXPECT_EQ(stats.shards_swapped, 2u);
  EXPECT_TRUE(fast_landed_before_slow_finished);
  EXPECT_TRUE(mid_fence_serves_fast_rows);
  EXPECT_EQ(mid_newest_version, epoch0);
  EXPECT_EQ(mid_fast_slot_version, epoch1);

  // And the fence closed into a fully consistent, current state.
  EXPECT_TRUE(snap->self_check());
  EXPECT_EQ(snap->node_cost(1), Cost{50});
  EXPECT_EQ(snap->node_cost(7), Cost{60});
  EXPECT_EQ(store.version(), epoch1);
  const auto full = RouteSnapshot::from_session(session, epoch1);
  EXPECT_EQ(snap->content_checksum(), full->content_checksum());
  const auto view = store.acquire();
  for (NodeId j = 0; j < n; ++j)
    EXPECT_TRUE(view.for_destination(j).shares_block_with(*snap, j));
  // One fence = one publish.
  EXPECT_EQ(store.publish_count(), 2u);
}

// --- readers vs. out-of-order shard landings (the TSan hunt) ---------------

TEST(PublishPipeline, ReadersNeverMixNonAdjacentEpochsAcrossFences) {
  const graph::Graph g = two_cycles();
  const std::size_t n = g.node_count();
  Session session(g, pricing::Protocol::kPriceVector);
  session.track_dirty_destinations(true);
  ASSERT_TRUE(session.run().converged);
  util::ThreadPool* pool = session.engine().ensure_pool(3);

  ShardedSnapshotStore store(n, 4);
  std::uint64_t prev_epoch = session.engine().converged_epochs();
  std::shared_ptr<const RouteSnapshot> prev = PublishPipeline::run(
      store, nullptr, nullptr, session, prev_epoch, std::nullopt, nullptr,
      pool);

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> views_checked{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&store, &done, &views_checked, n] {
      std::uint64_t last_version = 0;
      while (!done.load(std::memory_order_relaxed)) {
        const auto view = store.acquire();
        if (view.empty()) continue;
        const std::uint64_t newest = view.newest->version();
        EXPECT_GE(newest, last_version);
        last_version = newest;
        std::uint64_t lead_version = 0;  // the one in-flight fence epoch
        for (std::size_t s = 0; s < view.shards.size(); ++s) {
          const auto& slot = view.shards[s];
          ASSERT_NE(slot, nullptr);
          if (slot->version() > newest) {
            // While a fence is open, landed slots may lead `newest` — but
            // only by the SINGLE epoch being fenced in. Two different
            // leading versions in one cut would mean two mixed in-flight
            // epochs: exactly the tear the fence forbids.
            if (lead_version == 0) lead_version = slot->version();
            ASSERT_EQ(slot->version(), lead_version) << "s=" << s;
            continue;
          }
          // Non-fence slots obey the strict invariant: every destination
          // they serve is block-identical to the newest root.
          const std::size_t lo = s * view.shard_size;
          const std::size_t hi = std::min(n, lo + view.shard_size);
          for (std::size_t j = lo; j < hi; ++j)
            ASSERT_TRUE(slot->shares_block_with(
                *view.newest, static_cast<NodeId>(j)))
                << "s=" << s << " j=" << j;
        }
        views_checked.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Slow every export a little so readers regularly land inside the fence.
  PipelineHooks hooks;
  hooks.before_export = [](std::size_t) {
    std::this_thread::sleep_for(std::chrono::microseconds(300));
  };

  util::Rng rng(90210);
  for (int round = 0; round < 10; ++round) {
    // One change per component: at least two shards dirty, so the staged
    // path engages and shards land out of order under the fence.
    const std::vector<Session::Event> burst = {
        Session::Event::cost_change(
            static_cast<NodeId>(rng.below(6)),
            Cost{static_cast<Cost::rep>(1 + rng.below(30))}),
        Session::Event::cost_change(
            static_cast<NodeId>(6 + rng.below(6)),
            Cost{static_cast<Cost::rep>(1 + rng.below(30))}),
    };
    ASSERT_TRUE(
        session.apply_events(burst, RestartPolicy::kRestartBarrier).converged);
    const std::uint64_t epoch = session.engine().converged_epochs();
    const auto dirty = session.dirty_destinations(prev_epoch);
    ASSERT_TRUE(dirty.has_value());
    PipelineStats stats;
    prev = PublishPipeline::run(store, prev, nullptr, session, epoch, dirty,
                                nullptr, pool, &stats, &hooks);
    prev_epoch = epoch;
  }
  done.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  EXPECT_GT(views_checked.load(), 0u);
  EXPECT_TRUE(store.newest()->self_check());
}

// --- warm-start digest adoption (the satellite fix) ------------------------

TEST(PublishPipeline, WarmStartAdoptionSwapsOnlyGenuinelyChangedShards) {
  // "Yesterday's" daemon: converge and snapshot.
  graph::Graph g = two_cycles();
  Session before(g, pricing::Protocol::kPriceVector);
  ASSERT_TRUE(before.run().converged);
  const auto warm = RouteSnapshot::from_session(
      before, before.engine().converged_epochs());

  // Restart with one cost changed in the first component only.
  graph::Graph g2 = two_cycles();
  g2.set_cost(0, Cost{50});
  Session after(g2, pricing::Protocol::kPriceVector);
  ASSERT_TRUE(after.run().converged);

  ShardedSnapshotStore store(g.node_count(), 4);  // 3 destinations per shard
  store.publish_all(warm);

  PipelineStats stats;
  const auto snap = PublishPipeline::run(
      store, nullptr, warm, after, warm->version() + 1, std::nullopt, nullptr,
      after.engine().ensure_pool(2), &stats);

  // The second component's six sink trees are bit-identical across the
  // restart: their blocks are adopted from the warm image and the two
  // shards holding them are not swapped (pre-fix, every shard was).
  EXPECT_TRUE(snap->self_check());
  EXPECT_GE(stats.rows_adopted, 6u);
  EXPECT_GE(stats.shards_swapped, 1u);
  EXPECT_LE(stats.shards_swapped, 2u);
  const auto view = store.acquire();
  EXPECT_EQ(view.newest, snap);
  EXPECT_EQ(view.shards[2], warm);  // destinations 6-8: slot untouched
  EXPECT_EQ(view.shards[3], warm);  // destinations 9-11
  for (NodeId j = 6; j < 12; ++j)
    EXPECT_TRUE(snap->shares_block_with(*warm, j)) << "j=" << j;
  for (NodeId j = 0; j < 12; ++j)
    EXPECT_TRUE(view.for_destination(j).shares_block_with(*snap, j));

  // The adopted snapshot is still exactly the new session's state.
  const auto full = RouteSnapshot::from_session(
      after, after.engine().converged_epochs());
  EXPECT_EQ(snap->content_checksum(), full->content_checksum());
  EXPECT_EQ(snap->node_cost(0), Cost{50});
}

TEST(PublishPipeline, IdenticalRestartAdoptsEverythingAndSwapsNothing) {
  graph::Graph g = two_cycles();
  Session before(g, pricing::Protocol::kPriceVector);
  ASSERT_TRUE(before.run().converged);
  const auto warm = RouteSnapshot::from_session(
      before, before.engine().converged_epochs());

  Session after(two_cycles(), pricing::Protocol::kPriceVector);
  ASSERT_TRUE(after.run().converged);

  ShardedSnapshotStore store(g.node_count(), 4);
  store.publish_all(warm);
  PipelineStats stats;
  const auto snap = PublishPipeline::run(store, nullptr, warm, after,
                                         warm->version() + 1, std::nullopt,
                                         nullptr, nullptr, &stats);
  EXPECT_EQ(stats.rows_adopted, g.node_count());
  EXPECT_EQ(stats.shards_swapped, 0u);
  EXPECT_EQ(store.newest(), snap);
  const auto view = store.acquire();
  for (std::size_t s = 0; s < view.shards.size(); ++s)
    EXPECT_EQ(view.shards[s], warm) << "s=" << s;
  for (NodeId j = 0; j < g.node_count(); ++j)
    EXPECT_TRUE(snap->shares_block_with(*warm, j));
  EXPECT_TRUE(snap->self_check());
}

// --- RouteService end to end ------------------------------------------------

TEST(RouteServicePipeline, StagedPublishDrivesInflightCounter) {
  ServiceConfig config;
  config.shards = 4;
  config.export_threads = 2;
  RouteService svc(two_cycles(), config);
  EXPECT_EQ(svc.counters().shard_exports_inflight_max, 0u);

  // One batched burst dirtying both components: the updater coalesces it
  // into a single reconvergence whose publish takes the staged path.
  const std::vector<RouteService::Delta> burst = {
      RouteService::Delta::cost_change(1, Cost{50}),
      RouteService::Delta::cost_change(7, Cost{60}),
  };
  ASSERT_EQ(svc.submit(burst), 2u);
  svc.drain();

  const auto c = svc.counters();
  EXPECT_EQ(c.publishes, 2u);
  EXPECT_EQ(c.full_rebuilds, 0u);
  EXPECT_GE(c.shard_exports_inflight_max, 1u);
  EXPECT_LE(c.shard_exports_inflight_max, 2u);
  EXPECT_GE(c.shards_republished, 5u);  // 4 (first) + at least 1 per cycle

  // Served answers reflect the burst through the staged path.
  const auto snap = svc.snapshot();
  EXPECT_EQ(snap->node_cost(1), Cost{50});
  EXPECT_EQ(snap->node_cost(7), Cost{60});
  EXPECT_TRUE(snap->self_check());
}

}  // namespace
}  // namespace fpss
