// The writable replica mesh: a primary fronted by a chain of forwarding
// replicas, exercised end to end over real sockets. Pins the PR 9
// contracts — a delta submitted at the deepest tier relays hop by hop to
// the primary and the ack's publish clock makes read-your-write work at
// any depth; hop counts and sync lag compound down the chain; the
// fallback list and the shared reconnect cursor survive a primary kill
// mid-churn; and the forwarding path's back-pressure is a typed refusal,
// never a growing queue. The CI TSan job runs this suite: every tier is
// its own thread pile (sync loop + server workers + test writers).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common.h"
#include "net/client.h"
#include "net/remote_backend.h"
#include "net/server.h"
#include "replica/replica.h"
#include "service/protocol.h"
#include "service/query_backend.h"
#include "service/service.h"
#include "util/rng.h"

namespace fpss {
namespace {

using replica::ReplicaConfig;
using replica::ReplicaService;
using service::Request;
using service::RequestKind;
using service::RouteService;

RouteService make_service(const test::InstanceSpec& spec, std::size_t shards) {
  service::ServiceConfig config;
  config.shards = shards;
  return RouteService(test::make_instance(spec), config);
}

std::vector<Request> random_batch(NodeId n, std::uint64_t seed,
                                  std::size_t count = 48) {
  util::Rng rng(seed);
  std::vector<Request> batch;
  const auto kinds = {RequestKind::kCost,        RequestKind::kPrice,
                      RequestKind::kPairPayment, RequestKind::kNextHop,
                      RequestKind::kPath,        RequestKind::kPayment};
  for (std::size_t q = 0; q < count; ++q) {
    Request r;
    r.kind = *(kinds.begin() + static_cast<long>(rng.below(kinds.size())));
    r.k = static_cast<NodeId>(rng.below(n));
    r.i = static_cast<NodeId>(rng.below(n));
    r.j = static_cast<NodeId>(rng.below(n));
    batch.push_back(r);
  }
  return batch;
}

/// Payload equality only (status, value, amount, node, path) — for
/// comparing against an independently-built mirror service, whose
/// publish timestamps legitimately differ.
bool same_payload(const service::Reply& a, const service::Reply& b) {
  return a.status == b.status && a.value == b.value && a.amount == b.amount &&
         a.node == b.node && a.path == b.path;
}

net::ClientConfig to_port(std::uint16_t port) {
  net::ClientConfig config;
  config.port = port;
  return config;
}

/// primary -> mid replica -> leaf replica, each tier fronted by its own
/// RouteServer with forwarding enabled. Worker pools are sized for the
/// pinned connections: each downstream replica holds three (fetch,
/// notify, forward) on its upstream's front, plus test clients.
struct Chain {
  explicit Chain(const test::InstanceSpec& spec, std::size_t shards)
      : primary(make_service(spec, shards)) {
    net::ServerConfig front_config;
    front_config.workers = 6;
    primary_front = std::make_unique<net::RouteServer>(primary, front_config);
    if (!primary_front->ok()) return;

    ReplicaConfig mid_config;
    mid_config.upstream.port = primary_front->port();
    mid = std::make_unique<ReplicaService>(mid_config);
    if (!mid->wait_until_ready(10000)) return;
    mid->wait_for_version_beyond(primary.version() - 1, 10000);
    mid_front = std::make_unique<net::RouteServer>(*mid, front_config);
    if (!mid_front->ok()) return;

    ReplicaConfig leaf_config;
    leaf_config.upstream.port = mid_front->port();
    leaf = std::make_unique<ReplicaService>(leaf_config);
    if (!leaf->wait_until_ready(10000)) return;
    leaf->wait_for_version_beyond(primary.version() - 1, 10000);
    leaf_front = std::make_unique<net::RouteServer>(*leaf, front_config);
    ready = leaf_front->ok();
  }

  // Declaration order is teardown order reversed: fronts die before the
  // backends they serve, downstream tiers before their upstreams.
  RouteService primary;
  std::unique_ptr<net::RouteServer> primary_front;
  std::unique_ptr<ReplicaService> mid;
  std::unique_ptr<net::RouteServer> mid_front;
  std::unique_ptr<ReplicaService> leaf;
  std::unique_ptr<net::RouteServer> leaf_front;
  bool ready = false;
};

// --- the depth-2 write path --------------------------------------------------

TEST(ChainE2E, LeafSubmitsRoundTripBitIdentical) {
  const test::InstanceSpec spec{"er", 28, 91, 9};
  Chain chain(spec, 4);
  ASSERT_TRUE(chain.ready);
  const NodeId n = static_cast<NodeId>(chain.primary.node_count());

  // The mirror applies the same bursts locally — the ground truth the
  // forwarded writes must land on.
  RouteService mirror = make_service(spec, 4);

  net::RemoteQueryBackend leaf_backend(to_port(chain.leaf_front->port()));
  ASSERT_TRUE(leaf_backend.connect().ok());

  util::Rng rng(spec.seed);
  for (int burst = 0; burst < 4; ++burst) {
    std::vector<RouteService::Delta> deltas;
    const std::size_t size = 1 + rng.below(3);
    for (std::size_t d = 0; d < size; ++d)
      deltas.push_back(RouteService::Delta::cost_change(
          static_cast<NodeId>(rng.below(n)),
          Cost{static_cast<Cost::rep>(1 + rng.below(9))}));

    // Submit at the LEAF: two forwarding hops to the primary.
    const auto ack = leaf_backend.submit_deltas(deltas);
    ASSERT_TRUE(ack.ok()) << "burst " << burst << ": " << ack.error;
    EXPECT_EQ(ack.accepted, deltas.size());
    ASSERT_GT(ack.publish_count, 0u);

    mirror.submit(deltas);
    mirror.drain();

    // Read-your-write at the tier the write entered: wait until the
    // leaf's chain-wide clock reaches the primary's ack.
    ASSERT_GE(leaf_backend.wait_for_publish_beyond(ack.publish_count - 1,
                                                   10000),
              ack.publish_count)
        << "burst " << burst;

    // Every tier now serves the identical cut, bit for bit.
    const auto primary_snap = chain.primary.snapshot();
    ASSERT_NE(chain.mid->store(), nullptr);
    ASSERT_NE(chain.leaf->store(), nullptr);
    EXPECT_EQ(chain.mid->store()->newest()->checksum(),
              primary_snap->checksum());
    EXPECT_EQ(chain.leaf->store()->newest()->checksum(),
              primary_snap->checksum());

    const auto batch = random_batch(n, 700 + static_cast<std::uint64_t>(burst));
    const auto from_primary = chain.primary.query(batch);
    const auto from_mid = chain.mid->query(batch);
    const auto from_leaf = chain.leaf->query(batch);
    const auto over_wire = leaf_backend.query_batch(batch);
    ASSERT_TRUE(over_wire.ok()) << over_wire.error;
    ASSERT_EQ(over_wire.replies.size(), batch.size());
    for (std::size_t q = 0; q < batch.size(); ++q) {
      EXPECT_TRUE(service::same_answer(from_primary[q], from_mid[q]))
          << "burst " << burst << " query " << q;
      EXPECT_TRUE(service::same_answer(from_primary[q], from_leaf[q]))
          << "burst " << burst << " query " << q;
      EXPECT_TRUE(service::same_answer(from_primary[q], over_wire.replies[q]))
          << "burst " << burst << " query " << q;
    }

    // And the forwarded writes landed on the mirror's ground truth.
    const auto from_mirror = mirror.query(batch);
    for (std::size_t q = 0; q < batch.size(); ++q)
      EXPECT_TRUE(same_payload(from_primary[q], from_mirror[q]))
          << "burst " << burst << " query " << q;
  }

  // Every tier tallied the relay; nothing was rejected or torn.
  const auto mid_counters = chain.mid->replication_counters();
  const auto leaf_counters = chain.leaf->replication_counters();
  EXPECT_GE(leaf_counters.deltas_forwarded, 4u);
  EXPECT_GE(mid_counters.deltas_forwarded, leaf_counters.deltas_forwarded);
  EXPECT_EQ(leaf_counters.forward_rejected, 0u);
  EXPECT_EQ(mid_counters.resyncs, 0u);
  EXPECT_EQ(leaf_counters.resyncs, 0u);
}

TEST(ChainE2E, HopCountAndSyncLagCompoundDownTheChain) {
  Chain chain({"er", 24, 92, 8}, 2);
  ASSERT_TRUE(chain.ready);
  const NodeId n = static_cast<NodeId>(chain.primary.node_count());

  // One publish after the chain settled, so both tiers' last lag sample
  // is for the same snapshot.
  net::RemoteQueryBackend leaf_backend(to_port(chain.leaf_front->port()));
  const auto ack = leaf_backend.submit_deltas(std::vector<RouteService::Delta>{
      RouteService::Delta::cost_change(static_cast<NodeId>(n - 1), Cost{4})});
  ASSERT_TRUE(ack.ok()) << ack.error;
  ASSERT_GE(leaf_backend.wait_for_publish_beyond(ack.publish_count - 1, 10000),
            ack.publish_count);

  // In-process view of the chain position.
  EXPECT_EQ(chain.mid->hop_count(), 1u);
  EXPECT_EQ(chain.leaf->hop_count(), 2u);

  // The handshake advertises the depth of whatever the front serves.
  EXPECT_EQ(leaf_backend.server_hop_count(), 2u);
  net::RouteClient to_mid(to_port(chain.mid_front->port()));
  ASSERT_TRUE(to_mid.connect().ok());
  EXPECT_EQ(to_mid.server_hop_count(), 1u);
  net::RouteClient to_primary(to_port(chain.primary_front->port()));
  ASSERT_TRUE(to_primary.connect().ok());
  EXPECT_EQ(to_primary.server_hop_count(), 0u);

  // The counters frame carries the same depth plus the lag, and the
  // leaf's lag — measured against the primary's publish stamp, which the
  // bit-identical snapshot preserves — includes the mid tier's.
  const auto mid_counters = to_mid.counters();
  ASSERT_TRUE(mid_counters.ok());
  ASSERT_TRUE(mid_counters.has_replica);
  EXPECT_EQ(mid_counters.replica.hop_count, 1u);
  EXPECT_GT(mid_counters.replica.sync_lag_ns, 0u);

  const auto leaf_counters = leaf_backend.full_counters();
  ASSERT_TRUE(leaf_counters.ok());
  ASSERT_TRUE(leaf_counters.has_replica);
  EXPECT_EQ(leaf_counters.replica.hop_count, 2u);
  EXPECT_GE(leaf_counters.replica.sync_lag_ns,
            mid_counters.replica.sync_lag_ns);
}

// --- failover ----------------------------------------------------------------

TEST(ChainFailover, FallbackListSkipsDeadUpstream) {
  RouteService primary = make_service({"er", 24, 93, 7}, 2);
  const NodeId n = static_cast<NodeId>(primary.node_count());
  net::RouteServer front(primary);
  ASSERT_TRUE(front.ok()) << front.error();

  // Entry 0 is dead (nobody listens on port 1); the shared cursor must
  // advance past it for both the sync loop and the forwarder.
  net::ClientConfig dead;
  dead.port = 1;
  dead.connect_attempts = 1;
  dead.backoff_ms = 1;
  ReplicaConfig config;
  config.upstreams = {dead, to_port(front.port())};
  config.resync_backoff_ms = 10;
  ReplicaService replica(config);
  ASSERT_TRUE(replica.wait_until_ready(10000));
  ASSERT_GE(replica.wait_for_version_beyond(primary.version() - 1, 10000),
            primary.version());

  // A write entering this replica forwards through the live entry.
  replica::ReplicaQueryBackend backend(replica);
  const auto ack = backend.submit_delta(
      RouteService::Delta::cost_change(0, Cost{6}));
  ASSERT_TRUE(ack.ok()) << ack.error;
  EXPECT_EQ(ack.accepted, 1u);
  ASSERT_GE(backend.wait_for_publish_beyond(ack.publish_count - 1, 10000),
            ack.publish_count);

  const auto batch = random_batch(n, 94);
  const auto from_primary = primary.query(batch);
  const auto local = backend.query_batch(batch);
  ASSERT_TRUE(local.ok());
  for (std::size_t q = 0; q < batch.size(); ++q)
    EXPECT_TRUE(service::same_answer(from_primary[q], local.replies[q])) << q;

  EXPECT_GE(replica.replication_counters().deltas_forwarded, 1u);
}

TEST(ChainFailover, PrimaryKillMidChurnDegradesThenRecovers) {
  RouteService primary = make_service({"er", 24, 95, 8}, 2);
  const NodeId n = static_cast<NodeId>(primary.node_count());
  net::ServerConfig server_config;
  auto server = std::make_unique<net::RouteServer>(primary, server_config);
  ASSERT_TRUE(server->ok()) << server->error();
  const std::uint16_t port = server->port();

  ReplicaConfig config;
  config.upstream.port = port;
  config.upstream.connect_attempts = 1;
  config.upstream.backoff_ms = 1;
  config.resync_backoff_ms = 20;
  ReplicaService replica(config);
  ASSERT_TRUE(replica.wait_until_ready(10000));
  ASSERT_GE(replica.wait_for_version_beyond(primary.version() - 1, 10000),
            primary.version());

  // Pre-kill churn, including a forwarded write (so the forwarding
  // connection exists and must also fail over).
  const auto pre_ack = replica.submit(std::vector<RouteService::Delta>{
      RouteService::Delta::cost_change(1, Cost{3})});
  ASSERT_EQ(pre_ack.status, net::Backend::SubmitOutcome::Status::kOk);
  ASSERT_GE(replica.wait_for_publish_beyond(pre_ack.publish_count - 1, 10000),
            pre_ack.publish_count);

  const auto batch = random_batch(n, 96);
  const auto before_kill = replica.query(batch);

  // Kill the primary's front mid-churn. The service itself survives (its
  // state is the durable thing a restarted daemon would reload).
  server.reset();

  // Churn while the replica is cut off: the primary moves on.
  util::Rng rng(97);
  for (int burst = 0; burst < 3; ++burst) {
    primary.submit({RouteService::Delta::cost_change(
        static_cast<NodeId>(rng.below(n)),
        Cost{static_cast<Cost::rep>(1 + rng.below(9))})});
    primary.drain();
  }

  // Degraded, not dead: the replica still serves its last consistent cut.
  const auto while_down = replica.query(batch);
  ASSERT_EQ(while_down.size(), before_kill.size());
  for (std::size_t q = 0; q < batch.size(); ++q)
    EXPECT_TRUE(service::same_answer(before_kill[q], while_down[q])) << q;

  // Restart on the same port (SO_REUSEADDR makes the bind immediate).
  server_config.port = port;
  server = std::make_unique<net::RouteServer>(primary, server_config);
  ASSERT_TRUE(server->ok()) << server->error();

  // Recovery: the resubscribe's immediate notify carries the missed
  // publishes, and one sync catches the replica up.
  ASSERT_GE(replica.wait_for_version_beyond(primary.version() - 1, 15000),
            primary.version());
  EXPECT_EQ(replica.store()->newest()->checksum(),
            primary.snapshot()->checksum());

  const auto counters = replica.replication_counters();
  EXPECT_GE(counters.upstream_disconnects, 1u);
  EXPECT_GE(counters.resyncs, 1u);

  // The forwarding path recovered too (its pre-kill connection is dead;
  // the retry loop re-dials through the shared cursor).
  const auto post_ack = replica.submit(std::vector<RouteService::Delta>{
      RouteService::Delta::cost_change(2, Cost{5})});
  EXPECT_EQ(post_ack.status, net::Backend::SubmitOutcome::Status::kOk);
  ASSERT_GE(replica.wait_for_publish_beyond(post_ack.publish_count - 1, 10000),
            post_ack.publish_count);

  const auto from_primary = primary.query(batch);
  const auto recovered = replica.query(batch);
  for (std::size_t q = 0; q < batch.size(); ++q)
    EXPECT_TRUE(service::same_answer(from_primary[q], recovered[q])) << q;
}

// --- back-pressure -----------------------------------------------------------

TEST(ChainBackpressure, InflightLimitZeroRejectsTypedOverTheWire) {
  RouteService primary = make_service({"er", 20, 98, 6}, 2);
  net::RouteServer primary_front(primary);
  ASSERT_TRUE(primary_front.ok());

  ReplicaConfig config;
  config.upstream.port = primary_front.port();
  config.forward_inflight_limit = 0;  // the deterministic reject-everything
  ReplicaService replica(config);
  ASSERT_TRUE(replica.wait_until_ready(10000));
  replica.wait_for_version_beyond(0, 10000);
  const std::uint64_t clock_before = replica.publish_count();

  net::RouteServer front(replica);
  ASSERT_TRUE(front.ok()) << front.error();

  // Raw client: the refusal is a typed kError the caller can tell apart
  // from a dead upstream.
  net::RouteClient client(to_port(front.port()));
  ASSERT_TRUE(client.connect().ok());
  const auto rejected = client.submit_deltas(std::vector<RouteService::Delta>{
      RouteService::Delta::cost_change(0, Cost{2})});
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error.status, net::ClientStatus::kServerError);
  ASSERT_TRUE(rejected.error.wire_status.has_value());
  EXPECT_EQ(*rejected.error.wire_status, net::WireStatus::kOverloaded);

  // The unified backend surfaces the same code.
  net::RemoteQueryBackend backend(to_port(front.port()));
  const auto ack = backend.submit_delta(
      RouteService::Delta::cost_change(0, Cost{2}));
  EXPECT_FALSE(ack.ok());
  ASSERT_TRUE(backend.last_submit_status().has_value());
  EXPECT_EQ(*backend.last_submit_status(), net::WireStatus::kOverloaded);

  // Rejected means NOT applied: the chain clock never moved.
  EXPECT_EQ(replica.publish_count(), clock_before);
  EXPECT_GE(replica.replication_counters().forward_rejected, 2u);
}

TEST(ChainBackpressure, DeadUpstreamFailsUnavailableWithinRetryBudget) {
  // Nobody listening anywhere: the write must fail typed, not hang.
  ReplicaConfig config;
  config.upstream.port = 1;
  config.upstream.connect_attempts = 1;
  config.upstream.backoff_ms = 1;
  config.resync_backoff_ms = 50;
  config.forward_attempts = 2;
  config.forward_backoff_ms = 1;
  ReplicaService replica(config);

  const auto outcome = replica.submit(std::vector<RouteService::Delta>{
      RouteService::Delta::cost_change(0, Cost{9})});
  EXPECT_EQ(outcome.status, net::Backend::SubmitOutcome::Status::kUnavailable);
  EXPECT_EQ(outcome.accepted, 0u);
  EXPECT_GE(replica.replication_counters().forward_retries, 2u);

  // The adapter turns the typed status into a telling error.
  replica::ReplicaQueryBackend backend(replica);
  const auto ack = backend.submit_delta(
      RouteService::Delta::cost_change(0, Cost{9}));
  EXPECT_FALSE(ack.ok());
  EXPECT_NE(ack.error.find("upstream"), std::string::npos) << ack.error;
  replica.stop();
}

}  // namespace
}  // namespace fpss
