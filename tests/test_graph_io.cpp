#include <gtest/gtest.h>

#include <cstdio>

#include "graph/io.h"
#include "graphgen/fixtures.h"

namespace fpss {
namespace {

using graph::from_text;
using graph::to_text;

TEST(GraphIo, RoundTripFig1) {
  const auto f = graphgen::fig1();
  const auto parsed = from_text(to_text(f.g));
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const graph::Graph& g = *parsed.graph;
  EXPECT_EQ(g.node_count(), f.g.node_count());
  EXPECT_EQ(g.edges(), f.g.edges());
  for (NodeId v = 0; v < g.node_count(); ++v)
    EXPECT_EQ(g.cost(v), f.g.cost(v));
}

TEST(GraphIo, RoundTripEmptyAndSingleton) {
  const auto empty = from_text(to_text(graph::Graph{0}));
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty.graph->node_count(), 0u);
  const auto one = from_text(to_text(graph::Graph{1}));
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one.graph->node_count(), 1u);
}

TEST(GraphIo, ParsesCommentsAndBlankLines) {
  const auto parsed = from_text(
      "# header comment\n"
      "\n"
      "graph 3   # trailing comment\n"
      "cost 0 7\n"
      "edge 0 1\n"
      "edge 1 2  # another\n");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.graph->edge_count(), 2u);
  EXPECT_EQ(parsed.graph->cost(0), Cost{7});
}

TEST(GraphIo, DefaultCostIsZero) {
  const auto parsed = from_text("graph 2\nedge 0 1\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.graph->cost(1), Cost::zero());
}

TEST(GraphIo, RejectsUnknownDirective) {
  const auto parsed = from_text("graph 2\nfrobnicate 1\n");
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.line, 2u);
  EXPECT_NE(parsed.error.find("unknown directive"), std::string::npos);
}

TEST(GraphIo, RejectsEdgeBeforeGraph) {
  const auto parsed = from_text("edge 0 1\n");
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("before 'graph'"), std::string::npos);
}

TEST(GraphIo, RejectsOutOfRangeIds) {
  EXPECT_FALSE(from_text("graph 2\nedge 0 5\n").ok());
  EXPECT_FALSE(from_text("graph 2\ncost 9 1\n").ok());
}

TEST(GraphIo, RejectsSelfLoopAndDuplicate) {
  EXPECT_FALSE(from_text("graph 2\nedge 1 1\n").ok());
  EXPECT_FALSE(from_text("graph 2\nedge 0 1\nedge 1 0\n").ok());
}

TEST(GraphIo, RejectsNegativeAndMalformed) {
  EXPECT_FALSE(from_text("graph -3\n").ok());
  EXPECT_FALSE(from_text("graph 2\ncost 0 -1\n").ok());
  EXPECT_FALSE(from_text("graph 2\nedge 0\n").ok());
  EXPECT_FALSE(from_text("graph two\n").ok());
  EXPECT_FALSE(from_text("").ok());
}

TEST(GraphIo, RejectsTrailingGarbage) {
  const auto parsed = from_text("graph 2 oops\n");
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("trailing"), std::string::npos);
}

TEST(GraphIo, RejectsDuplicateGraphDirective) {
  EXPECT_FALSE(from_text("graph 2\ngraph 3\n").ok());
}

TEST(GraphIo, FileRoundTrip) {
  const auto f = graphgen::fig1();
  const std::string path = ::testing::TempDir() + "/fpss_io_test.graph";
  const auto saved = graph::save_graph(f.g, path);
  ASSERT_TRUE(saved.ok()) << saved.error;
  EXPECT_TRUE(saved.error.empty());
  const auto loaded = graph::load_graph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  EXPECT_EQ(loaded.graph->edges(), f.g.edges());
  std::remove(path.c_str());
}

TEST(GraphIo, SaveToUnwritablePathReportsReason) {
  const auto f = graphgen::fig1();
  const auto result =
      graph::save_graph(f.g, "/nonexistent/dir/fpss_io_test.graph");
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.find("cannot open"), std::string::npos);
  EXPECT_NE(result.error.find("/nonexistent/dir/fpss_io_test.graph"),
            std::string::npos);
}

TEST(GraphIo, LoadMissingFileFails) {
  const auto result = graph::load_graph("/nonexistent/path/x.graph");
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace fpss
