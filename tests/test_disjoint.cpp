#include <gtest/gtest.h>

#include <algorithm>
#include <optional>

#include "common.h"
#include "graph/analysis.h"
#include "routing/all_pairs.h"
#include "routing/disjoint.h"

namespace fpss {
namespace {

using routing::disjoint_path_pair;
using routing::DisjointPair;

/// Brute force: enumerate every simple s -> t path (DFS), then every
/// internally-disjoint pair, and return the minimum total transit cost.
std::optional<Cost> brute_force_pair_cost(const graph::Graph& g, NodeId s,
                                          NodeId t) {
  std::vector<graph::Path> paths;
  graph::Path current{s};
  std::vector<char> used(g.node_count(), 0);
  used[s] = 1;
  auto dfs = [&](auto&& self, NodeId v) -> void {
    if (v == t) {
      paths.push_back(current);
      return;
    }
    for (NodeId w : g.neighbors(v)) {
      if (used[w]) continue;
      used[w] = 1;
      current.push_back(w);
      self(self, w);
      current.pop_back();
      used[w] = 0;
    }
  };
  dfs(dfs, s);

  std::optional<Cost> best;
  for (std::size_t a = 0; a < paths.size(); ++a) {
    for (std::size_t b = a + 1; b < paths.size(); ++b) {
      bool disjoint = true;
      for (std::size_t i = 1; i + 1 < paths[a].size() && disjoint; ++i)
        disjoint = !graph::is_transit_node(paths[b], paths[a][i]);
      if (!disjoint) continue;
      const Cost total = graph::transit_cost(g, paths[a]) +
                         graph::transit_cost(g, paths[b]);
      if (!best.has_value() || total < *best) best = total;
    }
  }
  return best;
}

void expect_valid_pair(const graph::Graph& g, NodeId s, NodeId t,
                       const DisjointPair& pair) {
  EXPECT_TRUE(graph::is_simple_path(g, pair.primary, s, t));
  EXPECT_TRUE(graph::is_simple_path(g, pair.backup, s, t));
  for (std::size_t i = 1; i + 1 < pair.primary.size(); ++i)
    EXPECT_FALSE(graph::is_transit_node(pair.backup, pair.primary[i]))
        << "paths share transit node " << pair.primary[i];
  EXPECT_EQ(graph::transit_cost(g, pair.primary), pair.primary_cost);
  EXPECT_EQ(graph::transit_cost(g, pair.backup), pair.backup_cost);
  EXPECT_LE(pair.primary_cost, pair.backup_cost);
}

TEST(DisjointPair, Fig1XtoZ) {
  const auto f = graphgen::fig1();
  const auto pair = disjoint_path_pair(f.g, f.x, f.z);
  ASSERT_TRUE(pair.has_value());
  expect_valid_pair(f.g, f.x, f.z, *pair);
  // XBDZ (3) and XAZ (5) are the only internally disjoint pair.
  EXPECT_EQ(pair->primary, (graph::Path{f.x, f.b, f.d, f.z}));
  EXPECT_EQ(pair->backup, (graph::Path{f.x, f.a, f.z}));
  EXPECT_EQ(pair->total_cost(), Cost{8});
}

TEST(DisjointPair, SuurballeCancellationCase) {
  // The classic trap: the shortest path uses the "middle" and a greedy
  // second path would be blocked; the optimal pair reroutes both.
  //   s=0, t=5; costs: 1:0 2:0 3:9 4:9.
  //   paths: 0-1-2-5 (cost 0), 0-3-2-5?... build the textbook lattice:
  graph::Graph g{6};
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 5);
  g.add_edge(0, 3);
  g.add_edge(3, 2);
  g.add_edge(1, 4);
  g.add_edge(4, 5);
  g.set_cost(1, Cost{1});
  g.set_cost(2, Cost{1});
  g.set_cost(3, Cost{4});
  g.set_cost(4, Cost{4});
  // Shortest single path is 0-1-2-5 (cost 2), which blocks both 1 and 2;
  // the optimal pair is 0-1-4-5 (5) and 0-3-2-5 (5): total 10.
  const auto pair = disjoint_path_pair(g, 0, 5);
  ASSERT_TRUE(pair.has_value());
  expect_valid_pair(g, 0, 5, *pair);
  EXPECT_EQ(pair->total_cost(), Cost{10});
  const auto brute = brute_force_pair_cost(g, 0, 5);
  ASSERT_TRUE(brute.has_value());
  EXPECT_EQ(pair->total_cost(), *brute);
}

TEST(DisjointPair, NoneAcrossArticulationPoint) {
  // Bowtie: node 2 separates 0 from 4.
  graph::Graph g{5};
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 2);
  EXPECT_FALSE(disjoint_path_pair(g, 0, 4).has_value());
  // Within one triangle a pair exists.
  EXPECT_TRUE(disjoint_path_pair(g, 0, 1).has_value());
}

TEST(DisjointPair, AdjacentEndpointsUseTheDirectLink) {
  auto g = graphgen::ring_graph(6);
  graphgen::assign_uniform_cost(g, Cost{2});
  const auto pair = disjoint_path_pair(g, 0, 1);
  ASSERT_TRUE(pair.has_value());
  EXPECT_EQ(pair->primary, (graph::Path{0, 1}));
  EXPECT_EQ(pair->primary_cost, Cost{0});
  EXPECT_EQ(pair->backup_cost, Cost{8});  // the long way round
}

TEST(DisjointPair, MatchesBruteForceOnRandomGraphs) {
  util::Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 5 + rng.below(4);  // <= 8 nodes: DFS tractable
    graph::Graph g = graphgen::erdos_renyi(n, 0.5, rng);
    graphgen::make_biconnected(g, rng);
    graphgen::assign_random_costs(g, 0, 9, rng);
    for (NodeId s = 0; s < 2; ++s) {
      const NodeId t = static_cast<NodeId>(n - 1 - s);
      if (s == t) continue;
      const auto fast = disjoint_path_pair(g, s, t);
      const auto brute = brute_force_pair_cost(g, s, t);
      ASSERT_EQ(fast.has_value(), brute.has_value()) << "trial " << trial;
      if (fast.has_value()) {
        expect_valid_pair(g, s, t, *fast);
        EXPECT_EQ(fast->total_cost(), *brute) << "trial " << trial;
      }
    }
  }
}

TEST(DisjointPair, ExistsForAllPairsIffBiconnected) {
  const auto g = test::make_instance({"er", 16, 1000, 5});
  ASSERT_TRUE(graph::is_biconnected(g));
  for (NodeId s = 0; s < g.node_count(); ++s)
    for (NodeId t = s + 1; t < g.node_count(); ++t)
      EXPECT_TRUE(disjoint_path_pair(g, s, t).has_value())
          << s << "-" << t;
}

TEST(DisjointPair, PrimaryNeverCheaperThanLcp) {
  const auto g = test::make_instance({"ba", 20, 1001, 8});
  const routing::AllPairsRoutes routes(g);
  for (NodeId s = 0; s < 6; ++s) {
    for (NodeId t = 6; t < 12; ++t) {
      const auto pair = disjoint_path_pair(g, s, t);
      ASSERT_TRUE(pair.has_value());
      // The pair's cheap member can cost more than the unconstrained LCP
      // (disjointness binds), never less.
      EXPECT_GE(pair->primary_cost, routes.cost(s, t));
    }
  }
}

}  // namespace
}  // namespace fpss
