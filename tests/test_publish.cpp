// Incremental sharded publication (PR 6): dirty sink-tree tracking,
// copy-on-write snapshot export, and per-shard publishes.
//
// The load-bearing property: an incremental export built from a dirty
// superset is *logically identical* to a full export of the same converged
// state (same content checksum, same self_check), while physically sharing
// every clean destination block with its predecessor. The concurrency
// tests pin the sharded store's cross-shard consistency contract under
// TSan (the CI tsan job runs this suite).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common.h"
#include "graphgen/fixtures.h"
#include "pricing/session.h"
#include "service/service.h"
#include "service/snapshot.h"
#include "service/store.h"
#include "util/rng.h"

namespace fpss {
namespace {

using pricing::RestartPolicy;
using pricing::Session;
using service::RouteService;
using service::RouteSnapshot;
using service::ServiceConfig;
using service::ShardedSnapshotStore;
using service::SnapshotExportStats;

// --- incremental == full ---------------------------------------------------

TEST(IncrementalExport, EqualsFullAcrossRandomizedDeltaSequences) {
  const std::vector<test::InstanceSpec> specs = {
      {"er", 24, 101, 10},
      {"ba", 24, 102, 8},
      {"tiered", 24, 103, 9},
      {"grid", 24, 104, 5},
  };
  for (const auto& spec : specs) {
    SCOPED_TRACE(std::string(spec.family) + " n=" + std::to_string(spec.n));
    const graph::Graph g = test::make_instance(spec);
    const std::size_t n = g.node_count();
    Session session(g, pricing::Protocol::kPriceVector);
    session.track_dirty_destinations(true);
    ASSERT_TRUE(session.run().converged);

    std::uint64_t prev_epoch = session.engine().converged_epochs();
    std::shared_ptr<const RouteSnapshot> prev =
        RouteSnapshot::from_session(session, prev_epoch);
    ASSERT_TRUE(prev->self_check());

    util::Rng rng(spec.seed * 7919);
    for (int round = 0; round < 4; ++round) {
      SCOPED_TRACE("round " + std::to_string(round));
      // A burst of 1-3 cost changes, reconverged once (the serving layer's
      // coalescing primitive). Topology stays fixed, so the incremental
      // path must engage.
      std::vector<Session::Event> burst;
      const std::size_t count = 1 + rng.below(3);
      for (std::size_t e = 0; e < count; ++e) {
        const NodeId v = static_cast<NodeId>(rng.below(n));
        burst.push_back(Session::Event::cost_change(
            v, Cost{static_cast<Cost::rep>(rng.below(25))}));
      }
      ASSERT_TRUE(
          session.apply_events(burst, RestartPolicy::kRestartBarrier)
              .converged);

      const std::uint64_t epoch = session.engine().converged_epochs();
      const auto dirty = session.dirty_destinations(prev_epoch);
      ASSERT_TRUE(dirty.has_value());

      SnapshotExportStats stats;
      const auto incremental = RouteSnapshot::from_session_incremental(
          prev, session, epoch, *dirty, nullptr, nullptr, &stats);
      const auto full = RouteSnapshot::from_session(session, epoch);

      EXPECT_TRUE(incremental->self_check());
      EXPECT_EQ(incremental->content_checksum(), full->content_checksum());
      EXPECT_FALSE(stats.full_rebuild);
      EXPECT_EQ(stats.rows_rebuilt, dirty->size());
      EXPECT_EQ(stats.rows_reused, n - dirty->size());
      // Every clean destination's block is the *same object* as prev's —
      // the CoW contract the sharded store's readers lean on.
      for (NodeId j = 0; j < n; ++j) {
        const bool is_dirty =
            std::binary_search(dirty->begin(), dirty->end(), j);
        if (!is_dirty) {
          EXPECT_TRUE(incremental->shares_block_with(*prev, j)) << "j=" << j;
        }
      }
      prev = incremental;
      prev_epoch = epoch;
    }
  }
}

TEST(IncrementalExport, NoOpDeltaRebuildsNothing) {
  const auto f = graphgen::fig1();
  Session session(f.g, pricing::Protocol::kPriceVector);
  session.track_dirty_destinations(true);
  ASSERT_TRUE(session.run().converged);
  const std::uint64_t epoch = session.engine().converged_epochs();
  const auto prev = RouteSnapshot::from_session(session, epoch);

  // Nothing happened since the export: the dirty set is empty and the
  // incremental export shares every block.
  const auto dirty = session.dirty_destinations(epoch);
  ASSERT_TRUE(dirty.has_value());
  EXPECT_TRUE(dirty->empty());

  SnapshotExportStats stats;
  const auto next = RouteSnapshot::from_session_incremental(
      prev, session, epoch, *dirty, nullptr, nullptr, &stats);
  EXPECT_EQ(stats.rows_rebuilt, 0u);
  EXPECT_EQ(stats.rows_reused, f.g.node_count());
  EXPECT_FALSE(stats.full_rebuild);
  EXPECT_EQ(next->content_checksum(), prev->content_checksum());
  for (NodeId j = 0; j < f.g.node_count(); ++j)
    EXPECT_TRUE(next->shares_block_with(*prev, j));
  EXPECT_TRUE(next->self_check());
}

TEST(IncrementalExport, TopologyChangeFallsBackToFullRebuild) {
  const auto f = graphgen::fig1();
  Session session(f.g, pricing::Protocol::kPriceVector);
  session.track_dirty_destinations(true);
  ASSERT_TRUE(session.run().converged);
  const std::uint64_t epoch0 = session.engine().converged_epochs();
  const auto prev = RouteSnapshot::from_session(session, epoch0);

  // A link removal moves the graph generation: prev's rows describe a
  // different topology, so the incremental path must not share any of
  // them no matter what the dirty set says.
  ASSERT_TRUE(
      session.remove_link(f.x, f.a, RestartPolicy::kRestartBarrier).converged);
  const std::uint64_t epoch1 = session.engine().converged_epochs();
  const auto dirty = session.dirty_destinations(epoch0);
  ASSERT_TRUE(dirty.has_value());

  SnapshotExportStats stats;
  const auto incremental = RouteSnapshot::from_session_incremental(
      prev, session, epoch1, *dirty, nullptr, nullptr, &stats);
  EXPECT_TRUE(stats.full_rebuild);
  EXPECT_EQ(stats.rows_rebuilt, f.g.node_count());
  EXPECT_EQ(stats.rows_reused, 0u);
  const auto full = RouteSnapshot::from_session(session, epoch1);
  EXPECT_EQ(incremental->content_checksum(), full->content_checksum());
  EXPECT_TRUE(incremental->self_check());
}

// --- ShardedSnapshotStore --------------------------------------------------

TEST(ShardedStore, PublishSwapsOnlyDirtyShards) {
  const test::InstanceSpec spec{"er", 20, 555, 10};
  const graph::Graph g = test::make_instance(spec);
  const std::size_t n = g.node_count();
  Session session(g, pricing::Protocol::kPriceVector);
  session.track_dirty_destinations(true);
  ASSERT_TRUE(session.run().converged);
  const std::uint64_t epoch0 = session.engine().converged_epochs();
  const auto first = RouteSnapshot::from_session(session, epoch0);

  ShardedSnapshotStore store(n, 4);
  ASSERT_EQ(store.shard_count(), 4u);
  EXPECT_EQ(store.shard_size(), 5u);
  EXPECT_TRUE(store.acquire().empty());
  EXPECT_EQ(store.version(), 0u);

  // First publish fills every (null) slot regardless of the dirty flags.
  EXPECT_EQ(store.publish_all(first), 4u);
  EXPECT_EQ(store.version(), epoch0);
  EXPECT_EQ(store.shard_versions(), std::vector<std::uint64_t>(4, epoch0));

  // One cost change; only the shards holding dirty destinations swap.
  ASSERT_TRUE(
      session.change_cost(0, Cost{40}, RestartPolicy::kRestartBarrier)
          .converged);
  const std::uint64_t epoch1 = session.engine().converged_epochs();
  const auto dirty = session.dirty_destinations(epoch0);
  ASSERT_TRUE(dirty.has_value());
  ASSERT_FALSE(dirty->empty());

  SnapshotExportStats stats;
  const auto second = RouteSnapshot::from_session_incremental(
      first, session, epoch1, *dirty, nullptr, nullptr, &stats);
  std::vector<bool> shard_dirty(store.shard_count(), false);
  for (const NodeId j : *dirty) shard_dirty[store.shard_of(j)] = true;
  const std::size_t dirty_shards =
      static_cast<std::size_t>(
          std::count(shard_dirty.begin(), shard_dirty.end(), true));

  EXPECT_EQ(store.publish(second, shard_dirty), dirty_shards);
  EXPECT_EQ(store.version(), epoch1);
  EXPECT_EQ(store.publish_count(), 2u);

  // Readers: clean shards still reference the first snapshot object, yet
  // every destination's block is pointer-identical to the newest root.
  const auto view = store.acquire();
  ASSERT_FALSE(view.empty());
  EXPECT_EQ(view.newest, second);
  for (NodeId j = 0; j < n; ++j)
    EXPECT_TRUE(view.for_destination(j).shares_block_with(*second, j))
        << "j=" << j;
  const auto versions = store.shard_versions();
  for (std::size_t s = 0; s < store.shard_count(); ++s)
    EXPECT_EQ(versions[s], shard_dirty[s] ? epoch1 : epoch0) << "s=" << s;
}

TEST(ShardedStore, ShardCountIsClamped) {
  const ShardedSnapshotStore tiny(4, 999);
  EXPECT_LE(tiny.shard_count(), 4u);
  const ShardedSnapshotStore zero(7, 0);
  EXPECT_EQ(zero.shard_count(), 1u);
  EXPECT_EQ(zero.shard_of(6), 0u);
}

// --- RouteService acceptance ----------------------------------------------

// Two disjoint 6-cycles: a cost change in one component cannot touch the
// other's sink trees, so the rows-reused floor is deterministic.
graph::Graph two_cycles() {
  graph::Graph g{12};
  for (NodeId v = 0; v < 6; ++v) {
    g.add_edge(v, (v + 1) % 6);
    g.add_edge(6 + v, 6 + (v + 1) % 6);
    g.set_cost(v, Cost{static_cast<Cost::rep>(1 + v)});
    g.set_cost(6 + v, Cost{static_cast<Cost::rep>(2 + v)});
  }
  return g;
}

TEST(RouteServicePublish, SingleDeltaRebuildsOnlyDirtySinkTrees) {
  ServiceConfig config;
  config.shards = 4;  // destinations 0-2, 3-5, 6-8, 9-11
  RouteService svc(two_cycles(), config);
  ASSERT_EQ(svc.shard_count(), 4u);

  // The unavoidable first build: everything rebuilt, every shard swapped.
  const auto c0 = svc.counters();
  EXPECT_EQ(c0.publishes, 1u);
  EXPECT_EQ(c0.rows_rebuilt, 12u);
  EXPECT_EQ(c0.rows_reused, 0u);
  EXPECT_EQ(c0.shards_republished, 4u);
  EXPECT_EQ(c0.full_rebuilds, 0u);

  // One cost delta in the first component: the second component's six
  // sink trees are untouched and must be reused, and the two shards that
  // hold them must not be republished.
  svc.submit(RouteService::Delta::cost_change(0, Cost{50}));
  svc.drain();
  const auto c1 = svc.counters();
  EXPECT_EQ(c1.publishes, 2u);
  EXPECT_EQ(c1.full_rebuilds, 0u);
  EXPECT_GE(c1.rows_reused, 6u);
  EXPECT_LE(c1.rows_rebuilt - c0.rows_rebuilt, 6u);
  EXPECT_EQ(c1.rows_rebuilt + c1.rows_reused, c0.rows_rebuilt + 12u);
  EXPECT_LE(c1.shards_republished - c0.shards_republished, 2u);
  EXPECT_GE(c1.shards_republished, c0.shards_republished + 1u);
  EXPECT_GT(c1.publish_total_ns, 0u);
  EXPECT_GT(c1.max_publish_ns, 0u);

  // The served answers reflect the delta (the incremental snapshot is not
  // just cheap — it is current).
  EXPECT_EQ(svc.snapshot()->node_cost(0), Cost{50});

  // A topology delta degrades to a full rebuild and flags every shard.
  svc.submit(RouteService::Delta::add_link(0, 3));
  svc.drain();
  const auto c2 = svc.counters();
  EXPECT_EQ(c2.full_rebuilds, 1u);
  EXPECT_EQ(c2.rows_rebuilt, c1.rows_rebuilt + 12u);
  EXPECT_EQ(c2.shards_republished, c1.shards_republished + 4u);
}

// --- concurrent readers over sharded publishes (the TSan hunt) -------------

TEST(ShardedStore, ConcurrentReadersNeverSeeTornViews) {
  const test::InstanceSpec spec{"er", 24, 777, 12};
  const graph::Graph g = test::make_instance(spec);
  const std::size_t n = g.node_count();
  Session session(g, pricing::Protocol::kPriceVector);
  session.track_dirty_destinations(true);
  ASSERT_TRUE(session.run().converged);
  std::uint64_t prev_epoch = session.engine().converged_epochs();
  std::shared_ptr<const RouteSnapshot> prev =
      RouteSnapshot::from_session(session, prev_epoch);

  ShardedSnapshotStore store(n, 6);
  store.publish_all(prev);

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> views_checked{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&store, &done, &views_checked, n] {
      std::uint64_t last_version = 0;
      while (!done.load(std::memory_order_relaxed)) {
        const auto view = store.acquire();
        if (view.empty()) continue;
        // Versions move forward only, and every destination's block in
        // the view is the newest root's block — one consistent cut even
        // when the slots reference different snapshot objects.
        EXPECT_GE(view.newest->version(), last_version);
        last_version = view.newest->version();
        for (NodeId j = 0; j < n; ++j)
          ASSERT_TRUE(view.for_destination(j).shares_block_with(*view.newest, j));
        views_checked.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  util::Rng rng(4242);
  for (int round = 0; round < 8; ++round) {
    const NodeId v = static_cast<NodeId>(rng.below(n));
    ASSERT_TRUE(session
                    .change_cost(v, Cost{static_cast<Cost::rep>(rng.below(30))},
                                 RestartPolicy::kRestartBarrier)
                    .converged);
    const std::uint64_t epoch = session.engine().converged_epochs();
    const auto dirty = session.dirty_destinations(prev_epoch);
    ASSERT_TRUE(dirty.has_value());
    const auto next = RouteSnapshot::from_session_incremental(
        prev, session, epoch, *dirty, nullptr, nullptr, nullptr);
    std::vector<bool> shard_dirty(store.shard_count(), false);
    for (const NodeId j : *dirty) shard_dirty[store.shard_of(j)] = true;
    store.publish(next, shard_dirty);
    prev = next;
    prev_epoch = epoch;
  }
  done.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  EXPECT_GT(views_checked.load(), 0u);
  EXPECT_TRUE(store.newest()->self_check());
}

TEST(RouteServicePublish, ConcurrentQueriesDuringShardedPublishes) {
  ServiceConfig config;
  config.shards = 3;
  const test::InstanceSpec spec{"ba", 18, 888, 9};
  RouteService svc(test::make_instance(spec), config);
  const NodeId n = static_cast<NodeId>(svc.node_count());

  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&svc, &done, n, r] {
      util::Rng rng(static_cast<std::uint64_t>(900 + r));
      std::uint64_t last_version = 0;
      while (!done.load(std::memory_order_relaxed)) {
        std::vector<service::Request> batch;
        for (int q = 0; q < 8; ++q) {
          service::Request req;
          req.kind = (q % 2 == 0) ? service::RequestKind::kCost
                                  : service::RequestKind::kPrice;
          req.k = static_cast<NodeId>(rng.below(n));
          req.i = static_cast<NodeId>(rng.below(n));
          req.j = static_cast<NodeId>(rng.below(n));
          batch.push_back(req);
        }
        const auto replies = svc.query(batch);
        for (const auto& reply : replies) {
          // All replies in one batch carry the same composite provenance,
          // and it never moves backwards across batches.
          EXPECT_EQ(reply.snapshot_version, replies.front().snapshot_version);
          EXPECT_GE(reply.snapshot_version, last_version);
        }
        last_version = replies.front().snapshot_version;
      }
    });
  }

  util::Rng rng(31337);
  for (int round = 0; round < 10; ++round) {
    svc.submit(RouteService::Delta::cost_change(
        static_cast<NodeId>(rng.below(n)),
        Cost{static_cast<Cost::rep>(rng.below(20))}));
    svc.drain();
  }
  done.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  EXPECT_GE(svc.counters().publishes, 2u);
}

}  // namespace
}  // namespace fpss
