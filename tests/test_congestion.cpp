#include <gtest/gtest.h>

#include "common.h"
#include "congestion/congestion.h"

namespace fpss {
namespace {

using congestion::CapacityPlan;
using congestion::DynamicsParams;
using congestion::Outcome;
using payments::TrafficMatrix;

TEST(Loads, TransitOnlyCountsIntermediates) {
  const auto f = graphgen::fig1();
  const routing::AllPairsRoutes routes(f.g);
  TrafficMatrix traffic(6);
  traffic.set(f.x, f.z, 10);  // LCP XBDZ: B and D transit 10 packets
  const auto loads = congestion::transit_loads(routes, traffic);
  EXPECT_EQ(loads[f.b], 10u);
  EXPECT_EQ(loads[f.d], 10u);
  EXPECT_EQ(loads[f.x], 0u);
  EXPECT_EQ(loads[f.z], 0u);
  EXPECT_EQ(loads[f.a], 0u);
}

TEST(Loads, SumMatchesPathLengths) {
  const auto g = test::make_instance({"er", 16, 30, 6});
  const routing::AllPairsRoutes routes(g);
  const auto traffic = TrafficMatrix::uniform(g.node_count(), 2);
  const auto loads = congestion::transit_loads(routes, traffic);
  std::uint64_t total = 0;
  for (auto l : loads) total += l;
  std::uint64_t expected = 0;
  for (NodeId i = 0; i < g.node_count(); ++i)
    for (NodeId j = 0; j < g.node_count(); ++j)
      if (i != j) expected += 2 * (routes.path(i, j).size() - 2);
  EXPECT_EQ(total, expected);
}

TEST(CapacityPlan, UniformAndByDegree) {
  const auto g = graphgen::wheel_graph(6);
  const auto uniform = CapacityPlan::uniform(6, 100);
  EXPECT_EQ(uniform.capacity, std::vector<std::uint64_t>(6, 100));
  const auto degree = CapacityPlan::by_degree(g, 10);
  EXPECT_EQ(degree.capacity[0], 50u);  // hub degree 5
  EXPECT_EQ(degree.capacity[1], 30u);  // rim degree 3
}

TEST(Assess, OverloadAccounting) {
  CapacityPlan plan{std::vector<std::uint64_t>{10, 10, 10}};
  const auto report = congestion::assess({5, 10, 17}, plan);
  EXPECT_EQ(report.total_transit, 32u);
  EXPECT_EQ(report.peak_load, 17u);
  EXPECT_DOUBLE_EQ(report.peak_utilization, 1.7);
  EXPECT_EQ(report.overloaded_nodes, 1u);
  EXPECT_EQ(report.overflow_packets, 7u);
}

TEST(Dynamics, NoOverloadIsImmediateFixedPoint) {
  const auto g = test::make_instance({"ba", 16, 31, 5});
  const auto traffic = TrafficMatrix::uniform(g.node_count(), 1);
  const auto plan = CapacityPlan::uniform(g.node_count(), 1'000'000);
  const auto result =
      congestion::congestion_best_response(g, traffic, plan, {});
  EXPECT_EQ(result.outcome, Outcome::kFixedPoint);
  EXPECT_EQ(result.final_costs, g.costs());
  EXPECT_EQ(result.initial.overloaded_nodes, 0u);
}

TEST(Dynamics, SurchargeShedsLoadFromHotNode) {
  // Hub-and-rim: everything crosses the free hub; with a tight hub
  // capacity, the surcharge must push some traffic onto the rim.
  const auto g = graphgen::hub_adversarial(10, 3);
  const auto traffic = TrafficMatrix::uniform(g.node_count(), 1);
  CapacityPlan plan = CapacityPlan::uniform(g.node_count(), 1'000'000);
  plan.capacity[0] = 10;  // hub
  DynamicsParams params;
  params.surcharge_per_unit = 1;
  params.packets_per_unit = 10;
  const auto result =
      congestion::congestion_best_response(g, traffic, plan, params);
  EXPECT_GT(result.initial.overflow_packets, 0u);
  // At some round the surcharge must have pushed traffic off the hub
  // (possibly flapping back later — that is the open problem).
  std::uint64_t min_overflow = result.initial.overflow_packets;
  for (const auto& round : result.history)
    min_overflow = std::min(min_overflow, round.overflow_packets);
  EXPECT_LT(min_overflow, result.initial.overflow_packets);
  EXPECT_NE(result.outcome, Outcome::kCutoff);
}

TEST(Dynamics, ParallelPathsCanFlap) {
  // Two identical middle nodes between every source/destination pair: the
  // congested one surcharges, all traffic flips to the other, which then
  // surcharges back — a 2-cycle (route flapping).
  graph::Graph g{4};
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  g.set_cost(1, Cost{1});
  g.set_cost(2, Cost{2});
  TrafficMatrix traffic(4);
  traffic.set(0, 3, 100);
  traffic.set(3, 0, 100);
  const auto plan = CapacityPlan::uniform(4, 50);
  DynamicsParams params;
  params.surcharge_per_unit = 5;
  params.packets_per_unit = 50;
  const auto result =
      congestion::congestion_best_response(g, traffic, plan, params);
  EXPECT_EQ(result.outcome, Outcome::kCycle);
  EXPECT_GE(result.cycle_length, 2u);
}

TEST(Dynamics, RoundCapRespected) {
  const auto g = test::make_instance({"er", 12, 32, 4});
  const auto traffic = TrafficMatrix::uniform(g.node_count(), 50);
  const auto plan = CapacityPlan::uniform(g.node_count(), 1);
  DynamicsParams params;
  params.max_rounds = 3;
  const auto result =
      congestion::congestion_best_response(g, traffic, plan, params);
  EXPECT_LE(result.rounds, 3u);
}

}  // namespace
}  // namespace fpss
