// The unified engine core: the event scheduler must be seed-reproducible
// bit for bit, carry every kernel capability the stage scheduler has
// (trace, threads, shared exports), and — the point of the exercise —
// still converge to the exact VCG prices when the channel model injects
// loss, link flaps, and partitions. The paper's correctness argument is
// monotone convergence, not synchrony, and these tests hold it to that.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "bgp/engine.h"
#include "bgp/trace.h"
#include "common.h"
#include "mechanism/vcg.h"
#include "pricing/session.h"
#include "pricing/verify.h"

namespace fpss {
namespace {

using bgp::ChannelConfig;
using bgp::EngineConfig;
using mechanism::VcgMechanism;
using pricing::Protocol;
using pricing::Session;

/// Everything observable from a run: stats plus all routes and prices.
std::string fingerprint(Session& session, const bgp::RunStats& stats) {
  std::ostringstream out;
  out << "messages=" << stats.messages
      << " words=" << stats.traffic.total_words()
      << " lost=" << stats.lost_messages << " end=" << stats.end_time
      << " route_t=" << stats.last_route_change_time
      << " value_t=" << stats.last_value_change_time
      << " max_link=" << stats.max_link_messages
      << " converged=" << stats.converged << "\n";
  const std::size_t n = session.network().node_count();
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) {
      if (i == j) continue;
      const bgp::SelectedRoute& route = session.route(i, j);
      out << i << "->" << j << ":";
      for (NodeId v : route.path) out << " " << v;
      for (std::size_t t = 1; t + 1 < route.path.size(); ++t)
        out << " p[" << route.path[t]
            << "]=" << session.price(route.path[t], i, j).to_string();
      out << "\n";
    }
  }
  return out.str();
}

void expect_exact(const Session& session, const graph::Graph& truth,
                  const std::string& when) {
  const VcgMechanism mech(truth);
  const auto result = pricing::verify_against_centralized(session, mech);
  EXPECT_TRUE(result.ok) << when << ": " << result.first_diff;
}

// ---------------------------------------------------------------------------
// Seed reproducibility
// ---------------------------------------------------------------------------

TEST(EventScheduler, SameSeedBitIdenticalRuns) {
  const auto g = test::make_instance({"ba", 24, 301, 9});
  ChannelConfig channel;
  channel.seed = 42;
  channel.mrai = 1.0;
  channel.loss = 0.15;
  auto run_once = [&]() {
    Session session(g, Protocol::kPriceVector, EngineConfig::event(channel));
    const auto stats = session.run();
    EXPECT_TRUE(stats.converged);
    EXPECT_GT(stats.lost_messages, 0u);  // the loss path really ran
    return fingerprint(session, stats);
  };
  const std::string first = run_once();
  EXPECT_EQ(first, run_once());
}

TEST(EventScheduler, DifferentSeedsStillExactSamePrices) {
  const auto g = test::make_instance({"er", 20, 302, 8});
  for (const std::uint64_t seed : {1ull, 7ull, 1234567ull}) {
    ChannelConfig channel;
    channel.seed = seed;
    Session session(g, Protocol::kPriceVector, EngineConfig::event(channel));
    ASSERT_TRUE(session.run().converged);
    expect_exact(session, g, "seed " + std::to_string(seed));
  }
}

TEST(EventScheduler, ThreadCountDoesNotChangeResults) {
  // The pool only accelerates the initial compute wave; delays, loss draws
  // and sequence numbers are all assigned in the serial flood phase, so the
  // run is bit-identical at any width.
  const auto g = test::make_instance({"tiered", 32, 303, 7});
  ChannelConfig channel;
  channel.seed = 9;
  channel.loss = 0.1;
  auto run_width = [&](unsigned threads) {
    EngineConfig config = EngineConfig::event(channel);
    config.threads = threads;
    Session session(g, Protocol::kPriceVector, config);
    const auto stats = session.run();
    EXPECT_TRUE(stats.converged);
    return fingerprint(session, stats);
  };
  const std::string serial = run_width(1);
  EXPECT_EQ(serial, run_width(4));
  EXPECT_EQ(serial, run_width(8));
}

// ---------------------------------------------------------------------------
// Channel models
// ---------------------------------------------------------------------------

TEST(ChannelModel, HeavyTailedDelaysStillExact) {
  const auto g = test::make_instance({"ba", 18, 304, 6});
  ChannelConfig channel;
  channel.delay = ChannelConfig::Delay::kPareto;
  channel.max_delay = 50.0;
  channel.pareto_alpha = 1.3;
  channel.seed = 17;
  Session session(g, Protocol::kAvoidanceVector, EngineConfig::event(channel));
  ASSERT_TRUE(session.run().converged);
  expect_exact(session, g, "pareto delays");
}

TEST(ChannelModel, MraiBatchingWithLossStillExact) {
  const auto g = test::make_instance({"grid", 16, 305, 5});
  ChannelConfig channel;
  channel.mrai = 2.5;
  channel.loss = 0.2;
  channel.seed = 23;
  Session session(g, Protocol::kPriceVector, EngineConfig::event(channel));
  const auto stats = session.run();
  ASSERT_TRUE(stats.converged);
  EXPECT_GT(stats.lost_messages, 0u);
  expect_exact(session, g, "mrai + loss");
}

TEST(ChannelModel, LossRetransmissionsAreCounted) {
  const auto g = test::make_instance({"er", 16, 306, 7});
  auto messages_at = [&](double loss) {
    ChannelConfig channel;
    channel.loss = loss;
    channel.seed = 3;
    Session session(g, Protocol::kPriceVector, EngineConfig::event(channel));
    const auto stats = session.run();
    EXPECT_TRUE(stats.converged);
    return stats;
  };
  const auto clean = messages_at(0.0);
  const auto lossy = messages_at(0.3);
  EXPECT_EQ(clean.lost_messages, 0u);
  EXPECT_GT(lossy.lost_messages, 0u);
  // Eventual delivery: loss slows the run down but never forfeits it.
  EXPECT_GT(lossy.end_time, clean.end_time);
}

// ---------------------------------------------------------------------------
// Fault injection: the acceptance gauntlet
// ---------------------------------------------------------------------------

// 10% i.i.d. loss plus one mid-convergence link flap, on all four topology
// families: after the link heals the run must settle on the exact VCG
// prices of the original graph. This is the refactor's reason to exist —
// correctness under realistic churn, not just the lockstep proof model.
TEST(FaultInjection, LossPlusLinkFlapExactOnAllFamilies) {
  for (const std::string family : {"tiered", "ba", "er", "ring"}) {
    const auto g = test::make_instance({family.c_str(), 24, 307, 8});
    const auto [u, v] = g.edges().front();
    ChannelConfig channel;
    channel.loss = 0.1;
    channel.seed = 71;
    channel.flaps.push_back({u, v, /*down_time=*/2.0, /*up_time=*/8.0});
    Session session(g, Protocol::kPriceVector, EngineConfig::event(channel));
    const auto stats = session.run();
    ASSERT_TRUE(stats.converged) << family;
    EXPECT_GT(stats.lost_messages, 0u) << family;
    expect_exact(session, g, family + " after loss + flap");
  }
}

TEST(FaultInjection, TemporaryPartitionHealsExactly) {
  const auto g = test::make_instance({"er", 20, 308, 6});
  bgp::PartitionEvent part;
  // Cut off a third of the network mid-convergence, heal it later.
  for (NodeId x = 0; x < g.node_count() / 3; ++x) part.group.push_back(x);
  part.down_time = 3.0;
  part.up_time = 12.0;
  ChannelConfig channel;
  channel.seed = 5;
  channel.partitions.push_back(part);
  Session session(g, Protocol::kPriceVector, EngineConfig::event(channel));
  const auto stats = session.run();
  ASSERT_TRUE(stats.converged);
  expect_exact(session, g, "after partition heal");
}

TEST(FaultInjection, PermanentLinkCutRoutesExactPricesAfterBarrier) {
  // A flap with no up_time is a permanent failure — a *worsening* event.
  // Routes reconverge exactly on their own, but price-vector values only
  // move downward, so prices for surviving routes can be stuck below the
  // new (higher) truth; per the paper's Sect. 6 semantics the price
  // computation must restart once the routes have settled. The restart
  // barrier recovers exactness.
  const auto g = test::make_instance({"er", 18, 309, 7});
  // Pick a link whose removal keeps the graph biconnected so prices stay
  // defined everywhere.
  for (const auto& [u, v] : g.edges()) {
    graph::Graph probe = g;
    probe.remove_edge(u, v);
    if (!graph::is_biconnected(probe)) continue;
    ChannelConfig channel;
    channel.seed = 13;
    channel.flaps.push_back({u, v, /*down_time=*/2.0, /*up_time=*/0.0});
    Session session(g, Protocol::kPriceVector, EngineConfig::event(channel));
    ASSERT_TRUE(session.run().converged);
    const VcgMechanism mech(probe);
    for (NodeId i = 0; i < probe.node_count(); ++i)
      for (NodeId j = 0; j < probe.node_count(); ++j) {
        if (i == j) continue;
        ASSERT_EQ(session.route(i, j).path, mech.routes().path(i, j))
            << "route " << i << "->" << j << " after permanent cut";
      }
    // Restart barrier: price state refills on the settled routes.
    for (NodeId x = 0; x < probe.node_count(); ++x)
      session.agent(x).restart_values();
    ASSERT_TRUE(session.run().converged);
    expect_exact(session, probe, "after permanent cut + barrier");
    return;
  }
  GTEST_SKIP() << "no removable link keeps the instance biconnected";
}

// ---------------------------------------------------------------------------
// Trace under the event scheduler
// ---------------------------------------------------------------------------

/// Records every callback with its tick so ordering can be asserted.
class RecordingTrace : public bgp::TraceSink {
 public:
  struct Entry {
    char kind;  // 'm'essage, 'r'oute, 'v'alue, 'd'rop, 'l'ink, 'q'uiescent
    Stage tick;
  };

  void on_message(Stage s, NodeId, NodeId, const bgp::MessageSize&) override {
    entries.push_back({'m', s});
  }
  void on_route_change(Stage s, NodeId) override {
    entries.push_back({'r', s});
  }
  void on_value_change(Stage s, NodeId) override {
    entries.push_back({'v', s});
  }
  void on_drop(Stage s, NodeId, NodeId) override {
    entries.push_back({'d', s});
  }
  void on_link_event(Stage s, NodeId, NodeId, bool) override {
    entries.push_back({'l', s});
  }
  void on_quiescent(Stage s) override { entries.push_back({'q', s}); }

  std::vector<Entry> entries;
};

TEST(EventTrace, CallbacksFireInTickOrder) {
  const auto g = test::make_instance({"ba", 16, 310, 6});
  const auto [u, v] = g.edges().front();
  ChannelConfig channel;
  channel.seed = 29;
  channel.loss = 0.2;
  channel.flaps.push_back({u, v, /*down_time=*/1.5, /*up_time=*/5.0});
  Session session(g, Protocol::kPriceVector, EngineConfig::event(channel));
  RecordingTrace trace;
  session.engine().set_trace(&trace);
  const auto stats = session.run();
  session.engine().set_trace(nullptr);
  ASSERT_TRUE(stats.converged);

  std::size_t messages = 0, drops = 0, links = 0, quiescents = 0;
  Stage last_tick = 0;
  for (const auto& entry : trace.entries) {
    EXPECT_GE(entry.tick, last_tick) << "trace ticks must be monotone";
    last_tick = entry.tick;
    messages += entry.kind == 'm';
    drops += entry.kind == 'd';
    links += entry.kind == 'l';
    quiescents += entry.kind == 'q';
  }
  EXPECT_EQ(messages, stats.messages);
  EXPECT_GT(drops, 0u);       // loss and/or flap killed something
  EXPECT_EQ(links, 2u);       // one down + one up
  EXPECT_EQ(quiescents, 1u);  // fired exactly once, at the end
  EXPECT_EQ(trace.entries.back().kind, 'q');
}

TEST(EventTrace, SinkIdenticalAcrossIdenticalRuns) {
  const auto g = test::make_instance({"er", 14, 311, 5});
  auto record = [&]() {
    ChannelConfig channel;
    channel.seed = 31;
    channel.loss = 0.1;
    Session session(g, Protocol::kAvoidanceVector,
                    EngineConfig::event(channel));
    RecordingTrace trace;
    session.engine().set_trace(&trace);
    EXPECT_TRUE(session.run().converged);
    session.engine().set_trace(nullptr);
    std::ostringstream out;
    for (const auto& entry : trace.entries)
      out << entry.kind << entry.tick << ";";
    return out.str();
  };
  EXPECT_EQ(record(), record());
}

// ---------------------------------------------------------------------------
// The unified clock
// ---------------------------------------------------------------------------

TEST(UnifiedClock, StageSchedulerMirrorsStagesIntoTimeFields) {
  const auto g = test::make_instance({"ba", 16, 312, 6});
  Session session(g, Protocol::kPriceVector);
  const auto stats = session.run();
  ASSERT_TRUE(stats.converged);
  EXPECT_EQ(session.engine().stats().end_time,
            static_cast<double>(session.engine().stats().stages));
  EXPECT_EQ(session.engine().stats().last_route_change_time,
            static_cast<double>(session.engine().stats().last_route_change_stage));
  EXPECT_EQ(session.engine().stats().last_value_change_time,
            static_cast<double>(session.engine().stats().last_value_change_stage));
  EXPECT_EQ(session.engine().now(), stats.end_time);
}

TEST(UnifiedClock, EventSchedulerReportsVirtualTime) {
  const auto g = test::make_instance({"er", 14, 313, 6});
  ChannelConfig channel;
  channel.seed = 37;
  Session session(g, Protocol::kPriceVector, EngineConfig::event(channel));
  const auto stats = session.run();
  ASSERT_TRUE(stats.converged);
  EXPECT_EQ(stats.stages, 0u);  // no lockstep stages under kEvent
  EXPECT_GT(stats.end_time, 0.0);
  EXPECT_GE(stats.end_time, stats.last_value_change_time);
  EXPECT_GE(stats.last_value_change_time, 0.0);
  EXPECT_EQ(session.engine().now(), stats.end_time);
}

// ---------------------------------------------------------------------------
// Dynamics through the session, under the event scheduler
// ---------------------------------------------------------------------------

TEST(EventDynamics, FailAndRestoreNodeRoundTrips) {
  const auto g = test::make_instance({"er", 16, 314, 7});
  ChannelConfig channel;
  channel.seed = 41;
  Session session(g, Protocol::kPriceVector, EngineConfig::event(channel));
  ASSERT_TRUE(session.run().converged);
  const NodeId victim = 0;
  const auto failure =
      session.fail_node(victim, pricing::RestartPolicy::kRestartBarrier);
  ASSERT_TRUE(failure.stats.converged);
  EXPECT_EQ(failure.links.size(), g.degree(victim));
  const auto stats =
      session.restore_node(failure.links, pricing::RestartPolicy::kRestartBarrier);
  ASSERT_TRUE(stats.converged);
  expect_exact(session, g, "event-scheduled crash+restore");
}

}  // namespace
}  // namespace fpss
