// The serving layer: RouteSnapshot export fidelity, binary persistence,
// SnapshotStore publication, and the RouteService's concurrent
// publish/read contract (the suite the CI TSan job runs).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <thread>
#include <vector>

#include "common.h"
#include "graphgen/fixtures.h"
#include "mechanism/vcg.h"
#include "pricing/session.h"
#include "service/service.h"
#include "service/snapshot.h"
#include "service/store.h"
#include "util/rng.h"

namespace fpss {
namespace {

using service::RouteService;
using service::RouteSnapshot;
using service::ServiceConfig;
using service::SnapshotStore;

std::shared_ptr<const RouteSnapshot> converge_and_export(
    const graph::Graph& g,
    pricing::Protocol protocol = pricing::Protocol::kPriceVector) {
  pricing::Session session(g, protocol);
  EXPECT_TRUE(session.run().converged);
  return RouteSnapshot::from_session(session,
                                     session.engine().converged_epochs());
}

TEST(RouteSnapshot, MatchesMechanismOnFig1) {
  const auto f = graphgen::fig1();
  const auto snap = converge_and_export(f.g);
  const mechanism::VcgMechanism mech(f.g);
  const std::size_t n = f.g.node_count();

  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) {
      if (i == j) {
        // Self-pairs are the snapshot's own convention: zero everywhere
        // (the centralized mechanism rejects them by precondition).
        EXPECT_EQ(snap->cost(i, j), Cost::zero());
        EXPECT_EQ(snap->pair_payment(i, j), Cost::zero());
        continue;
      }
      EXPECT_EQ(snap->cost(i, j), mech.routes().cost(i, j));
      EXPECT_EQ(snap->path(i, j), mech.routes().path(i, j));
      EXPECT_EQ(snap->pair_payment(i, j), mech.pair_payment(i, j));
      for (NodeId k = 0; k < n; ++k)
        EXPECT_EQ(snap->price(k, i, j), mech.price(k, i, j))
            << "k=" << k << " i=" << i << " j=" << j;
    }
  }
  EXPECT_TRUE(snap->self_check());
  // The worked numbers of Fig. 1 (E1/E2).
  EXPECT_EQ(snap->price(f.d, f.x, f.z), Cost{3});
  EXPECT_EQ(snap->price(f.b, f.x, f.z), Cost{4});
  EXPECT_EQ(snap->price(f.d, f.y, f.z), Cost{9});
}

TEST(RouteSnapshot, MatchesMechanismAcrossFamilies) {
  for (const auto& spec : std::vector<test::InstanceSpec>{
           {"er", 20, 31, 9}, {"ba", 24, 32, 12}, {"tiered", 24, 33, 6}}) {
    const graph::Graph g = test::make_instance(spec);
    const auto snap = converge_and_export(g, pricing::Protocol::kAvoidanceVector);
    const mechanism::VcgMechanism mech(g);
    ASSERT_TRUE(snap->self_check());
    util::Rng rng(spec.seed);
    for (int samples = 0; samples < 400; ++samples) {
      const NodeId i = static_cast<NodeId>(rng.below(g.node_count()));
      const NodeId j = static_cast<NodeId>(rng.below(g.node_count()));
      const NodeId k = static_cast<NodeId>(rng.below(g.node_count()));
      if (i == j) continue;
      EXPECT_EQ(snap->cost(i, j), mech.routes().cost(i, j));
      EXPECT_EQ(snap->price(k, i, j), mech.price(k, i, j))
          << spec.family << " k=" << k << " i=" << i << " j=" << j;
    }
  }
}

TEST(RouteSnapshot, SelfPairsMonopoliesAndUnreachable) {
  // A path graph makes every interior node a monopoly: prices infinite.
  auto snap = converge_and_export(graphgen::path_graph(4));
  EXPECT_EQ(snap->cost(0, 0), Cost::zero());
  EXPECT_EQ(snap->path(2, 2), (graph::Path{2}));
  EXPECT_EQ(snap->next_hop(1, 1), kInvalidNode);
  EXPECT_TRUE(snap->price(1, 0, 3).is_infinite());
  EXPECT_TRUE(snap->pair_payment(0, 3).is_infinite());
  EXPECT_TRUE(snap->self_check());

  // Two components: cross pairs unreachable, empty paths, zero prices.
  graph::Graph split(4);
  split.add_edge(0, 1);
  split.add_edge(2, 3);
  snap = converge_and_export(split);
  EXPECT_TRUE(snap->cost(0, 3).is_infinite());
  EXPECT_FALSE(snap->reachable(0, 2));
  EXPECT_TRUE(snap->path(0, 3).empty());
  EXPECT_EQ(snap->next_hop(0, 3), kInvalidNode);
  EXPECT_EQ(snap->price(1, 0, 3), Cost::zero());
  EXPECT_EQ(snap->cost(2, 3), Cost::zero());  // direct link, no transit
  EXPECT_TRUE(snap->self_check());
}

TEST(RouteSnapshot, SaveLoadRoundTripIsBitIdentical) {
  const graph::Graph g = test::make_instance({"er", 24, 41, 15});
  const auto snap = converge_and_export(g);
  const std::string path = ::testing::TempDir() + "/fpss_snap_test.bin";

  const auto saved = service::save_snapshot(*snap, path);
  ASSERT_TRUE(saved.ok()) << saved.error;
  const auto loaded = service::load_snapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  const RouteSnapshot& reloaded = *loaded.snapshot;

  EXPECT_EQ(reloaded.checksum(), snap->checksum());
  EXPECT_EQ(reloaded.version(), snap->version());
  EXPECT_EQ(reloaded.graph_version(), snap->graph_version());
  EXPECT_TRUE(reloaded.self_check());
  const std::size_t n = g.node_count();
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) {
      ASSERT_EQ(reloaded.cost(i, j), snap->cost(i, j));
      ASSERT_EQ(reloaded.next_hop(i, j), snap->next_hop(i, j));
      ASSERT_EQ(reloaded.path(i, j), snap->path(i, j));
      ASSERT_EQ(reloaded.pair_payment(i, j), snap->pair_payment(i, j));
    }
  }

  // Re-saving the reloaded snapshot must reproduce the file byte for byte.
  const std::string path2 = ::testing::TempDir() + "/fpss_snap_test2.bin";
  ASSERT_TRUE(service::save_snapshot(reloaded, path2).ok());
  std::ifstream a(path, std::ios::binary), b(path2, std::ios::binary);
  std::string bytes_a((std::istreambuf_iterator<char>(a)),
                      std::istreambuf_iterator<char>());
  std::string bytes_b((std::istreambuf_iterator<char>(b)),
                      std::istreambuf_iterator<char>());
  EXPECT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a, bytes_b);
  std::remove(path.c_str());
  std::remove(path2.c_str());
}

TEST(RouteSnapshot, LoadRejectsCorruption) {
  EXPECT_NE(service::load_snapshot("/nonexistent/x.snap").error.find(
                "cannot open"),
            std::string::npos);

  const auto snap = converge_and_export(graphgen::fig1().g);
  const std::string path = ::testing::TempDir() + "/fpss_snap_corrupt.bin";
  ASSERT_TRUE(service::save_snapshot(*snap, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();

  auto rewrite = [&](const std::string& mutated) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << mutated;
  };

  // Flip one payload byte: checksum must catch it.
  std::string flipped = bytes;
  flipped[flipped.size() - 5] =
      static_cast<char>(flipped[flipped.size() - 5] ^ 0x40);
  rewrite(flipped);
  EXPECT_NE(service::load_snapshot(path).error.find("checksum mismatch"),
            std::string::npos);

  // Truncation.
  rewrite(bytes.substr(0, bytes.size() - 9));
  EXPECT_NE(service::load_snapshot(path).error.find("length mismatch"),
            std::string::npos);

  // Bad magic.
  std::string wrong = bytes;
  wrong[0] = 'X';
  rewrite(wrong);
  EXPECT_NE(service::load_snapshot(path).error.find("bad magic"),
            std::string::npos);

  std::remove(path.c_str());
}

TEST(SnapshotStore, PublishesAtomicallyAndKeepsOldEpochsAlive) {
  const auto f = graphgen::fig1();
  pricing::Session session(f.g, pricing::Protocol::kPriceVector);
  ASSERT_TRUE(session.run().converged);

  SnapshotStore store;
  EXPECT_EQ(store.current(), nullptr);
  EXPECT_EQ(store.version(), 0u);

  const auto v1 = RouteSnapshot::from_session(
      session, session.engine().converged_epochs());
  store.publish(v1);
  EXPECT_EQ(store.version(), 1u);
  EXPECT_EQ(store.publish_count(), 1u);

  const auto held = store.current();  // a reader holding epoch 1
  session.change_cost(f.d, Cost{7}, pricing::RestartPolicy::kRestartBarrier);
  const auto v2 = RouteSnapshot::from_session(
      session, session.engine().converged_epochs());
  const auto displaced = store.publish(v2);
  EXPECT_EQ(displaced, v1);
  EXPECT_GT(store.version(), 1u);
  EXPECT_EQ(store.publish_count(), 2u);

  // The held epoch still answers consistently even though it was displaced.
  EXPECT_EQ(held->version(), 1u);
  EXPECT_TRUE(held->self_check());
  EXPECT_EQ(held->price(f.d, f.x, f.z), Cost{3});
}

TEST(Engine, ConvergedEpochsAdvanceOnlyAtConvergence) {
  const auto f = graphgen::fig1();
  pricing::Session session(f.g, pricing::Protocol::kPriceVector);
  EXPECT_EQ(session.engine().converged_epochs(), 0u);
  ASSERT_TRUE(session.run().converged);
  EXPECT_EQ(session.engine().converged_epochs(), 1u);
  // A restart-barrier event reconverges in two runs: routes, then prices.
  session.change_cost(f.b, Cost{3}, pricing::RestartPolicy::kRestartBarrier);
  EXPECT_EQ(session.engine().converged_epochs(), 3u);
}

TEST(RouteService, ServesConvergedStateImmediately) {
  const auto f = graphgen::fig1();
  RouteService svc(f.g);
  EXPECT_EQ(svc.node_count(), f.g.node_count());
  EXPECT_EQ(svc.publish_count(), 1u);
  EXPECT_EQ(svc.price(f.d, f.x, f.z), Cost{3});
  EXPECT_EQ(svc.price(f.b, f.x, f.z), Cost{4});
  EXPECT_EQ(svc.cost(f.x, f.z), Cost{3});
  EXPECT_EQ(svc.path(f.x, f.z), (graph::Path{f.x, f.b, f.d, f.z}));
  const auto counters = svc.counters();
  EXPECT_EQ(counters.queries, 4u);
  EXPECT_EQ(counters.batches, 4u);
}

TEST(RouteService, BackgroundDeltasReachReadersWithMechanismExactness) {
  const graph::Graph g = test::make_instance({"er", 20, 51, 10});
  RouteService svc(g);
  const std::uint64_t v1 = svc.version();

  // Cost change + a link removal (biconnected input: stays connected).
  const auto edge = g.edges().front();
  svc.submit({RouteService::Delta::cost_change(3, Cost{42}),
              RouteService::Delta::remove_link(edge.first, edge.second)});
  svc.drain();
  EXPECT_GT(svc.version(), v1);
  EXPECT_EQ(svc.counters().deltas_applied, 2u);

  graph::Graph mutated = g;
  mutated.set_cost(3, Cost{42});
  mutated.remove_edge(edge.first, edge.second);
  const mechanism::VcgMechanism mech(mutated);
  const auto snap = svc.snapshot();
  ASSERT_TRUE(snap->self_check());
  for (NodeId i = 0; i < g.node_count(); ++i)
    for (NodeId j = 0; j < g.node_count(); ++j)
      ASSERT_EQ(snap->cost(i, j), mech.routes().cost(i, j));
  util::Rng rng(52);
  for (int samples = 0; samples < 300; ++samples) {
    const NodeId i = static_cast<NodeId>(rng.below(g.node_count()));
    const NodeId j = static_cast<NodeId>(rng.below(g.node_count()));
    const NodeId k = static_cast<NodeId>(rng.below(g.node_count()));
    if (i == j) continue;
    ASSERT_EQ(snap->price(k, i, j), mech.price(k, i, j));
  }

  // Restoring the link reconverges back to the original mechanism state.
  svc.submit(RouteService::Delta::add_link(edge.first, edge.second));
  svc.submit(RouteService::Delta::cost_change(3, g.cost(3)));
  svc.drain();
  const mechanism::VcgMechanism original(g);
  const auto back = svc.snapshot();
  for (NodeId i = 0; i < g.node_count(); ++i)
    for (NodeId j = 0; j < g.node_count(); ++j)
      ASSERT_EQ(back->cost(i, j), original.routes().cost(i, j));
}

TEST(RouteService, BatchedQueriesShareOneEpochAndCount) {
  const auto f = graphgen::fig1();
  RouteService svc(f.g);
  std::vector<service::Request> batch;
  batch.push_back({service::RequestKind::kCost, kInvalidNode, f.x, f.z});
  batch.push_back({service::RequestKind::kPrice, f.d, f.x, f.z});
  batch.push_back({service::RequestKind::kPairPayment, kInvalidNode,
                   f.x, f.z});
  batch.push_back({service::RequestKind::kNextHop, kInvalidNode, f.x,
                   f.z});
  batch.push_back({service::RequestKind::kPath, kInvalidNode, f.x, f.z});
  batch.push_back({service::RequestKind::kPayment, f.d, kInvalidNode,
                   kInvalidNode});

  const auto answers = svc.query(batch);
  ASSERT_EQ(answers.size(), batch.size());
  EXPECT_EQ(answers[0].value, Cost{3});
  EXPECT_EQ(answers[1].value, Cost{3});
  EXPECT_EQ(answers[2].value, Cost{7});  // p^B + p^D = 4 + 3
  EXPECT_EQ(answers[3].node, f.b);
  EXPECT_EQ(answers[4].path, (graph::Path{f.x, f.b, f.d, f.z}));
  EXPECT_EQ(answers[5].amount, 0);
  for (const auto& a : answers) {
    EXPECT_EQ(a.snapshot_version, answers[0].snapshot_version);
    EXPECT_EQ(a.published_at_ns, answers[0].published_at_ns);
  }

  const auto counters = svc.counters();
  EXPECT_EQ(counters.queries, batch.size());
  EXPECT_EQ(counters.batches, 1u);
  EXPECT_GT(counters.total_ns, 0u);
  EXPECT_GE(counters.max_batch_ns, counters.total_ns / counters.batches);
  const util::Table t = svc.counters_table();
  EXPECT_EQ(t.row_count(), 20u);
}

TEST(RouteService, ChargesReachPaymentTotalsOnRepublish) {
  const auto f = graphgen::fig1();
  RouteService svc(f.g);
  svc.charge(f.x, f.z, 100);  // p^D = 3, p^B = 4 per packet
  svc.charge(f.y, f.z, 10);   // p^D = 9 per packet

  // Totals are embedded at publish time: force one and wait.
  const std::uint64_t target = svc.publish_count() + 1;
  svc.submit(RouteService::Delta::republish());
  svc.wait_for_publishes(target);

  EXPECT_EQ(svc.payment(f.d), 100 * 3 + 10 * 9);
  EXPECT_EQ(svc.payment(f.b), 100 * 4);
  EXPECT_EQ(svc.payment(f.a), 0);
  const auto snap = svc.snapshot();
  EXPECT_EQ(snap->payment_owed(f.d), 390);
  EXPECT_EQ(snap->payment_settled(f.d), 0);

  // settle() moves owed into settled; totals are preserved.
  svc.settle();
  svc.submit(RouteService::Delta::republish());
  svc.wait_for_publishes(target + 1);
  EXPECT_EQ(svc.snapshot()->payment_settled(f.d), 390);
  EXPECT_EQ(svc.snapshot()->payment_owed(f.d), 0);
  EXPECT_EQ(svc.payment(f.d), 390);
  EXPECT_EQ(svc.counters().charges, 2u);
}

// The acceptance test for the publish/read contract, run under TSan in CI:
// reader threads hammer queries while the updater applies topology and
// cost deltas and republishes. Every observation must come from a
// complete, internally consistent snapshot — a torn read would break the
// cost-equals-sum-of-transit-costs identity or the digest.
TEST(RouteService, ConcurrentReadersNeverObserveTornSnapshots) {
  const graph::Graph g = test::make_instance({"er", 16, 61, 8});
  ServiceConfig config;
  config.protocol = pricing::Protocol::kPriceVector;
  RouteService svc(g, config);

  constexpr int kReaders = 4;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> reads{0};
  std::atomic<std::uint64_t> failures{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      util::Rng rng(1000 + static_cast<std::uint64_t>(r));
      while (!done.load(std::memory_order_acquire)) {
        const auto snap = svc.snapshot();
        const NodeId i =
            static_cast<NodeId>(rng.below(snap->node_count()));
        const NodeId j =
            static_cast<NodeId>(rng.below(snap->node_count()));
        // The identity every complete snapshot satisfies: the stored pair
        // cost equals the sum of the declared costs along the stored path.
        Cost along = Cost::zero();
        const graph::Path p = snap->path(i, j);
        for (std::size_t h = 1; h + 1 < p.size(); ++h)
          along += snap->node_cost(p[h]);
        const bool ok = (i == j || p.size() >= 2 || !snap->reachable(i, j)) &&
                        (!snap->reachable(i, j) || along == snap->cost(i, j));
        if (!ok) failures.fetch_add(1, std::memory_order_relaxed);
        if (reads.fetch_add(1, std::memory_order_relaxed) % 512 == 0)
          if (!snap->self_check())
            failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Two full re-convergence cycles (plus a republish) under read load.
  const auto edge = g.edges().back();
  svc.submit(RouteService::Delta::cost_change(1, Cost{77}));
  svc.drain();
  svc.submit({RouteService::Delta::remove_link(edge.first, edge.second),
              RouteService::Delta::cost_change(1, g.cost(1))});
  svc.drain();
  svc.submit(RouteService::Delta::add_link(edge.first, edge.second));
  const std::uint64_t version = svc.drain();

  // Let readers observe the final epoch too.
  while (reads.load(std::memory_order_relaxed) < 5000) {
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GE(reads.load(), 5000u);
  EXPECT_GE(svc.publish_count(), 4u);  // initial + three delta publishes
  EXPECT_EQ(svc.snapshot()->version(), version);
  EXPECT_TRUE(svc.snapshot()->self_check());
}

}  // namespace
}  // namespace fpss
