#include <gtest/gtest.h>

#include "util/cost.h"
#include "util/rng.h"
#include "util/summary.h"
#include "util/table.h"

namespace fpss {
namespace {

TEST(Cost, DefaultIsZero) {
  EXPECT_EQ(Cost{}, Cost::zero());
  EXPECT_TRUE(Cost{}.is_finite());
  EXPECT_EQ(Cost{}.value(), 0);
}

TEST(Cost, FiniteArithmetic) {
  EXPECT_EQ(Cost{3} + Cost{4}, Cost{7});
  EXPECT_EQ(Cost{5} - Cost{2}, 3);
  EXPECT_EQ(Cost{2} - Cost{5}, -3);  // deltas may be negative
}

TEST(Cost, InfinitySaturates) {
  EXPECT_TRUE(Cost::infinity().is_infinite());
  EXPECT_EQ(Cost::infinity() + Cost{10}, Cost::infinity());
  EXPECT_EQ(Cost{10} + Cost::infinity(), Cost::infinity());
  EXPECT_EQ(Cost::infinity() + Cost::infinity(), Cost::infinity());
}

TEST(Cost, InfinityComparesGreater) {
  EXPECT_LT(Cost{1'000'000'000}, Cost::infinity());
  EXPECT_GT(Cost::infinity(), Cost::zero());
  EXPECT_EQ(Cost::infinity(), Cost::infinity());
}

TEST(Cost, Ordering) {
  EXPECT_LT(Cost{1}, Cost{2});
  EXPECT_LE(Cost{2}, Cost{2});
  EXPECT_GT(Cost{3}, Cost{2});
}

TEST(Cost, ToString) {
  EXPECT_EQ(Cost{42}.to_string(), "42");
  EXPECT_EQ(Cost::infinity().to_string(), "inf");
}

TEST(Cost, PlusDelta) {
  EXPECT_EQ(cost_plus_delta(Cost{10}, 5), Cost{15});
  EXPECT_EQ(cost_plus_delta(Cost{10}, -10), Cost{0});
}

TEST(CostDeathTest, NegativeConstructionAborts) {
  EXPECT_DEATH(Cost{-1}, "precondition");
}

TEST(CostDeathTest, ValueOfInfinityAborts) {
  EXPECT_DEATH(Cost::infinity().value(), "precondition");
}

TEST(Rng, Deterministic) {
  util::Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  util::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowRespectsBound) {
  util::Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversRange) {
  util::Rng rng(4);
  std::vector<int> seen(8, 0);
  for (int i = 0; i < 4000; ++i) ++seen[rng.below(8)];
  for (int count : seen) EXPECT_GT(count, 300);
}

TEST(Rng, UniformIntInclusive) {
  util::Rng rng(5);
  bool low = false, high = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    low |= (v == -3);
    high |= (v == 3);
  }
  EXPECT_TRUE(low);
  EXPECT_TRUE(high);
}

TEST(Rng, Uniform01InRange) {
  util::Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ParetoBounds) {
  util::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.pareto(1.2, 50.0);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 50.0);
  }
}

TEST(Rng, ShufflePreservesElements) {
  util::Rng rng(8);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Summary, BasicMoments) {
  util::Summary s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_NEAR(s.stddev(), 1.29099, 1e-4);
}

TEST(Summary, Quantiles) {
  util::Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.median(), 50.5);
  EXPECT_NEAR(s.quantile(0.95), 95.05, 0.01);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
}

TEST(IntHistogram, CountsAndOverflow) {
  util::IntHistogram h(5);
  for (std::int64_t v : {0, 1, 1, 3, 5, 9}) h.add(v);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 0u);
  EXPECT_EQ(h.overflow(), 1u);
}

TEST(Table, TextAlignsColumns) {
  util::Table t({"name", "value"});
  t.add("alpha", 1);
  t.add("b", 22);
  const std::string text = t.to_text();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("22"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, CsvEscapes) {
  util::Table t({"a", "b"});
  t.add("x,y", "he said \"hi\"");
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, MarkdownShape) {
  util::Table t({"h1", "h2"});
  t.add(1, 2);
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("| h1 | h2 |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
}

TEST(FormatDouble, TrimsZeros) {
  EXPECT_EQ(util::format_double(1.5), "1.5");
  EXPECT_EQ(util::format_double(2.0), "2");
  EXPECT_EQ(util::format_double(0.125, 3), "0.125");
}

}  // namespace
}  // namespace fpss
