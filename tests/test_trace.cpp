#include <gtest/gtest.h>

#include <sstream>

#include "bgp/engine.h"
#include "bgp/trace.h"
#include "common.h"
#include "pricing/session.h"

namespace fpss {
namespace {

TEST(StageSeries, RecordsConvergenceCurve) {
  const auto g = test::make_instance({"er", 16, 700, 6});
  pricing::Session session(g, pricing::Protocol::kPriceVector);
  bgp::StageSeries series;
  session.engine().set_trace(&series);
  const auto stats = session.run();
  session.engine().set_trace(nullptr);
  ASSERT_TRUE(stats.converged);
  ASSERT_FALSE(series.rows().empty());

  // The curve's totals must agree with the engine's own accounting.
  std::uint64_t messages = 0, words = 0;
  for (const auto& row : series.rows()) {
    messages += row.messages;
    words += row.words;
  }
  EXPECT_EQ(messages, stats.messages);
  EXPECT_EQ(words, stats.traffic.total_words());

  // Activity dies out: the last recorded stage is the last change stage.
  Stage last_route = 0, last_value = 0;
  for (const auto& row : series.rows()) {
    if (row.route_changes > 0) last_route = row.stage;
    if (row.value_changes > 0) last_value = row.stage;
  }
  EXPECT_EQ(last_route, stats.last_route_change_stage);
  EXPECT_EQ(last_value, stats.last_value_change_stage);
}

TEST(StageSeries, TableHasOneRowPerActiveStage) {
  const auto g = test::make_instance({"ring", 8, 701, 4});
  pricing::Session session(g, pricing::Protocol::kPriceVector);
  bgp::StageSeries series;
  session.engine().set_trace(&series);
  session.run();
  const util::Table table = series.to_table();
  EXPECT_EQ(table.row_count(), series.rows().size());
  EXPECT_EQ(table.header().front(), "stage");
}

TEST(TextTrace, EmitsReadableLines) {
  const auto f = graphgen::fig1();
  pricing::Session session(f.g, pricing::Protocol::kPriceVector);
  std::ostringstream log;
  bgp::TextTrace trace(log);
  session.engine().set_trace(&trace);
  session.run();
  session.engine().set_trace(nullptr);
  const std::string text = log.str();
  EXPECT_NE(text.find("stage 1"), std::string::npos);
  EXPECT_NE(text.find("->"), std::string::npos);
  EXPECT_NE(text.find("changed routes"), std::string::npos);
  EXPECT_NE(text.find("quiescent after stage"), std::string::npos);
}

TEST(Trace, DetachedEngineStaysSilent) {
  const auto f = graphgen::fig1();
  pricing::Session session(f.g, pricing::Protocol::kPriceVector);
  bgp::StageSeries series;
  session.engine().set_trace(&series);
  session.engine().set_trace(nullptr);  // detach before running
  session.run();
  EXPECT_TRUE(series.rows().empty());
}

}  // namespace
}  // namespace fpss
