// Determinism of the performance layer: the threaded stage engine, the
// parallel VcgMechanism construction, and the flat AvoidanceTable layout
// must all be bit-identical to their serial / ground-truth counterparts.
// The thread pool uses a fixed stride partition with no work stealing, so
// "same results at every width" is a hard invariant, not a statistical one.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "bgp/trace.h"
#include "common.h"
#include "graph/graph.h"
#include "graphgen/costs.h"
#include "graphgen/fixtures.h"
#include "graphgen/random.h"
#include "mechanism/vcg.h"
#include "pricing/session.h"
#include "routing/dijkstra.h"
#include "routing/replacement.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace fpss {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool unit behavior
// ---------------------------------------------------------------------------

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.width(), 4u);
  std::vector<int> hits(1000, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ReusableAcrossManyJobsAndWidths) {
  for (unsigned threads : {1u, 2u, 3u, 8u}) {
    util::ThreadPool pool(threads);
    std::vector<std::size_t> sum(64, 0);
    for (int job = 0; job < 50; ++job)
      pool.parallel_for(sum.size(), [&](std::size_t i) { sum[i] += i; });
    for (std::size_t i = 0; i < sum.size(); ++i) EXPECT_EQ(sum[i], 50 * i);
  }
}

TEST(ThreadPool, EmptyAndTinyCounts) {
  util::ThreadPool pool(8);
  pool.parallel_for(0, [&](std::size_t) { FAIL(); });
  int ran = 0;
  pool.parallel_for(1, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran, 1);
  std::vector<int> hits(3, 0);  // fewer indices than workers
  pool.parallel_for(3, [&](std::size_t i) { ++hits[i]; });
  EXPECT_EQ(hits, (std::vector<int>{1, 1, 1}));
}

// ---------------------------------------------------------------------------
// Threaded stage engine == serial stage engine, across topology families
// ---------------------------------------------------------------------------

graph::Graph family_graph(const std::string& family, std::size_t n,
                          std::uint64_t seed) {
  return test::make_instance({family.c_str(), n, seed, 10});
}

/// Everything observable from a pricing session, serialized for comparison:
/// run stats, every selected route, and every price table entry.
std::string fingerprint(pricing::Session& session) {
  const bgp::RunStats stats = session.run();
  std::ostringstream out;
  out << "stages=" << stats.stages << " messages=" << stats.messages
      << " words=" << stats.traffic.total_words()
      << " route_ch=" << stats.last_route_change_stage
      << " value_ch=" << stats.last_value_change_stage
      << " max_link=" << stats.max_link_messages
      << " converged=" << stats.converged << "\n";
  const std::size_t n = session.network().node_count();
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) {
      if (i == j) continue;
      const bgp::SelectedRoute& route = session.route(i, j);
      out << i << "->" << j << ":";
      for (NodeId v : route.path) out << " " << v;
      out << " cost=" << route.cost.to_string();
      for (std::size_t t = 1; t + 1 < route.path.size(); ++t)
        out << " p[" << route.path[t]
            << "]=" << session.price(route.path[t], i, j).to_string();
      out << "\n";
    }
  }
  return out.str();
}

TEST(ParallelSyncEngine, BitIdenticalToSerialAcrossFamilies) {
  for (const std::string family : {"tiered", "ba", "er", "ring"}) {
    const graph::Graph g = family_graph(family, 32, 77);
    pricing::Session serial(g, pricing::Protocol::kPriceVector,
                            bgp::UpdatePolicy::kIncremental, /*threads=*/1);
    const std::string expected = fingerprint(serial);
    for (unsigned threads : {2u, 4u, 8u}) {
      pricing::Session threaded(g, pricing::Protocol::kPriceVector,
                                bgp::UpdatePolicy::kIncremental, threads);
      EXPECT_EQ(fingerprint(threaded), expected)
          << family << " diverged at " << threads << " threads";
    }
  }
}

TEST(ParallelSyncEngine, AvoidanceVectorProtocolAlsoIdentical) {
  const graph::Graph g = family_graph("ba", 40, 5);
  pricing::Session serial(g, pricing::Protocol::kAvoidanceVector,
                          bgp::UpdatePolicy::kIncremental, 1);
  pricing::Session threaded(g, pricing::Protocol::kAvoidanceVector,
                            bgp::UpdatePolicy::kIncremental, 4);
  EXPECT_EQ(fingerprint(serial), fingerprint(threaded));
}

/// Tracing must not change results or lose events under threads: all trace
/// callbacks fire from the serial delivery phase (set_trace does not force
/// the compute phase serial).
TEST(ParallelSyncEngine, TraceIdenticalUnderThreads) {
  const graph::Graph g = family_graph("er", 24, 3);
  const auto run_traced = [&](unsigned threads) {
    std::ostringstream log;
    bgp::TextTrace trace(log);
    pricing::Session session(g, pricing::Protocol::kPriceVector,
                             bgp::UpdatePolicy::kIncremental, threads);
    session.engine().set_trace(&trace);
    session.run();
    session.engine().set_trace(nullptr);
    return log.str();
  };
  const std::string serial = run_traced(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(run_traced(4), serial);
}

// ---------------------------------------------------------------------------
// Parallel VcgMechanism == serial naive ground truth
// ---------------------------------------------------------------------------

TEST(ParallelVcg, MatchesNaiveGroundTruthExactly) {
  const graph::Graph g = family_graph("ba", 48, 11);
  const mechanism::VcgMechanism truth(
      g, mechanism::VcgMechanism::Engine::kNaiveGroundTruth, /*threads=*/1);
  const mechanism::VcgMechanism parallel(
      g, mechanism::VcgMechanism::Engine::kSubtree, /*threads=*/8);
  const std::size_t n = g.node_count();
  for (NodeId j = 0; j < n; ++j) {
    ASSERT_EQ(parallel.avoidance(j).keys(), truth.avoidance(j).keys());
    for (NodeId i = 0; i < n; ++i) {
      ASSERT_EQ(parallel.routes().path(i, j), truth.routes().path(i, j));
      for (NodeId k = 0; k < n; ++k)
        ASSERT_EQ(parallel.price(k, i, j), truth.price(k, i, j))
            << "p^" << k << "_{" << i << "," << j << "}";
    }
  }
}

TEST(ParallelVcg, ParallelNaiveEngineAlsoIdentical) {
  const graph::Graph g = family_graph("tiered", 36, 9);
  const mechanism::VcgMechanism serial(
      g, mechanism::VcgMechanism::Engine::kNaiveGroundTruth, 1);
  const mechanism::VcgMechanism parallel(
      g, mechanism::VcgMechanism::Engine::kNaiveGroundTruth, 4);
  for (NodeId j = 0; j < g.node_count(); ++j) {
    const auto keys = serial.avoidance(j).keys();
    ASSERT_EQ(parallel.avoidance(j).keys(), keys);
    for (const auto& [i, k] : keys)
      ASSERT_EQ(parallel.avoidance(j).avoiding_cost(i, k),
                serial.avoidance(j).avoiding_cost(i, k));
  }
}

// ---------------------------------------------------------------------------
// Flat AvoidanceTable layout: property test vs compute_naive
// ---------------------------------------------------------------------------

void expect_tables_equal(const graph::Graph& g, NodeId j) {
  const routing::SinkTree tree = routing::compute_sink_tree(g, j);
  const auto fast = routing::AvoidanceTable::compute(g, tree);
  const auto naive = routing::AvoidanceTable::compute_naive(g, tree);
  ASSERT_EQ(fast.entry_count(), naive.entry_count());
  const auto keys = naive.keys();
  ASSERT_EQ(fast.keys(), keys);
  for (const auto& [i, k] : keys) {
    ASSERT_TRUE(fast.has(i, k));
    ASSERT_EQ(fast.avoiding_cost(i, k), naive.avoiding_cost(i, k))
        << "dest=" << j << " i=" << i << " k=" << k;
  }
  // Lookup misses: self, the destination, and off-path nodes.
  EXPECT_FALSE(fast.has(j, j));
  for (NodeId i = 0; i < g.node_count(); ++i) {
    EXPECT_FALSE(fast.has(i, i));
    EXPECT_FALSE(fast.has(i, j));
  }
}

TEST(AvoidanceTableFlat, PropertyVsNaiveOverRandomSeeds) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    util::Rng rng(seed);
    const std::size_t n = 12 + static_cast<std::size_t>(seed % 5) * 7;
    graph::Graph g = (seed % 2 == 0)
                         ? graphgen::erdos_renyi(
                               n, 3.0 / static_cast<double>(n), rng)
                         : graphgen::barabasi_albert(n, 2, rng);
    // Half the seeds stay non-biconnected on purpose: articulation points
    // produce monopoly (infinite) entries, which must also match.
    if (seed % 3 == 0) graphgen::make_biconnected(g, rng);
    graphgen::assign_random_costs(g, 1, 20, rng);
    for (NodeId j = 0; j < g.node_count(); j += 3) expect_tables_equal(g, j);
  }
}

TEST(AvoidanceTableFlat, MonopolyEntriesAreInfiniteAndMatch) {
  // Two triangles sharing node 2: node 2 is an articulation point, so any
  // path from {3,4} to 0 that must avoid 2 does not exist.
  graph::Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(2, 4);
  for (NodeId v = 0; v < 5; ++v) g.set_cost(v, Cost{1});
  const routing::SinkTree tree = routing::compute_sink_tree(g, 0);
  const auto fast = routing::AvoidanceTable::compute(g, tree);
  const auto naive = routing::AvoidanceTable::compute_naive(g, tree);
  bool saw_monopoly = false;
  for (const auto& [i, k] : naive.keys()) {
    ASSERT_EQ(fast.avoiding_cost(i, k), naive.avoiding_cost(i, k));
    if (k == 2) {
      EXPECT_TRUE(fast.avoiding_cost(i, k).is_infinite());
      saw_monopoly = true;
    }
  }
  EXPECT_TRUE(saw_monopoly);
}

TEST(AvoidanceTableFlat, RingAndGridFixtures) {
  for (std::size_t n : {8u, 13u, 20u}) {
    auto ring = graphgen::ring_graph(n);
    util::Rng rng(99 + n);
    graphgen::assign_random_costs(ring, 1, 9, rng);
    expect_tables_equal(ring, 0);
    expect_tables_equal(ring, static_cast<NodeId>(n / 2));
  }
}

}  // namespace
}  // namespace fpss
