#include <gtest/gtest.h>

#include "graph/analysis.h"
#include "graph/dot.h"
#include "graph/graph.h"
#include "graph/path.h"
#include "graphgen/fixtures.h"

namespace fpss {
namespace {

using graph::Graph;

TEST(Graph, StartsEmpty) {
  Graph g{4};
  EXPECT_EQ(g.node_count(), 4u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_EQ(g.cost(0), Cost::zero());
}

TEST(Graph, AddEdgeIsSymmetric) {
  Graph g{3};
  EXPECT_TRUE(g.add_edge(0, 2));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Graph, AddDuplicateEdgeRejected) {
  Graph g{3};
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_FALSE(g.add_edge(1, 0));
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Graph, RemoveEdge) {
  Graph g{3};
  g.add_edge(0, 1);
  EXPECT_TRUE(g.remove_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_FALSE(g.remove_edge(0, 1));
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(Graph, NeighborsSorted) {
  Graph g{5};
  g.add_edge(2, 4);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  const auto nbrs = g.neighbors(2);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 0u);
  EXPECT_EQ(nbrs[1], 3u);
  EXPECT_EQ(nbrs[2], 4u);
}

TEST(Graph, CostsRoundTrip) {
  Graph g{2};
  g.set_cost(1, Cost{9});
  EXPECT_EQ(g.cost(1), Cost{9});
  g.set_costs({Cost{3}, Cost{4}});
  EXPECT_EQ(g.cost(0), Cost{3});
  EXPECT_EQ(g.cost(1), Cost{4});
}

TEST(Graph, EdgesListSorted) {
  Graph g{4};
  g.add_edge(3, 1);
  g.add_edge(0, 2);
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], std::make_pair(NodeId{0}, NodeId{2}));
  EXPECT_EQ(edges[1], std::make_pair(NodeId{1}, NodeId{3}));
}

TEST(GraphDeathTest, SelfLoopRejected) {
  Graph g{2};
  EXPECT_DEATH(g.add_edge(1, 1), "precondition");
}

TEST(Path, TransitCostExcludesEndpoints) {
  auto f = graphgen::fig1();
  // X-B-D-Z: transit = c_B + c_D = 3; endpoints X and Z are free.
  EXPECT_EQ(graph::transit_cost(f.g, {f.x, f.b, f.d, f.z}), Cost{3});
  // Direct Y-D: no intermediate node.
  EXPECT_EQ(graph::transit_cost(f.g, {f.y, f.d}), Cost{0});
  // Single node.
  EXPECT_EQ(graph::transit_cost(f.g, {f.x}), Cost{0});
}

TEST(Path, WalkValidation) {
  auto f = graphgen::fig1();
  EXPECT_TRUE(graph::is_walk(f.g, {f.x, f.b, f.d}));
  EXPECT_FALSE(graph::is_walk(f.g, {f.x, f.z}));  // no direct X-Z link
  EXPECT_FALSE(graph::is_walk(f.g, {}));
}

TEST(Path, SimplePathValidation) {
  auto f = graphgen::fig1();
  EXPECT_TRUE(graph::is_simple_path(f.g, {f.x, f.b, f.d, f.z}, f.x, f.z));
  EXPECT_FALSE(graph::is_simple_path(f.g, {f.x, f.b, f.x}, f.x, f.x));
  EXPECT_FALSE(graph::is_simple_path(f.g, {f.x, f.b}, f.x, f.z));
}

TEST(Path, TransitNodeMembership) {
  EXPECT_TRUE(graph::is_transit_node({0, 1, 2}, 1));
  EXPECT_FALSE(graph::is_transit_node({0, 1, 2}, 0));
  EXPECT_FALSE(graph::is_transit_node({0, 1, 2}, 2));
  EXPECT_FALSE(graph::is_transit_node({0, 2}, 1));
}

TEST(Path, Rendering) {
  EXPECT_EQ(graph::path_to_string({3, 1, 5}), "3-1-5");
  auto f = graphgen::fig1();
  EXPECT_EQ(graph::path_to_letters({f.x, f.b, f.d, f.z}, f.names), "XBDZ");
}

TEST(Analysis, Connectivity) {
  Graph g{4};
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(graph::is_connected(g));
  g.add_edge(1, 2);
  EXPECT_TRUE(graph::is_connected(g));
}

TEST(Analysis, ArticulationPointsOnPath) {
  auto g = graphgen::path_graph(5);  // 0-1-2-3-4: internal nodes are cuts
  const auto cuts = graph::articulation_points(g);
  EXPECT_EQ(cuts, (std::vector<NodeId>{1, 2, 3}));
  EXPECT_FALSE(graph::is_biconnected(g));
}

TEST(Analysis, RingIsBiconnected) {
  EXPECT_TRUE(graph::is_biconnected(graphgen::ring_graph(5)));
  EXPECT_TRUE(graph::articulation_points(graphgen::ring_graph(5)).empty());
}

TEST(Analysis, BowtieHasCutVertex) {
  // Two triangles sharing node 2.
  Graph g{5};
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 2);
  const auto cuts = graph::articulation_points(g);
  EXPECT_EQ(cuts, (std::vector<NodeId>{2}));
}

TEST(Analysis, Fig1IsBiconnected) {
  EXPECT_TRUE(graph::is_biconnected(graphgen::fig1().g));
}

TEST(Analysis, HopDiameter) {
  EXPECT_EQ(graph::hop_diameter(graphgen::path_graph(5)), 4u);
  EXPECT_EQ(graph::hop_diameter(graphgen::ring_graph(6)), 3u);
  EXPECT_EQ(graph::hop_diameter(graphgen::clique_graph(5)), 1u);
}

TEST(Analysis, DegreeStats) {
  const auto stats = graph::degree_stats(graphgen::wheel_graph(6));
  EXPECT_EQ(stats.max, 5u);  // hub
  EXPECT_EQ(stats.min, 3u);  // rim: hub + two rim neighbors
}

TEST(Dot, ContainsNodesAndEdges) {
  auto f = graphgen::fig1();
  const std::string dot = graph::to_dot(f.g, f.names);
  EXPECT_NE(dot.find("label=\"D (1)\""), std::string::npos);
  EXPECT_NE(dot.find("--"), std::string::npos);
}

}  // namespace
}  // namespace fpss
