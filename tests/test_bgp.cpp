#include <gtest/gtest.h>

#include <memory>

#include "bgp/engine.h"
#include "bgp/hop_count_agent.h"
#include "bgp/plain_agent.h"
#include "common.h"
#include "routing/all_pairs.h"
#include "routing/metrics.h"

namespace fpss {
namespace {

using bgp::Network;
using bgp::PlainBgpAgent;
using bgp::Engine;
using bgp::UpdatePolicy;

bgp::AgentFactory plain_factory(UpdatePolicy policy) {
  return [policy](NodeId self, std::size_t n,
                  Cost cost) -> std::unique_ptr<bgp::Agent> {
    return std::make_unique<PlainBgpAgent>(self, n, cost, policy);
  };
}

/// Every agent's selected route matches the centralized computation.
void expect_routes_match(Network& net, const graph::Graph& g) {
  const routing::AllPairsRoutes routes(g);
  for (NodeId i = 0; i < g.node_count(); ++i) {
    const auto& agent = static_cast<const PlainBgpAgent&>(net.agent(i));
    for (NodeId j = 0; j < g.node_count(); ++j) {
      if (i == j) continue;
      const auto& selected = agent.selected(j);
      ASSERT_TRUE(selected.valid()) << i << "->" << j;
      EXPECT_EQ(selected.path, routes.path(i, j)) << i << "->" << j;
      EXPECT_EQ(selected.cost, routes.cost(i, j));
    }
  }
}

TEST(PlainBgp, Fig1ConvergesToLcps) {
  const auto f = graphgen::fig1();
  Network net(f.g, plain_factory(UpdatePolicy::kIncremental));
  Engine engine(net);
  const auto stats = engine.run();
  EXPECT_TRUE(stats.converged);
  expect_routes_match(net, f.g);
}

class PlainBgpFamilies : public ::testing::TestWithParam<test::InstanceSpec> {
};

TEST_P(PlainBgpFamilies, ConvergesToCentralizedRoutes) {
  const auto g = test::make_instance(GetParam());
  Network net(g, plain_factory(UpdatePolicy::kIncremental));
  Engine engine(net);
  const auto stats = engine.run();
  EXPECT_TRUE(stats.converged);
  expect_routes_match(net, g);
}

TEST_P(PlainBgpFamilies, RouteConvergenceWithinDStages) {
  const auto g = test::make_instance(GetParam());
  const routing::AllPairsRoutes routes(g);
  Network net(g, plain_factory(UpdatePolicy::kIncremental));
  Engine engine(net);
  const auto stats = engine.run();
  // Sect. 5: "BGP converges within d stages of computation". Routes stop
  // changing once every LCP has propagated; allow one extra stage for the
  // initial self-announcement.
  EXPECT_LE(stats.last_route_change_stage, routes.lcp_diameter() + 1);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, PlainBgpFamilies,
                         ::testing::ValuesIn(test::standard_instances()));

TEST(PlainBgp, FullTableModeAlsoConverges) {
  const auto g = test::make_instance({"er", 20, 7, 6});
  Network net(g, plain_factory(UpdatePolicy::kFullTable));
  Engine engine(net);
  EXPECT_TRUE(engine.run().converged);
  expect_routes_match(net, g);
}

TEST(PlainBgp, FullTableSendsMoreWords) {
  const auto g = test::make_instance({"ba", 24, 8, 6});
  Network inc_net(g, plain_factory(UpdatePolicy::kIncremental));
  Network full_net(g, plain_factory(UpdatePolicy::kFullTable));
  Engine inc(inc_net), full(full_net);
  const auto inc_stats = inc.run();
  const auto full_stats = full.run();
  EXPECT_GT(full_stats.traffic.total_words(), inc_stats.traffic.total_words());
}

TEST(PlainBgp, QuiescentAfterConvergence) {
  const auto g = test::make_instance({"ring", 9, 9, 4});
  Network net(g, plain_factory(UpdatePolicy::kIncremental));
  Engine engine(net);
  engine.run();
  const auto before = engine.stats().messages;
  const auto again = engine.run();  // nothing should happen
  EXPECT_EQ(again.stages, 0u);
  EXPECT_EQ(engine.stats().messages, before);
}

TEST(PlainBgp, MessageCountsPositive) {
  const auto g = test::make_instance({"er", 16, 10, 5});
  Network net(g, plain_factory(UpdatePolicy::kIncremental));
  Engine engine(net);
  const auto stats = engine.run();
  EXPECT_GT(stats.messages, 0u);
  EXPECT_GT(stats.traffic.entries, 0u);
  EXPECT_GT(stats.traffic.path_words, 0u);
  EXPECT_GT(stats.max_link_messages, 0u);
  EXPECT_EQ(stats.traffic.value_words, 0u);  // no pricing extension
}

TEST(PlainBgp, StateSizeReasonable) {
  const auto g = test::make_instance({"er", 20, 11, 5});
  Network net(g, plain_factory(UpdatePolicy::kIncremental));
  Engine engine(net);
  engine.run();
  const auto state = net.total_state();
  // Every node holds a selected route (>= 2 path words) per destination.
  EXPECT_GE(state.selected_words, g.node_count() * (g.node_count() - 1) * 2);
  EXPECT_GT(state.rib_in_words, 0u);
  EXPECT_EQ(state.value_words, 0u);
}

// --- dynamics -------------------------------------------------------------

TEST(PlainBgpDynamics, LinkFailureReroutes) {
  const auto f = graphgen::fig1();
  Network net(f.g, plain_factory(UpdatePolicy::kIncremental));
  Engine engine(net);
  engine.run();
  // Kill the D-Z link: X must fall back to XAZ (cost 5).
  net.remove_link(f.d, f.z);
  const auto stats = engine.run();
  EXPECT_TRUE(stats.converged);
  graph::Graph expected = f.g;
  expected.remove_edge(f.d, f.z);
  expect_routes_match(net, expected);
  const auto& agent_x = static_cast<const PlainBgpAgent&>(net.agent(f.x));
  EXPECT_EQ(agent_x.selected(f.z).path, (graph::Path{f.x, f.a, f.z}));
}

TEST(PlainBgpDynamics, LinkAdditionImproves) {
  auto g = graphgen::ring_graph(8);
  graphgen::assign_uniform_cost(g, Cost{3});
  Network net(g, plain_factory(UpdatePolicy::kIncremental));
  Engine engine(net);
  engine.run();
  net.add_link(0, 4);  // shortcut across the ring
  EXPECT_TRUE(engine.run().converged);
  graph::Graph expected = g;
  expected.add_edge(0, 4);
  expect_routes_match(net, expected);
}

TEST(PlainBgpDynamics, CostChangePropagates) {
  const auto f = graphgen::fig1();
  Network net(f.g, plain_factory(UpdatePolicy::kIncremental));
  Engine engine(net);
  engine.run();
  // Make D expensive: X's best route to Z becomes XAZ.
  net.change_cost(f.d, Cost{50});
  EXPECT_TRUE(engine.run().converged);
  graph::Graph expected = f.g;
  expected.set_cost(f.d, Cost{50});
  expect_routes_match(net, expected);
}

TEST(PlainBgpDynamics, PartitionWithdrawsRoutes) {
  // 0-1  2-3 joined by a single link 1-2; removing it partitions.
  graph::Graph g{4};
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  Network net(g, plain_factory(UpdatePolicy::kIncremental));
  Engine engine(net);
  engine.run();
  const auto& agent0 = static_cast<const PlainBgpAgent&>(net.agent(0));
  ASSERT_TRUE(agent0.selected(3).valid());
  net.remove_link(1, 2);
  EXPECT_TRUE(engine.run().converged);
  EXPECT_FALSE(agent0.selected(3).valid());
  EXPECT_TRUE(agent0.selected(1).valid());
}

// --- hop-count selection (unmodified BGP, Sect. 1) --------------------------

TEST(HopCountBgp, PrefersFewerHopsOverCheaperPath) {
  // 0-1-3 (transit cost 9) vs 0-2-4-3 (transit cost 0): stock BGP takes
  // the 2-hop path regardless of cost.
  graph::Graph g{5};
  g.add_edge(0, 1);
  g.add_edge(1, 3);
  g.add_edge(0, 2);
  g.add_edge(2, 4);
  g.add_edge(4, 3);
  g.set_cost(1, Cost{9});
  Network net(g, bgp::make_hop_count_factory(UpdatePolicy::kIncremental));
  Engine engine(net);
  ASSERT_TRUE(engine.run().converged);
  const auto& agent0 = static_cast<const PlainBgpAgent&>(net.agent(0));
  EXPECT_EQ(agent0.selected(3).path, (graph::Path{0, 1, 3}));
  EXPECT_EQ(agent0.selected(3).cost, Cost{9});
}

TEST(HopCountBgp, MatchesBfsDistances) {
  const auto g = test::make_instance({"ba", 20, 15, 9});
  Network net(g, bgp::make_hop_count_factory(UpdatePolicy::kIncremental));
  Engine engine(net);
  ASSERT_TRUE(engine.run().converged);
  // Selected hop counts equal unweighted BFS distances.
  for (NodeId j = 0; j < g.node_count(); ++j) {
    std::vector<std::uint32_t> depth(g.node_count(), UINT32_MAX);
    std::vector<NodeId> frontier{j};
    depth[j] = 0;
    for (std::size_t head = 0; head < frontier.size(); ++head) {
      for (NodeId v : g.neighbors(frontier[head])) {
        if (depth[v] == UINT32_MAX) {
          depth[v] = depth[frontier[head]] + 1;
          frontier.push_back(v);
        }
      }
    }
    for (NodeId i = 0; i < g.node_count(); ++i) {
      if (i == j) continue;
      const auto& agent = static_cast<const PlainBgpAgent&>(net.agent(i));
      ASSERT_TRUE(agent.selected(j).valid());
      EXPECT_EQ(agent.selected(j).hops(), depth[i]) << i << "->" << j;
    }
  }
}

// --- async engine ----------------------------------------------------------

TEST(AsyncBgp, ConvergesToCentralizedRoutes) {
  const auto g = test::make_instance({"ba", 20, 12, 7});
  Network net(g, plain_factory(UpdatePolicy::kIncremental));
  bgp::ChannelConfig channel;
  channel.seed = 99;
  Engine engine(net, bgp::EngineConfig::event(channel));
  const auto stats = engine.run();
  EXPECT_TRUE(stats.converged);
  expect_routes_match(net, g);
  EXPECT_GT(stats.end_time, 0.0);
}

TEST(AsyncBgp, MraiReducesMessages) {
  const auto g = test::make_instance({"er", 24, 13, 6});
  Network raw_net(g, plain_factory(UpdatePolicy::kIncremental));
  Network mrai_net(g, plain_factory(UpdatePolicy::kIncremental));
  bgp::ChannelConfig raw_channel;
  raw_channel.seed = 5;
  Engine raw(raw_net, bgp::EngineConfig::event(raw_channel));
  bgp::ChannelConfig mrai_channel;
  mrai_channel.seed = 5;
  mrai_channel.mrai = 2.0;
  Engine mrai(mrai_net, bgp::EngineConfig::event(mrai_channel));
  const auto raw_stats = raw.run();
  const auto mrai_stats = mrai.run();
  ASSERT_TRUE(raw_stats.converged);
  ASSERT_TRUE(mrai_stats.converged);
  EXPECT_LT(mrai_stats.messages, raw_stats.messages);
  expect_routes_match(mrai_net, g);
}

TEST(AsyncBgp, DeterministicGivenSeed) {
  const auto g = test::make_instance({"er", 16, 14, 5});
  auto run_once = [&g]() {
    Network net(g, plain_factory(UpdatePolicy::kIncremental));
    bgp::ChannelConfig channel;
    channel.seed = 7;
    Engine engine(net, bgp::EngineConfig::event(channel));
    return engine.run().messages;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace fpss
