#include <gtest/gtest.h>

#include "common.h"
#include "pricing/adoption.h"
#include "routing/all_pairs.h"

namespace fpss {
namespace {

TEST(Adoption, RandomParticipantsHasRequestedSize) {
  util::Rng rng(1);
  const auto p = pricing::random_participants(20, 7, rng);
  std::size_t count = 0;
  for (char x : p) count += (x != 0);
  EXPECT_EQ(count, 7u);
  EXPECT_EQ(p.size(), 20u);
}

TEST(Adoption, FullAdoptionIsExact) {
  const auto g = test::make_instance({"er", 18, 801, 6});
  const mechanism::VcgMechanism truth(g);
  const std::vector<char> all(g.node_count(), 1);
  const auto report = pricing::measure_adoption(g, all, truth);
  EXPECT_EQ(report.exact, report.price_entries);
  EXPECT_EQ(report.unknown, 0u);
  EXPECT_EQ(report.overestimate, 0u);
  EXPECT_EQ(report.underestimate, 0u);
}

TEST(Adoption, PartialAdoptionNeverUndercharges) {
  util::Rng rng(2);
  for (const char* family : {"er", "ba", "tiered"}) {
    const auto g = test::make_instance({family, 20, 802, 7});
    const mechanism::VcgMechanism truth(g);
    for (std::size_t count : {5u, 10u, 15u}) {
      const auto participates =
          pricing::random_participants(g.node_count(), count, rng);
      const auto report = pricing::measure_adoption(g, participates, truth);
      EXPECT_EQ(report.underestimate, 0u)
          << family << " with " << count << " participants";
      EXPECT_EQ(report.participants, count);
    }
  }
}

TEST(Adoption, ZeroAdoptionHasNothingToGrade) {
  const auto g = test::make_instance({"ba", 14, 803, 5});
  const mechanism::VcgMechanism truth(g);
  const std::vector<char> none(g.node_count(), 0);
  const auto report = pricing::measure_adoption(g, none, truth);
  EXPECT_EQ(report.price_entries, 0u);
  EXPECT_DOUBLE_EQ(report.exact_fraction(), 1.0);
}

TEST(Adoption, MixedNetworkRoutingUnaffected) {
  // Routing must be byte-identical to the pure network at any adoption.
  const auto g = test::make_instance({"tiered", 24, 804, 6});
  util::Rng rng(3);
  const auto participates =
      pricing::random_participants(g.node_count(), g.node_count() / 3, rng);
  bgp::Network net(g, pricing::make_mixed_factory(
                          participates, bgp::UpdatePolicy::kIncremental));
  bgp::Engine engine(net);
  ASSERT_TRUE(engine.run().converged);
  const routing::AllPairsRoutes routes(g);
  for (NodeId i = 0; i < g.node_count(); ++i) {
    const auto& agent = static_cast<const bgp::PlainBgpAgent&>(net.agent(i));
    for (NodeId j = 0; j < g.node_count(); ++j) {
      if (i == j) continue;
      EXPECT_EQ(agent.selected(j).path, routes.path(i, j));
    }
  }
}

}  // namespace
}  // namespace fpss
