// Negative-compile fixture for the thread-safety annotation layer.
//
// This TU is NOT part of the normal test build. It is compiled twice by
// scripts/check_negative_compile.sh under Clang with
// -Werror=thread-safety:
//
//   1. with -DFPSS_SEED_VIOLATION: the guarded field is touched without
//      its mutex — the build MUST fail. If it compiles, the annotation
//      macros have silently degraded to no-ops under a compiler that
//      should support them, and the whole compile-time race-detection
//      layer is inert.
//   2. without the define: the properly locked version MUST compile
//      clean, proving the wrappers themselves carry no false positives.
//
// Keep the violation minimal: one GUARDED_BY field, one unlocked write.
// The point is to test the *machinery*, not to enumerate violation
// shapes — Clang's own test suite does that.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

struct Account {
  fpss::util::Mutex mu;
  int balance FPSS_GUARDED_BY(mu) = 0;

  void deposit(int amount) {
#if defined(FPSS_SEED_VIOLATION)
    // Unlocked write to a guarded field: -Werror=thread-safety must
    // reject this line.
    balance += amount;
#else
    fpss::util::MutexLock lock(mu);
    balance += amount;
#endif
  }

  int read() {
    fpss::util::MutexLock lock(mu);
    return balance;
  }
};

}  // namespace

int main() {
  Account account;
  account.deposit(1);
  return account.read() == 1 ? 0 : 1;
}
