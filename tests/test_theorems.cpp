// Direct tests of the paper's formal statements beyond the worked example:
// Lemma 1 (tightness of inequalities (2)-(5) at the first link of P_k),
// the per-packet decomposition of Theorem 1, and the negative control that
// motivates uniqueness (a non-VCG scheme is manipulable).
#include <gtest/gtest.h>

#include "common.h"
#include "mechanism/alternative.h"
#include "mechanism/strategyproof.h"
#include "mechanism/vcg.h"
#include "payments/ledger.h"
#include "payments/traffic.h"
#include "routing/dijkstra.h"
#include "routing/replacement.h"

namespace fpss {
namespace {

using mechanism::VcgMechanism;
using payments::TrafficMatrix;
using routing::SinkTree;

/// p^k_ij computed from first principles for a given tree/avoidance pair.
Cost::rep price_of(const graph::Graph& g, const SinkTree& tree,
                   const routing::AvoidanceTable& avoidance, NodeId i,
                   NodeId k) {
  return g.cost(k).value() +
         (avoidance.avoiding_cost(i, k) - tree.cost(i));
}

// Lemma 1: "Let ib be the first link on P_k(c; i, j). Then the
// corresponding inequality (2)-(5) attains equality for b."
class Lemma1Tightness : public ::testing::TestWithParam<test::InstanceSpec> {
};

TEST_P(Lemma1Tightness, FirstLinkOfAvoidingPathIsTight) {
  const auto g = test::make_instance(GetParam());
  for (NodeId j = 0; j < g.node_count(); ++j) {
    const SinkTree tree = routing::compute_sink_tree(g, j);
    const auto avoidance = routing::AvoidanceTable::compute_naive(g, tree);
    const auto kids = tree.children();
    for (NodeId k = 0; k < g.node_count(); ++k) {
      if (k == j || kids[k].empty()) continue;
      const SinkTree avoiding = routing::compute_sink_tree_avoiding(g, j, k);
      for (NodeId i : tree.subtree(k)) {
        if (i == k) continue;
        ASSERT_TRUE(avoiding.reachable(i));
        const graph::Path detour = avoiding.path_from(i);
        ASSERT_GE(detour.size(), 2u);
        const NodeId b = detour[1];  // the first link of P_k is i-b
        const Cost::rep p_i = price_of(g, tree, avoidance, i, k);
        const Cost::rep c_b = g.cost(b).value();
        const Cost::rep c_i = g.cost(i).value();

        Cost::rep rhs;  // the case formula evaluated at b
        if (b == j) {
          // Degenerate direct link: Cost(P_k) = 0.
          rhs = g.cost(k).value() + (Cost::zero() - tree.cost(i));
        } else if (tree.is_transit(b, k) ||
                   (tree.parent(i) == b && k != b)) {
          // k on b's LCP (cases i-iii); p^k_bj is defined.
          const Cost::rep p_b = price_of(g, tree, avoidance, b, k);
          if (tree.parent(i) == b) {
            rhs = p_b;  // case (i)
          } else if (tree.parent(b) == i) {
            rhs = p_b + c_i + c_b;  // case (ii)
          } else {
            rhs = p_b + c_b + (tree.cost(b) - tree.cost(i));  // case (iii)
          }
        } else {
          // case (iv): b's own LCP avoids k.
          rhs = g.cost(k).value() + c_b +
                (tree.cost(b) - tree.cost(i));
        }
        EXPECT_EQ(p_i, rhs)
            << "dest " << j << " k " << k << " i " << i << " b " << b;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, Lemma1Tightness,
                         ::testing::ValuesIn(test::standard_instances()));

// Theorem 1: payments decompose into per-packet prices, so node payments
// are linear in the traffic matrix and the prices themselves do not depend
// on it.
TEST(Theorem1, PaymentsLinearInTraffic) {
  const auto g = test::make_instance({"ba", 18, 401, 7});
  const VcgMechanism mech(g);
  const auto t1 = TrafficMatrix::uniform(g.node_count(), 1);
  const auto t3 = TrafficMatrix::uniform(g.node_count(), 3);
  const auto s1 = payments::settle_traffic(g, mech.routes(), t1,
                                           mech.price_fn());
  const auto s3 = payments::settle_traffic(g, mech.routes(), t3,
                                           mech.price_fn());
  for (NodeId k = 0; k < g.node_count(); ++k) {
    EXPECT_EQ(s3[k].revenue, 3 * s1[k].revenue);
    EXPECT_EQ(s3[k].transit_packets, 3 * s1[k].transit_packets);
  }
}

TEST(Theorem1, PricesIndependentOfTraffic) {
  // The mechanism object never sees a traffic matrix: construct two, ask
  // the same price. (A compile-time fact surfaced as a runtime assertion,
  // documenting the "prices do not depend on the traffic matrix" remark.)
  const auto f = graphgen::fig1();
  const VcgMechanism mech(f.g);
  const Cost before = mech.price(f.d, f.y, f.z);
  // ... any amount of traffic may flow ...
  const auto traffic = TrafficMatrix::uniform(6, 1000);
  payments::settle_traffic(f.g, mech.routes(), traffic, mech.price_fn());
  EXPECT_EQ(mech.price(f.d, f.y, f.z), before);
}

// Negative control: cost-plus pricing (declared cost + markup) is NOT
// strategyproof — the deviation harness finds a profitable lie, while the
// identical sweep under VCG finds none (Theorem 1 uniqueness, empirically).
TEST(NegativeControl, CostPlusPricingIsManipulable) {
  const auto f = graphgen::fig1();
  const auto traffic = TrafficMatrix::uniform(6, 1);
  bool someone_can_cheat = false;
  for (NodeId k = 0; k < 6; ++k) {
    const auto witness =
        mechanism::find_cost_plus_manipulation(f.g, k, 50, traffic);
    if (witness.found) {
      someone_can_cheat = true;
      EXPECT_GT(witness.gain(), 0);
    }
    // The same instance under VCG: nobody can cheat.
    const auto vcg_sweep = mechanism::sweep_deviations(
        f.g, k, traffic, mechanism::default_deviation_grid(f.g.cost(k)));
    EXPECT_TRUE(vcg_sweep.strategyproof()) << "node " << k;
  }
  EXPECT_TRUE(someone_can_cheat)
      << "cost-plus pricing unexpectedly resisted the deviation grid";
}

// Theorem 1 is about *unilateral* deviations only. The VCG mechanism is
// famously not coalition-proof, and the worked example already contains a
// profitable cartel: B and D (both on LCP(X,Z) = XBDZ, with the alternative
// XAZ costing 5) can jointly under-declare. The route is unchanged, both
// still get paid the full premium against XAZ, and each one's premium
// grows because the *other's* declared cost shrank:
//   utility_B = 3 - declared_D,  utility_D = 4 - declared_B  (per packet).
TEST(Theorem1Limits, JointUnderdeclarationHelpsTheCartel) {
  const auto f = graphgen::fig1();
  TrafficMatrix traffic(6);
  traffic.set(f.x, f.z, 1);  // a single packet X -> Z

  auto utilities = [&](Cost declared_b, Cost declared_d) {
    graph::Graph declared = f.g;
    declared.set_cost(f.b, declared_b);
    declared.set_cost(f.d, declared_d);
    const VcgMechanism mech(declared);
    auto utility = [&](NodeId k, Cost true_cost) -> Cost::rep {
      if (!mech.routes().is_transit(k, f.x, f.z)) return 0;
      return mech.price(k, f.x, f.z).value() - true_cost.value();
    };
    return std::make_pair(utility(f.b, f.g.cost(f.b)),
                          utility(f.d, f.g.cost(f.d)));
  };

  const auto [honest_b, honest_d] = utilities(f.g.cost(f.b), f.g.cost(f.d));
  EXPECT_EQ(honest_b, 2);
  EXPECT_EQ(honest_d, 2);

  // Unilateral deviations cannot help (Theorem 1)...
  const auto [solo_b, unchanged_d] = utilities(Cost{0}, f.g.cost(f.d));
  (void)unchanged_d;
  EXPECT_LE(solo_b, honest_b);

  // ...but the coalition profits: both declare zero.
  const auto [cartel_b, cartel_d] = utilities(Cost{0}, Cost{0});
  EXPECT_GT(cartel_b, honest_b);
  EXPECT_GT(cartel_d, honest_d);
  EXPECT_EQ(cartel_b, 3);
  EXPECT_EQ(cartel_d, 4);
}

TEST(NegativeControl, CostPlusOverstatementIsTheTemptation) {
  // Footnote 1's second temptation concretely: under cost-plus, a node
  // with slack before traffic reroutes gains by overstating.
  const auto g = test::make_instance({"er", 14, 402, 6});
  const auto traffic = TrafficMatrix::uniform(g.node_count(), 1);
  std::size_t overstaters = 0;
  for (NodeId k = 0; k < g.node_count(); ++k) {
    const auto witness =
        mechanism::find_cost_plus_manipulation(g, k, 25, traffic);
    if (witness.found && witness.declared > g.cost(k)) ++overstaters;
  }
  EXPECT_GT(overstaters, 0u);
}

}  // namespace
}  // namespace fpss
