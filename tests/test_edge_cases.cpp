// Boundary and contract tests across modules: tiny graphs, degenerate
// inputs, engine cutoffs, and precondition enforcement.
#include <gtest/gtest.h>

#include "bgp/plain_agent.h"
#include "common.h"
#include "graph/analysis.h"
#include "mechanism/vcg.h"
#include "pricing/session.h"
#include "pricing/verify.h"
#include "routing/dijkstra.h"
#include "routing/disjoint.h"
#include "routing/replacement.h"

namespace fpss {
namespace {

// --- tiny and degenerate graphs --------------------------------------------

TEST(TinyGraphs, TriangleIsTheSmallestMechanismInput) {
  auto g = graphgen::clique_graph(3);
  g.set_costs({Cost{1}, Cost{2}, Cost{3}});
  ASSERT_TRUE(mechanism::check_feasibility(g).feasible);
  const mechanism::VcgMechanism mech(g);
  // All pairs adjacent: every LCP is the direct link, nobody is paid.
  for (NodeId i = 0; i < 3; ++i) {
    for (NodeId j = 0; j < 3; ++j) {
      if (i != j) {
        ASSERT_EQ(mech.pair_payment(i, j), Cost::zero());
      }
    }
  }
}

TEST(TinyGraphs, TriangleWithForcedTransit) {
  // The 4-cycle is the smallest instance with a genuinely priced transit
  // node (a 3-cycle routes every pair directly).
  auto g = graphgen::ring_graph(4);
  g.set_costs({Cost{0}, Cost{2}, Cost{0}, Cost{7}});
  const mechanism::VcgMechanism mech(g);
  // 0 -> 2 goes via 1 (cost 2) vs via 3 (cost 7); premium = 7 - 2.
  EXPECT_EQ(mech.routes().cost(0, 2), Cost{2});
  EXPECT_EQ(mech.price(1, 0, 2), Cost{2 + (7 - 2)});
}

TEST(TinyGraphs, TwoNodeProtocolConverges) {
  graph::Graph g{2};
  g.add_edge(0, 1);
  pricing::Session session(g, pricing::Protocol::kPriceVector);
  const auto stats = session.run();
  EXPECT_TRUE(stats.converged);
  EXPECT_TRUE(session.route(0, 1).valid());
  EXPECT_EQ(session.route(0, 1).cost, Cost::zero());
}

TEST(TinyGraphs, SingleNodeNetworkIsTriviallyQuiescent) {
  graph::Graph g{1};
  pricing::Session session(g, pricing::Protocol::kPriceVector);
  const auto stats = session.run();
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(stats.messages, 0u);
}

TEST(TinyGraphs, DijkstraSelfDestination) {
  const auto g = graphgen::ring_graph(4);
  const auto tree = routing::compute_sink_tree(g, 2);
  EXPECT_EQ(tree.cost(2), Cost::zero());
  EXPECT_EQ(tree.hops(2), 0u);
  EXPECT_EQ(tree.path_from(2), (graph::Path{2}));
}

TEST(TinyGraphs, AvoidanceOnCliqueIsAllDirect) {
  const auto g = graphgen::clique_graph(5);
  const auto tree = routing::compute_sink_tree(g, 0);
  const auto table = routing::AvoidanceTable::compute(g, tree);
  EXPECT_EQ(table.entry_count(), 0u);  // nobody is transit for anyone
}

// --- engine boundaries -------------------------------------------------------

TEST(EngineBoundaries, StageCapStopsWithoutConvergence) {
  const auto g = test::make_instance({"ring", 17, 1200, 5});
  pricing::Session session(g, pricing::Protocol::kPriceVector);
  const auto partial = session.engine().run(/*max_stages=*/2);
  EXPECT_FALSE(partial.converged);
  EXPECT_EQ(partial.stages, 2u);
  // Finishing later still ends exact.
  const auto rest = session.engine().run();
  EXPECT_TRUE(rest.converged);
  const mechanism::VcgMechanism mech(g);
  EXPECT_TRUE(pricing::verify_against_centralized(session, mech).ok);
}

TEST(EngineBoundaries, SegmentsSumToTotals) {
  const auto g = test::make_instance({"er", 14, 1201, 6});
  pricing::Session session(g, pricing::Protocol::kPriceVector);
  const auto first = session.engine().run(3);
  const auto second = session.engine().run();
  const auto& total = session.total_stats();
  EXPECT_EQ(first.stages + second.stages, total.stages);
  EXPECT_EQ(first.messages + second.messages, total.messages);
  EXPECT_EQ(first.traffic.total_words() + second.traffic.total_words(),
            total.traffic.total_words());
}

TEST(EngineBoundaries, AgentSurvivesDuplicateDelivery) {
  // Idempotence: re-receiving the same message changes nothing.
  graph::Graph g{3};
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  bgp::PlainBgpAgent agent(0, 3, Cost{1}, bgp::UpdatePolicy::kIncremental);
  agent.bootstrap();
  bgp::TableMessage msg;
  msg.sender = 1;
  msg.sender_cost = Cost{2};
  bgp::RouteAdvert advert;
  advert.destination = 2;
  advert.path = {1, 2};
  advert.cost = Cost::zero();
  advert.node_costs = {Cost{2}, Cost{0}};
  msg.entries.push_back(advert);
  agent.receive(msg);
  auto first = agent.advertise();
  ASSERT_TRUE(first.has_value());
  agent.receive(msg);  // exact duplicate
  const auto second = agent.advertise();
  EXPECT_FALSE(agent.routes_changed_last_compute());
  EXPECT_FALSE(second.has_value());  // nothing new to say
}

// --- contracts ---------------------------------------------------------------

TEST(ContractsDeathTest, GraphRejectsOutOfRange) {
  graph::Graph g{3};
  EXPECT_DEATH(g.cost(7), "precondition");
  EXPECT_DEATH(g.add_edge(0, 9), "precondition");
  EXPECT_DEATH(g.set_cost(0, Cost::infinity()), "precondition");
}

TEST(ContractsDeathTest, SinkTreePathFromUnreachable) {
  graph::Graph g{4};
  g.add_edge(0, 1);  // 2, 3 isolated
  const auto tree = routing::compute_sink_tree(g, 0);
  EXPECT_DEATH(tree.path_from(3), "precondition");
}

TEST(ContractsDeathTest, AvoidanceLookupRequiresEntry) {
  const auto f = graphgen::fig1();
  const auto tree = routing::compute_sink_tree(f.g, f.z);
  const auto table = routing::AvoidanceTable::compute(f.g, tree);
  EXPECT_DEATH(table.avoiding_cost(f.a, f.b), "precondition");  // A's LCP
                                                                // skips B
}

TEST(ContractsDeathTest, DisjointPairRejectsEqualEndpoints) {
  const auto g = graphgen::ring_graph(4);
  EXPECT_DEATH(routing::disjoint_path_pair(g, 1, 1), "precondition");
}

// --- zero-cost corner --------------------------------------------------------

TEST(ZeroCosts, EverythingIsFreeAndTiesBreakDeterministically) {
  auto g = test::make_instance({"er", 18, 1202, 0});  // all costs zero
  const mechanism::VcgMechanism mech(g);
  pricing::Session session(g, pricing::Protocol::kPriceVector);
  ASSERT_TRUE(session.run().converged);
  const auto result = pricing::verify_against_centralized(session, mech);
  EXPECT_TRUE(result.ok) << result.first_diff;
  // With zero costs every price is zero (the avoiding path costs nothing).
  for (NodeId i = 0; i < g.node_count(); ++i) {
    for (NodeId j = 0; j < g.node_count(); ++j) {
      if (i == j) continue;
      EXPECT_EQ(mech.pair_payment(i, j), Cost::zero());
    }
  }
}

}  // namespace
}  // namespace fpss
