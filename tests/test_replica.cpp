// The read-replica subsystem: ReplicationCodec stream fidelity (round
// trips, every-prefix truncation fuzz, stream anomalies), the O(dirty)
// per-shard transfer property pinned deterministically through a raw
// client fetch, push-based subscription semantics (ack coalescing, the
// subscribed-connection guard), warm starts from a local checkpoint with
// digest adoption, and primary/replica end-to-end equality across
// randomized delta bursts — including the torn-view reader hunt the CI
// TSan job leans on.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common.h"
#include "net/client.h"
#include "net/server.h"
#include "replica/replica.h"
#include "service/checkpoint.h"
#include "service/protocol.h"
#include "service/replication.h"
#include "service/service.h"
#include "service/snapshot.h"
#include "service/store.h"
#include "util/rng.h"

namespace fpss {
namespace {

using replica::ReplicaConfig;
using replica::ReplicaService;
using service::ReplicationCodec;
using service::Request;
using service::RequestKind;
using service::RouteService;
using service::RouteSnapshot;

RouteService make_service(const test::InstanceSpec& spec, std::size_t shards) {
  service::ServiceConfig config;
  config.shards = shards;
  return RouteService(test::make_instance(spec), config);
}

/// Encodes the complete replication stream for `cut` (every listed shard's
/// data chunks, then the final chunk announcing `sent`).
std::vector<std::string> full_stream(
    const service::ShardedSnapshotStore& store,
    const service::ShardedSnapshotStore::ExportCut& cut,
    const std::vector<std::uint32_t>& sent) {
  std::vector<std::string> chunks;
  for (const std::uint32_t s : sent) {
    auto shard_chunks = ReplicationCodec::encode_shard(
        *cut.newest, s, store.shard_size(),
        static_cast<std::uint32_t>(store.shard_count()),
        cut.shard_versions[s]);
    for (auto& c : shard_chunks) chunks.push_back(std::move(c));
  }
  chunks.push_back(
      ReplicationCodec::encode_final(*cut.newest, cut.shard_versions, sent));
  return chunks;
}

std::vector<std::uint32_t> all_shards(std::size_t shard_count) {
  std::vector<std::uint32_t> sent(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s)
    sent[s] = static_cast<std::uint32_t>(s);
  return sent;
}

std::vector<Request> random_batch(NodeId n, std::uint64_t seed,
                                  std::size_t count = 48) {
  util::Rng rng(seed);
  std::vector<Request> batch;
  const auto kinds = {RequestKind::kCost,     RequestKind::kPrice,
                      RequestKind::kPairPayment, RequestKind::kNextHop,
                      RequestKind::kPath,     RequestKind::kPayment};
  for (std::size_t q = 0; q < count; ++q) {
    Request r;
    r.kind = *(kinds.begin() + static_cast<long>(rng.below(kinds.size())));
    r.k = static_cast<NodeId>(rng.below(n));
    r.i = static_cast<NodeId>(rng.below(n));
    r.j = static_cast<NodeId>(rng.below(n));
    batch.push_back(r);
  }
  batch.push_back({RequestKind::kCost, 0, n, 0});  // out of range
  return batch;
}

// --- codec: round trips -----------------------------------------------------

TEST(ReplicationCodec, FullStreamRoundTrip) {
  RouteService svc = make_service({"er", 24, 41, 10}, 4);
  const auto cut = svc.store().export_cut();
  ASSERT_NE(cut.newest, nullptr);

  ReplicationCodec::Assembler assembler(nullptr, nullptr);
  for (const std::string& chunk :
       full_stream(svc.store(), cut, all_shards(svc.store().shard_count())))
    ASSERT_TRUE(assembler.feed(chunk)) << assembler.error();
  const auto result = assembler.finish();
  ASSERT_TRUE(result.ok()) << result.error;

  EXPECT_EQ(result.snapshot->version(), cut.newest->version());
  EXPECT_EQ(result.snapshot->checksum(), cut.newest->checksum());
  EXPECT_EQ(result.snapshot->content_checksum(),
            cut.newest->content_checksum());
  EXPECT_EQ(result.shard_versions, cut.shard_versions);
  EXPECT_TRUE(result.snapshot->self_check());

  // Every answer evaluated against the reassembled snapshot is the answer
  // the original gives.
  const std::uint64_t now = 1;
  for (const Request& r :
       random_batch(static_cast<NodeId>(cut.newest->node_count()), 5)) {
    EXPECT_TRUE(service::same_answer(service::answer(*result.snapshot, r, now),
                                     service::answer(*cut.newest, r, now)));
  }
}

TEST(ReplicationCodec, DirtyOnlyStreamAppliesOverBase) {
  RouteService svc = make_service({"ba", 32, 42, 12}, 8);
  const auto before = svc.store().export_cut();

  svc.submit({RouteService::Delta::cost_change(3, Cost{7}),
              RouteService::Delta::cost_change(11, Cost{2})});
  svc.drain();
  const auto after = svc.store().export_cut();
  ASSERT_GT(after.newest->version(), before.newest->version());

  // What a caught-up replica would request: only the moved shards.
  std::vector<std::uint32_t> dirty;
  for (std::size_t s = 0; s < after.shard_versions.size(); ++s)
    if (after.shard_versions[s] != before.shard_versions[s])
      dirty.push_back(static_cast<std::uint32_t>(s));

  ReplicationCodec::Assembler assembler(before.newest, nullptr);
  for (const std::string& chunk : full_stream(svc.store(), after, dirty))
    ASSERT_TRUE(assembler.feed(chunk)) << assembler.error();
  const auto result = assembler.finish();
  ASSERT_TRUE(result.ok()) << result.error;

  EXPECT_EQ(result.snapshot->checksum(), after.newest->checksum());
  EXPECT_EQ(result.shards_sent.size(), dirty.size());
  EXPECT_TRUE(result.snapshot->self_check());
}

TEST(ReplicationCodec, IdenticalBlocksAreAdoptedFromBase) {
  RouteService svc = make_service({"er", 20, 43, 9}, 4);
  const auto cut = svc.store().export_cut();

  // A full restream over an identical base adopts every block: the wire
  // copies are dropped in favor of the resident ones.
  ReplicationCodec::Assembler assembler(cut.newest, nullptr);
  for (const std::string& chunk :
       full_stream(svc.store(), cut, all_shards(svc.store().shard_count())))
    ASSERT_TRUE(assembler.feed(chunk)) << assembler.error();
  const auto result = assembler.finish();
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.blocks_adopted, cut.newest->node_count());
}

// --- codec: torn and hostile streams ----------------------------------------

// The satellite acceptance bar: every byte-prefix truncation of every
// chunk must leave the assembler rejecting the stream — a torn shard
// payload can never produce a publishable snapshot.
TEST(ReplicationCodec, EveryTruncationOfEveryChunkIsRejected) {
  RouteService svc = make_service({"er", 16, 44, 8}, 4);
  const auto cut = svc.store().export_cut();
  const auto chunks =
      full_stream(svc.store(), cut, all_shards(svc.store().shard_count()));

  for (std::size_t c = 0; c < chunks.size(); ++c) {
    for (std::size_t bytes = 0; bytes < chunks[c].size(); ++bytes) {
      ReplicationCodec::Assembler assembler(nullptr, nullptr);
      for (std::size_t prior = 0; prior < c; ++prior)
        ASSERT_TRUE(assembler.feed(chunks[prior]));
      // The truncated chunk either fails immediately or poisons the
      // stream; even when fed the remaining chunks, finish() must reject.
      if (assembler.feed(std::string_view(chunks[c]).substr(0, bytes))) {
        for (std::size_t rest = c + 1; rest < chunks.size(); ++rest)
          assembler.feed(chunks[rest]);
      }
      EXPECT_FALSE(assembler.finish().ok())
          << "chunk " << c << " truncated to " << bytes << " accepted";
    }
  }
}

TEST(ReplicationCodec, CorruptedBytesNeverAssemble) {
  RouteService svc = make_service({"er", 16, 45, 8}, 4);
  const auto cut = svc.store().export_cut();
  const auto sent = all_shards(svc.store().shard_count());
  const auto chunks = full_stream(svc.store(), cut, sent);

  // Flip one byte at a stride through every chunk: whatever field it
  // lands in (geometry, a cost, a digest-relevant row), the stream must
  // fail structurally or die on the final checksum cross-check.
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    for (std::size_t at = 0; at < chunks[c].size(); at += 7) {
      std::string mutated = chunks[c];
      mutated[at] = static_cast<char>(mutated[at] ^ 0x2d);
      ReplicationCodec::Assembler assembler(nullptr, nullptr);
      bool fed_ok = true;
      for (std::size_t i = 0; i < chunks.size() && fed_ok; ++i)
        fed_ok = assembler.feed(i == c ? std::string_view(mutated)
                                       : std::string_view(chunks[i]));
      EXPECT_FALSE(assembler.finish().ok())
          << "chunk " << c << " byte " << at << " flip accepted";
    }
  }
}

TEST(ReplicationCodec, StreamAnomaliesAreRejected) {
  RouteService svc = make_service({"er", 16, 46, 8}, 4);
  const auto cut = svc.store().export_cut();
  const auto sent = all_shards(svc.store().shard_count());
  const auto chunks = full_stream(svc.store(), cut, sent);

  {  // stream with no final chunk
    ReplicationCodec::Assembler assembler(nullptr, nullptr);
    for (std::size_t c = 0; c + 1 < chunks.size(); ++c)
      ASSERT_TRUE(assembler.feed(chunks[c]));
    EXPECT_FALSE(assembler.finish().ok());
  }
  {  // announced shard never arrives
    ReplicationCodec::Assembler assembler(nullptr, nullptr);
    for (std::size_t c = 1; c < chunks.size(); ++c)
      assembler.feed(chunks[c]);
    EXPECT_FALSE(assembler.finish().ok());
  }
  {  // duplicate data chunk
    ReplicationCodec::Assembler assembler(nullptr, nullptr);
    ASSERT_TRUE(assembler.feed(chunks[0]));
    EXPECT_FALSE(assembler.feed(chunks[0]));
    EXPECT_FALSE(assembler.finish().ok());
  }
  {  // data chunk after the final chunk
    ReplicationCodec::Assembler assembler(nullptr, nullptr);
    for (const std::string& chunk : chunks) ASSERT_TRUE(assembler.feed(chunk));
    EXPECT_FALSE(assembler.feed(chunks[0]));
    EXPECT_FALSE(assembler.finish().ok());
  }
  {  // cold bootstrap whose response does not cover every shard
    ReplicationCodec::Assembler assembler(nullptr, nullptr);
    std::vector<std::uint32_t> partial = {0, 1};
    for (const std::string& chunk : full_stream(svc.store(), cut, partial))
      ASSERT_TRUE(assembler.feed(chunk)) << assembler.error();
    EXPECT_FALSE(assembler.finish().ok());
  }
  {  // a sent list that disagrees with the data chunks actually streamed
    ReplicationCodec::Assembler assembler(nullptr, nullptr);
    for (std::size_t c = 0; c + 1 < chunks.size(); ++c)
      ASSERT_TRUE(assembler.feed(chunks[c]));
    std::vector<std::uint32_t> partial = {0};
    ASSERT_TRUE(assembler.feed(
        ReplicationCodec::encode_final(*cut.newest, cut.shard_versions,
                                       partial)));
    EXPECT_FALSE(assembler.finish().ok());
  }
}

// --- the O(dirty) transfer property -----------------------------------------

// Pinned deterministically through a raw client fetch (no subscription
// timing in the loop): a fetch that presents up-to-date versions for all
// but the moved shards receives exactly the moved shards back.
TEST(ReplicaTransfer, CatchUpFetchesOnlyMovedShards) {
  RouteService svc = make_service({"er", 48, 47, 10}, 8);
  net::RouteServer server(svc);
  ASSERT_TRUE(server.ok()) << server.error();
  net::ClientConfig config;
  config.port = server.port();
  net::RouteClient client(config);
  ASSERT_TRUE(client.connect().ok());

  // Bootstrap: empty negotiation state elicits every shard.
  const auto bootstrap = client.fetch_snapshot({});
  ASSERT_TRUE(bootstrap.ok()) << bootstrap.error.message;
  ReplicationCodec::Assembler boot_assembler(nullptr, nullptr);
  for (const std::string& chunk : bootstrap.chunks)
    ASSERT_TRUE(boot_assembler.feed(chunk)) << boot_assembler.error();
  const auto booted = boot_assembler.finish();
  ASSERT_TRUE(booted.ok()) << booted.error;
  EXPECT_EQ(booted.shards_sent.size(), svc.store().shard_count());

  // A change guaranteed to be effectual: bump node 5's declared cost off
  // whatever it currently is.
  const auto before = svc.store().export_cut();
  svc.submit({RouteService::Delta::cost_change(
      5, Cost{before.newest->node_cost(5).value() + 1})});
  svc.drain();
  const auto after = svc.store().export_cut();
  std::size_t moved = 0;
  for (std::size_t s = 0; s < after.shard_versions.size(); ++s)
    if (after.shard_versions[s] != before.shard_versions[s]) ++moved;
  ASSERT_GT(moved, 0u);

  // Catch-up with the bootstrap's negotiation state: exactly the moved
  // shards come back, and the transfer is strictly smaller than the
  // bootstrap whenever any shard stayed clean.
  const auto catch_up = client.fetch_snapshot(booted.shard_versions);
  ASSERT_TRUE(catch_up.ok()) << catch_up.error.message;
  ReplicationCodec::Assembler delta_assembler(booted.snapshot, nullptr);
  for (const std::string& chunk : catch_up.chunks)
    ASSERT_TRUE(delta_assembler.feed(chunk)) << delta_assembler.error();
  const auto caught = delta_assembler.finish();
  ASSERT_TRUE(caught.ok()) << caught.error;
  EXPECT_EQ(caught.shards_sent.size(), moved);
  EXPECT_EQ(caught.snapshot->checksum(), after.newest->checksum());
  if (moved < svc.store().shard_count()) {
    EXPECT_LT(catch_up.bytes, bootstrap.bytes);
  }

  // Already caught up: zero data chunks, just the final chunk.
  const auto idle = client.fetch_snapshot(caught.shard_versions);
  ASSERT_TRUE(idle.ok()) << idle.error.message;
  ASSERT_EQ(idle.chunks.size(), 1u);
  ReplicationCodec::Assembler idle_assembler(caught.snapshot, nullptr);
  ASSERT_TRUE(idle_assembler.feed(idle.chunks[0]));
  EXPECT_TRUE(idle_assembler.finish().ok());
}

// --- subscription semantics --------------------------------------------------

TEST(ReplicaSubscribe, LateSubscriberAckCoalescesMissedPublishes) {
  RouteService svc = make_service({"er", 24, 48, 9}, 4);
  for (int burst = 0; burst < 3; ++burst) {
    svc.submit({RouteService::Delta::cost_change(
        static_cast<NodeId>(1 + burst), Cost{2 + burst})});
    svc.drain();
  }
  const std::uint64_t publishes = svc.store().publish_count();
  ASSERT_GE(publishes, 4u);

  net::RouteServer server(svc);
  ASSERT_TRUE(server.ok()) << server.error();
  net::ClientConfig config;
  config.port = server.port();
  net::RouteClient client(config);
  ASSERT_TRUE(client.connect().ok());

  // A subscriber that last saw publish 0 gets one ack carrying the
  // current state and the whole gap as `coalesced` — never a backlog.
  const auto ack = client.subscribe(0);
  ASSERT_TRUE(ack.ok()) << ack.error.message;
  EXPECT_EQ(ack.notify.publish_count, publishes);
  EXPECT_EQ(ack.notify.coalesced, publishes - 1);
  EXPECT_EQ(ack.notify.snapshot_version, svc.version());
  EXPECT_TRUE(client.subscribed());

  // Quiet period: timeout with the connection intact.
  const auto quiet = client.await_notify(50);
  EXPECT_EQ(quiet.error.status, net::ClientStatus::kTimeout);
  EXPECT_TRUE(client.connected());

  // A publish wakes the subscription.
  svc.submit({RouteService::Delta::cost_change(2, Cost{5})});
  svc.drain();
  const auto pushed = client.await_notify(5000);
  ASSERT_TRUE(pushed.ok()) << pushed.error.message;
  EXPECT_GT(pushed.notify.publish_count, publishes);
}

TEST(ReplicaSubscribe, SubscribedConnectionRejectsRequestReply) {
  RouteService svc = make_service({"er", 16, 49, 6}, 2);
  net::RouteServer server(svc);
  ASSERT_TRUE(server.ok()) << server.error();
  net::ClientConfig config;
  config.port = server.port();
  net::RouteClient client(config);
  ASSERT_TRUE(client.connect().ok());
  ASSERT_TRUE(client.subscribe(0).ok());

  // The conversation got out of step by construction: a subscribed
  // connection only speaks kPublishNotify. The guard fires client-side,
  // before any bytes hit the socket.
  const auto result = client.query(random_batch(16, 3, 2));
  EXPECT_EQ(result.error.status, net::ClientStatus::kUnexpectedFrame);
}

// --- replica end to end ------------------------------------------------------

TEST(ReplicaE2E, BitIdenticalAcrossRandomizedDeltaBurstsOnTwoFamilies) {
  const test::InstanceSpec specs[] = {{"er", 32, 50, 10}, {"ba", 40, 51, 12}};
  for (const auto& spec : specs) {
    RouteService primary = make_service(spec, 4);
    const NodeId n = static_cast<NodeId>(primary.node_count());
    net::RouteServer server(primary);
    ASSERT_TRUE(server.ok()) << server.error();

    ReplicaConfig config;
    config.upstream.port = server.port();
    ReplicaService replica(config);
    ASSERT_TRUE(replica.wait_until_ready(10000));
    replica.wait_for_version_beyond(primary.version() - 1, 10000);

    util::Rng rng(spec.seed);
    for (int burst = 0; burst < 5; ++burst) {
      std::vector<RouteService::Delta> deltas;
      const std::size_t size = 1 + rng.below(3);
      for (std::size_t d = 0; d < size; ++d)
        deltas.push_back(RouteService::Delta::cost_change(
            static_cast<NodeId>(rng.below(n)),
            Cost{static_cast<Cost::rep>(1 + rng.below(9))}));
      primary.submit(deltas);
      const std::uint64_t version = primary.drain();
      ASSERT_GE(replica.wait_for_version_beyond(version - 1, 10000), version)
          << spec.family << " burst " << burst;

      // Bit-identical content and bit-identical answers.
      const auto primary_snap = primary.snapshot();
      const auto replica_store = replica.store();
      ASSERT_NE(replica_store, nullptr);
      const auto replica_snap = replica_store->newest();
      ASSERT_NE(replica_snap, nullptr);
      EXPECT_EQ(replica_snap->checksum(), primary_snap->checksum());
      EXPECT_EQ(replica_snap->content_checksum(),
                primary_snap->content_checksum());

      const auto batch =
          random_batch(n, 60 + static_cast<std::uint64_t>(burst));
      const auto from_primary = primary.query(batch);
      const auto from_replica = replica.query(batch);
      ASSERT_EQ(from_primary.size(), from_replica.size());
      for (std::size_t q = 0; q < batch.size(); ++q)
        EXPECT_TRUE(service::same_answer(from_primary[q], from_replica[q]))
            << spec.family << " burst " << burst << " query " << q;
    }

    const auto counters = replica.replication_counters();
    EXPECT_GE(counters.full_syncs, 1u);
    EXPECT_GE(counters.delta_syncs, 1u);
    EXPECT_GE(counters.notifies_received, 5u);
    EXPECT_EQ(counters.resyncs, 0u);
  }
}

TEST(ReplicaE2E, RepublishSyncsGlobalsWithoutFetchingAnyShard) {
  RouteService primary = make_service({"tiered", 36, 52, 8}, 4);
  const NodeId n = static_cast<NodeId>(primary.node_count());
  net::RouteServer server(primary);
  ASSERT_TRUE(server.ok()) << server.error();

  ReplicaConfig config;
  config.upstream.port = server.port();
  ReplicaService replica(config);
  ASSERT_TRUE(replica.wait_until_ready(10000));
  replica.wait_for_version_beyond(primary.version() - 1, 10000);
  const auto before = replica.replication_counters();

  // Payment-only churn: totals move, no sink tree does. The replica must
  // pick up the new globals notify-driven while fetching zero shards.
  // A republish may keep the served version, so the catch-up is awaited
  // on the publish clock (the upstream's count at the last completed
  // sync), not the version.
  const std::uint64_t installs = replica.publish_count();
  primary.charge(0, static_cast<NodeId>(n - 1), 500);
  primary.settle();
  primary.submit({RouteService::Delta::republish()});
  primary.drain();
  ASSERT_GT(replica.wait_for_publish_beyond(installs, 10000), installs);

  const auto after = replica.replication_counters();
  EXPECT_EQ(after.shards_fetched, before.shards_fetched);
  EXPECT_GT(after.delta_syncs, before.delta_syncs);

  std::vector<Request> payments;
  for (NodeId k = 0; k < n; ++k)
    payments.push_back({RequestKind::kPayment, k, kInvalidNode, kInvalidNode});
  const auto from_primary = primary.query(payments);
  const auto from_replica = replica.query(payments);
  for (NodeId k = 0; k < n; ++k)
    EXPECT_TRUE(service::same_answer(from_primary[k], from_replica[k])) << k;
}

TEST(ReplicaE2E, WarmStartServesCheckpointBeforeUpstreamIsReachable) {
  const std::string dir = "replica_warm_ckpt";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directory(dir);
  std::uint64_t want_checksum = 0;
  {
    service::ServiceConfig config;
    config.shards = 2;
    config.checkpoint.directory = dir;
    RouteService primary(test::make_instance({"er", 24, 53, 7}), config);
    want_checksum = primary.snapshot()->checksum();
  }

  // Upstream down (nobody listens on the dialed port): the checkpoint is
  // served immediately anyway.
  ReplicaConfig config;
  config.upstream.port = 1;
  config.upstream.connect_attempts = 1;
  config.upstream.backoff_ms = 1;
  config.checkpoint_directory = dir;
  config.resync_backoff_ms = 20;
  ReplicaService replica(config);
  ASSERT_TRUE(replica.wait_until_ready(1000));
  ASSERT_NE(replica.store(), nullptr);
  EXPECT_EQ(replica.store()->newest()->checksum(), want_checksum);

  const auto batch = random_batch(24, 8, 8);
  const auto replies = replica.query(batch);
  ASSERT_EQ(replies.size(), batch.size());
  EXPECT_EQ(replies.back().status, service::Status::kBadNode);
  replica.stop();
  std::filesystem::remove_all(dir);
}

TEST(ReplicaE2E, WarmStartAdoptsMatchingBlocksFromCheckpoint) {
  const std::string dir = "replica_adopt_ckpt";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directory(dir);
  const test::InstanceSpec spec{"er", 24, 54, 7};
  {
    service::ServiceConfig config;
    config.checkpoint.directory = dir;
    RouteService writer(test::make_instance(spec), config);
  }

  // Same deterministic topology, fresh primary: the converged blocks are
  // content-identical to the checkpointed image, so the warm replica's
  // first full sync adopts instead of materializing wire copies.
  RouteService primary = make_service(spec, 4);
  net::RouteServer server(primary);
  ASSERT_TRUE(server.ok()) << server.error();

  ReplicaConfig config;
  config.upstream.port = server.port();
  config.checkpoint_directory = dir;
  ReplicaService replica(config);
  ASSERT_TRUE(replica.wait_until_ready(10000));
  // The publish clock is chain-wide (the upstream's count as of the last
  // completed sync), so it stays 0 while only the checkpoint is served
  // and crosses 0 exactly when the wire sync lands — version alone can't
  // distinguish the two (the fresh primary converges to the same epoch).
  ASSERT_GT(replica.wait_for_publish_beyond(0, 10000), 0u);

  const auto counters = replica.replication_counters();
  EXPECT_GE(counters.full_syncs, 1u);
  EXPECT_GT(counters.blocks_adopted, 0u);
  EXPECT_EQ(replica.store()->newest()->content_checksum(),
            primary.snapshot()->content_checksum());
  std::filesystem::remove_all(dir);
}

TEST(ReplicaE2E, ReplicaCountersTravelTheWire) {
  RouteService primary = make_service({"er", 20, 55, 6}, 2);
  net::RouteServer primary_server(primary);
  ASSERT_TRUE(primary_server.ok());

  ReplicaConfig config;
  config.upstream.port = primary_server.port();
  ReplicaService replica(config);
  ASSERT_TRUE(replica.wait_until_ready(10000));
  replica.wait_for_version_beyond(0, 10000);

  net::ServerConfig front_config;
  front_config.allow_deltas = false;
  net::RouteServer front(replica, front_config);
  ASSERT_TRUE(front.ok()) << front.error();
  net::ClientConfig client_config;
  client_config.port = front.port();
  net::RouteClient client(client_config);
  ASSERT_TRUE(client.connect().ok());

  const auto result = client.counters();
  ASSERT_TRUE(result.ok()) << result.error.message;
  ASSERT_TRUE(result.has_replica);
  EXPECT_GE(result.replica.full_syncs, 1u);
  EXPECT_GE(result.replica.shards_fetched, 2u);
  EXPECT_GT(result.replica.bytes_fetched, 0u);

  // The primary's own counters frame carries no replica section.
  net::ClientConfig to_primary;
  to_primary.port = primary_server.port();
  net::RouteClient primary_client(to_primary);
  ASSERT_TRUE(primary_client.connect().ok());
  const auto primary_counters = primary_client.counters();
  ASSERT_TRUE(primary_counters.ok());
  EXPECT_FALSE(primary_counters.has_replica);

  // A read-only front refuses deltas with a typed rejection.
  const auto submit = client.submit_deltas(
      std::vector<RouteService::Delta>{RouteService::Delta::republish()});
  EXPECT_FALSE(submit.ok());
}

// --- torn-view hunt (the TSan job runs this suite) ---------------------------

TEST(ReplicaTsan, ReadersNeverObserveATornViewDuringSyncChurn) {
  RouteService primary = make_service({"er", 32, 56, 10}, 4);
  const NodeId n = static_cast<NodeId>(primary.node_count());
  net::RouteServer server(primary);
  ASSERT_TRUE(server.ok()) << server.error();

  ReplicaConfig config;
  config.upstream.port = server.port();
  ReplicaService replica(config);
  ASSERT_TRUE(replica.wait_until_ready(10000));
  replica.wait_for_version_beyond(0, 10000);

  // Readers hammer the replica's store mid-sync, checking the invariant
  // that only holds inside one consistent cut: a stored route's cost is
  // the sum of its transit nodes' stored costs.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::vector<std::thread> readers;
  for (unsigned r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      util::Rng rng(700 + r);
      while (!stop.load(std::memory_order_relaxed)) {
        const auto store = replica.store();
        if (store == nullptr) continue;
        const auto view = store->acquire();
        if (view.empty()) continue;
        const NodeId i = static_cast<NodeId>(rng.below(n));
        const NodeId j = static_cast<NodeId>(rng.below(n));
        const auto& snap = view.for_destination(j);
        const Cost c = snap.cost(i, j);
        if (c.is_infinite()) continue;
        Cost::rep along = 0;
        for (const NodeId k : snap.path(i, j))
          if (k != i && k != j) along += snap.node_cost(k).value();
        if (Cost{along} != c) torn.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  util::Rng rng(57);
  for (int burst = 0; burst < 6; ++burst) {
    primary.submit({RouteService::Delta::cost_change(
        static_cast<NodeId>(rng.below(n)),
        Cost{static_cast<Cost::rep>(1 + rng.below(9))})});
    const std::uint64_t version = primary.drain();
    ASSERT_GE(replica.wait_for_version_beyond(version - 1, 10000), version);
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(replica.store()->newest()->checksum(),
            primary.snapshot()->checksum());
}

// --- fuzz-derived regressions ----------------------------------------------

// Hand-minimized malformed chunk streams, pinned as regressions so the
// Assembler rejections the fuzz harness (fuzz/fuzz_replication.cpp) relies
// on cannot silently regress. Each input is the smallest byte string that
// reaches its rejection branch; all three must poison the assembly.
TEST(ReplicationCodec, HandMinimizedMalformedChunksAreRejected) {
  const auto append = [](std::string& out, std::uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i)
      out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  };

  // 1. Empty payload: the 21-byte chunk header cannot even be read.
  {
    ReplicationCodec::Assembler assembler;
    EXPECT_FALSE(assembler.feed(""));
    EXPECT_NE(assembler.error().find("truncated"), std::string::npos);
    EXPECT_FALSE(assembler.finish().ok());
  }

  // 2. Complete header declaring zero destinations: bad geometry, caught
  //    before the stream header binds.
  {
    std::string chunk;
    append(chunk, ReplicationCodec::kDataChunk, 1);
    append(chunk, 1, 8);  // version
    append(chunk, 0, 8);  // n = 0
    append(chunk, 1, 4);  // shard_count
    ReplicationCodec::Assembler assembler;
    EXPECT_FALSE(assembler.feed(chunk));
    EXPECT_NE(assembler.error().find("geometry"), std::string::npos);
  }

  // 3. Header-only chunk whose node count implies megabytes of blocks:
  //    the pre-allocation bound must reject it from 21 bytes of input.
  {
    std::string chunk;
    append(chunk, ReplicationCodec::kDataChunk, 1);
    append(chunk, 1, 8);        // version
    append(chunk, 1 << 20, 8);  // n: lies about a million destinations
    append(chunk, 1, 4);        // shard_count
    ReplicationCodec::Assembler assembler;
    EXPECT_FALSE(assembler.feed(chunk));
    EXPECT_NE(assembler.error().find("node count"), std::string::npos);
    // Poisoned: even a later well-formed-looking feed stays rejected.
    EXPECT_FALSE(assembler.feed(chunk));
  }
}

}  // namespace
}  // namespace fpss
