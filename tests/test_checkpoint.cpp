// Dirty-aware incremental checkpointing (PR 7, "fpss-snap v4"): base image
// + per-destination patch journal.
//
// The load-bearing properties:
//   1. base + journal replay reloads *bit-identically* (same root checksum,
//      same provenance) to a full-image save/load of the same snapshot.
//   2. A patch record after a k-destination burst costs O(k) bytes, not
//      O(n^2) — counter-asserted against the base image size.
//   3. Crash safety: truncating the journal at EVERY byte prefix recovers
//      the newest complete state, never a corrupt one (self_check
//      asserted); a journal whose binding mismatches the base on disk (the
//      compaction crash window) is ignored entirely.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "pricing/session.h"
#include "service/checkpoint.h"
#include "service/service.h"
#include "service/snapshot.h"

namespace fpss {
namespace {

using pricing::RestartPolicy;
using pricing::Session;
using service::CheckpointLoadResult;
using service::CheckpointPolicy;
using service::CheckpointWriter;
using service::RouteService;
using service::RouteSnapshot;
using service::ServiceConfig;
using service::load_checkpoint;
using service::load_snapshot;
using service::save_snapshot;

// `count` disjoint `len`-cycles: a cost change inside one component keeps
// every other component's sink trees bit-identical, so the dirty fraction
// of a burst is controllable.
graph::Graph ring_components(std::size_t count, std::size_t len) {
  graph::Graph g{static_cast<NodeId>(count * len)};
  for (std::size_t c = 0; c < count; ++c) {
    const NodeId base = static_cast<NodeId>(c * len);
    for (std::size_t v = 0; v < len; ++v) {
      g.add_edge(base + static_cast<NodeId>(v),
                 base + static_cast<NodeId>((v + 1) % len));
      g.set_cost(base + static_cast<NodeId>(v),
                 Cost{static_cast<Cost::rep>(1 + c + v)});
    }
  }
  return g;
}

std::string fresh_dir(const std::string& name) {
  const std::string path = ::testing::TempDir() + "fpss_" + name;
  std::filesystem::remove_all(path);
  std::filesystem::create_directories(path);
  return path;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::shared_ptr<const RouteSnapshot> export_now(Session& session) {
  return RouteSnapshot::from_session(session,
                                     session.engine().converged_epochs());
}

// --- base + journal == full image ------------------------------------------

TEST(Checkpoint, BaseAndJournalReloadBitIdenticalToFullImage) {
  const std::string dir = fresh_dir("ckpt_roundtrip");
  Session session(ring_components(4, 6), pricing::Protocol::kPriceVector);
  ASSERT_TRUE(session.run().converged);

  CheckpointWriter writer({dir, 1, 4u << 20});
  auto snap = export_now(session);
  ASSERT_EQ(writer.on_publish(snap), "");
  EXPECT_EQ(writer.stats().checkpoints, 1u);
  EXPECT_EQ(writer.stats().patches, 0u);  // the first write is the base

  // Three single-component bursts, each checkpointed as a patch record.
  const NodeId touched[] = {1, 7, 13};
  for (const NodeId v : touched) {
    ASSERT_TRUE(
        session.change_cost(v, Cost{40}, RestartPolicy::kRestartBarrier)
            .converged);
    snap = export_now(session);
    ASSERT_EQ(writer.on_publish(snap), "");
  }
  EXPECT_EQ(writer.stats().checkpoints, 4u);
  EXPECT_GT(writer.stats().patches, 0u);

  const CheckpointLoadResult loaded = load_checkpoint(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  EXPECT_EQ(loaded.records_applied, 3u);
  EXPECT_TRUE(loaded.snapshot->self_check());

  // Bit-identical to a full-image save/load of the same snapshot: same
  // root checksum (which covers provenance), stamp for stamp.
  const auto saved = save_snapshot(*snap, dir + "/full.fpss-snap");
  ASSERT_TRUE(saved.ok()) << saved.error;
  const auto full = load_snapshot(dir + "/full.fpss-snap");
  ASSERT_TRUE(full.ok()) << full.error;
  EXPECT_EQ(loaded.snapshot->checksum(), full.snapshot->checksum());
  EXPECT_EQ(loaded.snapshot->checksum(), snap->checksum());
  EXPECT_EQ(loaded.snapshot->version(), snap->version());
  EXPECT_EQ(loaded.snapshot->published_at_ns(), snap->published_at_ns());
  EXPECT_EQ(loaded.snapshot->content_checksum(), snap->content_checksum());
  EXPECT_EQ(loaded.snapshot->node_cost(13), Cost{40});
}

// --- the acceptance criterion: O(k) patch bytes -----------------------------

TEST(Checkpoint, PatchBytesAreProportionalToDirtyNotToN) {
  const std::string dir = fresh_dir("ckpt_odirty");
  // 24 destinations in four components; a burst in one component can dirty
  // at most 6 of them.
  Session session(ring_components(4, 6), pricing::Protocol::kPriceVector);
  ASSERT_TRUE(session.run().converged);

  CheckpointWriter writer({dir, 1, 4u << 20});
  ASSERT_EQ(writer.on_publish(export_now(session)), "");
  const std::uint64_t base_bytes = writer.stats().bytes_written;
  ASSERT_GT(base_bytes, 0u);

  // One-node burst: the patch record carries only the genuinely changed
  // blocks (digest diff), a quarter of the network at most.
  ASSERT_TRUE(
      session.change_cost(2, Cost{35}, RestartPolicy::kRestartBarrier)
          .converged);
  ASSERT_EQ(writer.on_publish(export_now(session)), "");
  const std::uint64_t patch_bytes = writer.stats().bytes_written - base_bytes;
  ASSERT_GT(patch_bytes, 0u);
  EXPECT_LT(patch_bytes * 2, base_bytes)
      << "patch " << patch_bytes << "B vs base " << base_bytes << "B";
  EXPECT_GE(writer.stats().patches, 1u);
  EXPECT_LE(writer.stats().patches, 6u);  // the touched component only
}

// --- crash recovery at every journal prefix ---------------------------------

TEST(Checkpoint, RecoversNewestCompleteStateAtEveryJournalPrefix) {
  const std::string dir = fresh_dir("ckpt_crash");
  Session session(ring_components(2, 6), pricing::Protocol::kPriceVector);
  ASSERT_TRUE(session.run().converged);

  CheckpointWriter writer({dir, 1, 4u << 20});
  // states[r] = the checksum replaying r records must reproduce;
  // bounds[r] = the journal byte size at which record r is complete.
  std::vector<std::uint64_t> states;
  std::vector<std::uint64_t> bounds;
  auto snap = export_now(session);
  ASSERT_EQ(writer.on_publish(snap), "");
  states.push_back(snap->checksum());
  const NodeId touched[] = {1, 8};
  for (const NodeId v : touched) {
    ASSERT_TRUE(
        session.change_cost(v, Cost{45}, RestartPolicy::kRestartBarrier)
            .converged);
    snap = export_now(session);
    ASSERT_EQ(writer.on_publish(snap), "");
    states.push_back(snap->checksum());
    bounds.push_back(std::filesystem::file_size(writer.journal_path()));
  }

  const std::string journal = read_file(writer.journal_path());
  ASSERT_EQ(journal.size(), bounds.back());

  // Simulated crash at every byte: copy the base, truncate the journal to
  // each prefix, recover. The recovered state must always be the newest
  // whose record is complete in the prefix — and always structurally sound.
  const std::string scratch = fresh_dir("ckpt_crash_scratch");
  std::filesystem::copy_file(writer.base_path(),
                             scratch + "/base.fpss-snap");
  for (std::size_t len = 0; len <= journal.size(); ++len) {
    write_file(scratch + "/journal.fpss-jrnl", journal.substr(0, len));
    const CheckpointLoadResult loaded = load_checkpoint(scratch);
    ASSERT_TRUE(loaded.ok()) << "len=" << len << ": " << loaded.error;
    std::uint64_t expect_applied = 0;
    for (const std::uint64_t bound : bounds)
      if (len >= bound) ++expect_applied;
    ASSERT_EQ(loaded.records_applied, expect_applied) << "len=" << len;
    ASSERT_EQ(loaded.snapshot->checksum(), states[expect_applied])
        << "len=" << len;
    ASSERT_TRUE(loaded.snapshot->self_check()) << "len=" << len;
  }
}

TEST(Checkpoint, JournalBoundToAnotherBaseIsIgnored) {
  const std::string dir = fresh_dir("ckpt_binding");
  Session session(ring_components(2, 6), pricing::Protocol::kPriceVector);
  ASSERT_TRUE(session.run().converged);
  CheckpointWriter writer({dir, 1, 4u << 20});
  ASSERT_EQ(writer.on_publish(export_now(session)), "");
  ASSERT_TRUE(
      session.change_cost(3, Cost{30}, RestartPolicy::kRestartBarrier)
          .converged);
  ASSERT_EQ(writer.on_publish(export_now(session)), "");
  ASSERT_GT(std::filesystem::file_size(writer.journal_path()), 24u);

  // The compaction crash window: a *newer* full base landed (tmp+rename)
  // but the daemon died before truncating the journal. The stale journal's
  // binding mismatches and replay must not run — the base alone is served.
  ASSERT_TRUE(
      session.change_cost(9, Cost{33}, RestartPolicy::kRestartBarrier)
          .converged);
  const auto newer = export_now(session);
  ASSERT_TRUE(save_snapshot(*newer, dir + "/base.fpss-snap").ok());

  const CheckpointLoadResult loaded = load_checkpoint(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  EXPECT_EQ(loaded.records_applied, 0u);
  EXPECT_EQ(loaded.snapshot->checksum(), newer->checksum());
  EXPECT_TRUE(loaded.snapshot->self_check());
}

// --- policy: cadence and compaction -----------------------------------------

TEST(Checkpoint, EveryPublishesPolicySkipsIntermediatePublishes) {
  const std::string dir = fresh_dir("ckpt_cadence");
  Session session(ring_components(2, 6), pricing::Protocol::kPriceVector);
  ASSERT_TRUE(session.run().converged);

  CheckpointWriter writer({dir, 3, 4u << 20});
  ASSERT_EQ(writer.on_publish(export_now(session)), "");
  EXPECT_EQ(writer.stats().checkpoints, 1u);  // the base is never skipped

  std::shared_ptr<const RouteSnapshot> snap;
  for (const NodeId v : {NodeId{1}, NodeId{2}, NodeId{3}}) {
    ASSERT_TRUE(
        session.change_cost(v, Cost{20}, RestartPolicy::kRestartBarrier)
            .converged);
    snap = export_now(session);
    ASSERT_EQ(writer.on_publish(snap), "");
  }
  // Publishes 2 and 3 were skipped; the 4th wrote one record diffing the
  // base against the *cumulative* state of all three bursts.
  EXPECT_EQ(writer.stats().checkpoints, 2u);
  const CheckpointLoadResult loaded = load_checkpoint(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  EXPECT_EQ(loaded.records_applied, 1u);
  EXPECT_EQ(loaded.snapshot->checksum(), snap->checksum());
}

TEST(Checkpoint, CompactionFoldsJournalIntoFreshBase) {
  const std::string dir = fresh_dir("ckpt_compact");
  Session session(ring_components(2, 6), pricing::Protocol::kPriceVector);
  ASSERT_TRUE(session.run().converged);

  // A 64-byte budget: the first patch record overruns it, so the following
  // checkpoint folds the journal into a new base.
  CheckpointWriter writer({dir, 1, 64});
  ASSERT_EQ(writer.on_publish(export_now(session)), "");
  ASSERT_TRUE(
      session.change_cost(1, Cost{25}, RestartPolicy::kRestartBarrier)
          .converged);
  ASSERT_EQ(writer.on_publish(export_now(session)), "");
  EXPECT_EQ(writer.stats().compactions, 0u);
  ASSERT_GT(std::filesystem::file_size(writer.journal_path()), 64u);

  ASSERT_TRUE(
      session.change_cost(7, Cost{26}, RestartPolicy::kRestartBarrier)
          .converged);
  const auto latest = export_now(session);
  ASSERT_EQ(writer.on_publish(latest), "");
  EXPECT_EQ(writer.stats().compactions, 1u);
  // The journal is back to a bare (rebound) header and replay is empty.
  EXPECT_EQ(std::filesystem::file_size(writer.journal_path()), 24u);
  const CheckpointLoadResult loaded = load_checkpoint(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  EXPECT_EQ(loaded.records_applied, 0u);
  EXPECT_EQ(loaded.snapshot->checksum(), latest->checksum());
}

// --- RouteService integration -----------------------------------------------

TEST(Checkpoint, RouteServiceCheckpointsEveryPublishAndRecovers) {
  const std::string dir = fresh_dir("ckpt_service");
  ServiceConfig config;
  config.shards = 2;
  config.checkpoint.directory = dir;
  config.checkpoint.every_publishes = 1;
  RouteService svc(ring_components(2, 6), config);

  // The constructor's first publish wrote the base.
  const auto c0 = svc.counters();
  EXPECT_EQ(c0.checkpoints_written, 1u);
  EXPECT_GT(c0.checkpoint_bytes_written, 0u);
  EXPECT_EQ(c0.journal_patches, 0u);

  svc.submit(RouteService::Delta::cost_change(2, Cost{44}));
  svc.drain();
  const auto c1 = svc.counters();
  EXPECT_EQ(c1.checkpoints_written, 2u);
  EXPECT_GT(c1.checkpoint_bytes_written, c0.checkpoint_bytes_written);
  EXPECT_GE(c1.journal_patches, 1u);

  // A cold daemon recovering from the directory serves the exact state the
  // live daemon last published.
  const CheckpointLoadResult loaded = load_checkpoint(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  EXPECT_EQ(loaded.records_applied, 1u);
  EXPECT_EQ(loaded.snapshot->checksum(), svc.snapshot()->checksum());
  EXPECT_EQ(loaded.snapshot->node_cost(2), Cost{44});
}

// --- fuzz-derived regressions ----------------------------------------------

// Hand-minimized malformed fpss-snap images, pinned as regressions so the
// loader rejections the fuzz harness (fuzz/fuzz_snapshot.cpp) relies on
// cannot silently regress. Each is the smallest image reaching its branch.
TEST(Checkpoint, HandMinimizedMalformedSnapshotsAreRejected) {
  const auto u64le = [](std::string& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  };
  const std::string magic = "FPSSSNP1";

  // 1. Shorter than the 32-byte header: just the magic.
  {
    const auto r = service::load_snapshot_bytes(magic);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.find("short"), std::string::npos);
  }

  // 2. Valid magic, stale format version (v3): a complete 32-byte header
  //    declaring an empty payload.
  {
    std::string image = magic;
    u64le(image, 3);  // format
    u64le(image, 0);  // payload size
    u64le(image, 0);  // checksum
    const auto r = service::load_snapshot_bytes(image);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.find("format"), std::string::npos);
  }

  // 3. Header lies about the payload length (declares 1 byte, carries 0):
  //    rejected on the arithmetic check before any payload parse.
  {
    std::string image = magic;
    u64le(image, 4);  // format
    u64le(image, 1);  // payload size (lie)
    u64le(image, 0);  // checksum
    const auto r = service::load_snapshot_bytes(image);
    ASSERT_FALSE(r.ok());
    EXPECT_FALSE(r.error.empty());
  }
}

}  // namespace
}  // namespace fpss
