// The Sect. 3 generalized cost model: per-outgoing-link costs with node
// agents. The paper asserts the VCG mechanism "would remain strategyproof";
// these tests verify the model reduces to the scalar one when all exits of
// a node cost the same, and that deviations (scaling a node's whole cost
// vector) never pay.
#include <gtest/gtest.h>

#include "common.h"
#include "mechanism/edge_cost_variant.h"
#include "mechanism/vcg.h"
#include "payments/traffic.h"

namespace fpss {
namespace {

namespace ec = mechanism::edgecost;
using payments::TrafficMatrix;

TEST(ExitCosts, FromNodeCostsMatchesScalarModel) {
  const auto f = graphgen::fig1();
  const auto costs = ec::ExitCosts::from_node_costs(f.g);
  EXPECT_EQ(costs.cost(f.d, f.z), Cost{1});
  EXPECT_EQ(costs.cost(f.d, f.y), Cost{1});
  EXPECT_EQ(costs.cost(f.a, f.z), Cost{5});
}

TEST(ExitCosts, PathCostChargesForwardingLinks) {
  const auto f = graphgen::fig1();
  auto costs = ec::ExitCosts::from_node_costs(f.g);
  // X-B-D-Z: B pays its exit to D, D pays its exit to Z.
  EXPECT_EQ(costs.path_cost({f.x, f.b, f.d, f.z}), Cost{3});
  // Make D's exit toward Z expensive; the same path now costs 2 + 9.
  costs.set_cost(f.d, f.z, Cost{9});
  EXPECT_EQ(costs.path_cost({f.x, f.b, f.d, f.z}), Cost{11});
}

TEST(EdgeCostRouting, ReducesToScalarModelOnUniformExits) {
  for (const auto& spec : {test::InstanceSpec{"er", 16, 601, 8},
                           test::InstanceSpec{"ba", 20, 602, 5},
                           test::InstanceSpec{"tiered", 24, 603, 6}}) {
    const auto g = test::make_instance(spec);
    const auto costs = ec::ExitCosts::from_node_costs(g);
    const mechanism::VcgMechanism scalar(g);
    for (NodeId i = 0; i < g.node_count(); ++i) {
      for (NodeId j = 0; j < g.node_count(); ++j) {
        if (i == j) continue;
        const auto route = ec::lowest_cost_route(costs, i, j);
        ASSERT_FALSE(route.path.empty());
        EXPECT_EQ(route.cost, scalar.routes().cost(i, j))
            << i << "->" << j;
      }
    }
  }
}

TEST(EdgeCostRouting, PricesReduceToScalarModel) {
  const auto f = graphgen::fig1();
  const auto costs = ec::ExitCosts::from_node_costs(f.g);
  EXPECT_EQ(ec::vcg_price(costs, f.d, f.x, f.z), Cost{3});
  EXPECT_EQ(ec::vcg_price(costs, f.b, f.x, f.z), Cost{4});
  EXPECT_EQ(ec::vcg_price(costs, f.d, f.y, f.z), Cost{9});
  EXPECT_EQ(ec::vcg_price(costs, f.a, f.x, f.z), Cost::zero());
}

TEST(EdgeCostRouting, AsymmetricExitsChangeRoutes) {
  // Diamond 0-{1,2}-3 where node 1 charges nothing toward 3 but a lot
  // toward 0: direction matters.
  graph::Graph g{4};
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  ec::ExitCosts costs(g);
  costs.set_cost(1, 3, Cost{0});
  costs.set_cost(1, 0, Cost{10});
  costs.set_cost(2, 3, Cost{5});
  costs.set_cost(2, 0, Cost{5});
  // 0 -> 3 goes via 1 (exit 1->3 is free)...
  EXPECT_EQ(ec::lowest_cost_route(costs, 0, 3).path,
            (graph::Path{0, 1, 3}));
  // ... and 3 -> 0 avoids 1 (exit 1->0 costs 10 > 2's 5).
  EXPECT_EQ(ec::lowest_cost_route(costs, 3, 0).path,
            (graph::Path{3, 2, 0}));
}

TEST(EdgeCostRouting, AvoidingRouteExcludesNode) {
  const auto f = graphgen::fig1();
  const auto costs = ec::ExitCosts::from_node_costs(f.g);
  const auto detour = ec::lowest_cost_route(costs, f.x, f.z, f.d);
  EXPECT_EQ(detour.path, (graph::Path{f.x, f.a, f.z}));
  EXPECT_EQ(detour.cost, Cost{5});
}

TEST(EdgeCostStrategyproof, ScalingDeviationsNeverPay) {
  // Node k misreports its whole exit-cost vector by a scalar factor;
  // Theorem 1's VCG logic still makes truth dominant.
  const auto g = test::make_instance({"er", 12, 604, 6});
  util::Rng rng(9);
  const auto truth = ec::ExitCosts::random(g, 0, 8, rng);
  const auto traffic = TrafficMatrix::uniform(g.node_count(), 1);
  struct Scale {
    Cost::rep num, den;
  };
  const std::vector<Scale> scales = {{0, 1}, {1, 2}, {2, 1}, {5, 1}, {1, 4}};
  for (NodeId k = 0; k < g.node_count(); ++k) {
    const Cost::rep truthful = ec::node_utility(truth, truth, k, traffic);
    for (const Scale& s : scales) {
      ec::ExitCosts declared = truth;
      declared.scale_node(k, s.num, s.den);
      const Cost::rep lying = ec::node_utility(declared, truth, k, traffic);
      EXPECT_LE(lying, truthful)
          << "node " << k << " gains by scaling x" << s.num << "/" << s.den;
    }
  }
}

TEST(EdgeCostStrategyproof, PerExitLiesNeverPayEither) {
  // Finer deviations: misreport a single exit cost.
  const auto f = graphgen::fig1();
  auto truth = ec::ExitCosts::from_node_costs(f.g);
  const auto traffic = TrafficMatrix::uniform(6, 1);
  for (NodeId k = 0; k < 6; ++k) {
    const Cost::rep truthful = ec::node_utility(truth, truth, k, traffic);
    for (NodeId v : f.g.neighbors(k)) {
      for (Cost::rep lie : {Cost::rep{0}, Cost::rep{1}, Cost::rep{20}}) {
        ec::ExitCosts declared = truth;
        declared.set_cost(k, v, Cost{lie});
        const Cost::rep lying =
            ec::node_utility(declared, truth, k, traffic);
        EXPECT_LE(lying, truthful)
            << "node " << k << " gains lying about exit to " << v;
      }
    }
  }
}

}  // namespace
}  // namespace fpss
