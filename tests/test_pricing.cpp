#include <gtest/gtest.h>

#include "common.h"
#include "mechanism/vcg.h"
#include "pricing/session.h"
#include "pricing/verify.h"
#include "routing/metrics.h"

namespace fpss {
namespace {

using mechanism::VcgMechanism;
using pricing::Protocol;
using pricing::RestartPolicy;
using pricing::Session;

// --- E1: the worked example, end to end through the protocol --------------

TEST(Pricing, Fig1DistributedPricesMatchPaper) {
  const auto f = graphgen::fig1();
  Session session(f.g, Protocol::kPriceVector);
  const auto stats = session.run();
  ASSERT_TRUE(stats.converged);
  EXPECT_EQ(session.price(f.d, f.x, f.z), Cost{3});
  EXPECT_EQ(session.price(f.b, f.x, f.z), Cost{4});
  EXPECT_EQ(session.price(f.d, f.y, f.z), Cost{9});
}

TEST(Pricing, Fig1BothProtocolsMatchCentralized) {
  const auto f = graphgen::fig1();
  const VcgMechanism mech(f.g);
  for (Protocol protocol :
       {Protocol::kPriceVector, Protocol::kAvoidanceVector}) {
    Session session(f.g, protocol);
    ASSERT_TRUE(session.run().converged);
    const auto result = pricing::verify_against_centralized(session, mech);
    EXPECT_TRUE(result.ok) << result.first_diff;
    EXPECT_GT(result.price_entries_checked, 0u);
  }
}

// --- E4 core: exactness + convergence bound over all families -------------

struct PricingCase {
  test::InstanceSpec spec;
  Protocol protocol;
  bgp::UpdatePolicy policy;
};

std::vector<PricingCase> pricing_cases() {
  std::vector<PricingCase> cases;
  for (const auto& spec : test::standard_instances()) {
    for (Protocol protocol :
         {Protocol::kPriceVector, Protocol::kAvoidanceVector}) {
      for (bgp::UpdatePolicy policy :
           {bgp::UpdatePolicy::kIncremental, bgp::UpdatePolicy::kFullTable}) {
        cases.push_back({spec, protocol, policy});
      }
    }
  }
  return cases;
}

class PricingExactness : public ::testing::TestWithParam<PricingCase> {};

TEST_P(PricingExactness, DistributedEqualsCentralized) {
  const auto g = test::make_instance(GetParam().spec);
  Session session(g, GetParam().protocol, GetParam().policy);
  ASSERT_TRUE(session.run().converged);
  ASSERT_TRUE(session.complete());
  const VcgMechanism mech(g, VcgMechanism::Engine::kNaiveGroundTruth);
  const auto result = pricing::verify_against_centralized(session, mech);
  EXPECT_TRUE(result.ok) << result.first_diff << " ("
                         << result.route_mismatches << " route, "
                         << result.price_mismatches << " price mismatches)";
}

TEST_P(PricingExactness, ConvergesWithinTheoremBound) {
  const auto g = test::make_instance(GetParam().spec);
  const auto diameters = routing::lcp_and_avoiding_diameter(g);
  Session session(g, GetParam().protocol, GetParam().policy);
  const auto stats = session.run();
  ASSERT_TRUE(stats.converged);
  // Theorem 2 / Corollary 1: all routes and prices correct after
  // max(d, d') stages (plus the initial self-announcement stage).
  EXPECT_LE(stats.last_value_change_stage, diameters.stage_bound() + 1)
      << "d=" << diameters.d << " d'=" << diameters.d_prime;
  EXPECT_LE(stats.last_route_change_stage, diameters.d + 1);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, PricingExactness,
                         ::testing::ValuesIn(pricing_cases()));

// --- E6: Lemma 2 per-node bound --------------------------------------------

TEST(PricingPerNode, Lemma2Bound) {
  const auto g = test::make_instance({"er", 20, 55, 8});
  const auto bounds = routing::per_node_stage_bounds(g);
  Session session(g, Protocol::kPriceVector);
  ASSERT_TRUE(session.run().converged);
  for (NodeId i = 0; i < g.node_count(); ++i) {
    // Lemma 2: after d_i stages node i's routes and prices are correct, so
    // nothing at i changes later (one slack stage for the bootstrap).
    EXPECT_LE(session.agent(i).last_value_change_activation(), bounds[i] + 1)
        << "node " << i << " d_i=" << bounds[i];
  }
}

// --- full-table policy -------------------------------------------------------

TEST(Pricing, FullTablePolicyAlsoExact) {
  const auto g = test::make_instance({"tiered", 24, 56, 7});
  Session session(g, Protocol::kPriceVector, bgp::UpdatePolicy::kFullTable);
  ASSERT_TRUE(session.run().converged);
  const VcgMechanism mech(g);
  EXPECT_TRUE(pricing::verify_against_centralized(session, mech).ok);
}

// --- message accounting ------------------------------------------------------

TEST(Pricing, ExtensionCarriesValueWords) {
  const auto g = test::make_instance({"ba", 20, 57, 6});
  Session session(g, Protocol::kPriceVector);
  const auto stats = session.run();
  EXPECT_GT(stats.traffic.value_words, 0u);
  const auto state = session.network().total_state();
  EXPECT_GT(state.value_words, 0u);
}

TEST(Pricing, StateOverheadIsConstantFactor) {
  const auto g = test::make_instance({"er", 24, 58, 6});
  Session session(g, Protocol::kPriceVector);
  session.run();
  const auto state = session.network().total_state();
  // Theorem 2: O(nd) tables, constant-factor penalty: the pricing state
  // cannot exceed the base routing state (one value per path transit node
  // vs the path itself plus per-node costs).
  EXPECT_LE(state.value_words, state.selected_words);
}

// --- dynamics (E9) -----------------------------------------------------------

TEST(PricingDynamics, LinkFailureRestartBarrierExact) {
  const auto f = graphgen::fig1();
  for (Protocol protocol :
       {Protocol::kPriceVector, Protocol::kAvoidanceVector}) {
    Session session(f.g, protocol);
    ASSERT_TRUE(session.run().converged);
    // Removing B-D leaves the 6-cycle X-A-Z-D-Y-B (still biconnected).
    const auto stats =
        session.remove_link(f.b, f.d, RestartPolicy::kRestartBarrier);
    ASSERT_TRUE(stats.converged);
    graph::Graph after = f.g;
    after.remove_edge(f.b, f.d);
    ASSERT_TRUE(graph::is_biconnected(after));
    const VcgMechanism mech(after);
    const auto result =
        pricing::verify_against_centralized(session, mech);
    EXPECT_TRUE(result.ok) << result.first_diff;
  }
}

TEST(PricingDynamics, CostChangeRestartBarrierExact) {
  const auto g = test::make_instance({"er", 16, 59, 6});
  for (Protocol protocol :
       {Protocol::kPriceVector, Protocol::kAvoidanceVector}) {
    Session session(g, protocol);
    ASSERT_TRUE(session.run().converged);
    const auto stats =
        session.change_cost(3, Cost{17}, RestartPolicy::kRestartBarrier);
    ASSERT_TRUE(stats.converged);
    graph::Graph after = g;
    after.set_cost(3, Cost{17});
    const VcgMechanism mech(after);
    EXPECT_TRUE(pricing::verify_against_centralized(session, mech).ok);
  }
}

TEST(PricingDynamics, ImprovingEventIncrementalAvoidanceExact) {
  // Link addition only improves paths; the avoidance-vector protocol stays
  // exact without any restart (its surviving B entries remain valid upper
  // bounds of the new optimum).
  auto g = test::make_instance({"ring", 10, 60, 5});
  Session session(g, Protocol::kAvoidanceVector);
  ASSERT_TRUE(session.run().converged);
  const auto stats = session.add_link(0, 5, RestartPolicy::kIncremental);
  ASSERT_TRUE(stats.converged);
  graph::Graph after = g;
  after.add_edge(0, 5);
  const VcgMechanism mech(after);
  const auto result = pricing::verify_against_centralized(session, mech);
  EXPECT_TRUE(result.ok) << result.first_diff;
}

TEST(PricingDynamics, CostDecreaseIncrementalAvoidanceExact) {
  auto g = test::make_instance({"ba", 16, 61, 8});
  // Pick a node with a nonzero cost to decrease.
  NodeId victim = 0;
  for (NodeId v = 0; v < g.node_count(); ++v)
    if (g.cost(v).value() >= 2) victim = v;
  Session session(g, Protocol::kAvoidanceVector);
  ASSERT_TRUE(session.run().converged);
  const auto stats = session.change_cost(
      victim, Cost{g.cost(victim).value() / 2}, RestartPolicy::kIncremental);
  ASSERT_TRUE(stats.converged);
  graph::Graph after = g;
  after.set_cost(victim, Cost{g.cost(victim).value() / 2});
  const VcgMechanism mech(after);
  const auto result = pricing::verify_against_centralized(session, mech);
  EXPECT_TRUE(result.ok) << result.first_diff;
}

TEST(PricingDynamics, SequenceOfEventsStaysExact) {
  auto g = test::make_instance({"er", 14, 62, 6});
  Session session(g, Protocol::kPriceVector);
  ASSERT_TRUE(session.run().converged);
  graph::Graph mirror = g;

  // Pick a pair that is definitely not linked yet, so the add/remove pair
  // below is a no-op on the original (biconnected) topology.
  NodeId ua = 0, ub = 0;
  for (NodeId a = 0; a < g.node_count() && ua == ub; ++a)
    for (NodeId b = a + 1; b < g.node_count(); ++b)
      if (!g.has_edge(a, b)) {
        ua = a;
        ub = b;
        break;
      }
  ASSERT_NE(ua, ub);

  // Apply a series of events, verifying after each reconvergence.
  struct Step {
    enum Kind { kCost, kAdd, kRemove } kind;
    NodeId a, b;
    Cost::rep value;
  };
  const std::vector<Step> steps = {
      {Step::kCost, 2, 0, 11},
      {Step::kAdd, ua, ub, 0},
      {Step::kCost, 5, 0, 0},
      {Step::kRemove, ua, ub, 0},
  };
  for (const Step& step : steps) {
    bgp::RunStats stats;
    switch (step.kind) {
      case Step::kCost:
        mirror.set_cost(step.a, Cost{step.value});
        stats = session.change_cost(step.a, Cost{step.value},
                                    RestartPolicy::kRestartBarrier);
        break;
      case Step::kAdd:
        mirror.add_edge(step.a, step.b);
        stats =
            session.add_link(step.a, step.b, RestartPolicy::kRestartBarrier);
        break;
      case Step::kRemove:
        mirror.remove_edge(step.a, step.b);
        stats = session.remove_link(step.a, step.b,
                                    RestartPolicy::kRestartBarrier);
        break;
    }
    ASSERT_TRUE(stats.converged);
    ASSERT_TRUE(graph::is_biconnected(mirror));
    const VcgMechanism mech(mirror);
    const auto result = pricing::verify_against_centralized(session, mech);
    ASSERT_TRUE(result.ok) << result.first_diff;
  }
}

// --- asynchronous execution ---------------------------------------------------

struct AsyncCase {
  test::InstanceSpec spec;
  Protocol protocol;
  double mrai;
};

class AsyncPricing : public ::testing::TestWithParam<AsyncCase> {};

TEST_P(AsyncPricing, ExactWithoutSynchrony) {
  const auto g = test::make_instance(GetParam().spec);
  bgp::ChannelConfig channel;
  channel.seed = GetParam().spec.seed * 31 + 7;
  channel.mrai = GetParam().mrai;
  Session session(g, GetParam().protocol, bgp::EngineConfig::event(channel));
  const auto stats = session.run();
  ASSERT_TRUE(stats.converged);
  const VcgMechanism mech(g);
  const auto result = pricing::verify_against_centralized(session, mech);
  EXPECT_TRUE(result.ok) << result.first_diff;
}

INSTANTIATE_TEST_SUITE_P(
    Mixed, AsyncPricing,
    ::testing::Values(
        AsyncCase{{"er", 16, 201, 8}, Protocol::kPriceVector, 0.0},
        AsyncCase{{"er", 16, 202, 8}, Protocol::kAvoidanceVector, 0.0},
        AsyncCase{{"ba", 20, 203, 5}, Protocol::kPriceVector, 0.0},
        AsyncCase{{"ba", 20, 204, 5}, Protocol::kAvoidanceVector, 2.0},
        AsyncCase{{"tiered", 24, 205, 6}, Protocol::kPriceVector, 2.0},
        AsyncCase{{"ring", 9, 206, 4}, Protocol::kPriceVector, 0.0},
        AsyncCase{{"wheel", 11, 207, 6}, Protocol::kAvoidanceVector, 0.0},
        AsyncCase{{"grid", 16, 208, 5}, Protocol::kPriceVector, 1.0}));

TEST(AsyncPricingDynamics, EventThenBarrierExact) {
  const auto g = test::make_instance({"er", 14, 209, 6});
  bgp::ChannelConfig channel;
  channel.seed = 11;
  Session session(g, Protocol::kPriceVector, bgp::EngineConfig::event(channel));
  ASSERT_TRUE(session.run().converged);
  const auto stats =
      session.change_cost(1, Cost{13}, RestartPolicy::kRestartBarrier);
  ASSERT_TRUE(stats.converged);
  graph::Graph after = g;
  after.set_cost(1, Cost{13});
  const VcgMechanism mech(after);
  const auto result = pricing::verify_against_centralized(session, mech);
  EXPECT_TRUE(result.ok) << result.first_diff;
}

// --- parallel stage engine ----------------------------------------------------

TEST(ParallelEngine, BitIdenticalToSerial) {
  const auto g = test::make_instance({"tiered", 48, 210, 8});
  // Serial reference.
  Session serial(g, Protocol::kPriceVector);
  const auto serial_stats = serial.run();
  // Parallel: same agents, 4 worker threads.
  bgp::Network net(g, pricing::make_agent_factory(
                          Protocol::kPriceVector,
                          bgp::UpdatePolicy::kIncremental));
  bgp::Engine engine(net, /*threads=*/4);
  const auto parallel_stats = engine.run();

  EXPECT_EQ(parallel_stats.stages, serial_stats.stages);
  EXPECT_EQ(parallel_stats.messages, serial_stats.messages);
  EXPECT_EQ(parallel_stats.traffic.total_words(),
            serial_stats.traffic.total_words());
  for (NodeId i = 0; i < g.node_count(); ++i) {
    const auto& agent = static_cast<const pricing::PricingAgent&>(net.agent(i));
    for (NodeId j = 0; j < g.node_count(); ++j) {
      if (i == j) continue;
      ASSERT_EQ(agent.selected(j).path, serial.route(i, j).path);
      for (std::size_t t = 1; t + 1 < agent.selected(j).path.size(); ++t) {
        const NodeId k = agent.selected(j).path[t];
        EXPECT_EQ(agent.price(j, k), serial.price(k, i, j));
      }
    }
  }
}

TEST(ParallelEngine, ExactAgainstCentralized) {
  const auto g = test::make_instance({"er", 40, 211, 9});
  bgp::Network net(g, pricing::make_agent_factory(
                          Protocol::kPriceVector,
                          bgp::UpdatePolicy::kIncremental));
  bgp::Engine engine(net, /*threads=*/8);
  ASSERT_TRUE(engine.run().converged);
  const VcgMechanism mech(g);
  for (NodeId i = 0; i < g.node_count(); ++i) {
    const auto& agent = static_cast<const pricing::PricingAgent&>(net.agent(i));
    for (NodeId j = 0; j < g.node_count(); ++j) {
      if (i == j) continue;
      const auto path = mech.routes().path(i, j);
      ASSERT_EQ(agent.selected(j).path, path);
      for (std::size_t t = 1; t + 1 < path.size(); ++t)
        ASSERT_EQ(agent.price(j, path[t]), mech.price(path[t], i, j));
    }
  }
}

// --- value row unit behaviour ------------------------------------------------

TEST(ValueRow, RekeyAndLower) {
  pricing::ValueRow row;
  bgp::SelectedRoute route;
  route.path = {0, 1, 2, 3};
  route.cost = Cost{5};
  route.node_costs = {Cost{1}, Cost{2}, Cost{3}, Cost{4}};
  EXPECT_TRUE(row.rekey(route, false));
  EXPECT_EQ(row.size(), 2u);  // transit nodes 1 and 2
  EXPECT_TRUE(row.contains(1));
  EXPECT_TRUE(row.contains(2));
  EXPECT_FALSE(row.contains(0));
  EXPECT_TRUE(row.get(1).is_infinite());
  EXPECT_FALSE(row.complete());
  EXPECT_TRUE(row.lower(1, Cost{7}));
  EXPECT_FALSE(row.lower(1, Cost{9}));  // not lower
  EXPECT_TRUE(row.lower(1, Cost{6}));
  EXPECT_EQ(row.get(1), Cost{6});
  EXPECT_FALSE(row.lower(5, Cost{1}));  // absent key ignored
}

TEST(ValueRow, PreserveKeepsSurvivors) {
  pricing::ValueRow row;
  bgp::SelectedRoute route;
  route.path = {0, 1, 2, 3};
  route.node_costs = {Cost{0}, Cost{0}, Cost{0}, Cost{0}};
  row.rekey(route, false);
  row.lower(1, Cost{4});
  row.lower(2, Cost{5});
  bgp::SelectedRoute reroute;
  reroute.path = {0, 2, 4, 3};
  reroute.node_costs = {Cost{0}, Cost{0}, Cost{0}, Cost{0}};
  EXPECT_TRUE(row.rekey(reroute, true));
  EXPECT_EQ(row.get(2), Cost{5});             // survivor keeps its value
  EXPECT_TRUE(row.get(4).is_infinite());      // newcomer starts unknown
  EXPECT_FALSE(row.contains(1));              // dropped
}

TEST(ValueRow, ResetClearsValues) {
  pricing::ValueRow row;
  bgp::SelectedRoute route;
  route.path = {0, 1, 2};
  route.node_costs = {Cost{0}, Cost{0}, Cost{0}};
  row.rekey(route, false);
  row.lower(1, Cost{3});
  EXPECT_TRUE(row.reset());
  EXPECT_TRUE(row.get(1).is_infinite());
  EXPECT_FALSE(row.reset());  // already infinite
}

}  // namespace
}  // namespace fpss
