#include <gtest/gtest.h>

#include "common.h"
#include "multicast/mc_mechanism.h"
#include "routing/dijkstra.h"

namespace fpss {
namespace {

using multicast::marginal_cost_mechanism;
using multicast::McOutcome;
using multicast::MulticastTree;
using multicast::User;

TEST(MulticastTreeTest, BuildAndQuery) {
  MulticastTree tree;
  EXPECT_EQ(tree.node_count(), 1u);
  const NodeId a = tree.add_node(0, 10);
  const NodeId b = tree.add_node(a, 5);
  EXPECT_EQ(tree.parent(b), a);
  EXPECT_EQ(tree.link_cost(b), 5);
  EXPECT_EQ(tree.children(0), (std::vector<NodeId>{a}));
}

TEST(MulticastTreeTest, RandomHasValidParents) {
  util::Rng rng(1);
  const auto tree = MulticastTree::random(50, 9, rng);
  EXPECT_EQ(tree.node_count(), 50u);
  for (NodeId v = 1; v < 50; ++v) {
    EXPECT_LT(tree.parent(v), v);  // parents precede children
    EXPECT_GE(tree.link_cost(v), 1);
  }
}

TEST(MulticastTreeTest, FromSinkTreeUsesForwarderCosts) {
  const auto f = graphgen::fig1();
  const auto tz = routing::compute_sink_tree(f.g, f.z);
  const auto tree = MulticastTree::from_sink_tree(tz, f.g);
  EXPECT_EQ(tree.node_count(), 6u);
  // Every non-root uplink is priced at some AS's declared cost.
  for (NodeId v = 1; v < tree.node_count(); ++v)
    EXPECT_GE(tree.link_cost(v), 0);
}

TEST(MarginalCost, HandWorkedChain) {
  // root -(10)- a -(5)- b; users: 12 at a, 8 at b.
  MulticastTree tree;
  const NodeId a = tree.add_node(0, 10);
  const NodeId b = tree.add_node(a, 5);
  const std::vector<User> users = {{a, 12}, {b, 8}};
  const McOutcome mc = marginal_cost_mechanism(tree, users);
  EXPECT_TRUE(mc.node_included[a]);
  EXPECT_TRUE(mc.node_included[b]);
  EXPECT_EQ(mc.welfare, 5);
  EXPECT_EQ(mc.user_payment[0], 7);  // 12 - min surplus 5
  EXPECT_EQ(mc.user_payment[1], 5);  // 8 - min surplus 3
}

TEST(MarginalCost, PrunesUnprofitableSubtree) {
  MulticastTree tree;
  const NodeId a = tree.add_node(0, 10);
  const NodeId b = tree.add_node(0, 2);
  const std::vector<User> users = {{a, 3}, {b, 6}};
  const McOutcome mc = marginal_cost_mechanism(tree, users);
  EXPECT_FALSE(mc.node_included[a]);  // 3 < 10
  EXPECT_TRUE(mc.node_included[b]);
  EXPECT_FALSE(mc.user_receives[0]);
  EXPECT_EQ(mc.user_payment[0], 0);  // excluded users pay nothing
  EXPECT_EQ(mc.welfare, 4);
}

TEST(MarginalCost, RootUsersRideFree) {
  MulticastTree tree;
  const std::vector<User> users = {{0, 100}};
  const McOutcome mc = marginal_cost_mechanism(tree, users);
  EXPECT_TRUE(mc.user_receives[0]);
  EXPECT_EQ(mc.user_payment[0], 0);  // no links needed, no marginal cost
}

TEST(MarginalCost, TwoPassMessageComplexity) {
  util::Rng rng(2);
  const auto tree = MulticastTree::random(30, 7, rng);
  const McOutcome mc = marginal_cost_mechanism(tree, {});
  // Exactly two messages per link (29 up + 29 down), O(1) words each —
  // the network-complexity standard of [FPS00].
  EXPECT_EQ(mc.messages, 2u * 29u);
  EXPECT_EQ(mc.words, 4u * 29u);
}

TEST(MarginalCost, MatchesBruteForceVcg) {
  util::Rng rng(3);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 2 + rng.below(10);
    const auto tree = MulticastTree::random(n, 8, rng);
    std::vector<User> users;
    const std::size_t user_count = 1 + rng.below(6);
    for (std::size_t i = 0; i < user_count; ++i) {
      users.push_back({static_cast<NodeId>(rng.below(n)),
                       static_cast<Cost::rep>(rng.below(20))});
    }
    const McOutcome fast = marginal_cost_mechanism(tree, users);
    const McOutcome slow = multicast::brute_force_vcg(tree, users);
    ASSERT_EQ(fast.welfare, slow.welfare) << "trial " << trial;
    ASSERT_EQ(fast.node_included, slow.node_included) << "trial " << trial;
    for (std::size_t i = 0; i < users.size(); ++i) {
      EXPECT_EQ(fast.user_receives[i], slow.user_receives[i]);
      EXPECT_EQ(fast.user_payment[i], slow.user_payment[i])
          << "trial " << trial << " user " << i;
    }
  }
}

TEST(MarginalCost, StrategyproofUnderValuationLies) {
  util::Rng rng(4);
  for (int trial = 0; trial < 15; ++trial) {
    const auto tree = MulticastTree::random(8, 6, rng);
    std::vector<User> users;
    for (std::size_t i = 0; i < 4; ++i)
      users.push_back({static_cast<NodeId>(rng.below(8)),
                       static_cast<Cost::rep>(rng.below(15))});

    for (std::size_t liar = 0; liar < users.size(); ++liar) {
      const Cost::rep truth = users[liar].valuation;
      // Truthful quasi-linear utility: value received minus payment.
      const McOutcome honest = marginal_cost_mechanism(tree, users);
      const Cost::rep honest_utility =
          (honest.user_receives[liar] ? truth : 0) -
          honest.user_payment[liar];
      for (Cost::rep lie : {Cost::rep{0}, truth / 2, truth + 1, truth + 10,
                            5 * truth + 3}) {
        std::vector<User> declared = users;
        declared[liar].valuation = lie;
        const McOutcome outcome = marginal_cost_mechanism(tree, declared);
        const Cost::rep lying_utility =
            (outcome.user_receives[liar] ? truth : 0) -
            outcome.user_payment[liar];
        EXPECT_LE(lying_utility, honest_utility)
            << "trial " << trial << " user " << liar << " lie " << lie;
      }
    }
  }
}

TEST(MarginalCost, PaymentsNeverExceedValuations) {
  util::Rng rng(5);
  const auto tree = MulticastTree::random(40, 10, rng);
  std::vector<User> users;
  for (std::size_t i = 0; i < 25; ++i)
    users.push_back({static_cast<NodeId>(rng.below(40)),
                     static_cast<Cost::rep>(rng.below(30))});
  const McOutcome mc = marginal_cost_mechanism(tree, users);
  for (std::size_t i = 0; i < users.size(); ++i) {
    EXPECT_GE(mc.user_payment[i], 0);
    EXPECT_LE(mc.user_payment[i], users[i].valuation);  // voluntary
  }
}

TEST(MarginalCost, BudgetNeverOverRecovers) {
  // The MC mechanism is known to run a budget *deficit* in general: total
  // payments never exceed the link cost of the chosen tree.
  util::Rng rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    const auto tree = MulticastTree::random(12, 8, rng);
    std::vector<User> users;
    for (std::size_t i = 0; i < 8; ++i)
      users.push_back({static_cast<NodeId>(rng.below(12)),
                       static_cast<Cost::rep>(rng.below(20))});
    const McOutcome mc = marginal_cost_mechanism(tree, users);
    Cost::rep payments = 0;
    for (Cost::rep p : mc.user_payment) payments += p;
    Cost::rep tree_cost = 0;
    for (NodeId v = 1; v < tree.node_count(); ++v)
      if (mc.node_included[v]) tree_cost += tree.link_cost(v);
    EXPECT_LE(payments, tree_cost) << "trial " << trial;
  }
}

}  // namespace
}  // namespace fpss
