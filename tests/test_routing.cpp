#include <gtest/gtest.h>

#include "common.h"
#include "graph/path.h"
#include "routing/all_pairs.h"
#include "routing/dijkstra.h"
#include "routing/metrics.h"
#include "routing/replacement.h"

namespace fpss {
namespace {

using graph::Path;
using routing::AllPairsRoutes;
using routing::AvoidanceTable;
using routing::SinkTree;

TEST(Dijkstra, Fig1TreeTZMatchesFig2) {
  const auto f = graphgen::fig1();
  const SinkTree tz = routing::compute_sink_tree(f.g, f.z);
  // Fig. 2: A->Z, D->Z, B->D, Y->D, X->B.
  EXPECT_EQ(tz.parent(f.a), f.z);
  EXPECT_EQ(tz.parent(f.d), f.z);
  EXPECT_EQ(tz.parent(f.b), f.d);
  EXPECT_EQ(tz.parent(f.y), f.d);
  EXPECT_EQ(tz.parent(f.x), f.b);
}

TEST(Dijkstra, Fig1CostsToZ) {
  const auto f = graphgen::fig1();
  const SinkTree tz = routing::compute_sink_tree(f.g, f.z);
  EXPECT_EQ(tz.cost(f.x), Cost{3});  // XBDZ
  EXPECT_EQ(tz.cost(f.y), Cost{1});  // YDZ
  EXPECT_EQ(tz.cost(f.a), Cost{0});  // AZ direct
  EXPECT_EQ(tz.cost(f.b), Cost{1});  // BDZ
  EXPECT_EQ(tz.cost(f.d), Cost{0});  // DZ direct
  EXPECT_EQ(tz.cost(f.z), Cost{0});
}

TEST(Dijkstra, Fig1PathsToZ) {
  const auto f = graphgen::fig1();
  const SinkTree tz = routing::compute_sink_tree(f.g, f.z);
  EXPECT_EQ(tz.path_from(f.x), (Path{f.x, f.b, f.d, f.z}));
  EXPECT_EQ(tz.path_from(f.y), (Path{f.y, f.d, f.z}));
  EXPECT_EQ(tz.path_from(f.z), (Path{f.z}));
}

TEST(Dijkstra, AvoidingTreeFig1) {
  const auto f = graphgen::fig1();
  // Lowest-cost D-avoiding path X->Z is XAZ with transit cost 5.
  const SinkTree avoid_d = routing::compute_sink_tree_avoiding(f.g, f.z, f.d);
  EXPECT_EQ(avoid_d.cost(f.x), Cost{5});
  EXPECT_EQ(avoid_d.path_from(f.x), (Path{f.x, f.a, f.z}));
  // Y's D-avoiding path is YBXAZ with cost 9.
  EXPECT_EQ(avoid_d.cost(f.y), Cost{9});
  EXPECT_EQ(avoid_d.path_from(f.y), (Path{f.y, f.b, f.x, f.a, f.z}));
  // D itself is excluded.
  EXPECT_FALSE(avoid_d.reachable(f.d));
}

TEST(Dijkstra, UnreachableOnDisconnected) {
  graph::Graph g{4};
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const SinkTree t0 = routing::compute_sink_tree(g, 0);
  EXPECT_TRUE(t0.reachable(1));
  EXPECT_FALSE(t0.reachable(2));
  EXPECT_FALSE(t0.reachable(3));
}

TEST(Dijkstra, TieBreakPrefersFewerHops) {
  // 0-1-3 and 0-2-3 both cost 1... make 0-3 direct with detour of cost 0:
  // path 0-1-2-3 with zero-cost transits vs direct 0-3: same cost 0,
  // direct has fewer hops.
  graph::Graph g{4};
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(0, 3);
  const SinkTree t3 = routing::compute_sink_tree(g, 3);
  EXPECT_EQ(t3.path_from(0), (Path{0, 3}));
}

TEST(Dijkstra, TieBreakPrefersSmallerNextHop) {
  // Diamond: 0-1-3 and 0-2-3 with equal costs and hops; pick next hop 1.
  graph::Graph g{4};
  g.set_cost(1, Cost{5});
  g.set_cost(2, Cost{5});
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  const SinkTree t3 = routing::compute_sink_tree(g, 3);
  EXPECT_EQ(t3.path_from(0), (Path{0, 1, 3}));
}

TEST(SinkTreeStructure, ChildrenInverseOfParent) {
  const auto g = test::make_instance({"ba", 24, 42, 9});
  const SinkTree t = routing::compute_sink_tree(g, 3);
  const auto kids = t.children();
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (NodeId c : kids[v]) EXPECT_EQ(t.parent(c), v);
  }
}

TEST(SinkTreeStructure, SubtreeMembersRouteThroughRoot) {
  const auto g = test::make_instance({"er", 24, 43, 9});
  const SinkTree t = routing::compute_sink_tree(g, 0);
  for (NodeId k = 1; k < g.node_count(); ++k) {
    const auto sub = t.subtree(k);
    for (NodeId i : sub) {
      if (i == k) continue;
      EXPECT_TRUE(t.is_transit(i, k))
          << "node " << i << " in subtree(" << k << ") but k not transit";
    }
  }
}

TEST(SinkTreeStructure, IsTransitNeverEndpoints) {
  const auto f = graphgen::fig1();
  const SinkTree tz = routing::compute_sink_tree(f.g, f.z);
  EXPECT_FALSE(tz.is_transit(f.x, f.x));
  EXPECT_FALSE(tz.is_transit(f.x, f.z));
  EXPECT_TRUE(tz.is_transit(f.x, f.b));
  EXPECT_TRUE(tz.is_transit(f.x, f.d));
}

// The suffix property: the selected path from any intermediate node equals
// the suffix of the selected path from upstream — what makes T(j) a tree.
class SuffixProperty : public ::testing::TestWithParam<test::InstanceSpec> {};

TEST_P(SuffixProperty, SelectedPathsFormTree) {
  const auto g = test::make_instance(GetParam());
  for (NodeId j = 0; j < g.node_count(); ++j) {
    const SinkTree t = routing::compute_sink_tree(g, j);
    for (NodeId i = 0; i < g.node_count(); ++i) {
      if (!t.reachable(i)) continue;
      const Path p = t.path_from(i);
      EXPECT_TRUE(graph::is_simple_path(g, p, i, j));
      EXPECT_EQ(graph::transit_cost(g, p), t.cost(i));
      // Each suffix is the selected path of its head.
      for (std::size_t s = 1; s < p.size(); ++s) {
        const Path expected(p.begin() + static_cast<std::ptrdiff_t>(s),
                            p.end());
        EXPECT_EQ(t.path_from(p[s]), expected);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, SuffixProperty,
                         ::testing::ValuesIn(test::standard_instances()));

// The avoidance engines agree with each other and with first principles.
class AvoidanceEquivalence
    : public ::testing::TestWithParam<test::InstanceSpec> {};

TEST_P(AvoidanceEquivalence, SubtreeEngineMatchesNaive) {
  const auto g = test::make_instance(GetParam());
  for (NodeId j = 0; j < g.node_count(); ++j) {
    const SinkTree tree = routing::compute_sink_tree(g, j);
    const AvoidanceTable fast = AvoidanceTable::compute(g, tree);
    const AvoidanceTable naive = AvoidanceTable::compute_naive(g, tree);
    ASSERT_EQ(fast.entry_count(), naive.entry_count());
    for (const auto& [i, k] : naive.keys()) {
      ASSERT_TRUE(fast.has(i, k));
      EXPECT_EQ(fast.avoiding_cost(i, k), naive.avoiding_cost(i, k))
          << "dest " << j << " i " << i << " k " << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, AvoidanceEquivalence,
                         ::testing::ValuesIn(test::standard_instances()));

TEST(Avoidance, AvoidingCostAtLeastLcp) {
  const auto g = test::make_instance({"ba", 32, 44, 11});
  for (NodeId j = 0; j < g.node_count(); ++j) {
    const SinkTree tree = routing::compute_sink_tree(g, j);
    const AvoidanceTable table = AvoidanceTable::compute(g, tree);
    for (const auto& [i, k] : table.keys()) {
      EXPECT_GE(table.avoiding_cost(i, k), tree.cost(i));
    }
  }
}

TEST(Avoidance, MonopolyReportsInfinite) {
  // Path graph: middle node is a monopoly between the ends.
  auto g = graphgen::path_graph(3);
  const SinkTree tree = routing::compute_sink_tree(g, 2);
  const AvoidanceTable table = AvoidanceTable::compute(g, tree);
  ASSERT_TRUE(table.has(0, 1));
  EXPECT_TRUE(table.avoiding_cost(0, 1).is_infinite());
}

TEST(AllPairs, CompleteOnConnected) {
  const auto g = test::make_instance({"er", 20, 45, 5});
  const AllPairsRoutes routes(g);
  EXPECT_TRUE(routes.complete());
}

TEST(AllPairs, SymmetricCostsOnUndirectedGraph) {
  // Transit costs are symmetric: the same intermediate nodes in reverse.
  const auto g = test::make_instance({"ba", 20, 46, 8});
  const AllPairsRoutes routes(g);
  for (NodeId i = 0; i < g.node_count(); ++i)
    for (NodeId j = i + 1; j < g.node_count(); ++j)
      EXPECT_EQ(routes.cost(i, j), routes.cost(j, i));
}

TEST(AllPairs, LcpDiameterRing) {
  auto g = graphgen::ring_graph(8);
  graphgen::assign_uniform_cost(g, Cost{1});
  const AllPairsRoutes routes(g);
  EXPECT_EQ(routes.lcp_diameter(), 4u);
}

TEST(Metrics, HubAdversarialHasLargeDPrime) {
  const auto g = graphgen::hub_adversarial(12, 10);
  const auto report = routing::lcp_and_avoiding_diameter(g);
  EXPECT_EQ(report.d, 2u);           // everything routes via the hub
  // Hub-avoiding paths walk the rim: up to floor(11/2) = 5 hops.
  EXPECT_EQ(report.d_prime, 5u);
  EXPECT_EQ(report.stage_bound(), report.d_prime);
}

TEST(Metrics, RingDPrimeIsCycleLength) {
  auto g = graphgen::ring_graph(9);
  graphgen::assign_uniform_cost(g, Cost{2});
  const auto report = routing::lcp_and_avoiding_diameter(g);
  EXPECT_EQ(report.d, 4u);
  // For neighbors-of-neighbors (2-hop LCP through k) the only k-avoiding
  // path is the rest of the cycle: 9 - 2 = 7 hops.
  EXPECT_EQ(report.d_prime, 7u);
}

TEST(Metrics, PerNodeBoundsDominateHops) {
  const auto g = test::make_instance({"tiered", 24, 47, 6});
  const auto bounds = routing::per_node_stage_bounds(g);
  const AllPairsRoutes routes(g);
  for (NodeId i = 0; i < g.node_count(); ++i) {
    for (NodeId j = 0; j < g.node_count(); ++j) {
      if (i == j) continue;
      EXPECT_GE(bounds[i], routes.tree(j).hops(i));
    }
  }
}

}  // namespace
}  // namespace fpss
