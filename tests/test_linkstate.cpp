#include <gtest/gtest.h>

#include "common.h"
#include "graph/analysis.h"
#include "linkstate/linkstate.h"
#include "mechanism/vcg.h"

namespace fpss {
namespace {

using linkstate::FloodingNetwork;
using linkstate::Lsa;
using linkstate::LsDatabase;

TEST(LsDatabaseTest, InstallKeepsFreshest) {
  LsDatabase db;
  Lsa lsa;
  lsa.origin = 3;
  lsa.sequence = 2;
  lsa.declared_cost = Cost{5};
  lsa.neighbors = {1, 2};
  EXPECT_TRUE(db.install(lsa));
  EXPECT_FALSE(db.install(lsa));  // same sequence: stale
  lsa.sequence = 1;
  EXPECT_FALSE(db.install(lsa));  // older: stale
  lsa.sequence = 3;
  lsa.declared_cost = Cost{7};
  EXPECT_TRUE(db.install(lsa));
  EXPECT_EQ(db.find(3)->declared_cost, Cost{7});
}

TEST(LsDatabaseTest, ReconstructRequiresTwoWayAdjacency) {
  LsDatabase db;
  Lsa a{0, 1, Cost{1}, {1}};
  Lsa b{1, 1, Cost{2}, {0, 2}};  // claims a link to 2, but 2 is silent
  db.install(a);
  db.install(b);
  const graph::Graph g = db.reconstruct(3);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 2));  // one-sided claim rejected
  EXPECT_EQ(g.cost(1), Cost{2});
}

TEST(Flooding, SynchronizesAllDatabases) {
  for (const char* family : {"er", "ba", "tiered", "ring"}) {
    const auto g = test::make_instance({family, 24, 900, 7});
    FloodingNetwork net(g);
    const auto stats = net.run();
    EXPECT_TRUE(stats.converged);
    EXPECT_TRUE(net.all_synchronized()) << family;
  }
}

TEST(Flooding, ConvergesWithinHopDiameterStages) {
  const auto g = test::make_instance({"er", 32, 901, 5});
  FloodingNetwork net(g);
  const auto stats = net.run();
  // Every LSA travels at most (hop diameter) links, plus the initial
  // self-origination stage.
  EXPECT_LE(stats.stages, graph::hop_diameter(g) + 1);
}

TEST(Flooding, CostChangeRefloods) {
  const auto g = test::make_instance({"ba", 16, 902, 6});
  FloodingNetwork net(g);
  ASSERT_TRUE(net.run().converged);
  net.change_cost(3, Cost{42});
  const auto stats = net.run();
  EXPECT_TRUE(stats.converged);
  EXPECT_GT(stats.messages, 0u);
  EXPECT_TRUE(net.all_synchronized());
  EXPECT_EQ(net.database(0).find(3)->declared_cost, Cost{42});
}

TEST(Flooding, LinkChurnResynchronizes) {
  auto g = test::make_instance({"ring", 10, 903, 4});
  FloodingNetwork net(g);
  ASSERT_TRUE(net.run().converged);
  net.add_link(0, 5);
  ASSERT_TRUE(net.run().converged);
  EXPECT_TRUE(net.all_synchronized());
  net.remove_link(0, 5);
  ASSERT_TRUE(net.run().converged);
  EXPECT_TRUE(net.all_synchronized());
}

TEST(Flooding, LocalComputationYieldsExactVcgPrices) {
  // The link-state counterfactual: once databases are synchronized, any
  // node can run the centralized Theorem 1 computation on its own
  // reconstruction and obtain the exact prices.
  const auto g = test::make_instance({"tiered", 24, 904, 6});
  FloodingNetwork net(g);
  ASSERT_TRUE(net.run().converged);
  const mechanism::VcgMechanism truth(g);
  const graph::Graph view = net.database(7).reconstruct(g.node_count());
  const mechanism::VcgMechanism local(view);
  for (NodeId i = 0; i < g.node_count(); ++i) {
    for (NodeId j = 0; j < g.node_count(); ++j) {
      if (i == j) continue;
      const auto path = truth.routes().path(i, j);
      for (std::size_t t = 1; t + 1 < path.size(); ++t) {
        ASSERT_EQ(local.price(path[t], i, j), truth.price(path[t], i, j));
      }
    }
  }
}

TEST(Flooding, QuiescentWhenNothingChanges) {
  const auto g = test::make_instance({"er", 12, 905, 3});
  FloodingNetwork net(g);
  net.run();
  const auto again = net.run();
  EXPECT_EQ(again.stages, 0u);
  EXPECT_EQ(again.messages, 0u);
}

}  // namespace
}  // namespace fpss
