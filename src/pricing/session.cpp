#include "pricing/session.h"

#include "bgp/rib.h"
#include "util/binio.h"
#include "util/checksum.h"
#include "util/contract.h"
#include "util/thread_pool.h"

namespace fpss::pricing {

bgp::AgentFactory make_agent_factory(Protocol protocol,
                                     bgp::UpdatePolicy policy) {
  return [protocol, policy](NodeId self, std::size_t node_count,
                            Cost declared_cost) -> std::unique_ptr<bgp::Agent> {
    if (protocol == Protocol::kPriceVector) {
      return std::make_unique<PriceVectorAgent>(self, node_count,
                                                declared_cost, policy);
    }
    return std::make_unique<AvoidanceVectorAgent>(self, node_count,
                                                  declared_cost, policy);
  };
}

Session::Session(const graph::Graph& g, Protocol protocol,
                 bgp::UpdatePolicy policy, unsigned threads)
    : Session(g, protocol, bgp::EngineConfig::stage(threads), policy) {}

Session::Session(const graph::Graph& g, Protocol protocol,
                 const bgp::EngineConfig& config, bgp::UpdatePolicy policy)
    : network_(std::make_unique<bgp::Network>(
          g, make_agent_factory(protocol, policy))),
      engine_(std::make_unique<bgp::Engine>(*network_, config)),
      protocol_(protocol) {}

Session::Session(const graph::Graph& g, const bgp::AgentFactory& factory,
                 unsigned threads)
    : Session(g, factory, bgp::EngineConfig::stage(threads)) {}

Session::Session(const graph::Graph& g, const bgp::AgentFactory& factory,
                 const bgp::EngineConfig& config)
    : network_(std::make_unique<bgp::Network>(g, factory)),
      engine_(std::make_unique<bgp::Engine>(*network_, config)) {}

bgp::RunStats Session::run() {
  const bgp::RunStats stats = engine_->run();
  note_converged();
  return stats;
}

const PricingAgent& Session::agent(NodeId v) const {
  return static_cast<const PricingAgent&>(network_->agent(v));
}

PricingAgent& Session::agent(NodeId v) {
  return static_cast<PricingAgent&>(network_->agent(v));
}

bool Session::complete() const {
  for (NodeId v = 0; v < network_->node_count(); ++v)
    if (!agent(v).prices_complete()) return false;
  return true;
}

bgp::RunStats Session::reconverge(RestartPolicy policy) {
  // Price-vector estimates are deltas against the pre-event route state;
  // only the route-independent avoidance values may skip the restart.
  FPSS_EXPECTS(policy == RestartPolicy::kRestartBarrier ||
               protocol_ != Protocol::kPriceVector);
  // Drive the engine directly (not Session::run): dirty tracking must
  // fingerprint only the *final* converged state of the whole
  // reconvergence. Between the two barrier runs every price is back at
  // +infinity — fingerprinting there would mark every sink tree dirty.
  bgp::RunStats stats = engine_->run();  // routes (and prices) reconverge
  if (policy == RestartPolicy::kRestartBarrier) {
    // Paper semantics: price computation starts over on the settled routes.
    for (NodeId v = 0; v < network_->node_count(); ++v)
      agent(v).restart_values();
    const bgp::RunStats wave = engine_->run();
    stats.stages += wave.stages;
    stats.messages += wave.messages;
    stats.traffic += wave.traffic;
    stats.lost_messages += wave.lost_messages;
    stats.last_route_change_stage = wave.last_route_change_stage;
    stats.last_value_change_stage = wave.last_value_change_stage;
    stats.last_route_change_time = wave.last_route_change_time;
    stats.last_value_change_time = wave.last_value_change_time;
    stats.end_time = wave.end_time;
    stats.converged = wave.converged;
  }
  note_converged();
  return stats;
}

void Session::track_dirty_destinations(bool enable) {
  track_dirty_ = enable;
  fps_.clear();
  records_.clear();
  // Baseline off the current converged state (if there is one) so the next
  // event burst diffs against it instead of reporting everything dirty.
  if (enable && engine_->stats().converged) note_converged();
}

std::uint64_t Session::sink_fingerprint(NodeId j) const {
  util::Fnv1a64 fnv;
  const std::size_t n = network_->node_count();
  for (NodeId i = 0; i < n; ++i) {
    if (i == j) continue;
    const PricingAgent& a = agent(i);
    const bgp::SelectedRoute& route = a.selected(j);
    if (!route.valid()) {
      fnv.u32(kInvalidNode);
      continue;
    }
    fnv.u64(route.path.size());
    for (NodeId v : route.path) fnv.u32(v);
    fnv.i64(util::encode_cost(route.cost));
    for (std::size_t h = 1; h + 1 < route.path.size(); ++h)
      fnv.i64(util::encode_cost(a.price(j, route.path[h])));
  }
  return fnv.digest();
}

void Session::note_converged() {
  if (!track_dirty_) return;
  if (!engine_->stats().converged) {
    // The run hit a cap: the state is mid-flight and converged_epochs did
    // not advance, so the fingerprints no longer describe what they claim.
    // Drop them — the next converged run re-baselines (everything dirty).
    fps_.clear();
    records_.clear();
    return;
  }
  const std::size_t n = network_->node_count();
  const std::uint64_t epoch = engine_->converged_epochs();
  std::vector<std::uint64_t> fresh(n);
  const auto fingerprint = [&](std::size_t j) {
    fresh[j] = sink_fingerprint(static_cast<NodeId>(j));
  };
  util::ThreadPool* pool = engine_->pool();
  if (pool != nullptr && n > 1) {
    pool->parallel_for(n, fingerprint);
  } else {
    for (std::size_t j = 0; j < n; ++j) fingerprint(j);
  }

  DirtyRecord record;
  record.to_epoch = epoch;
  if (fps_.size() == n) {
    record.from_epoch = fp_epoch_;
    for (NodeId j = 0; j < n; ++j)
      if (fresh[j] != fps_[j]) record.destinations.push_back(j);
  } else {
    // First converged state since tracking (re)started: no baseline to
    // diff against. from_epoch 0 + everything dirty is a valid superset
    // for any earlier epoch a caller might ask about.
    record.from_epoch = 0;
    record.destinations.resize(n);
    for (NodeId j = 0; j < n; ++j) record.destinations[j] = j;
  }
  records_.push_back(std::move(record));
  if (records_.size() > kDirtyWindow)
    records_.erase(records_.begin(),
                   records_.end() - static_cast<std::ptrdiff_t>(kDirtyWindow));
  fps_ = std::move(fresh);
  fp_epoch_ = epoch;
}

std::optional<std::vector<NodeId>> Session::dirty_destinations(
    std::uint64_t since_epoch) const {
  if (!track_dirty_) return std::nullopt;
  const std::size_t n = network_->node_count();
  if (fps_.size() != n) return std::nullopt;  // no converged baseline
  // Someone drove engine().run() directly since the last fingerprinting:
  // the fingerprints lag the state and a diff would under-report.
  if (fp_epoch_ != engine_->converged_epochs()) return std::nullopt;
  if (since_epoch > fp_epoch_) return std::nullopt;  // future epoch
  std::vector<bool> dirty(n, false);
  std::uint64_t covered = fp_epoch_;
  for (auto it = records_.rbegin();
       it != records_.rend() && covered > since_epoch; ++it) {
    if (it->to_epoch != covered) return std::nullopt;  // broken chain
    for (NodeId j : it->destinations) dirty[j] = true;
    covered = it->from_epoch;
  }
  if (covered > since_epoch) return std::nullopt;  // window trimmed
  std::vector<NodeId> out;
  for (NodeId j = 0; j < n; ++j)
    if (dirty[j]) out.push_back(j);
  return out;
}

bgp::RunStats Session::change_cost(NodeId v, Cost new_cost,
                                   RestartPolicy policy) {
  network_->change_cost(v, new_cost);
  return reconverge(policy);
}

bgp::RunStats Session::add_link(NodeId u, NodeId v, RestartPolicy policy) {
  network_->add_link(u, v);
  return reconverge(policy);
}

bgp::RunStats Session::remove_link(NodeId u, NodeId v, RestartPolicy policy) {
  network_->remove_link(u, v);
  return reconverge(policy);
}

bgp::RunStats Session::apply_events(std::span<const Event> events,
                                    RestartPolicy policy) {
  for (const Event& event : events) {
    switch (event.kind) {
      case Event::Kind::kCostChange:
        network_->change_cost(event.u, event.cost);
        break;
      case Event::Kind::kAddLink:
        network_->add_link(event.u, event.v);
        break;
      case Event::Kind::kRemoveLink:
        network_->remove_link(event.u, event.v);
        break;
    }
  }
  return reconverge(policy);
}

Session::NodeFailure Session::fail_node(NodeId v, RestartPolicy policy) {
  NodeFailure failure;
  const auto neighbors = network_->topology().neighbors(v);
  failure.links.reserve(neighbors.size());
  for (NodeId u : std::vector<NodeId>(neighbors.begin(), neighbors.end())) {
    network_->remove_link(v, u);
    failure.links.emplace_back(v, u);
  }
  failure.stats = reconverge(policy);
  return failure;
}

bgp::RunStats Session::restore_node(
    const std::vector<std::pair<NodeId, NodeId>>& links,
    RestartPolicy policy) {
  for (const auto& [u, v] : links) network_->add_link(u, v);
  return reconverge(policy);
}

}  // namespace fpss::pricing
