#include "pricing/session.h"

#include "util/contract.h"

namespace fpss::pricing {

bgp::AgentFactory make_agent_factory(Protocol protocol,
                                     bgp::UpdatePolicy policy) {
  return [protocol, policy](NodeId self, std::size_t node_count,
                            Cost declared_cost) -> std::unique_ptr<bgp::Agent> {
    if (protocol == Protocol::kPriceVector) {
      return std::make_unique<PriceVectorAgent>(self, node_count,
                                                declared_cost, policy);
    }
    return std::make_unique<AvoidanceVectorAgent>(self, node_count,
                                                  declared_cost, policy);
  };
}

Session::Session(const graph::Graph& g, Protocol protocol,
                 bgp::UpdatePolicy policy, unsigned threads)
    : Session(g, protocol, bgp::EngineConfig::stage(threads), policy) {}

Session::Session(const graph::Graph& g, Protocol protocol,
                 const bgp::EngineConfig& config, bgp::UpdatePolicy policy)
    : network_(std::make_unique<bgp::Network>(
          g, make_agent_factory(protocol, policy))),
      engine_(std::make_unique<bgp::Engine>(*network_, config)),
      protocol_(protocol) {}

Session::Session(const graph::Graph& g, const bgp::AgentFactory& factory,
                 unsigned threads)
    : Session(g, factory, bgp::EngineConfig::stage(threads)) {}

Session::Session(const graph::Graph& g, const bgp::AgentFactory& factory,
                 const bgp::EngineConfig& config)
    : network_(std::make_unique<bgp::Network>(g, factory)),
      engine_(std::make_unique<bgp::Engine>(*network_, config)) {}

bgp::RunStats Session::run() { return engine_->run(); }

const PricingAgent& Session::agent(NodeId v) const {
  return static_cast<const PricingAgent&>(network_->agent(v));
}

PricingAgent& Session::agent(NodeId v) {
  return static_cast<PricingAgent&>(network_->agent(v));
}

bool Session::complete() const {
  for (NodeId v = 0; v < network_->node_count(); ++v)
    if (!agent(v).prices_complete()) return false;
  return true;
}

bgp::RunStats Session::reconverge(RestartPolicy policy) {
  // Price-vector estimates are deltas against the pre-event route state;
  // only the route-independent avoidance values may skip the restart.
  FPSS_EXPECTS(policy == RestartPolicy::kRestartBarrier ||
               protocol_ != Protocol::kPriceVector);
  bgp::RunStats stats = run();  // routes (and prices) reconverge
  if (policy == RestartPolicy::kRestartBarrier) {
    // Paper semantics: price computation starts over on the settled routes.
    for (NodeId v = 0; v < network_->node_count(); ++v)
      agent(v).restart_values();
    const bgp::RunStats wave = run();
    stats.stages += wave.stages;
    stats.messages += wave.messages;
    stats.traffic += wave.traffic;
    stats.lost_messages += wave.lost_messages;
    stats.last_route_change_stage = wave.last_route_change_stage;
    stats.last_value_change_stage = wave.last_value_change_stage;
    stats.last_route_change_time = wave.last_route_change_time;
    stats.last_value_change_time = wave.last_value_change_time;
    stats.end_time = wave.end_time;
    stats.converged = wave.converged;
  }
  return stats;
}

bgp::RunStats Session::change_cost(NodeId v, Cost new_cost,
                                   RestartPolicy policy) {
  network_->change_cost(v, new_cost);
  return reconverge(policy);
}

bgp::RunStats Session::add_link(NodeId u, NodeId v, RestartPolicy policy) {
  network_->add_link(u, v);
  return reconverge(policy);
}

bgp::RunStats Session::remove_link(NodeId u, NodeId v, RestartPolicy policy) {
  network_->remove_link(u, v);
  return reconverge(policy);
}

bgp::RunStats Session::apply_events(std::span<const Event> events,
                                    RestartPolicy policy) {
  for (const Event& event : events) {
    switch (event.kind) {
      case Event::Kind::kCostChange:
        network_->change_cost(event.u, event.cost);
        break;
      case Event::Kind::kAddLink:
        network_->add_link(event.u, event.v);
        break;
      case Event::Kind::kRemoveLink:
        network_->remove_link(event.u, event.v);
        break;
    }
  }
  return reconverge(policy);
}

Session::NodeFailure Session::fail_node(NodeId v, RestartPolicy policy) {
  NodeFailure failure;
  const auto neighbors = network_->topology().neighbors(v);
  failure.links.reserve(neighbors.size());
  for (NodeId u : std::vector<NodeId>(neighbors.begin(), neighbors.end())) {
    network_->remove_link(v, u);
    failure.links.emplace_back(v, u);
  }
  failure.stats = reconverge(policy);
  return failure;
}

bgp::RunStats Session::restore_node(
    const std::vector<std::pair<NodeId, NodeId>>& links,
    RestartPolicy policy) {
  for (const auto& [u, v] : links) network_->add_link(u, v);
  return reconverge(policy);
}

}  // namespace fpss::pricing
