#include "pricing/verify.h"

#include <sstream>

#include "graph/path.h"

namespace fpss::pricing {

VerifyResult verify_against_centralized(const Session& session,
                                        const mechanism::VcgMechanism& mech) {
  VerifyResult result;
  const std::size_t n = mech.routes().node_count();
  auto note = [&result](const std::string& diff) {
    if (result.first_diff.empty()) result.first_diff = diff;
  };

  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) {
      if (i == j) continue;
      ++result.pairs_checked;
      const bgp::SelectedRoute& distributed = session.route(i, j);
      const graph::Path expected = mech.routes().path(i, j);
      if (!distributed.valid() || distributed.path != expected ||
          distributed.cost != mech.routes().cost(i, j)) {
        ++result.route_mismatches;
        std::ostringstream os;
        os << "route " << i << "->" << j << ": distributed "
           << (distributed.valid() ? graph::path_to_string(distributed.path)
                                   : std::string("<none>"))
           << " vs centralized " << graph::path_to_string(expected);
        note(os.str());
        continue;
      }
      for (std::size_t t = 1; t + 1 < expected.size(); ++t) {
        const NodeId k = expected[t];
        ++result.price_entries_checked;
        const Cost got = session.price(k, i, j);
        const Cost want = mech.price(k, i, j);
        if (got != want) {
          ++result.price_mismatches;
          std::ostringstream os;
          os << "price p^" << k << "_(" << i << "," << j << "): distributed "
             << got.to_string() << " vs centralized " << want.to_string();
          note(os.str());
        }
      }
    }
  }
  result.ok = result.route_mismatches == 0 && result.price_mismatches == 0;
  return result;
}

}  // namespace fpss::pricing
