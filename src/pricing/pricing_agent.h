// Common base of the two distributed price-computation agents:
//  * PriceVectorAgent  — the paper's algorithm (Fig. 3): nodes exchange
//    price arrays p^k_ij and apply the four case rules.
//  * AvoidanceVectorAgent — an algebraically equivalent reformulation that
//    exchanges k-avoiding path costs B^k_ij = Cost(P_k(c;i,j)) instead
//    (p^k_ij = c_k + B^k_ij - c(i,j)); see DESIGN.md, experiment E9.
//
// Both run on the unmodified BGP substrate: the extension only adds state
// to nodes and fields to the existing routing messages.
#pragma once

#include <set>
#include <vector>

#include "bgp/plain_agent.h"
#include "pricing/value_row.h"

namespace fpss::pricing {

class PricingAgent : public bgp::PlainBgpAgent {
 public:
  PricingAgent(NodeId self, std::size_t node_count, Cost declared_cost,
               bgp::UpdatePolicy policy);

  /// The node's current estimate of the per-packet price p^k_{self,j} owed
  /// to transit node k for packets it originates toward j. Infinite while
  /// still unknown; zero when k is not on the selected path.
  virtual Cost price(NodeId destination, NodeId transit) const = 0;

  /// True iff every price on every selected path is known (finite).
  bool prices_complete() const;

  /// Restarts the value computation from scratch (all entries +infinity)
  /// while keeping routes — the paper's "price computation must start over"
  /// semantics, applied network-wide after a dynamic event.
  void restart_values();

  // --- per-node convergence introspection (Lemma 2 / E6) -----------------
  Stage activations() const { return activations_; }
  Stage last_route_change_activation() const { return last_route_change_; }
  Stage last_value_change_activation() const { return last_value_change_; }

 protected:
  /// Case analysis of Fig. 3 / the B-space rule: subclasses apply the
  /// stored advert of neighbor `a` to the value row of `destination`.
  /// Returns true if any entry decreased.
  virtual bool apply_neighbor(NodeId destination, NodeId a) = 0;

  /// Whether surviving path entries keep their values across a route
  /// change (avoidance-vector) or restart at +infinity (price-vector).
  virtual bool preserve_values_on_route_change() const = 0;

  // PlainBgpAgent extension hooks.
  std::vector<NodeId> update_extension(
      const std::vector<NodeId>& changed) override;
  void decorate(bgp::RouteAdvert& advert) override;
  std::size_t extension_words() const override;
  void note_refreshed(NodeId sender,
                      const std::vector<NodeId>& destinations) override;
  void note_sender_cost_change(NodeId sender) override;

  ValueRow& row(NodeId destination);
  const ValueRow& row(NodeId destination) const;

 private:
  std::vector<ValueRow> rows_;
  /// (neighbor, destination) adverts refreshed since the last compute.
  std::set<std::pair<NodeId, NodeId>> fresh_;
  /// Destinations needing re-derivation from every stored advert.
  std::set<NodeId> recompute_all_;
  Stage activations_ = 0;
  Stage last_route_change_ = 0;
  Stage last_value_change_ = 0;
};

/// The paper's price-vector algorithm (Fig. 3).
class PriceVectorAgent : public PricingAgent {
 public:
  using PricingAgent::PricingAgent;

  Cost price(NodeId destination, NodeId transit) const override;

 protected:
  bool apply_neighbor(NodeId destination, NodeId a) override;
  bool preserve_values_on_route_change() const override { return false; }
};

/// The avoidance-vector reformulation: rows hold B^k, converted to prices
/// on demand. Values survive route reselection (they are path costs, valid
/// regardless of which route this node currently uses).
class AvoidanceVectorAgent : public PricingAgent {
 public:
  using PricingAgent::PricingAgent;

  Cost price(NodeId destination, NodeId transit) const override;

 protected:
  bool apply_neighbor(NodeId destination, NodeId a) override;
  bool preserve_values_on_route_change() const override { return true; }
};

}  // namespace fpss::pricing
