// Per-destination value arrays for the pricing extension.
//
// For each destination j a node keeps one value per *transit node of its
// currently selected path* — "the entries of p^{v_r}_{ij}" of Sect. 6.1 —
// initialized to +infinity and driven down by neighbor updates.
#pragma once

#include <utility>
#include <vector>

#include "bgp/rib.h"
#include "util/cost.h"
#include "util/types.h"

namespace fpss::pricing {

/// One (destination-indexed) row of per-transit values. Entries are kept in
/// path order; lookups scan linearly (paths are a handful of hops).
class ValueRow {
 public:
  /// Re-keys the row to the transit nodes of `route`. Entries for nodes
  /// still on the path survive if `preserve` (avoidance-vector variant);
  /// everything else starts at +infinity (Sect. 6.1 initialization).
  /// Returns true if the row contents changed.
  bool rekey(const bgp::SelectedRoute& route, bool preserve);

  /// Resets every entry to +infinity (the "convergence must start over"
  /// restart). Returns true if anything was finite.
  bool reset();

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  /// Value for transit node k; infinity if absent or unknown.
  Cost get(NodeId k) const;
  bool contains(NodeId k) const;

  /// min-updates entry k (must exist). Returns true if it decreased.
  bool lower(NodeId k, Cost candidate);

  /// All (transit node, value) pairs, path-ordered — the message payload.
  const std::vector<std::pair<NodeId, Cost>>& entries() const {
    return entries_;
  }

  /// True iff every entry is finite (the row has fully converged values).
  bool complete() const;

 private:
  std::vector<std::pair<NodeId, Cost>> entries_;
};

/// Convenience lookup in a received transit_values payload.
Cost lookup_value(const std::vector<std::pair<NodeId, Cost>>& values,
                  NodeId k, bool* found);

}  // namespace fpss::pricing
