#include "pricing/pricing_agent.h"

#include <algorithm>

#include "util/contract.h"

namespace fpss::pricing {

using bgp::RouteAdvert;
using bgp::SelectedRoute;

PricingAgent::PricingAgent(NodeId self, std::size_t node_count,
                           Cost declared_cost, bgp::UpdatePolicy policy)
    : PlainBgpAgent(self, node_count, declared_cost, policy),
      rows_(node_count) {}

bool PricingAgent::prices_complete() const {
  for (NodeId j = 0; j < rib().node_count(); ++j) {
    if (j == id()) continue;
    const SelectedRoute& route = rib().selected(j);
    if (!route.valid()) return false;
    if (!rows_[j].complete()) return false;
  }
  return true;
}

void PricingAgent::restart_values() {
  rib().clear_stored_values();
  for (NodeId j = 0; j < rib().node_count(); ++j) {
    rows_[j].rekey(rib().selected(j), /*preserve=*/false);
    recompute_all_.insert(j);
  }
  // Everyone re-advertises everything so rows can refill from post-restart
  // information only (a route-refresh wave).
  request_full_readvertisement();
}

std::vector<NodeId> PricingAgent::update_extension(
    const std::vector<NodeId>& changed) {
  ++activations_;
  if (!changed.empty()) last_route_change_ = activations_;

  // A route change re-keys the row: the price array indexes the transit
  // nodes of the *current* path, and (in the price-vector protocol) every
  // estimate is relative to the current LCP cost, so surviving entries
  // restart at +infinity (Sect. 6: convergence starts over on route
  // change). The avoidance variant's entries are route-independent path
  // costs and survive.
  for (NodeId j : changed) {
    rows_[j].rekey(rib().selected(j), preserve_values_on_route_change());
    recompute_all_.insert(j);
  }

  std::set<NodeId> value_dirty;
  for (NodeId j : recompute_all_) {
    for (NodeId a : rib().known_neighbors()) {
      if (apply_neighbor(j, a)) value_dirty.insert(j);
    }
  }
  for (const auto& [a, j] : fresh_) {
    if (recompute_all_.contains(j)) continue;
    if (apply_neighbor(j, a)) value_dirty.insert(j);
  }
  fresh_.clear();
  recompute_all_.clear();

  if (!value_dirty.empty()) last_value_change_ = activations_;
  return {value_dirty.begin(), value_dirty.end()};
}

void PricingAgent::decorate(RouteAdvert& advert) {
  advert.transit_values = rows_[advert.destination].entries();
}

std::size_t PricingAgent::extension_words() const {
  std::size_t words = 0;
  for (const ValueRow& r : rows_) words += 2 * r.size();
  return words;
}

void PricingAgent::note_refreshed(NodeId sender,
                                  const std::vector<NodeId>& destinations) {
  for (NodeId j : destinations) fresh_.emplace(sender, j);
}

void PricingAgent::note_sender_cost_change(NodeId sender) {
  // Values previously derived through this neighbor embed its old cost;
  // re-derive every row from the stored tables (the row resets themselves
  // happen via route changes / the session's restart barrier).
  (void)sender;
  for (NodeId j = 0; j < rib().node_count(); ++j) recompute_all_.insert(j);
}

ValueRow& PricingAgent::row(NodeId destination) {
  FPSS_EXPECTS(destination < rows_.size());
  return rows_[destination];
}

const ValueRow& PricingAgent::row(NodeId destination) const {
  FPSS_EXPECTS(destination < rows_.size());
  return rows_[destination];
}

// ---------------------------------------------------------------------------
// PriceVectorAgent — Fig. 3
// ---------------------------------------------------------------------------

Cost PriceVectorAgent::price(NodeId destination, NodeId transit) const {
  const SelectedRoute& route = rib().selected(destination);
  if (!route.valid() || !graph::is_transit_node(route.path, transit))
    return Cost::zero();
  return row(destination).get(transit);
}

bool PriceVectorAgent::apply_neighbor(NodeId destination, NodeId a) {
  const NodeId j = destination;
  ValueRow& prices = row(j);
  if (prices.empty()) return false;  // no transit nodes on our path
  const SelectedRoute& mine = rib().selected(j);
  FPSS_ASSERT(mine.valid());
  const RouteAdvert* advert = rib().stored(a, j);
  if (advert == nullptr) return false;

  const Cost c_a = rib().neighbor_cost(a);
  const Cost c_i = rib().declared_cost();

  // Fig. 3's case analysis. The tree relations are read off the actual
  // stored paths so the rules stay sound even in transient states where
  // the neighbor's advert predates our current route.
  const bool a_is_parent = (mine.next_hop == a);
  const bool a_is_child =
      advert->path.size() == mine.path.size() + 1 &&
      std::equal(mine.path.begin(), mine.path.end(), advert->path.begin() + 1);

  bool lowered = false;
  for (std::size_t t = 1; t + 1 < mine.path.size(); ++t) {
    const NodeId k = mine.path[t];
    const Cost c_k = mine.node_costs[t];
    if (k == a) {
      // From a parent we never learn a's own price (the link i-a is not on
      // P_a(c;i,j)); from any other relation, a route through a cannot
      // avoid a. Either way, skip.
      continue;
    }
    // Membership is read from the advertised path itself — the value array
    // may be absent (cleared by a restart) even though k is on the path.
    const bool on_neighbors_path = graph::is_transit_node(advert->path, k);
    const Cost p_a = lookup_value(advert->transit_values, k, nullptr);
    Cost::rep candidate;
    if (a_is_parent && on_neighbors_path) {
      // Case (i): our path is the link ia plus a's path; a k-avoiding path
      // from a extends to one from us at the same price.
      if (p_a.is_infinite()) continue;
      candidate = p_a.value();
    } else if (a_is_child && on_neighbors_path) {
      // Case (ii): we are on a's path; p^k_ij <= p^k_aj + c_i + c_a.
      if (p_a.is_infinite()) continue;
      candidate = p_a.value() + c_i.value() + c_a.value();
    } else if (on_neighbors_path) {
      // Case (iii): k lies on both paths; shift a's price by the cost
      // deltas: p^k_ij <= p^k_aj + c_a + c(a,j) - c(i,j).
      if (p_a.is_infinite()) continue;
      candidate = p_a.value() + c_a.value() + (advert->cost - mine.cost);
    } else {
      // Case (iv): a's whole route avoids k; append the link ia to it:
      // p^k_ij <= c_k + c_a + c(a,j) - c(i,j). A neighbor that *is* the
      // destination contributes the zero-transit direct path.
      const Cost avoid_via_a =
          (a == j) ? Cost::zero() : c_a + advert->cost;
      candidate = c_k.value() + (avoid_via_a - mine.cost);
    }
    // Transient underestimates (our own LCP estimate still too high) can
    // push a candidate below zero; they are wiped by the reset that
    // accompanies our next route improvement, so clamping is safe.
    if (candidate < 0) candidate = 0;
    lowered |= prices.lower(k, Cost{candidate});
  }
  return lowered;
}

// ---------------------------------------------------------------------------
// AvoidanceVectorAgent — B-space reformulation
// ---------------------------------------------------------------------------

Cost AvoidanceVectorAgent::price(NodeId destination, NodeId transit) const {
  const SelectedRoute& route = rib().selected(destination);
  if (!route.valid() || !graph::is_transit_node(route.path, transit))
    return Cost::zero();
  const Cost b = row(destination).get(transit);
  if (b.is_infinite()) return Cost::infinity();
  // p^k = c_k + B^k - c(i,j); B^k >= c(i,j) once exact, but transient
  // estimates are upper bounds of real paths, hence also >= c(i,j)... only
  // after our route is final. Clamp transients at c_k.
  Cost c_k = Cost::zero();
  for (std::size_t t = 1; t + 1 < route.path.size(); ++t) {
    if (route.path[t] == transit) {
      c_k = route.node_costs[t];
      break;
    }
  }
  const Cost::rep delta = b - route.cost;
  return delta >= 0 ? cost_plus_delta(c_k, delta) : c_k;
}

bool AvoidanceVectorAgent::apply_neighbor(NodeId destination, NodeId a) {
  const NodeId j = destination;
  ValueRow& avoidance = row(j);
  if (avoidance.empty()) return false;
  const SelectedRoute& mine = rib().selected(j);
  FPSS_ASSERT(mine.valid());
  const RouteAdvert* advert = rib().stored(a, j);
  if (advert == nullptr) return false;
  const Cost c_a = rib().neighbor_cost(a);

  bool lowered = false;
  for (std::size_t t = 1; t + 1 < mine.path.size(); ++t) {
    const NodeId k = mine.path[t];
    if (k == a) continue;  // any route through a fails to avoid a
    Cost candidate;
    if (a == j) {
      candidate = Cost::zero();  // the direct link carries no transit cost
    } else {
      // Unified rule: B^k_ij = min_a (c_a + (k on a's path ? B^k_aj
      //                                                    : c(a,j))).
      // Membership comes from the path itself; the value may be missing
      // (restart) even when k is on the path.
      const bool on_neighbors_path = graph::is_transit_node(advert->path, k);
      const Cost b_a = lookup_value(advert->transit_values, k, nullptr);
      candidate = on_neighbors_path ? c_a + b_a : c_a + advert->cost;
    }
    lowered |= avoidance.lower(k, candidate);
  }
  return lowered;
}

}  // namespace fpss::pricing
