#include "pricing/value_row.h"

namespace fpss::pricing {

bool ValueRow::rekey(const bgp::SelectedRoute& route, bool preserve) {
  std::vector<std::pair<NodeId, Cost>> next;
  if (route.valid() && route.path.size() > 2) {
    next.reserve(route.path.size() - 2);
    for (std::size_t t = 1; t + 1 < route.path.size(); ++t) {
      const NodeId k = route.path[t];
      next.emplace_back(k, preserve ? get(k) : Cost::infinity());
    }
  }
  const bool changed = next != entries_;
  entries_ = std::move(next);
  return changed;
}

bool ValueRow::reset() {
  bool changed = false;
  for (auto& [node, value] : entries_) {
    if (value.is_finite()) {
      value = Cost::infinity();
      changed = true;
    }
  }
  return changed;
}

Cost ValueRow::get(NodeId k) const {
  for (const auto& [node, value] : entries_)
    if (node == k) return value;
  return Cost::infinity();
}

bool ValueRow::contains(NodeId k) const {
  for (const auto& [node, value] : entries_) {
    (void)value;
    if (node == k) return true;
  }
  return false;
}

bool ValueRow::lower(NodeId k, Cost candidate) {
  for (auto& [node, value] : entries_) {
    if (node == k) {
      if (candidate < value) {
        value = candidate;
        return true;
      }
      return false;
    }
  }
  return false;  // k no longer on the path; stale update, ignore
}

bool ValueRow::complete() const {
  for (const auto& [node, value] : entries_) {
    (void)node;
    if (value.is_infinite()) return false;
  }
  return true;
}

Cost lookup_value(const std::vector<std::pair<NodeId, Cost>>& values, NodeId k,
                  bool* found) {
  for (const auto& [node, value] : values) {
    if (node == k) {
      if (found != nullptr) *found = true;
      return value;
    }
  }
  if (found != nullptr) *found = false;
  return Cost::infinity();
}

}  // namespace fpss::pricing
