// Orchestration of a distributed price-computation run: builds a network
// of pricing agents over an AS graph, drives it to quiescence with the
// unified engine (under either scheduler), exposes the resulting
// routes/prices, and handles dynamic events with the paper's restart
// semantics ("the process of converging begins again each time a route is
// changed").
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "bgp/engine.h"
#include "graph/graph.h"
#include "pricing/pricing_agent.h"

namespace fpss::pricing {

/// Which distributed algorithm the agents run.
enum class Protocol {
  kPriceVector,      ///< the paper's Fig. 3 algorithm
  kAvoidanceVector,  ///< B-space reformulation (experiment E9)
};

/// How dynamic events restart the price computation.
enum class RestartPolicy {
  /// Paper semantics: after the routes reconverge, all price state restarts
  /// from scratch and refills (correct for arbitrary events).
  kRestartBarrier,
  /// No restart: price state is kept and updated in place. Correct for the
  /// avoidance-vector protocol under *improving* events (link additions,
  /// cost decreases), where surviving B values remain valid upper bounds.
  kIncremental,
};

bgp::AgentFactory make_agent_factory(Protocol protocol,
                                     bgp::UpdatePolicy policy);

/// A network of pricing agents plus the engine that drives it.
class Session {
 public:
  /// A stage-scheduled session. `threads` is the engine's parallel width
  /// for the per-stage compute phase (see bgp::Engine); results are
  /// bit-identical at any width.
  Session(const graph::Graph& g, Protocol protocol,
          bgp::UpdatePolicy policy = bgp::UpdatePolicy::kIncremental,
          unsigned threads = 1);

  /// A session under any engine configuration — scheduler, threads, and
  /// channel model (delays, MRAI, loss, flaps, partitions) all come from
  /// `config`. The Sect. 5 bounds are stated for the stage model, but
  /// correctness must not depend on lockstep synchrony.
  Session(const graph::Graph& g, Protocol protocol,
          const bgp::EngineConfig& config,
          bgp::UpdatePolicy policy = bgp::UpdatePolicy::kIncremental);

  /// A session over custom agents (they must derive from PricingAgent) —
  /// used to inject deviant implementations for the audit experiments.
  Session(const graph::Graph& g, const bgp::AgentFactory& factory,
          unsigned threads = 1);
  Session(const graph::Graph& g, const bgp::AgentFactory& factory,
          const bgp::EngineConfig& config);

  /// Cold-start (or continue) until quiescence; returns this segment's
  /// stats.
  bgp::RunStats run();

  bgp::Network& network() { return *network_; }
  const bgp::Network& network() const { return *network_; }
  bgp::Engine& engine() { return *engine_; }
  const bgp::Engine& engine() const { return *engine_; }
  const bgp::RunStats& total_stats() const { return engine_->stats(); }

  const PricingAgent& agent(NodeId v) const;
  PricingAgent& agent(NodeId v);

  /// Price p^k_ij as known at node i. Zero if k is off-path.
  Cost price(NodeId k, NodeId i, NodeId j) const {
    return agent(i).price(j, k);
  }

  /// The route node i currently uses toward j.
  const bgp::SelectedRoute& route(NodeId i, NodeId j) const {
    return agent(i).selected(j);
  }

  /// True iff every node knows a route and finite prices for every pair.
  bool complete() const;

  // --- dynamics -----------------------------------------------------------

  /// Applies one event and reconverges under the given policy. Returns the
  /// stats of the whole reconvergence (routes + prices).
  bgp::RunStats change_cost(NodeId v, Cost new_cost, RestartPolicy policy);
  bgp::RunStats add_link(NodeId u, NodeId v, RestartPolicy policy);
  bgp::RunStats remove_link(NodeId u, NodeId v, RestartPolicy policy);

  /// One element of a coalesced event burst (see apply_events).
  struct Event {
    enum class Kind { kCostChange, kAddLink, kRemoveLink };
    Kind kind = Kind::kCostChange;
    NodeId u = kInvalidNode;
    NodeId v = kInvalidNode;
    Cost cost;

    static Event cost_change(NodeId node, Cost c) {
      return {Kind::kCostChange, node, kInvalidNode, c};
    }
    static Event add_link(NodeId a, NodeId b) {
      return {Kind::kAddLink, a, b, Cost::zero()};
    }
    static Event remove_link(NodeId a, NodeId b) {
      return {Kind::kRemoveLink, a, b, Cost::zero()};
    }
  };

  /// Applies a whole burst of events and reconverges *once* — the
  /// fail_node pattern generalized, and the primitive behind the serving
  /// layer's delta coalescing. The paper's restart semantics don't care
  /// how many changes precede a restart, only that convergence begins
  /// again afterwards, so one barrier per burst is exactly as sound as
  /// one per event. Preconditions as for the single-event calls (links
  /// added must be absent, links removed must be present).
  bgp::RunStats apply_events(std::span<const Event> events,
                             RestartPolicy policy);

  /// What fail_node did: the reconvergence stats plus the torn-down links
  /// (hand them to restore_node to re-attach the AS later).
  struct NodeFailure {
    bgp::RunStats stats;
    std::vector<std::pair<NodeId, NodeId>> links;
  };

  /// Whole-AS failure: tears down every adjacency of v at once (the AS
  /// disappears from the topology; its prefix becomes unreachable), then
  /// reconverges.
  NodeFailure fail_node(NodeId v, RestartPolicy policy);

  /// Re-attaches a previously failed AS via the given links.
  bgp::RunStats restore_node(
      const std::vector<std::pair<NodeId, NodeId>>& links,
      RestartPolicy policy);

  // --- dirty sink-tree tracking -------------------------------------------
  //
  // The serving layer wants to re-export only the destinations whose sink
  // tree actually changed. Write-tracking inside the agents cannot provide
  // that: the paper's restart barrier wipes and refills *all* price state
  // on every event, so every entry is rewritten even when almost none end
  // up different. Instead the session fingerprints each destination's
  // final converged exported state (selected paths, route costs, prices)
  // and diffs fingerprints across converged epochs.

  /// Opt-in: fingerprint every sink tree after each converged run / event
  /// burst and log which destinations changed. Costs one O(routing state)
  /// pass per converged epoch (parallelized on the engine's pool when one
  /// exists); off by default so non-serving users pay nothing. Enabling
  /// (re)baselines: history before the call is forgotten.
  void track_dirty_destinations(bool enable);
  bool tracks_dirty_destinations() const { return track_dirty_; }

  /// The destinations whose exported sink tree (routes, costs, prices) may
  /// have changed since `since_epoch` — a value previously read from
  /// engine().converged_epochs(). Always a superset of the true change set
  /// (exact up to fingerprint collision, which a 64-bit FNV makes
  /// negligible and a full republish eventually repairs). Sorted, deduped.
  /// nullopt means "unknown — do a full export": tracking is off, there is
  /// no converged baseline, the record window no longer reaches back to
  /// `since_epoch`, or the engine was driven outside the Session API after
  /// the last fingerprinting (fp epoch != converged_epochs()).
  std::optional<std::vector<NodeId>> dirty_destinations(
      std::uint64_t since_epoch) const;

 private:
  bgp::RunStats reconverge(RestartPolicy policy);

  /// Fingerprints + diffs after a converged engine run. Called once per
  /// public mutation/run — notably *not* between reconverge()'s two
  /// internal runs, where the restart barrier has every price at +infinity
  /// and a diff would mark all destinations dirty twice over.
  void note_converged();
  /// FNV-1a over destination j's exported quantities, folded in source
  /// order: selected path nodes, route cost, and p^k_ij for each path
  /// intermediate k (an invalid route folds a sentinel). Equal fingerprints
  /// <=> equal export rows, modulo 64-bit collision.
  std::uint64_t sink_fingerprint(NodeId j) const;

  /// One converged-epoch transition: the destinations that changed between
  /// from_epoch and to_epoch. Records chain contiguously (one record's
  /// to_epoch is the next one's from_epoch); a baseline record uses
  /// from_epoch 0 and marks everything dirty.
  struct DirtyRecord {
    std::uint64_t from_epoch = 0;
    std::uint64_t to_epoch = 0;
    std::vector<NodeId> destinations;
  };
  /// Records kept before the oldest is dropped (a trimmed window answers
  /// nullopt for epochs it no longer covers).
  static constexpr std::size_t kDirtyWindow = 64;

  std::unique_ptr<bgp::Network> network_;
  std::unique_ptr<bgp::Engine> engine_;
  bool track_dirty_ = false;
  /// converged_epochs() value the fingerprints describe.
  std::uint64_t fp_epoch_ = 0;
  /// Per-destination sink-tree fingerprints; empty until the first
  /// converged run after tracking is enabled.
  std::vector<std::uint64_t> fps_;
  std::vector<DirtyRecord> records_;
  /// Which agent algorithm the factory built. Since the engine unification
  /// (PR 2) this no longer selects an engine — every session drives the
  /// one bgp::Engine — it only lets reconverge() enforce the restart
  /// barrier for the price-vector protocol, whose estimates are deltas
  /// against the pre-event route state and so cannot survive an event
  /// in place. Empty for the custom-factory constructors (the audit
  /// experiments' deviant agents): reconverge() then accepts either
  /// policy and the caller owns the soundness argument.
  std::optional<Protocol> protocol_;
};

}  // namespace fpss::pricing
