// Orchestration of a distributed price-computation run: builds a network
// of pricing agents over an AS graph, drives it to quiescence with either
// engine, exposes the resulting routes/prices, and handles dynamic events
// with the paper's restart semantics ("the process of converging begins
// again each time a route is changed").
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "bgp/engine.h"
#include "graph/graph.h"
#include "pricing/pricing_agent.h"

namespace fpss::pricing {

/// Which distributed algorithm the agents run.
enum class Protocol {
  kPriceVector,      ///< the paper's Fig. 3 algorithm
  kAvoidanceVector,  ///< B-space reformulation (experiment E9)
};

/// How dynamic events restart the price computation.
enum class RestartPolicy {
  /// Paper semantics: after the routes reconverge, all price state restarts
  /// from scratch and refills (correct for arbitrary events).
  kRestartBarrier,
  /// No restart: price state is kept and updated in place. Correct for the
  /// avoidance-vector protocol under *improving* events (link additions,
  /// cost decreases), where surviving B values remain valid upper bounds.
  kIncremental,
};

bgp::AgentFactory make_agent_factory(Protocol protocol,
                                     bgp::UpdatePolicy policy);

/// A network of pricing agents plus a synchronous engine.
class Session {
 public:
  /// `threads` is the SyncEngine's parallel width for the per-stage
  /// compute phase (see bgp::SyncEngine); results are bit-identical at any
  /// width. Ignored by the async engine.
  Session(const graph::Graph& g, Protocol protocol,
          bgp::UpdatePolicy policy = bgp::UpdatePolicy::kIncremental,
          unsigned threads = 1);

  /// A session over custom agents (they must derive from PricingAgent) —
  /// used to inject deviant implementations for the audit experiments.
  Session(const graph::Graph& g, const bgp::AgentFactory& factory,
          unsigned threads = 1);

  /// Cold-start (or continue) until quiescence; returns this segment's
  /// stats.
  bgp::RunStats run();

  /// A session driven by the asynchronous event engine instead of
  /// synchronous stages: the Sect. 5 bounds are stated for the stage
  /// model, but correctness must not depend on lockstep synchrony.
  static Session async(const graph::Graph& g, Protocol protocol,
                       const bgp::AsyncEngine::Config& config,
                       bgp::UpdatePolicy policy =
                           bgp::UpdatePolicy::kIncremental);

  bgp::Network& network() { return *network_; }
  const bgp::Network& network() const { return *network_; }
  bool is_async() const { return async_engine_ != nullptr; }
  /// The stage engine. Precondition: !is_async().
  bgp::SyncEngine& engine();
  const bgp::RunStats& total_stats() const;

  const PricingAgent& agent(NodeId v) const;
  PricingAgent& agent(NodeId v);

  /// Price p^k_ij as known at node i. Zero if k is off-path.
  Cost price(NodeId k, NodeId i, NodeId j) const {
    return agent(i).price(j, k);
  }

  /// The route node i currently uses toward j.
  const bgp::SelectedRoute& route(NodeId i, NodeId j) const {
    return agent(i).selected(j);
  }

  /// True iff every node knows a route and finite prices for every pair.
  bool complete() const;

  // --- dynamics -----------------------------------------------------------

  /// Applies one event and reconverges under the given policy. Returns the
  /// stats of the whole reconvergence (routes + prices).
  bgp::RunStats change_cost(NodeId v, Cost new_cost, RestartPolicy policy);
  bgp::RunStats add_link(NodeId u, NodeId v, RestartPolicy policy);
  bgp::RunStats remove_link(NodeId u, NodeId v, RestartPolicy policy);

  /// Whole-AS failure: tears down every adjacency of v at once (the AS
  /// disappears from the topology; its prefix becomes unreachable), then
  /// reconverges. Returns the failed links for a later restore.
  std::vector<std::pair<NodeId, NodeId>> fail_node(NodeId v,
                                                   RestartPolicy policy,
                                                   bgp::RunStats* stats);

  /// Re-attaches a previously failed AS via the given links.
  bgp::RunStats restore_node(
      const std::vector<std::pair<NodeId, NodeId>>& links,
      RestartPolicy policy);

 private:
  bgp::RunStats reconverge(RestartPolicy policy);

  std::unique_ptr<bgp::Network> network_;
  std::unique_ptr<bgp::SyncEngine> engine_;        // exactly one engine is set
  std::unique_ptr<bgp::AsyncEngine> async_engine_;
  /// Set for the standard constructors; used to reject the kIncremental
  /// restart policy for the price-vector protocol, whose values are only
  /// correct relative to the (restarted) route state. Unknown for custom
  /// factories — then the caller takes responsibility.
  std::optional<Protocol> protocol_;
};

}  // namespace fpss::pricing
