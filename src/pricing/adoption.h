// Incremental deployment: what if only some ASs run the pricing extension?
//
// The paper's closing theme is that Internet algorithms win by being
// deployable as "a straightforward extension to BGP"; real deployments are
// incremental. In a mixed network, non-participants still run plain BGP —
// their adverts carry paths and costs (so routing is unaffected and
// case-(iv) price candidates still work) but no price arrays. Participant
// estimates then converge to a minimum over a *subset* of the candidate
// k-avoiding paths: never below the true VCG price, sometimes above it,
// sometimes still unknown. This module builds mixed networks and measures
// exactly that.
#pragma once

#include <vector>

#include "bgp/engine.h"
#include "graph/graph.h"
#include "mechanism/vcg.h"
#include "pricing/pricing_agent.h"
#include "util/rng.h"

namespace fpss::pricing {

/// participates[v] == true: v runs PriceVectorAgent; otherwise plain BGP.
bgp::AgentFactory make_mixed_factory(std::vector<char> participates,
                                     bgp::UpdatePolicy policy);

/// A random participant set of the given size (the content of the
/// remaining entries is false).
std::vector<char> random_participants(std::size_t node_count,
                                      std::size_t participant_count,
                                      util::Rng& rng);

struct AdoptionReport {
  std::size_t participants = 0;
  std::size_t price_entries = 0;   ///< (i, j, k) with participant source i
  std::size_t exact = 0;           ///< equals the true VCG price
  std::size_t overestimate = 0;    ///< finite but above the true price
  std::size_t unknown = 0;         ///< still infinite
  std::size_t underestimate = 0;   ///< below true (must be 0: safety)

  double exact_fraction() const {
    return price_entries == 0
               ? 1.0
               : static_cast<double>(exact) /
                     static_cast<double>(price_entries);
  }
};

/// Runs a mixed network to quiescence and grades every participant-source
/// price entry against the centralized mechanism.
AdoptionReport measure_adoption(const graph::Graph& g,
                                const std::vector<char>& participates,
                                const mechanism::VcgMechanism& truth);

}  // namespace fpss::pricing
