#include "pricing/adoption.h"

#include "util/contract.h"

namespace fpss::pricing {

bgp::AgentFactory make_mixed_factory(std::vector<char> participates,
                                     bgp::UpdatePolicy policy) {
  return [participates = std::move(participates), policy](
             NodeId self, std::size_t node_count,
             Cost declared_cost) -> std::unique_ptr<bgp::Agent> {
    FPSS_EXPECTS(participates.size() == node_count);
    if (participates[self]) {
      return std::make_unique<PriceVectorAgent>(self, node_count,
                                                declared_cost, policy);
    }
    return std::make_unique<bgp::PlainBgpAgent>(self, node_count,
                                                declared_cost, policy);
  };
}

std::vector<char> random_participants(std::size_t node_count,
                                      std::size_t participant_count,
                                      util::Rng& rng) {
  FPSS_EXPECTS(participant_count <= node_count);
  std::vector<NodeId> ids(node_count);
  for (NodeId v = 0; v < node_count; ++v) ids[v] = v;
  rng.shuffle(ids);
  std::vector<char> participates(node_count, 0);
  for (std::size_t i = 0; i < participant_count; ++i)
    participates[ids[i]] = 1;
  return participates;
}

AdoptionReport measure_adoption(const graph::Graph& g,
                                const std::vector<char>& participates,
                                const mechanism::VcgMechanism& truth) {
  FPSS_EXPECTS(participates.size() == g.node_count());
  bgp::Network net(g, make_mixed_factory(participates,
                                         bgp::UpdatePolicy::kIncremental));
  bgp::Engine engine(net);
  const auto stats = engine.run();
  FPSS_ENSURES(stats.converged);

  AdoptionReport report;
  for (char p : participates) report.participants += (p != 0);

  for (NodeId i = 0; i < g.node_count(); ++i) {
    if (!participates[i]) continue;
    const auto& agent = static_cast<const PricingAgent&>(net.agent(i));
    for (NodeId j = 0; j < g.node_count(); ++j) {
      if (i == j) continue;
      const graph::Path path = truth.routes().path(i, j);
      for (std::size_t t = 1; t + 1 < path.size(); ++t) {
        const NodeId k = path[t];
        ++report.price_entries;
        const Cost got = agent.price(j, k);
        const Cost want = truth.price(k, i, j);
        if (got.is_infinite()) {
          ++report.unknown;
        } else if (got == want) {
          ++report.exact;
        } else if (got > want) {
          ++report.overestimate;
        } else {
          ++report.underestimate;
        }
      }
    }
  }
  return report;
}

}  // namespace fpss::pricing
