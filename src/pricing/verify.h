// Exact comparison of a distributed run against the centralized Theorem 1
// computation: same selected routes for every pair, and the same price
// p^k_ij at every source for every transit node. Theorem 2: "Our algorithm
// computes the VCG prices correctly."
#pragma once

#include <string>

#include "mechanism/vcg.h"
#include "pricing/session.h"

namespace fpss::pricing {

struct VerifyResult {
  bool ok = false;
  std::size_t pairs_checked = 0;
  std::size_t price_entries_checked = 0;
  std::size_t route_mismatches = 0;
  std::size_t price_mismatches = 0;
  std::string first_diff;  ///< human-readable description of one mismatch
};

VerifyResult verify_against_centralized(const Session& session,
                                        const mechanism::VcgMechanism& mech);

}  // namespace fpss::pricing
