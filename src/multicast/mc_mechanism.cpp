#include "multicast/mc_mechanism.h"

#include <algorithm>

#include "util/contract.h"

namespace fpss::multicast {

MulticastTree::MulticastTree()
    : parent_{kInvalidNode}, link_cost_{0}, children_(1) {}

NodeId MulticastTree::parent(NodeId v) const {
  FPSS_EXPECTS(v < node_count());
  return parent_[v];
}

Cost::rep MulticastTree::link_cost(NodeId v) const {
  FPSS_EXPECTS(v < node_count());
  return link_cost_[v];
}

const std::vector<NodeId>& MulticastTree::children(NodeId v) const {
  FPSS_EXPECTS(v < node_count());
  return children_[v];
}

NodeId MulticastTree::add_node(NodeId parent, Cost::rep link_cost) {
  FPSS_EXPECTS(parent < node_count());
  FPSS_EXPECTS(link_cost >= 0);
  const auto v = static_cast<NodeId>(node_count());
  parent_.push_back(parent);
  link_cost_.push_back(link_cost);
  children_.emplace_back();
  children_[parent].push_back(v);
  return v;
}

MulticastTree MulticastTree::random(std::size_t node_count,
                                    Cost::rep max_link_cost, util::Rng& rng) {
  FPSS_EXPECTS(node_count >= 1 && max_link_cost >= 1);
  MulticastTree tree;
  for (std::size_t v = 1; v < node_count; ++v) {
    const auto parent = static_cast<NodeId>(rng.below(tree.node_count()));
    tree.add_node(parent, rng.uniform_int(1, max_link_cost));
  }
  return tree;
}

MulticastTree MulticastTree::from_sink_tree(const routing::SinkTree& tree,
                                            const graph::Graph& g) {
  // Renumber: multicast node 0 = the routing destination (the source of
  // the multicast); children in BFS order from there.
  MulticastTree out;
  const auto kids = tree.children();
  std::vector<NodeId> as_of_mc{tree.destination()};  // mc id -> AS id
  std::vector<NodeId> mc_of_as(tree.node_count(), kInvalidNode);
  mc_of_as[tree.destination()] = 0;
  for (std::size_t head = 0; head < as_of_mc.size(); ++head) {
    const NodeId as = as_of_mc[head];
    for (NodeId child : kids[as]) {
      // The parent forwards the multicast flow onto the link, so the
      // uplink is priced at the parent's declared transit cost.
      const NodeId mc = out.add_node(mc_of_as[as], g.cost(as).value());
      mc_of_as[child] = mc;
      as_of_mc.push_back(child);
    }
  }
  return out;
}

namespace {

/// Shared outcome scaffolding.
McOutcome make_outcome(const MulticastTree& tree,
                       const std::vector<User>& users) {
  McOutcome outcome;
  outcome.node_included.assign(tree.node_count(), 0);
  outcome.user_receives.assign(users.size(), 0);
  outcome.user_payment.assign(users.size(), 0);
  return outcome;
}

std::vector<Cost::rep> valuation_sums(const MulticastTree& tree,
                                      const std::vector<User>& users) {
  std::vector<Cost::rep> sum(tree.node_count(), 0);
  for (const User& user : users) {
    FPSS_EXPECTS(user.node < tree.node_count());
    FPSS_EXPECTS(user.valuation >= 0);
    sum[user.node] += user.valuation;
  }
  return sum;
}

}  // namespace

McOutcome marginal_cost_mechanism(const MulticastTree& tree,
                                  const std::vector<User>& users) {
  McOutcome outcome = make_outcome(tree, users);
  const std::size_t n = tree.node_count();
  const std::vector<Cost::rep> value_at = valuation_sums(tree, users);

  // Children are always newer than parents (ids increase down the tree),
  // so a reverse id scan is a bottom-up pass and a forward scan top-down.

  // Pass 1 (bottom-up, one message per link): the subtree welfare
  // W(v) = valuations at v - uplink cost + sum of positive child welfare.
  std::vector<Cost::rep> welfare(n, 0);
  for (NodeId v = static_cast<NodeId>(n); v-- > 0;) {
    Cost::rep w = value_at[v] - tree.link_cost(v);
    for (NodeId c : tree.children(v)) w += std::max<Cost::rep>(0, welfare[c]);
    welfare[v] = w;
    if (v != 0) {
      ++outcome.messages;  // W(v) flows to the parent
      outcome.words += 2;
    }
  }

  // Pass 2 (top-down, one message per link): inclusion plus the minimum
  // surplus A(v) along the path from the root.
  constexpr Cost::rep kNoCap = Cost::kMaxFinite;
  std::vector<Cost::rep> min_surplus(n, kNoCap);
  outcome.node_included[0] = 1;
  min_surplus[0] = kNoCap;  // the source cannot be priced off the tree
  for (NodeId v = 1; v < n; ++v) {
    const NodeId p = tree.parent(v);
    if (outcome.node_included[p] && welfare[v] >= 0) {
      outcome.node_included[v] = 1;
      min_surplus[v] = std::min(welfare[v], min_surplus[p]);
    }
    ++outcome.messages;  // inclusion + A(v) flows to the child
    outcome.words += 2;
  }

  // Local computation: receivers and their marginal-cost payments.
  for (std::size_t i = 0; i < users.size(); ++i) {
    const User& user = users[i];
    if (!outcome.node_included[user.node]) continue;
    outcome.user_receives[i] = 1;
    outcome.user_payment[i] =
        std::max<Cost::rep>(0, user.valuation - min_surplus[user.node]);
  }

  for (NodeId v = 0; v < n; ++v) {
    if (!outcome.node_included[v]) continue;
    outcome.welfare += value_at[v] - tree.link_cost(v);
  }
  return outcome;
}

namespace {

/// Max welfare over root-containing subtrees; also returns (via `best`)
/// the union of all maximizers — the largest welfare-maximizing set.
Cost::rep max_welfare(const MulticastTree& tree,
                      const std::vector<Cost::rep>& value_at,
                      std::vector<char>* best) {
  const std::size_t n = tree.node_count();
  FPSS_EXPECTS(n <= 20);  // exponential reference implementation
  const std::uint64_t limit = 1ULL << n;
  Cost::rep best_welfare = 0;
  std::uint64_t best_mask = 0;
  bool found = false;
  for (std::uint64_t mask = 1; mask < limit; ++mask) {
    if ((mask & 1) == 0) continue;  // root must be in
    bool valid = true;
    Cost::rep welfare = 0;
    for (NodeId v = 0; v < n && valid; ++v) {
      if ((mask >> v) & 1) {
        if (v != 0 && ((mask >> tree.parent(v)) & 1) == 0) valid = false;
        welfare += value_at[v] - tree.link_cost(v);
      }
    }
    if (!valid) continue;
    if (!found || welfare > best_welfare) {
      found = true;
      best_welfare = welfare;
      best_mask = mask;
    } else if (welfare == best_welfare) {
      best_mask |= mask;  // union of maximizers stays optimal on trees
    }
  }
  if (best != nullptr) {
    best->assign(n, 0);
    for (NodeId v = 0; v < n; ++v) (*best)[v] = (best_mask >> v) & 1;
  }
  return best_welfare;
}

}  // namespace

McOutcome brute_force_vcg(const MulticastTree& tree,
                          const std::vector<User>& users) {
  McOutcome outcome = make_outcome(tree, users);
  const std::vector<Cost::rep> value_at = valuation_sums(tree, users);
  outcome.welfare = max_welfare(tree, value_at, &outcome.node_included);

  for (std::size_t i = 0; i < users.size(); ++i) {
    const User& user = users[i];
    if (!outcome.node_included[user.node]) continue;
    outcome.user_receives[i] = 1;
    std::vector<Cost::rep> without = value_at;
    without[user.node] -= user.valuation;
    const Cost::rep welfare_without = max_welfare(tree, without, nullptr);
    outcome.user_payment[i] =
        user.valuation - (outcome.welfare - welfare_without);
    FPSS_ENSURES(outcome.user_payment[i] >= 0);
  }
  return outcome;
}

}  // namespace fpss::multicast
