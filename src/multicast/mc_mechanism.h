// Multicast cost sharing — the mechanism family the paper positions itself
// against: "we have expanded the scope of distributed algorithmic mechanism
// design, which has heretofore been focused mainly on multicast cost
// sharing [1, 4, 6]" (Sect. 1). This module implements that prior pillar,
// the Feigenbaum-Papadimitriou-Shenker *marginal-cost (MC)* mechanism:
// users sit at nodes of a multicast tree, declare valuations, and the
// mechanism picks the welfare-maximizing receiver set and VCG payments —
// computable by one bottom-up and one top-down pass over the tree (two
// short messages per link, the "network complexity" benchmark the paper
// inherits its standards from).
#pragma once

#include <cstdint>
#include <vector>

#include "routing/sink_tree.h"
#include "util/cost.h"
#include "util/rng.h"
#include "util/types.h"

namespace fpss::multicast {

/// A rooted multicast distribution tree. Node 0 is always the root (the
/// content source); every other node has a parent and a nonnegative cost
/// on its uplink (the cost of extending the multicast flow to it).
class MulticastTree {
 public:
  /// A single-node tree (just the source).
  MulticastTree();

  std::size_t node_count() const { return parent_.size(); }
  NodeId parent(NodeId v) const;
  Cost::rep link_cost(NodeId v) const;
  const std::vector<NodeId>& children(NodeId v) const;

  /// Adds a leaf under `parent` with the given uplink cost; returns its id.
  NodeId add_node(NodeId parent, Cost::rep link_cost);

  /// Random tree: each new node attaches to a uniformly random existing
  /// node, uplink costs uniform in [1, max_link_cost].
  static MulticastTree random(std::size_t node_count,
                              Cost::rep max_link_cost, util::Rng& rng);

  /// The multicast tree induced by interdomain routing: the sink tree T(j)
  /// of an AS graph, re-rooted at the source j, with each uplink priced at
  /// the forwarding node's declared transit cost (the parent forwards the
  /// flow onto the link). Ties this module back to the paper's substrate.
  static MulticastTree from_sink_tree(const routing::SinkTree& tree,
                                      const graph::Graph& g);

 private:
  std::vector<NodeId> parent_;
  std::vector<Cost::rep> link_cost_;
  std::vector<std::vector<NodeId>> children_;
};

/// One potential receiver: a user at a tree node with a declared
/// (nonnegative) valuation for receiving the multicast.
struct User {
  NodeId node = 0;
  Cost::rep valuation = 0;
};

struct McOutcome {
  std::vector<char> node_included;        ///< per tree node
  std::vector<char> user_receives;        ///< per user index
  std::vector<Cost::rep> user_payment;    ///< per user index; 0 if excluded
  Cost::rep welfare = 0;                  ///< sum valuations - sum link costs
  // Network-complexity accounting of the two-pass computation: exactly two
  // messages per tree link, O(1) words each.
  std::uint64_t messages = 0;
  std::uint64_t words = 0;
};

/// The two-pass marginal-cost mechanism (bottom-up welfare, top-down
/// minimum-surplus). Strategyproof; picks the largest welfare-maximizing
/// receiver set.
McOutcome marginal_cost_mechanism(const MulticastTree& tree,
                                  const std::vector<User>& users);

/// Exhaustive reference: enumerates every root-containing subtree, takes
/// the welfare maximum (largest set on ties), and computes VCG payments by
/// re-solving without each user. Exponential; for cross-validation only.
McOutcome brute_force_vcg(const MulticastTree& tree,
                          const std::vector<User>& users);

}  // namespace fpss::multicast
