#include "policy/simulation.h"

namespace fpss::policy {

PolicyRun run_policy_routing(const graph::Graph& g,
                             const Relationships& relationships,
                             bgp::UpdatePolicy policy) {
  PolicyRun run;
  bgp::Network net(g, make_policy_factory(&relationships, policy));
  bgp::Engine engine(net);
  run.stats = engine.run();
  run.converged = run.stats.converged;

  const std::size_t n = g.node_count();
  run.paths.assign(n, std::vector<graph::Path>(n));
  run.complete = true;
  run.valley_free = true;
  for (NodeId i = 0; i < n; ++i) {
    const auto& agent = static_cast<const PolicyBgpAgent&>(net.agent(i));
    for (NodeId j = 0; j < n; ++j) {
      if (i == j) continue;
      const bgp::SelectedRoute& route = agent.selected(j);
      if (!route.valid()) {
        run.complete = false;
        continue;
      }
      run.valley_free &= relationships.is_valley_free(route.path);
      run.paths[i][j] = route.path;
    }
  }
  return run;
}

}  // namespace fpss::policy
