// Business relationships between interconnected ASs — the reality the
// paper brackets out in footnote 2 ("Interconnected ASs can be peers, or
// one can be a customer of the other. Most ASs do not accept transit
// traffic from peers, only from customers") and names as the main open
// direction in Sect. 7 ("ASs have more complex costs and route preferences
// that are embodied in their routing policies").
//
// This module supplies the standard Gao-Rexford model used to study that
// setting: each link is customer/provider or peer/peer, route preference
// is customer > peer > provider, and routes are exported so that every
// path is valley-free.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "graph/path.h"
#include "graphgen/random.h"
#include "util/types.h"

namespace fpss::policy {

/// What a neighbor is *to this node*.
enum class Relation : std::uint8_t {
  kCustomer,  ///< the neighbor pays us for transit
  kPeer,      ///< settlement-free
  kProvider,  ///< we pay the neighbor for transit
};

const char* to_string(Relation relation);

/// Symmetric relationship table over the links of an AS graph.
/// Invariant: rel(u,v) == kCustomer  <=>  rel(v,u) == kProvider, and
/// rel(u,v) == kPeer <=> rel(v,u) == kPeer.
class Relationships {
 public:
  Relationships() = default;

  /// Ground truth from the annotated tiered generator: core mesh and
  /// lateral/repair links are peerings; uplinks make the earlier node the
  /// provider.
  static Relationships from_tiered(const graphgen::TieredGraph& tiered);

  /// The classic degree heuristic for graphs without provenance: on each
  /// link the endpoint with the noticeably larger degree is the provider;
  /// near-equal degrees peer. `peer_ratio` is the max degree ratio that
  /// still counts as "near-equal" (e.g. 1.5).
  static Relationships infer_by_degree(const graph::Graph& g,
                                       double peer_ratio);

  /// Declares v a customer of u (and u a provider of v).
  void set_customer(NodeId provider, NodeId customer);
  void set_peer(NodeId u, NodeId v);

  /// Relation of `neighbor` from `node`'s point of view.
  /// Precondition: the pair was declared.
  Relation rel(NodeId node, NodeId neighbor) const;
  bool knows(NodeId node, NodeId neighbor) const;

  /// Valley-free test (Gao): a valid path is zero or more customer->
  /// provider ("up") steps, at most one peer step, then zero or more
  /// provider->customer ("down") steps.
  bool is_valley_free(const graph::Path& path) const;

  /// True if the provider-of digraph is acyclic — the Gao-Rexford
  /// stability condition ("no AS is, transitively, its own provider").
  bool hierarchy_is_acyclic(std::size_t node_count) const;

  std::size_t link_count() const { return table_.size() / 2; }

 private:
  static std::uint64_t key(NodeId a, NodeId b) {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  std::unordered_map<std::uint64_t, Relation> table_;
};

}  // namespace fpss::policy
