#include "policy/relationships.h"

#include <queue>

#include "util/contract.h"

namespace fpss::policy {

const char* to_string(Relation relation) {
  switch (relation) {
    case Relation::kCustomer: return "customer";
    case Relation::kPeer: return "peer";
    case Relation::kProvider: return "provider";
  }
  return "?";
}

Relationships Relationships::from_tiered(const graphgen::TieredGraph& tiered) {
  Relationships rel;
  for (const auto& [u, v, why] : tiered.edges) {
    switch (why) {
      case graphgen::EdgeProvenance::kCoreMesh:
      case graphgen::EdgeProvenance::kLateral:
      case graphgen::EdgeProvenance::kRepair:
        rel.set_peer(u, v);
        break;
      case graphgen::EdgeProvenance::kUplink:
        rel.set_customer(/*provider=*/v, /*customer=*/u);
        break;
    }
  }
  return rel;
}

Relationships Relationships::infer_by_degree(const graph::Graph& g,
                                             double peer_ratio) {
  FPSS_EXPECTS(peer_ratio >= 1.0);
  Relationships rel;
  for (const auto& [u, v] : g.edges()) {
    const auto du = static_cast<double>(g.degree(u));
    const auto dv = static_cast<double>(g.degree(v));
    if (du >= dv * peer_ratio) {
      rel.set_customer(/*provider=*/u, /*customer=*/v);
    } else if (dv >= du * peer_ratio) {
      rel.set_customer(/*provider=*/v, /*customer=*/u);
    } else {
      rel.set_peer(u, v);
    }
  }
  return rel;
}

void Relationships::set_customer(NodeId provider, NodeId customer) {
  FPSS_EXPECTS(provider != customer);
  table_[key(provider, customer)] = Relation::kCustomer;
  table_[key(customer, provider)] = Relation::kProvider;
}

void Relationships::set_peer(NodeId u, NodeId v) {
  FPSS_EXPECTS(u != v);
  table_[key(u, v)] = Relation::kPeer;
  table_[key(v, u)] = Relation::kPeer;
}

Relation Relationships::rel(NodeId node, NodeId neighbor) const {
  const auto it = table_.find(key(node, neighbor));
  FPSS_EXPECTS(it != table_.end());
  return it->second;
}

bool Relationships::knows(NodeId node, NodeId neighbor) const {
  return table_.contains(key(node, neighbor));
}

bool Relationships::is_valley_free(const graph::Path& path) const {
  // Phases: 0 = climbing (customer->provider steps), 1 = after the single
  // peer step, 2 = descending (provider->customer steps).
  int phase = 0;
  for (std::size_t t = 1; t < path.size(); ++t) {
    const NodeId from = path[t - 1];
    const NodeId to = path[t];
    if (!knows(from, to)) return false;
    // What the step is, seen from the sender: stepping to our *provider*
    // is "up", to a *peer* is flat, to a *customer* is "down".
    switch (rel(from, to)) {
      case Relation::kProvider:  // up
        if (phase != 0) return false;
        break;
      case Relation::kPeer:  // flat: at most once, ends the climb
        if (phase != 0) return false;
        phase = 1;
        break;
      case Relation::kCustomer:  // down
        phase = 2;
        break;
    }
  }
  return true;
}

bool Relationships::hierarchy_is_acyclic(std::size_t node_count) const {
  // Kahn's algorithm over provider -> customer edges.
  std::vector<std::vector<NodeId>> customers(node_count);
  std::vector<std::size_t> providers_of(node_count, 0);
  for (const auto& [packed, relation] : table_) {
    if (relation != Relation::kCustomer) continue;  // provider's view only
    const auto provider = static_cast<NodeId>(packed >> 32);
    const auto customer = static_cast<NodeId>(packed & 0xffffffffu);
    customers[provider].push_back(customer);
    ++providers_of[customer];
  }
  std::queue<NodeId> roots;
  for (NodeId v = 0; v < node_count; ++v)
    if (providers_of[v] == 0) roots.push(v);
  std::size_t visited = 0;
  while (!roots.empty()) {
    const NodeId v = roots.front();
    roots.pop();
    ++visited;
    for (NodeId c : customers[v])
      if (--providers_of[c] == 0) roots.push(c);
  }
  return visited == node_count;
}

}  // namespace fpss::policy
