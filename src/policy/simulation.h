// One-call policy-routing simulation used by tests, benches and examples.
#pragma once

#include <vector>

#include "bgp/engine.h"
#include "graph/path.h"
#include "policy/policy_agent.h"

namespace fpss::policy {

struct PolicyRun {
  bgp::RunStats stats;
  /// Selected path per ordered pair; paths[i][j] empty = unreachable.
  std::vector<std::vector<graph::Path>> paths;
  bool converged = false;
  bool complete = false;     ///< every ordered pair has a route
  bool valley_free = false;  ///< every selected path is valley-free
};

/// Runs Gao-Rexford routing over `g` to quiescence on the synchronous
/// engine and collects every selected path.
PolicyRun run_policy_routing(
    const graph::Graph& g, const Relationships& relationships,
    bgp::UpdatePolicy policy = bgp::UpdatePolicy::kIncremental);

}  // namespace fpss::policy
