// Gao-Rexford policy routing on the BGP substrate.
//
// The paper's model makes every AS route on lowest cost; Sect. 3 concedes
// that "BGP allows an AS to choose routes according to any one of a wide
// variety of local policies ... in practice, many ASs do not use it
// [LCP routing]". This agent implements the canonical policy model:
//
//   * Preference: routes learned from customers over routes learned from
//     peers over routes learned from providers; lowest cost / fewest hops /
//     lowest next-hop id break ties within a class.
//   * Export: routes learned from a customer (and the AS's own prefix) go
//     to everyone; routes learned from a peer or provider go to customers
//     only.
//
// Under an acyclic provider hierarchy these rules are guaranteed to
// converge (Gao-Rexford), and every path they produce is valley-free.
#pragma once

#include <map>
#include <set>

#include "bgp/engine.h"
#include "bgp/plain_agent.h"
#include "policy/relationships.h"

namespace fpss::policy {

class PolicyBgpAgent : public bgp::PlainBgpAgent {
 public:
  /// `relationships` must outlive the agent (one shared table per network).
  PolicyBgpAgent(NodeId self, std::size_t node_count, Cost declared_cost,
                 bgp::UpdatePolicy policy,
                 const Relationships* relationships);

  bool reselect_destination(NodeId destination) override;
  bgp::TableMessage export_filter(NodeId neighbor,
                                  const bgp::TableMessage& msg) override;
  bool filters_exports() const override { return true; }

  /// Relation class (customer=0 / peer=1 / provider=2) of the neighbor the
  /// current route to `destination` was learned from; 3 if no route.
  int learned_class(NodeId destination) const;

 private:
  bool exportable(NodeId destination, NodeId to_neighbor) const;

  const Relationships* relationships_;
  /// Destinations whose route we have exported, per neighbor — needed to
  /// issue withdrawals when a route becomes non-exportable.
  std::map<NodeId, std::set<NodeId>> exported_;
};

/// Agent factory for bgp::Network.
bgp::AgentFactory make_policy_factory(const Relationships* relationships,
                                      bgp::UpdatePolicy policy);

}  // namespace fpss::policy
