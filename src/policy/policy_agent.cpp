#include "policy/policy_agent.h"

#include <algorithm>

#include "routing/route.h"
#include "util/contract.h"

namespace fpss::policy {

namespace {

/// Preference rank of a relation class: customers first.
int class_rank(Relation relation) {
  switch (relation) {
    case Relation::kCustomer: return 0;
    case Relation::kPeer: return 1;
    case Relation::kProvider: return 2;
  }
  return 3;
}

}  // namespace

PolicyBgpAgent::PolicyBgpAgent(NodeId self, std::size_t node_count,
                               Cost declared_cost, bgp::UpdatePolicy policy,
                               const Relationships* relationships)
    : PlainBgpAgent(self, node_count, declared_cost, policy),
      relationships_(relationships) {
  FPSS_EXPECTS(relationships != nullptr);
}

bool PolicyBgpAgent::reselect_destination(NodeId destination) {
  if (destination == id()) return false;

  int best_class = 3;
  routing::RouteRank best = routing::no_route();
  const bgp::RouteAdvert* best_advert = nullptr;
  for (NodeId a : rib().known_neighbors()) {
    const bgp::RouteAdvert* advert = rib().stored(a, destination);
    if (advert == nullptr) continue;
    if (std::find(advert->path.begin(), advert->path.end(), id()) !=
        advert->path.end())
      continue;  // loop prevention
    if (!relationships_->knows(id(), a)) continue;
    const int cls = class_rank(relationships_->rel(id(), a));
    const Cost step =
        (a == destination) ? Cost::zero() : rib().neighbor_cost(a);
    const routing::RouteRank rank{
        advert->cost + step,
        static_cast<std::uint32_t>(advert->path.size()), a};
    if (cls < best_class || (cls == best_class && rank < best)) {
      best_class = cls;
      best = rank;
      best_advert = advert;
    }
  }

  bgp::SelectedRoute next;
  if (best_advert != nullptr) {
    next.path.reserve(best_advert->path.size() + 1);
    next.path.push_back(id());
    next.path.insert(next.path.end(), best_advert->path.begin(),
                     best_advert->path.end());
    next.cost = best.cost;
    next.node_costs.reserve(best_advert->node_costs.size() + 1);
    next.node_costs.push_back(rib().declared_cost());
    next.node_costs.insert(next.node_costs.end(),
                           best_advert->node_costs.begin(),
                           best_advert->node_costs.end());
    next.next_hop = best.next_hop;
  }
  return rib().force_select(destination, std::move(next));
}

int PolicyBgpAgent::learned_class(NodeId destination) const {
  const bgp::SelectedRoute& route = rib().selected(destination);
  if (destination == id()) return 0;  // own prefix counts as customer-grade
  if (!route.valid()) return 3;
  return class_rank(relationships_->rel(id(), route.next_hop));
}

bool PolicyBgpAgent::exportable(NodeId destination, NodeId to_neighbor) const {
  if (!relationships_->knows(id(), to_neighbor)) return false;
  // To a customer: everything. To a peer or provider: only our own prefix
  // and customer-learned routes (we are paid to carry those).
  if (relationships_->rel(id(), to_neighbor) == Relation::kCustomer)
    return true;
  return learned_class(destination) == 0;
}

bgp::TableMessage PolicyBgpAgent::export_filter(NodeId neighbor,
                                                const bgp::TableMessage& msg) {
  bgp::TableMessage out;
  out.sender = msg.sender;
  out.sender_cost = msg.sender_cost;
  std::set<NodeId>& sent = exported_[neighbor];
  for (const bgp::RouteAdvert& advert : msg.entries) {
    const NodeId j = advert.destination;
    const bool can_export = !advert.is_withdrawal() && exportable(j, neighbor);
    if (can_export) {
      out.entries.push_back(advert);
      sent.insert(j);
    } else if (sent.erase(j) > 0) {
      // Previously exported, now forbidden (or withdrawn): withdraw it.
      bgp::RouteAdvert withdrawal;
      withdrawal.destination = j;
      out.entries.push_back(std::move(withdrawal));
    }
  }
  return out;
}

bgp::AgentFactory make_policy_factory(const Relationships* relationships,
                                      bgp::UpdatePolicy policy) {
  return [relationships, policy](
             NodeId self, std::size_t node_count,
             Cost declared_cost) -> std::unique_ptr<bgp::Agent> {
    return std::make_unique<PolicyBgpAgent>(self, node_count, declared_cost,
                                            policy, relationships);
  };
}

}  // namespace fpss::policy
