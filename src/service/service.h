// RouteService: the long-lived serving layer over the paper's outputs.
//
// The mechanism's product — LCP routes and per-packet prices p^k_ij
// (Theorem 1) — is only useful to an operator if it can be *queried* under
// load while the network keeps changing. RouteService owns one
// pricing::Session plus a background updater thread and a
// ShardedSnapshotStore:
//
//   readers ──► ShardedSnapshotStore::acquire() ──► consistent View
//   updater ──► coalesce queued deltas ──► reconverge once per burst
//           ──► dirty_destinations() ──► PublishPipeline::run
//                 ├─ per-shard export tasks on the thread pool, each shard
//                 │  published through an epoch fence as ITS export lands
//                 └─ incremental checkpoint (base + patch journal) after
//                    readers are on the new epoch
//
// Publication is *incremental* end to end: the session fingerprints each
// destination's sink tree per converged epoch, the export re-extracts only
// the dirty destinations (copy-on-write against the previous snapshot),
// and the store swaps only the shards containing them. A single cost delta
// costs O(changed sink trees), not O(n^2); the rows_reused /
// shards_republished counters quantify it. Whenever the dirty set is
// unknown (first publish, topology generation moved, warm start) the
// service falls back to a full rebuild — never to a guess.
//
// Readers never wait on reconvergence: a query acquires the current
// snapshot (a pointer copy) and serves entirely from flat arrays, so any
// number of threads can call price()/path()/payment() while the updater is
// mid-reconvergence. Staleness is the price: between a submitted delta and
// its publish, readers see the previous converged state — never a partial
// one (the paper's restart semantics make mid-convergence prices
// meaningless, so serving the old epoch is the only sound choice). Every
// reply therefore carries the snapshot version, its publish timestamp, and
// its age, and the counters track the worst staleness ever served.
//
// Queries use the wire-stable service::Request/service::Reply model
// (protocol.h), shared verbatim with the remote front end in src/net — a
// local query() and a remote route_query return bit-identical answers.
//
// A warm start (the snapshot-taking constructor) publishes a previously
// saved snapshot as epoch 0 and serves it immediately; the session's first
// convergence is deferred to the updater and happens lazily when the first
// delta (or republish) arrives. A restarted daemon is thus serving
// stale-but-sound prices within milliseconds instead of after a full
// reconvergence.
//
// Traffic accounting (Sect. 6.4) rides along: charge() records per-packet
// prices into a payments::Ledger at the snapshot's prices, and the totals
// are embedded into the next published snapshot.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "payments/ledger.h"
#include "pricing/session.h"
#include "service/checkpoint.h"
#include "service/pipeline.h"
#include "service/protocol.h"
#include "service/snapshot.h"
#include "service/store.h"
#include "util/mutex.h"
#include "util/table.h"

namespace fpss::service {

struct ServiceConfig {
  pricing::Protocol protocol = pricing::Protocol::kPriceVector;
  bgp::UpdatePolicy update_policy = bgp::UpdatePolicy::kIncremental;
  /// Engine seams (scheduler, compute-phase threads, channel model) for
  /// the owned session.
  bgp::EngineConfig engine;
  /// How reconvergence restarts price state. The default is the paper's
  /// always-correct restart barrier; kIncremental is only sound for the
  /// avoidance-vector protocol under improving events (see
  /// pricing::RestartPolicy).
  pricing::RestartPolicy restart = pricing::RestartPolicy::kRestartBarrier;
  /// Shards of the publication store (clamped to [1, node_count]). A
  /// publish swaps only the shards whose destinations' sink trees changed;
  /// 1 degenerates to the whole-store swap of previous releases.
  std::size_t shards = 1;
  /// Minimum thread-pool width for the publish pipeline's per-shard export
  /// fan-out. 0 (or 1) reuses whatever pool the engine was configured
  /// with; a larger value widens the engine pool (protocol results are
  /// width-invariant) so exports overlap even when the protocol runs
  /// serial.
  unsigned export_threads = 0;
  /// Incremental checkpointing (fpss-snap v4 base + patch journal). The
  /// default (empty directory) disables it.
  CheckpointPolicy checkpoint;
};

class RouteService {
 public:
  /// One topology/cost change, applied asynchronously by the updater.
  struct Delta {
    enum class Kind {
      kCostChange,  ///< node u declares cost
      kAddLink,     ///< link {u, v} comes up
      kRemoveLink,  ///< link {u, v} goes down
      kRepublish,   ///< no topology change; refresh payment totals
    };
    Kind kind = Kind::kRepublish;
    NodeId u = kInvalidNode;
    NodeId v = kInvalidNode;
    Cost cost;

    static Delta cost_change(NodeId node, Cost c) {
      return {Kind::kCostChange, node, kInvalidNode, c};
    }
    static Delta add_link(NodeId a, NodeId b) {
      return {Kind::kAddLink, a, b, Cost::zero()};
    }
    static Delta remove_link(NodeId a, NodeId b) {
      return {Kind::kRemoveLink, a, b, Cost::zero()};
    }
    static Delta republish() { return {}; }
  };

  /// Aggregate read-side counters (monotone except the gauges;
  /// relaxed-atomic maintained).
  struct Counters {
    std::uint64_t queries = 0;   ///< individual query answers produced
    std::uint64_t batches = 0;   ///< query()/single-read calls served
    std::uint64_t total_ns = 0;  ///< wall time summed over batches
    std::uint64_t max_batch_ns = 0;
    /// Worst snapshot age ever observed by a read (gauge, monotone max):
    /// answer-time wall clock minus the served snapshot's publish stamp.
    std::uint64_t max_staleness_ns = 0;
    std::uint64_t publishes = 0;
    std::uint64_t deltas_applied = 0;
    /// Deltas that needed no reconvergence of their own because the
    /// updater coalesced them into another delta of the same burst
    /// (last-writer-wins per node/link; net no-ops dropped).
    std::uint64_t deltas_coalesced = 0;
    std::uint64_t charges = 0;  ///< charge() calls recorded
    // Incremental-publication counters (PR 6). Cumulative over publishes.
    std::uint64_t rows_rebuilt = 0;  ///< destination rows re-extracted
    std::uint64_t rows_reused = 0;   ///< destination rows shared with prev
    /// Shard slots actually swapped across all publishes (<= publishes *
    /// shard count; the gap is the sharding win).
    std::uint64_t shards_republished = 0;
    /// Publishes that fell back to a full rebuild despite a previous
    /// snapshot existing (topology generation moved, dirty tracking had no
    /// usable answer). The unavoidable first build is not counted.
    std::uint64_t full_rebuilds = 0;
    std::uint64_t publish_total_ns = 0;  ///< export+publish wall time summed
    std::uint64_t max_publish_ns = 0;
    // Pipeline + checkpoint counters (PR 7).
    /// High-water mark of per-shard export tasks concurrently in flight
    /// (gauge, monotone max; 0 until a staged publish runs).
    std::uint64_t shard_exports_inflight_max = 0;
    std::uint64_t checkpoints_written = 0;  ///< bases + patch records
    std::uint64_t checkpoint_bytes_written = 0;
    std::uint64_t journal_patches = 0;  ///< per-destination block patches
    std::uint64_t journal_compactions = 0;
  };

  /// Converges the initial network on the calling thread, publishes
  /// snapshot #1, then starts the background updater.
  explicit RouteService(const graph::Graph& g, ServiceConfig config = {});

  /// Warm start: publishes `warm` (a previously saved snapshot of the same
  /// network, typically from load_snapshot()) immediately as epoch 0 and
  /// returns without converging. The first submitted delta (or republish)
  /// triggers the session's initial convergence on the updater thread;
  /// until then readers are served the warm snapshot, whose age_ns makes
  /// the staleness visible. Payment totals embedded in `warm` seed the
  /// ledger, so accounting survives a daemon restart. Precondition:
  /// warm != nullptr and warm->node_count() == g.node_count().
  RouteService(const graph::Graph& g,
               std::shared_ptr<const RouteSnapshot> warm,
               ServiceConfig config = {});

  ~RouteService();

  RouteService(const RouteService&) = delete;
  RouteService& operator=(const RouteService&) = delete;

  std::size_t node_count() const { return node_count_; }

  // --- read side (any thread, wait-free vs. the updater) ------------------

  /// The newest published snapshot — a full image of the latest epoch.
  /// Hold it to answer any number of queries against one consistent epoch.
  std::shared_ptr<const RouteSnapshot> snapshot() const {
    return store_.newest();
  }

  /// Answers a batch against one snapshot acquire (all answers share a
  /// version and a publish stamp) and records batch latency + staleness
  /// into the counters. Malformed requests yield Status::kBadNode /
  /// kBadKind replies — never undefined behavior.
  std::vector<Reply> query(std::span<const Request> batch) const;

  /// Single-read conveniences; each counts as a batch of one. These keep
  /// the raw snapshot conventions (infinite cost when unreachable, zero
  /// price off-path); preconditions as in RouteSnapshot.
  Cost price(NodeId k, NodeId i, NodeId j) const;
  Cost cost(NodeId i, NodeId j) const;
  graph::Path path(NodeId i, NodeId j) const;
  Cost::rep payment(NodeId k) const;

  Counters counters() const;
  /// The counters as a stats-ready table (label/value rows), for the
  /// bench/example reports.
  util::Table counters_table() const;

  // --- traffic accounting -------------------------------------------------

  /// Records `packets` packets i -> j into the ledger at the served
  /// snapshot's prices (Sect. 6.4 counter semantics). Totals reach readers
  /// with the next publish (submit Delta::republish() to force one).
  /// No-op when i cannot currently reach j.
  void charge(NodeId i, NodeId j, std::uint64_t packets)
      FPSS_EXCLUDES(ledger_mutex_);

  /// Flushes owed counters into settled accounts (periodic submission).
  void settle() FPSS_EXCLUDES(ledger_mutex_);

  // --- update side ---------------------------------------------------------

  /// Enqueues deltas for the updater; returns the number accepted (deltas
  /// naming out-of-range nodes are rejected — a remote peer must not be
  /// able to crash the daemon). All deltas accepted in one call are
  /// applied before the resulting publish; the updater coalesces each
  /// drained burst (last-writer-wins per node/link) into one
  /// reconvergence.
  std::size_t submit(Delta delta);
  std::size_t submit(const std::vector<Delta>& deltas)
      FPSS_EXCLUDES(queue_mutex_);

  std::uint64_t publish_count() const { return store_.publish_count(); }
  /// Composite version of the currently served state (the newest
  /// snapshot's version — what every reply in a batch reports).
  std::uint64_t version() const { return store_.version(); }
  std::size_t shard_count() const { return store_.shard_count(); }

  /// Blocks until at least `count` publishes have happened (use
  /// publish_count() + 1 before a submit to await its effect).
  void wait_for_publishes(std::uint64_t count) const
      FPSS_EXCLUDES(queue_mutex_);

  /// Bounded-wait variant for push loops: blocks until publish_count()
  /// exceeds `count` or `timeout_ms` elapses, and returns the current
  /// publish count either way. A subscription pusher polls this in slices
  /// so it can also observe connection teardown between publishes.
  std::uint64_t wait_for_publish_beyond(std::uint64_t count, int timeout_ms)
      const FPSS_EXCLUDES(queue_mutex_);

  /// The sharded publication store — the replication fetch path reads one
  /// export_cut() from it per kSnapshotFetch.
  const ShardedSnapshotStore& store() const { return store_; }

  /// Blocks until the delta queue is empty and everything submitted so far
  /// has been published; returns the served version.
  std::uint64_t drain() FPSS_EXCLUDES(queue_mutex_);

 private:
  void updater_loop();
  /// Coalesces one drained burst and applies it in a single reconvergence;
  /// returns the number of events actually applied.
  std::size_t apply_coalesced(const std::vector<Delta>& batch);
  bool delta_in_range(const Delta& delta) const;
  /// Builds a snapshot from the (converged) session and publishes it.
  void publish_current() FPSS_EXCLUDES(ledger_mutex_, queue_mutex_);
  void count_batch(std::uint64_t queries, std::uint64_t ns) const;
  void note_staleness(std::uint64_t age_ns) const;

  std::size_t node_count_;
  ServiceConfig config_;
  /// Owned network/engine. Touched only by the constructor (initial
  /// convergence, before the updater exists) and then by the updater
  /// thread — never by readers.
  pricing::Session session_;
  /// Published versions are version_base_ + converged_epochs(): zero for a
  /// cold start, the warm snapshot's version for a warm start (so versions
  /// keep increasing across a restart).
  std::uint64_t version_base_ = 0;
  /// False until the session's first convergence has run. Always true for
  /// a cold start; for a warm start the updater flips it before applying
  /// the first burst.
  bool session_converged_ = false;
  ShardedSnapshotStore store_;
  /// The snapshot the last *session export* produced, and the converged
  /// epoch it captured — the copy-on-write base of the next incremental
  /// export. Touched only by the updater (and the constructor). Null until
  /// the first export: a warm-started service serves the loaded snapshot
  /// but never CoWs against it (its blocks came from disk, not from this
  /// session), so the first real publish is a full build.
  std::shared_ptr<const RouteSnapshot> last_published_;
  std::uint64_t last_export_epoch_ = 0;
  /// Warm-start digest-adoption donor: the disk snapshot currently filling
  /// every store slot. Consumed by the first real publish (the pipeline
  /// adopts its unchanged blocks so clean shards need no swap), then null.
  std::shared_ptr<const RouteSnapshot> warm_base_;
  /// Non-null iff config_.checkpoint names a directory. Updater-only.
  std::unique_ptr<CheckpointWriter> checkpoint_;

  /// Held across PublishPipeline::run (the ledger totals are embedded into
  /// the snapshot mid-export), so charge()/settle() serialize against the
  /// embed, never against readers. Never nested with queue_mutex_.
  mutable util::Mutex ledger_mutex_;
  payments::Ledger ledger_ FPSS_GUARDED_BY(ledger_mutex_);

  /// Lock order: queue_mutex_ before store_.mutex_ — the publish waiters
  /// call store_.publish_count() while holding queue_mutex_. The reverse
  /// nesting never happens (the store calls nothing of ours).
  mutable util::Mutex queue_mutex_;
  util::CondVar queue_cv_;           ///< wakes the updater
  mutable util::CondVar publish_cv_;  ///< wakes drain()/waiters
  std::vector<Delta> queue_ FPSS_GUARDED_BY(queue_mutex_);
  bool stop_ FPSS_GUARDED_BY(queue_mutex_) = false;
  bool updater_busy_ FPSS_GUARDED_BY(queue_mutex_) = false;

  // Read-side counters: relaxed atomics, written from any reader thread.
  mutable std::atomic<std::uint64_t> queries_{0};
  mutable std::atomic<std::uint64_t> batches_{0};
  mutable std::atomic<std::uint64_t> total_ns_{0};
  mutable std::atomic<std::uint64_t> max_batch_ns_{0};
  mutable std::atomic<std::uint64_t> max_staleness_ns_{0};
  std::atomic<std::uint64_t> deltas_applied_{0};
  std::atomic<std::uint64_t> deltas_coalesced_{0};
  std::atomic<std::uint64_t> charges_{0};
  // Publish-side counters: written only by the updater (and the
  // constructor's first publish), read concurrently by counters().
  std::atomic<std::uint64_t> rows_rebuilt_{0};
  std::atomic<std::uint64_t> rows_reused_{0};
  std::atomic<std::uint64_t> shards_republished_{0};
  std::atomic<std::uint64_t> full_rebuilds_{0};
  std::atomic<std::uint64_t> publish_total_ns_{0};
  std::atomic<std::uint64_t> max_publish_ns_{0};
  std::atomic<std::uint64_t> shard_exports_inflight_max_{0};
  std::atomic<std::uint64_t> checkpoints_written_{0};
  std::atomic<std::uint64_t> checkpoint_bytes_written_{0};
  std::atomic<std::uint64_t> journal_patches_{0};
  std::atomic<std::uint64_t> journal_compactions_{0};

  std::thread updater_;  ///< last member: joined before state tears down
};

}  // namespace fpss::service
