// service::QueryBackend: one call surface for every way to reach routes.
//
// The repo grew three near-duplicate client surfaces: an in-process
// RouteService, a replica::ReplicaService mirroring one over the wire,
// and a net::RouteClient talking to either's daemon. Tools and e2e
// checks (route_query, the example self-tests, the chain tests) want to
// be written once and pointed at any of the three. QueryBackend is that
// seam: queries, writes with the publish-clock acknowledgment, counters,
// and the read-your-write wait, each reporting failure as a value (an
// in-process backend simply never fails).
//
// Adapters: ServiceQueryBackend (here, over RouteService),
// net::RemoteQueryBackend (over a RouteClient connection), and
// replica::ReplicaQueryBackend (over a ReplicaService). They live with
// their wrapped types because the library layering is service -> net ->
// replica and the interface must sit at the bottom.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "service/service.h"

namespace fpss::service {

/// A failed outcome carries a non-empty `error`; everything else is
/// meaningful only when `error` is empty.
struct QueryOutcome {
  std::string error;
  std::vector<Reply> replies;
  bool ok() const { return error.empty(); }
};

/// Write acknowledgment. `publish_count` is the primary's publish clock
/// after the write published — wait_for_publish_beyond(publish_count - 1)
/// against the same backend then observes the write, even when the
/// backend is a forwarding replica several hops below the primary.
struct SubmitAck {
  std::string error;
  std::uint64_t accepted = 0;
  std::uint64_t publish_count = 0;
  bool ok() const { return error.empty(); }
};

struct CountersOutcome {
  std::string error;
  RouteService::Counters counters;
  bool ok() const { return error.empty(); }
};

class QueryBackend {
 public:
  virtual ~QueryBackend() = default;

  virtual QueryOutcome query_batch(std::span<const Request> batch) = 0;
  /// Applies (or forwards) deltas and publishes before acknowledging.
  virtual SubmitAck submit_deltas(
      std::span<const RouteService::Delta> deltas) = 0;
  virtual CountersOutcome counters() = 0;
  /// Blocks until the backend's publish clock exceeds `count` or the
  /// timeout elapses; returns the clock at return.
  virtual std::uint64_t wait_for_publish_beyond(std::uint64_t count,
                                                int timeout_ms) = 0;

  /// Conveniences over the virtuals.
  QueryOutcome query_one(const Request& request) {
    return query_batch({&request, 1});
  }
  SubmitAck submit_delta(const RouteService::Delta& delta) {
    return submit_deltas({&delta, 1});
  }
};

/// The in-process adapter: a RouteService behind the QueryBackend seam.
/// Writes drain before acknowledging so the ack's publish count is
/// post-publish, matching the wire contract.
class ServiceQueryBackend final : public QueryBackend {
 public:
  explicit ServiceQueryBackend(RouteService& service) : service_(service) {}

  QueryOutcome query_batch(std::span<const Request> batch) override;
  SubmitAck submit_deltas(
      std::span<const RouteService::Delta> deltas) override;
  CountersOutcome counters() override;
  std::uint64_t wait_for_publish_beyond(std::uint64_t count,
                                        int timeout_ms) override;

 private:
  RouteService& service_;
};

}  // namespace fpss::service
