// The per-shard snapshot replication codec: what a kSnapshotChunk frame
// carries and how a replica reassembles a serving-grade RouteSnapshot
// from a stream of them.
//
// A fetch response is a sequence of chunk payloads (each one travels in
// its own length/FNV-guarded fpss-wire frame):
//
//   data chunk  := kind:u8(1) | snapshot_version:u64 | n:u64
//                  | shard_count:u32 | shard_index:u32 | shard_version:u64
//                  | dest_begin:u32 | dest_count:u32
//                  | dest_count x block            (fpss-snap v4 encoding)
//   final chunk := kind:u8(2) | snapshot_version:u64 | n:u64
//                  | shard_count:u32 | graph_version:u64
//                  | published_at_ns:u64 | checksum:u64
//                  | node_cost[n]:i64 | owed[n]:i64 | settled[n]:i64
//                  | shard_versions[shard_count]:u64
//                  | sent_count:u32 | sent_count x shard_index:u32
//
// The server sends one or more data chunks per *dirty* shard (a shard
// whose destination rows outgrow kChunkBudgetBytes is split across
// frames) and exactly one final chunk. The final chunk carries the
// server's full per-shard version vector — the negotiation state the
// replica echoes back in its next kSnapshotFetch — plus the explicit list
// of shards this response patched and the root checksum the reassembled
// snapshot must reproduce.
//
// Assembler invariants (the torn-shard guarantees the fuzz tests pin):
//   * every payload is validated structurally before any block is kept —
//     a truncated or corrupt chunk poisons the whole assembly;
//   * finish() fails unless every destination of every announced shard
//     arrived exactly once and nothing outside those shards arrived;
//   * the sealed snapshot's checksum must equal the server-declared one —
//     so a replica either publishes exactly the primary's bytes or
//     publishes nothing. There is no partial-shard escape hatch.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "service/snapshot.h"
#include "util/types.h"

namespace fpss::service {

struct ReplicationCodec {
  /// Chunk kind tags (first payload byte; wire-reserved).
  static constexpr std::uint8_t kDataChunk = 1;
  static constexpr std::uint8_t kFinalChunk = 2;

  /// Soft cap on block bytes per data chunk. A chunk always carries at
  /// least one destination, so a pathological single block may exceed it,
  /// but never by more than one block — callers size their wire limits
  /// for max(budget, one block).
  static constexpr std::size_t kChunkBudgetBytes = 256u << 10;

  /// Encodes shard `shard` of `snap` (destinations [shard * shard_size,
  /// min(n, (shard+1) * shard_size))) as one or more data-chunk payloads.
  /// `shard_version` is the store's version for that slot (echoed to the
  /// replica for its next negotiation).
  static std::vector<std::string> encode_shard(
      const RouteSnapshot& snap, std::size_t shard, std::size_t shard_size,
      std::uint32_t shard_count, std::uint64_t shard_version,
      std::size_t budget_bytes = kChunkBudgetBytes);

  /// Encodes the terminal payload: globals, the server's shard-version
  /// vector, and the indices of the shards this response sent.
  static std::string encode_final(const RouteSnapshot& snap,
                                  std::span<const std::uint64_t> shard_versions,
                                  std::span<const std::uint32_t> shards_sent);

  /// Reassembles a snapshot from fed chunk payloads.
  class Assembler {
   public:
    /// `base`: the replica's currently served snapshot; clean shards keep
    /// its blocks (copy-on-write catch-up). Null for a cold bootstrap, in
    /// which case the response must cover every shard. `adopt`: optional
    /// digest-adoption donor (e.g. a checkpoint-loaded snapshot): a parsed
    /// block whose digest matches the donor's is swapped for the donor's
    /// pointer, so a warm bootstrap shares memory with the local image
    /// exactly like the publish pipeline's warm-start adoption.
    explicit Assembler(std::shared_ptr<const RouteSnapshot> base = nullptr,
                       std::shared_ptr<const RouteSnapshot> adopt = nullptr);

    /// Feeds one chunk payload (in arrival order; the final chunk must be
    /// last). Returns false — and poisons the assembly — on any structural
    /// violation; error() says why.
    bool feed(std::string_view payload);

    /// True once the final chunk has been accepted.
    bool finished() const { return final_seen_; }

    struct Result {
      std::shared_ptr<const RouteSnapshot> snapshot;  ///< null on failure
      /// The server's per-shard versions (what the next fetch should send).
      std::vector<std::uint64_t> shard_versions;
      /// Shards this response patched (sorted, unique).
      std::vector<std::uint32_t> shards_sent;
      std::uint64_t blocks_adopted = 0;  ///< blocks shared via base/adopt digest
      std::uint64_t shard_count = 0;     ///< server's shard layout
      std::string error;
      bool ok() const { return snapshot != nullptr; }
    };

    /// Seals, checksum-verifies, and returns the assembled snapshot.
    /// Fails (null snapshot + error) on an incomplete or inconsistent
    /// stream. Call once, after the final chunk.
    Result finish();

    const std::string& error() const { return error_; }

   private:
    bool fail(const std::string& why);

    std::shared_ptr<const RouteSnapshot> base_;
    std::shared_ptr<const RouteSnapshot> adopt_;
    bool final_seen_ = false;
    bool poisoned_ = false;
    bool header_bound_ = false;  ///< version/n/shard_count latched
    std::uint64_t version_ = 0;
    std::uint64_t n_ = 0;
    std::uint64_t shard_count_ = 0;
    std::uint64_t graph_version_ = 0;
    std::uint64_t published_at_ns_ = 0;
    std::uint64_t want_checksum_ = 0;
    std::uint64_t blocks_adopted_ = 0;
    std::vector<Cost> node_cost_;
    std::vector<Cost::rep> owed_;
    std::vector<Cost::rep> settled_;
    std::vector<std::uint64_t> shard_versions_;
    std::vector<std::uint32_t> shards_sent_;
    /// (shard, version) pairs announced by data chunks — cross-checked
    /// against the final chunk's vector in finish().
    std::vector<std::pair<std::uint32_t, std::uint64_t>> shard_version_seen_;
    /// Parsed blocks by destination; null = not received.
    std::vector<RouteSnapshot::BlockPtr> received_;
    std::string error_;
  };
};

}  // namespace fpss::service
