#include "service/snapshot.h"

#include <cstring>
#include <fstream>
#include <sstream>

#include "bgp/rib.h"
#include "graph/graph.h"
#include "pricing/pricing_agent.h"
#include "pricing/session.h"
#include "util/binio.h"
#include "util/checksum.h"
#include "util/clock.h"
#include "util/contract.h"
#include "util/thread_pool.h"

namespace fpss::service {

// Costs are serialized and checksummed as int64 via util::encode_cost:
// -1 encodes +infinity (finite costs are non-negative by construction).
using util::append_i64;
using util::append_u32;
using util::append_u64;
using util::encode_cost;

std::uint64_t RouteSnapshot::DestinationBlock::compute_digest() const {
  util::Fnv1a64 fnv;
  for (NodeId v : next_hop) fnv.u32(v);
  for (Cost c : cost) fnv.i64(encode_cost(c));
  for (std::uint64_t o : offset) fnv.u64(o);
  for (NodeId v : transit) fnv.u32(v);
  for (Cost c : price) fnv.i64(encode_cost(c));
  return fnv.digest();
}

RouteSnapshot::BlockPtr RouteSnapshot::extract_destination(
    const pricing::Session& session, NodeId j, std::size_t n) {
  auto block = std::make_shared<DestinationBlock>();
  block->next_hop.assign(n, kInvalidNode);
  block->cost.assign(n, Cost::infinity());
  block->offset.reserve(n + 1);
  block->offset.push_back(0);
  for (NodeId i = 0; i < n; ++i) {
    if (i == j) {
      block->cost[i] = Cost::zero();
      block->offset.push_back(block->transit.size());
      continue;
    }
    // One agent lookup per source, not one per CSR entry: the selected
    // route and every price on it come from the same agent.
    const pricing::PricingAgent& agent = session.agent(i);
    const bgp::SelectedRoute& route = agent.selected(j);
    if (route.valid()) {
      block->cost[i] = route.cost;
      block->next_hop[i] = route.next_hop;
      // The row holds the path intermediates in order; p^k_ij for each.
      for (std::size_t h = 1; h + 1 < route.path.size(); ++h) {
        const NodeId k = route.path[h];
        block->transit.push_back(k);
        block->price.push_back(agent.price(j, k));
      }
    }
    block->offset.push_back(block->transit.size());
  }
  block->digest = block->compute_digest();
  return block;
}

void RouteSnapshot::finish(const payments::Ledger* ledger) {
  if (ledger != nullptr) {
    FPSS_EXPECTS(ledger->node_count() == n_);
    owed_ = ledger->owed_all();
    settled_ = ledger->settled_all();
  } else {
    owed_.assign(n_, 0);
    settled_.assign(n_, 0);
  }
  seal();
}

void RouteSnapshot::seal() {
  total_entries_ = 0;
  for (const BlockPtr& block : blocks_) total_entries_ += block->transit.size();
  checksum_ = compute_checksum();
}

std::shared_ptr<const RouteSnapshot> RouteSnapshot::from_session(
    const pricing::Session& session, std::uint64_t version,
    const payments::Ledger* ledger, util::ThreadPool* pool) {
  FPSS_EXPECTS(session.engine().stats().converged);
  const graph::Graph& g = session.network().topology();
  const std::size_t n = g.node_count();

  auto snap = std::shared_ptr<RouteSnapshot>(new RouteSnapshot);
  snap->n_ = n;
  snap->version_ = version;
  snap->graph_version_ = g.version();
  snap->published_at_ns_ = util::wall_clock_ns();
  snap->node_cost_.reserve(n);
  for (NodeId v = 0; v < n; ++v) snap->node_cost_.push_back(g.cost(v));
  snap->blocks_.resize(n);
  const auto build = [&](std::size_t j) {
    snap->blocks_[j] =
        extract_destination(session, static_cast<NodeId>(j), n);
  };
  if (pool != nullptr && n > 1) {
    pool->parallel_for(n, build);
  } else {
    for (std::size_t j = 0; j < n; ++j) build(j);
  }
  snap->finish(ledger);
  return snap;
}

std::shared_ptr<const RouteSnapshot> RouteSnapshot::from_session_incremental(
    const std::shared_ptr<const RouteSnapshot>& prev,
    const pricing::Session& session, std::uint64_t version,
    std::span<const NodeId> dirty, const payments::Ledger* ledger,
    util::ThreadPool* pool, SnapshotExportStats* stats) {
  FPSS_EXPECTS(session.engine().stats().converged);
  FPSS_EXPECTS(prev != nullptr);
  const graph::Graph& g = session.network().topology();
  const std::size_t n = g.node_count();
  FPSS_EXPECTS(prev->node_count() == n);

  SnapshotExportStats local;
  if (prev->graph_version() != g.version()) {
    // prev's rows describe a different topology generation; per-row sharing
    // would couple correctness to the dirty set's accuracy across a graph
    // rewrite, so rebuild everything (the rare, already-expensive case).
    auto snap = from_session(session, version, ledger, pool);
    local.rows_rebuilt = n;
    local.full_rebuild = true;
    if (stats != nullptr) *stats = local;
    return snap;
  }

  auto snap = std::shared_ptr<RouteSnapshot>(new RouteSnapshot);
  snap->n_ = n;
  snap->version_ = version;
  snap->graph_version_ = g.version();
  snap->published_at_ns_ = util::wall_clock_ns();
  snap->node_cost_.reserve(n);
  for (NodeId v = 0; v < n; ++v) snap->node_cost_.push_back(g.cost(v));
  snap->blocks_ = prev->blocks_;  // share everything, then overwrite dirty

  // Dedup defensively (a union of per-epoch dirty sets may repeat ids) so
  // the parallel loop owns each slot exactly once.
  std::vector<NodeId> rebuild;
  rebuild.reserve(dirty.size());
  std::vector<bool> seen(n, false);
  for (const NodeId j : dirty) {
    FPSS_EXPECTS(j < n);
    if (!seen[j]) {
      seen[j] = true;
      rebuild.push_back(j);
    }
  }
  const auto build = [&](std::size_t t) {
    snap->blocks_[rebuild[t]] = extract_destination(session, rebuild[t], n);
  };
  if (pool != nullptr && rebuild.size() > 1) {
    pool->parallel_for(rebuild.size(), build);
  } else {
    for (std::size_t t = 0; t < rebuild.size(); ++t) build(t);
  }
  snap->finish(ledger);

  local.rows_rebuilt = rebuild.size();
  local.rows_reused = n - rebuild.size();
  if (stats != nullptr) *stats = local;
  return snap;
}

std::shared_ptr<const RouteSnapshot> RouteSnapshot::cow_replace(
    const RouteSnapshot& prev, const RouteSnapshot& donor,
    std::span<const NodeId> take, std::uint64_t version) {
  const std::size_t n = prev.n_;
  FPSS_EXPECTS(donor.n_ == n);
  auto snap = std::shared_ptr<RouteSnapshot>(new RouteSnapshot);
  snap->n_ = n;
  snap->version_ = version;
  snap->graph_version_ = donor.graph_version_;
  snap->published_at_ns_ = donor.published_at_ns_;
  snap->node_cost_ = donor.node_cost_;
  snap->blocks_ = prev.blocks_;
  for (const NodeId j : take) {
    FPSS_EXPECTS(j < n && donor.blocks_[j] != nullptr);
    snap->blocks_[j] = donor.blocks_[j];
  }
  snap->owed_ = donor.owed_;
  snap->settled_ = donor.settled_;
  snap->seal();
  return snap;
}

graph::Path RouteSnapshot::path(NodeId i, NodeId j) const {
  graph::Path p;
  if (i == j) return {i};
  if (!reachable(i, j)) return p;
  const DestinationBlock& block = *blocks_[j];
  p.reserve(block.offset[i + 1] - block.offset[i] + 2);
  p.push_back(i);
  for (std::uint64_t e = block.offset[i]; e < block.offset[i + 1]; ++e)
    p.push_back(block.transit[e]);
  p.push_back(j);
  return p;
}

Cost RouteSnapshot::price(NodeId k, NodeId i, NodeId j) const {
  if (i == j) return Cost::zero();
  const DestinationBlock& block = *blocks_[j];
  for (std::uint64_t e = block.offset[i]; e < block.offset[i + 1]; ++e)
    if (block.transit[e] == k) return block.price[e];
  return Cost::zero();
}

Cost RouteSnapshot::pair_payment(NodeId i, NodeId j) const {
  Cost total = Cost::zero();
  if (i == j) return total;
  const DestinationBlock& block = *blocks_[j];
  for (std::uint64_t e = block.offset[i]; e < block.offset[i + 1]; ++e)
    total += block.price[e];
  return total;
}

payments::PriceFn RouteSnapshot::price_fn() const {
  return [this](NodeId k, NodeId i, NodeId j) { return price(k, i, j); };
}

std::uint64_t RouteSnapshot::compute_checksum() const {
  util::Fnv1a64 fnv;
  fnv.u64(n_);
  fnv.u64(version_);
  fnv.u64(graph_version_);
  fnv.u64(published_at_ns_);
  fnv.u64(total_entries_);
  for (Cost c : node_cost_) fnv.i64(encode_cost(c));
  // One word per destination: reused blocks cost O(1) here, which is what
  // keeps incremental export time proportional to the dirty set.
  for (const BlockPtr& block : blocks_) fnv.u64(block->digest);
  for (Cost::rep r : owed_) fnv.i64(r);
  for (Cost::rep r : settled_) fnv.i64(r);
  return fnv.digest();
}

std::uint64_t RouteSnapshot::content_checksum() const {
  util::Fnv1a64 fnv;
  fnv.u64(n_);
  fnv.u64(graph_version_);
  fnv.u64(total_entries_);
  for (Cost c : node_cost_) fnv.i64(encode_cost(c));
  for (const BlockPtr& block : blocks_) fnv.u64(block->digest);
  for (Cost::rep r : owed_) fnv.i64(r);
  for (Cost::rep r : settled_) fnv.i64(r);
  return fnv.digest();
}

bool RouteSnapshot::self_check() const {
  if (checksum_ != compute_checksum()) return false;
  if (node_cost_.size() != n_ || blocks_.size() != n_ || owed_.size() != n_ ||
      settled_.size() != n_)
    return false;
  std::uint64_t entries = 0;
  for (NodeId j = 0; j < n_; ++j) {
    if (blocks_[j] == nullptr) return false;
    const DestinationBlock& block = *blocks_[j];
    if (block.next_hop.size() != n_ || block.cost.size() != n_ ||
        block.offset.size() != n_ + 1 ||
        block.transit.size() != block.price.size())
      return false;
    if (block.offset.front() != 0 ||
        block.offset.back() != block.transit.size())
      return false;
    if (block.digest != block.compute_digest()) return false;
    entries += block.transit.size();
    for (NodeId i = 0; i < n_; ++i) {
      const std::uint64_t begin = block.offset[i];
      const std::uint64_t end = block.offset[i + 1];
      if (begin > end) return false;
      if (i == j) {
        if (begin != end || block.cost[i] != Cost::zero()) return false;
        continue;
      }
      if (block.cost[i].is_infinite()) {
        if (begin != end || block.next_hop[i] != kInvalidNode) return false;
        continue;
      }
      // c(i,j) is by definition the sum of the declared costs of the path
      // intermediates — the row must reproduce it, and the stored next hop
      // must be the first node after i on that path.
      Cost row_cost = Cost::zero();
      for (std::uint64_t e = begin; e < end; ++e) {
        if (block.transit[e] >= n_) return false;
        row_cost += node_cost_[block.transit[e]];
      }
      if (row_cost != block.cost[i]) return false;
      const NodeId hop = begin < end ? block.transit[begin] : j;
      if (block.next_hop[i] != hop) return false;
    }
  }
  return entries == total_entries_;
}

// --- binary persistence ----------------------------------------------------

namespace {

constexpr char kMagic[8] = {'F', 'P', 'S', 'S', 'S', 'N', 'P', '1'};
// v3 switched the header digest to the hierarchical per-destination scheme
// (see snapshot.h); v4 keeps the payload layout but marks the
// incremental-checkpoint era — a v4 base may carry a patch-journal sidecar
// whose header binds to this file's checksum (service/checkpoint.h).
constexpr std::uint64_t kFormatVersion = 4;

using Reader = util::BinReader;

SnapshotLoadResult load_fail(std::string message) {
  SnapshotLoadResult result;
  result.error = std::move(message);
  return result;
}

}  // namespace

// Friend of RouteSnapshot: turns the private blocks into the flat,
// destination-major payload image and back.
struct SnapshotCodec {
  static std::string payload(const RouteSnapshot& s) {
    std::string out;
    const std::size_t n = s.n_;
    const std::size_t entries = s.total_entries_;
    out.reserve(8 * (5 + n + n * n + n * n + 1 + entries + 2 * n) +
                4 * (n * n + entries));
    append_u64(out, n);
    append_u64(out, s.version_);
    append_u64(out, s.graph_version_);
    append_u64(out, s.published_at_ns_);
    append_u64(out, entries);
    for (Cost c : s.node_cost_) append_i64(out, encode_cost(c));
    for (const auto& block : s.blocks_)
      for (NodeId v : block->next_hop) append_u32(out, v);
    for (const auto& block : s.blocks_)
      for (Cost c : block->cost) append_i64(out, encode_cost(c));
    // The global CSR fence: block-local offsets rebased onto one running
    // entry count, exactly the flat layout v2 wrote.
    std::uint64_t base = 0;
    append_u64(out, 0);
    for (const auto& block : s.blocks_) {
      for (std::size_t i = 1; i <= n; ++i)
        append_u64(out, base + block->offset[i]);
      base += block->transit.size();
    }
    for (const auto& block : s.blocks_)
      for (NodeId v : block->transit) append_u32(out, v);
    for (const auto& block : s.blocks_)
      for (Cost c : block->price) append_i64(out, encode_cost(c));
    for (Cost::rep r : s.owed_) append_i64(out, r);
    for (Cost::rep r : s.settled_) append_i64(out, r);
    return out;
  }

  static SnapshotLoadResult parse(const std::string& payload,
                                  std::uint64_t stored_checksum) {
    Reader in{payload};
    auto snap = std::shared_ptr<RouteSnapshot>(new RouteSnapshot);
    const std::uint64_t n64 = in.u64();
    // A snapshot's flat arrays are n*n; cap n so the size math cannot
    // overflow and a corrupted header cannot trigger a huge allocation.
    if (n64 > (1u << 20)) return load_fail("implausible node count");
    const std::size_t n = static_cast<std::size_t>(n64);
    snap->n_ = n;
    snap->version_ = in.u64();
    snap->graph_version_ = in.u64();
    snap->published_at_ns_ = in.u64();
    const std::uint64_t entries = in.u64();
    if (in.fail || entries > payload.size())
      return load_fail("truncated payload");
    // Exact payload arithmetic (see SnapshotCodec::payload) before any
    // reserve(): a corrupted header must not trigger a giant allocation.
    const std::uint64_t need =
        48 + 24 * n64 + 20 * n64 * n64 + 12 * entries;
    if (need != payload.size()) return load_fail("payload size mismatch");

    bool bad_cost = false;
    const auto read_cost = [&in, &bad_cost] {
      const std::int64_t raw = in.i64();
      if (in.fail || raw == util::kInfCostWire) return Cost::infinity();
      if (raw < 0 || raw > Cost::kMaxFinite) {
        bad_cost = true;
        return Cost::infinity();
      }
      return Cost{raw};
    };
    snap->node_cost_.reserve(n);
    for (std::size_t v = 0; v < n; ++v)
      snap->node_cost_.push_back(read_cost());

    std::vector<std::shared_ptr<RouteSnapshot::DestinationBlock>> blocks;
    blocks.reserve(n);
    for (std::size_t j = 0; j < n; ++j) {
      auto block = std::make_shared<RouteSnapshot::DestinationBlock>();
      block->next_hop.reserve(n);
      block->cost.reserve(n);
      block->offset.reserve(n + 1);
      blocks.push_back(std::move(block));
    }
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t i = 0; i < n; ++i)
        blocks[j]->next_hop.push_back(in.u32());
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t i = 0; i < n; ++i)
        blocks[j]->cost.push_back(read_cost());
    // Global offsets, validated monotone and in range before the entry
    // arrays are sliced against them.
    std::vector<std::uint64_t> offsets;
    offsets.reserve(n * n + 1);
    for (std::size_t s = 0; s < n * n + 1; ++s) {
      const std::uint64_t o = in.u64();
      if (!offsets.empty() && !in.fail && (o < offsets.back() || o > entries))
        return load_fail("price offsets not monotone");
      offsets.push_back(o);
    }
    if (!in.fail && (offsets.front() != 0 || offsets.back() != entries))
      return load_fail("price offsets out of range");
    std::vector<NodeId> transit;
    transit.reserve(entries);
    for (std::uint64_t e = 0; e < entries; ++e) transit.push_back(in.u32());
    std::vector<Cost> price;
    price.reserve(entries);
    for (std::uint64_t e = 0; e < entries; ++e) price.push_back(read_cost());
    snap->owed_.reserve(n);
    for (std::size_t v = 0; v < n; ++v) snap->owed_.push_back(in.i64());
    snap->settled_.reserve(n);
    for (std::size_t v = 0; v < n; ++v) snap->settled_.push_back(in.i64());

    if (in.fail) return load_fail("truncated payload");
    if (bad_cost) return load_fail("cost value out of range");
    if (in.pos != payload.size()) return load_fail("trailing bytes");

    // Slice the flat arrays into per-destination blocks (local offsets).
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint64_t lo = offsets[j * n];
      const std::uint64_t hi = offsets[(j + 1) * n];
      for (std::size_t i = 0; i <= n; ++i)
        blocks[j]->offset.push_back(offsets[j * n + i] - lo);
      blocks[j]->transit.assign(
          transit.begin() + static_cast<std::ptrdiff_t>(lo),
          transit.begin() + static_cast<std::ptrdiff_t>(hi));
      blocks[j]->price.assign(
          price.begin() + static_cast<std::ptrdiff_t>(lo),
          price.begin() + static_cast<std::ptrdiff_t>(hi));
      blocks[j]->digest = blocks[j]->compute_digest();
      snap->blocks_.push_back(std::move(blocks[j]));
    }
    snap->total_entries_ = entries;

    snap->checksum_ = snap->compute_checksum();
    if (snap->checksum_ != stored_checksum) {
      std::ostringstream msg;
      msg << "checksum mismatch (stored " << stored_checksum << " != computed "
          << snap->checksum_ << ")";
      return load_fail(msg.str());
    }
    if (!snap->self_check())
      return load_fail("structural validation failed");

    SnapshotLoadResult result;
    result.snapshot = std::move(snap);
    return result;
  }
};

SnapshotSaveResult save_snapshot(const RouteSnapshot& snapshot,
                                 const std::string& path) {
  SnapshotSaveResult result;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    result.error = "cannot open '" + path + "' for writing";
    return result;
  }
  const std::string payload = SnapshotCodec::payload(snapshot);
  std::string header;
  header.append(kMagic, sizeof(kMagic));
  append_u64(header, kFormatVersion);
  append_u64(header, payload.size());
  append_u64(header, snapshot.checksum());
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  out.flush();
  if (!out)
    result.error = "write to '" + path + "' failed";
  else
    result.bytes = header.size() + payload.size();
  return result;
}

SnapshotLoadResult load_snapshot_bytes(std::string_view bytes) {
  constexpr std::size_t kHeaderSize = sizeof(kMagic) + 3 * 8;
  if (bytes.size() < kHeaderSize) return load_fail("file too short");
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
    return load_fail("bad magic (not an fpss-snap file)");
  const std::string image(bytes);
  Reader header{image, sizeof(kMagic)};
  const std::uint64_t format = header.u64();
  if (format != kFormatVersion)
    return load_fail("unsupported format version " + std::to_string(format));
  const std::uint64_t payload_size = header.u64();
  const std::uint64_t stored_checksum = header.u64();
  if (bytes.size() - kHeaderSize != payload_size)
    return load_fail("payload length mismatch");
  return SnapshotCodec::parse(image.substr(kHeaderSize), stored_checksum);
}

SnapshotLoadResult load_snapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return load_fail("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return load_snapshot_bytes(buffer.str());
}

}  // namespace fpss::service
