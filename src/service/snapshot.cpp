#include "service/snapshot.h"

#include <cstring>
#include <fstream>
#include <sstream>

#include "bgp/rib.h"
#include "graph/graph.h"
#include "pricing/session.h"
#include "util/binio.h"
#include "util/checksum.h"
#include "util/clock.h"
#include "util/contract.h"

namespace fpss::service {

// Costs are serialized and checksummed as int64 via util::encode_cost:
// -1 encodes +infinity (finite costs are non-negative by construction).
using util::append_i64;
using util::append_u32;
using util::append_u64;
using util::encode_cost;

std::shared_ptr<const RouteSnapshot> RouteSnapshot::from_session(
    const pricing::Session& session, std::uint64_t version,
    const payments::Ledger* ledger) {
  FPSS_EXPECTS(session.engine().stats().converged);
  const graph::Graph& g = session.network().topology();
  const std::size_t n = g.node_count();

  auto snap = std::shared_ptr<RouteSnapshot>(new RouteSnapshot);
  snap->n_ = n;
  snap->version_ = version;
  snap->graph_version_ = g.version();
  snap->published_at_ns_ = util::wall_clock_ns();
  snap->node_cost_.reserve(n);
  for (NodeId v = 0; v < n; ++v) snap->node_cost_.push_back(g.cost(v));
  snap->next_hop_.assign(n * n, kInvalidNode);
  snap->cost_.assign(n * n, Cost::infinity());
  snap->price_offset_.reserve(n * n + 1);
  snap->price_offset_.push_back(0);

  for (NodeId j = 0; j < n; ++j) {
    for (NodeId i = 0; i < n; ++i) {
      const std::size_t slot = snap->idx(i, j);
      if (i == j) {
        snap->cost_[slot] = Cost::zero();
        snap->price_offset_.push_back(snap->transit_.size());
        continue;
      }
      const bgp::SelectedRoute& route = session.route(i, j);
      if (route.valid()) {
        snap->cost_[slot] = route.cost;
        snap->next_hop_[slot] = route.next_hop;
        // The row holds the path intermediates in order; p^k_ij for each.
        for (std::size_t h = 1; h + 1 < route.path.size(); ++h) {
          const NodeId k = route.path[h];
          snap->transit_.push_back(k);
          snap->price_.push_back(session.price(k, i, j));
        }
      }
      snap->price_offset_.push_back(snap->transit_.size());
    }
  }

  if (ledger != nullptr) {
    FPSS_EXPECTS(ledger->node_count() == n);
    snap->owed_ = ledger->owed_all();
    snap->settled_ = ledger->settled_all();
  } else {
    snap->owed_.assign(n, 0);
    snap->settled_.assign(n, 0);
  }
  snap->checksum_ = snap->compute_checksum();
  return snap;
}

graph::Path RouteSnapshot::path(NodeId i, NodeId j) const {
  graph::Path p;
  if (i == j) return {i};
  if (!reachable(i, j)) return p;
  const std::size_t slot = idx(i, j);
  p.reserve(price_offset_[slot + 1] - price_offset_[slot] + 2);
  p.push_back(i);
  for (std::uint64_t e = price_offset_[slot]; e < price_offset_[slot + 1]; ++e)
    p.push_back(transit_[e]);
  p.push_back(j);
  return p;
}

Cost RouteSnapshot::price(NodeId k, NodeId i, NodeId j) const {
  if (i == j) return Cost::zero();
  const std::size_t slot = idx(i, j);
  for (std::uint64_t e = price_offset_[slot]; e < price_offset_[slot + 1]; ++e)
    if (transit_[e] == k) return price_[e];
  return Cost::zero();
}

Cost RouteSnapshot::pair_payment(NodeId i, NodeId j) const {
  Cost total = Cost::zero();
  if (i == j) return total;
  const std::size_t slot = idx(i, j);
  for (std::uint64_t e = price_offset_[slot]; e < price_offset_[slot + 1]; ++e)
    total += price_[e];
  return total;
}

payments::PriceFn RouteSnapshot::price_fn() const {
  return [this](NodeId k, NodeId i, NodeId j) { return price(k, i, j); };
}

std::uint64_t RouteSnapshot::compute_checksum() const {
  util::Fnv1a64 fnv;
  fnv.u64(n_);
  fnv.u64(version_);
  fnv.u64(graph_version_);
  fnv.u64(published_at_ns_);
  fnv.u64(transit_.size());
  for (Cost c : node_cost_) fnv.i64(encode_cost(c));
  for (NodeId v : next_hop_) fnv.u32(v);
  for (Cost c : cost_) fnv.i64(encode_cost(c));
  for (std::uint64_t o : price_offset_) fnv.u64(o);
  for (NodeId v : transit_) fnv.u32(v);
  for (Cost c : price_) fnv.i64(encode_cost(c));
  for (Cost::rep r : owed_) fnv.i64(r);
  for (Cost::rep r : settled_) fnv.i64(r);
  return fnv.digest();
}

bool RouteSnapshot::self_check() const {
  if (checksum_ != compute_checksum()) return false;
  if (node_cost_.size() != n_ || next_hop_.size() != n_ * n_ ||
      cost_.size() != n_ * n_ || price_offset_.size() != n_ * n_ + 1 ||
      transit_.size() != price_.size() || owed_.size() != n_ ||
      settled_.size() != n_)
    return false;
  if (price_offset_.front() != 0 || price_offset_.back() != transit_.size())
    return false;
  for (NodeId j = 0; j < n_; ++j) {
    for (NodeId i = 0; i < n_; ++i) {
      const std::size_t slot = idx(i, j);
      const std::uint64_t begin = price_offset_[slot];
      const std::uint64_t end = price_offset_[slot + 1];
      if (begin > end) return false;
      if (i == j) {
        if (begin != end || cost_[slot] != Cost::zero()) return false;
        continue;
      }
      if (cost_[slot].is_infinite()) {
        if (begin != end || next_hop_[slot] != kInvalidNode) return false;
        continue;
      }
      // c(i,j) is by definition the sum of the declared costs of the path
      // intermediates — the row must reproduce it, and the stored next hop
      // must be the first node after i on that path.
      Cost row_cost = Cost::zero();
      for (std::uint64_t e = begin; e < end; ++e) {
        if (transit_[e] >= n_) return false;
        row_cost += node_cost_[transit_[e]];
      }
      if (row_cost != cost_[slot]) return false;
      const NodeId hop = begin < end ? transit_[begin] : j;
      if (next_hop_[slot] != hop) return false;
    }
  }
  return true;
}

// --- binary persistence ----------------------------------------------------

namespace {

constexpr char kMagic[8] = {'F', 'P', 'S', 'S', 'S', 'N', 'P', '1'};
// v2 added published_at_ns to the payload header (see snapshot.h).
constexpr std::uint64_t kFormatVersion = 2;

using Reader = util::BinReader;

SnapshotLoadResult load_fail(std::string message) {
  SnapshotLoadResult result;
  result.error = std::move(message);
  return result;
}

}  // namespace

// Friend of RouteSnapshot: turns the private arrays into the payload image
// and back.
struct SnapshotCodec {
  static std::string payload(const RouteSnapshot& s) {
    std::string out;
    const std::size_t n = s.n_;
    const std::size_t entries = s.transit_.size();
    out.reserve(8 * (5 + n + n * n + n * n + 1 + entries + 2 * n) +
                4 * (n * n + entries));
    append_u64(out, n);
    append_u64(out, s.version_);
    append_u64(out, s.graph_version_);
    append_u64(out, s.published_at_ns_);
    append_u64(out, entries);
    for (Cost c : s.node_cost_) append_i64(out, encode_cost(c));
    for (NodeId v : s.next_hop_) append_u32(out, v);
    for (Cost c : s.cost_) append_i64(out, encode_cost(c));
    for (std::uint64_t o : s.price_offset_) append_u64(out, o);
    for (NodeId v : s.transit_) append_u32(out, v);
    for (Cost c : s.price_) append_i64(out, encode_cost(c));
    for (Cost::rep r : s.owed_) append_i64(out, r);
    for (Cost::rep r : s.settled_) append_i64(out, r);
    return out;
  }

  static SnapshotLoadResult parse(const std::string& payload,
                                  std::uint64_t stored_checksum) {
    Reader in{payload};
    auto snap = std::shared_ptr<RouteSnapshot>(new RouteSnapshot);
    const std::uint64_t n64 = in.u64();
    // A snapshot's flat arrays are n*n; cap n so the size math cannot
    // overflow and a corrupted header cannot trigger a huge allocation.
    if (n64 > (1u << 20)) return load_fail("implausible node count");
    const std::size_t n = static_cast<std::size_t>(n64);
    snap->n_ = n;
    snap->version_ = in.u64();
    snap->graph_version_ = in.u64();
    snap->published_at_ns_ = in.u64();
    const std::uint64_t entries = in.u64();
    if (in.fail || entries > payload.size())
      return load_fail("truncated payload");
    // Exact payload arithmetic (see SnapshotCodec::payload) before any
    // reserve(): a corrupted header must not trigger a giant allocation.
    const std::uint64_t need =
        48 + 24 * n64 + 20 * n64 * n64 + 12 * entries;
    if (need != payload.size()) return load_fail("payload size mismatch");

    bool bad_cost = false;
    const auto read_cost = [&in, &bad_cost] {
      const std::int64_t raw = in.i64();
      if (in.fail || raw == util::kInfCostWire) return Cost::infinity();
      if (raw < 0 || raw > Cost::kMaxFinite) {
        bad_cost = true;
        return Cost::infinity();
      }
      return Cost{raw};
    };
    snap->node_cost_.reserve(n);
    for (std::size_t v = 0; v < n; ++v)
      snap->node_cost_.push_back(read_cost());
    snap->next_hop_.reserve(n * n);
    for (std::size_t s = 0; s < n * n; ++s) snap->next_hop_.push_back(in.u32());
    snap->cost_.reserve(n * n);
    for (std::size_t s = 0; s < n * n; ++s)
      snap->cost_.push_back(read_cost());
    snap->price_offset_.reserve(n * n + 1);
    for (std::size_t s = 0; s < n * n + 1; ++s)
      snap->price_offset_.push_back(in.u64());
    snap->transit_.reserve(entries);
    for (std::uint64_t e = 0; e < entries; ++e)
      snap->transit_.push_back(in.u32());
    snap->price_.reserve(entries);
    for (std::uint64_t e = 0; e < entries; ++e)
      snap->price_.push_back(read_cost());
    snap->owed_.reserve(n);
    for (std::size_t v = 0; v < n; ++v) snap->owed_.push_back(in.i64());
    snap->settled_.reserve(n);
    for (std::size_t v = 0; v < n; ++v) snap->settled_.push_back(in.i64());

    if (in.fail) return load_fail("truncated payload");
    if (bad_cost) return load_fail("cost value out of range");
    if (in.pos != payload.size()) return load_fail("trailing bytes");

    snap->checksum_ = snap->compute_checksum();
    if (snap->checksum_ != stored_checksum) {
      std::ostringstream msg;
      msg << "checksum mismatch (stored " << stored_checksum << " != computed "
          << snap->checksum_ << ")";
      return load_fail(msg.str());
    }
    if (!snap->self_check())
      return load_fail("structural validation failed");

    SnapshotLoadResult result;
    result.snapshot = std::move(snap);
    return result;
  }
};

SnapshotSaveResult save_snapshot(const RouteSnapshot& snapshot,
                                 const std::string& path) {
  SnapshotSaveResult result;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    result.error = "cannot open '" + path + "' for writing";
    return result;
  }
  const std::string payload = SnapshotCodec::payload(snapshot);
  std::string header;
  header.append(kMagic, sizeof(kMagic));
  append_u64(header, kFormatVersion);
  append_u64(header, payload.size());
  append_u64(header, snapshot.checksum());
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  out.flush();
  if (!out) result.error = "write to '" + path + "' failed";
  return result;
}

SnapshotLoadResult load_snapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return load_fail("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();

  constexpr std::size_t kHeaderSize = sizeof(kMagic) + 3 * 8;
  if (bytes.size() < kHeaderSize) return load_fail("file too short");
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
    return load_fail("bad magic (not an fpss-snap file)");
  Reader header{bytes, sizeof(kMagic)};
  const std::uint64_t format = header.u64();
  if (format != kFormatVersion)
    return load_fail("unsupported format version " + std::to_string(format));
  const std::uint64_t payload_size = header.u64();
  const std::uint64_t stored_checksum = header.u64();
  if (bytes.size() - kHeaderSize != payload_size)
    return load_fail("payload length mismatch");
  return SnapshotCodec::parse(bytes.substr(kHeaderSize), stored_checksum);
}

}  // namespace fpss::service
