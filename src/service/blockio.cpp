#include "service/blockio.h"

namespace fpss::service {

using util::append_i64;
using util::append_u32;
using util::append_u64;
using util::encode_cost;

void BlockCodec::append(std::string& out, const Block& block) {
  for (const NodeId v : block.next_hop) append_u32(out, v);
  for (const Cost c : block.cost) append_i64(out, encode_cost(c));
  for (const std::uint64_t o : block.offset) append_u64(out, o);
  for (const NodeId v : block.transit) append_u32(out, v);
  for (const Cost c : block.price) append_i64(out, encode_cost(c));
}

BlockCodec::BlockPtr BlockCodec::parse(util::BinReader& in, std::size_t n) {
  auto block = std::make_shared<Block>();
  block->next_hop.reserve(n);
  for (std::size_t i = 0; i < n; ++i) block->next_hop.push_back(in.u32());
  block->cost.reserve(n);
  for (std::size_t i = 0; i < n; ++i) block->cost.push_back(in.cost());
  block->offset.reserve(n + 1);
  for (std::size_t i = 0; i <= n; ++i) {
    const std::uint64_t o = in.u64();
    // Monotone and bounded before the entry arrays are sized from it: a
    // corrupt offset must not trigger a huge allocation.
    if (!block->offset.empty() && !in.fail &&
        (o < block->offset.back() || o > n * n))
      return nullptr;
    block->offset.push_back(o);
  }
  if (in.fail || block->offset.front() != 0) return nullptr;
  const std::uint64_t entries = block->offset.back();
  if (in.remaining() < entries * 12) return nullptr;
  block->transit.reserve(entries);
  for (std::uint64_t e = 0; e < entries; ++e) {
    const NodeId v = in.u32();
    if (v >= n) return nullptr;
    block->transit.push_back(v);
  }
  block->price.reserve(entries);
  for (std::uint64_t e = 0; e < entries; ++e) block->price.push_back(in.cost());
  if (in.fail) return nullptr;
  block->digest = block->compute_digest();
  return block;
}

std::size_t BlockCodec::encoded_bytes(const Block& block, std::size_t n) {
  return 12 * n + 8 * (n + 1) + 12 * block.transit.size();
}

}  // namespace fpss::service
