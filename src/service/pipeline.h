// PublishPipeline: the staged export-and-publish path between a converged
// pricing session and the ShardedSnapshotStore readers serve from.
//
// PR 6 made export O(dirty); this stage makes publication O(one shard's
// dirty rows) *in latency*. The updater's monolithic
// export -> publish -> notify step becomes a fan-out:
//
//   reconverge ──► dirty set, grouped by shard
//              ──► fence_begin(v)
//              ──► per-dirty-shard export tasks on the thread pool
//                    extract shard's dirty rows  ─► publish_shard(s, ...)
//                    (each shard lands the moment ITS export completes)
//              ──► join ──► fence_end(merged snapshot)
//
// so a delta burst confined to shard 3 is readable as soon as shard 3's
// rows are extracted, no matter how expensive shard 7's export is. The
// fence (store.h) keeps acquire() consistent while shards land out of
// order; the per-shard intermediates share every new BlockPtr with the
// merged snapshot, so fence_end restores the strict all-blocks-shared
// invariant without copying anything.
//
// The pipeline subsumes the older paths rather than adding a fourth mode:
//   - no usable CoW base / dirty set (first build, topology generation
//     moved, warm start) -> one full parallel export, every shard dirty;
//   - a usable dirty set but no concurrency to win (single dirty shard,
//     width-1 pool) -> PR 6's inline incremental export, swap dirty shards;
//   - otherwise -> the staged fan-out above.
// On a warm start the full build additionally *adopts* the loaded
// snapshot's blocks wherever the per-block digests match — digest equality
// is direct content proof, independent of Graph::version() — so only the
// shards whose sink trees genuinely changed across the restart are
// swapped (the warm-start satellite of this PR).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "service/snapshot.h"
#include "service/store.h"
#include "util/types.h"

#include <functional>

namespace fpss::payments {
class Ledger;
}
namespace fpss::pricing {
class Session;
}
namespace fpss::util {
class ThreadPool;
}

namespace fpss::service {

/// What one pipeline run did — the publish-side counter deltas.
struct PipelineStats {
  std::size_t rows_rebuilt = 0;  ///< destination rows extracted from session
  std::size_t rows_reused = 0;   ///< rows CoW-shared with the previous export
  std::size_t rows_adopted = 0;  ///< rows adopted from the warm base by digest
  std::size_t shards_swapped = 0;  ///< shard slots the store actually moved
  /// Fell back to a full rebuild despite a previous export existing.
  bool full_rebuild = false;
  /// The staged fan-out ran (false: single full/inline export).
  bool pipelined = false;
  /// High-water mark of export tasks in flight (staged path; else 0).
  unsigned max_exports_inflight = 0;
};

/// Test seam: observers called from the export tasks themselves (i.e. from
/// pool worker threads). The export-ordering tests use them to stall one
/// shard's export and assert another shard still publishes.
struct PipelineHooks {
  std::function<void(std::size_t shard)> before_export;
  std::function<void(std::size_t shard)> after_shard_publish;
};

class PublishPipeline {
 public:
  /// Exports the session's converged state as version `version` and
  /// publishes it into `store` by whichever of the three paths applies
  /// (see file comment); returns the merged snapshot (the store's new
  /// `newest`). `prev` is the previous export of this session or null;
  /// `warm_base` is the disk-loaded snapshot currently filling the store's
  /// slots (first real publish after a warm start) or null; `dirty` is
  /// Session::dirty_destinations' answer (nullopt = unknown -> full).
  /// Preconditions: session converged; store/session node counts agree;
  /// caller holds whatever lock guards `ledger`.
  static std::shared_ptr<const RouteSnapshot> run(
      ShardedSnapshotStore& store,
      const std::shared_ptr<const RouteSnapshot>& prev,
      const std::shared_ptr<const RouteSnapshot>& warm_base,
      const pricing::Session& session, std::uint64_t version,
      const std::optional<std::vector<NodeId>>& dirty,
      const payments::Ledger* ledger, util::ThreadPool* pool,
      PipelineStats* stats = nullptr, const PipelineHooks* hooks = nullptr);
};

}  // namespace fpss::service
