// The publication point between the one updater (who re-converges the
// network and builds fresh RouteSnapshots) and any number of reader
// threads serving queries.
//
// RCU/epoch style: a snapshot is immutable once built, so publication is a
// single pointer swap and a read is a single pointer copy — readers never
// block on the updater's (long) reconvergence work, and a reader holding
// version v keeps serving v consistently while v+1 is being computed and
// after it lands. Old snapshots are reclaimed by shared_ptr refcount as
// the last reader drops them; there is no quiescent-state bookkeeping to
// get wrong.
//
// The swap/copy is guarded by a mutex whose critical section is two
// refcount operations — deliberately NOT std::atomic<shared_ptr>: in
// libstdc++ (GCC 12) _Sp_atomic::load() reads the raw pointer field and
// then releases its internal spin lock with memory_order_relaxed, so the
// read has no formal happens-before edge against a concurrent exchange()'s
// plain write of that field. TSan correctly reports the race, and the
// whole point of this store is to be provably torn-read-free under TSan
// (see test_service.cpp / the CI tsan job). The mutex never serializes
// readers against reconvergence — only against the nanoseconds-long
// pointer swap itself; everything after current() is lock-free.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>

#include "service/snapshot.h"

namespace fpss::service {

class SnapshotStore {
 public:
  /// The latest published snapshot (null until the first publish). The
  /// returned reference keeps that snapshot alive for as long as the
  /// caller holds it, regardless of later publishes.
  std::shared_ptr<const RouteSnapshot> current() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return current_;
  }

  /// Atomically replaces the served snapshot; returns the one it displaced
  /// (null on the first publish). Versions must be non-decreasing — an
  /// updater must never publish a stale epoch over a newer one.
  std::shared_ptr<const RouteSnapshot> publish(
      std::shared_ptr<const RouteSnapshot> snapshot);

  /// Number of publishes so far.
  std::uint64_t publish_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return publishes_;
  }

  /// Version of the served snapshot; 0 before the first publish.
  std::uint64_t version() const {
    const auto snap = current();
    return snap == nullptr ? 0 : snap->version();
  }

 private:
  mutable std::mutex mutex_;
  std::shared_ptr<const RouteSnapshot> current_;
  std::uint64_t publishes_ = 0;
};

}  // namespace fpss::service
