// The publication point between the one updater (who re-converges the
// network and builds fresh RouteSnapshots) and any number of reader
// threads serving queries.
//
// RCU/epoch style: a snapshot is immutable once built, so publication is a
// single pointer swap and a read is a single pointer copy — readers never
// block on the updater's (long) reconvergence work, and a reader holding
// version v keeps serving v consistently while v+1 is being computed and
// after it lands. Old snapshots are reclaimed by shared_ptr refcount as
// the last reader drops them; there is no quiescent-state bookkeeping to
// get wrong.
//
// The swap/copy is guarded by a mutex whose critical section is two
// refcount operations — deliberately NOT std::atomic<shared_ptr>: in
// libstdc++ (GCC 12) _Sp_atomic::load() reads the raw pointer field and
// then releases its internal spin lock with memory_order_relaxed, so the
// read has no formal happens-before edge against a concurrent exchange()'s
// plain write of that field. TSan correctly reports the race, and the
// whole point of this store is to be provably torn-read-free under TSan
// (see test_service.cpp / the CI tsan job). The mutex never serializes
// readers against reconvergence — only against the nanoseconds-long
// pointer swap itself; everything after current() is lock-free.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "service/snapshot.h"
#include "util/mutex.h"
#include "util/types.h"

namespace fpss::service {

class SnapshotStore {
 public:
  /// The latest published snapshot (null until the first publish). The
  /// returned reference keeps that snapshot alive for as long as the
  /// caller holds it, regardless of later publishes.
  std::shared_ptr<const RouteSnapshot> current() const FPSS_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return current_;
  }

  /// Atomically replaces the served snapshot; returns the one it displaced
  /// (null on the first publish). Versions must be non-decreasing — an
  /// updater must never publish a stale epoch over a newer one.
  std::shared_ptr<const RouteSnapshot> publish(
      std::shared_ptr<const RouteSnapshot> snapshot) FPSS_EXCLUDES(mutex_);

  /// Number of publishes so far.
  std::uint64_t publish_count() const FPSS_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return publishes_;
  }

  /// Version of the served snapshot; 0 before the first publish.
  std::uint64_t version() const {
    const auto snap = current();
    return snap == nullptr ? 0 : snap->version();
  }

 private:
  mutable util::Mutex mutex_;
  std::shared_ptr<const RouteSnapshot> current_ FPSS_GUARDED_BY(mutex_);
  std::uint64_t publishes_ FPSS_GUARDED_BY(mutex_) = 0;
};

/// The k-shard publication point: destinations are partitioned into k
/// contiguous ranges ("shards", shard_of(j) = j / ceil(n/k)) and each
/// shard slot holds the snapshot whose publish last *changed* that
/// shard's sink trees. A publish swaps only the slots flagged dirty plus
/// the `newest` slot, so steady-state churn touching few sink trees does
/// k' + 1 refcount swaps, not k.
///
/// Consistency contract for readers: acquire() copies every slot under one
/// lock into a View. Slots may reference different snapshot objects, but
/// every destination's data block is *pointer-identical* across all of
/// them — the updater only publishes copy-on-write descendants (a full
/// rebuild flags every shard dirty), so a clean shard's rows in an old
/// root are the same immutable blocks the newest root holds. A View is
/// therefore one consistent cross-shard cut; `newest` supplies the
/// composite provenance (version, publish stamp) every reply in a query
/// batch reports, regardless of which slot served it.
///
/// Same locking rationale as SnapshotStore: a mutex over k+1 refcount
/// copies, deliberately not std::atomic<shared_ptr> (see the file
/// comment), and additionally the only way k slots can be read as one
/// atomic cut at all.
class ShardedSnapshotStore {
 public:
  /// Partitions `node_count` destinations into `shard_count` contiguous
  /// shards. shard_count is clamped to [1, max(1, node_count)]; with one
  /// shard this degenerates to SnapshotStore behaviour.
  ShardedSnapshotStore(std::size_t node_count, std::size_t shard_count);

  std::size_t shard_count() const { return shard_count_; }
  std::size_t shard_size() const { return shard_size_; }
  std::size_t shard_of(NodeId j) const { return j / shard_size_; }

  /// One consistent cross-shard cut, alive as long as the caller holds it.
  struct View {
    std::shared_ptr<const RouteSnapshot> newest;  ///< composite provenance
    std::vector<std::shared_ptr<const RouteSnapshot>> shards;
    std::size_t shard_size = 1;

    bool empty() const { return newest == nullptr; }
    /// The snapshot to answer a query about destination j from. Falls back
    /// to `newest` for a never-published slot (pre-first-publish queries
    /// are rejected upstream on `empty()`).
    const RouteSnapshot& for_destination(NodeId j) const {
      const auto& slot = shards[j / shard_size];
      return slot != nullptr ? *slot : *newest;
    }
  };

  View acquire() const FPSS_EXCLUDES(mutex_);

  /// The newest published snapshot (null until the first publish) — the
  /// full-image read used for persistence and version reporting.
  std::shared_ptr<const RouteSnapshot> newest() const FPSS_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return newest_;
  }

  /// Publishes `snapshot`: installs it as `newest` and into every shard
  /// slot flagged in `shard_dirty` (plus any slot still null, so the first
  /// publish fills the table). Returns the number of shard slots swapped.
  /// Precondition: snapshot non-null, version non-decreasing,
  /// shard_dirty.size() == shard_count(). The caller asserts that clean
  /// shards' blocks are shared with the previous publish (CoW contract
  /// above) — RouteService guarantees it by flagging every shard dirty on
  /// a full rebuild.
  std::size_t publish(std::shared_ptr<const RouteSnapshot> snapshot,
                      const std::vector<bool>& shard_dirty)
      FPSS_EXCLUDES(mutex_);

  /// Full publish: every shard flagged dirty.
  std::size_t publish_all(std::shared_ptr<const RouteSnapshot> snapshot)
      FPSS_EXCLUDES(mutex_);

  /// Epoch fence: the out-of-order publication window used by the staged
  /// publish pipeline. Between fence_begin(v) and fence_end(), export tasks
  /// running on pool workers call publish_shard() in *completion* order —
  /// a cheap shard's new rows become readable the moment its export
  /// finishes, without waiting on any other shard.
  ///
  /// Read guarantee while a fence is open (the relaxation of the strict
  /// contract above): acquire() still returns one locked cut, but its slots
  /// may mix at most the two adjacent epochs v-1 and v — never anything
  /// older, never a partial shard. Each slot that has landed serves its own
  /// shard's destinations from exactly the blocks the merged epoch-v
  /// snapshot will hold (the pipeline shares the BlockPtrs), so a
  /// destination's answer is always internally consistent; `newest` keeps
  /// reporting v-1 until fence_end, so the composite version a reader
  /// stamps on replies is a correct lower bound. fence_end(merged) installs
  /// the merged snapshot as `newest` and over every slot the fence touched
  /// (block-identical to the intermediates it replaces), restoring the
  /// strict every-block-shared-with-newest invariant.
  ///
  /// Ownership: one fence at a time, begun and ended by the updater;
  /// publish_shard may be called from any thread while the fence is open.
  /// A fence counts as one publish (tallied at fence_end).
  void fence_begin(std::uint64_t version) FPSS_EXCLUDES(mutex_);
  /// Installs `snapshot` (an epoch-`version` intermediate whose shard
  /// `shard` rows are final) into that slot. Requires an open fence and
  /// snapshot->version() == the fence's version.
  void publish_shard(std::size_t shard,
                     std::shared_ptr<const RouteSnapshot> snapshot)
      FPSS_EXCLUDES(mutex_);
  /// Closes the fence; returns the number of distinct shard slots swapped
  /// across the whole fence (publish_shard landings + never-published slots
  /// filled here).
  std::size_t fence_end(std::shared_ptr<const RouteSnapshot> merged)
      FPSS_EXCLUDES(mutex_);

  std::uint64_t publish_count() const FPSS_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return publishes_;
  }

  /// Composite version (the newest snapshot's); 0 before the first publish.
  std::uint64_t version() const {
    const auto snap = newest();
    return snap == nullptr ? 0 : snap->version();
  }

  /// Per-shard snapshot versions (0 for never-published slots): how far
  /// behind `version()` each shard's last-changed publish is. Diagnostics.
  std::vector<std::uint64_t> shard_versions() const FPSS_EXCLUDES(mutex_);

  /// One replication cut: `newest` plus the per-shard versions, read under
  /// a single lock so they describe the same instant. Slot versions are
  /// clamped to newest->version() — while a fence is open a landed slot
  /// carries the *next* epoch, which must not leak into the negotiation
  /// state a replica echoes back (it would mark the shard clean before the
  /// merged snapshot exists).
  struct ExportCut {
    std::shared_ptr<const RouteSnapshot> newest;  ///< null before 1st publish
    std::vector<std::uint64_t> shard_versions;
  };
  ExportCut export_cut() const FPSS_EXCLUDES(mutex_);

 private:
  const std::size_t shard_count_;
  const std::size_t shard_size_;
  mutable util::Mutex mutex_;
  std::shared_ptr<const RouteSnapshot> newest_ FPSS_GUARDED_BY(mutex_);
  std::vector<std::shared_ptr<const RouteSnapshot>> shards_
      FPSS_GUARDED_BY(mutex_);
  std::uint64_t publishes_ FPSS_GUARDED_BY(mutex_) = 0;
  // The fence bookkeeping is mutex_-guarded like everything else; the fence
  // *protocol* (one open fence, begun/ended by the updater, landings from
  // pool workers) is a cross-thread handoff outside the analysis' lock-based
  // model and stays runtime-asserted (FPSS_EXPECTS) + TSan-verified. See
  // DESIGN.md §14.
  bool fence_open_ FPSS_GUARDED_BY(mutex_) = false;
  std::uint64_t fence_version_ FPSS_GUARDED_BY(mutex_) = 0;
  /// Slots landed during the open fence.
  std::vector<bool> fence_touched_ FPSS_GUARDED_BY(mutex_);
};

}  // namespace fpss::service
