// Dirty-aware incremental checkpointing — the persistence half of the
// "fpss-snap v4" era.
//
// save_snapshot writes the full O(n^2) image on every call; under steady
// churn that dwarfs the work of the publishes themselves. A v4 checkpoint
// directory instead holds
//
//   base.fpss-snap      a full image (the ordinary save_snapshot format)
//   journal.fpss-jrnl   header + appended patch records
//
// and a periodic checkpoint appends one *patch record* carrying only the
// destination blocks that changed since the last record — O(dirty), found
// by digest diff against the last checkpointed snapshot (CoW makes the
// common case a pointer compare). Each record also carries the global
// arrays (node costs, payment totals) and the snapshot checksum the replay
// must reproduce, so every record is self-validating.
//
// Journal header binds to the base via the base image's root checksum: a
// journal whose binding does not match the base on disk is ignored
// entirely. Together with writing a new base as tmp + rename, that closes
// every crash window:
//   - crash mid-record        -> the truncated tail fails its length or
//                                payload-checksum check; replay stops at
//                                the last complete record
//   - crash between new base  -> the old journal's binding mismatches the
//     and journal truncate       new base; the (already current) base
//                                alone is served
// load_checkpoint therefore recovers the newest complete state and can
// never serve a torn one — the crash-recovery property test truncates the
// journal at every byte prefix to pin exactly this.
//
// Compaction: when the journal outgrows CheckpointPolicy::max_journal_bytes
// the writer folds it into a fresh base (tmp + rename) and truncates the
// journal to a new bound header. Replay cost is thus bounded alongside
// journal size.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "service/snapshot.h"

namespace fpss::service {

/// When RouteService checkpoints. A default-constructed policy (empty
/// directory) disables checkpointing entirely.
struct CheckpointPolicy {
  std::string directory;  ///< checkpoint dir (created by the caller); "" = off
  /// Checkpoint every Nth publish (the first publish always writes the
  /// base). 0 behaves as 1.
  std::uint64_t every_publishes = 1;
  /// Fold the journal into a new base once it exceeds this many bytes.
  std::uint64_t max_journal_bytes = 4u << 20;
};

/// The updater-side writer: feed it every published snapshot; it decides
/// (per the policy) whether to write nothing, append a patch record, or
/// compact into a new base. Single-threaded like the rest of the publish
/// path — RouteService calls it from the updater only.
class CheckpointWriter {
 public:
  struct Stats {
    std::uint64_t checkpoints = 0;    ///< records + bases written
    std::uint64_t bytes_written = 0;  ///< total bytes appended to disk
    std::uint64_t patches = 0;        ///< per-destination block patches
    std::uint64_t compactions = 0;    ///< journal folds into a new base
  };

  explicit CheckpointWriter(CheckpointPolicy policy);

  /// Records one publish; writes whatever the policy asks for. Returns an
  /// empty string on success (including "policy says skip") or a reason on
  /// I/O failure — the service surfaces it via counters but keeps serving;
  /// a broken disk must not take the read path down.
  std::string on_publish(const std::shared_ptr<const RouteSnapshot>& snap);

  const Stats& stats() const { return stats_; }
  const std::string& base_path() const { return base_path_; }
  const std::string& journal_path() const { return journal_path_; }

 private:
  std::string write_base(const std::shared_ptr<const RouteSnapshot>& snap);
  std::string append_patch(const std::shared_ptr<const RouteSnapshot>& snap);

  CheckpointPolicy policy_;
  std::string base_path_;
  std::string journal_path_;
  /// The snapshot state the on-disk base+journal currently reproduces —
  /// the diff base of the next patch record.
  std::shared_ptr<const RouteSnapshot> last_written_;
  std::uint64_t publishes_since_checkpoint_ = 0;
  std::uint64_t journal_bytes_ = 0;
  Stats stats_;
};

/// Recovers the newest complete state from a checkpoint directory: loads
/// the base image, then replays every complete, checksum-valid journal
/// record bound to it. `patches_applied` counts replayed records.
struct CheckpointLoadResult {
  std::shared_ptr<const RouteSnapshot> snapshot;  ///< null on failure
  std::string error;
  std::uint64_t records_applied = 0;
  bool ok() const { return snapshot != nullptr; }
};

CheckpointLoadResult load_checkpoint(const std::string& directory);

}  // namespace fpss::service
