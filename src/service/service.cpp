#include "service/service.h"

#include <chrono>
#include <map>
#include <utility>

#include "util/clock.h"
#include "util/contract.h"

namespace fpss::service {

namespace {

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

RouteService::RouteService(const graph::Graph& g, ServiceConfig config)
    : node_count_(g.node_count()),
      config_(config),
      session_(g, config.protocol, config.engine, config.update_policy),
      store_(g.node_count(), config.shards),
      ledger_(g.node_count()) {
  // Dirty sink-tree tracking powers the incremental exports; enable it
  // before the first convergence so that run doubles as the baseline.
  session_.track_dirty_destinations(true);
  if (config_.export_threads > 1)
    session_.engine().ensure_pool(config_.export_threads);
  if (!config_.checkpoint.directory.empty())
    checkpoint_ = std::make_unique<CheckpointWriter>(config_.checkpoint);
  // Initial convergence happens on the constructing thread, before the
  // updater exists — the service never serves a non-converged state.
  const bgp::RunStats stats = session_.run();
  FPSS_ASSERT(stats.converged);
  session_converged_ = true;
  publish_current();
  updater_ = std::thread([this] { updater_loop(); });
}

RouteService::RouteService(const graph::Graph& g,
                           std::shared_ptr<const RouteSnapshot> warm,
                           ServiceConfig config)
    : node_count_(g.node_count()),
      config_(config),
      session_(g, config.protocol, config.engine, config.update_policy),
      store_(g.node_count(), config.shards),
      ledger_(g.node_count()) {
  FPSS_EXPECTS(warm != nullptr && warm->node_count() == g.node_count());
  session_.track_dirty_destinations(true);
  if (config_.export_threads > 1)
    session_.engine().ensure_pool(config_.export_threads);
  if (!config_.checkpoint.directory.empty())
    checkpoint_ = std::make_unique<CheckpointWriter>(config_.checkpoint);
  // Serve the saved epoch immediately; convergence is deferred to the
  // updater and happens when the first burst arrives. Future publishes
  // must outnumber the warm version, so it becomes the version base.
  version_base_ = warm->version();
  std::vector<Cost::rep> owed(node_count_), settled(node_count_);
  for (NodeId k = 0; k < node_count_; ++k) {
    owed[k] = warm->payment_owed(k);
    settled[k] = warm->payment_settled(k);
  }
  ledger_.restore(std::move(owed), std::move(settled));
  // The warm snapshot fills every shard; it is NOT a CoW base for later
  // exports (its blocks came from disk, not from this session), so
  // last_published_ stays null and the first real publish rebuilds fully —
  // but it IS the digest-adoption donor: the pipeline keeps its blocks
  // wherever the fresh export reproduces them, so only genuinely-changed
  // shards are swapped on that first publish.
  warm_base_ = warm;
  store_.publish_all(std::move(warm));
  updater_ = std::thread([this] { updater_loop(); });
}

RouteService::~RouteService() {
  {
    util::MutexLock lock(queue_mutex_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  updater_.join();
}

// --- updater ---------------------------------------------------------------

void RouteService::updater_loop() {
  for (;;) {
    std::vector<Delta> batch;
    {
      util::MutexLock lock(queue_mutex_);
      updater_busy_ = false;
      publish_cv_.notify_all();  // drain(): queue empty and nothing in flight
      while (!stop_ && queue_.empty()) queue_cv_.wait(lock);
      if (stop_) return;  // shutdown discards unapplied deltas
      batch.swap(queue_);
      updater_busy_ = true;
    }
    // Warm start: the session's first convergence was deferred to here.
    if (!session_converged_) {
      const bgp::RunStats stats = session_.run();
      FPSS_ASSERT(stats.converged);
      session_converged_ = true;
    }
    const std::size_t applied = apply_coalesced(batch);
    deltas_applied_.fetch_add(batch.size(), std::memory_order_relaxed);
    // Each burst costs one reconvergence + publish; everything beyond the
    // applied events rode along for free.
    const std::size_t effective = applied == 0 ? 1 : applied;
    if (batch.size() > effective)
      deltas_coalesced_.fetch_add(batch.size() - effective,
                                  std::memory_order_relaxed);
    publish_current();
  }
}

std::size_t RouteService::apply_coalesced(const std::vector<Delta>& batch) {
  // Last-writer-wins per key: one final cost per node, one final link op
  // per undirected pair. Distinct keys commute, so applying the survivors
  // in any fixed order and reconverging once reaches exactly the state a
  // delta-by-delta application would have reached.
  std::map<NodeId, Cost> final_cost;
  std::map<std::pair<NodeId, NodeId>, Delta::Kind> final_link;
  for (const Delta& delta : batch) {
    switch (delta.kind) {
      case Delta::Kind::kCostChange:
        final_cost[delta.u] = delta.cost;
        break;
      case Delta::Kind::kAddLink:
      case Delta::Kind::kRemoveLink:
        final_link[std::minmax(delta.u, delta.v)] = delta.kind;
        break;
      case Delta::Kind::kRepublish:
        break;
    }
  }
  const graph::Graph& g = session_.network().topology();
  std::vector<pricing::Session::Event> events;
  events.reserve(final_cost.size() + final_link.size());
  for (const auto& [node, cost] : final_cost) {
    if (g.cost(node) == cost) continue;  // net no-op
    events.push_back(pricing::Session::Event::cost_change(node, cost));
  }
  for (const auto& [link, kind] : final_link) {
    const bool present = g.has_edge(link.first, link.second);
    if (kind == Delta::Kind::kAddLink && !present)
      events.push_back(
          pricing::Session::Event::add_link(link.first, link.second));
    else if (kind == Delta::Kind::kRemoveLink && present)
      events.push_back(
          pricing::Session::Event::remove_link(link.first, link.second));
    // A burst whose link ops net out to the current topology (add+remove,
    // or a redundant op) needs no event at all.
  }
  if (!events.empty()) {
    const bgp::RunStats stats = session_.apply_events(events, config_.restart);
    FPSS_ASSERT(stats.converged);
  }
  return events.size();
}

bool RouteService::delta_in_range(const Delta& delta) const {
  switch (delta.kind) {
    case Delta::Kind::kCostChange:
      return delta.u < node_count_;
    case Delta::Kind::kAddLink:
    case Delta::Kind::kRemoveLink:
      return delta.u < node_count_ && delta.v < node_count_ &&
             delta.u != delta.v;
    case Delta::Kind::kRepublish:
      return true;
  }
  return false;  // unknown kind (e.g. decoded from a hostile frame)
}

void RouteService::publish_current() {
  FPSS_ASSERT(session_.engine().stats().converged);
  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t epoch = session_.engine().converged_epochs();
  const std::uint64_t version = version_base_ + epoch;
  util::ThreadPool* pool = session_.engine().pool();

  // The incremental paths need a CoW base (a previous export of this
  // session) and a usable dirty set since that export's epoch; anything
  // else the pipeline turns into a full build.
  std::optional<std::vector<NodeId>> dirty;
  if (last_published_ != nullptr)
    dirty = session_.dirty_destinations(last_export_epoch_);

  PipelineStats stats;
  std::shared_ptr<const RouteSnapshot> snap;
  {
    util::MutexLock lock(ledger_mutex_);
    snap = PublishPipeline::run(store_, last_published_, warm_base_, session_,
                                version, dirty, &ledger_, pool, &stats);
  }
  warm_base_ = nullptr;  // adoption is a first-publish-only affair

  last_published_ = snap;
  last_export_epoch_ = epoch;
  rows_rebuilt_.fetch_add(stats.rows_rebuilt, std::memory_order_relaxed);
  rows_reused_.fetch_add(stats.rows_reused, std::memory_order_relaxed);
  shards_republished_.fetch_add(stats.shards_swapped,
                                std::memory_order_relaxed);
  if (stats.full_rebuild)
    full_rebuilds_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t ns = elapsed_ns(start);
  publish_total_ns_.fetch_add(ns, std::memory_order_relaxed);
  std::uint64_t seen = max_publish_ns_.load(std::memory_order_relaxed);
  while (ns > seen && !max_publish_ns_.compare_exchange_weak(
                          seen, ns, std::memory_order_relaxed)) {
  }
  std::uint64_t inflight = stats.max_exports_inflight;
  std::uint64_t seen_inflight =
      shard_exports_inflight_max_.load(std::memory_order_relaxed);
  while (inflight > seen_inflight &&
         !shard_exports_inflight_max_.compare_exchange_weak(
             seen_inflight, inflight, std::memory_order_relaxed)) {
  }

  // Persistence rides after the readers are already on the new epoch: a
  // slow or broken disk delays the next checkpoint, never a publish.
  if (checkpoint_ != nullptr) {
    checkpoint_->on_publish(snap);
    const CheckpointWriter::Stats& cs = checkpoint_->stats();
    checkpoints_written_.store(cs.checkpoints, std::memory_order_relaxed);
    checkpoint_bytes_written_.store(cs.bytes_written,
                                    std::memory_order_relaxed);
    journal_patches_.store(cs.patches, std::memory_order_relaxed);
    journal_compactions_.store(cs.compactions, std::memory_order_relaxed);
  }
  {
    // Notify under the queue mutex so a waiter cannot check the publish
    // count and block between our publish and our notify.
    util::MutexLock lock(queue_mutex_);
  }
  publish_cv_.notify_all();
}

// --- read side -------------------------------------------------------------

namespace {

/// Which snapshot of a sharded view answers `request`: destination-bearing
/// kinds read from the shard holding j (in-range j only — answer() rejects
/// the rest against any snapshot); everything else, notably kPayment
/// (payment totals are global arrays, current only in the newest image),
/// reads from the composite.
const RouteSnapshot& data_snapshot(const ShardedSnapshotStore::View& view,
                                   const Request& request) {
  switch (request.kind) {
    case RequestKind::kCost:
    case RequestKind::kPrice:
    case RequestKind::kPairPayment:
    case RequestKind::kNextHop:
    case RequestKind::kPath:
      if (request.j < view.newest->node_count())
        return view.for_destination(request.j);
      break;
    default:
      break;
  }
  return *view.newest;
}

}  // namespace

std::vector<Reply> RouteService::query(std::span<const Request> batch) const {
  const auto start = std::chrono::steady_clock::now();
  const ShardedSnapshotStore::View view = store_.acquire();
  // One wall-clock reading per batch: every reply reports the same age,
  // and a remote server answering the same batch produces the same split
  // between "answer" fields and provenance. Likewise one provenance — the
  // composite version/stamp — regardless of which shard serves each reply.
  const std::uint64_t now_ns = util::wall_clock_ns();
  const ReplyProvenance provenance{view.newest->version(),
                                   view.newest->published_at_ns()};
  note_staleness(util::age_from(provenance.published_at_ns, now_ns));
  std::vector<Reply> replies;
  replies.reserve(batch.size());
  for (const Request& request : batch)
    replies.push_back(
        answer(data_snapshot(view, request), provenance, request, now_ns));
  count_batch(batch.size(), elapsed_ns(start));
  return replies;
}

Cost RouteService::price(NodeId k, NodeId i, NodeId j) const {
  const auto start = std::chrono::steady_clock::now();
  const ShardedSnapshotStore::View view = store_.acquire();
  note_staleness(
      util::age_from(view.newest->published_at_ns(), util::wall_clock_ns()));
  const Cost p = view.for_destination(j).price(k, i, j);
  count_batch(1, elapsed_ns(start));
  return p;
}

Cost RouteService::cost(NodeId i, NodeId j) const {
  const auto start = std::chrono::steady_clock::now();
  const ShardedSnapshotStore::View view = store_.acquire();
  note_staleness(
      util::age_from(view.newest->published_at_ns(), util::wall_clock_ns()));
  const Cost c = view.for_destination(j).cost(i, j);
  count_batch(1, elapsed_ns(start));
  return c;
}

graph::Path RouteService::path(NodeId i, NodeId j) const {
  const auto start = std::chrono::steady_clock::now();
  const ShardedSnapshotStore::View view = store_.acquire();
  note_staleness(
      util::age_from(view.newest->published_at_ns(), util::wall_clock_ns()));
  graph::Path p = view.for_destination(j).path(i, j);
  count_batch(1, elapsed_ns(start));
  return p;
}

Cost::rep RouteService::payment(NodeId k) const {
  const auto start = std::chrono::steady_clock::now();
  const auto snap = snapshot();
  note_staleness(util::age_from(snap->published_at_ns(), util::wall_clock_ns()));
  const Cost::rep total = snap->payment_total(k);
  count_batch(1, elapsed_ns(start));
  return total;
}

void RouteService::count_batch(std::uint64_t queries, std::uint64_t ns) const {
  queries_.fetch_add(queries, std::memory_order_relaxed);
  batches_.fetch_add(1, std::memory_order_relaxed);
  total_ns_.fetch_add(ns, std::memory_order_relaxed);
  std::uint64_t seen = max_batch_ns_.load(std::memory_order_relaxed);
  while (ns > seen && !max_batch_ns_.compare_exchange_weak(
                          seen, ns, std::memory_order_relaxed)) {
  }
}

void RouteService::note_staleness(std::uint64_t age_ns) const {
  std::uint64_t seen = max_staleness_ns_.load(std::memory_order_relaxed);
  while (age_ns > seen && !max_staleness_ns_.compare_exchange_weak(
                              seen, age_ns, std::memory_order_relaxed)) {
  }
}

RouteService::Counters RouteService::counters() const {
  Counters c;
  c.queries = queries_.load(std::memory_order_relaxed);
  c.batches = batches_.load(std::memory_order_relaxed);
  c.total_ns = total_ns_.load(std::memory_order_relaxed);
  c.max_batch_ns = max_batch_ns_.load(std::memory_order_relaxed);
  c.max_staleness_ns = max_staleness_ns_.load(std::memory_order_relaxed);
  c.publishes = store_.publish_count();
  c.deltas_applied = deltas_applied_.load(std::memory_order_relaxed);
  c.deltas_coalesced = deltas_coalesced_.load(std::memory_order_relaxed);
  c.charges = charges_.load(std::memory_order_relaxed);
  c.rows_rebuilt = rows_rebuilt_.load(std::memory_order_relaxed);
  c.rows_reused = rows_reused_.load(std::memory_order_relaxed);
  c.shards_republished = shards_republished_.load(std::memory_order_relaxed);
  c.full_rebuilds = full_rebuilds_.load(std::memory_order_relaxed);
  c.publish_total_ns = publish_total_ns_.load(std::memory_order_relaxed);
  c.max_publish_ns = max_publish_ns_.load(std::memory_order_relaxed);
  c.shard_exports_inflight_max =
      shard_exports_inflight_max_.load(std::memory_order_relaxed);
  c.checkpoints_written = checkpoints_written_.load(std::memory_order_relaxed);
  c.checkpoint_bytes_written =
      checkpoint_bytes_written_.load(std::memory_order_relaxed);
  c.journal_patches = journal_patches_.load(std::memory_order_relaxed);
  c.journal_compactions =
      journal_compactions_.load(std::memory_order_relaxed);
  return c;
}

util::Table RouteService::counters_table() const {
  const Counters c = counters();
  util::Table t({"counter", "value"});
  t.add("queries answered", c.queries);
  t.add("query batches", c.batches);
  t.add("mean batch latency (ns)",
        c.batches == 0 ? 0 : c.total_ns / c.batches);
  t.add("max batch latency (ns)", c.max_batch_ns);
  t.add("max served staleness (ns)", c.max_staleness_ns);
  t.add("snapshots published", c.publishes);
  t.add("deltas applied", c.deltas_applied);
  t.add("deltas coalesced", c.deltas_coalesced);
  t.add("traffic charges recorded", c.charges);
  t.add("snapshot rows rebuilt", c.rows_rebuilt);
  t.add("snapshot rows reused", c.rows_reused);
  t.add("shards republished", c.shards_republished);
  t.add("full-rebuild fallbacks", c.full_rebuilds);
  t.add("mean publish latency (ns)",
        c.publishes == 0 ? 0 : c.publish_total_ns / c.publishes);
  t.add("max publish latency (ns)", c.max_publish_ns);
  t.add("shard exports in flight (max)", c.shard_exports_inflight_max);
  t.add("checkpoints written", c.checkpoints_written);
  t.add("checkpoint bytes written", c.checkpoint_bytes_written);
  t.add("journal patches", c.journal_patches);
  t.add("journal compactions", c.journal_compactions);
  return t;
}

// --- traffic accounting ----------------------------------------------------

void RouteService::charge(NodeId i, NodeId j, std::uint64_t packets) {
  const std::shared_ptr<const RouteSnapshot> snap = snapshot();
  const graph::Path p = snap->path(i, j);
  if (p.size() < 2) return;  // self-traffic or currently unreachable
  // A monopoly transit node has an undefined (infinite) price; such a pair
  // cannot be settled in exact arithmetic, so it is not charged.
  if (snap->pair_payment(i, j).is_infinite()) return;
  {
    util::MutexLock lock(ledger_mutex_);
    ledger_.record_packets(p, snap->price_fn(), packets);
  }
  charges_.fetch_add(1, std::memory_order_relaxed);
}

void RouteService::settle() {
  util::MutexLock lock(ledger_mutex_);
  ledger_.settle();
}

// --- update side -----------------------------------------------------------

std::size_t RouteService::submit(Delta delta) {
  return submit(std::vector<Delta>{delta});
}

std::size_t RouteService::submit(const std::vector<Delta>& deltas) {
  std::vector<Delta> accepted;
  accepted.reserve(deltas.size());
  for (const Delta& delta : deltas)
    if (delta_in_range(delta)) accepted.push_back(delta);
  if (accepted.empty()) return 0;
  {
    util::MutexLock lock(queue_mutex_);
    queue_.insert(queue_.end(), accepted.begin(), accepted.end());
  }
  queue_cv_.notify_one();
  return accepted.size();
}

void RouteService::wait_for_publishes(std::uint64_t count) const {
  util::MutexLock lock(queue_mutex_);
  while (store_.publish_count() < count) publish_cv_.wait(lock);
}

std::uint64_t RouteService::wait_for_publish_beyond(std::uint64_t count,
                                                    int timeout_ms) const {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  util::MutexLock lock(queue_mutex_);
  while (store_.publish_count() <= count)
    if (publish_cv_.wait_until(lock, deadline) == std::cv_status::timeout)
      break;
  return store_.publish_count();
}

std::uint64_t RouteService::drain() {
  util::MutexLock lock(queue_mutex_);
  while (!queue_.empty() || updater_busy_) publish_cv_.wait(lock);
  return store_.version();
}

}  // namespace fpss::service
