#include "service/service.h"

#include <chrono>

#include "util/contract.h"

namespace fpss::service {

namespace {

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

RouteService::RouteService(const graph::Graph& g, ServiceConfig config)
    : node_count_(g.node_count()),
      config_(config),
      session_(g, config.protocol, config.engine, config.update_policy),
      ledger_(g.node_count()) {
  // Initial convergence happens on the constructing thread, before the
  // updater exists — the service never serves a non-converged state.
  const bgp::RunStats stats = session_.run();
  FPSS_ASSERT(stats.converged);
  publish_current();
  updater_ = std::thread([this] { updater_loop(); });
}

RouteService::~RouteService() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  updater_.join();
}

// --- updater ---------------------------------------------------------------

void RouteService::updater_loop() {
  for (;;) {
    std::vector<Delta> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      updater_busy_ = false;
      publish_cv_.notify_all();  // drain(): queue empty and nothing in flight
      queue_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (stop_) return;  // shutdown discards unapplied deltas
      batch.swap(queue_);
      updater_busy_ = true;
    }
    for (const Delta& delta : batch) apply(delta);
    deltas_applied_.fetch_add(batch.size(), std::memory_order_relaxed);
    publish_current();
  }
}

void RouteService::apply(const Delta& delta) {
  switch (delta.kind) {
    case Delta::Kind::kCostChange:
      session_.change_cost(delta.u, delta.cost, config_.restart);
      break;
    case Delta::Kind::kAddLink:
      session_.add_link(delta.u, delta.v, config_.restart);
      break;
    case Delta::Kind::kRemoveLink:
      session_.remove_link(delta.u, delta.v, config_.restart);
      break;
    case Delta::Kind::kRepublish:
      break;
  }
}

void RouteService::publish_current() {
  FPSS_ASSERT(session_.engine().stats().converged);
  std::shared_ptr<const RouteSnapshot> snap;
  {
    std::lock_guard<std::mutex> lock(ledger_mutex_);
    snap = RouteSnapshot::from_session(
        session_, session_.engine().converged_epochs(), &ledger_);
  }
  store_.publish(std::move(snap));
  {
    // Notify under the queue mutex so a waiter cannot check the publish
    // count and block between our publish and our notify.
    std::lock_guard<std::mutex> lock(queue_mutex_);
  }
  publish_cv_.notify_all();
}

// --- read side -------------------------------------------------------------

std::vector<RouteService::Answer> RouteService::query(
    std::span<const Query> batch) const {
  const auto start = std::chrono::steady_clock::now();
  const std::shared_ptr<const RouteSnapshot> snap = snapshot();
  std::vector<Answer> answers;
  answers.reserve(batch.size());
  for (const Query& q : batch) {
    Answer a;
    a.version = snap->version();
    switch (q.kind) {
      case Query::Kind::kCost:
        a.value = snap->cost(q.i, q.j);
        break;
      case Query::Kind::kPrice:
        a.value = snap->price(q.k, q.i, q.j);
        break;
      case Query::Kind::kPairPayment:
        a.value = snap->pair_payment(q.i, q.j);
        break;
      case Query::Kind::kNextHop:
        a.node = snap->next_hop(q.i, q.j);
        a.value = snap->cost(q.i, q.j);
        break;
      case Query::Kind::kPath:
        a.path = snap->path(q.i, q.j);
        a.value = snap->cost(q.i, q.j);
        break;
      case Query::Kind::kPayment:
        a.amount = snap->payment_total(q.k);
        a.value = Cost::zero();
        break;
    }
    answers.push_back(std::move(a));
  }
  count_batch(batch.size(), elapsed_ns(start));
  return answers;
}

Cost RouteService::price(NodeId k, NodeId i, NodeId j) const {
  const auto start = std::chrono::steady_clock::now();
  const Cost p = snapshot()->price(k, i, j);
  count_batch(1, elapsed_ns(start));
  return p;
}

Cost RouteService::cost(NodeId i, NodeId j) const {
  const auto start = std::chrono::steady_clock::now();
  const Cost c = snapshot()->cost(i, j);
  count_batch(1, elapsed_ns(start));
  return c;
}

graph::Path RouteService::path(NodeId i, NodeId j) const {
  const auto start = std::chrono::steady_clock::now();
  graph::Path p = snapshot()->path(i, j);
  count_batch(1, elapsed_ns(start));
  return p;
}

Cost::rep RouteService::payment(NodeId k) const {
  const auto start = std::chrono::steady_clock::now();
  const Cost::rep total = snapshot()->payment_total(k);
  count_batch(1, elapsed_ns(start));
  return total;
}

void RouteService::count_batch(std::uint64_t queries, std::uint64_t ns) const {
  queries_.fetch_add(queries, std::memory_order_relaxed);
  batches_.fetch_add(1, std::memory_order_relaxed);
  total_ns_.fetch_add(ns, std::memory_order_relaxed);
  std::uint64_t seen = max_batch_ns_.load(std::memory_order_relaxed);
  while (ns > seen && !max_batch_ns_.compare_exchange_weak(
                          seen, ns, std::memory_order_relaxed)) {
  }
}

RouteService::Counters RouteService::counters() const {
  Counters c;
  c.queries = queries_.load(std::memory_order_relaxed);
  c.batches = batches_.load(std::memory_order_relaxed);
  c.total_ns = total_ns_.load(std::memory_order_relaxed);
  c.max_batch_ns = max_batch_ns_.load(std::memory_order_relaxed);
  c.publishes = store_.publish_count();
  c.deltas_applied = deltas_applied_.load(std::memory_order_relaxed);
  c.charges = charges_.load(std::memory_order_relaxed);
  return c;
}

util::Table RouteService::counters_table() const {
  const Counters c = counters();
  util::Table t({"counter", "value"});
  t.add("queries answered", c.queries);
  t.add("query batches", c.batches);
  t.add("mean batch latency (ns)",
        c.batches == 0 ? 0 : c.total_ns / c.batches);
  t.add("max batch latency (ns)", c.max_batch_ns);
  t.add("snapshots published", c.publishes);
  t.add("deltas applied", c.deltas_applied);
  t.add("traffic charges recorded", c.charges);
  return t;
}

// --- traffic accounting ----------------------------------------------------

void RouteService::charge(NodeId i, NodeId j, std::uint64_t packets) {
  const std::shared_ptr<const RouteSnapshot> snap = snapshot();
  const graph::Path p = snap->path(i, j);
  if (p.size() < 2) return;  // self-traffic or currently unreachable
  // A monopoly transit node has an undefined (infinite) price; such a pair
  // cannot be settled in exact arithmetic, so it is not charged.
  if (snap->pair_payment(i, j).is_infinite()) return;
  {
    std::lock_guard<std::mutex> lock(ledger_mutex_);
    ledger_.record_packets(p, snap->price_fn(), packets);
  }
  charges_.fetch_add(1, std::memory_order_relaxed);
}

void RouteService::settle() {
  std::lock_guard<std::mutex> lock(ledger_mutex_);
  ledger_.settle();
}

// --- update side -----------------------------------------------------------

void RouteService::submit(Delta delta) { submit(std::vector<Delta>{delta}); }

void RouteService::submit(const std::vector<Delta>& deltas) {
  if (deltas.empty()) return;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_.insert(queue_.end(), deltas.begin(), deltas.end());
  }
  queue_cv_.notify_one();
}

void RouteService::wait_for_publishes(std::uint64_t count) const {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  publish_cv_.wait(lock, [&] { return store_.publish_count() >= count; });
}

std::uint64_t RouteService::drain() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  publish_cv_.wait(lock, [&] { return queue_.empty() && !updater_busy_; });
  return store_.version();
}

}  // namespace fpss::service
