// The versioned request/response model every query path shares.
//
// PR 4 makes RouteService reachable over a socket, which forces the query
// types to be *wire-stable*: explicit tag values reserved forever, a
// status channel for malformed input (instead of silently serving
// Cost::infinity() or, worse, reading out of range), and provenance
// (snapshot version + publish timestamp + age) on every reply. The same
// structs — and the single evaluator `answer()` — are used verbatim by the
// in-process RouteService::query() and by the net::RouteServer, so a local
// call and a remote call return bit-identical answers for the same
// snapshot (the loopback test in test_net.cpp pins this).
#pragma once

#include <cstdint>

#include "graph/path.h"
#include "service/snapshot.h"
#include "util/cost.h"
#include "util/types.h"

namespace fpss::service {

/// What a Request asks for. The numeric values are the wire tags of
/// fpss-wire v1 — append new kinds, never renumber. Tag 0 is reserved as
/// "invalid" so a zeroed frame cannot alias a real query.
enum class RequestKind : std::uint8_t {
  kCost = 1,         ///< c(i, j)                    -> value
  kPrice = 2,        ///< p^k_ij                     -> value
  kPairPayment = 3,  ///< sum_k p^k_ij               -> value
  kNextHop = 4,      ///< i's next hop toward j      -> node (+ value = c(i,j))
  kPath = 5,         ///< full selected path         -> path (+ value = c(i,j))
  kPayment = 6,      ///< k's owed+settled totals    -> amount
};

/// Per-reply outcome. Wire tags of fpss-wire v1; same stability rule.
enum class Status : std::uint8_t {
  kOk = 0,
  kUnreachable = 1,  ///< i cannot currently reach j (answer fields still
                     ///< carry the snapshot's conventions: infinite cost,
                     ///< empty path, invalid next hop, zero prices)
  kBadNode = 2,      ///< a referenced node id is out of range
  kBadKind = 3,      ///< unknown request tag (e.g. from a newer client)
};

/// One element of a batched read. Identical for local and remote callers.
struct Request {
  RequestKind kind = RequestKind::kCost;
  NodeId k = kInvalidNode;  ///< transit node (kPrice/kPayment)
  NodeId i = kInvalidNode;
  NodeId j = kInvalidNode;

  friend bool operator==(const Request&, const Request&) = default;
};

/// The answer to one Request. Every reply names the snapshot that produced
/// it (version + publish wall-clock stamp + age at answer time), so remote
/// clients can bound staleness and detect epoch changes across batches.
struct Reply {
  Status status = Status::kOk;
  Cost value = Cost::infinity();  ///< kCost/kPrice/kPairPayment/kNextHop/kPath
  Cost::rep amount = 0;           ///< kPayment
  NodeId node = kInvalidNode;     ///< kNextHop
  graph::Path path;               ///< kPath
  std::uint64_t snapshot_version = 0;
  std::uint64_t published_at_ns = 0;  ///< wall-clock stamp of the snapshot
  std::uint64_t age_ns = 0;           ///< answer time minus publish time

  friend bool operator==(const Reply&, const Reply&) = default;
};

/// The provenance stamped onto a reply, decoupled from the snapshot that
/// supplied the data. The sharded store serves a destination from the
/// snapshot that last *changed* it while the whole batch reports one
/// composite (newest) version and publish stamp — sound because a clean
/// destination's data blocks are pointer-identical across the two (the
/// copy-on-write publication contract, see ShardedSnapshotStore).
struct ReplyProvenance {
  std::uint64_t snapshot_version = 0;
  std::uint64_t published_at_ns = 0;
};

/// Evaluates one request against one snapshot — the single authority both
/// the in-process and the remote path call. `now_ns` is the answer-time
/// wall clock (passed in so a whole batch shares one reading).
Reply answer(const RouteSnapshot& snapshot, const Request& request,
             std::uint64_t now_ns);

/// Same evaluator, answering from `data` but stamping `provenance` — the
/// sharded-view form. answer(s, q, now) == answer(s, {s.version(),
/// s.published_at_ns()}, q, now).
Reply answer(const RouteSnapshot& data, const ReplyProvenance& provenance,
             const Request& request, std::uint64_t now_ns);

/// True when two replies are the same answer — every field except age_ns,
/// which measures *when* the question was asked, not what the answer is.
/// The local-vs-remote equivalence tests compare with this.
bool same_answer(const Reply& a, const Reply& b);

}  // namespace fpss::service
