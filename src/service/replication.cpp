#include "service/replication.h"

#include <algorithm>
#include <utility>

#include "service/blockio.h"
#include "util/binio.h"

namespace fpss::service {

namespace {

using util::append_i64;
using util::append_u32;
using util::append_u64;
using util::append_u8;
using util::BinReader;
using util::encode_cost;

/// The store's shard partition formula (ShardedSnapshotStore's ctor):
/// contiguous ranges of ceil(n / shard_count) destinations.
std::size_t shard_size_of(std::uint64_t n, std::uint64_t shard_count) {
  const std::uint64_t nn = n == 0 ? 1 : n;
  return static_cast<std::size_t>((nn + shard_count - 1) / shard_count);
}

/// Every data chunk's fixed fields after the kind byte.
void append_data_header(std::string& out, const RouteSnapshot& snap,
                        std::uint32_t shard_count, std::uint32_t shard,
                        std::uint64_t shard_version, std::uint32_t dest_begin,
                        std::uint32_t dest_count) {
  append_u8(out, ReplicationCodec::kDataChunk);
  append_u64(out, snap.version());
  append_u64(out, snap.node_count());
  append_u32(out, shard_count);
  append_u32(out, shard);
  append_u64(out, shard_version);
  append_u32(out, dest_begin);
  append_u32(out, dest_count);
}

}  // namespace

std::vector<std::string> ReplicationCodec::encode_shard(
    const RouteSnapshot& snap, std::size_t shard, std::size_t shard_size,
    std::uint32_t shard_count, std::uint64_t shard_version,
    std::size_t budget_bytes) {
  const std::size_t n = snap.node_count();
  const std::size_t begin = shard * shard_size;
  const std::size_t end = std::min(n, begin + shard_size);
  std::vector<std::string> chunks;
  std::size_t chunk_begin = begin;
  std::string blocks;
  const auto flush = [&](std::size_t next) {
    if (next == chunk_begin) return;
    std::string out;
    out.reserve(39 + blocks.size());
    append_data_header(out, snap, shard_count,
                       static_cast<std::uint32_t>(shard), shard_version,
                       static_cast<std::uint32_t>(chunk_begin),
                       static_cast<std::uint32_t>(next - chunk_begin));
    out.append(blocks);
    chunks.push_back(std::move(out));
    blocks.clear();
    chunk_begin = next;
  };
  for (std::size_t j = begin; j < end; ++j) {
    // Budget check before appending: a chunk carries at least one block,
    // so the cap is soft by at most one destination's rows.
    if (!blocks.empty() &&
        blocks.size() + BlockCodec::encoded_bytes(*snap.blocks_[j], n) >
            budget_bytes)
      flush(j);
    BlockCodec::append(blocks, *snap.blocks_[j]);
  }
  flush(end);
  return chunks;
}

std::string ReplicationCodec::encode_final(
    const RouteSnapshot& snap, std::span<const std::uint64_t> shard_versions,
    std::span<const std::uint32_t> shards_sent) {
  const std::size_t n = snap.node_count();
  std::string out;
  out.reserve(53 + 24 * n + 8 * shard_versions.size() +
              4 * shards_sent.size());
  append_u8(out, kFinalChunk);
  append_u64(out, snap.version());
  append_u64(out, n);
  append_u32(out, static_cast<std::uint32_t>(shard_versions.size()));
  append_u64(out, snap.graph_version());
  append_u64(out, snap.published_at_ns());
  append_u64(out, snap.checksum());
  for (NodeId v = 0; v < n; ++v)
    append_i64(out, encode_cost(snap.node_cost(v)));
  for (NodeId v = 0; v < n; ++v) append_i64(out, snap.payment_owed(v));
  for (NodeId v = 0; v < n; ++v) append_i64(out, snap.payment_settled(v));
  for (const std::uint64_t version : shard_versions) append_u64(out, version);
  append_u32(out, static_cast<std::uint32_t>(shards_sent.size()));
  for (const std::uint32_t s : shards_sent) append_u32(out, s);
  return out;
}

// --- assembler --------------------------------------------------------------

ReplicationCodec::Assembler::Assembler(
    std::shared_ptr<const RouteSnapshot> base,
    std::shared_ptr<const RouteSnapshot> adopt)
    : base_(std::move(base)), adopt_(std::move(adopt)) {}

bool ReplicationCodec::Assembler::fail(const std::string& why) {
  poisoned_ = true;
  if (error_.empty()) error_ = why;
  return false;
}

bool ReplicationCodec::Assembler::feed(std::string_view payload) {
  if (poisoned_) return false;
  if (final_seen_) return fail("chunk after final chunk");
  BinReader in{payload};
  const std::uint8_t kind = in.u8();
  const std::uint64_t version = in.u64();
  const std::uint64_t n = in.u64();
  const std::uint64_t shard_count = in.u32();
  if (in.fail) return fail("truncated chunk header");
  if (n == 0 || shard_count == 0 || shard_count > n)
    return fail("bad chunk geometry");
  if (!header_bound_) {
    // Pre-allocation bound: any valid chunk for n destinations carries at
    // least one destination block (>= 20n + 8 bytes, data) or the three
    // global arrays (24n bytes, final), so a lying node count cannot force
    // a large allocation from a small payload.
    if (n > payload.size() / 20)
      return fail("chunk shorter than its node count implies");
    // The whole stream describes one snapshot of one store layout; the
    // first chunk binds it.
    version_ = version;
    n_ = n;
    shard_count_ = shard_count;
    received_.assign(static_cast<std::size_t>(n), nullptr);
    header_bound_ = true;
  } else if (version != version_ || n != n_ || shard_count != shard_count_) {
    return fail("chunk disagrees with stream header");
  }

  if (kind == kDataChunk) {
    const std::uint32_t shard = in.u32();
    const std::uint64_t shard_version = in.u64();
    const std::uint64_t dest_begin = in.u32();
    const std::uint64_t dest_count = in.u32();
    if (in.fail) return fail("truncated data chunk header");
    if (shard >= shard_count_) return fail("shard index out of range");
    const std::size_t shard_size = shard_size_of(n_, shard_count_);
    const std::uint64_t shard_lo = shard * shard_size;
    const std::uint64_t shard_hi =
        std::min<std::uint64_t>(n_, shard_lo + shard_size);
    if (dest_count == 0 || dest_begin < shard_lo ||
        dest_begin + dest_count > shard_hi)
      return fail("destination range outside its shard");
    // A block is at least 20n + 8 bytes; a lying count cannot force the
    // parser into large allocations past this bound.
    if (in.remaining() < dest_count * (20 * n_ + 8))
      return fail("data chunk shorter than its block count");
    shard_version_seen_.emplace_back(shard, shard_version);
    for (std::uint64_t d = 0; d < dest_count; ++d) {
      const NodeId j = static_cast<NodeId>(dest_begin + d);
      if (received_[j] != nullptr) return fail("duplicate destination block");
      RouteSnapshot::BlockPtr block = BlockCodec::parse(in, n_);
      if (block == nullptr) return fail("malformed destination block");
      // Digest adoption: share the replica's existing block (served base
      // first, then the warm-start donor) whenever the content round-trips
      // identical — the wire copy is dropped and memory stays shared.
      if (base_ != nullptr && base_->node_count() == n_ &&
          base_->blocks_[j]->digest == block->digest) {
        block = base_->blocks_[j];
        ++blocks_adopted_;
      } else if (adopt_ != nullptr && adopt_->node_count() == n_ &&
                 adopt_->blocks_[j]->digest == block->digest) {
        block = adopt_->blocks_[j];
        ++blocks_adopted_;
      }
      received_[j] = std::move(block);
    }
    if (in.fail || in.pos != payload.size())
      return fail("data chunk size mismatch");
    return true;
  }

  if (kind == kFinalChunk) {
    graph_version_ = in.u64();
    published_at_ns_ = in.u64();
    want_checksum_ = in.u64();
    // Exact-size arithmetic before any reserve: globals + shard versions
    // + the sent list's count field must all fit.
    if (in.fail || in.remaining() < 24 * n_ + 8 * shard_count_ + 4)
      return fail("truncated final chunk");
    node_cost_.reserve(n_);
    for (std::uint64_t v = 0; v < n_; ++v) node_cost_.push_back(in.cost());
    owed_.reserve(n_);
    for (std::uint64_t v = 0; v < n_; ++v) owed_.push_back(in.i64());
    settled_.reserve(n_);
    for (std::uint64_t v = 0; v < n_; ++v) settled_.push_back(in.i64());
    shard_versions_.reserve(shard_count_);
    for (std::uint64_t s = 0; s < shard_count_; ++s)
      shard_versions_.push_back(in.u64());
    const std::uint32_t sent = in.u32();
    if (in.fail || sent > shard_count_ || in.remaining() != 4 * sent)
      return fail("final chunk size mismatch");
    shards_sent_.reserve(sent);
    for (std::uint32_t s = 0; s < sent; ++s) {
      const std::uint32_t shard = in.u32();
      if (shard >= shard_count_) return fail("sent shard out of range");
      shards_sent_.push_back(shard);
    }
    std::sort(shards_sent_.begin(), shards_sent_.end());
    if (std::adjacent_find(shards_sent_.begin(), shards_sent_.end()) !=
        shards_sent_.end())
      return fail("duplicate shard in sent list");
    final_seen_ = true;
    return true;
  }

  return fail("unknown chunk kind");
}

ReplicationCodec::Assembler::Result ReplicationCodec::Assembler::finish() {
  Result result;
  if (poisoned_) {
    result.error = error_;
    return result;
  }
  const auto reject = [&](const std::string& why) {
    fail(why);
    result.error = error_;
    return result;
  };
  if (!final_seen_) return reject("stream ended before the final chunk");
  // Each data chunk's announced slot version must agree with the final
  // vector — a response stitched from two different cuts is rejected.
  for (const auto& [shard, version] : shard_version_seen_)
    if (shard_versions_[shard] != version)
      return reject("data chunk version disagrees with final vector");

  const std::size_t shard_size = shard_size_of(n_, shard_count_);
  std::vector<bool> sent(shard_count_, false);
  for (const std::uint32_t s : shards_sent_) sent[s] = true;
  for (std::uint64_t s = 0; s < shard_count_; ++s) {
    const std::uint64_t lo = s * shard_size;
    const std::uint64_t hi = std::min<std::uint64_t>(n_, lo + shard_size);
    for (std::uint64_t j = lo; j < hi; ++j) {
      if (sent[s] && received_[j] == nullptr)
        return reject("announced shard arrived incomplete");
      if (!sent[s] && received_[j] != nullptr)
        return reject("block outside the announced shards");
    }
  }
  // A base of the wrong geometry cannot donate blocks (the replica's
  // store predates a server restart that changed the network). Degrade to
  // the cold-bootstrap rule below: if the response did not cover
  // everything, it fails coverage rather than mixing incompatible blocks.
  if (base_ != nullptr && base_->node_count() != n_) base_.reset();

  auto snap = std::shared_ptr<RouteSnapshot>(new RouteSnapshot);
  snap->n_ = static_cast<std::size_t>(n_);
  snap->version_ = version_;
  snap->graph_version_ = graph_version_;
  snap->published_at_ns_ = published_at_ns_;
  snap->node_cost_ = std::move(node_cost_);
  snap->owed_ = std::move(owed_);
  snap->settled_ = std::move(settled_);
  snap->blocks_.resize(snap->n_);
  for (NodeId j = 0; j < snap->n_; ++j) {
    if (received_[j] != nullptr) {
      snap->blocks_[j] = received_[j];
    } else if (base_ != nullptr) {
      snap->blocks_[j] = base_->blocks_[j];
    } else {
      return reject("cold bootstrap response did not cover every shard");
    }
  }
  snap->seal();
  if (snap->checksum() != want_checksum_)
    return reject("assembled snapshot checksum mismatch");
  result.snapshot = std::move(snap);
  result.shard_versions = shard_versions_;
  result.shards_sent = shards_sent_;
  result.blocks_adopted = blocks_adopted_;
  result.shard_count = shard_count_;
  return result;
}

}  // namespace fpss::service
