#include "service/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "service/blockio.h"
#include "util/binio.h"
#include "util/checksum.h"
#include "util/contract.h"

namespace fpss::service {

using util::append_i64;
using util::append_u32;
using util::append_u64;
using util::encode_cost;

namespace {

constexpr char kJournalMagic[8] = {'F', 'P', 'S', 'S', 'J', 'R', 'N', '1'};
constexpr std::uint64_t kJournalVersion = 1;
constexpr std::size_t kJournalHeaderSize = sizeof(kJournalMagic) + 2 * 8;
/// Leads every patch record; a truncated tail cannot resynchronize into a
/// fake record by accident.
constexpr std::uint32_t kRecordMagic = 0x4a525046;  // "FPRJ" little-endian

std::uint64_t fnv_bytes(const std::string& bytes) {
  util::Fnv1a64 fnv;
  for (const char c : bytes) fnv.byte(static_cast<std::uint8_t>(c));
  return fnv.digest();
}

}  // namespace

// Friend of RouteSnapshot: diffs two snapshots by per-block digest, encodes
// one patch record's payload, and replays a payload onto a prior state.
struct CheckpointCodec {
  using Block = RouteSnapshot::DestinationBlock;

  /// Destinations whose block content changed from `from` to `to`. The CoW
  /// pipeline shares unchanged blocks, so the common case is one pointer
  /// compare per destination; a full rebuild falls back to the digest,
  /// which still keeps equal-content blocks out of the patch.
  static std::vector<NodeId> changed(const RouteSnapshot& from,
                                     const RouteSnapshot& to) {
    std::vector<NodeId> out;
    for (NodeId j = 0; j < to.n_; ++j) {
      if (from.blocks_[j] == to.blocks_[j]) continue;
      if (from.blocks_[j]->digest == to.blocks_[j]->digest) continue;
      out.push_back(j);
    }
    return out;
  }

  // Block encode/parse delegate to BlockCodec (blockio.h) — the same v4
  // block encoding the replication wire chunks stream, kept in one place.

  /// Payload: provenance + the checksum replay must reproduce, the global
  /// arrays, then the patched blocks. Self-contained — a record can be
  /// validated and applied knowing only n (from the base image).
  static std::string payload(const RouteSnapshot& snap,
                             const std::vector<NodeId>& patched) {
    std::string out;
    append_u64(out, snap.version_);
    append_u64(out, snap.graph_version_);
    append_u64(out, snap.published_at_ns_);
    append_u64(out, snap.checksum_);
    for (const Cost c : snap.node_cost_) append_i64(out, encode_cost(c));
    for (const Cost::rep r : snap.owed_) append_i64(out, r);
    for (const Cost::rep r : snap.settled_) append_i64(out, r);
    append_u32(out, static_cast<std::uint32_t>(patched.size()));
    for (const NodeId j : patched) {
      append_u32(out, j);
      BlockCodec::append(out, *snap.blocks_[j]);
    }
    return out;
  }

  /// Applies one validated payload onto `state`; null when the payload is
  /// short, structurally invalid, or its replayed checksum does not
  /// reproduce the stored one.
  static std::shared_ptr<const RouteSnapshot> apply(const RouteSnapshot& state,
                                                    const std::string& bytes) {
    const std::size_t n = state.n_;
    util::BinReader in{bytes};
    auto snap = std::shared_ptr<RouteSnapshot>(new RouteSnapshot);
    snap->n_ = n;
    snap->version_ = in.u64();
    snap->graph_version_ = in.u64();
    snap->published_at_ns_ = in.u64();
    const std::uint64_t want = in.u64();
    snap->node_cost_.reserve(n);
    for (std::size_t v = 0; v < n; ++v) snap->node_cost_.push_back(in.cost());
    snap->owed_.reserve(n);
    for (std::size_t v = 0; v < n; ++v) snap->owed_.push_back(in.i64());
    snap->settled_.reserve(n);
    for (std::size_t v = 0; v < n; ++v) snap->settled_.push_back(in.i64());
    const std::uint32_t patches = in.u32();
    if (in.fail || patches > n) return nullptr;
    snap->blocks_ = state.blocks_;
    for (std::uint32_t p = 0; p < patches; ++p) {
      const NodeId j = in.u32();
      if (in.fail || j >= n) return nullptr;
      auto block = BlockCodec::parse(in, n);
      if (block == nullptr) return nullptr;
      snap->blocks_[j] = std::move(block);
    }
    if (in.fail || in.pos != bytes.size()) return nullptr;
    snap->seal();
    if (snap->checksum_ != want) return nullptr;
    return snap;
  }
};

// --- writer ----------------------------------------------------------------

CheckpointWriter::CheckpointWriter(CheckpointPolicy policy)
    : policy_(std::move(policy)),
      base_path_(policy_.directory + "/base.fpss-snap"),
      journal_path_(policy_.directory + "/journal.fpss-jrnl") {}

std::string CheckpointWriter::on_publish(
    const std::shared_ptr<const RouteSnapshot>& snap) {
  FPSS_EXPECTS(snap != nullptr);
  if (policy_.directory.empty()) return "";
  const std::uint64_t every =
      policy_.every_publishes == 0 ? 1 : policy_.every_publishes;
  ++publishes_since_checkpoint_;
  if (last_written_ != nullptr && publishes_since_checkpoint_ < every)
    return "";
  publishes_since_checkpoint_ = 0;
  if (last_written_ == nullptr ||
      last_written_->node_count() != snap->node_count())
    return write_base(snap);
  if (journal_bytes_ > policy_.max_journal_bytes) {
    ++stats_.compactions;
    return write_base(snap);
  }
  return append_patch(snap);
}

std::string CheckpointWriter::write_base(
    const std::shared_ptr<const RouteSnapshot>& snap) {
  // tmp + rename keeps a complete base on disk at every instant; the
  // journal is truncated only afterwards, and until it is, its binding to
  // the *old* base checksum makes it a no-op against the new one.
  const std::string tmp = base_path_ + ".tmp";
  const SnapshotSaveResult saved = save_snapshot(*snap, tmp);
  if (!saved.ok()) return saved.error;
  if (std::rename(tmp.c_str(), base_path_.c_str()) != 0)
    return "rename '" + tmp + "' -> '" + base_path_ + "' failed";
  std::string header;
  header.append(kJournalMagic, sizeof(kJournalMagic));
  append_u64(header, kJournalVersion);
  append_u64(header, snap->checksum());
  std::ofstream out(journal_path_, std::ios::binary | std::ios::trunc);
  if (!out) return "cannot open '" + journal_path_ + "' for writing";
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  out.flush();
  if (!out) return "write to '" + journal_path_ + "' failed";
  journal_bytes_ = header.size();
  last_written_ = snap;
  ++stats_.checkpoints;
  stats_.bytes_written += saved.bytes + header.size();
  return "";
}

std::string CheckpointWriter::append_patch(
    const std::shared_ptr<const RouteSnapshot>& snap) {
  const std::vector<NodeId> patched =
      CheckpointCodec::changed(*last_written_, *snap);
  const std::string payload = CheckpointCodec::payload(*snap, patched);
  std::string record;
  append_u32(record, kRecordMagic);
  append_u64(record, payload.size());
  append_u64(record, fnv_bytes(payload));
  record += payload;
  std::ofstream out(journal_path_, std::ios::binary | std::ios::app);
  if (!out) return "cannot open '" + journal_path_ + "' for appending";
  out.write(record.data(), static_cast<std::streamsize>(record.size()));
  out.flush();
  if (!out) return "write to '" + journal_path_ + "' failed";
  journal_bytes_ += record.size();
  last_written_ = snap;
  ++stats_.checkpoints;
  stats_.bytes_written += record.size();
  stats_.patches += patched.size();
  return "";
}

// --- load ------------------------------------------------------------------

CheckpointLoadResult load_checkpoint(const std::string& directory) {
  CheckpointLoadResult result;
  const SnapshotLoadResult base =
      load_snapshot(directory + "/base.fpss-snap");
  if (!base.ok()) {
    result.error = base.error;
    return result;
  }
  std::shared_ptr<const RouteSnapshot> state = base.snapshot;

  // A missing, short, or mismatched journal is not an error — the base
  // alone is a complete checkpoint (exactly the crash window between a
  // compaction's base rename and its journal truncate).
  std::ifstream in(directory + "/journal.fpss-jrnl", std::ios::binary);
  if (in) {
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string bytes = buffer.str();
    if (bytes.size() >= kJournalHeaderSize &&
        std::memcmp(bytes.data(), kJournalMagic, sizeof(kJournalMagic)) == 0) {
      util::BinReader header{bytes, sizeof(kJournalMagic)};
      const std::uint64_t version = header.u64();
      const std::uint64_t bound_to = header.u64();
      if (version == kJournalVersion && bound_to == state->checksum()) {
        std::size_t pos = kJournalHeaderSize;
        for (;;) {
          // Each record stands alone: any truncated or corrupt tail ends
          // the replay at the last complete record.
          if (bytes.size() - pos < 20) break;
          util::BinReader rec{bytes, pos};
          if (rec.u32() != kRecordMagic) break;
          const std::uint64_t len = rec.u64();
          const std::uint64_t want = rec.u64();
          if (bytes.size() - rec.pos < len) break;
          const std::string payload = bytes.substr(rec.pos, len);
          if (fnv_bytes(payload) != want) break;
          auto next = CheckpointCodec::apply(*state, payload);
          if (next == nullptr) break;
          state = std::move(next);
          ++result.records_applied;
          pos = rec.pos + len;
        }
      }
    }
  }

  if (!state->self_check()) {
    result.error = "structural validation failed";
    result.records_applied = 0;
    return result;
  }
  result.snapshot = std::move(state);
  return result;
}

}  // namespace fpss::service
