#include "service/query_backend.h"

namespace fpss::service {

QueryOutcome ServiceQueryBackend::query_batch(
    std::span<const Request> batch) {
  QueryOutcome outcome;
  outcome.replies = service_.query(batch);
  return outcome;
}

SubmitAck ServiceQueryBackend::submit_deltas(
    std::span<const RouteService::Delta> deltas) {
  SubmitAck ack;
  ack.accepted = service_.submit(
      std::vector<RouteService::Delta>(deltas.begin(), deltas.end()));
  if (ack.accepted > 0) service_.drain();
  ack.publish_count = service_.publish_count();
  return ack;
}

CountersOutcome ServiceQueryBackend::counters() {
  CountersOutcome outcome;
  outcome.counters = service_.counters();
  return outcome;
}

std::uint64_t ServiceQueryBackend::wait_for_publish_beyond(
    std::uint64_t count, int timeout_ms) {
  return service_.wait_for_publish_beyond(count, timeout_ms);
}

}  // namespace fpss::service
