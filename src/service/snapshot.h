// The serving layer's unit of publication: one immutable, self-contained
// copy of everything the mechanism computed — selected next hops, LCP
// transit costs c(i,j), per-packet VCG prices p^k_ij (Theorem 1), and
// per-node payment totals from the payments ledger — exported from a
// *converged* pricing session.
//
// Layout is destination-major, mirroring the sink-tree structure of the
// routing state: each destination j owns one immutable block holding the
// next-hop/cost columns (indexed by source i) and a local CSR whose rows
// are exactly the intermediate nodes of the selected i -> j path in path
// order (so the price rows double as the stored paths). Queries are array
// lookups plus a short row scan; nothing allocates except path()
// materialization.
//
// Blocks are individually refcounted (shared_ptr) so snapshots can be
// built *copy-on-write*: from_session_incremental re-extracts only the
// destinations whose sink tree changed since the previous snapshot and
// shares every clean block with it. The content checksum is hierarchical
// (per-block digests folded into the root) for the same reason — an
// incremental export checksums O(dirty) data, not O(n^2).
//
// Snapshots also serialize ("fpss-snap v4", binary header + FNV-1a
// checksum, the service-layer sibling of graph/io.h's "fpss-graph v1") so
// a warm restart can serve traffic before the first reconvergence. v3
// switched the stored digest to the hierarchical per-destination scheme;
// v4 (payload layout unchanged from v3) marks the incremental-checkpoint
// era, where a base image may be accompanied by a per-destination patch
// journal sidecar (see service/checkpoint.h). Older files are rejected
// with a version error.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "graph/path.h"
#include "payments/ledger.h"
#include "util/cost.h"
#include "util/types.h"

namespace fpss::pricing {
class Session;
}

namespace fpss::util {
class ThreadPool;
}

namespace fpss::service {

/// What an export did: how many destination rows (sink trees) it had to
/// re-extract from the session versus share with the previous snapshot.
struct SnapshotExportStats {
  std::size_t rows_rebuilt = 0;  ///< destination rows extracted from session
  std::size_t rows_reused = 0;   ///< destination rows shared with prev
  /// The incremental path degraded to a full rebuild (topology generation
  /// moved, so per-row sharing against prev was not attempted).
  bool full_rebuild = false;
};

class RouteSnapshot {
 public:
  /// Exports the current routes/prices of `session` plus (optionally) the
  /// payment totals of `ledger`. Precondition: the session's engine has
  /// converged (the snapshot of a half-converged network is not a
  /// meaningful good to serve); `version` labels the export — callers use
  /// bgp::Engine::converged_epochs(). With a `pool`, per-destination
  /// extraction runs data-parallel (bit-identical at any width).
  static std::shared_ptr<const RouteSnapshot> from_session(
      const pricing::Session& session, std::uint64_t version,
      const payments::Ledger* ledger = nullptr,
      util::ThreadPool* pool = nullptr);

  /// Copy-on-write export: re-extracts only the destinations in `dirty`
  /// and shares `prev`'s blocks for every other destination. The result is
  /// logically identical to a full from_session export *provided* `dirty`
  /// is a superset of the destinations whose sink tree actually changed —
  /// pricing::Session::dirty_destinations provides exactly that set.
  /// Falls back to a full rebuild (ignoring `dirty`) when the topology
  /// generation moved, since prev's rows then describe a different graph.
  /// Preconditions: prev != nullptr, same node count, session converged,
  /// every dirty id in range.
  static std::shared_ptr<const RouteSnapshot> from_session_incremental(
      const std::shared_ptr<const RouteSnapshot>& prev,
      const pricing::Session& session, std::uint64_t version,
      std::span<const NodeId> dirty, const payments::Ledger* ledger = nullptr,
      util::ThreadPool* pool = nullptr, SnapshotExportStats* stats = nullptr);

  /// CoW surgery: a snapshot sharing every block of `prev` except the
  /// destinations in `take`, whose blocks are shared from `donor` instead.
  /// Global state (node costs, payment totals, graph version, publish
  /// stamp) comes from `donor`; `version` labels the result. This is the
  /// building block of the publish pipeline's per-shard intermediates (the
  /// snapshot a shard slot serves while other shards are still exporting),
  /// public so tests can fabricate fence-era views. Preconditions: equal
  /// node counts, every id in `take` in range and non-null in `donor`.
  static std::shared_ptr<const RouteSnapshot> cow_replace(
      const RouteSnapshot& prev, const RouteSnapshot& donor,
      std::span<const NodeId> take, std::uint64_t version);

  std::size_t node_count() const { return n_; }
  /// Converged-epoch label assigned at export.
  std::uint64_t version() const { return version_; }
  /// Graph::version() of the topology the snapshot was taken from.
  std::uint64_t graph_version() const { return graph_version_; }
  /// Wall-clock stamp (ns since the Unix epoch) taken at export — the
  /// publication time for staleness purposes. Persisted, so a warm-started
  /// daemon reports the true age of the prices it serves.
  std::uint64_t published_at_ns() const { return published_at_ns_; }
  /// FNV-1a digest of the full logical content, fixed at construction.
  std::uint64_t checksum() const { return checksum_; }
  /// The digest of everything except the publish provenance (version and
  /// wall-clock stamp): two snapshots of the same converged state compare
  /// equal here no matter when or by which path they were exported — the
  /// incremental-equals-full property tests pin exactly this.
  std::uint64_t content_checksum() const;

  /// Declared per-packet transit cost of node v.
  Cost node_cost(NodeId v) const { return node_cost_[v]; }

  /// c(i, j): transit cost of the selected LCP. Zero for i == j, infinite
  /// when unreachable.
  Cost cost(NodeId i, NodeId j) const { return blocks_[j]->cost[i]; }
  bool reachable(NodeId i, NodeId j) const { return cost(i, j).is_finite(); }

  /// i's selected next hop toward j (kInvalidNode for i == j / unreachable).
  NodeId next_hop(NodeId i, NodeId j) const { return blocks_[j]->next_hop[i]; }

  /// Full selected path i .. j, materialized from the stored transit row.
  /// Empty when unreachable; {i} when i == j.
  graph::Path path(NodeId i, NodeId j) const;

  /// Per-packet price p^k_ij owed to transit node k. Zero when k is not an
  /// intermediate node of the selected path; infinite when k is a monopoly
  /// for the pair.
  Cost price(NodeId k, NodeId i, NodeId j) const;

  /// sum_k p^k_ij — the total per-packet payment for the pair.
  Cost pair_payment(NodeId i, NodeId j) const;

  /// Payment totals of node k as of the export (zero without a ledger).
  Cost::rep payment_owed(NodeId k) const { return owed_[k]; }
  Cost::rep payment_settled(NodeId k) const { return settled_[k]; }
  /// owed + settled: everything the mechanism has credited to k.
  Cost::rep payment_total(NodeId k) const { return owed_[k] + settled_[k]; }

  /// Adapter for payments::Ledger::record_packets and settle_traffic.
  payments::PriceFn price_fn() const;

  /// True iff destination j's block is the same object in both snapshots —
  /// the observable CoW contract (shared, not merely equal). Test hook.
  bool shares_block_with(const RouteSnapshot& other, NodeId j) const {
    return blocks_[j] == other.blocks_[j];
  }

  /// Recomputes the content digest and structural invariants (offsets
  /// monotone, hop counts consistent, costs equal the sum of their row's
  /// transit costs). A reader that can observe a torn snapshot would fail
  /// here; the publication tests lean on it.
  bool self_check() const;

 private:
  friend struct SnapshotCodec;
  friend struct CheckpointCodec;   ///< per-block patch journal (checkpoint.cpp)
  friend struct BlockCodec;        ///< shared v4 block encoding (blockio.h)
  friend struct ReplicationCodec;  ///< per-shard wire chunks (replication.h)
  friend class PublishPipeline;    ///< writes dirty blocks in place (pipeline.cpp)

  /// Everything destination j's sink tree exports, immutable once built.
  /// The CSR is local (offset[0] == 0); `digest` folds the arrays once so
  /// snapshots reusing the block fold one word instead of re-hashing it.
  struct DestinationBlock {
    std::vector<NodeId> next_hop;       ///< by source i, size n
    std::vector<Cost> cost;             ///< by source i, size n
    std::vector<std::uint64_t> offset;  ///< local CSR fence, size n+1
    std::vector<NodeId> transit;        ///< CSR entries: path intermediates
    std::vector<Cost> price;            ///< CSR entries: p^k_ij, aligned
    std::uint64_t digest = 0;

    std::uint64_t compute_digest() const;
  };
  using BlockPtr = std::shared_ptr<const DestinationBlock>;

  RouteSnapshot() = default;

  /// Builds destination j's block from the (converged) session — the one
  /// extraction path both the full and the incremental export share.
  static BlockPtr extract_destination(const pricing::Session& session,
                                      NodeId j, std::size_t n);
  /// Common tail of both exports: payments, entry total, checksum.
  void finish(const payments::Ledger* ledger);
  /// The second half of finish(): entry total + checksum over blocks
  /// already in place. The pipeline sets payments before its fan-out and
  /// seals the merged snapshot after the per-shard tasks join.
  void seal();
  /// Folds every field into the digest in serialization order.
  std::uint64_t compute_checksum() const;

  std::size_t n_ = 0;
  std::uint64_t version_ = 0;
  std::uint64_t graph_version_ = 0;
  std::uint64_t published_at_ns_ = 0;
  std::uint64_t checksum_ = 0;
  std::uint64_t total_entries_ = 0;      ///< sum of block CSR sizes
  std::vector<Cost> node_cost_;          ///< declared costs, size n
  std::vector<BlockPtr> blocks_;         ///< per destination, size n
  std::vector<Cost::rep> owed_;          ///< size n
  std::vector<Cost::rep> settled_;       ///< size n
};

// --- binary persistence ----------------------------------------------------

/// Outcome of a save: `error` is empty on success (same convention the
/// graph::SaveResult uses — failures are runtime conditions with a reason,
/// not bare booleans).
struct SnapshotSaveResult {
  std::string error;
  std::uint64_t bytes = 0;  ///< header + payload bytes written on success
  bool ok() const { return error.empty(); }
};

/// Outcome of a load; mirrors graph::ParseResult.
struct SnapshotLoadResult {
  std::shared_ptr<const RouteSnapshot> snapshot;  ///< null on failure
  std::string error;  ///< "checksum mismatch (stored .. != computed ..)"
  bool ok() const { return snapshot != nullptr; }
};

/// Writes the "fpss-snap v4" binary image: an 8-byte magic, format
/// version, payload byte count, and content checksum, then the payload.
SnapshotSaveResult save_snapshot(const RouteSnapshot& snapshot,
                                 const std::string& path);

/// Reads and validates a saved snapshot: magic/version/length checks,
/// structural bounds on every array, and the checksum must reproduce.
SnapshotLoadResult load_snapshot(const std::string& path);

/// The in-memory half of load_snapshot(): validates a complete fpss-snap
/// image already in memory. This is the attack surface a hostile file (or
/// fuzz input) exercises — everything after the read(2) — so the fuzz
/// harness drives exactly this function.
SnapshotLoadResult load_snapshot_bytes(std::string_view bytes);

}  // namespace fpss::service
