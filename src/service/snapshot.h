// The serving layer's unit of publication: one immutable, self-contained
// copy of everything the mechanism computed — selected next hops, LCP
// transit costs c(i,j), per-packet VCG prices p^k_ij (Theorem 1), and
// per-node payment totals from the payments ledger — exported from a
// *converged* pricing session.
//
// Layout is flat and destination-major, mirroring the sink-tree structure
// of the routing state: next_hop/cost are n*n arrays indexed j*n+i, and
// prices are one CSR over the (j, i) pairs whose entries are exactly the
// intermediate nodes of the selected i -> j path in path order (so the
// price rows double as the stored paths). Queries are array lookups plus a
// short row scan; nothing allocates except path() materialization.
//
// Snapshots also serialize ("fpss-snap v2", binary header + FNV-1a
// checksum, the service-layer sibling of graph/io.h's "fpss-graph v1") so
// a warm restart can serve traffic before the first reconvergence. v2
// added the publish wall-clock stamp that staleness accounting and the
// remote protocol report; v1 files are rejected with a version error.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/path.h"
#include "payments/ledger.h"
#include "util/cost.h"
#include "util/types.h"

namespace fpss::pricing {
class Session;
}

namespace fpss::service {

class RouteSnapshot {
 public:
  /// Exports the current routes/prices of `session` plus (optionally) the
  /// payment totals of `ledger`. Precondition: the session's engine has
  /// converged (the snapshot of a half-converged network is not a
  /// meaningful good to serve); `version` labels the export — callers use
  /// bgp::Engine::converged_epochs().
  static std::shared_ptr<const RouteSnapshot> from_session(
      const pricing::Session& session, std::uint64_t version,
      const payments::Ledger* ledger = nullptr);

  std::size_t node_count() const { return n_; }
  /// Converged-epoch label assigned at export.
  std::uint64_t version() const { return version_; }
  /// Graph::version() of the topology the snapshot was taken from.
  std::uint64_t graph_version() const { return graph_version_; }
  /// Wall-clock stamp (ns since the Unix epoch) taken at export — the
  /// publication time for staleness purposes. Persisted, so a warm-started
  /// daemon reports the true age of the prices it serves.
  std::uint64_t published_at_ns() const { return published_at_ns_; }
  /// FNV-1a digest of the full logical content, fixed at construction.
  std::uint64_t checksum() const { return checksum_; }

  /// Declared per-packet transit cost of node v.
  Cost node_cost(NodeId v) const { return node_cost_[v]; }

  /// c(i, j): transit cost of the selected LCP. Zero for i == j, infinite
  /// when unreachable.
  Cost cost(NodeId i, NodeId j) const { return cost_[idx(i, j)]; }
  bool reachable(NodeId i, NodeId j) const { return cost(i, j).is_finite(); }

  /// i's selected next hop toward j (kInvalidNode for i == j / unreachable).
  NodeId next_hop(NodeId i, NodeId j) const { return next_hop_[idx(i, j)]; }

  /// Full selected path i .. j, materialized from the stored transit row.
  /// Empty when unreachable; {i} when i == j.
  graph::Path path(NodeId i, NodeId j) const;

  /// Per-packet price p^k_ij owed to transit node k. Zero when k is not an
  /// intermediate node of the selected path; infinite when k is a monopoly
  /// for the pair.
  Cost price(NodeId k, NodeId i, NodeId j) const;

  /// sum_k p^k_ij — the total per-packet payment for the pair.
  Cost pair_payment(NodeId i, NodeId j) const;

  /// Payment totals of node k as of the export (zero without a ledger).
  Cost::rep payment_owed(NodeId k) const { return owed_[k]; }
  Cost::rep payment_settled(NodeId k) const { return settled_[k]; }
  /// owed + settled: everything the mechanism has credited to k.
  Cost::rep payment_total(NodeId k) const { return owed_[k] + settled_[k]; }

  /// Adapter for payments::Ledger::record_packets and settle_traffic.
  payments::PriceFn price_fn() const;

  /// Recomputes the content digest and structural invariants (offsets
  /// monotone, hop counts consistent, costs equal the sum of their row's
  /// transit costs). A reader that can observe a torn snapshot would fail
  /// here; the publication tests lean on it.
  bool self_check() const;

 private:
  friend struct SnapshotCodec;
  RouteSnapshot() = default;

  std::size_t idx(NodeId i, NodeId j) const {
    return static_cast<std::size_t>(j) * n_ + i;
  }
  /// Folds every field into the digest in serialization order.
  std::uint64_t compute_checksum() const;

  std::size_t n_ = 0;
  std::uint64_t version_ = 0;
  std::uint64_t graph_version_ = 0;
  std::uint64_t published_at_ns_ = 0;
  std::uint64_t checksum_ = 0;
  std::vector<Cost> node_cost_;          ///< declared costs, size n
  std::vector<NodeId> next_hop_;         ///< j*n+i, size n*n
  std::vector<Cost> cost_;               ///< j*n+i, size n*n
  std::vector<std::uint64_t> price_offset_;  ///< CSR fence, size n*n+1
  std::vector<NodeId> transit_;          ///< CSR entries: path intermediates
  std::vector<Cost> price_;              ///< CSR entries: p^k_ij, aligned
  std::vector<Cost::rep> owed_;          ///< size n
  std::vector<Cost::rep> settled_;       ///< size n
};

// --- binary persistence ----------------------------------------------------

/// Outcome of a save: `error` is empty on success (same convention the
/// graph::SaveResult uses — failures are runtime conditions with a reason,
/// not bare booleans).
struct SnapshotSaveResult {
  std::string error;
  bool ok() const { return error.empty(); }
};

/// Outcome of a load; mirrors graph::ParseResult.
struct SnapshotLoadResult {
  std::shared_ptr<const RouteSnapshot> snapshot;  ///< null on failure
  std::string error;  ///< "checksum mismatch (stored .. != computed ..)"
  bool ok() const { return snapshot != nullptr; }
};

/// Writes the "fpss-snap v2" binary image: an 8-byte magic, format
/// version, payload byte count, and content checksum, then the payload.
SnapshotSaveResult save_snapshot(const RouteSnapshot& snapshot,
                                 const std::string& path);

/// Reads and validates a saved snapshot: magic/version/length checks,
/// structural bounds on every array, and the checksum must reproduce.
SnapshotLoadResult load_snapshot(const std::string& path);

}  // namespace fpss::service
