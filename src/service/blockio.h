// The fpss-snap v4 per-destination block encoding, hoisted out of the
// checkpoint journal so every consumer of the format shares one codec:
//
//   block := next_hop[n]:u32  cost[n]:i64  offset[n+1]:u64
//            transit[entries]:u32  price[entries]:i64
//
// (entries = offset[n], costs via the -1 = +infinity convention). Users:
//   * checkpoint.cpp — patch-journal records (the original home);
//   * replication.cpp — kSnapshotChunk frames streaming shards to a
//     read replica.
// parse() validates structure before it allocates from attacker-supplied
// counts: offsets must be monotone and bounded by n^2, transit ids < n —
// the same discipline the journal replay always had, now enforced at the
// one shared entry point.
#pragma once

#include "service/snapshot.h"
#include "util/binio.h"

namespace fpss::service {

struct BlockCodec {
  using Block = RouteSnapshot::DestinationBlock;
  using BlockPtr = RouteSnapshot::BlockPtr;

  /// Appends one block in serialization order.
  static void append(std::string& out, const Block& block);

  /// Parses and validates one block for an n-node snapshot; null on any
  /// structural violation (reader left failed or mid-block — callers
  /// treat null as "reject the whole payload").
  static BlockPtr parse(util::BinReader& in, std::size_t n);

  /// Serialized size of `block` for an n-node snapshot, for chunk
  /// budgeting: 12n + 8(n + 1) + 12 * entries bytes.
  static std::size_t encoded_bytes(const Block& block, std::size_t n);
};

}  // namespace fpss::service
