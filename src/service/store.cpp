#include "service/store.h"

#include <utility>

#include "util/contract.h"

namespace fpss::service {

std::shared_ptr<const RouteSnapshot> SnapshotStore::publish(
    std::shared_ptr<const RouteSnapshot> snapshot) {
  FPSS_EXPECTS(snapshot != nullptr);
  const std::uint64_t version = snapshot->version();
  std::shared_ptr<const RouteSnapshot> previous;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    previous = std::exchange(current_, std::move(snapshot));
    ++publishes_;
  }
  FPSS_ASSERT(previous == nullptr || previous->version() <= version);
  return previous;
}

}  // namespace fpss::service
