#include "service/store.h"

#include <algorithm>
#include <utility>

#include "util/contract.h"

namespace fpss::service {

std::shared_ptr<const RouteSnapshot> SnapshotStore::publish(
    std::shared_ptr<const RouteSnapshot> snapshot) {
  FPSS_EXPECTS(snapshot != nullptr);
  const std::uint64_t version = snapshot->version();
  std::shared_ptr<const RouteSnapshot> previous;
  {
    util::MutexLock lock(mutex_);
    previous = std::exchange(current_, std::move(snapshot));
    ++publishes_;
  }
  FPSS_ASSERT(previous == nullptr || previous->version() <= version);
  return previous;
}

namespace {

std::size_t clamp_shards(std::size_t node_count, std::size_t shard_count) {
  const std::size_t n = node_count == 0 ? 1 : node_count;
  if (shard_count == 0) return 1;
  return shard_count < n ? shard_count : n;
}

}  // namespace

ShardedSnapshotStore::ShardedSnapshotStore(std::size_t node_count,
                                           std::size_t shard_count)
    : shard_count_(clamp_shards(node_count, shard_count)),
      shard_size_((std::max<std::size_t>(node_count, 1) + shard_count_ - 1) /
                  shard_count_),
      shards_(shard_count_) {}

ShardedSnapshotStore::View ShardedSnapshotStore::acquire() const {
  View view;
  view.shard_size = shard_size_;
  util::MutexLock lock(mutex_);
  view.newest = newest_;
  view.shards = shards_;
  return view;
}

std::size_t ShardedSnapshotStore::publish(
    std::shared_ptr<const RouteSnapshot> snapshot,
    const std::vector<bool>& shard_dirty) {
  FPSS_EXPECTS(snapshot != nullptr);
  FPSS_EXPECTS(shard_dirty.size() == shard_count_);
  const std::uint64_t version = snapshot->version();
  std::size_t swapped = 0;
  // Displaced pointers die outside the lock (refcount reclamation can run
  // a snapshot destructor; keep that off the critical section).
  std::vector<std::shared_ptr<const RouteSnapshot>> displaced;
  displaced.reserve(shard_count_ + 1);
  {
    util::MutexLock lock(mutex_);
    FPSS_EXPECTS(!fence_open_);  // direct publish may not cross a fence
    FPSS_ASSERT(newest_ == nullptr || newest_->version() <= version);
    for (std::size_t s = 0; s < shard_count_; ++s) {
      if (!shard_dirty[s] && shards_[s] != nullptr) continue;
      displaced.push_back(std::exchange(shards_[s], snapshot));
      ++swapped;
    }
    displaced.push_back(std::exchange(newest_, std::move(snapshot)));
    ++publishes_;
  }
  return swapped;
}

std::size_t ShardedSnapshotStore::publish_all(
    std::shared_ptr<const RouteSnapshot> snapshot) {
  return publish(std::move(snapshot),
                 std::vector<bool>(shard_count_, true));
}

void ShardedSnapshotStore::fence_begin(std::uint64_t version) {
  util::MutexLock lock(mutex_);
  FPSS_EXPECTS(!fence_open_);
  FPSS_EXPECTS(newest_ == nullptr || newest_->version() <= version);
  fence_open_ = true;
  fence_version_ = version;
  fence_touched_.assign(shard_count_, false);
}

void ShardedSnapshotStore::publish_shard(
    std::size_t shard, std::shared_ptr<const RouteSnapshot> snapshot) {
  FPSS_EXPECTS(snapshot != nullptr);
  FPSS_EXPECTS(shard < shard_count_);
  std::shared_ptr<const RouteSnapshot> displaced;
  {
    util::MutexLock lock(mutex_);
    FPSS_EXPECTS(fence_open_);
    FPSS_EXPECTS(snapshot->version() == fence_version_);
    displaced = std::exchange(shards_[shard], std::move(snapshot));
    fence_touched_[shard] = true;
  }
}

std::size_t ShardedSnapshotStore::fence_end(
    std::shared_ptr<const RouteSnapshot> merged) {
  FPSS_EXPECTS(merged != nullptr);
  std::size_t swapped = 0;
  std::vector<std::shared_ptr<const RouteSnapshot>> displaced;
  displaced.reserve(shard_count_ + 1);
  {
    util::MutexLock lock(mutex_);
    FPSS_EXPECTS(fence_open_);
    FPSS_EXPECTS(merged->version() == fence_version_);
    for (std::size_t s = 0; s < shard_count_; ++s) {
      if (!fence_touched_[s] && shards_[s] != nullptr) continue;
      displaced.push_back(std::exchange(shards_[s], merged));
      ++swapped;
    }
    displaced.push_back(std::exchange(newest_, std::move(merged)));
    ++publishes_;
    fence_open_ = false;
    fence_touched_.clear();
  }
  return swapped;
}

ShardedSnapshotStore::ExportCut ShardedSnapshotStore::export_cut() const {
  ExportCut cut;
  cut.shard_versions.assign(shard_count_, 0);
  util::MutexLock lock(mutex_);
  cut.newest = newest_;
  const std::uint64_t ceiling =
      newest_ == nullptr ? 0 : newest_->version();
  for (std::size_t s = 0; s < shard_count_; ++s)
    if (shards_[s] != nullptr)
      cut.shard_versions[s] = std::min(shards_[s]->version(), ceiling);
  return cut;
}

std::vector<std::uint64_t> ShardedSnapshotStore::shard_versions() const {
  std::vector<std::uint64_t> versions(shard_count_, 0);
  util::MutexLock lock(mutex_);
  for (std::size_t s = 0; s < shard_count_; ++s)
    if (shards_[s] != nullptr) versions[s] = shards_[s]->version();
  return versions;
}

}  // namespace fpss::service
