#include "service/pipeline.h"

#include <algorithm>

#include "graph/graph.h"
#include "payments/ledger.h"
#include "pricing/session.h"
#include "util/clock.h"
#include "util/contract.h"
#include "util/task_group.h"
#include "util/thread_pool.h"

namespace fpss::service {

std::shared_ptr<const RouteSnapshot> PublishPipeline::run(
    ShardedSnapshotStore& store,
    const std::shared_ptr<const RouteSnapshot>& prev,
    const std::shared_ptr<const RouteSnapshot>& warm_base,
    const pricing::Session& session, std::uint64_t version,
    const std::optional<std::vector<NodeId>>& dirty,
    const payments::Ledger* ledger, util::ThreadPool* pool,
    PipelineStats* stats, const PipelineHooks* hooks) {
  FPSS_EXPECTS(session.engine().stats().converged);
  const graph::Graph& g = session.network().topology();
  const std::size_t n = g.node_count();
  PipelineStats local;
  std::shared_ptr<const RouteSnapshot> result;

  // The incremental paths need a CoW base from this session and a usable
  // dirty set on the same topology generation; anything else is a full
  // parallel export with every shard flagged dirty.
  const bool incremental_ok = prev != nullptr && dirty.has_value() &&
                              prev->graph_version() == g.version();
  if (!incremental_ok) {
    auto snap = RouteSnapshot::from_session(session, version, ledger, pool);
    local.rows_rebuilt = n;
    local.full_rebuild = prev != nullptr;
    std::vector<bool> shard_dirty(store.shard_count(), true);
    if (warm_base != nullptr && warm_base->node_count() == n) {
      // Warm-start adoption: wherever the fresh export reproduced the disk
      // snapshot's per-block digest, adopt the disk block instead, so the
      // store's slots (all currently serving warm_base) keep
      // pointer-identity for unchanged sink trees and clean shards need no
      // swap. Digest equality is direct content proof — no Graph::version()
      // gate, a restart's cost deltas only dirty the trees they touch.
      // Mutating past from_session's seal is safe: we hold the only
      // reference, and equal digests leave the folded checksum unchanged.
      auto* fresh = const_cast<RouteSnapshot*>(snap.get());
      for (NodeId j = 0; j < n; ++j) {
        if (warm_base->blocks_[j] != nullptr &&
            warm_base->blocks_[j]->digest == fresh->blocks_[j]->digest) {
          fresh->blocks_[j] = warm_base->blocks_[j];
          ++local.rows_adopted;
        }
      }
      for (std::size_t s = 0; s < store.shard_count(); ++s) {
        const std::size_t lo = s * store.shard_size();
        const std::size_t hi = std::min(n, lo + store.shard_size());
        bool moved = false;
        for (std::size_t j = lo; j < hi && !moved; ++j)
          moved = fresh->blocks_[j] != warm_base->blocks_[j];
        shard_dirty[s] = moved;
      }
    }
    local.shards_swapped = store.publish(snap, shard_dirty);
    result = std::move(snap);
    if (stats != nullptr) *stats = local;
    return result;
  }

  // Dedup the dirty set and group it by shard — each export task owns one
  // shard's slots exactly once.
  std::vector<std::vector<NodeId>> by_shard(store.shard_count());
  std::vector<bool> seen(n, false);
  std::size_t unique = 0;
  for (const NodeId j : *dirty) {
    FPSS_EXPECTS(j < n);
    if (!seen[j]) {
      seen[j] = true;
      by_shard[store.shard_of(j)].push_back(j);
      ++unique;
    }
  }
  std::size_t dirty_shards = 0;
  for (const auto& ids : by_shard)
    if (!ids.empty()) ++dirty_shards;

  // The fan-out only pays off when there is more than one dirty shard AND
  // more than one worker to overlap them on; otherwise the inline
  // incremental export (which parallelizes across dirty *rows*) is the
  // faster shape and keeps the store on the strict invariant throughout.
  if (pool == nullptr || pool->width() <= 1 || dirty_shards <= 1) {
    SnapshotExportStats es;
    auto snap = RouteSnapshot::from_session_incremental(
        prev, session, version, *dirty, ledger, pool, &es);
    local.rows_rebuilt = es.rows_rebuilt;
    local.rows_reused = es.rows_reused;
    local.full_rebuild = es.full_rebuild;
    std::vector<bool> shard_dirty(store.shard_count(), true);
    if (!es.full_rebuild)
      for (std::size_t s = 0; s < by_shard.size(); ++s)
        shard_dirty[s] = !by_shard[s].empty();
    local.shards_swapped = store.publish(snap, shard_dirty);
    result = std::move(snap);
    if (stats != nullptr) *stats = local;
    return result;
  }

  // Staged fan-out. The merged snapshot's global state (node costs,
  // payments, provenance) is fixed up front so the per-shard intermediates
  // can copy it; its dirty blocks are written in place by the tasks (each
  // owns disjoint slots) and everything else stays shared with prev.
  auto merged = std::shared_ptr<RouteSnapshot>(new RouteSnapshot);
  merged->n_ = n;
  merged->version_ = version;
  merged->graph_version_ = g.version();
  merged->published_at_ns_ = util::wall_clock_ns();
  merged->node_cost_.reserve(n);
  for (NodeId v = 0; v < n; ++v) merged->node_cost_.push_back(g.cost(v));
  merged->blocks_ = prev->blocks_;
  if (ledger != nullptr) {
    FPSS_EXPECTS(ledger->node_count() == n);
    merged->owed_ = ledger->owed_all();
    merged->settled_ = ledger->settled_all();
  } else {
    merged->owed_.assign(n, 0);
    merged->settled_.assign(n, 0);
  }

  store.fence_begin(version);
  util::TaskGroup group(pool);
  for (std::size_t s = 0; s < by_shard.size(); ++s) {
    if (by_shard[s].empty()) continue;
    group.add([&, s] {
      if (hooks != nullptr && hooks->before_export) hooks->before_export(s);
      for (const NodeId j : by_shard[s])
        merged->blocks_[j] = RouteSnapshot::extract_destination(session, j, n);
      // The intermediate shares this shard's freshly built BlockPtrs with
      // merged and prev's blocks for everything else — readers hitting the
      // slot see exactly the rows fence_end will make canonical.
      store.publish_shard(
          s, RouteSnapshot::cow_replace(*prev, *merged, by_shard[s], version));
      if (hooks != nullptr && hooks->after_shard_publish)
        hooks->after_shard_publish(s);
    });
  }
  local.max_exports_inflight = group.run_and_wait();
  merged->seal();
  local.shards_swapped = store.fence_end(merged);
  local.rows_rebuilt = unique;
  local.rows_reused = n - unique;
  local.pipelined = true;
  result = std::move(merged);
  if (stats != nullptr) *stats = local;
  return result;
}

}  // namespace fpss::service
