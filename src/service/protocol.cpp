#include "service/protocol.h"

#include "util/clock.h"

namespace fpss::service {

namespace {

bool valid_node(NodeId v, std::size_t n) { return v < n; }

}  // namespace

Reply answer(const RouteSnapshot& snapshot, const Request& request,
             std::uint64_t now_ns) {
  return answer(snapshot,
                ReplyProvenance{snapshot.version(), snapshot.published_at_ns()},
                request, now_ns);
}

Reply answer(const RouteSnapshot& snapshot, const ReplyProvenance& provenance,
             const Request& request, std::uint64_t now_ns) {
  Reply reply;
  reply.snapshot_version = provenance.snapshot_version;
  reply.published_at_ns = provenance.published_at_ns;
  reply.age_ns = util::age_from(provenance.published_at_ns, now_ns);
  const std::size_t n = snapshot.node_count();

  switch (request.kind) {
    case RequestKind::kCost:
    case RequestKind::kPairPayment:
    case RequestKind::kNextHop:
    case RequestKind::kPath: {
      if (!valid_node(request.i, n) || !valid_node(request.j, n)) {
        reply.status = Status::kBadNode;
        return reply;
      }
      const bool reachable = snapshot.reachable(request.i, request.j);
      if (!reachable) reply.status = Status::kUnreachable;
      switch (request.kind) {
        case RequestKind::kCost:
          reply.value = snapshot.cost(request.i, request.j);
          break;
        case RequestKind::kPairPayment:
          reply.value = snapshot.pair_payment(request.i, request.j);
          break;
        case RequestKind::kNextHop:
          reply.node = snapshot.next_hop(request.i, request.j);
          reply.value = snapshot.cost(request.i, request.j);
          break;
        case RequestKind::kPath:
          reply.path = snapshot.path(request.i, request.j);
          reply.value = snapshot.cost(request.i, request.j);
          break;
        default:
          break;
      }
      return reply;
    }
    case RequestKind::kPrice:
      if (!valid_node(request.k, n) || !valid_node(request.i, n) ||
          !valid_node(request.j, n)) {
        reply.status = Status::kBadNode;
        return reply;
      }
      if (!snapshot.reachable(request.i, request.j))
        reply.status = Status::kUnreachable;
      reply.value = snapshot.price(request.k, request.i, request.j);
      return reply;
    case RequestKind::kPayment:
      if (!valid_node(request.k, n)) {
        reply.status = Status::kBadNode;
        return reply;
      }
      reply.amount = snapshot.payment_total(request.k);
      reply.value = Cost::zero();
      return reply;
  }
  // Unknown tag (a raw byte cast from the wire): the typed error the old
  // union-of-fields Answer could not express.
  reply.status = Status::kBadKind;
  return reply;
}

bool same_answer(const Reply& a, const Reply& b) {
  return a.status == b.status && a.value == b.value && a.amount == b.amount &&
         a.node == b.node && a.path == b.path &&
         a.snapshot_version == b.snapshot_version &&
         a.published_at_ns == b.published_at_ns;
}

}  // namespace fpss::service
