// Capacities and congestion — the paper's second open direction (Sect. 7):
// "augment the network model with link or node capacities in order to
// tackle the problem of routing in congested networks. This is
// particularly natural because it seems plausible that transit traffic
// imposes costs only in the presence of congestion."
//
// This module adds node capacities, computes transit loads induced by
// routing a traffic matrix over LCPs, and iterates the natural
// best-response dynamic: congested ASs re-declare higher costs, routing
// reconverges, loads shift. The dynamic either reaches a fixed point or
// enters a cycle (route flapping) — both outcomes are detected and
// reported; the flapping case is precisely why congestion pricing needs a
// different mechanism, which the paper leaves open.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "payments/traffic.h"
#include "routing/all_pairs.h"
#include "util/types.h"

namespace fpss::congestion {

/// Transit packets crossing each node when `traffic` rides the selected
/// routes (endpoints excluded, matching the cost model of Sect. 3).
std::vector<std::uint64_t> transit_loads(const routing::AllPairsRoutes& routes,
                                         const payments::TrafficMatrix& traffic);

struct CapacityPlan {
  /// Per-node transit capacity in packets.
  std::vector<std::uint64_t> capacity;

  /// Uniform capacity for every node.
  static CapacityPlan uniform(std::size_t node_count, std::uint64_t capacity);

  /// Capacity proportional to degree (well-connected ASs are provisioned
  /// for more transit): capacity = per_degree * degree.
  static CapacityPlan by_degree(const graph::Graph& g,
                                std::uint64_t per_degree);
};

struct LoadReport {
  std::uint64_t total_transit = 0;
  std::uint64_t peak_load = 0;
  double peak_utilization = 0;     ///< max load/capacity over nodes
  std::size_t overloaded_nodes = 0;
  std::uint64_t overflow_packets = 0;  ///< sum of (load - capacity)+
};

LoadReport assess(const std::vector<std::uint64_t>& loads,
                  const CapacityPlan& plan);

struct DynamicsParams {
  /// Extra declared cost per `packets_per_unit` packets above capacity.
  Cost::rep surcharge_per_unit = 1;
  std::uint64_t packets_per_unit = 100;
  std::uint32_t max_rounds = 64;
};

enum class Outcome {
  kFixedPoint,  ///< declared costs stopped changing
  kCycle,       ///< the dynamic revisited an earlier state: route flapping
  kCutoff,      ///< max_rounds exhausted without repeating (rare)
};

struct DynamicsResult {
  Outcome outcome = Outcome::kCutoff;
  std::uint32_t rounds = 0;
  std::uint32_t cycle_length = 0;       ///< for kCycle
  std::vector<Cost> final_costs;        ///< declared costs at the end
  std::vector<std::uint64_t> final_loads;
  LoadReport initial;                   ///< loads under the base costs
  LoadReport final;                     ///< loads at the end state
  std::vector<LoadReport> history;      ///< one report per executed round
};

/// Iterates: route on declared costs -> measure transit loads -> every
/// node re-declares base_cost + surcharge * overload_units -> repeat,
/// until a fixed point, a cycle, or the round cap.
DynamicsResult congestion_best_response(const graph::Graph& g,
                                        const payments::TrafficMatrix& traffic,
                                        const CapacityPlan& plan,
                                        const DynamicsParams& params);

}  // namespace fpss::congestion
