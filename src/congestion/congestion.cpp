#include "congestion/congestion.h"

#include <algorithm>
#include <map>

#include "graph/path.h"
#include "util/contract.h"

namespace fpss::congestion {

std::vector<std::uint64_t> transit_loads(
    const routing::AllPairsRoutes& routes,
    const payments::TrafficMatrix& traffic) {
  const std::size_t n = routes.node_count();
  FPSS_EXPECTS(traffic.node_count() == n);
  std::vector<std::uint64_t> loads(n, 0);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) {
      if (i == j) continue;
      const std::uint64_t packets = traffic.at(i, j);
      if (packets == 0) continue;
      const graph::Path path = routes.path(i, j);
      for (std::size_t t = 1; t + 1 < path.size(); ++t)
        loads[path[t]] += packets;
    }
  }
  return loads;
}

CapacityPlan CapacityPlan::uniform(std::size_t node_count,
                                   std::uint64_t capacity) {
  FPSS_EXPECTS(capacity > 0);
  return CapacityPlan{std::vector<std::uint64_t>(node_count, capacity)};
}

CapacityPlan CapacityPlan::by_degree(const graph::Graph& g,
                                     std::uint64_t per_degree) {
  FPSS_EXPECTS(per_degree > 0);
  CapacityPlan plan;
  plan.capacity.reserve(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v)
    plan.capacity.push_back(per_degree * std::max<std::size_t>(1, g.degree(v)));
  return plan;
}

LoadReport assess(const std::vector<std::uint64_t>& loads,
                  const CapacityPlan& plan) {
  FPSS_EXPECTS(loads.size() == plan.capacity.size());
  LoadReport report;
  for (std::size_t v = 0; v < loads.size(); ++v) {
    report.total_transit += loads[v];
    report.peak_load = std::max(report.peak_load, loads[v]);
    const double utilization = static_cast<double>(loads[v]) /
                               static_cast<double>(plan.capacity[v]);
    report.peak_utilization = std::max(report.peak_utilization, utilization);
    if (loads[v] > plan.capacity[v]) {
      ++report.overloaded_nodes;
      report.overflow_packets += loads[v] - plan.capacity[v];
    }
  }
  return report;
}

DynamicsResult congestion_best_response(const graph::Graph& g,
                                        const payments::TrafficMatrix& traffic,
                                        const CapacityPlan& plan,
                                        const DynamicsParams& params) {
  FPSS_EXPECTS(plan.capacity.size() == g.node_count());
  FPSS_EXPECTS(params.packets_per_unit > 0);
  const std::vector<Cost> base = g.costs();

  DynamicsResult result;
  graph::Graph current = g;
  // Map each visited cost vector to the round it was first seen, so a
  // revisit identifies both the cycle and its length.
  std::map<std::vector<Cost>, std::uint32_t> seen;

  for (std::uint32_t round = 0;; ++round) {
    const std::vector<Cost> costs = current.costs();
    const auto it = seen.find(costs);
    if (it != seen.end()) {
      result.outcome =
          (round - it->second == 1) ? Outcome::kFixedPoint : Outcome::kCycle;
      result.cycle_length = round - it->second;
      result.rounds = round;
      break;
    }
    if (round >= params.max_rounds) {
      result.outcome = Outcome::kCutoff;
      result.rounds = round;
      break;
    }
    seen.emplace(costs, round);

    const routing::AllPairsRoutes routes(current);
    const std::vector<std::uint64_t> loads = transit_loads(routes, traffic);
    if (round == 0) result.initial = assess(loads, plan);
    result.final_loads = loads;
    result.final = assess(loads, plan);
    result.history.push_back(result.final);

    // Best response: surcharge proportional to overload.
    for (NodeId v = 0; v < g.node_count(); ++v) {
      const std::uint64_t overload =
          loads[v] > plan.capacity[v] ? loads[v] - plan.capacity[v] : 0;
      const auto units =
          static_cast<Cost::rep>(overload / params.packets_per_unit +
                                 (overload % params.packets_per_unit != 0));
      current.set_cost(v, Cost{base[v].value() +
                               params.surcharge_per_unit * units});
    }
  }
  result.final_costs = current.costs();
  return result;
}

}  // namespace fpss::congestion
