#include "net/remote_backend.h"

#include <algorithm>
#include <chrono>
#include <string>

namespace fpss::net {

namespace {

std::string describe(const ClientError& error) {
  std::string out = to_string(error.status);
  if (!error.message.empty()) {
    out += ": ";
    out += error.message;
  }
  return out;
}

}  // namespace

RemoteQueryBackend::RemoteQueryBackend(ClientConfig config)
    : config_(config), data_(config) {}

RemoteQueryBackend::~RemoteQueryBackend() = default;

ClientError RemoteQueryBackend::ensure_data() {
  if (data_.connected()) return {};
  return data_.connect();
}

ClientError RemoteQueryBackend::connect() { return ensure_data(); }

service::QueryOutcome RemoteQueryBackend::query_batch(
    std::span<const service::Request> batch) {
  service::QueryOutcome outcome;
  if (const auto err = ensure_data(); !err.ok()) {
    outcome.error = describe(err);
    return outcome;
  }
  auto result = data_.query(batch);
  if (!result.ok()) {
    outcome.error = describe(result.error);
    return outcome;
  }
  outcome.replies = std::move(result.replies);
  return outcome;
}

service::SubmitAck RemoteQueryBackend::submit_deltas(
    std::span<const service::RouteService::Delta> deltas) {
  service::SubmitAck ack;
  last_submit_status_.reset();
  if (const auto err = ensure_data(); !err.ok()) {
    ack.error = describe(err);
    return ack;
  }
  const auto result = data_.submit_deltas(deltas);
  if (!result.ok()) {
    ack.error = describe(result.error);
    last_submit_status_ = result.error.wire_status;
    return ack;
  }
  ack.accepted = result.accepted;
  ack.publish_count = result.publish_count;
  return ack;
}

service::CountersOutcome RemoteQueryBackend::counters() {
  service::CountersOutcome outcome;
  auto result = full_counters();
  if (!result.ok()) {
    outcome.error = describe(result.error);
    return outcome;
  }
  outcome.counters = result.counters;
  return outcome;
}

CountersResult RemoteQueryBackend::full_counters() {
  if (const auto err = ensure_data(); !err.ok()) {
    CountersResult result;
    result.error = err;
    return result;
  }
  return data_.counters();
}

U64Result RemoteQueryBackend::drain() {
  if (const auto err = ensure_data(); !err.ok()) {
    U64Result result;
    result.error = err;
    return result;
  }
  return data_.drain();
}

std::uint32_t RemoteQueryBackend::server_hop_count() const {
  return data_.server_hop_count();
}

std::uint64_t RemoteQueryBackend::wait_for_publish_beyond(std::uint64_t count,
                                                          int timeout_ms) {
  using Clock = std::chrono::steady_clock;
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    if (notify_ == nullptr || !notify_->connected()) {
      notify_ = std::make_unique<RouteClient>(config_);
      if (!notify_->connect().ok()) {
        notify_.reset();
        break;
      }
      // Subscribing from the last count we saw makes the ack report what
      // was missed; the ack itself carries the current clock.
      const auto sub = notify_->subscribe(notify_count_);
      if (!sub.ok()) {
        notify_.reset();
        break;
      }
      if (sub.notify.publish_count > notify_count_)
        notify_count_ = sub.notify.publish_count;
    }
    if (notify_count_ > count) break;
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (remaining.count() <= 0) break;
    // Bounded slices keep the wait responsive to the deadline; a quiet
    // slice returns kTimeout with the subscription intact.
    const int wait_ms =
        static_cast<int>(std::min<long long>(remaining.count(), 100));
    const auto push = notify_->await_notify(wait_ms);
    if (push.ok()) {
      if (push.notify.publish_count > notify_count_)
        notify_count_ = push.notify.publish_count;
    } else if (push.error.status != ClientStatus::kTimeout) {
      // Connection died; the loop re-dials (the deadline bounds retries —
      // connect() itself fails fast when the server is gone).
      notify_.reset();
    }
  }
  return notify_count_;
}

}  // namespace fpss::net
