#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "service/replication.h"

namespace fpss::net {

namespace {

enum class IoResult {
  kOk,
  kClosed,   ///< orderly EOF before the first byte
  kTimeout,  ///< deadline expired mid-read
  kStopped,  ///< server shutdown while idle between frames
  kError,    ///< socket error
};

using Clock = std::chrono::steady_clock;

/// Remaining budget in ms, clipped to the 100ms poll slice that keeps
/// shutdown responsive.
int next_slice_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - Clock::now())
                        .count();
  if (left <= 0) return 0;
  return static_cast<int>(left < 100 ? left : 100);
}

/// Reads exactly `want` bytes. While still at byte zero the stop flag
/// aborts the wait (the worker is idle between frames); once a frame has
/// started arriving only the deadline can abort it — that is what lets a
/// graceful shutdown finish in-flight frames.
IoResult read_exact(int fd, char* buffer, std::size_t want, int timeout_ms,
                    const std::atomic<bool>& stopping) {
  std::size_t got = 0;
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (got < want) {
    if (got == 0 && stopping.load(std::memory_order_relaxed))
      return IoResult::kStopped;
    pollfd pfd{fd, POLLIN, 0};
    const int slice = next_slice_ms(deadline);
    if (slice == 0) return IoResult::kTimeout;
    const int ready = ::poll(&pfd, 1, slice);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return IoResult::kError;
    }
    if (ready == 0) continue;  // slice elapsed; re-check flags
    const ssize_t n = ::recv(fd, buffer + got, want - got, 0);
    if (n == 0) return got == 0 ? IoResult::kClosed : IoResult::kError;
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return IoResult::kError;
    }
    got += static_cast<std::size_t>(n);
  }
  return IoResult::kOk;
}

/// Writes the whole buffer or gives up at the deadline (a peer that never
/// reads must not pin a worker).
bool write_all(int fd, std::string_view bytes, int timeout_ms) {
  std::size_t sent = 0;
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (sent < bytes.size()) {
    pollfd pfd{fd, POLLOUT, 0};
    const int slice = next_slice_ms(deadline);
    if (slice == 0) return false;
    const int ready = ::poll(&pfd, 1, slice);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (ready == 0) continue;
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

RouteServer::RouteServer(Backend& backend, ServerConfig config)
    : backend_(backend), config_(std::move(config)) {
  start();
}

RouteServer::RouteServer(service::RouteService& service, ServerConfig config)
    : owned_(std::make_unique<ServiceBackend>(service)),
      backend_(*owned_),
      config_(std::move(config)) {
  start();
}

void RouteServer::start() {
  if (config_.workers == 0) config_.workers = 1;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    error_ = "bad listen address: " + config_.host;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return;
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    error_ = "bind " + config_.host + ":" + std::to_string(config_.port) +
             ": " + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return;
  }
  if (::listen(listen_fd_, 64) != 0) {
    error_ = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  workers_.reserve(config_.workers);
  for (unsigned w = 0; w < config_.workers; ++w)
    workers_.emplace_back([this] { worker_loop(); });
  acceptor_ = std::thread([this] { accept_loop(); });
}

RouteServer::~RouteServer() { stop(); }

void RouteServer::stop() {
  if (stopped_) return;
  stopped_ = true;
  stopping_.store(true, std::memory_order_relaxed);
  if (listen_fd_ >= 0) {
    // Unblocks the acceptor's accept(2); new connections are refused from
    // here on while workers serve out what they already hold.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    // The stop flag was written without the queue mutex; take and drop the
    // lock before notifying so a worker that just evaluated its wait
    // condition as "keep sleeping" cannot block *after* this notify and
    // miss it (the classic lost wakeup — stop() would hang in join below).
    util::MutexLock lock(queue_mutex_);
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  // Connections accepted but never picked up by a worker.
  util::MutexLock lock(queue_mutex_);
  for (const int fd : pending_) ::close(fd);
  pending_.clear();
}

RouteServer::Stats RouteServer::stats() const {
  Stats s;
  s.connections = connections_.load(std::memory_order_relaxed);
  s.frames = frames_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.rejected_frames = rejected_frames_.load(std::memory_order_relaxed);
  s.timeouts = timeouts_.load(std::memory_order_relaxed);
  util::MutexLock lock(peers_mutex_);
  s.peers.reserve(peers_.size());
  for (const auto& [peer, tally] : peers_) {
    PeerCounters counters;
    counters.peer = peer;
    counters.connections = tally.connections;
    counters.queries = tally.queries;
    counters.batches = tally.batches;
    counters.rejected_frames = tally.rejected_frames;
    s.peers.push_back(std::move(counters));
  }
  return s;
}

RouteServer::PeerTally& RouteServer::peer_tally(const std::string& peer) {
  const auto found = peers_.find(peer);
  if (found != peers_.end()) return found->second;
  if (peers_.size() >= kMaxPeers) return peers_["(other)"];
  return peers_[peer];
}

void RouteServer::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listener shut down (or unrecoverable)
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    {
      util::MutexLock lock(queue_mutex_);
      pending_.push_back(fd);
    }
    queue_cv_.notify_one();
  }
}

void RouteServer::worker_loop() {
  for (;;) {
    int fd = -1;
    {
      util::MutexLock lock(queue_mutex_);
      while (pending_.empty() && !stopping_.load(std::memory_order_relaxed))
        queue_cv_.wait(lock);
      if (pending_.empty()) return;  // stopping, nothing left to serve
      fd = pending_.front();
      pending_.pop_front();
    }
    serve_connection(fd);
  }
}

void RouteServer::serve_connection(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  // The accounting key: the peer's address. Ports are ephemeral, so the
  // per-peer table aggregates by host — reconnects accumulate.
  std::string peer = "(other)";
  sockaddr_in remote{};
  socklen_t remote_len = sizeof(remote);
  char addr[INET_ADDRSTRLEN];
  if (::getpeername(fd, reinterpret_cast<sockaddr*>(&remote), &remote_len) ==
          0 &&
      remote.sin_family == AF_INET &&
      ::inet_ntop(AF_INET, &remote.sin_addr, addr, sizeof(addr)) != nullptr) {
    peer = addr;
  }
  {
    util::MutexLock lock(peers_mutex_);
    peer_tally(peer).connections += 1;
  }
  while (serve_frame(fd, peer)) {
  }
  ::close(fd);
}

bool RouteServer::send_error(int fd, const std::string& peer, WireStatus code,
                             const std::string& message) {
  rejected_frames_.fetch_add(1, std::memory_order_relaxed);
  {
    util::MutexLock lock(peers_mutex_);
    peer_tally(peer).rejected_frames += 1;
  }
  const std::string frame =
      encode_frame(FrameType::kError, encode_error({code, message}));
  write_all(fd, frame, config_.read_timeout_ms);
  return false;  // protocol errors always close the connection
}

bool RouteServer::serve_frame(int fd, const std::string& peer) {
  // 1. Header: fixed 20 bytes, validated before the payload is allocated.
  char header_bytes[kFrameHeaderBytes];
  switch (read_exact(fd, header_bytes, kFrameHeaderBytes,
                     config_.read_timeout_ms, stopping_)) {
    case IoResult::kOk:
      break;
    case IoResult::kClosed:   // peer finished; normal end of connection
    case IoResult::kStopped:  // shutdown while idle between frames
      return false;
    case IoResult::kTimeout:
      timeouts_.fetch_add(1, std::memory_order_relaxed);
      return false;
    case IoResult::kError:
      return false;
  }
  const HeaderResult head = decode_frame_header(
      std::string_view(header_bytes, kFrameHeaderBytes), config_.limits);
  if (!head.ok()) return send_error(fd, peer, head.status, head.error);

  // 2. Payload: size is now known-bounded, so allocating is safe.
  std::string payload(head.header.payload_bytes, '\0');
  if (head.header.payload_bytes > 0) {
    switch (read_exact(fd, payload.data(), payload.size(),
                       config_.read_timeout_ms, stopping_)) {
      case IoResult::kOk:
        break;
      case IoResult::kTimeout:
        timeouts_.fetch_add(1, std::memory_order_relaxed);
        return false;
      default:
        return false;
    }
  }
  if (!payload_checksum_ok(head.header, payload))
    return send_error(fd, peer, WireStatus::kMalformed, "payload checksum mismatch");

  // 3. Dispatch. From here the frame is served to completion even if a
  //    shutdown starts concurrently — that is the drain guarantee.
  std::string reply_frame;
  switch (head.header.type) {
    case FrameType::kHello: {
      Hello hello;
      if (!decode_hello(payload, hello))
        return send_error(fd, peer, WireStatus::kMalformed, "bad hello payload");
      if (hello.wire_version != kWireVersion)
        return send_error(fd, peer, WireStatus::kUnsupportedVersion,
                          "client wire version " +
                              std::to_string(hello.wire_version) +
                              " unsupported");
      HelloAck ack;
      ack.wire_version = kWireVersion;
      ack.node_count = backend_.node_count();
      ack.snapshot_version = backend_.version();
      ack.max_batch = config_.limits.max_batch;
      ack.hop_count = backend_.hop_count();
      reply_frame = encode_frame(FrameType::kHelloAck, encode_hello_ack(ack));
      break;
    }
    case FrameType::kQueryBatch: {
      const RequestsResult batch =
          decode_requests(payload, config_.limits.max_batch);
      if (!batch.ok()) return send_error(fd, peer, batch.status, batch.error);
      const std::vector<service::Reply> replies = backend_.query(
          std::span<const service::Request>(batch.requests));
      batches_.fetch_add(1, std::memory_order_relaxed);
      {
        util::MutexLock lock(peers_mutex_);
        PeerTally& tally = peer_tally(peer);
        tally.queries += batch.requests.size();
        tally.batches += 1;
      }
      reply_frame =
          encode_frame(FrameType::kReplyBatch, encode_replies(replies));
      break;
    }
    case FrameType::kCountersFetch: {
      ReplicaCounters replica;
      const bool is_replica = backend_.replica_counters(replica);
      reply_frame = encode_frame(
          FrameType::kCountersReply,
          encode_counters(backend_.counters(), stats(),
                          is_replica ? &replica : nullptr));
      break;
    }
    case FrameType::kDeltaSubmit: {
      if (!config_.allow_deltas)
        return send_error(fd, peer, WireStatus::kBadFrameType,
                          "delta submission disabled on this server");
      const DeltasResult deltas =
          decode_deltas(payload, config_.limits.max_batch);
      if (!deltas.ok()) return send_error(fd, peer, deltas.status, deltas.error);
      const Backend::SubmitOutcome outcome = backend_.submit(deltas.deltas);
      switch (outcome.status) {
        case Backend::SubmitOutcome::Status::kOk:
          break;
        case Backend::SubmitOutcome::Status::kReadOnly:
          return send_error(fd, peer, WireStatus::kBadFrameType,
                            "delta submission disabled on this server");
        case Backend::SubmitOutcome::Status::kOverloaded:
          return send_error(fd, peer, WireStatus::kOverloaded,
                            "forwarding queue full; retry later");
        case Backend::SubmitOutcome::Status::kUnavailable:
          return send_error(fd, peer, WireStatus::kUpstreamDown,
                            "no upstream reachable; write not applied");
      }
      DeltaAck ack;
      ack.accepted = outcome.accepted;
      ack.publish_count = outcome.publish_count;
      reply_frame = encode_frame(FrameType::kDeltaAck, encode_delta_ack(ack));
      break;
    }
    case FrameType::kDrain: {
      reply_frame =
          encode_frame(FrameType::kDrainReply, encode_u64(backend_.drain()));
      break;
    }
    case FrameType::kSnapshotFetch: {
      const ShardVersionsResult fetch = decode_shard_versions(payload);
      if (!fetch.ok()) return send_error(fd, peer, fetch.status, fetch.error);
      frames_.fetch_add(1, std::memory_order_relaxed);
      return serve_snapshot_fetch(fd, peer, fetch.versions);
    }
    case FrameType::kSubscribe: {
      std::uint64_t since = 0;
      if (!decode_u64(payload, since))
        return send_error(fd, peer, WireStatus::kMalformed,
                          "bad subscribe payload");
      frames_.fetch_add(1, std::memory_order_relaxed);
      return serve_subscription(fd, since);
    }
    default:
      // Server-to-client types (HelloAck, ReplyBatch, ...) and kError are
      // never valid requests.
      return send_error(fd, peer, WireStatus::kBadFrameType,
                        "frame type not valid as a request");
  }

  if (!write_all(fd, reply_frame, config_.read_timeout_ms)) return false;
  frames_.fetch_add(1, std::memory_order_relaxed);
  // Stop taking new frames once shutdown began; the reply above completes
  // the in-flight exchange.
  return !stopping_.load(std::memory_order_relaxed);
}

bool RouteServer::serve_snapshot_fetch(
    int fd, const std::string& peer,
    const std::vector<std::uint64_t>& known) {
  // Keep the shared_ptr for the whole transfer: a replica backend may swap
  // its store out concurrently, and this reference is what keeps the old
  // one alive until the stream finishes.
  const std::shared_ptr<const service::ShardedSnapshotStore> store =
      backend_.store();
  if (store == nullptr)
    return send_error(fd, peer, WireStatus::kBadFrameType,
                      "snapshot fetch unsupported by this backend");
  const service::ShardedSnapshotStore::ExportCut cut = store->export_cut();
  if (cut.newest == nullptr)
    return send_error(fd, peer, WireStatus::kShuttingDown,
                      "no snapshot published yet");
  const std::size_t shard_count = cut.shard_versions.size();
  // The dirty set: shards whose slot version moved since the replica's
  // last sync. A version vector of the wrong length (including the empty
  // one a bootstrap sends) cannot be compared per slot, so everything is
  // dirty.
  const bool full = known.size() != shard_count;
  std::vector<std::uint32_t> dirty;
  for (std::size_t s = 0; s < shard_count; ++s)
    if (full || known[s] != cut.shard_versions[s])
      dirty.push_back(static_cast<std::uint32_t>(s));

  for (const std::uint32_t s : dirty) {
    const std::vector<std::string> chunks = service::ReplicationCodec::
        encode_shard(*cut.newest, s, store->shard_size(),
                     static_cast<std::uint32_t>(shard_count),
                     cut.shard_versions[s]);
    for (const std::string& chunk : chunks) {
      if (chunk.size() > config_.limits.max_payload_bytes)
        return send_error(fd, peer, WireStatus::kOversized,
                          "shard chunk exceeds the frame payload limit");
      if (!write_all(fd, encode_frame(FrameType::kSnapshotChunk, chunk),
                     config_.read_timeout_ms))
        return false;
      frames_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  const std::string final_chunk = service::ReplicationCodec::encode_final(
      *cut.newest, cut.shard_versions, dirty);
  if (final_chunk.size() > config_.limits.max_payload_bytes)
    return send_error(fd, peer, WireStatus::kOversized,
                      "final chunk exceeds the frame payload limit");
  if (!write_all(fd, encode_frame(FrameType::kSnapshotChunk, final_chunk),
                 config_.read_timeout_ms))
    return false;
  frames_.fetch_add(1, std::memory_order_relaxed);
  return !stopping_.load(std::memory_order_relaxed);
}

bool RouteServer::serve_subscription(int fd, std::uint64_t since) {
  // The connection is now a push channel: this worker is pinned to it
  // until the peer closes, a write fails, or the server stops. The notify
  // "queue" is depth one by construction — each iteration reads the
  // backend's *current* publish count and version, so a subscriber slower
  // than the publish rate receives one notify describing the latest state
  // with `coalesced` counting everything it skipped, never a backlog.
  std::uint64_t last = since;
  bool first = true;
  while (!stopping_.load(std::memory_order_relaxed)) {
    // Liveness check: a subscribed peer sends nothing, so any readable
    // byte is either EOF (normal teardown) or a protocol violation; both
    // end the subscription.
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, 0) > 0) return false;
    // The first notify is the subscription ack: sent immediately, telling
    // a late or re-connecting subscriber how far behind `since` it is.
    const std::uint64_t count =
        first ? backend_.publish_count()
              : backend_.wait_for_publish_beyond(last, 100);
    if (!first && count <= last) continue;  // slice elapsed; re-check peer
    PublishNotify notify;
    notify.snapshot_version = backend_.version();
    notify.published_at_ns = backend_.published_at_ns();
    notify.publish_count = count;
    notify.coalesced = count > last + 1 ? count - last - 1 : 0;
    if (!write_all(fd, encode_frame(FrameType::kPublishNotify,
                                    encode_publish_notify(notify)),
                   config_.read_timeout_ms))
      return false;
    frames_.fetch_add(1, std::memory_order_relaxed);
    last = count;
    first = false;
  }
  return false;
}

}  // namespace fpss::net
