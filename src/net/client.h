// net::RouteClient: the typed client side of fpss-wire v1.
//
// connect() dials with retry-and-backoff and runs the Hello/HelloAck
// exchange, after which the server's node count and snapshot version are
// known. query() is the blocking convenience; send()/receive() expose the
// same exchange split in two so a caller can pipeline several batches on
// one connection (the server answers frames strictly in order, so replies
// come back FIFO).
//
// Errors are values, not exceptions: every operation fills a result whose
// ClientStatus says what layer failed (connect, I/O timeout, protocol,
// or a typed server rejection with the server's WireStatus + message).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/wire.h"
#include "service/protocol.h"
#include "service/service.h"

namespace fpss::net {

struct ClientConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// connect(): total attempts (1 = no retry).
  unsigned connect_attempts = 3;
  /// Backoff before attempt k is backoff_ms << (k-1), capped at 1s.
  int backoff_ms = 50;
  /// Per-frame I/O deadline (reads and writes).
  int io_timeout_ms = 5000;
  WireLimits limits;
};

enum class ClientStatus : std::uint8_t {
  kOk = 0,
  kNotConnected,    ///< operation before connect() / after close()
  kConnectFailed,   ///< all dial attempts exhausted
  kTimeout,         ///< frame I/O deadline expired
  kConnectionLost,  ///< EOF or socket error mid-exchange
  kProtocolError,   ///< undecodable frame (bad header, checksum, payload)
  /// A well-formed frame of the wrong type for this point in the
  /// exchange — the stream desynced (a pipelining bug or a confused
  /// server), as opposed to kProtocolError's byte-level corruption. The
  /// connection is closed either way, but callers can tell "the bytes
  /// were garbage" from "the conversation got out of step".
  kUnexpectedFrame,
  kServerError,     ///< server sent a typed kError frame (see wire_status)
};

const char* to_string(ClientStatus status);

struct ClientError {
  ClientStatus status = ClientStatus::kOk;
  /// Set when status == kServerError: the server's rejection code.
  std::optional<WireStatus> wire_status;
  std::string message;
  bool ok() const { return status == ClientStatus::kOk; }
};

struct QueryResult {
  ClientError error;
  std::vector<service::Reply> replies;
  bool ok() const { return error.ok(); }
};

struct CountersResult {
  ClientError error;
  service::RouteService::Counters counters;
  /// The daemon's own frame totals and per-peer breakdown.
  ServerCounters server;
  /// Replication counters; meaningful iff has_replica (replica daemons).
  ReplicaCounters replica;
  bool has_replica = false;
  bool ok() const { return error.ok(); }
};

struct U64Result {
  ClientError error;
  std::uint64_t value = 0;
  bool ok() const { return error.ok(); }
};

/// Write acknowledgment. `publish_count` is the primary's publish clock
/// after the write published (relayed unchanged through forwarding
/// replicas); wait_for_publish_beyond(publish_count - 1) against any tier
/// then guarantees reading your own write.
struct SubmitResult {
  ClientError error;
  std::uint64_t accepted = 0;
  std::uint64_t publish_count = 0;
  bool ok() const { return error.ok(); }
};

/// One kSnapshotFetch exchange: every kSnapshotChunk payload the server
/// streamed, in arrival order (data chunks then the final chunk). The
/// client validates framing only; reassembly and content validation are
/// service::ReplicationCodec::Assembler's job.
struct SnapshotFetchResult {
  ClientError error;
  std::vector<std::string> chunks;
  std::uint64_t bytes = 0;  ///< total chunk payload bytes received
  bool ok() const { return error.ok(); }
};

struct NotifyResult {
  ClientError error;
  PublishNotify notify;
  bool ok() const { return error.ok(); }
};

class RouteClient {
 public:
  explicit RouteClient(ClientConfig config = {});
  ~RouteClient();

  RouteClient(const RouteClient&) = delete;
  RouteClient& operator=(const RouteClient&) = delete;

  /// Dials (with backoff across attempts) and performs the hello
  /// handshake. Idempotent once connected.
  ClientError connect();
  bool connected() const { return fd_ >= 0; }
  void close();

  // Learned from the HelloAck; valid after a successful connect().
  std::uint64_t server_node_count() const { return node_count_; }
  std::uint64_t server_snapshot_version() const { return snapshot_version_; }
  std::uint32_t server_max_batch() const { return server_max_batch_; }
  /// Chain depth of the server's backend: 0 = primary, n = n hops from it.
  std::uint32_t server_hop_count() const { return hop_count_; }

  /// One blocking request/reply exchange (send + receive).
  QueryResult query(std::span<const service::Request> batch);

  /// Pipelining: enqueue a batch without waiting for its reply. Replies
  /// arrive in submission order via receive(). outstanding() counts
  /// batches sent but not yet received.
  ClientError send(std::span<const service::Request> batch);
  QueryResult receive();
  std::size_t outstanding() const { return outstanding_; }

  CountersResult counters();
  /// Submits topology deltas. A replica with forwarding enabled relays
  /// them upstream; a rejection surfaces as kServerError with wire_status
  /// kOverloaded (back-pressure) or kUpstreamDown (no upstream reachable).
  SubmitResult submit_deltas(
      std::span<const service::RouteService::Delta> deltas);
  /// Blocks until the server's updater has drained; value = served version.
  U64Result drain();

  /// Per-shard snapshot transfer: sends the shard versions this side
  /// already holds (empty = full bootstrap) and collects the streamed
  /// chunk payloads through the final chunk.
  SnapshotFetchResult fetch_snapshot(
      std::span<const std::uint64_t> known_shard_versions);

  /// Converts this connection into a notify stream: after a successful
  /// subscribe the only valid operation is await_notify() (request/reply
  /// calls fail with kUnexpectedFrame before touching the socket). The
  /// result carries the immediate ack notify — the server's current state,
  /// whose `coalesced` tells a re-subscriber how much it missed beyond
  /// `since` (its last-seen publish count).
  NotifyResult subscribe(std::uint64_t since);
  /// Waits up to `wait_ms` for the next push. A quiet period returns
  /// kTimeout with the connection *intact* — unlike every other timeout,
  /// silence is the expected steady state of a subscription.
  NotifyResult await_notify(int wait_ms);
  bool subscribed() const { return subscribed_; }

 private:
  ClientError dial_once();
  ClientError handshake();
  /// Sends one frame; on failure the connection is closed.
  ClientError send_frame(FrameType type, std::string_view payload);
  /// Reads one frame, decoding a kError frame into kServerError. On any
  /// failure the connection is closed (a desynced stream is unusable).
  ClientError receive_frame(FrameType expected, std::string& payload);

  ClientConfig config_;
  int fd_ = -1;
  std::uint64_t node_count_ = 0;
  std::uint64_t snapshot_version_ = 0;
  std::uint32_t server_max_batch_ = 0;
  std::uint32_t hop_count_ = 0;
  std::size_t outstanding_ = 0;
  bool subscribed_ = false;
};

}  // namespace fpss::net
