// net::RemoteQueryBackend: a daemon connection behind the
// service::QueryBackend seam.
//
// Wraps two RouteClient connections to the same address: a request/reply
// data connection (queries, writes, counters, drain) and a lazily-dialed
// subscription connection that turns wait_for_publish_beyond into the
// wire's push channel — a kSubscribe stream whose notify clock is the
// server's publish count. Both reconnect on demand, so a backend pointed
// at a replica front keeps working across the replica's own upstream
// failovers (the replica's publish clock survives them).
#pragma once

#include <cstdint>
#include <memory>

#include "net/client.h"
#include "service/query_backend.h"

namespace fpss::net {

class RemoteQueryBackend final : public service::QueryBackend {
 public:
  explicit RemoteQueryBackend(ClientConfig config);
  ~RemoteQueryBackend() override;

  /// Dials the data connection eagerly (every operation also dials on
  /// demand; this exists so tools can surface a connect failure early).
  ClientError connect();

  service::QueryOutcome query_batch(
      std::span<const service::Request> batch) override;
  service::SubmitAck submit_deltas(
      std::span<const service::RouteService::Delta> deltas) override;
  service::CountersOutcome counters() override;
  std::uint64_t wait_for_publish_beyond(std::uint64_t count,
                                        int timeout_ms) override;

  // Wire-only extras (not part of the QueryBackend surface).
  /// The full counters frame: service + server + replica sections.
  CountersResult full_counters();
  /// Publish barrier on the server; value = served version.
  U64Result drain();
  /// Chain depth of the server's backend (0 = primary); valid once any
  /// operation has connected.
  std::uint32_t server_hop_count() const;
  /// Last write rejection's wire code, when the server sent one
  /// (kOverloaded / kUpstreamDown back-pressure signals).
  std::optional<WireStatus> last_submit_status() const {
    return last_submit_status_;
  }

 private:
  ClientError ensure_data();

  ClientConfig config_;
  RouteClient data_;
  /// Subscription connection; null until the first publish wait. Its
  /// notify clock (the server's publish count) persists across calls.
  std::unique_ptr<RouteClient> notify_;
  std::uint64_t notify_count_ = 0;
  std::optional<WireStatus> last_submit_status_;
};

}  // namespace fpss::net
