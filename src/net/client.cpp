#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "service/replication.h"

namespace fpss::net {

namespace {

using Clock = std::chrono::steady_clock;

int next_slice_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - Clock::now())
                        .count();
  if (left <= 0) return 0;
  return static_cast<int>(left < 100 ? left : 100);
}

enum class IoResult { kOk, kClosed, kTimeout, kError };

IoResult read_exact(int fd, char* buffer, std::size_t want, int timeout_ms) {
  std::size_t got = 0;
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (got < want) {
    pollfd pfd{fd, POLLIN, 0};
    const int slice = next_slice_ms(deadline);
    if (slice == 0) return IoResult::kTimeout;
    const int ready = ::poll(&pfd, 1, slice);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return IoResult::kError;
    }
    if (ready == 0) continue;
    const ssize_t n = ::recv(fd, buffer + got, want - got, 0);
    if (n == 0) return IoResult::kClosed;
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return IoResult::kError;
    }
    got += static_cast<std::size_t>(n);
  }
  return IoResult::kOk;
}

bool write_all(int fd, std::string_view bytes, int timeout_ms) {
  std::size_t sent = 0;
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (sent < bytes.size()) {
    pollfd pfd{fd, POLLOUT, 0};
    const int slice = next_slice_ms(deadline);
    if (slice == 0) return false;
    const int ready = ::poll(&pfd, 1, slice);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (ready == 0) continue;
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

ClientError make_error(ClientStatus status, std::string message) {
  ClientError e;
  e.status = status;
  e.message = std::move(message);
  return e;
}

}  // namespace

const char* to_string(ClientStatus status) {
  switch (status) {
    case ClientStatus::kOk:
      return "ok";
    case ClientStatus::kNotConnected:
      return "not connected";
    case ClientStatus::kConnectFailed:
      return "connect failed";
    case ClientStatus::kTimeout:
      return "timeout";
    case ClientStatus::kConnectionLost:
      return "connection lost";
    case ClientStatus::kProtocolError:
      return "protocol error";
    case ClientStatus::kUnexpectedFrame:
      return "unexpected frame type";
    case ClientStatus::kServerError:
      return "server error";
  }
  return "unknown";
}

RouteClient::RouteClient(ClientConfig config) : config_(std::move(config)) {
  if (config_.connect_attempts == 0) config_.connect_attempts = 1;
}

RouteClient::~RouteClient() { close(); }

void RouteClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  outstanding_ = 0;
  subscribed_ = false;
}

ClientError RouteClient::dial_once() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0)
    return make_error(ClientStatus::kConnectFailed,
                      std::string("socket: ") + std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return make_error(ClientStatus::kConnectFailed,
                      "bad server address: " + config_.host);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string reason = std::strerror(errno);
    ::close(fd);
    return make_error(ClientStatus::kConnectFailed,
                      "connect " + config_.host + ":" +
                          std::to_string(config_.port) + ": " + reason);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  return {};
}

ClientError RouteClient::connect() {
  if (connected()) return {};
  ClientError last;
  int backoff = config_.backoff_ms;
  for (unsigned attempt = 1; attempt <= config_.connect_attempts; ++attempt) {
    if (attempt > 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      backoff = backoff < 500 ? backoff * 2 : 1000;
    }
    last = dial_once();
    if (last.ok()) {
      last = handshake();
      if (last.ok()) return {};
      // A refused handshake (e.g. version mismatch) will not improve with
      // retries of the same client; report it as-is.
      return last;
    }
  }
  return last;
}

ClientError RouteClient::handshake() {
  Hello hello;
  hello.wire_version = kWireVersion;
  hello.max_batch = config_.limits.max_batch;
  ClientError err = send_frame(FrameType::kHello, encode_hello(hello));
  if (!err.ok()) return err;
  std::string payload;
  err = receive_frame(FrameType::kHelloAck, payload);
  if (!err.ok()) return err;
  HelloAck ack;
  if (!decode_hello_ack(payload, ack)) {
    close();
    return make_error(ClientStatus::kProtocolError, "bad hello ack payload");
  }
  node_count_ = ack.node_count;
  snapshot_version_ = ack.snapshot_version;
  server_max_batch_ = ack.max_batch;
  hop_count_ = ack.hop_count;
  return {};
}

ClientError RouteClient::send_frame(FrameType type, std::string_view payload) {
  if (!connected())
    return make_error(ClientStatus::kNotConnected, "send before connect()");
  if (subscribed_ && type != FrameType::kSubscribe)
    return make_error(ClientStatus::kUnexpectedFrame,
                      "connection is subscribed; only await_notify() is valid");
  const std::string frame = encode_frame(type, payload);
  if (!write_all(fd_, frame, config_.io_timeout_ms)) {
    close();
    return make_error(ClientStatus::kTimeout, "frame send timed out");
  }
  return {};
}

ClientError RouteClient::receive_frame(FrameType expected,
                                       std::string& payload) {
  if (!connected())
    return make_error(ClientStatus::kNotConnected, "receive before connect()");
  char header_bytes[kFrameHeaderBytes];
  switch (read_exact(fd_, header_bytes, kFrameHeaderBytes,
                     config_.io_timeout_ms)) {
    case IoResult::kOk:
      break;
    case IoResult::kTimeout:
      close();
      return make_error(ClientStatus::kTimeout, "reply header timed out");
    case IoResult::kClosed:
      close();
      return make_error(ClientStatus::kConnectionLost,
                        "server closed the connection");
    case IoResult::kError:
      close();
      return make_error(ClientStatus::kConnectionLost,
                        std::string("recv: ") + std::strerror(errno));
  }
  const HeaderResult head = decode_frame_header(
      std::string_view(header_bytes, kFrameHeaderBytes), config_.limits);
  if (!head.ok()) {
    close();
    return make_error(ClientStatus::kProtocolError, head.error);
  }
  payload.assign(head.header.payload_bytes, '\0');
  if (head.header.payload_bytes > 0) {
    const IoResult io = read_exact(fd_, payload.data(), payload.size(),
                                   config_.io_timeout_ms);
    if (io != IoResult::kOk) {
      close();
      return make_error(io == IoResult::kTimeout ? ClientStatus::kTimeout
                                                 : ClientStatus::kConnectionLost,
                        "reply payload truncated");
    }
  }
  if (!payload_checksum_ok(head.header, payload)) {
    close();
    return make_error(ClientStatus::kProtocolError,
                      "reply payload checksum mismatch");
  }
  if (head.header.type == FrameType::kError) {
    ErrorFrame server_error;
    ClientError err = make_error(ClientStatus::kServerError, "server error");
    if (decode_error(payload, server_error)) {
      err.wire_status = server_error.code;
      err.message = server_error.message;
    }
    close();  // the server closes after an error frame; mirror it
    return err;
  }
  if (head.header.type != expected) {
    // The frame itself is well-formed; the *sequence* is wrong. Typed
    // distinctly from byte-level corruption so callers can tell a desynced
    // pipeline from a corrupt stream; the connection still closes (an
    // out-of-step stream cannot be resynchronized).
    close();
    return make_error(ClientStatus::kUnexpectedFrame,
                      "unexpected frame type in reply");
  }
  return {};
}

QueryResult RouteClient::query(std::span<const service::Request> batch) {
  QueryResult result;
  result.error = send(batch);
  if (!result.error.ok()) return result;
  return receive();
}

ClientError RouteClient::send(std::span<const service::Request> batch) {
  ClientError err = send_frame(FrameType::kQueryBatch, encode_requests(batch));
  if (err.ok()) ++outstanding_;
  return err;
}

QueryResult RouteClient::receive() {
  QueryResult result;
  if (outstanding_ == 0) {
    result.error =
        make_error(ClientStatus::kProtocolError, "receive() with no batch outstanding");
    return result;
  }
  std::string payload;
  result.error = receive_frame(FrameType::kReplyBatch, payload);
  // Counted down even on failure: the connection is closed and the
  // pipeline is gone either way.
  --outstanding_;
  if (!result.error.ok()) return result;
  RepliesResult replies = decode_replies(payload, config_.limits);
  if (!replies.ok()) {
    close();
    result.error = make_error(ClientStatus::kProtocolError, replies.error);
    return result;
  }
  result.replies = std::move(replies.replies);
  return result;
}

CountersResult RouteClient::counters() {
  CountersResult result;
  result.error = send_frame(FrameType::kCountersFetch, {});
  if (!result.error.ok()) return result;
  std::string payload;
  result.error = receive_frame(FrameType::kCountersReply, payload);
  if (!result.error.ok()) return result;
  CountersFrame frame;
  if (!decode_counters(payload, frame)) {
    close();
    result.error =
        make_error(ClientStatus::kProtocolError, "bad counters payload");
    return result;
  }
  result.counters = frame.service;
  result.server = std::move(frame.server);
  result.replica = frame.replica;
  result.has_replica = frame.has_replica;
  return result;
}

SubmitResult RouteClient::submit_deltas(
    std::span<const service::RouteService::Delta> deltas) {
  SubmitResult result;
  result.error = send_frame(FrameType::kDeltaSubmit, encode_deltas(deltas));
  if (!result.error.ok()) return result;
  std::string payload;
  result.error = receive_frame(FrameType::kDeltaAck, payload);
  if (!result.error.ok()) return result;
  DeltaAck ack;
  if (!decode_delta_ack(payload, ack)) {
    close();
    result.error =
        make_error(ClientStatus::kProtocolError, "bad delta ack payload");
    return result;
  }
  result.accepted = ack.accepted;
  result.publish_count = ack.publish_count;
  return result;
}

U64Result RouteClient::drain() {
  U64Result result;
  result.error = send_frame(FrameType::kDrain, {});
  if (!result.error.ok()) return result;
  std::string payload;
  result.error = receive_frame(FrameType::kDrainReply, payload);
  if (!result.error.ok()) return result;
  if (!decode_u64(payload, result.value)) {
    close();
    result.error =
        make_error(ClientStatus::kProtocolError, "bad drain reply payload");
  }
  return result;
}

SnapshotFetchResult RouteClient::fetch_snapshot(
    std::span<const std::uint64_t> known_shard_versions) {
  SnapshotFetchResult result;
  result.error = send_frame(FrameType::kSnapshotFetch,
                            encode_shard_versions(known_shard_versions));
  if (!result.error.ok()) return result;
  // The response streams until a final chunk (kind byte 2). Cap the total
  // at one max frame per possible request batch slot — far above any real
  // transfer — so a confused server cannot make this loop collect forever.
  const std::uint64_t cap = std::uint64_t{config_.limits.max_payload_bytes} *
                            std::uint64_t{config_.limits.max_batch};
  for (;;) {
    std::string payload;
    result.error = receive_frame(FrameType::kSnapshotChunk, payload);
    if (!result.error.ok()) {
      result.chunks.clear();
      return result;
    }
    result.bytes += payload.size();
    const bool final_chunk =
        !payload.empty() &&
        static_cast<std::uint8_t>(payload[0]) ==
            service::ReplicationCodec::kFinalChunk;
    result.chunks.push_back(std::move(payload));
    if (final_chunk) return result;
    if (result.bytes > cap) {
      close();
      result.chunks.clear();
      result.error = make_error(ClientStatus::kProtocolError,
                                "snapshot stream exceeded the transfer cap");
      return result;
    }
  }
}

NotifyResult RouteClient::subscribe(std::uint64_t since) {
  NotifyResult result;
  result.error = send_frame(FrameType::kSubscribe, encode_u64(since));
  if (!result.error.ok()) return result;
  // The ack is the first notify, pushed immediately.
  std::string payload;
  result.error = receive_frame(FrameType::kPublishNotify, payload);
  if (!result.error.ok()) return result;
  if (!decode_publish_notify(payload, result.notify)) {
    close();
    result.error =
        make_error(ClientStatus::kProtocolError, "bad publish notify payload");
    return result;
  }
  subscribed_ = true;
  return result;
}

NotifyResult RouteClient::await_notify(int wait_ms) {
  NotifyResult result;
  if (!connected()) {
    result.error =
        make_error(ClientStatus::kNotConnected, "await before connect()");
    return result;
  }
  if (!subscribed_) {
    result.error = make_error(ClientStatus::kUnexpectedFrame,
                              "await_notify() without a subscription");
    return result;
  }
  // Pre-poll before touching receive_frame: a quiet wire is the normal
  // case and must not close the subscription the way a mid-frame timeout
  // would.
  pollfd pfd{fd_, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, wait_ms < 0 ? 0 : wait_ms);
  if (ready == 0) {
    result.error = make_error(ClientStatus::kTimeout, "no notify yet");
    return result;
  }
  if (ready < 0) {
    close();
    result.error = make_error(ClientStatus::kConnectionLost,
                              std::string("poll: ") + std::strerror(errno));
    return result;
  }
  std::string payload;
  result.error = receive_frame(FrameType::kPublishNotify, payload);
  if (!result.error.ok()) return result;
  if (!decode_publish_notify(payload, result.notify)) {
    close();
    result.error =
        make_error(ClientStatus::kProtocolError, "bad publish notify payload");
  }
  return result;
}

}  // namespace fpss::net
