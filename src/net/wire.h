// "fpss-wire v1": the length-prefixed binary framing that carries
// Query/Answer batches and control traffic between net::RouteClient and
// net::RouteServer.
//
// Every frame reuses the fpss-snap header discipline — magic, version,
// type, exact payload length, FNV-1a checksum of the payload — and both
// ends validate the header *before* allocating anything for the payload:
// a hostile or corrupt peer can be rejected after 20 bytes. Payload
// encodings are little-endian via util/binio.h, with Cost traveling as
// int64 (-1 = +infinity), the same convention the snapshot format fixed,
// so a decoded Reply is bit-identical to the in-process one.
//
//   frame   := header payload
//   header  := magic:u32 "FPW1" | version:u8 | type:u8 | reserved:u16
//              | payload_len:u32 | checksum:u64(FNV-1a of payload)
//
// Frame types (tags are wire-reserved; append, never renumber):
//   kHello(0x01)         -> kHelloAck(0x02)      version negotiation
//   kQueryBatch(0x10)    -> kReplyBatch(0x11)    the data path
//   kCountersFetch(0x20) -> kCountersReply(0x21) service counters
//   kDeltaSubmit(0x30)   -> kDeltaAck(0x31)      remote topology deltas
//   kDrain(0x40)         -> kDrainReply(0x41)    publish barrier
//   kSnapshotFetch(0x50) -> kSnapshotChunk(0x51)* per-shard snapshot sync
//   kSubscribe(0x60)     -> kPublishNotify(0x61)* push-based epoch updates
//   any                  -> kError(0x7f)         typed rejection
//
// (* = streamed: one kSnapshotFetch elicits a burst of kSnapshotChunk
// frames — data chunks for each dirty shard, then a final chunk (see
// service/replication.h); one kSubscribe converts the connection into a
// notify stream that pushes a kPublishNotify whenever the served epoch
// advances, coalescing bursts to the latest version.)
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "service/protocol.h"
#include "service/service.h"

namespace fpss::net {

inline constexpr std::uint8_t kWireVersion = 1;
// "FPW1" read as little-endian u32.
inline constexpr std::uint32_t kWireMagic = 0x31575046u;
inline constexpr std::size_t kFrameHeaderBytes = 20;

enum class FrameType : std::uint8_t {
  kHello = 0x01,
  kHelloAck = 0x02,
  kQueryBatch = 0x10,
  kReplyBatch = 0x11,
  kCountersFetch = 0x20,
  kCountersReply = 0x21,
  kDeltaSubmit = 0x30,
  kDeltaAck = 0x31,
  kDrain = 0x40,
  kDrainReply = 0x41,
  kSnapshotFetch = 0x50,
  kSnapshotChunk = 0x51,
  kSubscribe = 0x60,
  kPublishNotify = 0x61,
  kError = 0x7f,
};

/// Error-frame codes (wire-reserved tags).
enum class WireStatus : std::uint8_t {
  kMalformed = 1,           ///< undecodable payload or checksum mismatch
  kOversized = 2,           ///< frame or batch exceeds the announced limits
  kUnsupportedVersion = 3,  ///< header version != kWireVersion
  kBadFrameType = 4,        ///< unknown or out-of-sequence frame type
  kShuttingDown = 5,        ///< server is draining; retry elsewhere/later
  /// The forwarding queue is full (a replica's bounded in-flight write
  /// path): the write was NOT applied; back off and retry.
  kOverloaded = 6,
  /// A forwarding replica could not reach any upstream within its retry
  /// budget: the write was NOT applied; the replica still serves reads
  /// from its last consistent cut.
  kUpstreamDown = 7,
};

/// Size/batch bounds both ends enforce. The server rejects (without
/// allocating) any frame beyond max_payload_bytes and any batch beyond
/// max_batch; the client uses the same limits for replies.
struct WireLimits {
  std::uint32_t max_payload_bytes = 1u << 20;
  std::uint32_t max_batch = 4096;
};

struct FrameHeader {
  FrameType type = FrameType::kError;
  std::uint32_t payload_bytes = 0;
  std::uint64_t checksum = 0;
};

/// Outcome of a header decode; `error` is empty on success. On failure
/// `status` carries the typed code the rejecting side should put in its
/// kError frame.
struct HeaderResult {
  FrameHeader header;
  WireStatus status = WireStatus::kMalformed;
  std::string error;
  bool ok() const { return error.empty(); }
};

/// Builds a complete frame (header + payload).
std::string encode_frame(FrameType type, std::string_view payload);

/// Validates magic/version/length against `limits`. Exactly
/// kFrameHeaderBytes must be passed; the payload has NOT been read yet —
/// this is the pre-allocation gate.
HeaderResult decode_frame_header(std::string_view header_bytes,
                                 const WireLimits& limits);

/// True when the payload's FNV-1a digest matches the header.
bool payload_checksum_ok(const FrameHeader& header, std::string_view payload);

// --- control payloads ------------------------------------------------------

struct Hello {
  std::uint8_t wire_version = kWireVersion;
  std::uint32_t max_batch = 0;  ///< client's reply-batch capacity
};

struct HelloAck {
  std::uint8_t wire_version = kWireVersion;
  std::uint64_t node_count = 0;
  std::uint64_t snapshot_version = 0;
  std::uint32_t max_batch = 0;  ///< server's request-batch capacity
  /// Chain depth of the answering backend: 0 on a primary, upstream's
  /// hop + 1 on a replica. Appended in PR 9; a pre-chaining encoder's
  /// shorter payload decodes with hop_count = 0.
  std::uint32_t hop_count = 0;
};

struct ErrorFrame {
  WireStatus code = WireStatus::kMalformed;
  std::string message;
};

std::string encode_hello(const Hello& hello);
bool decode_hello(std::string_view payload, Hello& out);
std::string encode_hello_ack(const HelloAck& ack);
bool decode_hello_ack(std::string_view payload, HelloAck& out);
std::string encode_error(const ErrorFrame& error);
bool decode_error(std::string_view payload, ErrorFrame& out);

/// kDrainReply carries one u64 (the served version).
std::string encode_u64(std::uint64_t value);
bool decode_u64(std::string_view payload, std::uint64_t& out);

/// kDeltaAck: the write acknowledgment. `publish_count` is the accepting
/// backend's publish clock *after* the write was applied and published —
/// on a forwarding chain every tier relays the primary's post-drain count
/// unchanged, so a caller at any depth can wait_for_publish_beyond
/// (publish_count - 1) against its local replica and then read its own
/// write. A pre-ack encoder sent only the accepted count; that 8-byte
/// payload decodes with publish_count = 0 (no read-your-write guarantee).
struct DeltaAck {
  std::uint64_t accepted = 0;
  std::uint64_t publish_count = 0;
};

std::string encode_delta_ack(const DeltaAck& ack);
bool decode_delta_ack(std::string_view payload, DeltaAck& out);

// --- data payloads ---------------------------------------------------------

/// Requests: count:u32 then per request kind:u8 k:u32 i:u32 j:u32.
/// Unknown kind tags are carried through (the service answers kBadKind),
/// so old servers and new clients fail softly instead of at the codec.
std::string encode_requests(std::span<const service::Request> requests);

struct RequestsResult {
  std::vector<service::Request> requests;
  WireStatus status = WireStatus::kMalformed;
  std::string error;
  bool ok() const { return error.empty(); }
};
RequestsResult decode_requests(std::string_view payload,
                               std::uint32_t max_batch);

/// Replies: count:u32 then per reply status:u8 value:i64 amount:i64
/// node:u32 snapshot_version:u64 published_at:u64 age:u64 path_len:u32
/// path:u32*. Every field round-trips exactly (costs via the -1=inf
/// convention), which is what makes remote answers bit-identical.
std::string encode_replies(std::span<const service::Reply> replies);

struct RepliesResult {
  std::vector<service::Reply> replies;
  WireStatus status = WireStatus::kMalformed;
  std::string error;
  bool ok() const { return error.empty(); }
};
RepliesResult decode_replies(std::string_view payload,
                             const WireLimits& limits);

/// Deltas: count:u32 then per delta kind:u8 u:u32 v:u32 cost:i64, with
/// kind tags 1=cost_change 2=add_link 3=remove_link 4=republish.
std::string encode_deltas(
    std::span<const service::RouteService::Delta> deltas);

struct DeltasResult {
  std::vector<service::RouteService::Delta> deltas;
  WireStatus status = WireStatus::kMalformed;
  std::string error;
  bool ok() const { return error.empty(); }
};
DeltasResult decode_deltas(std::string_view payload, std::uint32_t max_batch);

// --- replication payloads --------------------------------------------------

/// kSnapshotFetch: the replica's negotiation state — the per-shard
/// versions it currently serves (from its last sync's final chunk). An
/// empty vector requests a full bootstrap; a vector whose length does not
/// match the server's shard layout is treated the same way. The server
/// streams back data chunks only for shards whose version moved, then the
/// final chunk. Payload: count:u32 then count x version:u64.
std::string encode_shard_versions(std::span<const std::uint64_t> versions);

struct ShardVersionsResult {
  std::vector<std::uint64_t> versions;
  WireStatus status = WireStatus::kMalformed;
  std::string error;
  bool ok() const { return error.empty(); }
};
ShardVersionsResult decode_shard_versions(std::string_view payload);

/// kPublishNotify: the push half of a subscription. `publish_count` is the
/// server's cumulative publish tally at send time and the high-water mark
/// the subscriber acknowledges implicitly; `coalesced` counts the
/// publishes this notify collapsed beyond the first (a subscriber slower
/// than the publish rate sees the latest state with coalesced > 0, never
/// a backlog of stale notifies).
struct PublishNotify {
  std::uint64_t snapshot_version = 0;
  std::uint64_t published_at_ns = 0;
  std::uint64_t publish_count = 0;
  std::uint64_t coalesced = 0;
};

std::string encode_publish_notify(const PublishNotify& notify);
bool decode_publish_notify(std::string_view payload, PublishNotify& out);

/// One peer's (client address's) accumulated server-side accounting —
/// the ROADMAP's per-client counters. `peer` is the textual remote
/// address (IPv4 dotted quad); a server that cannot resolve it, or whose
/// peer table overflowed, accounts under "(other)".
struct PeerCounters {
  std::string peer;
  std::uint64_t connections = 0;
  std::uint64_t queries = 0;          ///< individual requests answered
  std::uint64_t batches = 0;          ///< query batches served
  std::uint64_t rejected_frames = 0;  ///< typed kError rejections sent
};

/// net::RouteServer's own accounting: frame-level totals plus the
/// per-peer breakdown. Lives here (not in server.h) because the counters
/// frame carries it and server.h already includes wire.h.
struct ServerCounters {
  std::uint64_t connections = 0;
  std::uint64_t frames = 0;           ///< well-formed frames served
  std::uint64_t batches = 0;          ///< query batches answered
  std::uint64_t rejected_frames = 0;  ///< header/payload validation failures
  std::uint64_t timeouts = 0;         ///< connections dropped mid-frame
  std::vector<PeerCounters> peers;    ///< sorted by peer address
};

/// A replica daemon's sync-side accounting, served locally and over the
/// wire next to the service counters (absent on a primary).
struct ReplicaCounters {
  std::uint64_t full_syncs = 0;     ///< bootstraps fetching every shard
  std::uint64_t delta_syncs = 0;    ///< catch-ups fetching only dirty shards
  std::uint64_t shards_fetched = 0; ///< shard payloads received, cumulative
  std::uint64_t chunks_fetched = 0; ///< kSnapshotChunk frames received
  std::uint64_t bytes_fetched = 0;  ///< chunk payload bytes received
  std::uint64_t blocks_adopted = 0; ///< wire blocks swapped for local ones
  std::uint64_t notifies_received = 0;
  /// Publishes learned about only through a notify's coalesced tally —
  /// bursts the push path collapsed instead of queueing.
  std::uint64_t notifies_coalesced = 0;
  std::uint64_t resyncs = 0;        ///< upstream reconnects after a loss
  /// Gauge: at the last sync, now - the adopted snapshot's publish stamp.
  /// The stamp is the *primary's* publish time, so on a chain each tier's
  /// lag already compounds every upstream hop's lag.
  std::uint64_t sync_lag_ns = 0;
  // Chain / forwarding fields (PR 9; appended on the wire, a shorter
  // pre-chaining payload decodes with all five zero).
  std::uint64_t hop_count = 0;  ///< chain depth (1 = directly on the primary)
  /// Established upstream sessions lost (the degraded-to-last-cut events).
  std::uint64_t upstream_disconnects = 0;
  std::uint64_t deltas_forwarded = 0;  ///< deltas relayed upstream, accepted
  std::uint64_t forward_retries = 0;   ///< forwarding attempts that failed
  /// Writes rejected locally by the bounded in-flight gate (kOverloaded).
  std::uint64_t forward_rejected = 0;
};

/// What a kCountersReply carries: the service's counters plus the serving
/// daemon's own frame/peer accounting, plus (from a replica daemon) the
/// replication counters.
struct CountersFrame {
  service::RouteService::Counters service;
  ServerCounters server;
  ReplicaCounters replica;
  bool has_replica = false;
};

/// Counters payload: the RouteService::Counters fields as u64 in
/// declaration order (queries .. charges, the PR 6 publication counters
/// rows_rebuilt .. max_publish_ns, then the PR 7 pipeline/checkpoint
/// counters shard_exports_inflight_max .. journal_compactions — new
/// service fields are appended to the section, never reordered), followed
/// by the server totals (5 u64), the per-peer section (count:u32, then
/// per peer addr_len:u32 addr bytes + 4 u64), and the replica section
/// (presence:u8, then the ReplicaCounters fields as u64 in declaration
/// order when present). The replica section may be absent entirely —
/// pre-replication encoders stop after the peers — and decoders accept
/// that.
std::string encode_counters(const service::RouteService::Counters& counters,
                            const ServerCounters& server = {},
                            const ReplicaCounters* replica = nullptr);
bool decode_counters(std::string_view payload, CountersFrame& out);

}  // namespace fpss::net
