#include "net/wire.h"

#include "util/binio.h"
#include "util/checksum.h"

namespace fpss::net {

namespace {

using util::append_cost;
using util::append_i64;
using util::append_u16;
using util::append_u32;
using util::append_u64;
using util::append_u8;
using util::BinReader;

std::uint64_t fnv_of(std::string_view bytes) {
  util::Fnv1a64 fnv;
  for (const char c : bytes) fnv.byte(static_cast<std::uint8_t>(c));
  return fnv.digest();
}

bool known_frame_type(std::uint8_t tag) {
  switch (static_cast<FrameType>(tag)) {
    case FrameType::kHello:
    case FrameType::kHelloAck:
    case FrameType::kQueryBatch:
    case FrameType::kReplyBatch:
    case FrameType::kCountersFetch:
    case FrameType::kCountersReply:
    case FrameType::kDeltaSubmit:
    case FrameType::kDeltaAck:
    case FrameType::kDrain:
    case FrameType::kDrainReply:
    case FrameType::kSnapshotFetch:
    case FrameType::kSnapshotChunk:
    case FrameType::kSubscribe:
    case FrameType::kPublishNotify:
    case FrameType::kError:
      return true;
  }
  return false;
}

// Delta kinds get explicit wire tags (the in-memory enum order is not a
// wire contract).
constexpr std::uint8_t kDeltaCostChange = 1;
constexpr std::uint8_t kDeltaAddLink = 2;
constexpr std::uint8_t kDeltaRemoveLink = 3;
constexpr std::uint8_t kDeltaRepublish = 4;

}  // namespace

std::string encode_frame(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  append_u32(out, kWireMagic);
  append_u8(out, kWireVersion);
  append_u8(out, static_cast<std::uint8_t>(type));
  append_u16(out, 0);  // reserved
  append_u32(out, static_cast<std::uint32_t>(payload.size()));
  append_u64(out, fnv_of(payload));
  out.append(payload);
  return out;
}

HeaderResult decode_frame_header(std::string_view header_bytes,
                                 const WireLimits& limits) {
  HeaderResult result;
  if (header_bytes.size() != kFrameHeaderBytes) {
    result.error = "short frame header";
    return result;
  }
  BinReader in{header_bytes};
  if (in.u32() != kWireMagic) {
    result.error = "bad magic (not an fpss-wire frame)";
    return result;
  }
  const std::uint8_t version = in.u8();
  if (version != kWireVersion) {
    result.status = WireStatus::kUnsupportedVersion;
    result.error =
        "unsupported wire version " + std::to_string(version);
    return result;
  }
  const std::uint8_t type = in.u8();
  if (!known_frame_type(type)) {
    result.status = WireStatus::kBadFrameType;
    result.error = "unknown frame type " + std::to_string(type);
    return result;
  }
  in.u16();  // reserved
  const std::uint32_t payload_bytes = in.u32();
  if (payload_bytes > limits.max_payload_bytes) {
    result.status = WireStatus::kOversized;
    result.error = "frame payload " + std::to_string(payload_bytes) +
                   " bytes exceeds limit " +
                   std::to_string(limits.max_payload_bytes);
    return result;
  }
  result.header.type = static_cast<FrameType>(type);
  result.header.payload_bytes = payload_bytes;
  result.header.checksum = in.u64();
  return result;
}

bool payload_checksum_ok(const FrameHeader& header, std::string_view payload) {
  return payload.size() == header.payload_bytes &&
         fnv_of(payload) == header.checksum;
}

// --- control payloads ------------------------------------------------------

std::string encode_hello(const Hello& hello) {
  std::string out;
  append_u8(out, hello.wire_version);
  append_u32(out, hello.max_batch);
  return out;
}

bool decode_hello(std::string_view payload, Hello& out) {
  BinReader in{payload};
  out.wire_version = in.u8();
  out.max_batch = in.u32();
  return !in.fail && in.pos == payload.size();
}

std::string encode_hello_ack(const HelloAck& ack) {
  std::string out;
  append_u8(out, ack.wire_version);
  append_u64(out, ack.node_count);
  append_u64(out, ack.snapshot_version);
  append_u32(out, ack.max_batch);
  append_u32(out, ack.hop_count);
  return out;
}

bool decode_hello_ack(std::string_view payload, HelloAck& out) {
  BinReader in{payload};
  out.wire_version = in.u8();
  out.node_count = in.u64();
  out.snapshot_version = in.u64();
  out.max_batch = in.u32();
  // hop_count is a later addition: a payload ending after max_batch came
  // from a pre-chaining encoder and decodes as hop 0 (a primary).
  out.hop_count = in.remaining() > 0 ? in.u32() : 0;
  return !in.fail && in.pos == payload.size();
}

std::string encode_error(const ErrorFrame& error) {
  std::string out;
  append_u8(out, static_cast<std::uint8_t>(error.code));
  append_u32(out, static_cast<std::uint32_t>(error.message.size()));
  out.append(error.message);
  return out;
}

bool decode_error(std::string_view payload, ErrorFrame& out) {
  BinReader in{payload};
  out.code = static_cast<WireStatus>(in.u8());
  const std::uint32_t length = in.u32();
  if (in.fail || in.remaining() != length) return false;
  out.message.assign(payload.substr(in.pos, length));
  return true;
}

std::string encode_u64(std::uint64_t value) {
  std::string out;
  append_u64(out, value);
  return out;
}

bool decode_u64(std::string_view payload, std::uint64_t& out) {
  BinReader in{payload};
  out = in.u64();
  return !in.fail && in.pos == payload.size();
}

std::string encode_delta_ack(const DeltaAck& ack) {
  std::string out;
  append_u64(out, ack.accepted);
  append_u64(out, ack.publish_count);
  return out;
}

bool decode_delta_ack(std::string_view payload, DeltaAck& out) {
  BinReader in{payload};
  out.accepted = in.u64();
  // publish_count is a later addition: a pre-ack encoder sent only the
  // accepted count, which decodes with publish_count 0 (no read-your-write
  // promise can be made from it).
  out.publish_count = in.remaining() > 0 ? in.u64() : 0;
  return !in.fail && in.pos == payload.size();
}

// --- data payloads ---------------------------------------------------------

namespace {
constexpr std::size_t kRequestBytes = 13;  // kind + k + i + j
constexpr std::size_t kReplyMinBytes = 49;  // all fields, empty path
constexpr std::size_t kDeltaBytes = 17;    // kind + u + v + cost
}  // namespace

std::string encode_requests(std::span<const service::Request> requests) {
  std::string out;
  out.reserve(4 + kRequestBytes * requests.size());
  append_u32(out, static_cast<std::uint32_t>(requests.size()));
  for (const service::Request& r : requests) {
    append_u8(out, static_cast<std::uint8_t>(r.kind));
    append_u32(out, r.k);
    append_u32(out, r.i);
    append_u32(out, r.j);
  }
  return out;
}

RequestsResult decode_requests(std::string_view payload,
                               std::uint32_t max_batch) {
  RequestsResult result;
  BinReader in{payload};
  const std::uint32_t count = in.u32();
  if (in.fail) {
    result.error = "truncated request batch";
    return result;
  }
  if (count > max_batch) {
    result.status = WireStatus::kOversized;
    result.error = "request batch of " + std::to_string(count) +
                   " exceeds limit " + std::to_string(max_batch);
    return result;
  }
  // Exact-size check before the reserve: a lying count cannot force a
  // large allocation or leave trailing garbage unnoticed.
  if (in.remaining() != kRequestBytes * count) {
    result.error = "request batch size mismatch";
    return result;
  }
  result.requests.reserve(count);
  for (std::uint32_t r = 0; r < count; ++r) {
    service::Request request;
    request.kind = static_cast<service::RequestKind>(in.u8());
    request.k = in.u32();
    request.i = in.u32();
    request.j = in.u32();
    result.requests.push_back(request);
  }
  return result;
}

std::string encode_replies(std::span<const service::Reply> replies) {
  std::string out;
  std::size_t path_words = 0;
  for (const service::Reply& r : replies) path_words += r.path.size();
  out.reserve(4 + kReplyMinBytes * replies.size() + 4 * path_words);
  append_u32(out, static_cast<std::uint32_t>(replies.size()));
  for (const service::Reply& r : replies) {
    append_u8(out, static_cast<std::uint8_t>(r.status));
    append_cost(out, r.value);
    append_i64(out, r.amount);
    append_u32(out, r.node);
    append_u64(out, r.snapshot_version);
    append_u64(out, r.published_at_ns);
    append_u64(out, r.age_ns);
    append_u32(out, static_cast<std::uint32_t>(r.path.size()));
    for (const NodeId v : r.path) append_u32(out, v);
  }
  return out;
}

RepliesResult decode_replies(std::string_view payload,
                             const WireLimits& limits) {
  RepliesResult result;
  BinReader in{payload};
  const std::uint32_t count = in.u32();
  if (in.fail) {
    result.error = "truncated reply batch";
    return result;
  }
  if (count > limits.max_batch) {
    result.status = WireStatus::kOversized;
    result.error = "reply batch of " + std::to_string(count) +
                   " exceeds limit " + std::to_string(limits.max_batch);
    return result;
  }
  if (in.remaining() < kReplyMinBytes * count) {
    result.error = "reply batch size mismatch";
    return result;
  }
  result.replies.reserve(count);
  for (std::uint32_t r = 0; r < count; ++r) {
    service::Reply reply;
    reply.status = static_cast<service::Status>(in.u8());
    reply.value = in.cost();
    reply.amount = in.i64();
    reply.node = in.u32();
    reply.snapshot_version = in.u64();
    reply.published_at_ns = in.u64();
    reply.age_ns = in.u64();
    const std::uint32_t path_len = in.u32();
    // Bound the reserve by what the buffer can actually still hold.
    if (in.fail || path_len > in.remaining() / 4) {
      result.replies.clear();
      result.error = "truncated reply path";
      return result;
    }
    reply.path.reserve(path_len);
    for (std::uint32_t h = 0; h < path_len; ++h)
      reply.path.push_back(in.u32());
    result.replies.push_back(std::move(reply));
  }
  if (in.fail || in.pos != payload.size()) {
    result.replies.clear();
    result.error = "reply batch size mismatch";
    return result;
  }
  return result;
}

std::string encode_deltas(
    std::span<const service::RouteService::Delta> deltas) {
  using Delta = service::RouteService::Delta;
  std::string out;
  out.reserve(4 + kDeltaBytes * deltas.size());
  append_u32(out, static_cast<std::uint32_t>(deltas.size()));
  for (const Delta& d : deltas) {
    std::uint8_t tag = kDeltaRepublish;
    switch (d.kind) {
      case Delta::Kind::kCostChange:
        tag = kDeltaCostChange;
        break;
      case Delta::Kind::kAddLink:
        tag = kDeltaAddLink;
        break;
      case Delta::Kind::kRemoveLink:
        tag = kDeltaRemoveLink;
        break;
      case Delta::Kind::kRepublish:
        tag = kDeltaRepublish;
        break;
    }
    append_u8(out, tag);
    append_u32(out, d.u);
    append_u32(out, d.v);
    append_cost(out, d.cost);
  }
  return out;
}

DeltasResult decode_deltas(std::string_view payload, std::uint32_t max_batch) {
  using Delta = service::RouteService::Delta;
  DeltasResult result;
  BinReader in{payload};
  const std::uint32_t count = in.u32();
  if (in.fail) {
    result.error = "truncated delta batch";
    return result;
  }
  if (count > max_batch) {
    result.status = WireStatus::kOversized;
    result.error = "delta batch of " + std::to_string(count) +
                   " exceeds limit " + std::to_string(max_batch);
    return result;
  }
  if (in.remaining() != kDeltaBytes * count) {
    result.error = "delta batch size mismatch";
    return result;
  }
  result.deltas.reserve(count);
  for (std::uint32_t d = 0; d < count; ++d) {
    Delta delta;
    const std::uint8_t tag = in.u8();
    delta.u = in.u32();
    delta.v = in.u32();
    delta.cost = in.cost();
    switch (tag) {
      case kDeltaCostChange:
        delta.kind = Delta::Kind::kCostChange;
        if (delta.cost.is_infinite()) {
          result.deltas.clear();
          result.error = "cost-change delta with infinite cost";
          return result;
        }
        break;
      case kDeltaAddLink:
        delta.kind = Delta::Kind::kAddLink;
        break;
      case kDeltaRemoveLink:
        delta.kind = Delta::Kind::kRemoveLink;
        break;
      case kDeltaRepublish:
        delta.kind = Delta::Kind::kRepublish;
        break;
      default:
        result.deltas.clear();
        result.error = "unknown delta kind " + std::to_string(tag);
        return result;
    }
    result.deltas.push_back(delta);
  }
  if (in.fail) {
    result.deltas.clear();
    result.error = "truncated delta batch";
    return result;
  }
  return result;
}

// --- replication payloads --------------------------------------------------

std::string encode_shard_versions(std::span<const std::uint64_t> versions) {
  std::string out;
  out.reserve(4 + 8 * versions.size());
  append_u32(out, static_cast<std::uint32_t>(versions.size()));
  for (const std::uint64_t v : versions) append_u64(out, v);
  return out;
}

ShardVersionsResult decode_shard_versions(std::string_view payload) {
  ShardVersionsResult result;
  BinReader in{payload};
  const std::uint32_t count = in.u32();
  if (in.fail || in.remaining() != 8 * std::size_t{count}) {
    result.error = "shard-version vector size mismatch";
    return result;
  }
  result.versions.reserve(count);
  for (std::uint32_t s = 0; s < count; ++s) result.versions.push_back(in.u64());
  return result;
}

std::string encode_publish_notify(const PublishNotify& notify) {
  std::string out;
  append_u64(out, notify.snapshot_version);
  append_u64(out, notify.published_at_ns);
  append_u64(out, notify.publish_count);
  append_u64(out, notify.coalesced);
  return out;
}

bool decode_publish_notify(std::string_view payload, PublishNotify& out) {
  BinReader in{payload};
  out.snapshot_version = in.u64();
  out.published_at_ns = in.u64();
  out.publish_count = in.u64();
  out.coalesced = in.u64();
  return !in.fail && in.pos == payload.size();
}

namespace {
/// A peer address is a dotted quad (or "(other)"); anything longer is a
/// lying frame.
constexpr std::uint32_t kMaxPeerAddrBytes = 64;
}  // namespace

std::string encode_counters(const service::RouteService::Counters& counters,
                            const ServerCounters& server,
                            const ReplicaCounters* replica) {
  std::string out;
  out.reserve((20 + 5 + 10) * 8 + 5 +
              server.peers.size() * (4 + 16 + 4 * 8));
  append_u64(out, counters.queries);
  append_u64(out, counters.batches);
  append_u64(out, counters.total_ns);
  append_u64(out, counters.max_batch_ns);
  append_u64(out, counters.max_staleness_ns);
  append_u64(out, counters.publishes);
  append_u64(out, counters.deltas_applied);
  append_u64(out, counters.deltas_coalesced);
  append_u64(out, counters.charges);
  append_u64(out, counters.rows_rebuilt);
  append_u64(out, counters.rows_reused);
  append_u64(out, counters.shards_republished);
  append_u64(out, counters.full_rebuilds);
  append_u64(out, counters.publish_total_ns);
  append_u64(out, counters.max_publish_ns);
  append_u64(out, counters.shard_exports_inflight_max);
  append_u64(out, counters.checkpoints_written);
  append_u64(out, counters.checkpoint_bytes_written);
  append_u64(out, counters.journal_patches);
  append_u64(out, counters.journal_compactions);
  append_u64(out, server.connections);
  append_u64(out, server.frames);
  append_u64(out, server.batches);
  append_u64(out, server.rejected_frames);
  append_u64(out, server.timeouts);
  append_u32(out, static_cast<std::uint32_t>(server.peers.size()));
  for (const PeerCounters& peer : server.peers) {
    append_u32(out, static_cast<std::uint32_t>(peer.peer.size()));
    out.append(peer.peer);
    append_u64(out, peer.connections);
    append_u64(out, peer.queries);
    append_u64(out, peer.batches);
    append_u64(out, peer.rejected_frames);
  }
  append_u8(out, replica != nullptr ? 1 : 0);
  if (replica != nullptr) {
    append_u64(out, replica->full_syncs);
    append_u64(out, replica->delta_syncs);
    append_u64(out, replica->shards_fetched);
    append_u64(out, replica->chunks_fetched);
    append_u64(out, replica->bytes_fetched);
    append_u64(out, replica->blocks_adopted);
    append_u64(out, replica->notifies_received);
    append_u64(out, replica->notifies_coalesced);
    append_u64(out, replica->resyncs);
    append_u64(out, replica->sync_lag_ns);
    append_u64(out, replica->hop_count);
    append_u64(out, replica->upstream_disconnects);
    append_u64(out, replica->deltas_forwarded);
    append_u64(out, replica->forward_retries);
    append_u64(out, replica->forward_rejected);
  }
  return out;
}

bool decode_counters(std::string_view payload, CountersFrame& out) {
  BinReader in{payload};
  out.service.queries = in.u64();
  out.service.batches = in.u64();
  out.service.total_ns = in.u64();
  out.service.max_batch_ns = in.u64();
  out.service.max_staleness_ns = in.u64();
  out.service.publishes = in.u64();
  out.service.deltas_applied = in.u64();
  out.service.deltas_coalesced = in.u64();
  out.service.charges = in.u64();
  out.service.rows_rebuilt = in.u64();
  out.service.rows_reused = in.u64();
  out.service.shards_republished = in.u64();
  out.service.full_rebuilds = in.u64();
  out.service.publish_total_ns = in.u64();
  out.service.max_publish_ns = in.u64();
  out.service.shard_exports_inflight_max = in.u64();
  out.service.checkpoints_written = in.u64();
  out.service.checkpoint_bytes_written = in.u64();
  out.service.journal_patches = in.u64();
  out.service.journal_compactions = in.u64();
  out.server.connections = in.u64();
  out.server.frames = in.u64();
  out.server.batches = in.u64();
  out.server.rejected_frames = in.u64();
  out.server.timeouts = in.u64();
  const std::uint32_t peer_count = in.u32();
  // Every peer entry is at least 36 bytes; a lying count cannot force a
  // large allocation past this bound.
  if (in.fail || peer_count > in.remaining() / 36) return false;
  out.server.peers.clear();
  out.server.peers.reserve(peer_count);
  for (std::uint32_t p = 0; p < peer_count; ++p) {
    PeerCounters peer;
    const std::uint32_t addr_len = in.u32();
    if (in.fail || addr_len > kMaxPeerAddrBytes || addr_len > in.remaining())
      return false;
    peer.peer.assign(payload.substr(in.pos, addr_len));
    in.pos += addr_len;
    peer.connections = in.u64();
    peer.queries = in.u64();
    peer.batches = in.u64();
    peer.rejected_frames = in.u64();
    if (in.fail) return false;
    out.server.peers.push_back(std::move(peer));
  }
  if (in.fail) return false;
  // The replica section is a later addition: a payload that ends after the
  // peers decodes as replica-less, so older encoders stay readable.
  out.has_replica = false;
  out.replica = ReplicaCounters{};
  if (in.remaining() == 0) return true;
  const std::uint8_t present = in.u8();
  if (present == 0) return !in.fail && in.pos == payload.size();
  if (present != 1) return false;
  out.replica.full_syncs = in.u64();
  out.replica.delta_syncs = in.u64();
  out.replica.shards_fetched = in.u64();
  out.replica.chunks_fetched = in.u64();
  out.replica.bytes_fetched = in.u64();
  out.replica.blocks_adopted = in.u64();
  out.replica.notifies_received = in.u64();
  out.replica.notifies_coalesced = in.u64();
  out.replica.resyncs = in.u64();
  out.replica.sync_lag_ns = in.u64();
  if (in.fail) return false;
  // The chain/forwarding fields are a later addition: a payload that ends
  // after sync_lag_ns came from a pre-chaining encoder and decodes with
  // all five zero.
  if (in.remaining() > 0) {
    out.replica.hop_count = in.u64();
    out.replica.upstream_disconnects = in.u64();
    out.replica.deltas_forwarded = in.u64();
    out.replica.forward_retries = in.u64();
    out.replica.forward_rejected = in.u64();
  }
  if (in.fail || in.pos != payload.size()) return false;
  out.has_replica = true;
  return true;
}

}  // namespace fpss::net
