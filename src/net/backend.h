// net::Backend: the seam between the TCP front end and whatever serves
// the routes behind it.
//
// RouteServer originally spoke straight to a service::RouteService. The
// read-replica subsystem needs the same daemon front end over a
// replica::ReplicaService (whose snapshots arrive over the wire instead
// of from a local pricing session), so the server's dispatch now targets
// this interface. ServiceBackend is the primary-side adapter; the replica
// implements the interface directly, which is what lets replicas chain
// (a replica's server can itself feed further replicas).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "net/wire.h"
#include "service/service.h"
#include "service/store.h"

namespace fpss::net {

class Backend {
 public:
  virtual ~Backend() = default;

  virtual std::size_t node_count() const = 0;
  /// Composite version of the currently served state.
  virtual std::uint64_t version() const = 0;
  /// Publish stamp (ns since the Unix epoch) of the served snapshot; 0
  /// before the first publish.
  virtual std::uint64_t published_at_ns() const = 0;
  /// Cumulative local publishes — the subscription push loop's clock.
  virtual std::uint64_t publish_count() const = 0;

  virtual std::vector<service::Reply> query(
      std::span<const service::Request> batch) const = 0;
  virtual service::RouteService::Counters counters() const = 0;
  /// Fills `out` and returns true on a replica backend; a primary returns
  /// false and the counters frame omits the replica section.
  virtual bool replica_counters(ReplicaCounters& /*out*/) const {
    return false;
  }

  /// Chain depth the hello ack advertises: 0 on a primary, upstream's hop
  /// + 1 on a replica.
  virtual std::uint32_t hop_count() const { return 0; }

  /// Outcome of a write. `publish_count` is the primary's publish clock
  /// after the accepted deltas were applied and published — every
  /// forwarding tier relays it unchanged, so the submitter can
  /// wait_for_publish_beyond(publish_count - 1) at whatever depth it
  /// queries and then read its own write.
  struct SubmitOutcome {
    enum class Status : std::uint8_t {
      kOk = 0,
      kReadOnly = 1,    ///< backend does not accept deltas
      kOverloaded = 2,  ///< forwarding in-flight gate full; retry later
      kUnavailable = 3  ///< no upstream reachable within the retry budget
    };
    Status status = Status::kOk;
    std::uint64_t accepted = 0;
    std::uint64_t publish_count = 0;
  };

  /// Applies (or forwards) deltas. The server additionally gates the
  /// frame type on ServerConfig::allow_deltas.
  virtual SubmitOutcome submit(
      const std::vector<service::RouteService::Delta>& deltas) = 0;
  /// Publish barrier; returns the served version afterwards.
  virtual std::uint64_t drain() = 0;

  /// The sharded publication store backing kSnapshotFetch, or null when
  /// the backend cannot export per-shard state. Returned as a shared_ptr
  /// because a replica backend can swap (and destroy) its store on a
  /// layout-changing install — a raw pointer read before the swap would
  /// dangle mid-transfer. Backends whose store's lifetime is fixed return
  /// a non-owning alias.
  virtual std::shared_ptr<const service::ShardedSnapshotStore> store() const {
    return nullptr;
  }
  /// Blocks until publish_count() exceeds `count` or `timeout_ms` elapses;
  /// returns the current publish count. The subscription pusher calls this
  /// in bounded slices so it can interleave connection-liveness checks.
  virtual std::uint64_t wait_for_publish_beyond(std::uint64_t count,
                                                int timeout_ms) const = 0;
};

/// The primary-side adapter: a RouteService behind the Backend seam.
class ServiceBackend final : public Backend {
 public:
  explicit ServiceBackend(service::RouteService& service)
      : service_(service) {}

  std::size_t node_count() const override { return service_.node_count(); }
  std::uint64_t version() const override { return service_.version(); }
  std::uint64_t published_at_ns() const override {
    const auto snap = service_.snapshot();
    return snap == nullptr ? 0 : snap->published_at_ns();
  }
  std::uint64_t publish_count() const override {
    return service_.publish_count();
  }
  std::vector<service::Reply> query(
      std::span<const service::Request> batch) const override {
    return service_.query(batch);
  }
  service::RouteService::Counters counters() const override {
    return service_.counters();
  }
  /// Submit-then-drain: the ack must carry the post-publish clock, so the
  /// write is published before the reply leaves. Local callers that want
  /// to coalesce bursts keep using RouteService::submit directly.
  SubmitOutcome submit(
      const std::vector<service::RouteService::Delta>& deltas) override {
    SubmitOutcome outcome;
    outcome.accepted = service_.submit(deltas);
    if (outcome.accepted > 0) service_.drain();
    outcome.publish_count = service_.publish_count();
    return outcome;
  }
  std::uint64_t drain() override { return service_.drain(); }
  std::shared_ptr<const service::ShardedSnapshotStore> store() const override {
    // Non-owning alias: the service (and its store) must outlive this
    // backend per the RouteServer contract, so there is nothing to pin.
    return std::shared_ptr<const service::ShardedSnapshotStore>(
        std::shared_ptr<const void>(), &service_.store());
  }
  std::uint64_t wait_for_publish_beyond(std::uint64_t count,
                                        int timeout_ms) const override {
    return service_.wait_for_publish_beyond(count, timeout_ms);
  }

 private:
  service::RouteService& service_;
};

}  // namespace fpss::net
