// net::RouteServer: the blocking TCP front end that turns a RouteService
// into a daemon speaking fpss-wire v1.
//
// Shape: one accept thread plus a small worker pool. Accepted connections
// are queued; each worker serves one connection at a time, frame by frame
// (read header -> validate before allocating -> read payload -> checksum
// -> dispatch), so a request batch is answered by exactly the same
// service::answer() evaluation a local caller gets — the snapshot store's
// RCU read path makes the workers just more reader threads.
//
// Robustness contract (pinned by test_net.cpp under ASan):
//   * a frame is rejected from its 20-byte header alone when the magic,
//     version, type, or length is wrong — the payload is never allocated;
//   * oversized batches and undecodable payloads get a typed kError frame
//     and the connection is closed;
//   * per-connection reads time out (poll with a deadline), so a stalled
//     peer cannot pin a worker forever;
//   * stop() is graceful: the listener closes first, workers finish the
//     frame they are serving (in-flight batches drain), then join.
//
// The server fronts a net::Backend (see backend.h) — a local
// RouteService via the ServiceBackend adapter, or a ReplicaService. Two
// frame types stream instead of request/reply: kSnapshotFetch elicits a
// burst of kSnapshotChunk frames (the per-shard replication transfer),
// and kSubscribe converts the connection into a push channel that holds
// its worker and emits kPublishNotify frames until either side closes —
// size the worker pool for one pinned worker per subscribed replica.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/backend.h"
#include "net/wire.h"
#include "service/service.h"
#include "util/mutex.h"

namespace fpss::net {

struct ServerConfig {
  /// Address to bind. The default stays on loopback: the protocol has no
  /// authentication, so exposing it wider is an explicit operator choice.
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral (read back via port())
  unsigned workers = 4;
  /// How long a worker waits for the rest of a frame before giving up on
  /// the connection.
  int read_timeout_ms = 5000;
  WireLimits limits;
  /// Accept kDeltaSubmit frames (a pure read replica would say no).
  bool allow_deltas = true;
};

class RouteServer {
 public:
  /// Monotone totals across all connections plus the per-peer breakdown,
  /// for the daemon's own report and the counters frame. The wire type
  /// (net::ServerCounters) *is* the stats type — what stats() returns is
  /// exactly what a remote `route_query counters` shows.
  using Stats = ServerCounters;

  /// Binds and starts serving immediately. Check ok() — constructors
  /// cannot return the bind error, and a daemon that silently isn't
  /// listening is worse than one that reports why. The backend must
  /// outlive the server.
  RouteServer(Backend& backend, ServerConfig config = {});
  /// Convenience: fronts a local RouteService through an owned
  /// ServiceBackend adapter.
  RouteServer(service::RouteService& service, ServerConfig config = {});
  ~RouteServer();

  RouteServer(const RouteServer&) = delete;
  RouteServer& operator=(const RouteServer&) = delete;

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  /// The bound port (the resolved one when config.port was 0).
  std::uint16_t port() const { return port_; }

  Stats stats() const;

  /// Graceful shutdown: stop accepting, serve out in-flight frames, join
  /// every thread. Idempotent; the destructor calls it.
  void stop();

 private:
  /// Per-peer tallies live behind peers_mutex_ (written per served frame,
  /// read by stats()); keyed by the peer's textual address. Bounded: once
  /// kMaxPeers distinct addresses exist, further ones account under
  /// "(other)" — a scanner cycling source addresses must not grow server
  /// memory without bound.
  struct PeerTally {
    std::uint64_t connections = 0;
    std::uint64_t queries = 0;
    std::uint64_t batches = 0;
    std::uint64_t rejected_frames = 0;
  };
  static constexpr std::size_t kMaxPeers = 256;

  /// Shared tail of both constructors: bind, listen, spawn threads.
  void start();
  void accept_loop();
  void worker_loop();
  void serve_connection(int fd);
  /// One request/reply exchange; returns false when the connection should
  /// close (EOF, timeout, protocol error, shutdown). `peer` is the
  /// connection's accounting key.
  bool serve_frame(int fd, const std::string& peer);
  /// Streams the per-shard snapshot transfer for one kSnapshotFetch:
  /// data chunks for every shard whose version differs from `known`, then
  /// the final chunk. Returns false (close) on any write failure.
  bool serve_snapshot_fetch(int fd, const std::string& peer,
                            const std::vector<std::uint64_t>& known);
  /// The push loop a kSubscribe converts the connection into; returns only
  /// when the peer closes, a write fails, or the server stops.
  bool serve_subscription(int fd, std::uint64_t since);
  bool send_error(int fd, const std::string& peer, WireStatus code,
                  const std::string& message);
  /// The tally this peer accounts under (the overflow bucket when the
  /// table is full).
  PeerTally& peer_tally(const std::string& peer)
      FPSS_REQUIRES(peers_mutex_);

  std::unique_ptr<Backend> owned_;  ///< the compat ctor's adapter, if any
  Backend& backend_;
  ServerConfig config_;
  std::string error_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;

  std::atomic<bool> stopping_{false};
  bool stopped_ = false;  ///< stop() already completed (main thread only)

  util::Mutex queue_mutex_;
  util::CondVar queue_cv_;
  /// Accepted fds awaiting a worker.
  std::deque<int> pending_ FPSS_GUARDED_BY(queue_mutex_);

  // Stats: relaxed atomics, written by any worker.
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> frames_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> rejected_frames_{0};
  std::atomic<std::uint64_t> timeouts_{0};

  mutable util::Mutex peers_mutex_;
  std::map<std::string, PeerTally> peers_ FPSS_GUARDED_BY(peers_mutex_);

  std::vector<std::thread> workers_;
  std::thread acceptor_;
};

}  // namespace fpss::net
