#include "graphgen/random.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_set>
#include <vector>

#include "graph/analysis.h"
#include "util/contract.h"

namespace fpss::graphgen {

using graph::Graph;

Graph erdos_renyi(std::size_t n, double p, util::Rng& rng) {
  FPSS_EXPECTS(p >= 0.0 && p <= 1.0);
  Graph g{n};
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v)
      if (rng.chance(p)) g.add_edge(u, v);
  return g;
}

Graph barabasi_albert(std::size_t n, std::size_t attachments,
                      util::Rng& rng) {
  FPSS_EXPECTS(attachments >= 1 && n > attachments);
  Graph g{n};
  // Seed clique over the first attachments+1 nodes.
  const auto seed = static_cast<NodeId>(attachments + 1);
  std::vector<NodeId> endpoint_pool;  // each edge contributes both endpoints
  for (NodeId u = 0; u < seed; ++u) {
    for (NodeId v = u + 1; v < seed; ++v) {
      g.add_edge(u, v);
      endpoint_pool.push_back(u);
      endpoint_pool.push_back(v);
    }
  }
  for (NodeId v = seed; v < n; ++v) {
    std::unordered_set<NodeId> targets;
    while (targets.size() < attachments) {
      const NodeId t = endpoint_pool[rng.below(endpoint_pool.size())];
      targets.insert(t);
    }
    for (NodeId t : targets) {
      g.add_edge(v, t);
      endpoint_pool.push_back(v);
      endpoint_pool.push_back(t);
    }
  }
  return g;
}

Graph waxman(std::size_t n, double alpha, double beta, util::Rng& rng) {
  FPSS_EXPECTS(alpha > 0.0 && beta > 0.0);
  Graph g{n};
  std::vector<std::pair<double, double>> pos(n);
  for (auto& [px, py] : pos) {
    px = rng.uniform01();
    py = rng.uniform01();
  }
  const double scale = beta * std::sqrt(2.0);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      const double dx = pos[u].first - pos[v].first;
      const double dy = pos[u].second - pos[v].second;
      const double dist = std::sqrt(dx * dx + dy * dy);
      if (rng.chance(alpha * std::exp(-dist / scale))) g.add_edge(u, v);
    }
  }
  return g;
}

Graph tiered_internet(const TieredParams& params, util::Rng& rng) {
  return tiered_internet_annotated(params, rng).g;
}

TieredGraph tiered_internet_annotated(const TieredParams& params,
                                      util::Rng& rng) {
  FPSS_EXPECTS(params.core_count >= 3);
  FPSS_EXPECTS(params.mid_uplinks >= 1 && params.stub_uplinks >= 1);
  const std::size_t core = params.core_count;
  const std::size_t mid = params.mid_count;
  const std::size_t stub = params.stub_count;
  TieredGraph out{Graph{core + mid + stub}, {}, {}};
  Graph& g = out.g;
  out.tier.resize(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v)
    out.tier[v] = v < core ? 0 : (v < core + mid ? 1 : 2);

  auto link = [&out, &g](NodeId u, NodeId v, EdgeProvenance why) {
    if (g.add_edge(u, v)) out.edges.emplace_back(u, v, why);
  };

  // Tier-1 core: full mesh (default-free zone peers with everyone).
  for (NodeId u = 0; u < core; ++u)
    for (NodeId v = u + 1; v < core; ++v)
      link(u, v, EdgeProvenance::kCoreMesh);

  // Mid tier: multihomed into the core and earlier mid-tier nodes. The
  // chosen node is the new node's transit provider (always an earlier id,
  // so the provider digraph is acyclic).
  for (std::size_t m = 0; m < mid; ++m) {
    const auto v = static_cast<NodeId>(core + m);
    const std::size_t provider_pool = core + m;
    const std::size_t uplinks = std::min(params.mid_uplinks, provider_pool);
    while (g.degree(v) < uplinks) {
      link(v, static_cast<NodeId>(rng.below(provider_pool)),
           EdgeProvenance::kUplink);
    }
  }

  // Lateral peering between mid-tier nodes.
  for (std::size_t a = 0; a < mid; ++a)
    for (std::size_t b = a + 1; b < mid; ++b)
      if (rng.chance(params.peer_probability))
        link(static_cast<NodeId>(core + a), static_cast<NodeId>(core + b),
             EdgeProvenance::kLateral);

  // Stubs: multihomed into the mid tier (or core if there is no mid tier).
  for (std::size_t s = 0; s < stub; ++s) {
    const auto v = static_cast<NodeId>(core + mid + s);
    const std::size_t provider_lo = mid > 0 ? core : 0;
    const std::size_t provider_count = mid > 0 ? mid : core;
    const std::size_t uplinks = std::min(params.stub_uplinks, provider_count);
    while (g.degree(v) < uplinks) {
      link(v, static_cast<NodeId>(provider_lo + rng.below(provider_count)),
           EdgeProvenance::kUplink);
    }
  }

  // Biconnectivity repair: the added links are settlement-free peerings.
  const auto before = g.edges();
  make_biconnected(g, rng);
  for (const auto& [u, v] : g.edges()) {
    if (!std::binary_search(before.begin(), before.end(),
                            std::make_pair(u, v)))
      out.edges.emplace_back(u, v, EdgeProvenance::kRepair);
  }
  return out;
}

namespace {

/// Component labels of g with node `skip` (may be kInvalidNode) removed.
std::vector<std::uint32_t> component_labels(const Graph& g, NodeId skip,
                                            std::uint32_t& component_count) {
  const std::size_t n = g.node_count();
  std::vector<std::uint32_t> label(n, UINT32_MAX);
  component_count = 0;
  for (NodeId s = 0; s < n; ++s) {
    if (s == skip || label[s] != UINT32_MAX) continue;
    const std::uint32_t id = component_count++;
    std::queue<NodeId> frontier;
    frontier.push(s);
    label[s] = id;
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop();
      for (NodeId v : g.neighbors(u)) {
        if (v == skip || label[v] != UINT32_MAX) continue;
        label[v] = id;
        frontier.push(v);
      }
    }
  }
  return label;
}

/// Lowest-degree node of g among those with `label[v] == want` (v != skip).
NodeId pick_low_degree(const Graph& g, const std::vector<std::uint32_t>& label,
                       std::uint32_t want, NodeId skip) {
  NodeId best = kInvalidNode;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (v == skip || label[v] != want) continue;
    if (best == kInvalidNode || g.degree(v) < g.degree(best)) best = v;
  }
  FPSS_ENSURES(best != kInvalidNode);
  return best;
}

}  // namespace

std::size_t make_biconnected(graph::Graph& g, util::Rng& rng) {
  FPSS_EXPECTS(g.node_count() >= 3);
  std::size_t added = 0;
  // Phase 1: connect components.
  for (;;) {
    std::uint32_t components = 0;
    const auto label = component_labels(g, kInvalidNode, components);
    if (components <= 1) break;
    const NodeId u = pick_low_degree(g, label, 0, kInvalidNode);
    const NodeId v = pick_low_degree(
        g, label, 1 + static_cast<std::uint32_t>(rng.below(components - 1)),
        kInvalidNode);
    if (g.add_edge(u, v)) ++added;
  }
  // Phase 2: bridge around articulation points.
  for (;;) {
    const auto cuts = graph::articulation_points(g);
    if (cuts.empty()) break;
    const NodeId cut = cuts[rng.below(cuts.size())];
    std::uint32_t components = 0;
    const auto label = component_labels(g, cut, components);
    FPSS_ASSERT(components >= 2);
    const NodeId u = pick_low_degree(g, label, 0, cut);
    const NodeId v = pick_low_degree(
        g, label, 1 + static_cast<std::uint32_t>(rng.below(components - 1)),
        cut);
    const bool inserted = g.add_edge(u, v);
    FPSS_ASSERT(inserted);
    ++added;
  }
  FPSS_ENSURES(graph::is_biconnected(g));
  return added;
}

}  // namespace fpss::graphgen
