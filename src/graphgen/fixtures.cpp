#include "graphgen/fixtures.h"

#include "util/contract.h"

namespace fpss::graphgen {

using graph::Graph;

Fig1 fig1() {
  Fig1 f{Graph{6}, {"A", "B", "D", "X", "Y", "Z"}, 0, 1, 2, 3, 4, 5};
  f.g.set_cost(f.a, Cost{5});
  f.g.set_cost(f.b, Cost{2});
  f.g.set_cost(f.d, Cost{1});
  f.g.set_cost(f.x, Cost{2});
  f.g.set_cost(f.y, Cost{3});
  f.g.set_cost(f.z, Cost{4});
  f.g.add_edge(f.x, f.a);
  f.g.add_edge(f.a, f.z);
  f.g.add_edge(f.x, f.b);
  f.g.add_edge(f.b, f.d);
  f.g.add_edge(f.d, f.z);
  f.g.add_edge(f.y, f.d);
  f.g.add_edge(f.y, f.b);
  return f;
}

Graph path_graph(std::size_t n) {
  FPSS_EXPECTS(n >= 1);
  Graph g{n};
  for (NodeId v = 1; v < n; ++v) g.add_edge(v - 1, v);
  return g;
}

Graph ring_graph(std::size_t n) {
  FPSS_EXPECTS(n >= 3);
  Graph g{n};
  for (NodeId v = 0; v < n; ++v)
    g.add_edge(v, static_cast<NodeId>((v + 1) % n));
  return g;
}

Graph clique_graph(std::size_t n) {
  FPSS_EXPECTS(n >= 1);
  Graph g{n};
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v) g.add_edge(u, v);
  return g;
}

Graph grid_graph(std::size_t rows, std::size_t cols) {
  FPSS_EXPECTS(rows >= 1 && cols >= 1);
  Graph g{rows * cols};
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

Graph wheel_graph(std::size_t n) {
  FPSS_EXPECTS(n >= 4);
  Graph g{n};
  for (NodeId v = 1; v < n; ++v) {
    g.add_edge(0, v);
    const NodeId next = (v + 1 < n) ? v + 1 : 1;
    g.add_edge(v, next);
  }
  return g;
}

Graph complete_bipartite(std::size_t a, std::size_t b) {
  FPSS_EXPECTS(a >= 1 && b >= 1);
  Graph g{a + b};
  for (NodeId u = 0; u < a; ++u)
    for (NodeId v = 0; v < b; ++v)
      g.add_edge(u, static_cast<NodeId>(a + v));
  return g;
}

Graph hub_adversarial(std::size_t n, Cost::rep rim_cost) {
  FPSS_EXPECTS(n >= 4 && rim_cost >= 1);
  Graph g = wheel_graph(n);
  g.set_cost(0, Cost::zero());
  for (NodeId v = 1; v < n; ++v) g.set_cost(v, Cost{rim_cost});
  return g;
}

}  // namespace fpss::graphgen
