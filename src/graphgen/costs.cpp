#include "graphgen/costs.h"

#include <algorithm>
#include <cmath>

#include "util/contract.h"

namespace fpss::graphgen {

void assign_uniform_cost(graph::Graph& g, Cost c) {
  for (NodeId v = 0; v < g.node_count(); ++v) g.set_cost(v, c);
}

void assign_random_costs(graph::Graph& g, Cost::rep lo, Cost::rep hi,
                         util::Rng& rng) {
  FPSS_EXPECTS(0 <= lo && lo <= hi);
  for (NodeId v = 0; v < g.node_count(); ++v)
    g.set_cost(v, Cost{rng.uniform_int(lo, hi)});
}

void assign_pareto_costs(graph::Graph& g, double alpha, Cost::rep cap,
                         util::Rng& rng) {
  FPSS_EXPECTS(cap >= 1);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const double x = rng.pareto(alpha, static_cast<double>(cap));
    g.set_cost(v, Cost{static_cast<Cost::rep>(std::llround(x))});
  }
}

void assign_degree_costs(graph::Graph& g, Cost::rep lo, Cost::rep hi) {
  FPSS_EXPECTS(0 <= lo && lo <= hi);
  std::size_t max_degree = 1;
  for (NodeId v = 0; v < g.node_count(); ++v)
    max_degree = std::max(max_degree, g.degree(v));
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const double frac = 1.0 - static_cast<double>(g.degree(v)) /
                                  static_cast<double>(max_degree);
    const auto c =
        lo + static_cast<Cost::rep>(std::llround(frac * static_cast<double>(hi - lo)));
    g.set_cost(v, Cost{c});
  }
}

}  // namespace fpss::graphgen
