// Transit-cost assignment models. The paper treats c_k as the per-packet
// load a transit packet imposes on the AS's internal network (Sect. 1);
// we provide uniform, tiered, and heavy-tailed models so experiments can
// probe sensitivity to the cost distribution.
#pragma once

#include "graph/graph.h"
#include "util/rng.h"

namespace fpss::graphgen {

/// Every node gets cost `c`.
void assign_uniform_cost(graph::Graph& g, Cost c);

/// Independent uniform integer costs in [lo, hi].
void assign_random_costs(graph::Graph& g, Cost::rep lo, Cost::rep hi,
                         util::Rng& rng);

/// Heavy-tailed (Pareto shape `alpha`) integer costs in [1, cap]: a few
/// expensive ASs, many cheap ones.
void assign_pareto_costs(graph::Graph& g, double alpha, Cost::rep cap,
                         util::Rng& rng);

/// Degree-correlated costs: high-degree (core-like) nodes are cheap,
/// low-degree (stub-like) nodes expensive — big transit providers have
/// well-provisioned backbones. cost = lo + (hi-lo) * (1 - deg/maxdeg).
void assign_degree_costs(graph::Graph& g, Cost::rep lo, Cost::rep hi);

}  // namespace fpss::graphgen
