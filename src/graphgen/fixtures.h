// Deterministic fixture topologies: the paper's Fig. 1 worked example and
// the classic families used by unit tests and adversarial benchmarks.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/cost.h"
#include "util/types.h"

namespace fpss::graphgen {

/// The six-node AS graph of Fig. 1 with its transit costs
/// (A=5, B=2, D=1, X=2, Y=3, Z=4). Used by the E1/E2 reproduction:
/// LCP(X,Z) = X-B-D-Z with transit cost 3, p^D_XZ = 3, p^B_XZ = 4,
/// LCP(Y,Z) = Y-D-Z with transit cost 1, p^D_YZ = 9.
struct Fig1 {
  graph::Graph g;
  std::vector<std::string> names;  ///< display letters per node id
  NodeId a, b, d, x, y, z;         ///< ids of the lettered nodes
};
Fig1 fig1();

/// Simple path 0-1-...-(n-1). Not biconnected; used to exercise the
/// monopoly detection. Precondition: n >= 1.
graph::Graph path_graph(std::size_t n);

/// Cycle over n nodes. Biconnected for n >= 3. Precondition: n >= 3.
graph::Graph ring_graph(std::size_t n);

/// Complete graph K_n. Precondition: n >= 1.
graph::Graph clique_graph(std::size_t n);

/// rows x cols grid with 4-neighborhood. Biconnected iff both >= 2.
graph::Graph grid_graph(std::size_t rows, std::size_t cols);

/// Wheel W_n: node 0 is the hub, nodes 1..n-1 form a rim cycle, every rim
/// node also connects to the hub. Precondition: n >= 4.
graph::Graph wheel_graph(std::size_t n);

/// Complete bipartite K_{a,b}: nodes 0..a-1 vs a..a+b-1.
/// Precondition: a >= 1 && b >= 1.
graph::Graph complete_bipartite(std::size_t a, std::size_t b);

/// The adversarial family for experiment E7 (d' >> d): a wheel whose hub
/// has transit cost 0 and whose rim nodes have cost `rim_cost`, so every
/// LCP crosses the hub (d = 2) while the lowest-cost hub-avoiding path
/// walks the rim (d' ~ n). Precondition: n >= 4, rim_cost >= 1.
graph::Graph hub_adversarial(std::size_t n, Cost::rep rim_cost = 10);

}  // namespace fpss::graphgen
