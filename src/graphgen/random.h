// Random AS-topology generators. The paper evaluates its claims against
// "the current AS graph" (Sect. 6.2), which we cannot ship; these models
// reproduce the structural properties the claims depend on — biconnectivity,
// low diameter, heavy-tailed degree distribution (see DESIGN.md Sect. 2).
#pragma once

#include <cstddef>

#include "graph/graph.h"
#include "util/rng.h"

namespace fpss::graphgen {

/// Erdos-Renyi G(n, p).
graph::Graph erdos_renyi(std::size_t n, double p, util::Rng& rng);

/// Barabasi-Albert preferential attachment: starts from an
/// (attachments+1)-clique, each subsequent node attaches to `attachments`
/// distinct existing nodes with probability proportional to degree.
/// Produces the power-law degree distribution observed for AS graphs.
/// Precondition: n > attachments >= 1.
graph::Graph barabasi_albert(std::size_t n, std::size_t attachments,
                             util::Rng& rng);

/// Waxman random geometric graph on the unit square: nodes u,v are linked
/// with probability alpha * exp(-dist(u,v) / (beta * sqrt(2))).
graph::Graph waxman(std::size_t n, double alpha, double beta, util::Rng& rng);

/// Parameters of the tiered Internet-like generator.
struct TieredParams {
  std::size_t core_count = 8;       ///< fully meshed tier-1 core
  std::size_t mid_count = 32;       ///< regional providers
  std::size_t stub_count = 88;      ///< stub ASs
  std::size_t mid_uplinks = 3;      ///< links from each mid AS upward
  std::size_t stub_uplinks = 2;     ///< links from each stub AS upward
  double peer_probability = 0.05;   ///< lateral peering between mid ASs
};

/// Three-tier AS topology: a clique core, mid-tier providers multihomed
/// into core/mid, and stubs multihomed into mid-tier, plus sparse lateral
/// peering. Mirrors the provider/customer hierarchy described in the
/// paper's footnote 2.
graph::Graph tiered_internet(const TieredParams& params, util::Rng& rng);

/// How an edge of the tiered topology came to exist — the ground-truth
/// business relationship, consumed by the policy-routing module.
enum class EdgeProvenance : std::uint8_t {
  kCoreMesh,   ///< both endpoints tier-1: settlement-free peering
  kUplink,     ///< second endpoint is the first's transit provider
  kLateral,    ///< same-tier peering link
  kRepair,     ///< added by make_biconnected: treated as peering
};

struct TieredGraph {
  graph::Graph g;
  /// Tier of each node: 0 = core, 1 = mid, 2 = stub.
  std::vector<std::uint8_t> tier;
  /// One entry per edge: (u, v, provenance); for kUplink, v is u's
  /// provider.
  std::vector<std::tuple<NodeId, NodeId, EdgeProvenance>> edges;
};

/// Like tiered_internet, but also reports tiers and per-edge provenance.
TieredGraph tiered_internet_annotated(const TieredParams& params,
                                      util::Rng& rng);

/// Adds edges until `g` is biconnected (connects components, then bridges
/// around articulation points). New edges favor low-degree nodes. Returns
/// the number of edges added. Used to make every random family a valid
/// mechanism input.
std::size_t make_biconnected(graph::Graph& g, util::Rng& rng);

}  // namespace fpss::graphgen
