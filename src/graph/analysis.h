// Structural analysis of the AS graph. Biconnectivity matters because the
// VCG payments of Theorem 1 are undefined when some transit node is a
// monopoly: "These examples also show why the network must be biconnected;
// if it weren't, the payment would be undefined" (Sect. 4).
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.h"
#include "util/types.h"

namespace fpss::graph {

/// True if every node is reachable from every other (and the graph is
/// non-empty).
bool is_connected(const Graph& g);

/// Articulation points (cut vertices) via Tarjan's lowpoint algorithm.
/// Removing any returned node disconnects the graph. Sorted ascending.
std::vector<NodeId> articulation_points(const Graph& g);

/// True if g is connected, has >= 3 nodes, and has no articulation point —
/// i.e. between any two nodes there are two vertex-disjoint paths, so no
/// transit node has a routing monopoly.
bool is_biconnected(const Graph& g);

/// Hop-count eccentricity-based diameter (max over BFS depths). The paper's
/// `d` is the max AS-hops over *lowest-cost* paths, computed in
/// `routing::RoutingTable`; this plain hop diameter is a structural lower
/// bound used by generators and sanity tests.
std::size_t hop_diameter(const Graph& g);

/// Degree distribution statistics.
struct DegreeStats {
  std::size_t min = 0;
  std::size_t max = 0;
  double mean = 0;
};
DegreeStats degree_stats(const Graph& g);

}  // namespace fpss::graph
