// Paths through the AS graph and the transit-cost convention of Sect. 3:
// the cost of a path is the sum of the costs of its *intermediate* nodes
// only — source and destination carry their own traffic for free
// (I_i(c;i,j) = I_j(c;i,j) = 0).
#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/cost.h"
#include "util/types.h"

namespace fpss::graph {

/// A path is the full node sequence source..destination, inclusive.
using Path = std::vector<NodeId>;

/// Sum of transit-node costs (nodes strictly between the endpoints).
/// Precondition: path has >= 1 node.
Cost transit_cost(const Graph& g, const Path& path);

/// True if consecutive nodes are adjacent in g (single node counts).
bool is_walk(const Graph& g, const Path& path);

/// True if no node repeats.
bool is_simple(const Path& path);

/// True if `path` is a simple walk from `src` to `dst`.
bool is_simple_path(const Graph& g, const Path& path, NodeId src, NodeId dst);

/// True if node k appears strictly between the endpoints.
bool is_transit_node(const Path& path, NodeId k);

/// "0-3-1-2" rendering.
std::string path_to_string(const Path& path);

/// Same, with nodes shown as letters A.. (for the Fig. 1 worked example).
std::string path_to_letters(const Path& path,
                            const std::vector<std::string>& names);

}  // namespace fpss::graph
