// Plain-text serialization of AS graphs, so experiment inputs can be
// checked in, diffed, and reloaded. Format ("fpss-graph v1"):
//
//   # comments and blank lines are ignored
//   graph <node-count>
//   cost <node> <cost>          (optional; default 0)
//   edge <u> <v>
//
// Parsing returns a result object instead of aborting: malformed input is
// an expected runtime condition, not a programming error.
#pragma once

#include <optional>
#include <string>

#include "graph/graph.h"

namespace fpss::graph {

/// Serializes g in the v1 format (stable ordering: costs then edges).
std::string to_text(const Graph& g);

struct ParseResult {
  std::optional<Graph> graph;  ///< empty on failure
  std::string error;           ///< "line 12: unknown directive 'foo'"
  std::size_t line = 0;        ///< line the error was found on

  bool ok() const { return graph.has_value(); }
};

/// Parses the v1 format. Never aborts on bad input.
ParseResult from_text(const std::string& text);

/// Outcome of a save. Like ParseResult, I/O failure is an expected runtime
/// condition and comes back with a reason, not a bare bool.
struct SaveResult {
  std::string error;  ///< "cannot open '/ro/x.graph' for writing"

  bool ok() const { return error.empty(); }
};

/// Convenience file wrappers (!ok() on I/O failure, with the reason).
SaveResult save_graph(const Graph& g, const std::string& path);
ParseResult load_graph(const std::string& path);

}  // namespace fpss::graph
