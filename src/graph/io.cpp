#include "graph/io.h"

#include <fstream>
#include <sstream>

namespace fpss::graph {

std::string to_text(const Graph& g) {
  std::ostringstream out;
  out << "# fpss-graph v1\n";
  out << "graph " << g.node_count() << "\n";
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (g.cost(v) != Cost::zero())
      out << "cost " << v << " " << g.cost(v).value() << "\n";
  }
  for (const auto& [u, v] : g.edges()) out << "edge " << u << " " << v << "\n";
  return out.str();
}

namespace {

ParseResult fail(std::size_t line, std::string message) {
  ParseResult result;
  result.error = "line " + std::to_string(line) + ": " + std::move(message);
  result.line = line;
  return result;
}

}  // namespace

ParseResult from_text(const std::string& text) {
  std::istringstream in(text);
  std::optional<Graph> graph;
  std::string raw;
  std::size_t line_number = 0;

  while (std::getline(in, raw)) {
    ++line_number;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream line(raw);
    std::string directive;
    if (!(line >> directive)) continue;  // blank / comment-only line

    if (directive == "graph") {
      if (graph.has_value())
        return fail(line_number, "duplicate 'graph' directive");
      long long n = -1;
      if (!(line >> n) || n < 0)
        return fail(line_number, "'graph' needs a non-negative node count");
      graph.emplace(static_cast<std::size_t>(n));
    } else if (directive == "cost") {
      if (!graph.has_value())
        return fail(line_number, "'cost' before 'graph'");
      long long v = -1, c = -1;
      if (!(line >> v >> c) || v < 0 || c < 0)
        return fail(line_number, "'cost' needs <node> <non-negative cost>");
      if (static_cast<std::size_t>(v) >= graph->node_count())
        return fail(line_number, "node id out of range");
      if (c > Cost::kMaxFinite) return fail(line_number, "cost too large");
      graph->set_cost(static_cast<NodeId>(v), Cost{c});
    } else if (directive == "edge") {
      if (!graph.has_value())
        return fail(line_number, "'edge' before 'graph'");
      long long u = -1, v = -1;
      if (!(line >> u >> v) || u < 0 || v < 0)
        return fail(line_number, "'edge' needs <u> <v>");
      if (static_cast<std::size_t>(u) >= graph->node_count() ||
          static_cast<std::size_t>(v) >= graph->node_count())
        return fail(line_number, "node id out of range");
      if (u == v) return fail(line_number, "self-loops are not allowed");
      if (!graph->add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v)))
        return fail(line_number, "duplicate edge");
    } else {
      return fail(line_number, "unknown directive '" + directive + "'");
    }
    // Trailing garbage after the parsed fields.
    std::string extra;
    if (line >> extra)
      return fail(line_number, "unexpected trailing token '" + extra + "'");
  }
  if (!graph.has_value()) return fail(line_number, "missing 'graph' directive");

  ParseResult result;
  result.graph = std::move(graph);
  return result;
}

SaveResult save_graph(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return {"cannot open '" + path + "' for writing"};
  out << to_text(g);
  out.flush();
  if (!out) return {"write to '" + path + "' failed"};
  return {};
}

ParseResult load_graph(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    ParseResult result;
    result.error = "cannot open '" + path + "'";
    return result;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_text(buffer.str());
}

}  // namespace fpss::graph
