#include "graph/graph.h"

#include <algorithm>

#include "util/contract.h"

namespace fpss::graph {

Graph::Graph(std::size_t node_count)
    : node_cost_(node_count, Cost::zero()), adjacency_(node_count) {}

Cost Graph::cost(NodeId v) const {
  FPSS_EXPECTS(contains(v));
  return node_cost_[v];
}

void Graph::set_cost(NodeId v, Cost c) {
  FPSS_EXPECTS(contains(v));
  FPSS_EXPECTS(c.is_finite());
  node_cost_[v] = c;
}

std::vector<Cost> Graph::costs() const { return node_cost_; }

void Graph::set_costs(const std::vector<Cost>& costs) {
  FPSS_EXPECTS(costs.size() == node_count());
  for (Cost c : costs) FPSS_EXPECTS(c.is_finite());
  node_cost_ = costs;
}

std::span<const NodeId> Graph::neighbors(NodeId v) const {
  FPSS_EXPECTS(contains(v));
  return adjacency_[v];
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  FPSS_EXPECTS(contains(u) && contains(v));
  const auto& adj = adjacency_[u];
  return std::binary_search(adj.begin(), adj.end(), v);
}

bool Graph::add_edge(NodeId u, NodeId v) {
  FPSS_EXPECTS(contains(u) && contains(v));
  FPSS_EXPECTS(u != v);
  if (has_edge(u, v)) return false;
  auto insert_sorted = [](std::vector<NodeId>& adj, NodeId w) {
    adj.insert(std::lower_bound(adj.begin(), adj.end(), w), w);
  };
  insert_sorted(adjacency_[u], v);
  insert_sorted(adjacency_[v], u);
  ++edge_count_;
  ++version_;
  return true;
}

bool Graph::remove_edge(NodeId u, NodeId v) {
  FPSS_EXPECTS(contains(u) && contains(v));
  if (!has_edge(u, v)) return false;
  auto erase_sorted = [](std::vector<NodeId>& adj, NodeId w) {
    adj.erase(std::lower_bound(adj.begin(), adj.end(), w));
  };
  erase_sorted(adjacency_[u], v);
  erase_sorted(adjacency_[v], u);
  --edge_count_;
  ++version_;
  return true;
}

std::vector<std::pair<NodeId, NodeId>> Graph::edges() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(edge_count_);
  for (NodeId u = 0; u < node_count(); ++u)
    for (NodeId v : adjacency_[u])
      if (u < v) out.emplace_back(u, v);
  return out;
}

}  // namespace fpss::graph
