#include "graph/dot.h"

#include <sstream>

#include "util/contract.h"

namespace fpss::graph {

std::string to_dot(const Graph& g, const std::vector<std::string>& names) {
  FPSS_EXPECTS(names.empty() || names.size() == g.node_count());
  std::ostringstream out;
  out << "graph as_graph {\n";
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const std::string label =
        names.empty() ? std::to_string(v) : names[v];
    out << "  n" << v << " [label=\"" << label << " ("
        << g.cost(v).to_string() << ")\"];\n";
  }
  for (const auto& [u, v] : g.edges())
    out << "  n" << u << " -- n" << v << ";\n";
  out << "}\n";
  return out.str();
}

}  // namespace fpss::graph
