#include "graph/analysis.h"

#include <algorithm>
#include <queue>

#include "util/contract.h"

namespace fpss::graph {

bool is_connected(const Graph& g) {
  const std::size_t n = g.node_count();
  if (n == 0) return false;
  std::vector<char> seen(n, 0);
  std::queue<NodeId> frontier;
  frontier.push(0);
  seen[0] = 1;
  std::size_t visited = 1;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : g.neighbors(u)) {
      if (!seen[v]) {
        seen[v] = 1;
        ++visited;
        frontier.push(v);
      }
    }
  }
  return visited == n;
}

namespace {

/// Iterative Tarjan articulation-point search (explicit stack so that large
/// generated graphs cannot overflow the call stack).
struct ArticulationSearch {
  const Graph& g;
  std::vector<std::uint32_t> discovery;
  std::vector<std::uint32_t> lowpoint;
  std::vector<char> is_cut;
  std::uint32_t clock = 0;

  explicit ArticulationSearch(const Graph& graph)
      : g(graph),
        discovery(graph.node_count(), 0),
        lowpoint(graph.node_count(), 0),
        is_cut(graph.node_count(), 0) {}

  struct Frame {
    NodeId node;
    NodeId parent;
    std::size_t next_neighbor;
    std::size_t tree_children;
  };

  void run_from(NodeId root) {
    std::vector<Frame> stack;
    discovery[root] = lowpoint[root] = ++clock;
    stack.push_back({root, kInvalidNode, 0, 0});
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const NodeId u = frame.node;
      const auto adj = g.neighbors(u);
      if (frame.next_neighbor < adj.size()) {
        const NodeId v = adj[frame.next_neighbor++];
        if (discovery[v] == 0) {
          ++frame.tree_children;
          discovery[v] = lowpoint[v] = ++clock;
          stack.push_back({v, u, 0, 0});
        } else if (v != frame.parent) {
          lowpoint[u] = std::min(lowpoint[u], discovery[v]);
        }
      } else {
        // Done with u: fold its lowpoint into the parent and test the
        // articulation condition there.
        if (frame.parent == kInvalidNode) {
          if (frame.tree_children >= 2) is_cut[u] = 1;
        }
        stack.pop_back();
        if (!stack.empty()) {
          Frame& parent_frame = stack.back();
          const NodeId p = parent_frame.node;
          lowpoint[p] = std::min(lowpoint[p], lowpoint[u]);
          if (parent_frame.parent != kInvalidNode &&
              lowpoint[u] >= discovery[p]) {
            is_cut[p] = 1;
          }
        }
      }
    }
  }
};

}  // namespace

std::vector<NodeId> articulation_points(const Graph& g) {
  ArticulationSearch search(g);
  for (NodeId v = 0; v < g.node_count(); ++v)
    if (search.discovery[v] == 0) search.run_from(v);
  std::vector<NodeId> cuts;
  for (NodeId v = 0; v < g.node_count(); ++v)
    if (search.is_cut[v]) cuts.push_back(v);
  return cuts;
}

bool is_biconnected(const Graph& g) {
  return g.node_count() >= 3 && is_connected(g) &&
         articulation_points(g).empty();
}

std::size_t hop_diameter(const Graph& g) {
  FPSS_EXPECTS(is_connected(g));
  const std::size_t n = g.node_count();
  std::size_t diameter = 0;
  std::vector<std::uint32_t> depth(n);
  for (NodeId s = 0; s < n; ++s) {
    std::fill(depth.begin(), depth.end(), UINT32_MAX);
    std::queue<NodeId> frontier;
    depth[s] = 0;
    frontier.push(s);
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop();
      diameter = std::max<std::size_t>(diameter, depth[u]);
      for (NodeId v : g.neighbors(u)) {
        if (depth[v] == UINT32_MAX) {
          depth[v] = depth[u] + 1;
          frontier.push(v);
        }
      }
    }
  }
  return diameter;
}

DegreeStats degree_stats(const Graph& g) {
  DegreeStats stats;
  const std::size_t n = g.node_count();
  if (n == 0) return stats;
  stats.min = g.degree(0);
  for (NodeId v = 0; v < n; ++v) {
    const std::size_t deg = g.degree(v);
    stats.min = std::min(stats.min, deg);
    stats.max = std::max(stats.max, deg);
  }
  stats.mean = 2.0 * static_cast<double>(g.edge_count()) /
               static_cast<double>(n);
  return stats;
}

}  // namespace fpss::graph
