// Graphviz DOT export for debugging and documentation figures.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"

namespace fpss::graph {

/// Renders g as an undirected DOT graph; node labels show "name (cost)".
/// If `names` is empty, numeric ids are used.
std::string to_dot(const Graph& g, const std::vector<std::string>& names = {});

}  // namespace fpss::graph
