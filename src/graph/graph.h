// The AS graph of Sect. 3: an undirected graph whose nodes are Autonomous
// Systems, each with a per-packet transit cost c_k, and whose edges are
// bidirectional interconnections. Following the Griffin-Wilfong abstraction
// adopted by the paper (Sect. 5) there is at most one link between any two
// ASs and each AS is atomic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/cost.h"
#include "util/types.h"

namespace fpss::graph {

/// Undirected AS graph with per-node transit costs.
///
/// Adjacency lists are kept sorted by neighbor id so that iteration order —
/// and therefore every tie-break in the routing and pricing algorithms — is
/// deterministic. Mutation (link insertion/removal, cost change) is allowed
/// to support the dynamic-topology experiments of Sect. 6.
class Graph {
 public:
  /// An n-node graph with no edges and all costs zero.
  explicit Graph(std::size_t node_count);

  std::size_t node_count() const { return adjacency_.size(); }
  std::size_t edge_count() const { return edge_count_; }

  /// Topology generation counter: bumped on every successful edge
  /// insertion/removal (cost changes do not count). Lets flat caches keyed
  /// by adjacency position (e.g. the engine's per-link ledger) detect that
  /// their layout is stale without observing every mutation call.
  std::uint64_t version() const { return version_; }

  bool contains(NodeId v) const { return v < node_count(); }

  /// Transit cost c_v declared by node v.
  Cost cost(NodeId v) const;
  void set_cost(NodeId v, Cost c);
  std::vector<Cost> costs() const;
  void set_costs(const std::vector<Cost>& costs);

  /// Sorted neighbor list of v.
  std::span<const NodeId> neighbors(NodeId v) const;
  std::size_t degree(NodeId v) const { return neighbors(v).size(); }

  bool has_edge(NodeId u, NodeId v) const;

  /// Inserts the undirected edge {u, v}. Returns false if it already exists.
  /// Precondition: u != v (no self-loops in the AS graph model).
  bool add_edge(NodeId u, NodeId v);

  /// Removes the undirected edge {u, v}. Returns false if absent.
  bool remove_edge(NodeId u, NodeId v);

  /// All edges as (u, v) pairs with u < v, sorted.
  std::vector<std::pair<NodeId, NodeId>> edges() const;

 private:
  std::vector<Cost> node_cost_;
  std::vector<std::vector<NodeId>> adjacency_;
  std::size_t edge_count_ = 0;
  std::uint64_t version_ = 0;
};

}  // namespace fpss::graph
