#include "graph/path.h"

#include <unordered_set>

#include "util/contract.h"

namespace fpss::graph {

Cost transit_cost(const Graph& g, const Path& path) {
  FPSS_EXPECTS(!path.empty());
  Cost total = Cost::zero();
  for (std::size_t i = 1; i + 1 < path.size(); ++i) total += g.cost(path[i]);
  return total;
}

bool is_walk(const Graph& g, const Path& path) {
  if (path.empty()) return false;
  for (NodeId v : path)
    if (!g.contains(v)) return false;
  for (std::size_t i = 1; i < path.size(); ++i)
    if (!g.has_edge(path[i - 1], path[i])) return false;
  return true;
}

bool is_simple(const Path& path) {
  std::unordered_set<NodeId> seen(path.begin(), path.end());
  return seen.size() == path.size();
}

bool is_simple_path(const Graph& g, const Path& path, NodeId src, NodeId dst) {
  return !path.empty() && path.front() == src && path.back() == dst &&
         is_walk(g, path) && is_simple(path);
}

bool is_transit_node(const Path& path, NodeId k) {
  for (std::size_t i = 1; i + 1 < path.size(); ++i)
    if (path[i] == k) return true;
  return false;
}

std::string path_to_string(const Path& path) {
  std::string out;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i) out += '-';
    out += std::to_string(path[i]);
  }
  return out;
}

std::string path_to_letters(const Path& path,
                            const std::vector<std::string>& names) {
  std::string out;
  for (NodeId v : path) {
    FPSS_EXPECTS(v < names.size());
    out += names[v];
  }
  return out;
}

}  // namespace fpss::graph
