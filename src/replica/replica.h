// replica::ReplicaService: a read-only serving node whose snapshots
// arrive over fpss-wire instead of from a local pricing session.
//
// A replica owns two upstream connections and one background sync thread:
//
//   fetch channel  ──► kSnapshotFetch(known shard versions)
//                      ◄── kSnapshotChunk* (dirty shards + final chunk)
//   notify channel ──► kSubscribe(last publish count)
//                      ◄── kPublishNotify pushes (coalesced under bursts)
//
// The sync loop bootstraps with a full fetch (every shard), subscribes,
// and thereafter fetches only on a push — no polling. Each catch-up sends
// the shard-version vector from its previous sync's final chunk, so the
// primary streams exactly the shards whose slot version moved: a replica
// N publishes behind transfers O(dirty shards), not O(all shards). The
// reassembled snapshot (service::ReplicationCodec::Assembler — checksum
// verified, torn chunks rejected wholesale) lands in the replica's own
// ShardedSnapshotStore under an epoch fence, shard by shard, exactly like
// the primary's staged publish pipeline.
//
// Reads go through the same service::Request/Reply surface a primary
// serves, so a query answered by a replica is bit-identical to the
// primary's answer for the same snapshot version (the e2e equality tests
// pin this). ReplicaService implements net::Backend, which is what lets a
// net::RouteServer front it — replicas chain: primary -> replica ->
// replica, each tier fanning reads out further.
//
// Warm start: with a checkpoint directory configured, a loaded base image
// is served immediately (before the upstream is even reachable) and then
// used as a digest-adoption donor — wire blocks whose content matches the
// local image are dropped in favor of the already-resident ones.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "net/backend.h"
#include "net/client.h"
#include "service/protocol.h"
#include "service/replication.h"
#include "service/store.h"

namespace fpss::replica {

struct ReplicaConfig {
  /// Where the primary (or upstream replica) listens.
  net::ClientConfig upstream;
  /// Warm-start checkpoint directory (see service::CheckpointPolicy).
  /// Empty disables the warm bootstrap.
  std::string checkpoint_directory;
  /// How long one await_notify slice blocks before the loop re-checks the
  /// stop flag. Latency ceiling for noticing shutdown, not for syncs —
  /// notifies wake the wait immediately.
  int notify_wait_ms = 200;
  /// Backoff between reconnect attempts after the upstream drops.
  int resync_backoff_ms = 100;
};

class ReplicaService final : public net::Backend {
 public:
  /// Starts the background sync loop immediately. If a checkpoint is
  /// configured and loads, its snapshot is served at once; otherwise reads
  /// return kUnreachable-free empty-store behavior until the first sync
  /// (wait_until_ready() to block on it).
  explicit ReplicaService(ReplicaConfig config);
  ~ReplicaService() override;

  ReplicaService(const ReplicaService&) = delete;
  ReplicaService& operator=(const ReplicaService&) = delete;

  /// Blocks until a snapshot is being served (first sync or checkpoint
  /// load) or `timeout_ms` elapses; true when ready.
  bool wait_until_ready(int timeout_ms) const;

  /// Blocks until the served version exceeds `version` or `timeout_ms`
  /// elapses; returns the served version either way.
  std::uint64_t wait_for_version_beyond(std::uint64_t version,
                                        int timeout_ms) const;

  /// Stops the sync loop and closes the upstream connections. Idempotent;
  /// the destructor calls it. Reads keep working on the last synced state.
  void stop();

  net::ReplicaCounters replication_counters() const;

  // --- net::Backend --------------------------------------------------------

  std::size_t node_count() const override;
  std::uint64_t version() const override;
  std::uint64_t published_at_ns() const override;
  std::uint64_t publish_count() const override;
  std::vector<service::Reply> query(
      std::span<const service::Request> batch) const override;
  service::RouteService::Counters counters() const override;
  bool replica_counters(net::ReplicaCounters& out) const override {
    out = replication_counters();
    return true;
  }
  /// Replicas are read-only: deltas are never accepted (the fronting
  /// server should also set ServerConfig::allow_deltas = false).
  std::size_t submit(
      const std::vector<service::RouteService::Delta>& deltas) override;
  /// No local updater to drain; returns the served version.
  std::uint64_t drain() override;
  /// The replica's own store — what lets a downstream replica sync from
  /// this one.
  const service::ShardedSnapshotStore* store() const override;
  std::uint64_t wait_for_publish_beyond(std::uint64_t count,
                                        int timeout_ms) const override;

 private:
  /// One sync: fetch (full or dirty-only), reassemble, publish under a
  /// fence. Returns false when the connection failed or the stream was
  /// torn (triggers a resync; nothing partial is ever published).
  bool sync_once();
  void sync_loop();
  /// Publishes an assembled snapshot into the store (fence for a shard
  /// catch-up, a fresh store for a bootstrap or layout change).
  void install(const service::ReplicationCodec::Assembler::Result& result);
  void count_batch(std::uint64_t queries, std::uint64_t ns) const;

  ReplicaConfig config_;

  /// The served store plus the negotiation state from the last final
  /// chunk. The store pointer itself is swapped on layout changes, so
  /// readers copy it under the mutex (the store's own lock then provides
  /// the usual RCU cut).
  mutable std::mutex store_mutex_;
  std::shared_ptr<service::ShardedSnapshotStore> store_;
  std::vector<std::uint64_t> synced_versions_;  ///< echoed in the next fetch
  std::shared_ptr<const service::RouteSnapshot> adopt_donor_;

  mutable std::condition_variable ready_cv_;  ///< store_mutex_; publishes
  std::uint64_t publishes_ = 0;  ///< replica-local publish tally (store_mutex_)

  // Upstream connections: sync-thread-only.
  net::RouteClient fetch_;
  net::RouteClient notify_;

  std::atomic<bool> stop_{false};
  bool stopped_ = false;  ///< stop() completed (caller thread only)

  // Read-side counters (any reader thread).
  mutable std::atomic<std::uint64_t> queries_{0};
  mutable std::atomic<std::uint64_t> batches_{0};
  mutable std::atomic<std::uint64_t> total_ns_{0};
  mutable std::atomic<std::uint64_t> max_batch_ns_{0};
  mutable std::atomic<std::uint64_t> max_staleness_ns_{0};
  // Sync-side counters (sync thread writes, any thread reads).
  std::atomic<std::uint64_t> full_syncs_{0};
  std::atomic<std::uint64_t> delta_syncs_{0};
  std::atomic<std::uint64_t> shards_fetched_{0};
  std::atomic<std::uint64_t> chunks_fetched_{0};
  std::atomic<std::uint64_t> bytes_fetched_{0};
  std::atomic<std::uint64_t> blocks_adopted_{0};
  std::atomic<std::uint64_t> notifies_received_{0};
  std::atomic<std::uint64_t> notifies_coalesced_{0};
  std::atomic<std::uint64_t> resyncs_{0};
  std::atomic<std::uint64_t> sync_lag_ns_{0};

  std::thread sync_;  ///< last member: joined before state tears down
};

}  // namespace fpss::replica
