// replica::ReplicaService: a serving node whose snapshots arrive over
// fpss-wire instead of from a local pricing session — and whose writes
// are forwarded back up the same wire.
//
// A replica owns three upstream connections and one background sync
// thread:
//
//   fetch channel   ──► kSnapshotFetch(known shard versions)
//                       ◄── kSnapshotChunk* (dirty shards + final chunk)
//   notify channel  ──► kSubscribe(last publish count)
//                       ◄── kPublishNotify pushes (coalesced under bursts)
//   forward channel ──► kDeltaSubmit (writes relayed toward the primary)
//                       ◄── kDeltaAck (accepted + primary publish clock)
//
// The sync loop bootstraps with a full fetch (every shard), subscribes,
// and thereafter fetches only on a push — no polling. Each catch-up sends
// the shard-version vector from its previous sync's final chunk, so the
// primary streams exactly the shards whose slot version moved: a replica
// N publishes behind transfers O(dirty shards), not O(all shards). The
// reassembled snapshot (service::ReplicationCodec::Assembler — checksum
// verified, torn chunks rejected wholesale) lands in the replica's own
// ShardedSnapshotStore under an epoch fence, shard by shard, exactly like
// the primary's staged publish pipeline.
//
// Reads go through the same service::Request/Reply surface a primary
// serves, so a query answered by a replica is bit-identical to the
// primary's answer for the same snapshot version (the e2e equality tests
// pin this). ReplicaService implements net::Backend, which is what lets a
// net::RouteServer front it — replicas chain: primary -> replica ->
// replica, each tier fanning reads out further.
//
// Warm start: with a checkpoint directory configured, a loaded base image
// is served immediately (before the upstream is even reachable) and then
// used as a digest-adoption donor — wire blocks whose content matches the
// local image are dropped in favor of the already-resident ones.
//
// Writes (PR 9): with forwarding enabled, kDeltaSubmit at any tier relays
// upstream over a dedicated forwarding connection until it reaches the
// primary, whose ack (accepted count + post-publish clock) rides back down
// unchanged. The forwarding path is bounded on every axis: a concurrent
// in-flight gate rejects excess writers with kOverloaded before they
// queue, and a retry budget with exponential backoff bounds how long one
// write can chase a dead upstream before kUnavailable.
//
// Failover: the sync loop and the forwarder share one upstream cursor over
// the configured fallback list. Whichever side observes a failure advances
// the cursor (round-robin, only if it still points at the failed entry, so
// two observers of one death advance once); the other side follows on its
// next (re)connect. While no upstream is reachable the replica keeps
// serving its last consistent cut — degraded, never torn.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "net/backend.h"
#include "net/client.h"
#include "service/protocol.h"
#include "service/query_backend.h"
#include "service/replication.h"
#include "service/store.h"
#include "util/mutex.h"

namespace fpss::replica {

struct ReplicaConfig {
  /// Where the primary (or upstream replica) listens.
  net::ClientConfig upstream;
  /// Fallback list: when non-empty it replaces `upstream` entirely and the
  /// replica fails over through it round-robin (sync and forwarding share
  /// the cursor). Order is preference order; entry 0 is tried first.
  std::vector<net::ClientConfig> upstreams;
  /// Warm-start checkpoint directory (see service::CheckpointPolicy).
  /// Empty disables the warm bootstrap.
  std::string checkpoint_directory;
  /// How long one await_notify slice blocks before the loop re-checks the
  /// stop flag. Latency ceiling for noticing shutdown, not for syncs —
  /// notifies wake the wait immediately.
  int notify_wait_ms = 200;
  /// Backoff between reconnect attempts after the upstream drops.
  int resync_backoff_ms = 100;
  /// Relay kDeltaSubmit to the upstream (false = read-only tier: submit
  /// reports kReadOnly and the fronting server should also set
  /// ServerConfig::allow_deltas = false).
  bool forward_deltas = true;
  /// Forwarding retry budget: total attempts across the fallback list
  /// before a write fails kUnavailable (1 = no retry).
  unsigned forward_attempts = 3;
  /// Backoff before forwarding attempt k is forward_backoff_ms << (k-1),
  /// capped at 1s.
  int forward_backoff_ms = 50;
  /// Writers allowed on the forwarding path at once (waiting included);
  /// the excess is rejected kOverloaded without blocking. 0 rejects every
  /// write — the deterministic back-pressure configuration.
  std::size_t forward_inflight_limit = 16;
};

class ReplicaService final : public net::Backend {
 public:
  /// Starts the background sync loop immediately. If a checkpoint is
  /// configured and loads, its snapshot is served at once; otherwise reads
  /// return kUnreachable-free empty-store behavior until the first sync
  /// (wait_until_ready() to block on it).
  explicit ReplicaService(ReplicaConfig config);
  ~ReplicaService() override;

  ReplicaService(const ReplicaService&) = delete;
  ReplicaService& operator=(const ReplicaService&) = delete;

  /// Blocks until a snapshot is being served (first sync or checkpoint
  /// load) or `timeout_ms` elapses; true when ready.
  bool wait_until_ready(int timeout_ms) const FPSS_EXCLUDES(store_mutex_);

  /// Blocks until the served version exceeds `version` or `timeout_ms`
  /// elapses; returns the served version either way.
  std::uint64_t wait_for_version_beyond(std::uint64_t version, int timeout_ms)
      const FPSS_EXCLUDES(store_mutex_);

  /// Stops the sync loop and closes the upstream connections. Idempotent;
  /// the destructor calls it. Reads keep working on the last synced state.
  void stop();

  net::ReplicaCounters replication_counters() const;

  // --- net::Backend --------------------------------------------------------

  std::size_t node_count() const override;
  std::uint64_t version() const override;
  std::uint64_t published_at_ns() const override;
  /// The chain-wide publish clock: the *upstream's* publish count as of
  /// this replica's last completed sync (not a local install tally). Every
  /// tier reports the same clock the primary advances, which is what makes
  /// a primary ack's publish count meaningful at any depth.
  std::uint64_t publish_count() const override;
  std::vector<service::Reply> query(
      std::span<const service::Request> batch) const override;
  service::RouteService::Counters counters() const override;
  bool replica_counters(net::ReplicaCounters& out) const override {
    out = replication_counters();
    return true;
  }
  std::uint32_t hop_count() const override {
    return hop_.load(std::memory_order_relaxed);
  }
  /// Forwards the deltas upstream (see the file comment); kReadOnly when
  /// forwarding is disabled.
  SubmitOutcome submit(
      const std::vector<service::RouteService::Delta>& deltas) override;
  /// No local updater to drain; returns the served version.
  std::uint64_t drain() override;
  /// The replica's own store — what lets a downstream replica sync from
  /// this one. An *owning* copy: a concurrent layout-changing install may
  /// swap store_ and drop the last internal reference, so handing out the
  /// raw pointer would let the store die under the caller.
  std::shared_ptr<const service::ShardedSnapshotStore> store() const override
      FPSS_EXCLUDES(store_mutex_);
  std::uint64_t wait_for_publish_beyond(std::uint64_t count, int timeout_ms)
      const override FPSS_EXCLUDES(store_mutex_);

 private:
  /// One sync: fetch (full or dirty-only), reassemble, publish under a
  /// fence. `server_count` is the upstream publish count this sync covers
  /// (the notify that caused it); the chain-wide clock is raised to it
  /// atomically with the install. Returns false when the connection
  /// failed or the stream was torn (triggers a resync; nothing partial is
  /// ever published).
  bool sync_once(std::uint64_t server_count);
  void sync_loop();
  /// Publishes an assembled snapshot into the store (fence for a shard
  /// catch-up, a fresh store for a bootstrap or layout change) and raises
  /// the chain-wide clock to `server_count` under the same lock.
  void install(const service::ReplicationCodec::Assembler::Result& result,
               std::uint64_t server_count);
  void count_batch(std::uint64_t queries, std::uint64_t ns) const;

  // Shared reconnect state machine (sync loop + forwarder).
  std::size_t current_upstream_index() const;
  /// Advances the cursor iff `index` is still current — the loser of a
  /// double report is a no-op, so one upstream death advances once.
  void note_upstream_failure(std::size_t index);

  ReplicaConfig config_;
  std::vector<net::ClientConfig> upstreams_;  ///< resolved fallback list

  /// The served store plus the negotiation state from the last final
  /// chunk. The store pointer itself is swapped on layout changes, so
  /// readers copy it under the mutex (the store's own lock then provides
  /// the usual RCU cut). Independent of upstream_mutex_/forward_mutex_ —
  /// no replica path nests two of the three.
  mutable util::Mutex store_mutex_;
  std::shared_ptr<service::ShardedSnapshotStore> store_
      FPSS_GUARDED_BY(store_mutex_);
  /// Echoed in the next fetch.
  std::vector<std::uint64_t> synced_versions_ FPSS_GUARDED_BY(store_mutex_);
  std::shared_ptr<const service::RouteSnapshot> adopt_donor_
      FPSS_GUARDED_BY(store_mutex_);

  mutable util::CondVar ready_cv_;  ///< store_mutex_; signaled per install
  /// Replica-local install tally.
  std::uint64_t installs_ FPSS_GUARDED_BY(store_mutex_) = 0;
  /// Upstream publish count at the last completed sync — what
  /// publish_count()/wait_for_publish_beyond report.
  std::uint64_t synced_publish_count_ FPSS_GUARDED_BY(store_mutex_) = 0;

  // Shared reconnect cursor into upstreams_.
  mutable util::Mutex upstream_mutex_;
  std::size_t upstream_index_ FPSS_GUARDED_BY(upstream_mutex_) = 0;

  // Upstream connections: sync-thread-only, re-created per failover cycle.
  std::unique_ptr<net::RouteClient> fetch_;
  std::unique_ptr<net::RouteClient> notify_;

  // Forwarding path: forward_mutex_ serializes the relay; the in-flight
  // gate counts waiters + the holder and rejects the excess unblocked.
  util::Mutex forward_mutex_;
  std::unique_ptr<net::RouteClient> forward_ FPSS_GUARDED_BY(forward_mutex_);
  std::size_t forward_upstream_index_ FPSS_GUARDED_BY(forward_mutex_) = 0;
  std::atomic<std::size_t> forward_inflight_{0};

  /// Chain depth: upstream's advertised hop + 1 once connected; a replica
  /// is at least one hop from a primary, so 1 before the first handshake.
  std::atomic<std::uint32_t> hop_{1};

  std::atomic<bool> stop_{false};
  bool stopped_ = false;  ///< stop() completed (caller thread only)

  // Read-side counters (any reader thread).
  mutable std::atomic<std::uint64_t> queries_{0};
  mutable std::atomic<std::uint64_t> batches_{0};
  mutable std::atomic<std::uint64_t> total_ns_{0};
  mutable std::atomic<std::uint64_t> max_batch_ns_{0};
  mutable std::atomic<std::uint64_t> max_staleness_ns_{0};
  // Sync-side counters (sync thread writes, any thread reads).
  std::atomic<std::uint64_t> full_syncs_{0};
  std::atomic<std::uint64_t> delta_syncs_{0};
  std::atomic<std::uint64_t> shards_fetched_{0};
  std::atomic<std::uint64_t> chunks_fetched_{0};
  std::atomic<std::uint64_t> bytes_fetched_{0};
  std::atomic<std::uint64_t> blocks_adopted_{0};
  std::atomic<std::uint64_t> notifies_received_{0};
  std::atomic<std::uint64_t> notifies_coalesced_{0};
  std::atomic<std::uint64_t> resyncs_{0};
  std::atomic<std::uint64_t> sync_lag_ns_{0};
  /// Established (subscribed) upstream sessions lost — the events where
  /// the replica degrades to its last cut until a reconnect succeeds.
  std::atomic<std::uint64_t> upstream_disconnects_{0};
  // Forwarding counters (any server worker writes).
  std::atomic<std::uint64_t> deltas_forwarded_{0};
  std::atomic<std::uint64_t> forward_retries_{0};
  std::atomic<std::uint64_t> forward_rejected_{0};

  std::thread sync_;  ///< last member: joined before state tears down
};

/// The replica adapter for the unified query/write surface: reads answer
/// locally, writes relay through the replica's forwarding path, and the
/// publish-beyond wait runs against the chain-wide clock.
class ReplicaQueryBackend final : public service::QueryBackend {
 public:
  explicit ReplicaQueryBackend(ReplicaService& replica) : replica_(replica) {}

  service::QueryOutcome query_batch(
      std::span<const service::Request> batch) override;
  service::SubmitAck submit_deltas(
      std::span<const service::RouteService::Delta> deltas) override;
  service::CountersOutcome counters() override;
  std::uint64_t wait_for_publish_beyond(std::uint64_t count,
                                        int timeout_ms) override;

 private:
  ReplicaService& replica_;
};

}  // namespace fpss::replica
