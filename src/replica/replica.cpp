#include "replica/replica.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "service/checkpoint.h"
#include "util/clock.h"

namespace fpss::replica {

using service::ReplicationCodec;
using service::RouteSnapshot;
using service::ShardedSnapshotStore;

namespace {

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

void bump_max(std::atomic<std::uint64_t>& gauge, std::uint64_t value) {
  std::uint64_t seen = gauge.load(std::memory_order_relaxed);
  while (value > seen &&
         !gauge.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

/// Same routing rule as RouteService's read side: destination-bearing
/// kinds read from the shard holding j, everything else (notably payment
/// totals, which are global arrays) from the composite.
const RouteSnapshot& data_snapshot(const ShardedSnapshotStore::View& view,
                                   const service::Request& request) {
  switch (request.kind) {
    case service::RequestKind::kCost:
    case service::RequestKind::kPrice:
    case service::RequestKind::kPairPayment:
    case service::RequestKind::kNextHop:
    case service::RequestKind::kPath:
      if (request.j < view.newest->node_count())
        return view.for_destination(request.j);
      break;
    default:
      break;
  }
  return *view.newest;
}

}  // namespace

ReplicaService::ReplicaService(ReplicaConfig config)
    : config_(std::move(config)) {
  upstreams_ = config_.upstreams.empty()
                   ? std::vector<net::ClientConfig>{config_.upstream}
                   : config_.upstreams;
  if (!config_.checkpoint_directory.empty()) {
    const service::CheckpointLoadResult loaded =
        service::load_checkpoint(config_.checkpoint_directory);
    if (loaded.ok()) {
      // Serve the disk image at once (a warm replica answers before the
      // upstream is reachable) and keep it as the adoption donor so the
      // first wire sync shares memory with it instead of duplicating.
      auto warm = std::make_shared<ShardedSnapshotStore>(
          loaded.snapshot->node_count(), 1);
      warm->publish_all(loaded.snapshot);
      util::MutexLock lock(store_mutex_);
      store_ = std::move(warm);
      adopt_donor_ = loaded.snapshot;
      ++installs_;
    }
  }
  sync_ = std::thread([this] { sync_loop(); });
}

ReplicaService::~ReplicaService() { stop(); }

void ReplicaService::stop() {
  if (stopped_) return;
  stopped_ = true;
  stop_.store(true, std::memory_order_relaxed);
  if (sync_.joinable()) sync_.join();
  fetch_.reset();
  notify_.reset();
  util::MutexLock lock(forward_mutex_);
  forward_.reset();
}

// --- shared reconnect state machine -----------------------------------------

std::size_t ReplicaService::current_upstream_index() const {
  util::MutexLock lock(upstream_mutex_);
  return upstream_index_;
}

void ReplicaService::note_upstream_failure(std::size_t index) {
  util::MutexLock lock(upstream_mutex_);
  if (index == upstream_index_)
    upstream_index_ = (upstream_index_ + 1) % upstreams_.size();
}

// --- sync loop --------------------------------------------------------------

void ReplicaService::sync_loop() {
  std::uint64_t last_server_count = 0;
  bool ever_synced = false;
  while (!stop_.load(std::memory_order_relaxed)) {
    // Dial whichever upstream the shared cursor points at; every failure
    // below advances it (round-robin over the fallback list) and backs
    // off, so a dead primary degrades this tier to its last cut while the
    // loop hunts for a live upstream.
    const std::size_t target = current_upstream_index();
    const auto fail_over = [&](bool established) {
      if (established) {
        resyncs_.fetch_add(1, std::memory_order_relaxed);
        upstream_disconnects_.fetch_add(1, std::memory_order_relaxed);
      }
      fetch_.reset();
      notify_.reset();
      note_upstream_failure(target);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(config_.resync_backoff_ms));
    };
    fetch_ = std::make_unique<net::RouteClient>(upstreams_[target]);
    notify_ = std::make_unique<net::RouteClient>(upstreams_[target]);
    // (Re)establish both channels. Subscribe *before* the catch-up fetch:
    // any publish that lands after the fetch is then covered by a pending
    // notify, so there is no window a version can slip through unseen.
    if (!notify_->connect().ok() || !fetch_->connect().ok()) {
      fail_over(false);
      continue;
    }
    hop_.store(notify_->server_hop_count() + 1, std::memory_order_relaxed);
    const net::NotifyResult sub = notify_->subscribe(last_server_count);
    if (!sub.ok()) {
      fail_over(false);
      continue;
    }
    notifies_received_.fetch_add(1, std::memory_order_relaxed);
    notifies_coalesced_.fetch_add(sub.notify.coalesced,
                                  std::memory_order_relaxed);
    last_server_count = sub.notify.publish_count;
    if (!sync_once(last_server_count)) {
      fail_over(ever_synced);
      continue;
    }
    ever_synced = true;

    // Steady state: push-driven only. Every pull below is caused by a
    // kPublishNotify; the timeout branch exists solely to re-check the
    // stop flag.
    while (!stop_.load(std::memory_order_relaxed)) {
      const net::NotifyResult pushed =
          notify_->await_notify(config_.notify_wait_ms);
      if (pushed.error.status == net::ClientStatus::kTimeout) continue;
      if (!pushed.ok()) break;  // connection lost; resync
      notifies_received_.fetch_add(1, std::memory_order_relaxed);
      notifies_coalesced_.fetch_add(pushed.notify.coalesced,
                                    std::memory_order_relaxed);
      last_server_count =
          std::max(last_server_count, pushed.notify.publish_count);
      if (!sync_once(last_server_count)) break;
    }
    if (stop_.load(std::memory_order_relaxed)) return;
    fail_over(true);
  }
}

bool ReplicaService::sync_once(std::uint64_t server_count) {
  std::vector<std::uint64_t> known;
  std::shared_ptr<ShardedSnapshotStore> store;
  std::shared_ptr<const RouteSnapshot> adopt;
  {
    util::MutexLock lock(store_mutex_);
    known = synced_versions_;
    store = store_;
    adopt = adopt_donor_;
  }
  const std::shared_ptr<const RouteSnapshot> base =
      store == nullptr ? nullptr : store->newest();

  const net::SnapshotFetchResult fetched = fetch_->fetch_snapshot(known);
  if (!fetched.ok()) return false;
  chunks_fetched_.fetch_add(fetched.chunks.size(), std::memory_order_relaxed);
  bytes_fetched_.fetch_add(fetched.bytes, std::memory_order_relaxed);

  ReplicationCodec::Assembler assembler(base, adopt);
  for (const std::string& chunk : fetched.chunks)
    if (!assembler.feed(chunk)) break;
  ReplicationCodec::Assembler::Result result = assembler.finish();
  if (!result.ok()) {
    // A torn or inconsistent stream publishes nothing. Drop the
    // negotiation state so the retry is a full bootstrap — the safe
    // answer to a server whose layout (or identity) changed under us.
    util::MutexLock lock(store_mutex_);
    synced_versions_.clear();
    return false;
  }

  shards_fetched_.fetch_add(result.shards_sent.size(),
                            std::memory_order_relaxed);
  blocks_adopted_.fetch_add(result.blocks_adopted, std::memory_order_relaxed);
  if (known.size() == result.shard_versions.size()) {
    delta_syncs_.fetch_add(1, std::memory_order_relaxed);
  } else {
    full_syncs_.fetch_add(1, std::memory_order_relaxed);
  }
  install(result, server_count);
  sync_lag_ns_.store(util::age_from(result.snapshot->published_at_ns(),
                                    util::wall_clock_ns()),
                     std::memory_order_relaxed);
  return true;
}

void ReplicaService::install(
    const ReplicationCodec::Assembler::Result& result,
    std::uint64_t server_count) {
  const std::shared_ptr<const RouteSnapshot>& snap = result.snapshot;
  util::MutexLock lock(store_mutex_);
  // Raise the chain-wide clock in the same critical section that makes
  // the synced state readable: a waiter woken by this install must not
  // be able to read a publish_count() older than what it sees served.
  // (Notified here, not only at the end — the nothing-moved branch below
  // returns early but clock waiters still need the wake-up.)
  if (server_count > synced_publish_count_) {
    synced_publish_count_ = server_count;
    ready_cv_.notify_all();
  }
  const bool rebuild =
      store_ == nullptr ||
      store_->shard_count() != result.shard_count ||
      store_->newest() == nullptr ||
      store_->newest()->node_count() != snap->node_count() ||
      store_->version() > snap->version();
  if (rebuild) {
    // Bootstrap, layout change, or upstream version regression (a primary
    // restarted from an older checkpoint): start a fresh store shaped
    // like the server's and fill every slot.
    auto fresh = std::make_shared<ShardedSnapshotStore>(snap->node_count(),
                                                        result.shard_count);
    fresh->publish_all(snap);
    store_ = std::move(fresh);
  } else if (result.shards_sent.empty()) {
    if (store_->version() == snap->version() &&
        store_->newest()->checksum() == snap->checksum()) {
      // Nothing moved at all (e.g. the notify raced a sync that already
      // caught up); adopt the negotiation state and skip the publish.
      synced_versions_ = result.shard_versions;
      return;
    }
    // Globals-only refresh (a republish: payment totals moved, no sink
    // tree did). Swaps `newest` without touching any shard slot — the
    // same thing the primary's store does for an empty dirty set.
    store_->publish(snap,
                    std::vector<bool>(store_->shard_count(), false));
  } else {
    // Dirty-shard catch-up through the epoch fence, mirroring the
    // primary's staged publish: each fetched shard becomes readable as it
    // lands, and fence_end restores the all-blocks-shared invariant.
    store_->fence_begin(snap->version());
    for (const std::uint32_t s : result.shards_sent)
      store_->publish_shard(s, snap);
    store_->fence_end(snap);
  }
  synced_versions_ = result.shard_versions;
  ++installs_;
  ready_cv_.notify_all();
}

// --- waiting ----------------------------------------------------------------

bool ReplicaService::wait_until_ready(int timeout_ms) const {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  util::MutexLock lock(store_mutex_);
  while (store_ == nullptr)
    if (ready_cv_.wait_until(lock, deadline) == std::cv_status::timeout)
      break;
  return store_ != nullptr;
}

std::uint64_t ReplicaService::wait_for_version_beyond(std::uint64_t version,
                                                      int timeout_ms) const {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  util::MutexLock lock(store_mutex_);
  while (store_ == nullptr || store_->version() <= version)
    if (ready_cv_.wait_until(lock, deadline) == std::cv_status::timeout)
      break;
  return store_ == nullptr ? 0 : store_->version();
}

std::uint64_t ReplicaService::wait_for_publish_beyond(std::uint64_t count,
                                                      int timeout_ms) const {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  util::MutexLock lock(store_mutex_);
  while (synced_publish_count_ <= count)
    if (ready_cv_.wait_until(lock, deadline) == std::cv_status::timeout)
      break;
  return synced_publish_count_;
}

// --- read side --------------------------------------------------------------

std::size_t ReplicaService::node_count() const {
  util::MutexLock lock(store_mutex_);
  if (store_ == nullptr) return 0;
  const auto snap = store_->newest();
  return snap == nullptr ? 0 : snap->node_count();
}

std::uint64_t ReplicaService::version() const {
  util::MutexLock lock(store_mutex_);
  return store_ == nullptr ? 0 : store_->version();
}

std::uint64_t ReplicaService::published_at_ns() const {
  util::MutexLock lock(store_mutex_);
  if (store_ == nullptr) return 0;
  const auto snap = store_->newest();
  return snap == nullptr ? 0 : snap->published_at_ns();
}

std::uint64_t ReplicaService::publish_count() const {
  util::MutexLock lock(store_mutex_);
  return synced_publish_count_;
}

std::vector<service::Reply> ReplicaService::query(
    std::span<const service::Request> batch) const {
  const auto start = std::chrono::steady_clock::now();
  std::shared_ptr<ShardedSnapshotStore> store;
  {
    util::MutexLock lock(store_mutex_);
    store = store_;
  }
  std::vector<service::Reply> replies;
  replies.reserve(batch.size());
  if (store == nullptr) {
    // Nothing synced yet: every node is out of range of the (empty)
    // network this replica currently knows.
    for (std::size_t r = 0; r < batch.size(); ++r) {
      service::Reply reply;
      reply.status = service::Status::kBadNode;
      replies.push_back(reply);
    }
    count_batch(batch.size(), elapsed_ns(start));
    return replies;
  }
  const ShardedSnapshotStore::View view = store->acquire();
  const std::uint64_t now_ns = util::wall_clock_ns();
  const service::ReplyProvenance provenance{view.newest->version(),
                                            view.newest->published_at_ns()};
  bump_max(max_staleness_ns_,
           util::age_from(provenance.published_at_ns, now_ns));
  for (const service::Request& request : batch)
    replies.push_back(service::answer(data_snapshot(view, request), provenance,
                                      request, now_ns));
  count_batch(batch.size(), elapsed_ns(start));
  return replies;
}

void ReplicaService::count_batch(std::uint64_t queries,
                                  std::uint64_t ns) const {
  queries_.fetch_add(queries, std::memory_order_relaxed);
  batches_.fetch_add(1, std::memory_order_relaxed);
  total_ns_.fetch_add(ns, std::memory_order_relaxed);
  bump_max(max_batch_ns_, ns);
}

service::RouteService::Counters ReplicaService::counters() const {
  service::RouteService::Counters c;
  c.queries = queries_.load(std::memory_order_relaxed);
  c.batches = batches_.load(std::memory_order_relaxed);
  c.total_ns = total_ns_.load(std::memory_order_relaxed);
  c.max_batch_ns = max_batch_ns_.load(std::memory_order_relaxed);
  c.max_staleness_ns = max_staleness_ns_.load(std::memory_order_relaxed);
  {
    // Local installs, not the chain-wide clock: "how many times did this
    // tier's store move" is the serving-health question counters answer.
    util::MutexLock lock(store_mutex_);
    c.publishes = installs_;
  }
  return c;
}

net::ReplicaCounters ReplicaService::replication_counters() const {
  net::ReplicaCounters c;
  c.full_syncs = full_syncs_.load(std::memory_order_relaxed);
  c.delta_syncs = delta_syncs_.load(std::memory_order_relaxed);
  c.shards_fetched = shards_fetched_.load(std::memory_order_relaxed);
  c.chunks_fetched = chunks_fetched_.load(std::memory_order_relaxed);
  c.bytes_fetched = bytes_fetched_.load(std::memory_order_relaxed);
  c.blocks_adopted = blocks_adopted_.load(std::memory_order_relaxed);
  c.notifies_received = notifies_received_.load(std::memory_order_relaxed);
  c.notifies_coalesced = notifies_coalesced_.load(std::memory_order_relaxed);
  c.resyncs = resyncs_.load(std::memory_order_relaxed);
  c.sync_lag_ns = sync_lag_ns_.load(std::memory_order_relaxed);
  c.hop_count = hop_.load(std::memory_order_relaxed);
  c.upstream_disconnects =
      upstream_disconnects_.load(std::memory_order_relaxed);
  c.deltas_forwarded = deltas_forwarded_.load(std::memory_order_relaxed);
  c.forward_retries = forward_retries_.load(std::memory_order_relaxed);
  c.forward_rejected = forward_rejected_.load(std::memory_order_relaxed);
  return c;
}

net::Backend::SubmitOutcome ReplicaService::submit(
    const std::vector<service::RouteService::Delta>& deltas) {
  SubmitOutcome outcome;
  if (!config_.forward_deltas) {
    outcome.status = SubmitOutcome::Status::kReadOnly;
    return outcome;
  }
  if (deltas.empty()) {
    outcome.publish_count = publish_count();
    return outcome;
  }
  // The in-flight gate counts every writer on the path (waiting on
  // forward_mutex_ included) and rejects the excess before it blocks —
  // back-pressure is a fast typed refusal, not a growing queue.
  if (forward_inflight_.fetch_add(1, std::memory_order_acq_rel) >=
      config_.forward_inflight_limit) {
    forward_inflight_.fetch_sub(1, std::memory_order_acq_rel);
    forward_rejected_.fetch_add(1, std::memory_order_relaxed);
    outcome.status = SubmitOutcome::Status::kOverloaded;
    return outcome;
  }

  outcome.status = SubmitOutcome::Status::kUnavailable;
  util::MutexLock lock(forward_mutex_);
  const unsigned attempts = std::max(1u, config_.forward_attempts);
  for (unsigned attempt = 0; attempt < attempts; ++attempt) {
    if (stop_.load(std::memory_order_relaxed)) break;
    if (attempt > 0) {
      const int backoff = std::min(
          1000, config_.forward_backoff_ms << std::min(attempt - 1, 10u));
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
    }
    // Follow the shared cursor: a failover observed by the sync loop (or a
    // previous write) redirects this connection too.
    const std::size_t target = current_upstream_index();
    if (forward_ == nullptr || !forward_->connected() ||
        forward_upstream_index_ != target) {
      forward_ = std::make_unique<net::RouteClient>(upstreams_[target]);
      forward_upstream_index_ = target;
      if (!forward_->connect().ok()) {
        forward_.reset();
        note_upstream_failure(target);
        forward_retries_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
    }
    const net::SubmitResult relayed = forward_->submit_deltas(deltas);
    if (relayed.ok()) {
      deltas_forwarded_.fetch_add(relayed.accepted,
                                  std::memory_order_relaxed);
      outcome.status = SubmitOutcome::Status::kOk;
      outcome.accepted = relayed.accepted;
      outcome.publish_count = relayed.publish_count;
      break;
    }
    if (relayed.error.status == net::ClientStatus::kServerError &&
        relayed.error.wire_status == net::WireStatus::kOverloaded) {
      // Upstream back-pressure: retrying immediately would pile on; hand
      // the typed refusal straight back to the writer instead.
      outcome.status = SubmitOutcome::Status::kOverloaded;
      forward_.reset();  // the server closed the connection after kError
      break;
    }
    forward_.reset();
    note_upstream_failure(target);
    forward_retries_.fetch_add(1, std::memory_order_relaxed);
  }
  forward_inflight_.fetch_sub(1, std::memory_order_acq_rel);
  return outcome;
}

std::uint64_t ReplicaService::drain() { return version(); }

std::shared_ptr<const service::ShardedSnapshotStore> ReplicaService::store()
    const {
  // An owning copy, not store_.get(): a layout-changing install swaps
  // store_ under the mutex, and if this replica's copy was the last
  // reference the store would be destroyed while a downstream fetch is
  // still streaming export_cut() data out of it. The shared_ptr pins the
  // displaced store until every in-flight transfer finishes.
  util::MutexLock lock(store_mutex_);
  return store_;
}

// --- ReplicaQueryBackend ----------------------------------------------------

service::QueryOutcome ReplicaQueryBackend::query_batch(
    std::span<const service::Request> batch) {
  service::QueryOutcome outcome;
  outcome.replies = replica_.query(batch);
  return outcome;
}

service::SubmitAck ReplicaQueryBackend::submit_deltas(
    std::span<const service::RouteService::Delta> deltas) {
  service::SubmitAck ack;
  const auto outcome = replica_.submit(std::vector<service::RouteService::Delta>(
      deltas.begin(), deltas.end()));
  switch (outcome.status) {
    case net::Backend::SubmitOutcome::Status::kOk:
      ack.accepted = outcome.accepted;
      ack.publish_count = outcome.publish_count;
      break;
    case net::Backend::SubmitOutcome::Status::kReadOnly:
      ack.error = "replica is read-only (forwarding disabled)";
      break;
    case net::Backend::SubmitOutcome::Status::kOverloaded:
      ack.error = "forwarding queue full; retry later";
      break;
    case net::Backend::SubmitOutcome::Status::kUnavailable:
      ack.error = "no upstream reachable; write not applied";
      break;
  }
  return ack;
}

service::CountersOutcome ReplicaQueryBackend::counters() {
  service::CountersOutcome outcome;
  outcome.counters = replica_.counters();
  return outcome;
}

std::uint64_t ReplicaQueryBackend::wait_for_publish_beyond(
    std::uint64_t count, int timeout_ms) {
  return replica_.wait_for_publish_beyond(count, timeout_ms);
}

}  // namespace fpss::replica
