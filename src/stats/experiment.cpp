#include "stats/experiment.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <ostream>

namespace fpss::stats {

Experiment::Experiment(std::string id, std::string title)
    : id_(std::move(id)), title_(std::move(title)) {}

void Experiment::note(std::string line) { notes_.push_back(std::move(line)); }

void Experiment::claim(std::string paper_claim, std::string measured,
                       bool holds) {
  claims_.push_back({std::move(paper_claim), std::move(measured), holds});
}

void Experiment::table(std::string caption, util::Table t) {
  tables_.push_back({std::move(caption), std::move(t)});
}

bool Experiment::all_hold() const {
  for (const Claim& c : claims_)
    if (!c.holds) return false;
  return true;
}

void Experiment::print(std::ostream& os) const {
  os << "==========================================================\n"
     << "[" << id_ << "] " << title_ << "\n"
     << "==========================================================\n";
  for (const std::string& note : notes_) os << "  " << note << "\n";
  if (!notes_.empty()) os << "\n";
  for (const CaptionedTable& entry : tables_) {
    os << "-- " << entry.caption << "\n"
       << entry.table.to_text() << "\n";
  }
  for (const Claim& c : claims_) {
    os << (c.holds ? "  [PASS] " : "  [FAIL] ") << c.paper << "\n"
       << "         measured: " << c.measured << "\n";
  }
  os << (all_hold() ? "  => all claims hold\n" : "  => CLAIM FAILURES\n")
     << "\n";
}

std::size_t Experiment::export_csv(const std::string& directory) const {
  auto slug = [](const std::string& text) {
    std::string out;
    for (char ch : text) {
      if (std::isalnum(static_cast<unsigned char>(ch))) {
        out += static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
      } else if (!out.empty() && out.back() != '-') {
        out += '-';
      }
      if (out.size() >= 48) break;
    }
    while (!out.empty() && out.back() == '-') out.pop_back();
    return out;
  };

  std::size_t written = 0;
  for (const CaptionedTable& entry : tables_) {
    const std::string path =
        directory + "/" + slug(id_) + "_" + slug(entry.caption) + ".csv";
    std::ofstream file(path);
    if (!file) continue;
    file << entry.table.to_csv();
    if (file) ++written;
  }
  return written;
}

int finish(const Experiment& experiment) {
  experiment.print(std::cout);
  // Opt-in CSV export for plotting: set FPSS_CSV_DIR to a directory.
  if (const char* dir = std::getenv("FPSS_CSV_DIR"); dir != nullptr) {
    const std::size_t files = experiment.export_csv(dir);
    std::cout << "  (exported " << files << " CSV table(s) to " << dir
              << ")\n";
  }
  return experiment.all_hold() ? 0 : 1;
}

}  // namespace fpss::stats
