// Experiment reporting plumbing shared by the bench binaries: each bench
// declares the paper artifact it reproduces, records claim-vs-measured
// checks, and prints a uniform report (the rows copied into
// EXPERIMENTS.md).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "util/table.h"

namespace fpss::stats {

/// One reproduced table/figure/theorem.
class Experiment {
 public:
  Experiment(std::string id, std::string title);

  /// Freeform observation printed with the report.
  void note(std::string line);

  /// A paper claim with its measured counterpart and the verdict.
  void claim(std::string paper_claim, std::string measured, bool holds);

  /// Attaches a results table (printed in order).
  void table(std::string caption, util::Table t);

  bool all_hold() const;
  std::size_t claim_count() const { return claims_.size(); }

  /// Banner + notes + claim checks + tables.
  void print(std::ostream& os) const;

  /// Writes every attached table as `<dir>/<id>_<slug-of-caption>.csv` for
  /// downstream plotting. Returns the number of files written (0 on any
  /// I/O failure).
  std::size_t export_csv(const std::string& directory) const;

 private:
  struct Claim {
    std::string paper;
    std::string measured;
    bool holds;
  };
  struct CaptionedTable {
    std::string caption;
    util::Table table;
  };

  std::string id_;
  std::string title_;
  std::vector<std::string> notes_;
  std::vector<Claim> claims_;
  std::vector<CaptionedTable> tables_;
};

/// Prints the report to stdout and returns 0 if every claim held, 1
/// otherwise — the exit-code convention of the bench binaries.
int finish(const Experiment& experiment);

}  // namespace fpss::stats
