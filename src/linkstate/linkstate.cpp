#include "linkstate/linkstate.h"

#include <algorithm>

#include "util/contract.h"

namespace fpss::linkstate {

bool LsDatabase::install(const Lsa& lsa) {
  FPSS_EXPECTS(lsa.origin != kInvalidNode);
  const auto it = entries_.find(lsa.origin);
  if (it != entries_.end() && it->second.sequence >= lsa.sequence)
    return false;
  entries_[lsa.origin] = lsa;
  return true;
}

const Lsa* LsDatabase::find(NodeId origin) const {
  const auto it = entries_.find(origin);
  return it == entries_.end() ? nullptr : &it->second;
}

std::size_t LsDatabase::words() const {
  std::size_t total = 0;
  for (const auto& [origin, lsa] : entries_) {
    (void)origin;
    total += lsa.words();
  }
  return total;
}

bool LsDatabase::complete(std::size_t node_count) const {
  return entries_.size() == node_count;
}

graph::Graph LsDatabase::reconstruct(std::size_t node_count) const {
  graph::Graph g{node_count};
  for (const auto& [origin, lsa] : entries_) {
    if (origin >= node_count) continue;
    g.set_cost(origin, lsa.declared_cost);
    for (NodeId v : lsa.neighbors) {
      if (v >= node_count || g.has_edge(origin, v)) continue;
      // Two-way check: only accept the link if v advertises it back.
      const Lsa* other = find(v);
      if (other != nullptr &&
          std::find(other->neighbors.begin(), other->neighbors.end(),
                    origin) != other->neighbors.end()) {
        g.add_edge(origin, v);
      }
    }
  }
  return g;
}

FloodingNetwork::FloodingNetwork(const graph::Graph& g)
    : graph_(g),
      db_(g.node_count()),
      own_sequence_(g.node_count(), 0),
      outbox_(g.node_count()) {
  for (NodeId v = 0; v < g.node_count(); ++v) reissue(v);
}

const LsDatabase& FloodingNetwork::database(NodeId v) const {
  FPSS_EXPECTS(v < db_.size());
  return db_[v];
}

void FloodingNetwork::reissue(NodeId origin) {
  Lsa lsa;
  lsa.origin = origin;
  lsa.sequence = ++own_sequence_[origin];
  lsa.declared_cost = graph_.cost(origin);
  const auto neighbors = graph_.neighbors(origin);
  lsa.neighbors.assign(neighbors.begin(), neighbors.end());
  db_[origin].install(lsa);
  outbox_[origin].push_back(std::move(lsa));
}

FloodingNetwork::Stats FloodingNetwork::run(Stage max_stages) {
  const Stats before = stats_;
  stats_.converged = false;
  for (Stage executed = 0; executed < max_stages; ++executed) {
    bool any = false;
    for (const auto& box : outbox_) any |= !box.empty();
    if (!any) {
      stats_.converged = true;
      break;
    }
    ++stats_.stages;
    // Deliver this stage's floods; collect what each node must forward on.
    std::vector<std::vector<Lsa>> next(graph_.node_count());
    for (NodeId v = 0; v < graph_.node_count(); ++v) {
      for (const Lsa& lsa : outbox_[v]) {
        for (NodeId neighbor : graph_.neighbors(v)) {
          ++stats_.messages;
          stats_.words += lsa.words();
          if (db_[neighbor].install(lsa)) next[neighbor].push_back(lsa);
        }
      }
    }
    outbox_ = std::move(next);
  }

  Stats segment = stats_;
  segment.stages -= before.stages;
  segment.messages -= before.messages;
  segment.words -= before.words;
  segment.converged = stats_.converged;
  return segment;
}

bool FloodingNetwork::all_synchronized() const {
  for (NodeId v = 0; v < graph_.node_count(); ++v) {
    if (!db_[v].complete(graph_.node_count())) return false;
    const graph::Graph view = db_[v].reconstruct(graph_.node_count());
    if (view.edges() != graph_.edges()) return false;
    for (NodeId u = 0; u < graph_.node_count(); ++u)
      if (view.cost(u) != graph_.cost(u)) return false;
  }
  return true;
}

void FloodingNetwork::change_cost(NodeId v, Cost new_cost) {
  graph_.set_cost(v, new_cost);
  reissue(v);
}

void FloodingNetwork::add_link(NodeId u, NodeId v) {
  const bool added = graph_.add_edge(u, v);
  FPSS_EXPECTS(added);
  reissue(u);
  reissue(v);
}

void FloodingNetwork::remove_link(NodeId u, NodeId v) {
  const bool removed = graph_.remove_edge(u, v);
  FPSS_EXPECTS(removed);
  reissue(u);
  reissue(v);
}

}  // namespace fpss::linkstate
