// A link-state (OSPF-style) alternative substrate.
//
// The paper contrasts interdomain BGP with intradomain protocols like OSPF
// (Sect. 1) and chooses BGP as the computational substrate. A link-state
// protocol is the natural counterfactual: every node floods its local view
// (declared cost + adjacency) to everyone, each node reconstructs the full
// AS graph, and can then run the *centralized* Theorem 1 computation
// locally — no distributed price protocol needed at all. The price is a
// different one: O(|E|)-sized databases everywhere, flooding traffic, and
// every AS revealing its complete adjacency — exactly the autonomy the
// interdomain setting cannot assume. Experiment E17 quantifies the trade.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "util/cost.h"
#include "util/types.h"

namespace fpss::linkstate {

/// One node's link-state advertisement: its declared transit cost and
/// adjacency, versioned by a sequence number (higher supersedes).
struct Lsa {
  NodeId origin = kInvalidNode;
  std::uint32_t sequence = 0;
  Cost declared_cost;
  std::vector<NodeId> neighbors;

  /// Words on the wire: origin + sequence + cost + neighbor list.
  std::size_t words() const { return 3 + neighbors.size(); }
};

/// A node's link-state database: the freshest LSA per origin.
class LsDatabase {
 public:
  /// Installs the LSA if it is newer than the stored one (strictly higher
  /// sequence, or first sighting). Returns true if installed — the signal
  /// to re-flood.
  bool install(const Lsa& lsa);

  bool has(NodeId origin) const { return entries_.contains(origin); }
  const Lsa* find(NodeId origin) const;
  std::size_t size() const { return entries_.size(); }

  /// Database footprint in words.
  std::size_t words() const;

  /// True once an LSA from every one of the `node_count` nodes is present.
  bool complete(std::size_t node_count) const;

  /// Rebuilds the AS graph from the database: a link exists iff *both*
  /// endpoints currently advertise it (two-way connectivity check, as in
  /// OSPF). Unknown origins contribute nothing.
  graph::Graph reconstruct(std::size_t node_count) const;

 private:
  std::unordered_map<NodeId, Lsa> entries_;
};

/// Synchronous flooding engine: each stage, every node forwards the LSAs
/// it newly installed last stage to all neighbors. Converges in
/// (hop diameter) stages on a static topology.
class FloodingNetwork {
 public:
  explicit FloodingNetwork(const graph::Graph& g);

  struct Stats {
    Stage stages = 0;
    std::uint64_t messages = 0;  ///< one LSA delivery = one message
    std::uint64_t words = 0;
    bool converged = false;
  };

  /// Floods to quiescence (continues after dynamic events).
  Stats run(Stage max_stages = 100000);

  const LsDatabase& database(NodeId v) const;
  const graph::Graph& topology() const { return graph_; }

  /// Every node's database is complete and reconstructs the true topology.
  bool all_synchronized() const;

  // --- dynamics: the origin issues a superseding LSA and refloods --------
  void change_cost(NodeId v, Cost new_cost);
  void add_link(NodeId u, NodeId v);
  void remove_link(NodeId u, NodeId v);

 private:
  void reissue(NodeId origin);

  graph::Graph graph_;
  std::vector<LsDatabase> db_;
  std::vector<std::uint32_t> own_sequence_;
  /// LSAs each node must forward next stage.
  std::vector<std::vector<Lsa>> outbox_;
  Stats stats_;
};

}  // namespace fpss::linkstate
