// Node-disjoint lowest-cost path pairs (Suurballe/Bhandari).
//
// Two uses in this repository:
//  * analysis of overcharging (E8/E18): the VCG premium of a transit node
//    is the price of the network's path diversity, and the cheapest pair
//    of internally-disjoint paths is the canonical diversity measure;
//  * 1+1 protection (E18): an AS pair that wants survivable connectivity
//    must provision a primary and a node-disjoint backup; this computes
//    the cheapest such pair.
//
// Costs follow the paper's convention: a path pays the declared costs of
// its *intermediate* nodes only, and the two paths must be disjoint in
// intermediate nodes (they share exactly the endpoints). Implemented as a
// min-cost flow of value 2 on the node-split digraph, via two
// Dijkstra-with-potentials rounds (Suurballe's construction).
#pragma once

#include <optional>

#include "graph/graph.h"
#include "graph/path.h"
#include "util/cost.h"
#include "util/types.h"

namespace fpss::routing {

struct DisjointPair {
  graph::Path primary;  ///< the cheaper of the two
  graph::Path backup;
  Cost primary_cost;
  Cost backup_cost;

  Cost total_cost() const { return primary_cost + backup_cost; }
};

/// The cheapest pair of internally node-disjoint s -> t paths, or nullopt
/// if none exists (s and t are separated by an articulation point).
/// Precondition: s != t, both in g.
std::optional<DisjointPair> disjoint_path_pair(const graph::Graph& g,
                                               NodeId s, NodeId t);

}  // namespace fpss::routing
