#include "routing/disjoint.h"

#include <algorithm>
#include <queue>
#include <vector>

#include "util/contract.h"

namespace fpss::routing {

namespace {

constexpr Cost::rep kInf = Cost::kMaxFinite;

/// Residual arc of the node-split digraph.
struct Arc {
  std::uint32_t to;
  Cost::rep cost;
  std::int32_t capacity;  // residual capacity
};

/// Min-cost flow of value 2 on the split graph via two rounds of Dijkstra
/// (Suurballe): round 1 on the original nonnegative costs, round 2 on
/// costs reduced by the round-1 potentials.
class SplitFlow {
 public:
  SplitFlow(const graph::Graph& g, NodeId s, NodeId t)
      : graph_(g), s_(s), t_(t), adjacency_(2 * g.node_count()) {
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (v == s || v == t) continue;  // endpoints are free and shareable
      add_arc(in(v), out(v), g.cost(v).value(), 1);
    }
    for (const auto& [u, v] : g.edges()) {
      add_arc(out(u), in(v), 0, 1);
      add_arc(out(v), in(u), 0, 1);
    }
  }

  /// Sends up to 2 units from out(s) to in(t); returns the units placed.
  int augment_twice() {
    int placed = 0;
    std::vector<Cost::rep> potential(adjacency_.size(), 0);
    for (int round = 0; round < 2; ++round) {
      if (!dijkstra(potential)) break;
      ++placed;
    }
    return placed;
  }

  /// Follows positive flow from out(s), consuming it, and returns the
  /// original-graph node path; empty when no more flow remains.
  graph::Path extract_path() {
    graph::Path path{s_};
    std::uint32_t at = out(s_);
    const std::uint32_t goal = in(t_);
    while (at != goal) {
      bool advanced = false;
      for (std::uint32_t idx : adjacency_[at]) {
        Arc& arc = arcs_[idx];
        // Flow on a forward arc shows up as capacity on its twin.
        if ((idx & 1u) == 0 && arcs_[idx ^ 1u].capacity > 0) {
          --arcs_[idx ^ 1u].capacity;
          ++arc.capacity;
          const NodeId node = original(arc.to);
          if (path.back() != node) path.push_back(node);
          at = arc.to;
          advanced = true;
          break;
        }
      }
      if (!advanced) return {};  // no (more) flow from here
      FPSS_ASSERT(path.size() <= 2 * graph_.node_count());
    }
    return path;
  }

 private:
  std::uint32_t in(NodeId v) const { return 2 * v; }
  std::uint32_t out(NodeId v) const { return 2 * v + 1; }
  NodeId original(std::uint32_t split) const {
    return static_cast<NodeId>(split / 2);
  }

  void add_arc(std::uint32_t from, std::uint32_t to, Cost::rep cost,
               std::int32_t capacity) {
    adjacency_[from].push_back(static_cast<std::uint32_t>(arcs_.size()));
    arcs_.push_back({to, cost, capacity});
    adjacency_[to].push_back(static_cast<std::uint32_t>(arcs_.size()));
    arcs_.push_back({from, -cost, 0});  // residual twin
  }

  /// One shortest-path augmentation under the given potentials; updates
  /// the potentials for the next round. Returns false if in(t) is
  /// unreachable in the residual graph.
  bool dijkstra(std::vector<Cost::rep>& potential) {
    const std::size_t n = adjacency_.size();
    std::vector<Cost::rep> dist(n, kInf);
    std::vector<std::uint32_t> via_arc(n, UINT32_MAX);
    using Item = std::pair<Cost::rep, std::uint32_t>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
    const std::uint32_t source = out(s_);
    const std::uint32_t sink = in(t_);
    dist[source] = 0;
    queue.emplace(0, source);
    while (!queue.empty()) {
      const auto [d, u] = queue.top();
      queue.pop();
      if (d != dist[u]) continue;
      for (std::uint32_t idx : adjacency_[u]) {
        const Arc& arc = arcs_[idx];
        if (arc.capacity <= 0) continue;
        // Nodes unreached by the previous round cannot lie on any
        // augmenting path; skipping them keeps reduced costs nonnegative.
        if (potential[u] >= kInf || potential[arc.to] >= kInf) continue;
        const Cost::rep reduced =
            arc.cost + potential[u] - potential[arc.to];
        FPSS_ASSERT(reduced >= 0);
        if (dist[u] + reduced < dist[arc.to]) {
          dist[arc.to] = dist[u] + reduced;
          via_arc[arc.to] = idx;
          queue.emplace(dist[arc.to], arc.to);
        }
      }
    }
    if (dist[sink] >= kInf) return false;
    for (std::size_t v = 0; v < n; ++v) {
      if (dist[v] >= kInf || potential[v] >= kInf) {
        potential[v] = kInf;
      } else {
        potential[v] += dist[v];
      }
    }
    // Augment one unit along the shortest-path tree.
    for (std::uint32_t v = sink; v != source;) {
      const std::uint32_t idx = via_arc[v];
      FPSS_ASSERT(idx != UINT32_MAX);
      --arcs_[idx].capacity;
      ++arcs_[idx ^ 1u].capacity;
      v = arcs_[idx ^ 1u].to;
    }
    return true;
  }

  const graph::Graph& graph_;
  NodeId s_, t_;
  std::vector<Arc> arcs_;
  std::vector<std::vector<std::uint32_t>> adjacency_;
};

}  // namespace

std::optional<DisjointPair> disjoint_path_pair(const graph::Graph& g,
                                               NodeId s, NodeId t) {
  FPSS_EXPECTS(g.contains(s) && g.contains(t) && s != t);
  SplitFlow flow(g, s, t);
  if (flow.augment_twice() < 2) return std::nullopt;

  graph::Path first = flow.extract_path();
  graph::Path second = flow.extract_path();
  FPSS_ASSERT(!first.empty() && !second.empty());
  // The second augmentation may cancel parts of the first (that is the
  // point of Suurballe), but the residual bookkeeping leaves exactly the
  // *net* flow, whose decomposition is two simple disjoint paths.
  DisjointPair pair;
  const Cost cost_a = graph::transit_cost(g, first);
  const Cost cost_b = graph::transit_cost(g, second);
  if (cost_b < cost_a) std::swap(first, second);
  pair.primary = std::move(first);
  pair.backup = std::move(second);
  pair.primary_cost = std::min(cost_a, cost_b);
  pair.backup_cost = std::max(cost_a, cost_b);
  return pair;
}

}  // namespace fpss::routing
