#include "routing/dijkstra.h"

#include <queue>
#include <vector>

#include "routing/route.h"
#include "util/contract.h"

namespace fpss::routing {

namespace {

struct QueueItem {
  Cost cost;
  std::uint32_t hops;
  NodeId node;

  /// Max-heap by default, so invert: best (smallest) item on top.
  friend bool operator<(const QueueItem& a, const QueueItem& b) {
    if (a.cost != b.cost) return a.cost > b.cost;
    return a.hops > b.hops;
  }
};

SinkTree run_dijkstra(const graph::Graph& g, NodeId destination,
                      NodeId avoid) {
  FPSS_EXPECTS(g.contains(destination));
  const std::size_t n = g.node_count();
  SinkTree tree(destination, n);

  // Current best label per node: (cost, hops, parent). Parent ties resolve
  // to the smallest neighbor id, which all optimal parents have offered by
  // relaxation before the node is finalized (parents always have a strictly
  // smaller (cost, hops) key).
  std::vector<RouteRank> label(n, no_route());
  std::vector<char> done(n, 0);
  std::priority_queue<QueueItem> queue;

  label[destination] = RouteRank{Cost::zero(), 0, kInvalidNode};
  queue.push({Cost::zero(), 0, destination});

  while (!queue.empty()) {
    const QueueItem item = queue.top();
    queue.pop();
    const NodeId u = item.node;
    if (done[u] || item.cost != label[u].cost || item.hops != label[u].hops)
      continue;  // stale entry
    done[u] = 1;
    // Appending the link (v, u) to u's selected path adds u's own transit
    // cost unless u is the destination (endpoints carry for free).
    const Cost step = (u == destination) ? Cost::zero() : g.cost(u);
    for (NodeId v : g.neighbors(u)) {
      if (v == avoid || done[v]) continue;
      const RouteRank candidate{label[u].cost + step, label[u].hops + 1, u};
      if (candidate < label[v]) {
        label[v] = candidate;
        queue.push({candidate.cost, candidate.hops, v});
      }
    }
  }

  for (NodeId i = 0; i < n; ++i) {
    if (i == destination || i == avoid || label[i].cost.is_infinite())
      continue;
    tree.set(i, label[i].cost, label[i].next_hop, label[i].hops);
  }
  return tree;
}

}  // namespace

SinkTree compute_sink_tree(const graph::Graph& g, NodeId destination) {
  return run_dijkstra(g, destination, kInvalidNode);
}

SinkTree compute_sink_tree_avoiding(const graph::Graph& g, NodeId destination,
                                    NodeId avoid) {
  FPSS_EXPECTS(g.contains(avoid));
  FPSS_EXPECTS(avoid != destination);
  return run_dijkstra(g, destination, avoid);
}

}  // namespace fpss::routing
