// The canonical route-preference order shared by the centralized routing
// computation and the BGP engine.
//
// The paper assumes a routing protocol that picks lowest-cost paths and
// "has an appropriate way to break ties ... in a loop-free manner"
// (Sect. 3, Sect. 5): for each destination j the selected routes must form
// a sink tree T(j). We fix the tie-break as the lexicographic triple
//
//   (path cost, hop count, next-hop node id)
//
// which totally orders the candidate routes a node can hear (two candidates
// via the same neighbor are never simultaneously present, so comparing
// next-hop ids is equivalent to comparing the full node sequences
// lexicographically). The order has the suffix property — any suffix of a
// selected route is itself a selected route — which is what makes the
// selected routes of all nodes toward j form a tree (Sect. 6: T(j)).
#pragma once

#include <compare>
#include <cstdint>

#include "util/cost.h"
#include "util/types.h"

namespace fpss::routing {

/// The attributes by which a route toward a fixed destination is ranked.
/// Smaller is better.
struct RouteRank {
  Cost cost = Cost::infinity();  ///< sum of transit-node costs
  std::uint32_t hops = 0;        ///< number of links on the path
  NodeId next_hop = kInvalidNode;

  friend constexpr auto operator<=>(const RouteRank&,
                                    const RouteRank&) = default;
};

/// Rank of "no route at all"; worse than every real route.
constexpr RouteRank no_route() {
  return RouteRank{Cost::infinity(), UINT32_MAX, kInvalidNode};
}

}  // namespace fpss::routing
