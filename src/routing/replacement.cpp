#include "routing/replacement.h"

#include <algorithm>
#include <queue>

#include "routing/dijkstra.h"
#include "util/contract.h"

namespace fpss::routing {

namespace {

/// Transit nodes of the tree: every non-destination node with at least one
/// child is an intermediate node of some selected path.
std::vector<NodeId> transit_nodes(const SinkTree& tree) {
  const auto kids = tree.children();
  std::vector<NodeId> out;
  for (NodeId k = 0; k < tree.node_count(); ++k)
    if (k != tree.destination() && !kids[k].empty()) out.push_back(k);
  return out;
}

}  // namespace

AvoidanceTable::AvoidanceTable(const SinkTree& tree)
    : destination_(tree.destination()),
      depth_(tree.node_count(), 0),
      row_offset_(tree.node_count() + 1, 0) {
  const std::size_t n = tree.node_count();
  for (NodeId v = 0; v < n; ++v)
    if (tree.reachable(v)) depth_[v] = tree.hops(v);
  // Row i has one slot per proper ancestor of i: depth(i) - 1 of them.
  for (NodeId i = 0; i < n; ++i)
    row_offset_[i + 1] =
        row_offset_[i] + (depth_[i] >= 2 ? depth_[i] - 1 : 0);
  entries_.resize(row_offset_[n]);
  // The ancestor at depth t occupies slot t - 1 of the row; walking the
  // parent chain visits each exactly once.
  for (NodeId i = 0; i < n; ++i) {
    if (depth_[i] < 2) continue;
    for (NodeId a = tree.parent(i); a != destination_; a = tree.parent(a))
      entries_[row_offset_[i] + depth_[a] - 1].k = a;
  }
}

std::size_t AvoidanceTable::index_of(NodeId i, NodeId k) const {
  if (i >= depth_.size() || k >= depth_.size()) return kNoEntry;
  const std::uint32_t d = depth_[k];
  if (d == 0 || d >= depth_[i]) return kNoEntry;  // not a proper ancestor
  const std::size_t idx = row_offset_[i] + d - 1;
  return entries_[idx].k == k ? idx : kNoEntry;
}

void AvoidanceTable::set(NodeId i, NodeId k, Cost cost) {
  const std::size_t idx = index_of(i, k);
  FPSS_ASSERT(idx != kNoEntry);
  entries_[idx].cost = cost;
}

AvoidanceTable AvoidanceTable::compute_naive(const graph::Graph& g,
                                             const SinkTree& tree) {
  AvoidanceTable out(tree);
  const NodeId j = tree.destination();
  for (NodeId k : transit_nodes(tree)) {
    const SinkTree avoiding = compute_sink_tree_avoiding(g, j, k);
    for (NodeId i : tree.subtree(k)) {
      if (i == k) continue;
      out.set(i, k, avoiding.cost(i));
    }
  }
  return out;
}

AvoidanceTable AvoidanceTable::compute(const graph::Graph& g,
                                       const SinkTree& tree) {
  AvoidanceTable out(tree);
  const NodeId j = tree.destination();
  const std::size_t n = g.node_count();

  // Scratch arrays reused across k to avoid re-allocation.
  std::vector<Cost> dist(n, Cost::infinity());
  std::vector<char> in_subtree(n, 0);

  struct QueueItem {
    Cost cost;
    NodeId node;
    bool operator<(const QueueItem& other) const {
      return cost > other.cost;  // min-heap
    }
  };

  for (NodeId k : transit_nodes(tree)) {
    const std::vector<NodeId> sub = tree.subtree(k);
    for (NodeId v : sub) in_subtree[v] = 1;

    // Nodes needing B^k: the subtree of k minus k itself. Seed each with
    // its best direct exit: a neighbor a outside the subtree (a != k) whose
    // own LCP therefore avoids k. Exiting to a costs c_a plus a's LCP cost
    // (or nothing if a is the destination itself).
    std::priority_queue<QueueItem> queue;
    for (NodeId u : sub) {
      if (u == k) continue;
      Cost best = Cost::infinity();
      for (NodeId a : g.neighbors(u)) {
        if (a == k || in_subtree[a]) continue;
        const Cost via =
            (a == j) ? Cost::zero()
                     : (tree.reachable(a) ? g.cost(a) + tree.cost(a)
                                          : Cost::infinity());
        best = std::min(best, via);
      }
      dist[u] = best;
      if (best.is_finite()) queue.push({best, u});
    }

    // Propagate inside the subtree: reaching u via an in-subtree neighbor v
    // pays v's transit cost on top of v's k-avoiding cost.
    while (!queue.empty()) {
      const auto [cost, u] = queue.top();
      queue.pop();
      if (cost != dist[u]) continue;  // stale
      for (NodeId v : g.neighbors(u)) {
        if (!in_subtree[v] || v == k) continue;
        const Cost candidate = cost + g.cost(u);
        if (candidate < dist[v]) {
          dist[v] = candidate;
          queue.push({candidate, v});
        }
      }
    }

    for (NodeId u : sub) {
      if (u != k) out.set(u, k, dist[u]);
      dist[u] = Cost::infinity();
      in_subtree[u] = 0;
    }
  }
  return out;
}

bool AvoidanceTable::has(NodeId i, NodeId k) const {
  return index_of(i, k) != kNoEntry;
}

Cost AvoidanceTable::avoiding_cost(NodeId i, NodeId k) const {
  const std::size_t idx = index_of(i, k);
  FPSS_EXPECTS(idx != kNoEntry);
  return entries_[idx].cost;
}

std::vector<std::pair<NodeId, NodeId>> AvoidanceTable::keys() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(entries_.size());
  for (NodeId i = 0; i + 1 < row_offset_.size(); ++i)
    for (std::size_t t = row_offset_[i]; t < row_offset_[i + 1]; ++t)
      out.emplace_back(i, entries_[t].k);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace fpss::routing
