#include "routing/replacement.h"

#include <algorithm>
#include <queue>

#include "routing/dijkstra.h"
#include "util/contract.h"

namespace fpss::routing {

namespace {

/// Transit nodes of the tree: every non-destination node with at least one
/// child is an intermediate node of some selected path.
std::vector<NodeId> transit_nodes(const SinkTree& tree) {
  const auto kids = tree.children();
  std::vector<NodeId> out;
  for (NodeId k = 0; k < tree.node_count(); ++k)
    if (k != tree.destination() && !kids[k].empty()) out.push_back(k);
  return out;
}

}  // namespace

AvoidanceTable AvoidanceTable::compute_naive(const graph::Graph& g,
                                             const SinkTree& tree) {
  AvoidanceTable out(tree.destination());
  const NodeId j = tree.destination();
  for (NodeId k : transit_nodes(tree)) {
    const SinkTree avoiding = compute_sink_tree_avoiding(g, j, k);
    for (NodeId i : tree.subtree(k)) {
      if (i == k) continue;
      out.table_.emplace(key(i, k), avoiding.cost(i));
    }
  }
  return out;
}

AvoidanceTable AvoidanceTable::compute(const graph::Graph& g,
                                       const SinkTree& tree) {
  AvoidanceTable out(tree.destination());
  const NodeId j = tree.destination();
  const std::size_t n = g.node_count();

  // Scratch arrays reused across k to avoid re-allocation.
  std::vector<Cost> dist(n, Cost::infinity());
  std::vector<char> in_subtree(n, 0);

  struct QueueItem {
    Cost cost;
    NodeId node;
    bool operator<(const QueueItem& other) const {
      return cost > other.cost;  // min-heap
    }
  };

  for (NodeId k : transit_nodes(tree)) {
    const std::vector<NodeId> sub = tree.subtree(k);
    for (NodeId v : sub) in_subtree[v] = 1;

    // Nodes needing B^k: the subtree of k minus k itself. Seed each with
    // its best direct exit: a neighbor a outside the subtree (a != k) whose
    // own LCP therefore avoids k. Exiting to a costs c_a plus a's LCP cost
    // (or nothing if a is the destination itself).
    std::priority_queue<QueueItem> queue;
    for (NodeId u : sub) {
      if (u == k) continue;
      Cost best = Cost::infinity();
      for (NodeId a : g.neighbors(u)) {
        if (a == k || in_subtree[a]) continue;
        const Cost via =
            (a == j) ? Cost::zero()
                     : (tree.reachable(a) ? g.cost(a) + tree.cost(a)
                                          : Cost::infinity());
        best = std::min(best, via);
      }
      dist[u] = best;
      if (best.is_finite()) queue.push({best, u});
    }

    // Propagate inside the subtree: reaching u via an in-subtree neighbor v
    // pays v's transit cost on top of v's k-avoiding cost.
    while (!queue.empty()) {
      const auto [cost, u] = queue.top();
      queue.pop();
      if (cost != dist[u]) continue;  // stale
      for (NodeId v : g.neighbors(u)) {
        if (!in_subtree[v] || v == k) continue;
        const Cost candidate = cost + g.cost(u);
        if (candidate < dist[v]) {
          dist[v] = candidate;
          queue.push({candidate, v});
        }
      }
    }

    for (NodeId u : sub) {
      if (u != k) out.table_.emplace(key(u, k), dist[u]);
      dist[u] = Cost::infinity();
      in_subtree[u] = 0;
    }
  }
  return out;
}

bool AvoidanceTable::has(NodeId i, NodeId k) const {
  return table_.contains(key(i, k));
}

Cost AvoidanceTable::avoiding_cost(NodeId i, NodeId k) const {
  const auto it = table_.find(key(i, k));
  FPSS_EXPECTS(it != table_.end());
  return it->second;
}

std::vector<std::pair<NodeId, NodeId>> AvoidanceTable::keys() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(table_.size());
  for (const auto& [packed, cost] : table_) {
    (void)cost;
    out.emplace_back(static_cast<NodeId>(packed & 0xffffffffu),
                     static_cast<NodeId>(packed >> 32));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace fpss::routing
