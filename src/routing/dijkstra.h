// Centralized lowest-cost-path computation: the reference against which the
// distributed BGP-based computation is validated (Sects. 3-4 assume such a
// routing function exists; we implement it as a per-destination Dijkstra
// over transit-node costs with the canonical tie-break of route.h).
#pragma once

#include "graph/graph.h"
#include "routing/sink_tree.h"
#include "util/types.h"

namespace fpss::routing {

/// Selected lowest-cost routes from every node toward `destination`,
/// breaking ties by (cost, hops, next-hop id). Cost of a path is the sum of
/// its intermediate nodes' costs.
SinkTree compute_sink_tree(const graph::Graph& g, NodeId destination);

/// Same, but node `avoid` is removed from the graph: the result holds the
/// lowest-cost k-avoiding paths P_k(c; i, j) of Theorem 1 (ground truth for
/// the VCG payments). `avoid` itself is reported unreachable.
/// Precondition: avoid != destination.
SinkTree compute_sink_tree_avoiding(const graph::Graph& g, NodeId destination,
                                    NodeId avoid);

}  // namespace fpss::routing
