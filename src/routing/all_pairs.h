// All-pairs lowest-cost routes: the mechanism of Sect. 3 computes LCPs for
// every source-destination pair (one of the paper's three departures from
// the single-pair formulations of Nisan-Ronen and Hershberger-Suri).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "routing/sink_tree.h"
#include "util/types.h"

namespace fpss::util {
class ThreadPool;
}

namespace fpss::routing {

/// One sink tree per destination. `d` in the paper's bounds — the maximum
/// number of AS hops over all selected LCPs — is `lcp_diameter()`.
class AllPairsRoutes {
 public:
  /// Runs the per-destination computation for every node of g. Each
  /// destination's sink tree is independent, so with a non-null pool the
  /// trees are computed in parallel (deterministic partition; every tree
  /// is bit-identical to the serial computation).
  explicit AllPairsRoutes(const graph::Graph& g,
                          util::ThreadPool* pool = nullptr);

  std::size_t node_count() const { return trees_.size(); }
  const SinkTree& tree(NodeId destination) const;

  Cost cost(NodeId i, NodeId j) const { return tree(j).cost(i); }
  graph::Path path(NodeId i, NodeId j) const { return tree(j).path_from(i); }

  /// I_k(c; i, j): k is an intermediate node of the selected i -> j path.
  bool is_transit(NodeId k, NodeId i, NodeId j) const {
    return tree(j).is_transit(i, k);
  }

  /// Every pair reachable (graph connected)?
  bool complete() const;

  /// d: max hops over all selected LCPs ("the maximum number of AS hops in
  /// an LCP", Sect. 5).
  std::uint32_t lcp_diameter() const;

 private:
  std::vector<SinkTree> trees_;
};

}  // namespace fpss::routing
