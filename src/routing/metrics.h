// The quantities that drive the paper's convergence bounds:
//   d   — max AS-hops over all selected LCPs (Sect. 5),
//   d'  — max hops over all lowest-cost k-avoiding paths P_k(c; i, j)
//         (Sect. 6.2), which governs price convergence,
//   d_i — per-node bound max(|P(c;i,j)|, |P_k(c;i,j)|) of Lemma 2.
// Corollary 1: every node has correct LCPs and prices after max(d, d')
// stages.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/types.h"

namespace fpss::routing {

struct DiameterReport {
  std::uint32_t d = 0;        ///< LCP hop diameter
  std::uint32_t d_prime = 0;  ///< k-avoiding hop diameter

  std::uint32_t stage_bound() const { return d > d_prime ? d : d_prime; }
};

/// Computes d and d' exactly (one avoid-k Dijkstra per (destination,
/// transit node) pair — quadratic-ish; meant for analysis, not the hot
/// path). Precondition: g biconnected so every P_k exists.
DiameterReport lcp_and_avoiding_diameter(const graph::Graph& g);

/// Lemma 2's per-node quantity d_i for every node i: the number of stages
/// after which node i is guaranteed to know its correct routes and prices.
/// Precondition: g biconnected.
std::vector<std::uint32_t> per_node_stage_bounds(const graph::Graph& g);

}  // namespace fpss::routing
