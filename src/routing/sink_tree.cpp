#include "routing/sink_tree.h"

#include "util/contract.h"

namespace fpss::routing {

SinkTree::SinkTree(NodeId destination, std::size_t node_count)
    : destination_(destination),
      cost_(node_count, Cost::infinity()),
      parent_(node_count, kInvalidNode),
      hops_(node_count, 0) {
  FPSS_EXPECTS(destination < node_count);
  cost_[destination] = Cost::zero();
}

graph::Path SinkTree::path_from(NodeId i) const {
  FPSS_EXPECTS(i < node_count());
  FPSS_EXPECTS(reachable(i));
  graph::Path path;
  path.reserve(hops_[i] + 1);
  NodeId v = i;
  while (v != destination_) {
    path.push_back(v);
    v = parent_[v];
    FPSS_ASSERT(v != kInvalidNode);
    FPSS_ASSERT(path.size() <= node_count());  // loop guard
  }
  path.push_back(destination_);
  return path;
}

bool SinkTree::is_transit(NodeId i, NodeId k) const {
  FPSS_EXPECTS(i < node_count() && k < node_count());
  if (!reachable(i) || i == k || k == destination_) return false;
  for (NodeId v = parent_[i]; v != destination_; v = parent_[v]) {
    if (v == k) return true;
  }
  return false;
}

std::vector<std::vector<NodeId>> SinkTree::children() const {
  std::vector<std::vector<NodeId>> kids(node_count());
  for (NodeId v = 0; v < node_count(); ++v) {
    if (v != destination_ && reachable(v)) kids[parent_[v]].push_back(v);
  }
  return kids;
}

std::vector<NodeId> SinkTree::subtree(NodeId k) const {
  FPSS_EXPECTS(k < node_count());
  const auto kids = children();
  std::vector<NodeId> order;
  order.push_back(k);
  for (std::size_t head = 0; head < order.size(); ++head) {
    for (NodeId child : kids[order[head]]) order.push_back(child);
  }
  return order;
}

void SinkTree::set(NodeId i, Cost cost, NodeId parent, std::uint32_t hops) {
  FPSS_EXPECTS(i < node_count() && i != destination_);
  cost_[i] = cost;
  parent_[i] = parent;
  hops_[i] = hops;
}

}  // namespace fpss::routing
