#include "routing/metrics.h"

#include <algorithm>

#include "routing/dijkstra.h"
#include "routing/sink_tree.h"
#include "util/contract.h"

namespace fpss::routing {

namespace {

/// Visits every (j, k, subtree member i != k) triple with the avoiding
/// sink tree for (j, k) and fires `visit(i, lcp_hops_i, avoid_hops_i)`.
template <typename Visitor>
void for_each_avoiding_path(const graph::Graph& g, Visitor&& visit) {
  for (NodeId j = 0; j < g.node_count(); ++j) {
    const SinkTree tree = compute_sink_tree(g, j);
    const auto kids = tree.children();
    for (NodeId k = 0; k < g.node_count(); ++k) {
      if (k == j || kids[k].empty()) continue;
      const SinkTree avoiding = compute_sink_tree_avoiding(g, j, k);
      for (NodeId i : tree.subtree(k)) {
        if (i == k) continue;
        FPSS_ASSERT(avoiding.reachable(i));  // biconnected input
        visit(i, tree.hops(i), avoiding.hops(i));
      }
    }
  }
}

}  // namespace

DiameterReport lcp_and_avoiding_diameter(const graph::Graph& g) {
  DiameterReport report;
  for (NodeId j = 0; j < g.node_count(); ++j) {
    const SinkTree tree = compute_sink_tree(g, j);
    for (NodeId i = 0; i < g.node_count(); ++i)
      if (tree.reachable(i)) report.d = std::max(report.d, tree.hops(i));
  }
  for_each_avoiding_path(g, [&](NodeId, std::uint32_t, std::uint32_t ah) {
    report.d_prime = std::max(report.d_prime, ah);
  });
  return report;
}

std::vector<std::uint32_t> per_node_stage_bounds(const graph::Graph& g) {
  std::vector<std::uint32_t> bound(g.node_count(), 0);
  for (NodeId j = 0; j < g.node_count(); ++j) {
    const SinkTree tree = compute_sink_tree(g, j);
    for (NodeId i = 0; i < g.node_count(); ++i)
      if (tree.reachable(i)) bound[i] = std::max(bound[i], tree.hops(i));
  }
  for_each_avoiding_path(
      g, [&](NodeId i, std::uint32_t, std::uint32_t avoid_hops) {
        bound[i] = std::max(bound[i], avoid_hops);
      });
  return bound;
}

}  // namespace fpss::routing
