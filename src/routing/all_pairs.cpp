#include "routing/all_pairs.h"

#include <algorithm>

#include "routing/dijkstra.h"
#include "util/contract.h"

namespace fpss::routing {

AllPairsRoutes::AllPairsRoutes(const graph::Graph& g) {
  trees_.reserve(g.node_count());
  for (NodeId j = 0; j < g.node_count(); ++j)
    trees_.push_back(compute_sink_tree(g, j));
}

const SinkTree& AllPairsRoutes::tree(NodeId destination) const {
  FPSS_EXPECTS(destination < trees_.size());
  return trees_[destination];
}

bool AllPairsRoutes::complete() const {
  for (const SinkTree& t : trees_)
    for (NodeId i = 0; i < node_count(); ++i)
      if (!t.reachable(i)) return false;
  return true;
}

std::uint32_t AllPairsRoutes::lcp_diameter() const {
  std::uint32_t d = 0;
  for (const SinkTree& t : trees_)
    for (NodeId i = 0; i < node_count(); ++i)
      if (t.reachable(i)) d = std::max(d, t.hops(i));
  return d;
}

}  // namespace fpss::routing
