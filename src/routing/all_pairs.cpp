#include "routing/all_pairs.h"

#include <algorithm>

#include "routing/dijkstra.h"
#include "util/contract.h"
#include "util/thread_pool.h"

namespace fpss::routing {

AllPairsRoutes::AllPairsRoutes(const graph::Graph& g, util::ThreadPool* pool) {
  const std::size_t n = g.node_count();
  if (pool == nullptr || pool->width() <= 1 || n <= 1) {
    trees_.reserve(n);
    for (NodeId j = 0; j < n; ++j) trees_.push_back(compute_sink_tree(g, j));
    return;
  }
  // Placeholder trees first so each worker assigns only its own slot.
  trees_.reserve(n);
  for (NodeId j = 0; j < n; ++j) trees_.emplace_back(j, n);
  pool->parallel_for(n, [&](std::size_t j) {
    trees_[j] = compute_sink_tree(g, static_cast<NodeId>(j));
  });
}

const SinkTree& AllPairsRoutes::tree(NodeId destination) const {
  FPSS_EXPECTS(destination < trees_.size());
  return trees_[destination];
}

bool AllPairsRoutes::complete() const {
  for (const SinkTree& t : trees_)
    for (NodeId i = 0; i < node_count(); ++i)
      if (!t.reachable(i)) return false;
  return true;
}

std::uint32_t AllPairsRoutes::lcp_diameter() const {
  std::uint32_t d = 0;
  for (const SinkTree& t : trees_)
    for (NodeId i = 0; i < node_count(); ++i)
      if (t.reachable(i)) d = std::max(d, t.hops(i));
  return d;
}

}  // namespace fpss::routing
