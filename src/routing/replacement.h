// Lowest-cost k-avoiding path costs Cost(P_k(c; i, j)) — the second
// ingredient of the VCG price p^k_ij = c_k + Cost(P_k) - c(i, j)
// (Theorem 1 / Eq. 1).
//
// Two centralized engines compute the same table:
//  * `compute_naive`  — one node-deleted Dijkstra per (destination, k):
//    unarguable ground truth, used by tests and small inputs.
//  * `compute`        — per destination j, for each transit node k, a
//    multi-source Dijkstra over the subtree of k in T(j) seeded at its
//    boundary (exit links to nodes whose own LCP already avoids k). This
//    exploits the structure lemma of Sect. 6.2 — every suffix of P_k is
//    either an LCP or itself a P_k — in the style of Hershberger-Suri
//    replacement paths, and runs in O(sum_k |subtree(k)| log n) per
//    destination instead of O(n) full Dijkstras.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "routing/sink_tree.h"
#include "util/cost.h"
#include "util/types.h"

namespace fpss::routing {

/// k-avoiding path costs toward one destination j. An entry exists for
/// every pair (i, k) where k is an intermediate node of the selected
/// i -> j path — exactly the pairs whose VCG price can be non-zero.
///
/// Storage is a flat CSR-style layout instead of a hash map: the transit
/// nodes of i are precisely its proper ancestors in T(j), and the ancestor
/// at tree depth t (t = hops from the destination) is unique. Row i holds
/// its hops(i) - 1 ancestors ordered by depth, so looking up (i, k) is one
/// offset add (row_offset_[i] + depth_[k] - 1) plus an id check — no
/// hashing on the price() hot path, and the whole table is two contiguous
/// arrays per destination.
class AvoidanceTable {
 public:
  /// Efficient subtree engine (see header comment).
  static AvoidanceTable compute(const graph::Graph& g, const SinkTree& tree);

  /// Ground truth: one avoid-k Dijkstra per transit node of the tree.
  static AvoidanceTable compute_naive(const graph::Graph& g,
                                      const SinkTree& tree);

  NodeId destination() const { return destination_; }

  /// True iff k is transit for i toward this destination (an entry exists).
  bool has(NodeId i, NodeId k) const;

  /// Cost(P_k(c; i, j)). Infinite means no k-avoiding path exists (the
  /// graph is not biconnected and k holds a monopoly over i).
  /// Precondition: has(i, k).
  Cost avoiding_cost(NodeId i, NodeId k) const;

  std::size_t entry_count() const { return entries_.size(); }

  /// All (i, k) keys, for exhaustive comparison in tests.
  std::vector<std::pair<NodeId, NodeId>> keys() const;

 private:
  /// Builds the skeleton: one row per reachable node i, one slot per
  /// proper ancestor, every cost initialized to +infinity. The compute
  /// engines then fill exactly these slots (a slot left infinite is a
  /// genuine monopoly entry).
  explicit AvoidanceTable(const SinkTree& tree);

  struct Entry {
    NodeId k = kInvalidNode;  ///< the avoided (transit) node
    Cost cost = Cost::infinity();
  };

  static constexpr std::size_t kNoEntry = static_cast<std::size_t>(-1);

  /// Index of the (i, k) slot in entries_, or kNoEntry.
  std::size_t index_of(NodeId i, NodeId k) const;

  /// Writes Cost(P_k(c; i, j)). Precondition: the slot exists.
  void set(NodeId i, NodeId k, Cost cost);

  NodeId destination_;
  std::vector<std::uint32_t> depth_;       ///< hops(v); 0 if unreachable
  std::vector<std::size_t> row_offset_;    ///< CSR offsets, size n + 1
  std::vector<Entry> entries_;             ///< rows ordered by ancestor depth
};

}  // namespace fpss::routing
