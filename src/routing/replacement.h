// Lowest-cost k-avoiding path costs Cost(P_k(c; i, j)) — the second
// ingredient of the VCG price p^k_ij = c_k + Cost(P_k) - c(i, j)
// (Theorem 1 / Eq. 1).
//
// Two centralized engines compute the same table:
//  * `compute_naive`  — one node-deleted Dijkstra per (destination, k):
//    unarguable ground truth, used by tests and small inputs.
//  * `compute`        — per destination j, for each transit node k, a
//    multi-source Dijkstra over the subtree of k in T(j) seeded at its
//    boundary (exit links to nodes whose own LCP already avoids k). This
//    exploits the structure lemma of Sect. 6.2 — every suffix of P_k is
//    either an LCP or itself a P_k — in the style of Hershberger-Suri
//    replacement paths, and runs in O(sum_k |subtree(k)| log n) per
//    destination instead of O(n) full Dijkstras.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "routing/sink_tree.h"
#include "util/cost.h"
#include "util/types.h"

namespace fpss::routing {

/// k-avoiding path costs toward one destination j. An entry exists for
/// every pair (i, k) where k is an intermediate node of the selected
/// i -> j path — exactly the pairs whose VCG price can be non-zero.
class AvoidanceTable {
 public:
  /// Efficient subtree engine (see header comment).
  static AvoidanceTable compute(const graph::Graph& g, const SinkTree& tree);

  /// Ground truth: one avoid-k Dijkstra per transit node of the tree.
  static AvoidanceTable compute_naive(const graph::Graph& g,
                                      const SinkTree& tree);

  NodeId destination() const { return destination_; }

  /// True iff k is transit for i toward this destination (an entry exists).
  bool has(NodeId i, NodeId k) const;

  /// Cost(P_k(c; i, j)). Infinite means no k-avoiding path exists (the
  /// graph is not biconnected and k holds a monopoly over i).
  /// Precondition: has(i, k).
  Cost avoiding_cost(NodeId i, NodeId k) const;

  std::size_t entry_count() const { return table_.size(); }

  /// All (i, k) keys, for exhaustive comparison in tests.
  std::vector<std::pair<NodeId, NodeId>> keys() const;

 private:
  explicit AvoidanceTable(NodeId destination) : destination_(destination) {}

  static std::uint64_t key(NodeId i, NodeId k) {
    return (static_cast<std::uint64_t>(k) << 32) | i;
  }

  NodeId destination_;
  std::unordered_map<std::uint64_t, Cost> table_;
};

}  // namespace fpss::routing
