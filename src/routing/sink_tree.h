// Per-destination routing state: the sink tree T(j) of selected
// lowest-cost paths from every node toward destination j (Sect. 6, Fig. 2).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/path.h"
#include "util/cost.h"
#include "util/types.h"

namespace fpss::routing {

/// The selected lowest-cost routes of every node toward one destination,
/// under the canonical tie-break. parent[i] is i's next hop (the parent in
/// T(j)); the destination and unreachable nodes have parent kInvalidNode.
class SinkTree {
 public:
  SinkTree(NodeId destination, std::size_t node_count);

  NodeId destination() const { return destination_; }
  std::size_t node_count() const { return cost_.size(); }

  /// c(i, j): transit cost of the selected path from i. Infinite if
  /// unreachable.
  Cost cost(NodeId i) const { return cost_[i]; }

  /// Next hop from i toward the destination.
  NodeId parent(NodeId i) const { return parent_[i]; }

  /// Links on the selected path from i. 0 for the destination itself;
  /// meaningless if unreachable.
  std::uint32_t hops(NodeId i) const { return hops_[i]; }

  bool reachable(NodeId i) const { return cost_[i].is_finite(); }

  /// Full selected path i .. j (present iff reachable).
  graph::Path path_from(NodeId i) const;

  /// Indicator I_k(c; i, j): true iff k is an *intermediate* node on the
  /// selected path from i (endpoints never count, Sect. 3).
  bool is_transit(NodeId i, NodeId k) const;

  /// Children lists (reverse of parent pointers), e.g. for subtree walks.
  std::vector<std::vector<NodeId>> children() const;

  /// Nodes of the subtree rooted at k (k itself included): exactly the
  /// nodes whose selected path to j passes through k.
  std::vector<NodeId> subtree(NodeId k) const;

  // Mutators used by the computation in dijkstra.cpp.
  void set(NodeId i, Cost cost, NodeId parent, std::uint32_t hops);

 private:
  NodeId destination_;
  std::vector<Cost> cost_;
  std::vector<NodeId> parent_;
  std::vector<std::uint32_t> hops_;
};

}  // namespace fpss::routing
