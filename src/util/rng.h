// Deterministic, seedable random number generation for reproducible
// experiments. xoshiro256++ seeded through splitmix64, plus the handful of
// distributions the generators and workloads need. We avoid <random>'s
// distributions because their outputs differ across standard libraries,
// which would make recorded experiment outputs non-reproducible.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/contract.h"

namespace fpss::util {

/// splitmix64 step: used for seeding and cheap stateless hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedf00ddeadbeefULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  std::uint64_t below(std::uint64_t bound) {
    FPSS_EXPECTS(bound > 0);
    // Lemire's nearly-divisionless unbiased bounded sampling.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi]. Precondition: lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    FPSS_EXPECTS(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p in [0, 1].
  bool chance(double p) { return uniform01() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[below(i)]);
    }
  }

  /// Pareto-distributed value with shape `alpha` and scale 1, clamped to
  /// [1, cap]. Used for heavy-tailed traffic and cost models.
  double pareto(double alpha, double cap);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace fpss::util
