// Core identifier types shared by every module.
#pragma once

#include <cstdint>
#include <limits>

namespace fpss {

/// Identifier of a node (an Autonomous System) in the AS graph. Nodes are
/// numbered densely `0 .. n-1`; the AS-number presentation ("AS7018") is a
/// display concern only.
using NodeId = std::uint32_t;

/// Sentinel for "no node" (e.g. absent parent in a sink tree).
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// A synchronous-stage counter in the BGP computational model of Sect. 5.
using Stage = std::uint32_t;

}  // namespace fpss
