// Exact integer path-cost arithmetic with an explicit +infinity sentinel.
//
// The paper's mechanism requires comparing a lowest-cost path against the
// lowest-cost k-avoiding path; before either is discovered the estimate is
// "+infinity" (Sect. 6.1: "At the beginning of the computation, all the
// entries of p^{v_r}_{ij} are set to infinity"). Using exact integers (not
// floating point) means the distributed algorithm and the centralized
// reference computation can be compared with operator== in tests.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>

#include "util/contract.h"

namespace fpss {

/// A per-packet transit cost or path cost. Regular value type: totally
/// ordered, addable, with a saturating +infinity. Finite values must stay
/// within [0, kMaxFinite]; arithmetic checks against overflow.
class Cost {
 public:
  using rep = std::int64_t;

  /// Finite costs are capped well below INT64_MAX so that summing any
  /// realistic number of them cannot overflow before the check fires.
  static constexpr rep kMaxFinite = std::numeric_limits<rep>::max() / 4;

  /// Zero cost.
  constexpr Cost() = default;

  /// A finite cost. Precondition: 0 <= value <= kMaxFinite.
  constexpr explicit Cost(rep value) : value_(value) {
    FPSS_EXPECTS(value >= 0 && value <= kMaxFinite);
  }

  /// The +infinity sentinel ("no such path").
  static constexpr Cost infinity() {
    Cost c;
    c.value_ = kInfinityRep;
    return c;
  }

  static constexpr Cost zero() { return Cost{}; }

  constexpr bool is_infinite() const { return value_ == kInfinityRep; }
  constexpr bool is_finite() const { return !is_infinite(); }

  /// Underlying value. Precondition: is_finite().
  constexpr rep value() const {
    FPSS_EXPECTS(is_finite());
    return value_;
  }

  friend constexpr auto operator<=>(Cost, Cost) = default;

  /// Saturating addition: inf + x == inf. Overflow of finite values aborts.
  friend constexpr Cost operator+(Cost a, Cost b) {
    if (a.is_infinite() || b.is_infinite()) return infinity();
    FPSS_ASSERT(a.value_ <= kMaxFinite - b.value_);
    Cost r;
    r.value_ = a.value_ + b.value_;
    return r;
  }

  /// Difference of two finite costs; the result may be negative, so it is
  /// returned as a raw rep (used for price deltas like c(a,j) - c(i,j)).
  friend constexpr rep operator-(Cost a, Cost b) {
    FPSS_EXPECTS(a.is_finite() && b.is_finite());
    return a.value_ - b.value_;
  }

  Cost& operator+=(Cost other) { return *this = *this + other; }

  /// "inf" or the decimal value.
  std::string to_string() const;

 private:
  static constexpr rep kInfinityRep = std::numeric_limits<rep>::max();
  rep value_ = 0;
};

std::ostream& operator<<(std::ostream& os, Cost c);

/// Adds a (possibly negative) finite delta to a finite cost.
/// Precondition: base finite and base + delta >= 0.
constexpr Cost cost_plus_delta(Cost base, Cost::rep delta) {
  FPSS_EXPECTS(base.is_finite());
  const Cost::rep v = base.value() + delta;
  FPSS_EXPECTS(v >= 0);
  return Cost{v};
}

}  // namespace fpss
