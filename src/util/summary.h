// Streaming summary statistics and fixed-bucket histograms used by the
// experiment harness to characterize distributions (path stretch,
// overcharge ratios, convergence stages, ...).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fpss::util {

/// Accumulates count/min/max/mean/variance in one pass (Welford), plus the
/// raw samples for exact quantiles. Suitable for the ten-thousands of
/// samples the benches produce, not for unbounded streams.
class Summary {
 public:
  void add(double x);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double min() const;
  double max() const;
  double mean() const;
  double stddev() const;
  double sum() const { return sum_; }

  /// Exact quantile by sorting a copy; q in [0, 1].
  double quantile(double q) const;
  double median() const { return quantile(0.5); }

  /// "n=5 mean=2.1 p50=2 p95=4 max=7" style digest for table cells.
  std::string digest() const;

 private:
  std::vector<double> samples_;
  double sum_ = 0;
  double mean_ = 0;
  double m2_ = 0;
};

/// Histogram over integer values with unit-width buckets in [0, cap], plus
/// an overflow bucket. Used for hop-count and stage-count distributions.
class IntHistogram {
 public:
  explicit IntHistogram(std::int64_t cap);

  void add(std::int64_t v);

  std::int64_t cap() const { return cap_; }
  std::uint64_t total() const { return total_; }
  std::uint64_t bucket(std::int64_t v) const;
  std::uint64_t overflow() const { return overflow_; }

  /// One line per non-empty bucket with a proportional bar.
  std::string to_text() const;

 private:
  std::int64_t cap_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace fpss::util
