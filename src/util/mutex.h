// Annotated mutex/condvar wrappers: std::mutex and
// std::condition_variable with Clang Thread Safety capabilities attached,
// so fields can be FPSS_GUARDED_BY a lock the analysis understands.
//
// Every mutex in the repo is a util::Mutex and every critical section a
// util::MutexLock — the analysis only tracks capabilities it can see, so a
// raw std::lock_guard<std::mutex> would be a hole in the proof. The
// static-analysis CI job greps for exactly that (see
// scripts/run_clang_tidy.sh and ISSUE/DESIGN.md §14).
//
// Zero-cost by construction: Mutex is layout-identical to std::mutex,
// MutexLock to std::unique_lock, and every method is a one-line inline
// forward. The annotations are attributes — no codegen, no Release-mode
// difference (bench_baseline.sh asserts the build options stay off for
// benches anyway).
//
// Condition-variable discipline: CondVar::wait takes the MutexLock, which
// the analysis treats as "still held across the call" — true on entry and
// on return, which is the only contract callers may rely on. Predicates
// are therefore written as explicit `while (!pred) cv.wait(lock);` loops
// in the owning function (where the analysis can see the lock is held)
// rather than as lambdas, which Clang analyzes as separate unannotated
// functions.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace fpss::util {

class FPSS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FPSS_ACQUIRE() { m_.lock(); }
  void unlock() FPSS_RELEASE() { m_.unlock(); }
  bool try_lock() FPSS_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex m_;
};

/// RAII critical section over a util::Mutex — the std::lock_guard /
/// std::unique_lock replacement the analysis can follow.
class FPSS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) FPSS_ACQUIRE(mu) : lock_(mu.m_) {}
  ~MutexLock() FPSS_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable bound to util::MutexLock critical sections. wait()
/// atomically releases and reacquires the lock; from the analysis' point
/// of view the capability is held across the call, so guarded state read
/// in the caller's wait loop stays provably locked.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  template <typename Rep, typename Period>
  std::cv_status wait_for(MutexLock& lock,
                          const std::chrono::duration<Rep, Period>& timeout) {
    return cv_.wait_for(lock.lock_, timeout);
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      MutexLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline);
  }

 private:
  std::condition_variable cv_;
};

}  // namespace fpss::util
