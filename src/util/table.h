// Lightweight tabular output for the benchmark harness: aligned plain-text
// tables (what the bench binaries print, mirroring the paper's reporting)
// and CSV export for downstream plotting.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace fpss::util {

/// A rectangular table of strings with a header row. Cells are formatted by
/// the caller (use `format_double`/`std::to_string`); the table handles
/// alignment and escaping only.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row. Precondition enforced: row size matches the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: builds a row from heterogeneous printable values.
  template <typename... Ts>
  void add(const Ts&... cells) {
    add_row({cell_to_string(cells)...});
  }

  std::size_t row_count() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Monospace-aligned rendering with a rule under the header.
  std::string to_text() const;

  /// RFC-4180-style CSV (quotes fields containing comma/quote/newline).
  std::string to_csv() const;

  /// GitHub-flavored markdown.
  std::string to_markdown() const;

 private:
  static std::string cell_to_string(const std::string& s) { return s; }
  static std::string cell_to_string(const char* s) { return s; }
  static std::string cell_to_string(double v);
  template <typename T>
  static std::string cell_to_string(const T& v) {
    if constexpr (std::is_integral_v<T>) {
      return std::to_string(v);
    } else {
      return to_display_string(v);  // ADL hook for custom types.
    }
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double formatting without trailing-zero noise.
std::string format_double(double v, int precision = 3);

}  // namespace fpss::util
