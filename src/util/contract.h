// Contract-checking macros in the spirit of the C++ Core Guidelines GSL
// `Expects`/`Ensures`. Violations are programming errors, not recoverable
// conditions, so they abort with a diagnostic rather than throw.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace fpss::util::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "[fpss] %s violated: (%s) at %s:%d\n", kind, expr, file,
               line);
  std::abort();
}

}  // namespace fpss::util::detail

// Precondition: the caller must guarantee `cond`.
#define FPSS_EXPECTS(cond)                                                  \
  ((cond) ? static_cast<void>(0)                                            \
          : ::fpss::util::detail::contract_failure("precondition", #cond,   \
                                                   __FILE__, __LINE__))

// Postcondition / internal invariant: the implementation guarantees `cond`.
#define FPSS_ENSURES(cond)                                                  \
  ((cond) ? static_cast<void>(0)                                            \
          : ::fpss::util::detail::contract_failure("postcondition", #cond,  \
                                                   __FILE__, __LINE__))

// Invariant check used in the middle of algorithms.
#define FPSS_ASSERT(cond)                                                   \
  ((cond) ? static_cast<void>(0)                                            \
          : ::fpss::util::detail::contract_failure("invariant", #cond,      \
                                                   __FILE__, __LINE__))
