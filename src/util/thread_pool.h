// A persistent, deterministic-partition thread pool for the engines'
// data-parallel loops.
//
// Design goals, in order:
//  1. Determinism. parallel_for(count, fn) runs fn(i) exactly once for each
//     i in [0, count); worker w owns the fixed stride {i : i % width == w}.
//     There is no work stealing and no dynamic chunking, so the
//     thread-to-index assignment — and any per-thread side effect pattern —
//     is identical from run to run. Callers that write only to slot i from
//     fn(i) get bit-identical results at every width, including width 1.
//  2. Reuse. Workers are spawned once and parked on a condition variable
//     between jobs. The stage engine previously paid a spawn+join per stage
//     (~2n stages on a ring); a pool turns that into one wake per stage.
//  3. Simplicity. One job at a time, submitted and awaited by one owner
//     thread. The owner participates as worker 0, so `threads` is the total
//     parallel width, not the number of helpers.
//
// fn must not throw (engine kernels abort via FPSS_ASSERT on violation) and
// must not call back into the pool that is running it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"

namespace fpss::util {

class ThreadPool {
 public:
  /// A pool of total width max(1, threads): threads - 1 parked workers plus
  /// the calling thread. Width 1 spawns nothing and runs jobs inline.
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallel width (helper workers + the submitting thread).
  unsigned width() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Runs fn(i) for every i in [0, count), partitioned by the fixed stride
  /// above, and blocks until every index has run. Must be called by one
  /// thread at a time (the pool's owner).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  /// std::thread::hardware_concurrency with a floor of 1.
  static unsigned hardware_threads();

 private:
  void worker_loop(unsigned worker);
  /// Runs worker `worker`'s stride of job (fn, count). The job is passed by
  /// value-of-pointer, copied out under mutex_ by the caller, so the run
  /// itself touches no guarded state (the epoch handshake provides the
  /// happens-before edge; the analysis sees only unshared parameters).
  void run_stride(unsigned worker, const std::function<void(std::size_t)>& fn,
                  std::size_t count) const;

  std::vector<std::thread> workers_;

  Mutex mutex_;
  CondVar work_cv_;  ///< owner -> workers: new job / stop
  CondVar done_cv_;  ///< workers -> owner: job finished
  const std::function<void(std::size_t)>* fn_ FPSS_GUARDED_BY(mutex_) =
      nullptr;
  std::size_t count_ FPSS_GUARDED_BY(mutex_) = 0;
  /// Bumped per job so workers run each job once.
  std::uint64_t epoch_ FPSS_GUARDED_BY(mutex_) = 0;
  /// Helpers that have not finished the job.
  unsigned outstanding_ FPSS_GUARDED_BY(mutex_) = 0;
  bool stop_ FPSS_GUARDED_BY(mutex_) = false;
};

}  // namespace fpss::util
