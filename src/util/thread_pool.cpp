#include "util/thread_pool.h"

#include <algorithm>

#include "util/contract.h"

namespace fpss::util {

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned helpers = std::max(1u, threads) - 1;
  workers_.reserve(helpers);
  for (unsigned w = 0; w < helpers; ++w)
    workers_.emplace_back([this, w] { worker_loop(w + 1); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

unsigned ThreadPool::hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::run_stride(unsigned worker,
                            const std::function<void(std::size_t)>& fn,
                            std::size_t count) const {
  for (std::size_t i = worker; i < count; i += width()) fn(i);
}

void ThreadPool::worker_loop(unsigned worker) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t count = 0;
    {
      MutexLock lock(mutex_);
      while (!stop_ && epoch_ == seen) work_cv_.wait(lock);
      if (stop_) return;
      seen = epoch_;
      fn = fn_;
      count = count_;
    }
    run_stride(worker, *fn, count);
    {
      MutexLock lock(mutex_);
      if (--outstanding_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  {
    MutexLock lock(mutex_);
    FPSS_ASSERT(outstanding_ == 0);  // one job at a time
    fn_ = &fn;
    count_ = count;
    outstanding_ = static_cast<unsigned>(workers_.size());
    ++epoch_;
  }
  work_cv_.notify_all();
  run_stride(0, fn, count);  // the owner is worker 0
  MutexLock lock(mutex_);
  while (outstanding_ != 0) done_cv_.wait(lock);
  fn_ = nullptr;
  count_ = 0;
}

}  // namespace fpss::util
