#include "util/task_group.h"

#include <atomic>

#include "util/thread_pool.h"

namespace fpss::util {

unsigned TaskGroup::run_and_wait() {
  if (tasks_.empty()) return 0;

  unsigned high_water = 0;
  if (pool_ == nullptr || pool_->width() <= 1) {
    for (auto& task : tasks_) task();
    high_water = 1;
  } else {
    // parallel_for hands each worker a fixed stride of [0, count); running
    // one task per index would pin task -> worker statically. Instead every
    // index pops the *next unclaimed* task from a shared cursor, so a worker
    // whose stride indices come up while heavy tasks are still running keeps
    // draining the queue. Determinism of which worker runs which task is
    // deliberately given up here — tasks are independent by contract.
    std::atomic<std::size_t> cursor{0};
    std::atomic<unsigned> inflight{0};
    std::atomic<unsigned> max_inflight{0};
    pool_->parallel_for(tasks_.size(), [&](std::size_t) {
      const std::size_t t = cursor.fetch_add(1, std::memory_order_relaxed);
      const unsigned running = inflight.fetch_add(1, std::memory_order_relaxed) + 1;
      unsigned seen = max_inflight.load(std::memory_order_relaxed);
      while (running > seen &&
             !max_inflight.compare_exchange_weak(seen, running,
                                                 std::memory_order_relaxed)) {
      }
      tasks_[t]();
      inflight.fetch_sub(1, std::memory_order_relaxed);
    });
    high_water = max_inflight.load(std::memory_order_relaxed);
  }
  tasks_.clear();
  return high_water;
}

}  // namespace fpss::util
