// Little-endian binary encoding shared by every fpss on-disk and on-wire
// format ("fpss-graph", "fpss-snap", "fpss-wire"). One appender set and one
// latching-failure reader so each codec validates input the same way: a
// short or corrupt buffer flips `fail` once and every subsequent read
// returns zero instead of touching out-of-range bytes — callers check
// `fail` after decoding instead of guarding each field.
//
// Cost values travel as int64 with -1 encoding +infinity (finite costs are
// non-negative by construction), the convention fixed by the snapshot
// format; the wire codec reuses it so a remote Reply decodes to the same
// Cost bit pattern the in-process path produced.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/cost.h"

namespace fpss::util {

inline void append_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>(static_cast<std::uint8_t>(v >> (8 * i))));
}

inline void append_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>(static_cast<std::uint8_t>(v >> (8 * i))));
}

inline void append_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(static_cast<std::uint8_t>(v)));
  out.push_back(static_cast<char>(static_cast<std::uint8_t>(v >> 8)));
}

inline void append_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

inline void append_i64(std::string& out, std::int64_t v) {
  append_u64(out, static_cast<std::uint64_t>(v));
}

/// The serialized form of +infinity (see file comment).
inline constexpr std::int64_t kInfCostWire = -1;

inline std::int64_t encode_cost(Cost c) {
  return c.is_infinite() ? kInfCostWire : c.value();
}

inline void append_cost(std::string& out, Cost c) {
  append_i64(out, encode_cost(c));
}

/// Sequential little-endian reader; `fail` latches on the first short read
/// and stays set (reads after a failure return zero).
struct BinReader {
  std::string_view data;
  std::size_t pos = 0;
  bool fail = false;

  std::size_t remaining() const { return fail ? 0 : data.size() - pos; }

  std::uint8_t u8() {
    if (fail || data.size() - pos < 1) {
      fail = true;
      return 0;
    }
    return static_cast<std::uint8_t>(data[pos++]);
  }

  std::uint16_t u16() {
    if (fail || data.size() - pos < 2) {
      fail = true;
      return 0;
    }
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i)
      v = static_cast<std::uint16_t>(
          v | static_cast<std::uint16_t>(
                  static_cast<std::uint8_t>(
                      data[pos + static_cast<std::size_t>(i)]))
                  << (8 * i));
    pos += 2;
    return v;
  }

  std::uint32_t u32() {
    if (fail || data.size() - pos < 4) {
      fail = true;
      return 0;
    }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(
               static_cast<std::uint8_t>(data[pos + static_cast<std::size_t>(i)]))
           << (8 * i);
    pos += 4;
    return v;
  }

  std::uint64_t u64() {
    if (fail || data.size() - pos < 8) {
      fail = true;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(
               static_cast<std::uint8_t>(data[pos + static_cast<std::size_t>(i)]))
           << (8 * i);
    pos += 8;
    return v;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  /// Decodes a serialized cost; latches `fail` on out-of-range finite
  /// values (negative other than the infinity sentinel, or above
  /// Cost::kMaxFinite) so corrupt input cannot construct an invalid Cost.
  Cost cost() {
    const std::int64_t raw = i64();
    if (fail) return Cost::infinity();
    if (raw == kInfCostWire) return Cost::infinity();
    if (raw < 0 || raw > Cost::kMaxFinite) {
      fail = true;
      return Cost::infinity();
    }
    return Cost{raw};
  }
};

}  // namespace fpss::util
