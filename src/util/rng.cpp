#include "util/rng.h"

#include <cmath>

namespace fpss::util {

double Rng::pareto(double alpha, double cap) {
  FPSS_EXPECTS(alpha > 0 && cap >= 1.0);
  // Inverse-CDF sampling; uniform01() < 1 keeps the pow argument positive.
  const double u = 1.0 - uniform01();
  const double x = std::pow(u, -1.0 / alpha);
  return x > cap ? cap : x;
}

}  // namespace fpss::util
