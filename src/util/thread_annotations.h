// Clang Thread Safety Analysis attribute macros — the compile-time half of
// the repo's race defense.
//
// The dynamic half (the TSan CI job) only sees the interleavings the tests
// happen to produce; these annotations instead turn every locking contract
// into a per-compile proof obligation. A field tagged FPSS_GUARDED_BY(mu)
// may only be touched while `mu` is held; a method tagged
// FPSS_REQUIRES(mu) may only be called with `mu` held; violations are
// -Wthread-safety diagnostics, promoted to errors by the FPSS_THREAD_SAFETY
// build (see the CI static-analysis job and
// scripts/check_negative_compile.sh, which proves the promotion works).
//
// The macros expand to Clang's capability attributes when the compiler
// supports them and to nothing otherwise (GCC builds are unchanged — the
// attributes never affect codegen, so an annotated Release build is
// bit-for-bit the unannotated one). Vocabulary follows the Clang
// documentation (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html):
//
//   FPSS_CAPABILITY        on a class: instances are lockable capabilities
//   FPSS_SCOPED_CAPABILITY on an RAII class that acquires in its ctor
//   FPSS_GUARDED_BY(mu)    on a field: reads and writes need mu
//   FPSS_PT_GUARDED_BY(mu) on a pointer field: the *pointee* needs mu
//   FPSS_REQUIRES(mu)      on a function: caller must hold mu
//   FPSS_ACQUIRE(mu)       on a function: acquires mu, returns holding it
//   FPSS_RELEASE(mu)       on a function: caller holds mu, returns without
//   FPSS_TRY_ACQUIRE(b,mu) on a function: acquires mu iff it returns b
//   FPSS_EXCLUDES(mu)      on a function: caller must NOT hold mu
//                          (non-reentrancy; deadlock documentation)
//   FPSS_ACQUIRED_BEFORE / FPSS_ACQUIRED_AFTER   static lock ordering
//   FPSS_ASSERT_CAPABILITY on a function: asserts mu is held at runtime
//   FPSS_RETURN_CAPABILITY on a getter that returns a reference to mu
//   FPSS_NO_THREAD_SAFETY_ANALYSIS  opt a function out (used only where a
//                          cross-thread handoff protocol is provably safe
//                          but outside the analysis' lock-based model —
//                          each use carries a comment saying why)
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define FPSS_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef FPSS_THREAD_ANNOTATION
#define FPSS_THREAD_ANNOTATION(x)  // no-op: GCC and pre-capability Clang
#endif

#define FPSS_CAPABILITY(x) FPSS_THREAD_ANNOTATION(capability(x))
#define FPSS_SCOPED_CAPABILITY FPSS_THREAD_ANNOTATION(scoped_lockable)
#define FPSS_GUARDED_BY(x) FPSS_THREAD_ANNOTATION(guarded_by(x))
#define FPSS_PT_GUARDED_BY(x) FPSS_THREAD_ANNOTATION(pt_guarded_by(x))
#define FPSS_ACQUIRED_BEFORE(...) \
  FPSS_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define FPSS_ACQUIRED_AFTER(...) \
  FPSS_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define FPSS_REQUIRES(...) \
  FPSS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define FPSS_REQUIRES_SHARED(...) \
  FPSS_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define FPSS_ACQUIRE(...) \
  FPSS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define FPSS_ACQUIRE_SHARED(...) \
  FPSS_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define FPSS_RELEASE(...) \
  FPSS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define FPSS_RELEASE_SHARED(...) \
  FPSS_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define FPSS_TRY_ACQUIRE(...) \
  FPSS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define FPSS_EXCLUDES(...) FPSS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define FPSS_ASSERT_CAPABILITY(x) \
  FPSS_THREAD_ANNOTATION(assert_capability(x))
#define FPSS_RETURN_CAPABILITY(x) FPSS_THREAD_ANNOTATION(lock_returned(x))
#define FPSS_NO_THREAD_SAFETY_ANALYSIS \
  FPSS_THREAD_ANNOTATION(no_thread_safety_analysis)
