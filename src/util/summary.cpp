#include "util/summary.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/contract.h"
#include "util/table.h"

namespace fpss::util {

void Summary::add(double x) {
  samples_.push_back(x);
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(samples_.size());
  m2_ += delta * (x - mean_);
}

double Summary::min() const {
  FPSS_EXPECTS(!empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const {
  FPSS_EXPECTS(!empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::mean() const {
  FPSS_EXPECTS(!empty());
  return mean_;
}

double Summary::stddev() const {
  FPSS_EXPECTS(!empty());
  if (samples_.size() < 2) return 0;
  return std::sqrt(m2_ / static_cast<double>(samples_.size() - 1));
}

double Summary::quantile(double q) const {
  FPSS_EXPECTS(!empty());
  FPSS_EXPECTS(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

std::string Summary::digest() const {
  if (empty()) return "n=0";
  std::ostringstream out;
  out << "n=" << count() << " mean=" << format_double(mean())
      << " p50=" << format_double(median())
      << " p95=" << format_double(quantile(0.95))
      << " max=" << format_double(max());
  return out.str();
}

IntHistogram::IntHistogram(std::int64_t cap) : cap_(cap) {
  FPSS_EXPECTS(cap >= 0);
  buckets_.assign(static_cast<std::size_t>(cap) + 1, 0);
}

void IntHistogram::add(std::int64_t v) {
  FPSS_EXPECTS(v >= 0);
  ++total_;
  if (v > cap_) {
    ++overflow_;
  } else {
    ++buckets_[static_cast<std::size_t>(v)];
  }
}

std::uint64_t IntHistogram::bucket(std::int64_t v) const {
  FPSS_EXPECTS(v >= 0 && v <= cap_);
  return buckets_[static_cast<std::size_t>(v)];
}

std::string IntHistogram::to_text() const {
  std::ostringstream out;
  const std::uint64_t peak =
      std::max<std::uint64_t>(1, *std::max_element(buckets_.begin(), buckets_.end()));
  for (std::int64_t v = 0; v <= cap_; ++v) {
    const std::uint64_t n = bucket(v);
    if (n == 0) continue;
    const auto bar = static_cast<std::size_t>(40 * n / peak);
    out << "  " << v << ": " << std::string(bar, '#') << ' ' << n << '\n';
  }
  if (overflow_ > 0) out << "  >" << cap_ << ": " << overflow_ << '\n';
  return out.str();
}

}  // namespace fpss::util
