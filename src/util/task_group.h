// A batch of independent, heterogeneous tasks run on a ThreadPool and
// joined — the dynamic-dispatch sibling of ThreadPool::parallel_for.
//
// parallel_for partitions a *uniform* index range by a fixed stride, which
// is the right shape for the engines' per-node kernels but the wrong one
// for the publication pipeline's per-shard export tasks: shards carry
// wildly different dirty-row counts, so a static partition would leave
// most workers idle behind the heaviest shard. TaskGroup instead pops
// tasks from a shared atomic cursor, so whichever worker frees up first
// takes the next task — completion order is load-driven, not index-driven,
// which is exactly what lets a cheap shard publish while an expensive one
// is still exporting.
//
// Usage contract mirrors parallel_for's: run_and_wait() must be called by
// the pool's owner thread (it participates as a worker), one group at a
// time, and tasks must not throw or call back into the pool running them.
// Task side effects are visible to the caller when run_and_wait returns
// (the pool's join provides the happens-before edge); effects of one task
// are visible to later tasks only through the caller's own synchronization
// — tasks are independent by design.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace fpss::util {

class ThreadPool;

class TaskGroup {
 public:
  /// Tasks run on `pool`; with a null pool (or width 1) they run serially
  /// on the calling thread in add() order.
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void add(std::function<void()> task) { tasks_.push_back(std::move(task)); }
  std::size_t size() const { return tasks_.size(); }

  /// Runs every added task and blocks until all have finished; the group
  /// is then empty and reusable. Returns the high-water mark of tasks
  /// running concurrently (1 for a serial run of a non-empty group, 0 for
  /// an empty one) — the pipeline's shard_exports_inflight_max gauge.
  unsigned run_and_wait();

 private:
  ThreadPool* pool_;
  std::vector<std::function<void()>> tasks_;
};

}  // namespace fpss::util
