#include "util/cost.h"

#include <ostream>

namespace fpss {

std::string Cost::to_string() const {
  return is_infinite() ? std::string("inf") : std::to_string(value_);
}

std::ostream& operator<<(std::ostream& os, Cost c) {
  return os << c.to_string();
}

}  // namespace fpss
