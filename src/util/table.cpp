#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/contract.h"

namespace fpss::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  FPSS_EXPECTS(!header_.empty());
}

void Table::add_row(std::vector<std::string> row) {
  FPSS_EXPECTS(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::cell_to_string(double v) { return format_double(v); }

std::string Table::to_text() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      out << row[c];
      out << std::string(width[c] - row[c].size(), ' ');
    }
    out << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

namespace {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << csv_escape(row[c]);
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string Table::to_markdown() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    out << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << " | ";
      out << row[c];
    }
    out << " |\n";
  };
  emit(header_);
  out << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) out << "---|";
  out << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  std::string s = buf;
  if (s.find('.') != std::string::npos) {
    while (s.back() == '0') s.pop_back();
    if (s.back() == '.') s.pop_back();
  }
  return s;
}

}  // namespace fpss::util
