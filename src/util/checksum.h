// FNV-1a 64-bit folding, used by the service layer's snapshot
// serialization to detect truncated or corrupted files. A streaming
// accumulator rather than a one-shot function so callers can fold
// heterogeneous fields (scalars, then whole arrays) into one digest in a
// fixed, documented order — the digest then identifies the *logical*
// snapshot content, independent of any file layout.
#pragma once

#include <cstdint>

namespace fpss::util {

class Fnv1a64 {
 public:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ULL;
  static constexpr std::uint64_t kPrime = 0x100000001b3ULL;

  /// Folds one byte.
  constexpr void byte(std::uint8_t b) {
    hash_ = (hash_ ^ b) * kPrime;
  }

  /// Folds a 64-bit value, little-endian byte order (the on-disk order of
  /// the snapshot format, so hashing parsed values reproduces the digest
  /// of the raw payload).
  constexpr void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  constexpr void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  constexpr void u32(std::uint32_t v) { u64(v); }

  constexpr std::uint64_t digest() const { return hash_; }

 private:
  std::uint64_t hash_ = kOffsetBasis;
};

}  // namespace fpss::util
