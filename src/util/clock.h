// Wall-clock timestamps for the serving layer's staleness accounting.
//
// Snapshots are stamped at publication and the stamp is persisted (a
// warm-started daemon must report how old its epoch-0 prices really are,
// which rules out the steady clock — it is not comparable across process
// restarts). The price is coarse semantics: a wall-clock step makes one
// age reading jump, never a served price, so age_ns is clamped at zero and
// documented as approximate.
#pragma once

#include <chrono>
#include <cstdint>

namespace fpss::util {

/// Nanoseconds since the Unix epoch on the realtime clock.
inline std::uint64_t wall_clock_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// now - published, clamped at zero (the clock may step backwards).
inline std::uint64_t age_from(std::uint64_t published_ns,
                              std::uint64_t now_ns) {
  return now_ns > published_ns ? now_ns - published_ns : 0;
}

}  // namespace fpss::util
