// Plain BGP (lowest-cost configured) with no pricing extension: the
// baseline whose table sizes, message counts, and convergence stages the
// extended protocol is compared against (Theorem 2's "constant-factor
// penalty" claims).
#pragma once

#include <optional>
#include <set>
#include <vector>

#include "bgp/agent.h"
#include "bgp/rib.h"

namespace fpss::bgp {

/// Full-table vs incremental advertisement policy. The paper's worst-case
/// bounds assume full tables (footnote 6); real BGP sends increments; E5
/// measures both.
enum class UpdatePolicy { kFullTable, kIncremental };

class PlainBgpAgent : public Agent {
 public:
  PlainBgpAgent(NodeId self, std::size_t node_count, Cost declared_cost,
                UpdatePolicy policy);

  NodeId id() const override { return rib_.self(); }
  void bootstrap() override;
  void receive(const TableMessage& msg) override;
  std::optional<TableMessage> advertise() override;

  void on_link_down(NodeId neighbor) override;
  void on_link_up(NodeId neighbor) override;
  void on_self_cost_change(Cost new_cost) override;

  bool routes_changed_last_compute() const override {
    return routes_changed_;
  }
  bool values_changed_last_compute() const override {
    return values_changed_;
  }
  StateSize state_size() const override;

  /// The route this AS currently uses toward `destination`.
  const SelectedRoute& selected(NodeId destination) const {
    return rib_.selected(destination);
  }

  /// Read-only introspection for monitoring/auditing: the latest advert
  /// heard from `neighbor` about `destination` (nullptr if none), and the
  /// neighbors heard from so far.
  const RouteAdvert* stored_advert(NodeId neighbor, NodeId destination) const {
    return rib_.stored(neighbor, destination);
  }
  std::vector<NodeId> heard_neighbors() const {
    return rib_.known_neighbors();
  }
  Cost heard_neighbor_cost(NodeId neighbor) const {
    return rib_.neighbor_cost(neighbor);
  }

 protected:
  Rib& rib() { return rib_; }
  const Rib& rib() const { return rib_; }

  // --- extension hooks (used by the pricing agents) -----------------------

  /// Called by advertise() after routes were reselected; `changed` lists
  /// the destinations whose selection changed this activation. Extensions
  /// update their own state and return the destinations whose extension
  /// values changed (these get re-advertised even if the route is stable).
  virtual std::vector<NodeId> update_extension(
      const std::vector<NodeId>& changed) {
    (void)changed;
    return {};
  }

  /// Called while building an advert entry so extensions can attach their
  /// transit_values payload.
  virtual void decorate(RouteAdvert& advert) { (void)advert; }

  /// Extension state footprint.
  virtual std::size_t extension_words() const { return 0; }

  /// Destinations whose stored advert from `sender` was refreshed by the
  /// message currently being received (extensions track these to know
  /// which neighbor tables carry new information).
  virtual void note_refreshed(NodeId sender,
                              const std::vector<NodeId>& destinations) {
    (void)sender;
    (void)destinations;
  }

  /// `sender`'s declared cost changed: every value derived from routes
  /// through it is suspect.
  virtual void note_sender_cost_change(NodeId sender) { (void)sender; }

  /// Forces every valid route to be re-advertised on the next activation
  /// (a route-refresh wave; used by the pricing restart barrier).
  void request_full_readvertisement();

  /// Route selection for one destination; returns true if it changed.
  /// The default is the canonical lowest-cost rule; policy routing
  /// (e.g. Gao-Rexford preferences) overrides this.
  virtual bool reselect_destination(NodeId destination) {
    return rib_.reselect(destination);
  }

 private:
  void mark_all_pending();
  RouteAdvert build_entry(NodeId destination);

  Rib rib_;
  UpdatePolicy policy_;
  std::set<NodeId> pending_reselect_;  ///< dests needing local recompute
  std::set<NodeId> dirty_;            ///< dests needing (re)advertisement
  std::set<NodeId> announced_;        ///< dests whose route we advertised
  bool routes_changed_ = false;
  bool values_changed_ = false;
};

}  // namespace fpss::bgp
