#include "bgp/hop_count_agent.h"

#include <algorithm>

namespace fpss::bgp {

bool HopCountBgpAgent::reselect_destination(NodeId destination) {
  if (destination == id()) return false;

  // Rank candidates by (hops, cost, neighbor id) — hops dominate.
  bool have_best = false;
  std::uint32_t best_hops = 0;
  Cost best_cost = Cost::infinity();
  NodeId best_neighbor = kInvalidNode;
  const RouteAdvert* best_advert = nullptr;

  for (NodeId a : rib().known_neighbors()) {
    const RouteAdvert* advert = rib().stored(a, destination);
    if (advert == nullptr) continue;
    if (std::find(advert->path.begin(), advert->path.end(), id()) !=
        advert->path.end())
      continue;
    const auto hops = static_cast<std::uint32_t>(advert->path.size());
    const Cost step =
        (a == destination) ? Cost::zero() : rib().neighbor_cost(a);
    const Cost cost = advert->cost + step;
    const bool better =
        !have_best || hops < best_hops ||
        (hops == best_hops &&
         (cost < best_cost || (cost == best_cost && a < best_neighbor)));
    if (better) {
      have_best = true;
      best_hops = hops;
      best_cost = cost;
      best_neighbor = a;
      best_advert = advert;
    }
  }

  SelectedRoute next;
  if (best_advert != nullptr) {
    next.path.reserve(best_advert->path.size() + 1);
    next.path.push_back(id());
    next.path.insert(next.path.end(), best_advert->path.begin(),
                     best_advert->path.end());
    next.cost = best_cost;
    next.node_costs.reserve(best_advert->node_costs.size() + 1);
    next.node_costs.push_back(rib().declared_cost());
    next.node_costs.insert(next.node_costs.end(),
                           best_advert->node_costs.begin(),
                           best_advert->node_costs.end());
    next.next_hop = best_neighbor;
  }
  return rib().force_select(destination, std::move(next));
}

AgentFactory make_hop_count_factory(UpdatePolicy policy) {
  return [policy](NodeId self, std::size_t node_count,
                  Cost declared_cost) -> std::unique_ptr<Agent> {
    return std::make_unique<HopCountBgpAgent>(self, node_count, declared_cost,
                                              policy);
  };
}

}  // namespace fpss::bgp
