#include "bgp/plain_agent.h"

#include "util/contract.h"

namespace fpss::bgp {

PlainBgpAgent::PlainBgpAgent(NodeId self, std::size_t node_count,
                             Cost declared_cost, UpdatePolicy policy)
    : rib_(self, node_count, declared_cost), policy_(policy) {}

void PlainBgpAgent::bootstrap() {
  // A router starts by announcing itself as a destination.
  dirty_.insert(id());
}

void PlainBgpAgent::receive(const TableMessage& msg) {
  FPSS_EXPECTS(msg.sender != id());
  // A changed declared cost at the sender re-rates every route through it.
  if (!rib_.heard_from(msg.sender) ||
      rib_.neighbor_cost(msg.sender) != msg.sender_cost) {
    const bool was_known = rib_.heard_from(msg.sender);
    rib_.note_sender(msg.sender, msg.sender_cost);
    mark_all_pending();
    if (was_known) note_sender_cost_change(msg.sender);
  }
  std::vector<NodeId> refreshed;
  refreshed.reserve(msg.entries.size());
  for (const RouteAdvert& advert : msg.entries) {
    rib_.ingest(msg.sender, msg.sender_cost, advert);
    pending_reselect_.insert(advert.destination);
    refreshed.push_back(advert.destination);
  }
  note_refreshed(msg.sender, refreshed);
}

std::optional<TableMessage> PlainBgpAgent::advertise() {
  // Local computation: reselect every destination touched by new input.
  std::vector<NodeId> changed;
  for (NodeId destination : pending_reselect_) {
    if (reselect_destination(destination)) changed.push_back(destination);
  }
  pending_reselect_.clear();
  routes_changed_ = !changed.empty();
  for (NodeId destination : changed) dirty_.insert(destination);

  // Extension (pricing) computation; value changes also require re-adverts.
  const std::vector<NodeId> value_dirty = update_extension(changed);
  values_changed_ = !value_dirty.empty();
  for (NodeId destination : value_dirty) dirty_.insert(destination);

  if (dirty_.empty()) return std::nullopt;

  TableMessage msg;
  msg.sender = id();
  msg.sender_cost = rib_.declared_cost();
  if (policy_ == UpdatePolicy::kFullTable) {
    // Worst-case BGP of footnote 6: any change resends the whole table.
    for (NodeId j = 0; j < rib_.node_count(); ++j) {
      if (rib_.selected(j).valid()) {
        msg.entries.push_back(build_entry(j));
        announced_.insert(j);
      } else if (announced_.contains(j)) {
        msg.entries.push_back(build_entry(j));  // withdrawal
        announced_.erase(j);
      }
    }
  } else {
    for (NodeId j : dirty_) {
      const bool valid = rib_.selected(j).valid();
      if (valid || announced_.contains(j)) {
        msg.entries.push_back(build_entry(j));
        if (valid) {
          announced_.insert(j);
        } else {
          announced_.erase(j);
        }
      }
    }
  }
  dirty_.clear();
  if (msg.entries.empty()) return std::nullopt;
  return msg;
}

void PlainBgpAgent::on_link_down(NodeId neighbor) {
  for (NodeId destination : rib_.purge_neighbor(neighbor))
    pending_reselect_.insert(destination);
}

void PlainBgpAgent::on_link_up(NodeId neighbor) {
  (void)neighbor;
  // Session establishment: resend the full table so the new peer hears
  // everything (flooded to all neighbors in this simplified model).
  for (NodeId j = 0; j < rib_.node_count(); ++j)
    if (rib_.selected(j).valid()) dirty_.insert(j);
}

void PlainBgpAgent::on_self_cost_change(Cost new_cost) {
  rib_.set_declared_cost(new_cost);
  // Our own advertised paths embed our declared cost; recompute and resend
  // everything (neighbors must re-rate every route through us).
  mark_all_pending();
  dirty_.insert(id());  // ensure a message goes out even if nothing reselects
}

StateSize PlainBgpAgent::state_size() const {
  StateSize size;
  size.selected_words = rib_.selected_words();
  size.rib_in_words = rib_.adj_rib_in_words();
  size.value_words = extension_words();
  return size;
}

void PlainBgpAgent::request_full_readvertisement() {
  for (NodeId j = 0; j < rib_.node_count(); ++j)
    if (rib_.selected(j).valid()) dirty_.insert(j);
}

void PlainBgpAgent::mark_all_pending() {
  for (NodeId j = 0; j < rib_.node_count(); ++j) pending_reselect_.insert(j);
}

RouteAdvert PlainBgpAgent::build_entry(NodeId destination) {
  RouteAdvert advert;
  advert.destination = destination;
  const SelectedRoute& route = rib_.selected(destination);
  if (route.valid()) {
    advert.path = route.path;
    advert.cost = route.cost;
    advert.node_costs = route.node_costs;
    decorate(advert);
  }
  return advert;
}

}  // namespace fpss::bgp
