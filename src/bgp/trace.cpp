#include "bgp/trace.h"

#include <ostream>

#include "util/contract.h"

namespace fpss::bgp {

void TextTrace::on_stage_begin(Stage stage) {
  *out_ << "--- stage " << stage << " ---\n";
}

void TextTrace::on_message(Stage stage, NodeId from, NodeId to,
                           const MessageSize& size) {
  *out_ << "stage " << stage << ": AS" << from << " -> AS" << to << " ("
        << size.entries << " entries, " << size.total_words() << " words)\n";
}

void TextTrace::on_route_change(Stage stage, NodeId node) {
  *out_ << "stage " << stage << ": AS" << node << " changed routes\n";
}

void TextTrace::on_value_change(Stage stage, NodeId node) {
  *out_ << "stage " << stage << ": AS" << node << " changed prices\n";
}

void TextTrace::on_quiescent(Stage last_stage) {
  *out_ << "quiescent after stage " << last_stage << "\n";
}

void TextTrace::on_drop(Stage stage, NodeId from, NodeId to) {
  *out_ << "stage " << stage << ": AS" << from << " -> AS" << to
        << " dropped\n";
}

void TextTrace::on_link_event(Stage stage, NodeId u, NodeId v, bool up) {
  *out_ << "stage " << stage << ": link AS" << u << " -- AS" << v
        << (up ? " up" : " down") << "\n";
}

StageSeries::Row& StageSeries::current(Stage stage) {
  if (rows_.empty() || rows_.back().stage != stage) {
    Row row;
    row.stage = stage;
    rows_.push_back(row);
  }
  return rows_.back();
}

void StageSeries::on_stage_begin(Stage stage) { current(stage); }

void StageSeries::on_message(Stage stage, NodeId from, NodeId to,
                             const MessageSize& size) {
  (void)from;
  (void)to;
  Row& row = current(stage);
  ++row.messages;
  row.words += size.total_words();
}

void StageSeries::on_route_change(Stage stage, NodeId node) {
  (void)node;
  ++current(stage).route_changes;
}

void StageSeries::on_value_change(Stage stage, NodeId node) {
  (void)node;
  ++current(stage).value_changes;
}

util::Table StageSeries::to_table() const {
  util::Table table(
      {"stage", "messages", "words", "route changes", "price changes"});
  for (const Row& row : rows_) {
    table.add(row.stage, row.messages, row.words, row.route_changes,
              row.value_changes);
  }
  return table;
}

}  // namespace fpss::bgp
