#include "bgp/engine.h"

#include <algorithm>
#include <utility>

#include "bgp/trace.h"
#include "util/contract.h"

namespace fpss::bgp {

Network::Network(const graph::Graph& g, const AgentFactory& factory)
    : graph_(g) {
  agents_.reserve(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v)
    agents_.push_back(factory(v, g.node_count(), g.cost(v)));
}

Agent& Network::agent(NodeId v) {
  FPSS_EXPECTS(v < agents_.size());
  return *agents_[v];
}

const Agent& Network::agent(NodeId v) const {
  FPSS_EXPECTS(v < agents_.size());
  return *agents_[v];
}

void Network::change_cost(NodeId v, Cost new_cost) {
  graph_.set_cost(v, new_cost);
  agent(v).on_self_cost_change(new_cost);
}

void Network::remove_link(NodeId u, NodeId v) {
  const bool removed = graph_.remove_edge(u, v);
  FPSS_EXPECTS(removed);
  agent(u).on_link_down(v);
  agent(v).on_link_down(u);
}

void Network::add_link(NodeId u, NodeId v) {
  const bool added = graph_.add_edge(u, v);
  FPSS_EXPECTS(added);
  agent(u).on_link_up(v);
  agent(v).on_link_up(u);
}

StateSize Network::total_state() const {
  StateSize total;
  for (const auto& agent : agents_) {
    const StateSize s = agent->state_size();
    total.selected_words += s.selected_words;
    total.rib_in_words += s.rib_in_words;
    total.value_words += s.value_words;
  }
  return total;
}

StateSize Network::max_state() const {
  StateSize peak;
  for (const auto& agent : agents_) {
    const StateSize s = agent->state_size();
    if (s.total_words() > peak.total_words()) peak = s;
  }
  return peak;
}

// ---------------------------------------------------------------------------
// SyncEngine
// ---------------------------------------------------------------------------

SyncEngine::SyncEngine(Network& net, unsigned threads)
    : net_(net),
      inbox_(net.node_count()),
      arriving_(net.node_count()),
      outputs_(net.node_count()),
      threads_(std::max(1u, threads)) {
  if (threads_ > 1) pool_ = std::make_unique<util::ThreadPool>(threads_);
}

RunStats SyncEngine::run(Stage max_stages) {
  const RunStats before = stats_;
  if (!bootstrapped_) {
    for (NodeId v = 0; v < net_.node_count(); ++v) net_.agent(v).bootstrap();
    bootstrapped_ = true;
  }
  stats_.converged = false;
  Stage executed = 0;
  for (;;) {
    const Stage stage = stats_.stages + 1;
    bool had_input = false;
    // Receive + local-compute phase. Each node only touches its own
    // state here, so the work parallelizes across nodes; delivery below
    // stays in node order either way, keeping runs bit-identical. The
    // stage buffers are members reused across stages: the swap takes this
    // stage's input, and the cleared vectors (capacities kept) become the
    // next inbox.
    arriving_.swap(inbox_);
    for (auto& box : inbox_) box.clear();
    for (const auto& box : arriving_) had_input |= !box.empty();

    auto compute_node = [&](std::size_t v_) {
      const NodeId v = static_cast<NodeId>(v_);
      for (const MessageRef& msg : arriving_[v]) net_.agent(v).receive(*msg);
      outputs_[v] = net_.agent(v).advertise();
    };
    // Tracing never hears from this phase — every TraceSink callback fires
    // from the serial phase below — so it does not force serial compute.
    if (pool_ != nullptr && net_.node_count() > 1) {
      pool_->parallel_for(net_.node_count(), compute_node);
    } else {
      for (NodeId v = 0; v < net_.node_count(); ++v) compute_node(v);
    }
    if (trace_ != nullptr && had_input) trace_->on_stage_begin(stage);

    // Accounting + delivery phase (serial, node order).
    std::uint64_t produced = 0;
    for (NodeId v = 0; v < net_.node_count(); ++v) {
      Agent& agent = net_.agent(v);
      if (agent.routes_changed_last_compute()) {
        stats_.last_route_change_stage = stage;
        if (trace_ != nullptr) trace_->on_route_change(stage, v);
      }
      if (agent.values_changed_last_compute()) {
        stats_.last_value_change_stage = stage;
        if (trace_ != nullptr) trace_->on_value_change(stage, v);
      }
      std::optional<TableMessage>& out = outputs_[v];
      if (!out.has_value()) continue;
      const auto deliver = [&](NodeId neighbor, MessageRef msg,
                               const MessageSize& size) {
        stats_.traffic += size;
        if (trace_ != nullptr) trace_->on_message(stage, v, neighbor, size);
        inbox_[neighbor].push_back(std::move(msg));
        ++produced;
        ++stats_.messages;
        const std::uint64_t link =
            (static_cast<std::uint64_t>(v) << 32) | neighbor;
        stats_.max_link_messages =
            std::max(stats_.max_link_messages, ++link_messages_[link]);
      };
      if (!agent.filters_exports()) {
        // Identity export: all neighbors share one immutable payload
        // instead of a deep copy of the full table per neighbor.
        if (!out->entries.empty()) {
          const auto shared =
              std::make_shared<const TableMessage>(std::move(*out));
          const MessageSize size = measure(*shared);
          for (NodeId neighbor : net_.topology().neighbors(v))
            deliver(neighbor, shared, size);
        }
      } else {
        for (NodeId neighbor : net_.topology().neighbors(v)) {
          TableMessage filtered = agent.export_filter(neighbor, *out);
          if (filtered.entries.empty()) continue;
          const MessageSize size = measure(filtered);
          deliver(neighbor,
                  std::make_shared<const TableMessage>(std::move(filtered)),
                  size);
        }
      }
      out.reset();
    }
    if (!had_input && produced == 0) {
      stats_.converged = true;  // probe stage: nothing happened, not counted
      if (trace_ != nullptr) trace_->on_quiescent(stats_.stages);
      break;
    }
    stats_.stages = stage;
    if (++executed >= max_stages) break;
  }

  RunStats segment = stats_;
  segment.stages -= before.stages;
  segment.messages -= before.messages;
  segment.traffic -= before.traffic;
  segment.converged = stats_.converged;
  return segment;
}

// ---------------------------------------------------------------------------
// AsyncEngine
// ---------------------------------------------------------------------------

AsyncEngine::AsyncEngine(Network& net, const Config& config)
    : net_(net),
      config_(config),
      rng_(config.seed),
      last_advert_time_(net.node_count(), -1e18),
      poll_scheduled_(net.node_count(), 0) {
  FPSS_EXPECTS(config.min_delay > 0 && config.max_delay >= config.min_delay);
}

void AsyncEngine::flood(NodeId sender, const TableMessage& msg) {
  for (NodeId neighbor : net_.topology().neighbors(sender)) {
    TableMessage filtered = net_.agent(sender).export_filter(neighbor, msg);
    if (filtered.entries.empty()) continue;
    const double delay =
        config_.min_delay +
        rng_.uniform01() * (config_.max_delay - config_.min_delay);
    // Per-link FIFO (the TCP session): never deliver before an earlier
    // message on the same directed link.
    const std::uint64_t link =
        (static_cast<std::uint64_t>(sender) << 32) | neighbor;
    double& clock = link_clock_[link];
    clock = std::max(clock, now_ + delay);
    stats_.traffic += measure(filtered);
    queue_.push(Event{clock, next_seq_++, neighbor, false, std::move(filtered)});
    ++stats_.messages;
  }
}

void AsyncEngine::activate(NodeId node) {
  if (config_.mrai > 0 && now_ < last_advert_time_[node] + config_.mrai) {
    // MRAI: defer this node's computation+advertisement; batch updates.
    if (!poll_scheduled_[node]) {
      poll_scheduled_[node] = 1;
      queue_.push(Event{last_advert_time_[node] + config_.mrai, next_seq_++,
                        node, true, {}});
    }
    return;
  }
  Agent& agent = net_.agent(node);
  const std::optional<TableMessage> out = agent.advertise();
  if (agent.routes_changed_last_compute())
    stats_.last_route_change_time = now_;
  if (agent.values_changed_last_compute())
    stats_.last_value_change_time = now_;
  if (out.has_value()) {
    last_advert_time_[node] = now_;
    flood(node, *out);
  }
}

RunStats AsyncEngine::run() {
  const RunStats before = stats_;
  if (!bootstrapped_) {
    for (NodeId v = 0; v < net_.node_count(); ++v) net_.agent(v).bootstrap();
    bootstrapped_ = true;
  }
  // Kick every node once (covers both cold start and post-event restarts).
  for (NodeId v = 0; v < net_.node_count(); ++v) activate(v);

  stats_.converged = true;
  while (!queue_.empty()) {
    if (stats_.messages > config_.max_messages) {
      stats_.converged = false;
      break;
    }
    const Event event = queue_.top();
    queue_.pop();
    now_ = std::max(now_, event.time);
    if (event.is_poll) {
      poll_scheduled_[event.node] = 0;
    } else {
      net_.agent(event.node).receive(event.msg);
    }
    activate(event.node);
  }
  stats_.async_end_time = now_;

  RunStats segment = stats_;
  segment.messages -= before.messages;
  segment.traffic -= before.traffic;
  return segment;
}

}  // namespace fpss::bgp
