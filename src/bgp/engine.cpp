#include "bgp/engine.h"

#include <algorithm>
#include <optional>
#include <queue>
#include <utility>

#include "bgp/trace.h"
#include "util/contract.h"
#include "util/rng.h"

namespace fpss::bgp {

Network::Network(const graph::Graph& g, const AgentFactory& factory)
    : graph_(g) {
  agents_.reserve(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v)
    agents_.push_back(factory(v, g.node_count(), g.cost(v)));
}

Agent& Network::agent(NodeId v) {
  FPSS_EXPECTS(v < agents_.size());
  return *agents_[v];
}

const Agent& Network::agent(NodeId v) const {
  FPSS_EXPECTS(v < agents_.size());
  return *agents_[v];
}

void Network::change_cost(NodeId v, Cost new_cost) {
  graph_.set_cost(v, new_cost);
  agent(v).on_self_cost_change(new_cost);
}

void Network::remove_link(NodeId u, NodeId v) {
  const bool removed = graph_.remove_edge(u, v);
  FPSS_EXPECTS(removed);
  agent(u).on_link_down(v);
  agent(v).on_link_down(u);
}

void Network::add_link(NodeId u, NodeId v) {
  const bool added = graph_.add_edge(u, v);
  FPSS_EXPECTS(added);
  agent(u).on_link_up(v);
  agent(v).on_link_up(u);
}

StateSize Network::total_state() const {
  StateSize total;
  for (const auto& agent : agents_) {
    const StateSize s = agent->state_size();
    total.selected_words += s.selected_words;
    total.rib_in_words += s.rib_in_words;
    total.value_words += s.value_words;
  }
  return total;
}

StateSize Network::max_state() const {
  StateSize peak;
  for (const auto& agent : agents_) {
    const StateSize s = agent->state_size();
    if (s.total_words() > peak.total_words()) peak = s;
  }
  return peak;
}

// ---------------------------------------------------------------------------
// LinkLedger
// ---------------------------------------------------------------------------

void Engine::LinkLedger::sync(const graph::Graph& g) {
  if (synced_version == g.version()) return;
  const std::size_t n = g.node_count();
  std::vector<std::size_t> new_offset(n + 1, 0);
  std::vector<NodeId> new_to;
  new_to.reserve(2 * g.edge_count());
  for (NodeId u = 0; u < n; ++u) {
    new_offset[u] = new_to.size();
    const auto nb = g.neighbors(u);
    new_to.insert(new_to.end(), nb.begin(), nb.end());
  }
  new_offset[n] = new_to.size();

  std::vector<std::uint64_t> new_count(new_to.size(), 0);
  std::vector<double> new_fifo(new_to.size(), 0.0);
  std::vector<std::uint32_t> new_epoch(new_to.size(), 0);
  const std::size_t old_n = offset.empty() ? 0 : offset.size() - 1;
  for (NodeId u = 0; u < n; ++u) {
    for (std::size_t s = new_offset[u]; s < new_offset[u + 1]; ++s) {
      // Carry keyed state for links that survive the remap; a link that was
      // removed and re-added is a new TCP session (fresh epoch, counters
      // start over).
      const std::size_t old = u < old_n ? slot(u, new_to[s]) : npos;
      if (old != npos) {
        new_count[s] = count[old];
        new_fifo[s] = fifo_clock[old];
        new_epoch[s] = epoch[old];
      } else {
        new_epoch[s] = ++next_epoch;
      }
    }
  }
  offset = std::move(new_offset);
  to = std::move(new_to);
  count = std::move(new_count);
  fifo_clock = std::move(new_fifo);
  epoch = std::move(new_epoch);
  synced_version = g.version();
}

std::size_t Engine::LinkLedger::slot(NodeId u, NodeId v) const {
  const auto first = to.begin() + static_cast<std::ptrdiff_t>(offset[u]);
  const auto last = to.begin() + static_cast<std::ptrdiff_t>(offset[u + 1]);
  const auto it = std::lower_bound(first, last, v);
  if (it == last || *it != v) return npos;
  return static_cast<std::size_t>(it - to.begin());
}

// ---------------------------------------------------------------------------
// StageScheduler: the paper's lockstep model (Sect. 5)
// ---------------------------------------------------------------------------

/// Runs the network in synchronized stages: every stage, each node ingests
/// everything that arrived in the previous stage, recomputes, and
/// advertises; all of a stage's messages arrive together at the next one.
/// This is the model the paper's stage-count bounds are stated in, and its
/// behaviour (down to every counter) is the reference the event scheduler's
/// convergence results are checked against.
class StageScheduler final : public Scheduler {
 public:
  explicit StageScheduler(Engine& eng)
      : eng_(eng),
        inbox_(eng.net_.node_count()),
        arriving_(eng.net_.node_count()),
        outputs_(eng.net_.node_count()) {}

  RunStats run(Stage max_stages) override;
  double now() const override { return eng_.stats_.stages; }

 private:
  using MessageRef = Engine::MessageRef;

  Engine& eng_;
  // Stage buffers, reused across stages and runs (capacities stick).
  std::vector<std::vector<MessageRef>> inbox_;
  std::vector<std::vector<MessageRef>> arriving_;
  std::vector<std::optional<TableMessage>> outputs_;
};

RunStats StageScheduler::run(Stage max_stages) {
  Network& net = eng_.net_;
  RunStats& stats = eng_.stats_;
  TraceSink* const trace = eng_.trace_;
  const RunStats before = stats;
  eng_.bootstrap_agents();
  eng_.links_.sync(net.topology());
  stats.converged = false;
  Stage executed = 0;
  for (;;) {
    const Stage stage = stats.stages + 1;
    bool had_input = false;
    // Receive + local-compute phase. Each node only touches its own
    // state here, so the work parallelizes across nodes; delivery below
    // stays in node order either way, keeping runs bit-identical. The
    // stage buffers are members reused across stages: the swap takes this
    // stage's input, and the cleared vectors (capacities kept) become the
    // next inbox.
    arriving_.swap(inbox_);
    for (auto& box : inbox_) box.clear();
    for (const auto& box : arriving_) had_input |= !box.empty();

    auto compute_node = [&](std::size_t v_) {
      const NodeId v = static_cast<NodeId>(v_);
      for (const MessageRef& msg : arriving_[v]) net.agent(v).receive(*msg);
      outputs_[v] = net.agent(v).advertise();
    };
    // Tracing never hears from this phase — every TraceSink callback fires
    // from the serial phase below — so it does not force serial compute.
    if (eng_.pool_ != nullptr && net.node_count() > 1) {
      eng_.pool_->parallel_for(net.node_count(), compute_node);
    } else {
      for (NodeId v = 0; v < net.node_count(); ++v) compute_node(v);
    }
    if (trace != nullptr && had_input) trace->on_stage_begin(stage);

    // Accounting + delivery phase (serial, node order).
    std::uint64_t produced = 0;
    for (NodeId v = 0; v < net.node_count(); ++v) {
      Agent& agent = net.agent(v);
      if (agent.routes_changed_last_compute()) {
        stats.last_route_change_stage = stage;
        if (trace != nullptr) trace->on_route_change(stage, v);
      }
      if (agent.values_changed_last_compute()) {
        stats.last_value_change_stage = stage;
        if (trace != nullptr) trace->on_value_change(stage, v);
      }
      std::optional<TableMessage>& out = outputs_[v];
      if (!out.has_value()) continue;
      // The ledger slot of (v, neighbors[i]) is base + i: per-message link
      // accounting is one array index, no hashing.
      const auto neighbors = net.topology().neighbors(v);
      const std::size_t base = eng_.links_.base(v);
      const auto deliver = [&](NodeId neighbor, std::size_t slot,
                               MessageRef msg, const MessageSize& size) {
        stats.traffic += size;
        if (trace != nullptr) trace->on_message(stage, v, neighbor, size);
        inbox_[neighbor].push_back(std::move(msg));
        ++produced;
        ++stats.messages;
        stats.max_link_messages =
            std::max(stats.max_link_messages, ++eng_.links_.count[slot]);
      };
      if (!agent.filters_exports()) {
        // Identity export: all neighbors share one immutable payload
        // instead of a deep copy of the full table per neighbor.
        if (!out->entries.empty()) {
          const auto shared =
              std::make_shared<const TableMessage>(std::move(*out));
          const MessageSize size = measure(*shared);
          for (std::size_t i = 0; i < neighbors.size(); ++i)
            deliver(neighbors[i], base + i, shared, size);
        }
      } else {
        for (std::size_t i = 0; i < neighbors.size(); ++i) {
          TableMessage filtered = agent.export_filter(neighbors[i], *out);
          if (filtered.entries.empty()) continue;
          const MessageSize size = measure(filtered);
          deliver(neighbors[i], base + i,
                  std::make_shared<const TableMessage>(std::move(filtered)),
                  size);
        }
      }
      out.reset();
    }
    if (!had_input && produced == 0) {
      stats.converged = true;  // probe stage: nothing happened, not counted
      if (trace != nullptr) trace->on_quiescent(stats.stages);
      break;
    }
    stats.stages = stage;
    if (++executed >= max_stages) break;
  }
  // The unified clock: under the stage scheduler logical time is the stage
  // number, so the time fields mirror the stage fields.
  stats.end_time = stats.stages;
  stats.last_route_change_time = stats.last_route_change_stage;
  stats.last_value_change_time = stats.last_value_change_stage;

  RunStats segment = stats;
  segment.stages -= before.stages;
  segment.messages -= before.messages;
  segment.traffic -= before.traffic;
  segment.converged = stats.converged;
  return segment;
}

// ---------------------------------------------------------------------------
// EventScheduler: discrete-event delivery through the channel model
// ---------------------------------------------------------------------------

/// Runs the network as a discrete-event simulation: every message is an
/// event delivered at a channel-chosen virtual time (per-link FIFO — BGP
/// sessions run over TCP), nodes recompute on each delivery, and fault
/// injection (loss, flaps, partitions) is woven into the same event queue.
/// Correctness under this scheduler is exactly the paper's monotone-
/// convergence argument: no synchrony is assumed, only eventual delivery.
class EventScheduler final : public Scheduler {
 public:
  explicit EventScheduler(Engine& eng)
      : eng_(eng),
        rng_(eng.config_.channel.seed),
        last_advert_time_(eng.net_.node_count(), -1e18),
        poll_scheduled_(eng.net_.node_count(), 0),
        active_(eng.net_.node_count(), 0),
        outputs_(eng.net_.node_count()) {}

  RunStats run(Stage max_stages) override;
  double now() const override { return now_; }

 private:
  using MessageRef = Engine::MessageRef;

  struct Event {
    enum class Kind : std::uint8_t {
      kDeliver,        ///< msg arrives at node (from peer, session-stamped)
      kPoll,           ///< node's MRAI window expired; recompute+advertise
      kLinkDown,       ///< fault injection: cut link {node, peer}
      kLinkUp,         ///< fault injection: restore link {node, peer}
      kPartitionDown,  ///< fault injection: cut partition #index
      kPartitionUp,    ///< fault injection: heal partition #index
    };
    double time = 0;
    std::uint64_t seq = 0;  ///< FIFO tie-break: equal times keep send order
    Kind kind = Kind::kDeliver;
    NodeId node = kInvalidNode;
    NodeId peer = kInvalidNode;
    std::uint32_t session = 0;  ///< link epoch at send time (kDeliver)
    std::size_t index = 0;      ///< partition index (kPartition*)
    MessageRef msg;

    friend bool operator>(const Event& a, const Event& b) {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  double sample_delay();
  void push(Event ev) { queue_.push(std::move(ev)); }
  void send(NodeId from, NodeId to, std::size_t slot, MessageRef msg,
            const MessageSize& size);
  void flood(NodeId sender, TableMessage&& out);
  void note_changes(NodeId node);
  void activate(NodeId node);
  void kick_all();
  void schedule_faults();
  void link_down(NodeId u, NodeId v);
  void link_up(NodeId u, NodeId v);
  void partition_down(std::size_t index);
  void partition_up(std::size_t index);
  void activate_endpoints(const std::vector<std::pair<NodeId, NodeId>>& links);

  Engine& eng_;
  util::Rng rng_;
  double now_ = 0;
  std::uint64_t next_seq_ = 0;
  Stage tick_ = 0;  ///< processed-event ordinal: the trace "stage"
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  std::vector<double> last_advert_time_;
  std::vector<char> poll_scheduled_;
  std::vector<char> active_;  ///< kick_all scratch: node advertises this wave
  std::vector<std::optional<TableMessage>> outputs_;  ///< kick_all scratch
  bool faults_scheduled_ = false;
  /// Per partition: the cross links cut at down_time, restored at up_time.
  std::vector<std::vector<std::pair<NodeId, NodeId>>> partition_cut_;
};

double EventScheduler::sample_delay() {
  const ChannelConfig& ch = eng_.config_.channel;
  switch (ch.delay) {
    case ChannelConfig::Delay::kFixed:
      return ch.min_delay;
    case ChannelConfig::Delay::kUniform:
      return ch.min_delay + rng_.uniform01() * (ch.max_delay - ch.min_delay);
    case ChannelConfig::Delay::kPareto:
      return ch.min_delay *
             rng_.pareto(ch.pareto_alpha, ch.max_delay / ch.min_delay);
  }
  FPSS_ASSERT(false);
  return ch.min_delay;
}

void EventScheduler::send(NodeId from, NodeId to, std::size_t slot,
                          MessageRef msg, const MessageSize& size) {
  const ChannelConfig& ch = eng_.config_.channel;
  double delay = sample_delay();
  // i.i.d. loss with eventual delivery: each lost copy costs one RTO plus a
  // fresh transmission delay; the message always gets through in the end
  // (the TCP session retransmits), so loss slows convergence but cannot
  // forfeit it.
  while (ch.loss > 0 && rng_.chance(ch.loss)) {
    ++eng_.stats_.lost_messages;
    if (eng_.trace_ != nullptr) eng_.trace_->on_drop(tick_, from, to);
    delay += ch.rto + sample_delay();
  }
  // Per-link FIFO (the TCP session): never deliver before an earlier
  // message on the same directed link.
  double& clock = eng_.links_.fifo_clock[slot];
  clock = std::max(clock, now_ + delay);
  eng_.stats_.traffic += size;
  ++eng_.stats_.messages;
  eng_.stats_.max_link_messages =
      std::max(eng_.stats_.max_link_messages, ++eng_.links_.count[slot]);
  if (eng_.trace_ != nullptr) eng_.trace_->on_message(tick_, from, to, size);
  Event ev;
  ev.time = clock;
  ev.seq = next_seq_++;
  ev.kind = Event::Kind::kDeliver;
  ev.node = to;
  ev.peer = from;
  ev.session = eng_.links_.epoch[slot];
  ev.msg = std::move(msg);
  push(std::move(ev));
}

void EventScheduler::flood(NodeId sender, TableMessage&& out) {
  Agent& agent = eng_.net_.agent(sender);
  const auto neighbors = eng_.net_.topology().neighbors(sender);
  const std::size_t base = eng_.links_.base(sender);
  if (!agent.filters_exports()) {
    // Identity export: all neighbors share one immutable payload.
    if (out.entries.empty()) return;
    const auto shared = std::make_shared<const TableMessage>(std::move(out));
    const MessageSize size = measure(*shared);
    for (std::size_t i = 0; i < neighbors.size(); ++i)
      send(sender, neighbors[i], base + i, shared, size);
  } else {
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      TableMessage filtered = agent.export_filter(neighbors[i], out);
      if (filtered.entries.empty()) continue;
      const MessageSize size = measure(filtered);
      send(sender, neighbors[i], base + i,
           std::make_shared<const TableMessage>(std::move(filtered)), size);
    }
  }
}

void EventScheduler::note_changes(NodeId node) {
  Agent& agent = eng_.net_.agent(node);
  if (agent.routes_changed_last_compute()) {
    eng_.stats_.last_route_change_time = now_;
    if (eng_.trace_ != nullptr) eng_.trace_->on_route_change(tick_, node);
  }
  if (agent.values_changed_last_compute()) {
    eng_.stats_.last_value_change_time = now_;
    if (eng_.trace_ != nullptr) eng_.trace_->on_value_change(tick_, node);
  }
}

void EventScheduler::activate(NodeId node) {
  const ChannelConfig& ch = eng_.config_.channel;
  if (ch.mrai > 0 && now_ < last_advert_time_[node] + ch.mrai) {
    // MRAI: defer this node's computation+advertisement; batch updates.
    if (!poll_scheduled_[node]) {
      poll_scheduled_[node] = 1;
      Event ev;
      ev.time = last_advert_time_[node] + ch.mrai;
      ev.seq = next_seq_++;
      ev.kind = Event::Kind::kPoll;
      ev.node = node;
      push(std::move(ev));
    }
    return;
  }
  std::optional<TableMessage> out = eng_.net_.agent(node).advertise();
  note_changes(node);
  if (out.has_value()) {
    last_advert_time_[node] = now_;
    flood(node, std::move(*out));
  }
}

void EventScheduler::kick_all() {
  Network& net = eng_.net_;
  const std::size_t n = net.node_count();
  const ChannelConfig& ch = eng_.config_.channel;
  // Serial: decide MRAI deferral per node (may schedule poll events).
  for (NodeId v = 0; v < n; ++v) {
    if (ch.mrai > 0 && now_ < last_advert_time_[v] + ch.mrai) {
      active_[v] = 0;
      if (!poll_scheduled_[v]) {
        poll_scheduled_[v] = 1;
        Event ev;
        ev.time = last_advert_time_[v] + ch.mrai;
        ev.seq = next_seq_++;
        ev.kind = Event::Kind::kPoll;
        ev.node = v;
        push(std::move(ev));
      }
    } else {
      active_[v] = 1;
    }
  }
  // Parallel compute phase: each node only touches its own state. This is
  // the wave where the thread pool pays off under the event scheduler —
  // once the queue is draining, deliveries are inherently one-at-a-time.
  auto compute_node = [&](std::size_t v_) {
    const NodeId v = static_cast<NodeId>(v_);
    if (active_[v]) outputs_[v] = net.agent(v).advertise();
  };
  if (eng_.pool_ != nullptr && n > 1) {
    eng_.pool_->parallel_for(n, compute_node);
  } else {
    for (NodeId v = 0; v < n; ++v) compute_node(v);
  }
  // Serial accounting + flood, node order: delays/loss draws and seq
  // numbers come out in a fixed order, keeping runs seed-reproducible at
  // any thread count.
  for (NodeId v = 0; v < n; ++v) {
    if (!active_[v]) continue;
    note_changes(v);
    if (outputs_[v].has_value()) {
      last_advert_time_[v] = now_;
      flood(v, std::move(*outputs_[v]));
    }
    outputs_[v].reset();
  }
}

void EventScheduler::schedule_faults() {
  const ChannelConfig& ch = eng_.config_.channel;
  for (const LinkFlap& flap : ch.flaps) {
    Event down;
    down.time = flap.down_time;
    down.seq = next_seq_++;
    down.kind = Event::Kind::kLinkDown;
    down.node = flap.u;
    down.peer = flap.v;
    push(std::move(down));
    if (flap.up_time > flap.down_time) {
      Event up;
      up.time = flap.up_time;
      up.seq = next_seq_++;
      up.kind = Event::Kind::kLinkUp;
      up.node = flap.u;
      up.peer = flap.v;
      push(std::move(up));
    }
  }
  partition_cut_.resize(ch.partitions.size());
  for (std::size_t i = 0; i < ch.partitions.size(); ++i) {
    Event down;
    down.time = ch.partitions[i].down_time;
    down.seq = next_seq_++;
    down.kind = Event::Kind::kPartitionDown;
    down.index = i;
    push(std::move(down));
    if (ch.partitions[i].up_time > ch.partitions[i].down_time) {
      Event up;
      up.time = ch.partitions[i].up_time;
      up.seq = next_seq_++;
      up.kind = Event::Kind::kPartitionUp;
      up.index = i;
      push(std::move(up));
    }
  }
}

void EventScheduler::activate_endpoints(
    const std::vector<std::pair<NodeId, NodeId>>& links) {
  // Activate each affected node once, in node order (repeat activations
  // are harmless — advertise() is a no-op without changes — but the
  // deduped order keeps the event sequence deterministic and minimal).
  std::fill(active_.begin(), active_.end(), 0);
  for (const auto& [a, b] : links) active_[a] = active_[b] = 1;
  for (NodeId v = 0; v < eng_.net_.node_count(); ++v)
    if (active_[v]) activate(v);
}

void EventScheduler::link_down(NodeId u, NodeId v) {
  // has_edge guard: overlapping faults (a partition may already have cut
  // this link) make the event a no-op instead of a contract violation.
  if (!eng_.net_.topology().has_edge(u, v)) return;
  eng_.net_.remove_link(u, v);
  eng_.links_.sync(eng_.net_.topology());
  if (eng_.trace_ != nullptr) eng_.trace_->on_link_event(tick_, u, v, false);
  activate_endpoints({{u, v}});
}

void EventScheduler::link_up(NodeId u, NodeId v) {
  if (eng_.net_.topology().has_edge(u, v)) return;
  eng_.net_.add_link(u, v);
  eng_.links_.sync(eng_.net_.topology());
  if (eng_.trace_ != nullptr) eng_.trace_->on_link_event(tick_, u, v, true);
  activate_endpoints({{u, v}});
}

void EventScheduler::partition_down(std::size_t index) {
  Network& net = eng_.net_;
  std::vector<char> in_group(net.node_count(), 0);
  for (NodeId g : eng_.config_.channel.partitions[index].group) in_group[g] = 1;
  std::vector<std::pair<NodeId, NodeId>>& cut = partition_cut_[index];
  cut.clear();
  for (const auto& [a, b] : net.topology().edges())
    if (in_group[a] != in_group[b]) cut.emplace_back(a, b);
  for (const auto& [a, b] : cut) {
    net.remove_link(a, b);
    if (eng_.trace_ != nullptr) eng_.trace_->on_link_event(tick_, a, b, false);
  }
  eng_.links_.sync(net.topology());
  activate_endpoints(cut);
}

void EventScheduler::partition_up(std::size_t index) {
  Network& net = eng_.net_;
  std::vector<std::pair<NodeId, NodeId>> healed;
  for (const auto& [a, b] : partition_cut_[index]) {
    // A link another fault already restored (or re-cut) stays as is.
    if (net.topology().has_edge(a, b)) continue;
    net.add_link(a, b);
    healed.emplace_back(a, b);
    if (eng_.trace_ != nullptr) eng_.trace_->on_link_event(tick_, a, b, true);
  }
  partition_cut_[index].clear();
  eng_.links_.sync(net.topology());
  activate_endpoints(healed);
}

RunStats EventScheduler::run(Stage max_stages) {
  (void)max_stages;  // the event scheduler's cap is message-count based
  const RunStats before = eng_.stats_;
  eng_.bootstrap_agents();
  eng_.links_.sync(eng_.net_.topology());
  if (!faults_scheduled_) {
    schedule_faults();
    faults_scheduled_ = true;
  }
  // Kick every node once (covers both cold start and post-event restarts).
  kick_all();

  eng_.stats_.converged = true;
  while (!queue_.empty()) {
    if (eng_.stats_.messages > eng_.config_.max_messages) {
      eng_.stats_.converged = false;
      break;
    }
    Event ev = queue_.top();
    queue_.pop();
    now_ = std::max(now_, ev.time);
    ++tick_;
    switch (ev.kind) {
      case Event::Kind::kDeliver: {
        // Deliveries are session-stamped: if the link vanished, or flapped
        // and came back (new epoch = new TCP session), the in-flight
        // message died with the old session.
        const std::size_t slot = eng_.links_.slot(ev.peer, ev.node);
        if (slot == Engine::LinkLedger::npos ||
            eng_.links_.epoch[slot] != ev.session) {
          ++eng_.stats_.lost_messages;
          if (eng_.trace_ != nullptr)
            eng_.trace_->on_drop(tick_, ev.peer, ev.node);
          break;
        }
        eng_.net_.agent(ev.node).receive(*ev.msg);
        activate(ev.node);
        break;
      }
      case Event::Kind::kPoll:
        poll_scheduled_[ev.node] = 0;
        activate(ev.node);
        break;
      case Event::Kind::kLinkDown:
        link_down(ev.node, ev.peer);
        break;
      case Event::Kind::kLinkUp:
        link_up(ev.node, ev.peer);
        break;
      case Event::Kind::kPartitionDown:
        partition_down(ev.index);
        break;
      case Event::Kind::kPartitionUp:
        partition_up(ev.index);
        break;
    }
  }
  eng_.stats_.end_time = now_;
  if (eng_.trace_ != nullptr && eng_.stats_.converged)
    eng_.trace_->on_quiescent(tick_);

  RunStats segment = eng_.stats_;
  segment.messages -= before.messages;
  segment.traffic -= before.traffic;
  segment.lost_messages -= before.lost_messages;
  return segment;
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

Engine::Engine(Network& net, EngineConfig config)
    : net_(net), config_(config) {
  config_.threads = std::max(1u, config_.threads);
  const ChannelConfig& ch = config_.channel;
  if (config_.scheduler == SchedulerKind::kStage) {
    // The stage scheduler is the paper's ideal lockstep model: faults are
    // a property of asynchronous channels, so they require kEvent.
    FPSS_EXPECTS(ch.fault_free());
  } else {
    FPSS_EXPECTS(ch.min_delay > 0 && ch.max_delay >= ch.min_delay);
    FPSS_EXPECTS(ch.loss >= 0 && ch.loss < 1);
    FPSS_EXPECTS(ch.rto >= 0);
    FPSS_EXPECTS(ch.pareto_alpha > 0);
    for (const LinkFlap& flap : ch.flaps) {
      FPSS_EXPECTS(net_.topology().contains(flap.u) &&
                   net_.topology().contains(flap.v) && flap.u != flap.v);
      FPSS_EXPECTS(flap.down_time >= 0);
    }
    for (const PartitionEvent& part : ch.partitions) {
      FPSS_EXPECTS(part.down_time >= 0);
      for (NodeId g : part.group) FPSS_EXPECTS(net_.topology().contains(g));
    }
  }
  if (config_.threads > 1)
    pool_ = std::make_unique<util::ThreadPool>(config_.threads);
  if (config_.scheduler == SchedulerKind::kStage)
    scheduler_ = std::make_unique<StageScheduler>(*this);
  else
    scheduler_ = std::make_unique<EventScheduler>(*this);
}

Engine::Engine(Network& net, unsigned threads)
    : Engine(net, EngineConfig::stage(threads)) {}

Engine::~Engine() = default;

RunStats Engine::run() { return run(config_.max_stages); }

RunStats Engine::run(Stage max_stages) {
  const RunStats segment = scheduler_->run(max_stages);
  if (segment.converged) ++converged_epochs_;
  return segment;
}

double Engine::now() const { return scheduler_->now(); }

util::ThreadPool* Engine::ensure_pool(unsigned width) {
  if (width > 1 && (pool_ == nullptr || pool_->width() < width))
    pool_ = std::make_unique<util::ThreadPool>(width);
  return pool_.get();
}

void Engine::bootstrap_agents() {
  if (bootstrapped_) return;
  const std::size_t n = net_.node_count();
  auto boot = [&](std::size_t v) {
    net_.agent(static_cast<NodeId>(v)).bootstrap();
  };
  if (pool_ != nullptr && n > 1) {
    pool_->parallel_for(n, boot);
  } else {
    for (std::size_t v = 0; v < n; ++v) boot(v);
  }
  bootstrapped_ = true;
}

}  // namespace fpss::bgp
