// Observability for the protocol engine: a trace-sink interface the Engine
// reports to under every scheduler, plus ready-made sinks — a text logger
// for debugging and a per-stage series recorder that captures the
// convergence curve (messages/words/changes per stage) used by examples and
// analyses. Under the stage scheduler the Stage argument is the lockstep
// stage number; under the event scheduler it is the processed-event ordinal
// (a monotone tick), so sinks keyed on it still see a totally ordered run.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "bgp/message.h"
#include "util/table.h"
#include "util/types.h"

namespace fpss::bgp {

/// Observer of engine progress. All callbacks default to no-ops so sinks
/// override only what they need. Callbacks fire synchronously from the
/// engine; sinks must not mutate the network.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  virtual void on_stage_begin(Stage stage) { (void)stage; }
  virtual void on_message(Stage stage, NodeId from, NodeId to,
                          const MessageSize& size) {
    (void)stage;
    (void)from;
    (void)to;
    (void)size;
  }
  virtual void on_route_change(Stage stage, NodeId node) {
    (void)stage;
    (void)node;
  }
  virtual void on_value_change(Stage stage, NodeId node) {
    (void)stage;
    (void)node;
  }
  virtual void on_quiescent(Stage last_stage) { (void)last_stage; }

  /// Event scheduler only: a message died in the channel — either an
  /// i.i.d.-loss casualty (it will be retransmitted) or an in-flight
  /// delivery killed because its link flapped or was partitioned away.
  virtual void on_drop(Stage stage, NodeId from, NodeId to) {
    (void)stage;
    (void)from;
    (void)to;
  }
  /// Event scheduler only: fault injection took the link {u, v} down
  /// (up == false) or brought it back (up == true).
  virtual void on_link_event(Stage stage, NodeId u, NodeId v, bool up) {
    (void)stage;
    (void)u;
    (void)v;
    (void)up;
  }
};

/// Human-readable line per event, for debugging protocol runs.
class TextTrace : public TraceSink {
 public:
  explicit TextTrace(std::ostream& out) : out_(&out) {}

  void on_stage_begin(Stage stage) override;
  void on_message(Stage stage, NodeId from, NodeId to,
                  const MessageSize& size) override;
  void on_route_change(Stage stage, NodeId node) override;
  void on_value_change(Stage stage, NodeId node) override;
  void on_quiescent(Stage last_stage) override;
  void on_drop(Stage stage, NodeId from, NodeId to) override;
  void on_link_event(Stage stage, NodeId u, NodeId v, bool up) override;

 private:
  std::ostream* out_;
};

/// Records one row per stage: the convergence curve.
class StageSeries : public TraceSink {
 public:
  struct Row {
    Stage stage = 0;
    std::uint64_t messages = 0;
    std::uint64_t words = 0;
    std::uint32_t route_changes = 0;  ///< nodes whose routes changed
    std::uint32_t value_changes = 0;  ///< nodes whose prices changed
  };

  void on_stage_begin(Stage stage) override;
  void on_message(Stage stage, NodeId from, NodeId to,
                  const MessageSize& size) override;
  void on_route_change(Stage stage, NodeId node) override;
  void on_value_change(Stage stage, NodeId node) override;

  const std::vector<Row>& rows() const { return rows_; }

  /// Stage-by-stage table for printing.
  util::Table to_table() const;

 private:
  Row& current(Stage stage);
  std::vector<Row> rows_;
};

}  // namespace fpss::bgp
