// The computational model of Sect. 5: "The computation of a single router
// can be viewed as consisting of an infinite sequence of stages, where each
// stage consists of receiving routing tables from its neighbors, followed
// by local computation, followed (perhaps) by sending its own routing table
// to its neighbors (if its own routing table changed)."
//
// An Agent is the per-AS algorithm plugged into an engine (sync stages or
// asynchronous event delivery). PlainBgpAgent implements route computation
// only; the pricing module layers the Fig. 3 price computation on top.
#pragma once

#include <cstddef>
#include <optional>

#include "bgp/message.h"
#include "util/cost.h"
#include "util/types.h"

namespace fpss::bgp {

/// Router state footprint in words, for the E5 overhead experiment.
struct StateSize {
  std::size_t selected_words = 0;  ///< Loc-RIB: paths + costs
  std::size_t rib_in_words = 0;    ///< Adj-RIB-In copies of neighbor tables
  std::size_t value_words = 0;     ///< pricing extension state

  std::size_t base_words() const { return selected_words + rib_in_words; }
  std::size_t total_words() const { return base_words() + value_words; }
};

/// The algorithm run by one AS. Engines call: bootstrap() once, then per
/// activation any number of receive()s followed by one advertise().
class Agent {
 public:
  virtual ~Agent() = default;

  virtual NodeId id() const = 0;

  /// Prepare the initial advertisement (a node announces itself).
  virtual void bootstrap() = 0;

  /// Ingest one update from a neighbor. No recomputation yet.
  virtual void receive(const TableMessage& msg) = 0;

  /// Local computation: reselect routes, update prices, and build the
  /// update to flood to all current neighbors (nullopt = nothing changed,
  /// so nothing is sent — BGP is change-driven).
  virtual std::optional<TableMessage> advertise() = 0;

  /// Per-neighbor export policy: the engine passes the advertisement
  /// through this filter before delivering it to `neighbor`. The default
  /// exports everything (the paper's LCP-only model); Gao-Rexford agents
  /// prune entries and substitute withdrawals here. Returning a message
  /// with no entries suppresses the send.
  virtual TableMessage export_filter(NodeId neighbor,
                                     const TableMessage& msg) {
    (void)neighbor;
    return msg;
  }

  /// True iff export_filter may return something other than `msg`
  /// unchanged. When false (the default), the engine skips the filter and
  /// shares one immutable copy of the advertisement across all neighbors
  /// instead of deep-copying the table per neighbor. Any override of
  /// export_filter MUST also override this to return true.
  virtual bool filters_exports() const { return false; }

  // --- dynamic events (Sect. 6: route changes restart convergence) -------
  virtual void on_link_down(NodeId neighbor) = 0;
  virtual void on_link_up(NodeId neighbor) = 0;
  virtual void on_self_cost_change(Cost new_cost) = 0;

  // --- engine introspection ----------------------------------------------
  /// Did the last advertise() change any selected route?
  virtual bool routes_changed_last_compute() const = 0;
  /// Did the last advertise() change any pricing-extension value?
  virtual bool values_changed_last_compute() const = 0;

  virtual StateSize state_size() const = 0;
};

}  // namespace fpss::bgp
