#include "bgp/message.h"

namespace fpss::bgp {

MessageSize& MessageSize::operator+=(const MessageSize& other) {
  entries += other.entries;
  path_words += other.path_words;
  cost_words += other.cost_words;
  value_words += other.value_words;
  return *this;
}

MessageSize& MessageSize::operator-=(const MessageSize& other) {
  entries -= other.entries;
  path_words -= other.path_words;
  cost_words -= other.cost_words;
  value_words -= other.value_words;
  return *this;
}

MessageSize measure(const TableMessage& msg) {
  MessageSize size;
  size.entries = msg.entries.size();
  size.cost_words += 1;  // sender_cost
  for (const RouteAdvert& advert : msg.entries) {
    size.path_words += advert.path.size();
    size.cost_words += 1 + advert.node_costs.size();
    size.value_words += 2 * advert.transit_values.size();
  }
  return size;
}

}  // namespace fpss::bgp
