#include "bgp/rib.h"

#include <algorithm>

#include "routing/route.h"
#include "util/contract.h"

namespace fpss::bgp {

Rib::Rib(NodeId self, std::size_t node_count, Cost declared_cost)
    : self_(self), declared_cost_(declared_cost), selected_(node_count) {
  FPSS_EXPECTS(self < node_count);
  FPSS_EXPECTS(declared_cost.is_finite());
  // A router always has the trivial route to itself.
  selected_[self_] = SelectedRoute{{self_}, Cost::zero(), {declared_cost},
                                   kInvalidNode};
}

void Rib::set_declared_cost(Cost c) {
  FPSS_EXPECTS(c.is_finite());
  declared_cost_ = c;
  selected_[self_].node_costs = {c};  // keep the trivial self-route in sync
}

void Rib::ingest(NodeId neighbor, Cost neighbor_cost,
                 const RouteAdvert& advert) {
  FPSS_EXPECTS(neighbor < node_count() && neighbor != self_);
  FPSS_EXPECTS(advert.destination < node_count());
  neighbor_cost_[neighbor] = neighbor_cost;
  if (advert.is_withdrawal()) {
    rib_in_.erase(key(neighbor, advert.destination));
    return;
  }
  FPSS_EXPECTS(advert.path.front() == neighbor);
  FPSS_EXPECTS(advert.path.back() == advert.destination);
  FPSS_EXPECTS(advert.node_costs.size() == advert.path.size());
  rib_in_[key(neighbor, advert.destination)] = advert;
}

std::vector<NodeId> Rib::purge_neighbor(NodeId neighbor) {
  std::vector<NodeId> dropped;
  for (NodeId j = 0; j < node_count(); ++j) {
    if (rib_in_.erase(key(neighbor, j)) > 0) dropped.push_back(j);
  }
  neighbor_cost_.erase(neighbor);
  return dropped;
}

void Rib::clear_stored_values() {
  for (auto& [packed, advert] : rib_in_) {
    (void)packed;
    advert.transit_values.clear();
  }
}

bool Rib::reselect(NodeId destination) {
  FPSS_EXPECTS(destination < node_count());
  if (destination == self_) return false;

  routing::RouteRank best = routing::no_route();
  const RouteAdvert* best_advert = nullptr;
  for (const auto& [neighbor, cost] : neighbor_cost_) {
    const auto it = rib_in_.find(key(neighbor, destination));
    if (it == rib_in_.end()) continue;
    const RouteAdvert& advert = it->second;
    // Path-vector loop prevention: never use a route already through us.
    if (std::find(advert.path.begin(), advert.path.end(), self_) !=
        advert.path.end())
      continue;
    const Cost step = (neighbor == destination) ? Cost::zero() : cost;
    const routing::RouteRank rank{
        advert.cost + step, static_cast<std::uint32_t>(advert.path.size()),
        neighbor};
    if (rank < best) {
      best = rank;
      best_advert = &advert;
    }
  }

  SelectedRoute next;
  if (best_advert != nullptr) {
    next.path.reserve(best_advert->path.size() + 1);
    next.path.push_back(self_);
    next.path.insert(next.path.end(), best_advert->path.begin(),
                     best_advert->path.end());
    next.cost = best.cost;
    next.node_costs.reserve(best_advert->node_costs.size() + 1);
    next.node_costs.push_back(declared_cost_);
    next.node_costs.insert(next.node_costs.end(),
                           best_advert->node_costs.begin(),
                           best_advert->node_costs.end());
    next.next_hop = best.next_hop;
  }

  SelectedRoute& current = selected_[destination];
  const bool changed = current.path != next.path || current.cost != next.cost ||
                       current.node_costs != next.node_costs;
  if (changed) current = std::move(next);
  return changed;
}

bool Rib::force_select(NodeId destination, SelectedRoute route) {
  FPSS_EXPECTS(destination < node_count() && destination != self_);
  SelectedRoute& current = selected_[destination];
  const bool changed = current.path != route.path ||
                       current.cost != route.cost ||
                       current.node_costs != route.node_costs;
  if (changed) current = std::move(route);
  return changed;
}

const SelectedRoute& Rib::selected(NodeId destination) const {
  FPSS_EXPECTS(destination < node_count());
  return selected_[destination];
}

const RouteAdvert* Rib::stored(NodeId neighbor, NodeId destination) const {
  const auto it = rib_in_.find(key(neighbor, destination));
  return it == rib_in_.end() ? nullptr : &it->second;
}

std::vector<NodeId> Rib::known_neighbors() const {
  std::vector<NodeId> out;
  out.reserve(neighbor_cost_.size());
  for (const auto& [neighbor, cost] : neighbor_cost_) {
    (void)cost;
    out.push_back(neighbor);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void Rib::note_sender(NodeId neighbor, Cost neighbor_cost) {
  FPSS_EXPECTS(neighbor < node_count() && neighbor != self_);
  FPSS_EXPECTS(neighbor_cost.is_finite());
  neighbor_cost_[neighbor] = neighbor_cost;
}

Cost Rib::neighbor_cost(NodeId neighbor) const {
  const auto it = neighbor_cost_.find(neighbor);
  FPSS_EXPECTS(it != neighbor_cost_.end());
  return it->second;
}

std::size_t Rib::selected_words() const {
  std::size_t words = 0;
  for (const SelectedRoute& route : selected_) {
    if (!route.valid()) continue;
    words += route.path.size() + route.node_costs.size() + 1;
  }
  return words;
}

std::size_t Rib::adj_rib_in_words() const {
  std::size_t words = 0;
  for (const auto& [packed, advert] : rib_in_) {
    (void)packed;
    words += advert.path.size() + advert.node_costs.size() + 1 +
             2 * advert.transit_values.size();
  }
  return words;
}

}  // namespace fpss::bgp
