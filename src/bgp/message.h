// The extended BGP message format. Per Sect. 5-6, a routing update carries,
// per destination: the selected AS path and its total transit cost; and, for
// the pricing extension, the declared cost of every node on the path ("the
// reported cost of each transit node") plus the sender's current per-transit
// value array (price estimates p^k, or k-avoiding costs B^k in the
// avoidance-vector variant). "Our algorithm introduces additional state to
// the nodes and to the message exchanges between nodes, but it does not
// introduce any new messages to the protocol."
#pragma once

#include <cstddef>
#include <vector>

#include "graph/path.h"
#include "util/cost.h"
#include "util/types.h"

namespace fpss::bgp {

/// One routing-table entry as advertised to a neighbor.
struct RouteAdvert {
  NodeId destination = kInvalidNode;

  /// Full AS path, sender first, destination last. Empty = withdrawal
  /// (the sender lost its route to this destination).
  graph::Path path;

  /// c(sender, destination): total transit cost of `path`.
  Cost cost = Cost::infinity();

  /// Declared per-node costs aligned with `path` (node_costs[t] is the
  /// declared cost of path[t]). This floods every on-path cost hop by hop.
  std::vector<Cost> node_costs;

  /// The pricing extension's payload: for each *transit* node k of `path`,
  /// the sender's current estimate — p^k_{sender,dest} under the price
  /// protocol of Fig. 3, or Cost(P_k(c;sender,dest)) under the
  /// avoidance-vector variant. Entries may be infinite (still unknown).
  std::vector<std::pair<NodeId, Cost>> transit_values;

  bool is_withdrawal() const { return path.empty(); }
};

/// One routing update: the sender's changed (or full) table plus its own
/// declared transit cost.
struct TableMessage {
  NodeId sender = kInvalidNode;
  Cost sender_cost;  ///< declared c_sender, piggybacked on every exchange
  std::vector<RouteAdvert> entries;
};

/// Size accounting for the E5 communication-overhead experiment, in
/// abstract "words" (one word per AS number or cost value).
struct MessageSize {
  std::size_t entries = 0;
  std::size_t path_words = 0;    ///< AS numbers in advertised paths
  std::size_t cost_words = 0;    ///< path cost + per-node cost fields
  std::size_t value_words = 0;   ///< pricing-extension payload

  std::size_t base_words() const { return entries + path_words + cost_words; }
  std::size_t total_words() const { return base_words() + value_words; }

  MessageSize& operator+=(const MessageSize& other);
  MessageSize& operator-=(const MessageSize& other);
};

MessageSize measure(const TableMessage& msg);

}  // namespace fpss::bgp
