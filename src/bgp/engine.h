// The unified protocol engine core for the Sect. 5 computational model —
// and for everything the paper's model idealizes away.
//
// One `Engine` drives a `Network` to quiescence through two pluggable
// seams:
//
//  * **Scheduler** (SchedulerKind) — who computes when, and what the
//    logical clock means:
//      - kStage: the lockstep stage model the paper's bounds are stated in
//        ("BGP converges within d stages"; the extended protocol "converges
//        in at most max(d, d')  stages", Theorem 2). Behaviour and stats are
//        bit-for-bit those of the historical SyncEngine.
//      - kEvent: a discrete-event scheduler delivering individual messages
//        at channel-chosen virtual times (subsuming the historical
//        AsyncEngine). The algorithm's correctness rests only on monotone
//        convergence, so it must — and, tests prove, does — reach the exact
//        same routes and prices without the synchrony assumption.
//
//  * **Channel model** (ChannelConfig) — per-link delivery semantics under
//    the event scheduler: fixed / uniform / heavy-tailed (Pareto) delays,
//    MRAI-style advertisement batching, and seeded fault injection —
//    i.i.d. message loss with eventual-delivery retransmission semantics
//    (BGP sessions run over TCP), deterministic timed link flaps, and
//    temporary partitions. All randomness flows from one seed; every run
//    is reproducible.
//
// Kernel capabilities are scheduler-independent: TraceSink observability,
// the persistent deterministic-partition ThreadPool compute phase, shared
// immutable TableMessage exports (identity export filters share one
// refcounted payload across neighbors), reused per-activation buffers, and
// flat per-directed-link accounting (no hashing on the per-message path)
// all work under both schedulers.
//
// Engines count every message, entry, and word exchanged (E5), and record
// the last logical time at which any route or price changed (E4/E6) on a
// unified clock: under kStage the clock equals the stage number; under
// kEvent it is the virtual event time.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "bgp/agent.h"
#include "bgp/message.h"
#include "graph/graph.h"
#include "util/thread_pool.h"
#include "util/types.h"

namespace fpss::bgp {

/// Builds the per-AS algorithm for one node; the engine owns the result.
using AgentFactory =
    std::function<std::unique_ptr<Agent>(NodeId self, std::size_t node_count,
                                         Cost declared_cost)>;

/// A set of ASs wired by the AS graph. Owns both the (mutable) topology and
/// the agents; dynamic events go through here so agents get notified.
class Network {
 public:
  Network(const graph::Graph& g, const AgentFactory& factory);

  std::size_t node_count() const { return agents_.size(); }
  const graph::Graph& topology() const { return graph_; }
  Agent& agent(NodeId v);
  const Agent& agent(NodeId v) const;

  // --- dynamic events ----------------------------------------------------
  void change_cost(NodeId v, Cost new_cost);
  void remove_link(NodeId u, NodeId v);
  void add_link(NodeId u, NodeId v);

  /// Aggregate router state across all nodes (E5).
  StateSize total_state() const;
  StateSize max_state() const;

 private:
  graph::Graph graph_;
  std::vector<std::unique_ptr<Agent>> agents_;
};

/// Counters for one engine run (cumulative across run() calls).
struct RunStats {
  Stage stages = 0;            ///< lockstep stages executed (stage scheduler)
  std::uint64_t messages = 0;  ///< point-to-point messages sent
  MessageSize traffic;         ///< cumulative message payload
  Stage last_route_change_stage = 0;  ///< 1-based; 0 = never changed
  Stage last_value_change_stage = 0;  ///< pricing extension convergence
  std::uint64_t max_link_messages = 0;
  /// Unified logical clock: stage number under the stage scheduler, virtual
  /// event time under the event scheduler.
  double end_time = 0;                ///< clock at quiescence
  double last_route_change_time = 0;
  double last_value_change_time = 0;
  /// Channel-fault casualties: retransmitted copies eaten by i.i.d. loss
  /// plus in-flight deliveries killed by a link flap / partition.
  std::uint64_t lost_messages = 0;
  bool converged = false;      ///< quiesced before hitting the cap
};

/// Which scheduler drives the run. See the file comment.
enum class SchedulerKind {
  kStage,  ///< the paper's lockstep stage model (default)
  kEvent,  ///< discrete-event delivery through the channel model
};

/// One deterministic link flap: the link goes down at `down_time` and (if
/// `up_time > down_time`) comes back at `up_time`. Virtual times are on the
/// event scheduler's clock. In-flight messages on the flapped link are lost
/// (the TCP session dies); after the flap the session restarts.
struct LinkFlap {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;
  double down_time = 0;
  double up_time = 0;  ///< <= down_time means the link never comes back
};

/// A temporary partition: at `down_time` every link between `group` and the
/// rest of the network is cut; at `up_time` exactly those links return.
struct PartitionEvent {
  std::vector<NodeId> group;
  double down_time = 0;
  double up_time = 0;  ///< <= down_time means the partition is permanent
};

/// Per-link delivery semantics (event scheduler). The stage scheduler is
/// the paper's ideal lockstep model and requires `fault_free()` — faults
/// are a property of asynchronous channels, not of the proof model.
struct ChannelConfig {
  enum class Delay {
    kFixed,    ///< every message takes exactly min_delay
    kUniform,  ///< uniform in [min_delay, max_delay]
    kPareto,   ///< heavy-tailed: min_delay * Pareto(alpha), capped at max_delay
  };

  Delay delay = Delay::kUniform;
  double min_delay = 0.1;
  double max_delay = 1.0;
  double pareto_alpha = 1.5;  ///< tail shape for Delay::kPareto

  /// MinRouteAdvertisementInterval: a node's consecutive advertisements are
  /// spaced at least `mrai` apart (updates batch up in the meantime).
  double mrai = 0.0;

  /// i.i.d. per-transmission loss probability in [0, 1). A lost copy is
  /// retransmitted after `rto` (plus a fresh delay draw) until it gets
  /// through — eventual delivery, as over TCP — so loss delays but never
  /// forfeits convergence. Lost copies count into RunStats::lost_messages.
  double loss = 0.0;
  double rto = 1.0;  ///< retransmission timeout added per lost copy

  std::uint64_t seed = 1;  ///< drives delays and loss; same seed, same run

  std::vector<LinkFlap> flaps;
  std::vector<PartitionEvent> partitions;

  bool fault_free() const {
    return loss == 0 && flaps.empty() && partitions.empty();
  }
};

/// Everything that shapes a run. Prefer the `stage()` / `event()` builders
/// for the two common cases.
struct EngineConfig {
  SchedulerKind scheduler = SchedulerKind::kStage;
  /// Parallel width of the compute phase (stage ingest/recompute and the
  /// event scheduler's activation waves). Results are bit-identical at any
  /// width; see util::ThreadPool.
  unsigned threads = 1;
  Stage max_stages = 100000;               ///< per-run() stage cap (kStage)
  std::uint64_t max_messages = 50'000'000; ///< cumulative cap (kEvent)
  ChannelConfig channel;

  static EngineConfig stage(unsigned threads = 1) {
    EngineConfig config;
    config.threads = threads;
    return config;
  }
  static EngineConfig event(ChannelConfig channel = {}) {
    EngineConfig config;
    config.scheduler = SchedulerKind::kEvent;
    config.channel = channel;
    return config;
  }
};

class TraceSink;
class Engine;
class StageScheduler;
class EventScheduler;

/// The scheduler seam: a strategy owning activation order and the logical
/// clock, driving the shared kernel (accounting, trace, thread pool, link
/// ledger). Engine instantiates one per SchedulerKind; new execution models
/// plug in here instead of forking a third engine.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Drives the network until quiescence or a cap; returns this segment's
  /// stats (counters diffed against the start of the call, convergence
  /// markers absolute). May be called again after dynamic events.
  virtual RunStats run(Stage max_stages) = 0;

  /// Current logical clock (stage number / virtual time).
  virtual double now() const = 0;
};

/// The engine: one kernel, pluggable scheduler and channel.
///
/// With `threads > 1` the per-node local computation (ingesting input and
/// recomputing routes/prices) runs on a persistent deterministic-partition
/// thread pool that lives for the whole engine. Agents only touch their own
/// state during that phase, and message delivery stays serialized in node
/// order, so results are bit-identical to the single-threaded engine.
///
/// set_trace => serial only where it matters: every TraceSink callback is
/// emitted from the serial accounting/delivery phase, in deterministic
/// order, never from the parallel compute phase — attaching a trace neither
/// forces the compute phase serial nor requires a synchronized sink.
class Engine {
 public:
  explicit Engine(Network& net, EngineConfig config = {});
  /// Stage-scheduler shorthand (the historical SyncEngine constructor).
  Engine(Network& net, unsigned threads);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Runs until quiescence (or the configured caps).
  RunStats run();
  /// Same, with a one-off stage cap (stage scheduler; ignored by kEvent,
  /// whose cap is message-count based).
  RunStats run(Stage max_stages);

  /// All counters since construction.
  const RunStats& stats() const { return stats_; }
  Stage current_stage() const { return stats_.stages; }
  /// Snapshot-export hook: how many run() segments have ended quiescent.
  /// Monotone, bumped only at convergence, so a reader holding state
  /// labelled with this value knows exactly which converged network it came
  /// from — the service layer uses it as the published snapshot version.
  std::uint64_t converged_epochs() const { return converged_epochs_; }
  /// Unified logical clock (== current_stage() under the stage scheduler).
  double now() const;
  /// The engine's persistent compute pool; nullptr when threads == 1.
  /// Exposed so converged-state consumers (snapshot export, sink-tree
  /// fingerprinting) can reuse the same deterministic-partition workers
  /// instead of spawning their own. Same ownership rule as the engine's own
  /// phases: one job at a time, submitted by the thread driving the engine.
  util::ThreadPool* pool() const { return pool_.get(); }
  /// Widens the compute pool to at least `width` workers (no-op when it is
  /// already that wide, including the width-1 "no pool" case when width <= 1).
  /// Exists for consumers like the publish pipeline that want more export
  /// concurrency than the protocol kernels were configured with: the engine's
  /// own phases are width-invariant (deterministic stride partition), so
  /// widening never changes protocol results. Must be called between jobs by
  /// the thread driving the engine — the same ownership rule as pool().
  util::ThreadPool* ensure_pool(unsigned width);
  SchedulerKind scheduler() const { return config_.scheduler; }
  const EngineConfig& config() const { return config_; }

  /// Attaches an observer (nullptr detaches). Not owned; must outlive the
  /// engine or be detached before destruction. Works under both schedulers.
  void set_trace(TraceSink* trace) { trace_ = trace; }

 private:
  friend class StageScheduler;
  friend class EventScheduler;

  /// Messages are shared, immutable after send: when an agent's export
  /// filter is the identity (filters_exports() == false) all neighbors
  /// receive the same refcounted payload instead of per-neighbor copies.
  using MessageRef = std::shared_ptr<const TableMessage>;

  /// Flat per-directed-link ledger: a CSR snapshot of the adjacency lists
  /// carrying the per-link message counters (E5's max_link_messages), the
  /// event scheduler's per-link FIFO clocks (BGP sessions run over TCP:
  /// deliveries on one directed link are ordered), and a TCP-session epoch
  /// used to kill in-flight messages across link flaps. The slot of
  /// (u, neighbors(u)[i]) is offset[u] + i, so the per-message accounting
  /// path is an array index — no hashing. sync() remaps the keyed state
  /// when Graph::version() moves; links that vanish drop their counters
  /// (a re-added link is a new TCP session and starts over).
  struct LinkLedger {
    static constexpr std::size_t npos = ~std::size_t{0};

    std::vector<std::size_t> offset;    ///< node -> first slot (n+1 fence)
    std::vector<NodeId> to;             ///< slot -> neighbor id
    std::vector<std::uint64_t> count;   ///< messages sent over this link
    std::vector<double> fifo_clock;     ///< latest promised delivery time
    std::vector<std::uint32_t> epoch;   ///< TCP-session generation
    std::uint64_t synced_version = ~std::uint64_t{0};
    std::uint32_t next_epoch = 0;

    void sync(const graph::Graph& g);
    std::size_t base(NodeId u) const { return offset[u]; }
    /// Slot of directed link (u, v); npos if the link does not exist.
    std::size_t slot(NodeId u, NodeId v) const;
  };

  /// bootstrap() every agent exactly once (parallel when a pool exists —
  /// agents only touch their own state there).
  void bootstrap_agents();

  Network& net_;
  EngineConfig config_;
  RunStats stats_;
  std::uint64_t converged_epochs_ = 0;
  TraceSink* trace_ = nullptr;
  std::unique_ptr<util::ThreadPool> pool_;  ///< non-null iff threads > 1
  LinkLedger links_;
  bool bootstrapped_ = false;
  /// Last member: destroyed first, while the kernel state it references
  /// is still alive.
  std::unique_ptr<Scheduler> scheduler_;
};

}  // namespace fpss::bgp
