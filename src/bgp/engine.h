// Protocol engines for the Sect. 5 computational model.
//
// * SyncEngine — the model the paper's bounds are stated in: all nodes
//   exchange routing tables in lockstep stages; "BGP converges within d
//   stages" and the extended protocol "converges in at most max(d, d')
//   stages" (Theorem 2).
// * AsyncEngine — a discrete-event scheduler with randomized per-message
//   delays (and an optional MRAI-style batching interval), showing the
//   computation also quiesces without the synchrony assumption.
//
// Engines count every message, entry, and word exchanged (E5), and record
// the last stage/time at which any route or price changed (E4/E6).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "bgp/agent.h"
#include "bgp/message.h"
#include "graph/graph.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/types.h"

namespace fpss::bgp {

/// Builds the per-AS algorithm for one node; the engine owns the result.
using AgentFactory =
    std::function<std::unique_ptr<Agent>(NodeId self, std::size_t node_count,
                                         Cost declared_cost)>;

/// A set of ASs wired by the AS graph. Owns both the (mutable) topology and
/// the agents; dynamic events go through here so agents get notified.
class Network {
 public:
  Network(const graph::Graph& g, const AgentFactory& factory);

  std::size_t node_count() const { return agents_.size(); }
  const graph::Graph& topology() const { return graph_; }
  Agent& agent(NodeId v);
  const Agent& agent(NodeId v) const;

  // --- dynamic events ----------------------------------------------------
  void change_cost(NodeId v, Cost new_cost);
  void remove_link(NodeId u, NodeId v);
  void add_link(NodeId u, NodeId v);

  /// Aggregate router state across all nodes (E5).
  StateSize total_state() const;
  StateSize max_state() const;

 private:
  graph::Graph graph_;
  std::vector<std::unique_ptr<Agent>> agents_;
};

/// Counters for one engine run (cumulative across run() calls).
struct RunStats {
  Stage stages = 0;            ///< sync stages executed until quiescence
  std::uint64_t messages = 0;  ///< point-to-point messages delivered
  MessageSize traffic;         ///< cumulative message payload
  Stage last_route_change_stage = 0;  ///< 1-based; 0 = never changed
  Stage last_value_change_stage = 0;  ///< pricing extension convergence
  std::uint64_t max_link_messages = 0;
  double async_end_time = 0;   ///< virtual clock at quiescence (async only)
  double last_route_change_time = 0;  ///< async analogues of the stages
  double last_value_change_time = 0;
  bool converged = false;      ///< quiesced before hitting the cap
};

class TraceSink;

/// Lockstep stage engine.
///
/// With `threads > 1` the per-node local computation of each stage
/// (ingesting the inbox and recomputing routes/prices) runs on a
/// persistent deterministic-partition thread pool (util::ThreadPool) that
/// lives for the whole engine, so a run of S stages costs one wake per
/// stage instead of S spawn/join cycles. Agents only touch their own
/// state during that phase, and message delivery stays serialized in node
/// order, so results are bit-identical to the single-threaded engine.
///
/// set_trace ⇒ serial only where it matters: every TraceSink callback is
/// emitted from the serial accounting+delivery phase, in node order, never
/// from the parallel compute phase — so attaching a trace neither forces
/// the compute phase serial nor requires a synchronized sink, and traced
/// runs are identical at any thread count.
class SyncEngine {
 public:
  explicit SyncEngine(Network& net, unsigned threads = 1);

  /// Runs stages until no node has anything to send, or `max_stages`.
  /// May be called again after dynamic events; stage numbering continues.
  RunStats run(Stage max_stages = 100000);

  /// All counters since construction.
  const RunStats& stats() const { return stats_; }
  Stage current_stage() const { return stats_.stages; }

  /// Attaches an observer (nullptr detaches). Not owned; must outlive the
  /// engine or be detached before destruction.
  void set_trace(TraceSink* trace) { trace_ = trace; }

 private:
  /// Messages are shared, immutable after send: when an agent's export
  /// filter is the identity (filters_exports() == false) all neighbors
  /// receive the same refcounted payload instead of per-neighbor copies.
  using MessageRef = std::shared_ptr<const TableMessage>;

  Network& net_;
  RunStats stats_;
  std::vector<std::vector<MessageRef>> inbox_;
  /// Per-stage scratch, sized once and reused so the hot loop does not
  /// reallocate: last stage's inboxes (capacity kept) and per-node outputs.
  std::vector<std::vector<MessageRef>> arriving_;
  std::vector<std::optional<TableMessage>> outputs_;
  std::unordered_map<std::uint64_t, std::uint64_t> link_messages_;
  TraceSink* trace_ = nullptr;
  unsigned threads_ = 1;
  std::unique_ptr<util::ThreadPool> pool_;  ///< non-null iff threads_ > 1
  bool bootstrapped_ = false;
};

/// Discrete-event engine with per-message latencies drawn uniformly from
/// [min_delay, max_delay]. If `mrai > 0`, a node's consecutive
/// advertisements are spaced at least `mrai` apart (updates batch up in the
/// meantime) — BGP's MinRouteAdvertisementInterval.
class AsyncEngine {
 public:
  struct Config {
    double min_delay = 0.1;
    double max_delay = 1.0;
    double mrai = 0.0;
    std::uint64_t seed = 1;
    std::uint64_t max_messages = 50'000'000;
  };

  AsyncEngine(Network& net, const Config& config);

  /// Runs until the event queue drains (or the message cap trips).
  RunStats run();

  const RunStats& stats() const { return stats_; }
  double now() const { return now_; }

 private:
  struct Event {
    double time = 0;
    std::uint64_t seq = 0;  // FIFO among equal times
    NodeId node = kInvalidNode;
    bool is_poll = false;   // poll = deferred advertise (MRAI)
    TableMessage msg;       // valid when !is_poll

    bool operator<(const Event& other) const {
      if (time != other.time) return time > other.time;  // min-heap
      return seq > other.seq;
    }
  };

  void flood(NodeId sender, const TableMessage& msg);
  void activate(NodeId node);

  Network& net_;
  Config config_;
  util::Rng rng_;
  RunStats stats_;
  std::priority_queue<Event> queue_;
  /// BGP sessions run over TCP: deliveries on one directed link are FIFO.
  std::unordered_map<std::uint64_t, double> link_clock_;
  std::vector<double> last_advert_time_;
  std::vector<char> poll_scheduled_;
  double now_ = 0;
  std::uint64_t next_seq_ = 0;
  bool bootstrapped_ = false;
};

}  // namespace fpss::bgp
