// Per-router routing information base: the Adj-RIB-In copies of neighbor
// tables (footnote 6: "Nodes keep the routing tables received from each of
// their neighbors") and the selected route per destination, recomputed by
// the canonical preference order of routing/route.h.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "bgp/message.h"
#include "graph/path.h"
#include "util/cost.h"
#include "util/types.h"

namespace fpss::bgp {

/// The route a router currently uses toward one destination.
struct SelectedRoute {
  graph::Path path;              ///< self first, destination last; empty = none
  Cost cost = Cost::infinity(); ///< transit cost of `path`
  std::vector<Cost> node_costs;  ///< declared costs aligned with `path`
  NodeId next_hop = kInvalidNode;

  bool valid() const { return !path.empty(); }
  std::uint32_t hops() const {
    return valid() ? static_cast<std::uint32_t>(path.size() - 1) : 0;
  }
};

/// Routing state of one router. Owns no protocol logic beyond route
/// selection; agents layer (re)advertisement policy and pricing on top.
class Rib {
 public:
  Rib(NodeId self, std::size_t node_count, Cost declared_cost);

  NodeId self() const { return self_; }
  std::size_t node_count() const { return selected_.size(); }
  Cost declared_cost() const { return declared_cost_; }
  void set_declared_cost(Cost c);

  /// Latest advert heard from `neighbor` about `destination` (withdrawals
  /// erase the entry). Also records the neighbor's declared cost.
  void ingest(NodeId neighbor, Cost neighbor_cost, const RouteAdvert& advert);

  /// Forgets everything heard from `neighbor` (session teardown). Returns
  /// the destinations whose stored advert was dropped.
  std::vector<NodeId> purge_neighbor(NodeId neighbor);

  /// Drops the pricing payload of every stored advert (restart barrier:
  /// price state must refill from post-restart messages only).
  void clear_stored_values();

  /// Recomputes the selected route for `destination` from the current
  /// Adj-RIB-In. Returns true iff the selection (path or cost) changed.
  bool reselect(NodeId destination);

  /// Installs an externally computed selection (policy routing overrides
  /// the canonical preference). Returns true iff it differs from the
  /// current one. Precondition: destination != self.
  bool force_select(NodeId destination, SelectedRoute route);

  const SelectedRoute& selected(NodeId destination) const;

  /// The neighbor's advert stored for (neighbor, destination), if any.
  const RouteAdvert* stored(NodeId neighbor, NodeId destination) const;

  /// Neighbors we have heard from, ascending.
  std::vector<NodeId> known_neighbors() const;

  /// Records `neighbor`'s declared cost without any route advert (every
  /// message carries the sender's cost, even a pure price refresh).
  void note_sender(NodeId neighbor, Cost neighbor_cost);

  bool heard_from(NodeId neighbor) const {
    return neighbor_cost_.contains(neighbor);
  }

  /// Declared cost of `neighbor` as last heard. Precondition: heard from it.
  Cost neighbor_cost(NodeId neighbor) const;

  /// Routing-table footprint in words (E5): selected paths + stored
  /// neighbor tables.
  std::size_t selected_words() const;
  std::size_t adj_rib_in_words() const;

 private:
  static std::uint64_t key(NodeId neighbor, NodeId destination) {
    return (static_cast<std::uint64_t>(neighbor) << 32) | destination;
  }

  NodeId self_;
  Cost declared_cost_;
  std::vector<SelectedRoute> selected_;
  std::unordered_map<std::uint64_t, RouteAdvert> rib_in_;
  std::unordered_map<NodeId, Cost> neighbor_cost_;
};

}  // namespace fpss::bgp
