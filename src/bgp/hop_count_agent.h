// Unmodified-BGP route selection: "BGP does not currently consider general
// path costs; in the cases in which AS policy seeks LCPs, the current BGP
// simply computes shortest AS paths in terms of number of AS hops"
// (Sect. 1). The paper assumes the trivial modification to true LCPs has
// been made; this agent implements the unmodified behaviour so experiments
// can measure what that modification is worth.
#pragma once

#include "bgp/engine.h"
#include "bgp/plain_agent.h"

namespace fpss::bgp {

/// Selects routes by (hops, then cost, then next-hop id): AS-path length
/// first, exactly like stock BGP with no cost attribute.
class HopCountBgpAgent : public PlainBgpAgent {
 public:
  using PlainBgpAgent::PlainBgpAgent;

  bool reselect_destination(NodeId destination) override;
};

AgentFactory make_hop_count_factory(UpdatePolicy policy);

}  // namespace fpss::bgp
