#include "payments/ledger.h"

#include "util/contract.h"

namespace fpss::payments {

Ledger::Ledger(std::size_t node_count)
    : owed_(node_count, 0), settled_(node_count, 0) {}

void Ledger::record_packets(const graph::Path& path, const PriceFn& price,
                            std::uint64_t packets) {
  FPSS_EXPECTS(path.size() >= 2);
  const NodeId i = path.front();
  const NodeId j = path.back();
  for (std::size_t t = 1; t + 1 < path.size(); ++t) {
    const NodeId k = path[t];
    const Cost p = price(k, i, j);
    FPSS_EXPECTS(p.is_finite());
    owed_[k] += static_cast<Cost::rep>(packets) * p.value();
  }
}

Cost::rep Ledger::owed(NodeId k) const {
  FPSS_EXPECTS(k < owed_.size());
  return owed_[k];
}

Cost::rep Ledger::settled(NodeId k) const {
  FPSS_EXPECTS(k < settled_.size());
  return settled_[k];
}

void Ledger::restore(std::vector<Cost::rep> owed,
                     std::vector<Cost::rep> settled) {
  FPSS_EXPECTS(owed.size() == owed_.size() &&
               settled.size() == settled_.size());
  owed_ = std::move(owed);
  settled_ = std::move(settled);
}

void Ledger::settle() {
  for (std::size_t k = 0; k < owed_.size(); ++k) {
    settled_[k] += owed_[k];
    owed_[k] = 0;
  }
}

Cost::rep Ledger::total_outstanding() const {
  Cost::rep sum = 0;
  for (Cost::rep o : owed_) sum += o;
  return sum;
}

std::vector<NodeStatement> settle_traffic(const graph::Graph& g,
                                          const routing::AllPairsRoutes& routes,
                                          const TrafficMatrix& traffic,
                                          const PriceFn& price) {
  FPSS_EXPECTS(traffic.node_count() == g.node_count());
  std::vector<NodeStatement> statements(g.node_count());
  for (NodeId i = 0; i < g.node_count(); ++i) {
    for (NodeId j = 0; j < g.node_count(); ++j) {
      if (i == j) continue;
      const std::uint64_t packets = traffic.at(i, j);
      if (packets == 0) continue;
      const graph::Path path = routes.path(i, j);
      for (std::size_t t = 1; t + 1 < path.size(); ++t) {
        const NodeId k = path[t];
        NodeStatement& s = statements[k];
        const Cost p = price(k, i, j);
        FPSS_EXPECTS(p.is_finite());
        s.revenue += static_cast<Cost::rep>(packets) * p.value();
        s.incurred += static_cast<Cost::rep>(packets) * g.cost(k).value();
        s.transit_packets += packets;
      }
    }
  }
  return statements;
}

}  // namespace fpss::payments
