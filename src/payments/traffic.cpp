#include "payments/traffic.h"

#include <cmath>

namespace fpss::payments {

TrafficMatrix::TrafficMatrix(std::size_t node_count)
    : n_(node_count), counts_(node_count * node_count, 0) {}

void TrafficMatrix::set(NodeId i, NodeId j, std::uint64_t packets) {
  FPSS_EXPECTS(i < n_ && j < n_);
  FPSS_EXPECTS(i != j || packets == 0);
  counts_[i * n_ + j] = packets;
}

void TrafficMatrix::add(NodeId i, NodeId j, std::uint64_t packets) {
  set(i, j, at(i, j) + packets);
}

std::uint64_t TrafficMatrix::total() const {
  std::uint64_t sum = 0;
  for (std::uint64_t c : counts_) sum += c;
  return sum;
}

TrafficMatrix TrafficMatrix::uniform(std::size_t node_count,
                                     std::uint64_t packets) {
  TrafficMatrix t(node_count);
  for (NodeId i = 0; i < node_count; ++i)
    for (NodeId j = 0; j < node_count; ++j)
      if (i != j) t.set(i, j, packets);
  return t;
}

TrafficMatrix TrafficMatrix::gravity(std::size_t node_count, double alpha,
                                     std::uint64_t mean, util::Rng& rng) {
  FPSS_EXPECTS(mean >= 1);
  TrafficMatrix t(node_count);
  std::vector<double> mass(node_count);
  double mass_sum = 0;
  for (double& m : mass) {
    m = rng.pareto(alpha, 1e6);
    mass_sum += m;
  }
  if (mass_sum == 0) return t;
  const double mean_mass = mass_sum / static_cast<double>(node_count);
  const double scale =
      static_cast<double>(mean) / (mean_mass * mean_mass);
  for (NodeId i = 0; i < node_count; ++i) {
    for (NodeId j = 0; j < node_count; ++j) {
      if (i == j) continue;
      const double expected = scale * mass[i] * mass[j];
      t.set(i, j, static_cast<std::uint64_t>(std::llround(expected)));
    }
  }
  return t;
}

TrafficMatrix TrafficMatrix::hotspot(std::size_t node_count,
                                     std::size_t hotspot_count,
                                     std::uint64_t packets_per_source,
                                     util::Rng& rng) {
  FPSS_EXPECTS(hotspot_count >= 1 && hotspot_count <= node_count);
  TrafficMatrix t(node_count);
  std::vector<NodeId> nodes(node_count);
  for (NodeId v = 0; v < node_count; ++v) nodes[v] = v;
  rng.shuffle(nodes);
  nodes.resize(hotspot_count);
  for (NodeId i = 0; i < node_count; ++i)
    for (NodeId h : nodes)
      if (i != h) t.set(i, h, packets_per_source);
  return t;
}

TrafficMatrix TrafficMatrix::sparse_random(std::size_t node_count,
                                           double density,
                                           std::uint64_t max_packets,
                                           util::Rng& rng) {
  FPSS_EXPECTS(density >= 0.0 && density <= 1.0);
  FPSS_EXPECTS(max_packets >= 1);
  TrafficMatrix t(node_count);
  for (NodeId i = 0; i < node_count; ++i) {
    for (NodeId j = 0; j < node_count; ++j) {
      if (i == j || !rng.chance(density)) continue;
      t.set(i, j, 1 + rng.below(max_packets));
    }
  }
  return t;
}

}  // namespace fpss::payments
