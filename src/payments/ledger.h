// Using the prices (Sect. 6.4): once every node knows the per-packet
// prices p^k_ij, revenue collection is counter-based — "every time a packet
// is sent from source i to a destination j, the counter for each node
// k != i, j that lies on the LCP is incremented by p^k_ij", and the running
// totals are submitted to the accounting mechanism at intervals.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.h"
#include "graph/path.h"
#include "routing/all_pairs.h"
#include "payments/traffic.h"
#include "util/cost.h"
#include "util/types.h"

namespace fpss::payments {

/// Price oracle: per-packet price owed to transit node k for an i -> j
/// packet. Must return zero when k is not on the selected i -> j path.
using PriceFn = std::function<Cost(NodeId k, NodeId i, NodeId j)>;

/// Per-node running charge counters (the O(n) additional storage the paper
/// budgets per node), with periodic settlement into a cumulative account.
class Ledger {
 public:
  explicit Ledger(std::size_t node_count);

  std::size_t node_count() const { return owed_.size(); }

  /// Charges `packets` packets traveling the given i -> j path: each
  /// transit node's counter grows by packets * p^k_ij.
  void record_packets(const graph::Path& path, const PriceFn& price,
                      std::uint64_t packets);

  /// Amount accrued to k since the last settlement.
  Cost::rep owed(NodeId k) const;

  /// Lifetime amount settled to k.
  Cost::rep settled(NodeId k) const;

  /// Whole-ledger copies (one entry per node), used by the service layer
  /// to embed payment totals into an immutable RouteSnapshot.
  std::vector<Cost::rep> owed_all() const { return owed_; }
  std::vector<Cost::rep> settled_all() const { return settled_; }

  /// Flushes all running counters into the settled accounts (the periodic
  /// submission "to whatever accounting and charging mechanisms are used").
  void settle();

  /// Replaces both account vectors wholesale — the warm-start path: a
  /// restarted RouteService reloads the totals its last published snapshot
  /// embedded, so accounting survives the restart. Precondition: both
  /// vectors have node_count() entries.
  void restore(std::vector<Cost::rep> owed, std::vector<Cost::rep> settled);

  Cost::rep total_outstanding() const;

 private:
  std::vector<Cost::rep> owed_;
  std::vector<Cost::rep> settled_;
};

/// One node's bottom line under a pricing scheme and traffic matrix.
struct NodeStatement {
  Cost::rep revenue = 0;            ///< sum of T_ij * p^k_ij over pairs routed through k
  Cost::rep incurred = 0;           ///< c_k * transit packets carried
  std::uint64_t transit_packets = 0;

  /// The agent's utility tau_k (Sect. 3): payment minus incurred cost.
  Cost::rep profit() const { return revenue - incurred; }
};

/// Full settlement: routes all traffic along the selected LCPs, charges
/// per-packet prices, and returns every node's statement. `g` supplies the
/// (true) per-node costs used for the incurred side.
std::vector<NodeStatement> settle_traffic(const graph::Graph& g,
                                          const routing::AllPairsRoutes& routes,
                                          const TrafficMatrix& traffic,
                                          const PriceFn& price);

}  // namespace fpss::payments
