// The traffic matrix [T_ij] of Sect. 3: the per-pair packet intensities
// that weight the per-packet prices into node payments
// p_k = sum_ij T_ij p^k_ij.
#pragma once

#include <cstdint>
#include <vector>

#include "util/contract.h"
#include "util/rng.h"
#include "util/types.h"

namespace fpss::payments {

/// Dense n x n matrix of packet counts. T[i][i] is always 0.
class TrafficMatrix {
 public:
  explicit TrafficMatrix(std::size_t node_count);

  std::size_t node_count() const { return n_; }

  std::uint64_t at(NodeId i, NodeId j) const {
    FPSS_EXPECTS(i < n_ && j < n_);
    return counts_[i * n_ + j];
  }

  void set(NodeId i, NodeId j, std::uint64_t packets);
  void add(NodeId i, NodeId j, std::uint64_t packets);

  /// Total packets across all pairs.
  std::uint64_t total() const;

  // --- Generators -------------------------------------------------------

  /// Every ordered pair sends `packets` (the paper's worked examples use 1).
  static TrafficMatrix uniform(std::size_t node_count, std::uint64_t packets);

  /// Gravity model: T_ij proportional to mass_i * mass_j with heavy-tailed
  /// (Pareto `alpha`) node masses, scaled so the mean entry is `mean`.
  static TrafficMatrix gravity(std::size_t node_count, double alpha,
                               std::uint64_t mean, util::Rng& rng);

  /// A few hotspot destinations receive almost all traffic.
  static TrafficMatrix hotspot(std::size_t node_count,
                               std::size_t hotspot_count,
                               std::uint64_t packets_per_source,
                               util::Rng& rng);

  /// Each ordered pair is active with probability `density`, sending a
  /// uniform packet count in [1, max_packets].
  static TrafficMatrix sparse_random(std::size_t node_count, double density,
                                     std::uint64_t max_packets,
                                     util::Rng& rng);

 private:
  std::size_t n_;
  std::vector<std::uint64_t> counts_;
};

}  // namespace fpss::payments
