#include "mechanism/vcg.h"

#include <optional>

#include "graph/analysis.h"
#include "util/contract.h"

namespace fpss::mechanism {

FeasibilityReport check_feasibility(const graph::Graph& g) {
  FeasibilityReport report;
  report.connected = graph::is_connected(g);
  report.monopolies = graph::articulation_points(g);
  report.feasible = report.connected && g.node_count() >= 3 &&
                    report.monopolies.empty();
  return report;
}

VcgMechanism::VcgMechanism(const graph::Graph& g, Engine engine,
                           unsigned threads)
    : graph_(g),
      pool_(threads > 1 ? std::make_unique<util::ThreadPool>(threads)
                        : nullptr),
      routes_(g, pool_.get()) {
  const std::size_t n = g.node_count();
  const auto build = [&](NodeId j) {
    const routing::SinkTree& tree = routes_.tree(j);
    return engine == Engine::kNaiveGroundTruth
               ? routing::AvoidanceTable::compute_naive(g, tree)
               : routing::AvoidanceTable::compute(g, tree);
  };
  avoidance_.reserve(n);
  if (pool_ == nullptr || n <= 1) {
    for (NodeId j = 0; j < n; ++j) avoidance_.push_back(build(j));
  } else {
    // Each destination is independent; workers fill disjoint slots.
    std::vector<std::optional<routing::AvoidanceTable>> tables(n);
    pool_->parallel_for(
        n, [&](std::size_t j) { tables[j] = build(static_cast<NodeId>(j)); });
    for (auto& table : tables) avoidance_.push_back(std::move(*table));
  }
  pool_.reset();  // workers are construction-scoped; don't idle for the
                  // lifetime of the mechanism
}

Cost VcgMechanism::price(NodeId k, NodeId i, NodeId j) const {
  FPSS_EXPECTS(graph_.contains(k) && graph_.contains(i) && graph_.contains(j));
  if (i == j || k == i || k == j) return Cost::zero();
  if (!routes_.is_transit(k, i, j)) return Cost::zero();
  const Cost avoiding = avoidance_[j].avoiding_cost(i, k);
  if (avoiding.is_infinite()) return Cost::infinity();  // monopoly
  // p = c_k + Cost(P_k) - c(i,j); Cost(P_k) >= c(i,j) because the LCP is a
  // minimum over a superset of paths, so the delta is non-negative.
  const Cost::rep delta = avoiding - routes_.cost(i, j);
  FPSS_ASSERT(delta >= 0);
  return cost_plus_delta(graph_.cost(k), delta);
}

Cost VcgMechanism::pair_payment(NodeId i, NodeId j) const {
  FPSS_EXPECTS(i != j);
  const graph::Path path = routes_.path(i, j);
  Cost total = Cost::zero();
  for (std::size_t t = 1; t + 1 < path.size(); ++t)
    total += price(path[t], i, j);
  return total;
}

payments::PriceFn VcgMechanism::price_fn() const {
  return [this](NodeId k, NodeId i, NodeId j) { return price(k, i, j); };
}

const routing::AvoidanceTable& VcgMechanism::avoidance(
    NodeId destination) const {
  FPSS_EXPECTS(destination < avoidance_.size());
  return avoidance_[destination];
}

}  // namespace fpss::mechanism
