// Negative controls for Theorem 1's uniqueness claim: plausible-looking
// pricing schemes that are NOT strategyproof. Theorem 1 says the VCG
// member is the *only* strategyproof scheme that pays nothing to nodes
// carrying no transit traffic; these alternatives let tests and benches
// demonstrate that the deviation harness actually catches manipulable
// schemes (and that the two temptations of footnote 1 are real).
#pragma once

#include "graph/graph.h"
#include "payments/ledger.h"
#include "payments/traffic.h"
#include "routing/all_pairs.h"
#include "util/cost.h"

namespace fpss::mechanism {

/// "Cost-plus" pricing: every transit node is paid its *declared* cost
/// times (1 + markup_percent/100) per packet. Routing still follows LCPs
/// of the declared costs. Overstating the cost raises the per-packet
/// margin until the traffic reroutes — a manipulable knob.
payments::PriceFn cost_plus_pricing(const graph::Graph& declared_graph,
                                    Cost::rep markup_percent);

/// Utility of node k under cost-plus pricing when everyone declares
/// `declared_graph`'s costs but k's true cost is `true_cost_k`.
Cost::rep cost_plus_utility(const graph::Graph& declared_graph, NodeId k,
                            Cost true_cost_k, Cost::rep markup_percent,
                            const payments::TrafficMatrix& traffic);

struct ManipulationWitness {
  bool found = false;
  Cost declared;        ///< the profitable lie
  Cost::rep truthful_utility = 0;
  Cost::rep lying_utility = 0;
  Cost::rep gain() const { return lying_utility - truthful_utility; }
};

/// Searches a declaration grid for a profitable lie by node k under
/// cost-plus pricing. Theorem 1 implies such a witness exists on
/// reasonable instances; the VCG sweep on the same instance finds none.
ManipulationWitness find_cost_plus_manipulation(
    const graph::Graph& g, NodeId k, Cost::rep markup_percent,
    const payments::TrafficMatrix& traffic);

}  // namespace fpss::mechanism
