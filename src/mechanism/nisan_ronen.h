// The comparator mechanism of Nisan-Ronen [NR99] / Hershberger-Suri [HS01]
// that the paper departs from (Sect. 1 & 2): a *centralized*, *single
// source-destination pair* LCP mechanism whose strategic agents are the
// *edges*. The payment to edge e on the LCP is
//
//   p_e = d_{G|e=inf} - d_{G|e=0}
//
// — the LCP cost with e deleted minus the LCP cost with e free. Building it
// from scratch lets bench E10 compare formulations (edges vs nodes,
// single-pair vs all-pairs, centralized vs distributed) on equal footing.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/cost.h"
#include "util/types.h"

namespace fpss::mechanism::nr {

/// Undirected graph with per-edge transmission costs (the NR99 model).
class EdgeGraph {
 public:
  explicit EdgeGraph(std::size_t node_count);

  std::size_t node_count() const { return adjacency_.size(); }
  std::size_t edge_count() const { return cost_.size(); }

  /// Adds edge {u, v} with the given cost; returns its index.
  std::size_t add_edge(NodeId u, NodeId v, Cost cost);

  Cost edge_cost(std::size_t e) const;
  void set_edge_cost(std::size_t e, Cost cost);
  std::pair<NodeId, NodeId> endpoints(std::size_t e) const;

  /// (edge index, other endpoint) pairs incident to v.
  const std::vector<std::pair<std::size_t, NodeId>>& incident(NodeId v) const;

  /// Lowest-cost x -> y path cost, optionally with one edge's cost
  /// overridden (pass override_edge == SIZE_MAX for none). An infinite
  /// override deletes the edge.
  Cost shortest_path_cost(NodeId x, NodeId y,
                          std::size_t override_edge = SIZE_MAX,
                          Cost override_cost = Cost::zero()) const;

  /// Edge indices of one lowest-cost x -> y path (ties broken
  /// deterministically); empty if unreachable.
  std::vector<std::size_t> shortest_path_edges(NodeId x, NodeId y) const;

 private:
  std::vector<Cost> cost_;
  std::vector<std::pair<NodeId, NodeId>> endpoints_;
  std::vector<std::vector<std::pair<std::size_t, NodeId>>> adjacency_;
};

struct EdgePayment {
  std::size_t edge = 0;
  Cost payment;  ///< infinite if the edge is a bridge (monopoly)
};

struct SinglePairResult {
  Cost lcp_cost;                        ///< d_G(x, y)
  std::vector<std::size_t> lcp_edges;   ///< edges of the selected LCP
  std::vector<EdgePayment> payments;    ///< one per LCP edge
};

/// Runs the NR99 mechanism for one (x, y) instance.
SinglePairResult single_pair_mechanism(const EdgeGraph& g, NodeId x, NodeId y);

/// Convenience: an edge-cost twin of a node-cost instance for head-to-head
/// benchmarks — same topology, each edge {u,v} priced (c_u + c_v + 1) / 2.
EdgeGraph edge_twin(const graph::Graph& node_graph);

}  // namespace fpss::mechanism::nr
