// The generalized cost model sketched in Sect. 3: "We could have a
// different cost depending on which neighbor k sends the packet to, in
// which case we would have a cost associated with each edge, as in the
// cost model of [12, 16]. (The strategic agents would still be the nodes,
// and hence the VCG mechanism we describe here would remain
// strategyproof.)"
//
// Node k's type is now a vector: one per-packet cost per outgoing link.
// A transit node on path ... -> k -> v -> ... incurs c_k(k->v), the cost
// of the link it forwards the packet on. This module provides the
// centralized mechanism for that model (the distributed algorithm is only
// claimed for the scalar model, so only the scalar one lives in
// fpss::pricing).
#pragma once

#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "graph/path.h"
#include "payments/traffic.h"
#include "util/cost.h"
#include "util/types.h"

namespace fpss::mechanism::edgecost {

/// Per-(node, outgoing link) transit costs over a topology.
class ExitCosts {
 public:
  explicit ExitCosts(const graph::Graph& topology);

  /// Cost node `from` incurs forwarding a transit packet to `to`.
  /// Precondition: the link exists.
  Cost cost(NodeId from, NodeId to) const;
  void set_cost(NodeId from, NodeId to, Cost c);

  /// Scales every exit cost of one node (a scalar deviation of its
  /// vector-valued type, used by the strategyproofness sweep):
  /// new = old * numerator / denominator.
  void scale_node(NodeId node, Cost::rep numerator, Cost::rep denominator);

  /// Initializes from the scalar model: every exit of k costs c_k.
  static ExitCosts from_node_costs(const graph::Graph& g);

  /// Random exit costs in [lo, hi].
  static ExitCosts random(const graph::Graph& g, Cost::rep lo, Cost::rep hi,
                          util::Rng& rng);

  const graph::Graph& topology() const { return *topology_; }

  /// Transit cost of a path under this model: each intermediate node pays
  /// its exit cost on the link it forwards over.
  Cost path_cost(const graph::Path& path) const;

 private:
  static std::uint64_t key(NodeId from, NodeId to) {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }

  const graph::Graph* topology_;
  std::unordered_map<std::uint64_t, Cost> cost_;
};

/// Lowest-cost path i -> j under the exit-cost model (ties: fewer hops,
/// then lexicographic next hop), optionally avoiding one node.
struct EdgeCostRoute {
  graph::Path path;  ///< empty if unreachable
  Cost cost = Cost::infinity();
};
EdgeCostRoute lowest_cost_route(const ExitCosts& costs, NodeId src, NodeId dst,
                                NodeId avoid = kInvalidNode);

/// VCG payment to transit node k for one i -> j packet in this model:
/// p^k_ij = c_k(exit used) + Cost(P_k) - Cost(P); zero off-path, infinite
/// when k is a monopoly for the pair.
Cost vcg_price(const ExitCosts& costs, NodeId k, NodeId i, NodeId j);

/// Utility of node k with true exit costs `truth` when routing/payment use
/// `declared` (all other nodes identical in both).
Cost::rep node_utility(const ExitCosts& declared, const ExitCosts& truth,
                       NodeId k, const payments::TrafficMatrix& traffic);

}  // namespace fpss::mechanism::edgecost
