#include "mechanism/strategyproof.h"

#include <algorithm>

#include "mechanism/vcg.h"
#include "util/contract.h"

namespace fpss::mechanism {

Cost::rep node_utility(const graph::Graph& declared_graph, NodeId k,
                       Cost true_cost_k,
                       const payments::TrafficMatrix& traffic) {
  FPSS_EXPECTS(declared_graph.contains(k));
  FPSS_EXPECTS(true_cost_k.is_finite());
  const VcgMechanism mech(declared_graph);
  Cost::rep utility = 0;
  const std::size_t n = declared_graph.node_count();
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) {
      if (i == j || i == k || j == k) continue;
      const std::uint64_t packets = traffic.at(i, j);
      if (packets == 0 || !mech.routes().is_transit(k, i, j)) continue;
      const Cost p = mech.price(k, i, j);
      FPSS_EXPECTS(p.is_finite());  // requires biconnectivity
      utility += static_cast<Cost::rep>(packets) *
                 (p.value() - true_cost_k.value());
    }
  }
  return utility;
}

Cost::rep DeviationSweep::max_gain() const {
  Cost::rep best = 0;
  for (const Deviation& dev : deviations) best = std::max(best, dev.gain);
  return best;
}

DeviationSweep sweep_deviations(const graph::Graph& g, NodeId k,
                                const payments::TrafficMatrix& traffic,
                                const std::vector<Cost>& candidates) {
  FPSS_EXPECTS(g.contains(k));
  DeviationSweep sweep;
  sweep.node = k;
  sweep.truthful_cost = g.cost(k);
  sweep.truthful_utility = node_utility(g, k, g.cost(k), traffic);

  graph::Graph declared = g;
  for (Cost lie : candidates) {
    if (lie == sweep.truthful_cost) continue;
    declared.set_cost(k, lie);
    Deviation dev;
    dev.declared = lie;
    dev.utility = node_utility(declared, k, sweep.truthful_cost, traffic);
    dev.gain = dev.utility - sweep.truthful_utility;
    sweep.deviations.push_back(dev);
  }
  return sweep;
}

std::vector<Cost> default_deviation_grid(Cost true_cost) {
  FPSS_EXPECTS(true_cost.is_finite());
  const Cost::rep c = true_cost.value();
  std::vector<Cost::rep> values = {
      0,     c / 2,  c > 0 ? c - 1 : 0, c + 1, c + 5,
      2 * c, 4 * c,  10 * c + 7,        1000 * (c + 1)};
  std::vector<Cost> grid;
  for (Cost::rep v : values) {
    const Cost candidate{std::min(v, Cost::kMaxFinite / 1024)};
    if (std::find(grid.begin(), grid.end(), candidate) == grid.end() &&
        candidate != true_cost)
      grid.push_back(candidate);
  }
  return grid;
}

}  // namespace fpss::mechanism
