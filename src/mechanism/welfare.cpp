#include "mechanism/welfare.h"

#include <algorithm>

#include "graph/path.h"
#include "util/contract.h"

namespace fpss::mechanism {

Cost::rep total_cost(const graph::Graph& true_costs_graph,
                     const routing::AllPairsRoutes& routes,
                     const payments::TrafficMatrix& traffic) {
  const std::size_t n = true_costs_graph.node_count();
  FPSS_EXPECTS(routes.node_count() == n && traffic.node_count() == n);
  Cost::rep total = 0;
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) {
      if (i == j) continue;
      const std::uint64_t packets = traffic.at(i, j);
      if (packets == 0) continue;
      const graph::Path path = routes.path(i, j);
      const Cost path_cost = graph::transit_cost(true_costs_graph, path);
      total += static_cast<Cost::rep>(packets) * path_cost.value();
    }
  }
  return total;
}

Cost::rep welfare_loss_of_lie(const graph::Graph& g, NodeId k, Cost lie,
                              const payments::TrafficMatrix& traffic) {
  const routing::AllPairsRoutes truthful_routes(g);
  graph::Graph declared = g;
  declared.set_cost(k, lie);
  const routing::AllPairsRoutes lying_routes(declared);
  const Cost::rep loss = total_cost(g, lying_routes, traffic) -
                         total_cost(g, truthful_routes, traffic);
  FPSS_ENSURES(loss >= 0);  // LCP routing under truth minimizes V
  return loss;
}

OverchargeReport measure_overcharge(const VcgMechanism& mech,
                                    const payments::TrafficMatrix& traffic) {
  OverchargeReport report;
  const std::size_t n = mech.routes().node_count();
  FPSS_EXPECTS(traffic.node_count() == n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) {
      if (i == j) continue;
      const std::uint64_t packets = traffic.at(i, j);
      if (packets == 0) continue;
      const Cost payment = mech.pair_payment(i, j);
      const Cost lcp_cost = mech.routes().cost(i, j);
      FPSS_EXPECTS(payment.is_finite() && lcp_cost.is_finite());
      report.total_payment +=
          static_cast<Cost::rep>(packets) * payment.value();
      report.total_true_cost +=
          static_cast<Cost::rep>(packets) * lcp_cost.value();
      if (lcp_cost.value() > 0) {
        const double ratio = static_cast<double>(payment.value()) /
                             static_cast<double>(lcp_cost.value());
        report.pair_ratio.add(ratio);
        report.worst_ratio = std::max(report.worst_ratio, ratio);
      }
    }
  }
  return report;
}

}  // namespace fpss::mechanism
