// The pricing mechanism of Sect. 4 (Theorem 1): the unique strategyproof
// payment scheme, within the class that pays nothing to nodes carrying no
// transit traffic, for lowest-cost interdomain routing with node agents.
//
//   p^k_ij = c_k * I_k(c;i,j) + [ sum_r I_r(c^{-k};i,j) c_r
//                                 - sum_r I_r(c;i,j) c_r ]
//          = c_k + Cost(P_k(c;i,j)) - c(i,j)      when k is on the LCP,
//          = 0                                     otherwise.
//
// This is the centralized reference implementation; `fpss::pricing`
// computes the same numbers with the BGP-based distributed algorithm.
#pragma once

#include <memory>
#include <vector>

#include "graph/graph.h"
#include "payments/ledger.h"
#include "routing/all_pairs.h"
#include "routing/replacement.h"
#include "util/cost.h"
#include "util/thread_pool.h"
#include "util/types.h"

namespace fpss::mechanism {

/// Theorem 1 requires biconnectivity: a monopoly transit node makes the
/// k-avoiding path — and hence the payment — undefined (Sect. 4).
struct FeasibilityReport {
  bool feasible = false;
  bool connected = false;
  /// Articulation points: each is a potential monopolist.
  std::vector<NodeId> monopolies;
};

FeasibilityReport check_feasibility(const graph::Graph& g);

/// All-pairs VCG routes and prices, computed centrally.
class VcgMechanism {
 public:
  enum class Engine {
    kNaiveGroundTruth,  ///< one avoid-k Dijkstra per (destination, k)
    kSubtree,           ///< Hershberger-Suri-style subtree engine
  };

  /// Computes routes and all per-packet prices for graph `g` under its
  /// declared costs. Works on any connected graph; prices that would be
  /// undefined by a monopoly come back infinite (use check_feasibility to
  /// reject such inputs up front).
  ///
  /// With `threads > 1` the per-destination work (sink tree + avoidance
  /// table — independent across destinations) is fanned out over a
  /// deterministic-partition thread pool; the result is bit-identical to
  /// the serial construction for either engine. The pool lives only for
  /// the duration of the constructor.
  explicit VcgMechanism(const graph::Graph& g,
                        Engine engine = Engine::kSubtree,
                        unsigned threads = 1);

  const routing::AllPairsRoutes& routes() const { return routes_; }

  /// Per-packet price p^k_ij paid to node k for an i -> j packet. Zero when
  /// k is not an intermediate node of the selected i -> j path; infinite
  /// when k is a monopoly for the pair (non-biconnected input).
  Cost price(NodeId k, NodeId i, NodeId j) const;

  /// sum_k p^k_ij: the total per-packet amount a sender's side pays for the
  /// pair — the quantity whose excess over c(i, j) is the paper's
  /// "overcharging" (Sect. 4 & 7).
  Cost pair_payment(NodeId i, NodeId j) const;

  /// Adapter for the payments layer.
  payments::PriceFn price_fn() const;

  /// k-avoiding tables, exposed for tests and the distributed comparison.
  const routing::AvoidanceTable& avoidance(NodeId destination) const;

 private:
  graph::Graph graph_;
  /// Construction-time pool; non-null only inside the constructor. Declared
  /// before routes_ so the member-init order lets routes_ share it.
  std::unique_ptr<util::ThreadPool> pool_;
  routing::AllPairsRoutes routes_;
  std::vector<routing::AvoidanceTable> avoidance_;
};

}  // namespace fpss::mechanism
