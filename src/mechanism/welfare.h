// Welfare accounting (Sect. 3) and the overcharging analysis (Sect. 4 & 7).
//
// V(c) = sum_k u_k(c) = sum_ij T_ij * (true transit cost of the route used)
// is minimized exactly when routes are LCPs under the true costs; lying
// shifts routes and raises V. Overcharging: VCG payments to a path's nodes
// can exceed the path's true cost substantially (the Y->Z example pays 9
// for a cost-1 path).
#pragma once

#include <cstdint>

#include "graph/graph.h"
#include "mechanism/vcg.h"
#include "payments/traffic.h"
#include "routing/all_pairs.h"
#include "util/cost.h"
#include "util/summary.h"

namespace fpss::mechanism {

/// Total cost to society V of sending `traffic` along `routes`, where the
/// per-node costs are taken from `true_costs_graph` (routes may have been
/// computed under *declared* costs — that mismatch is the point).
Cost::rep total_cost(const graph::Graph& true_costs_graph,
                     const routing::AllPairsRoutes& routes,
                     const payments::TrafficMatrix& traffic);

/// Welfare loss caused by node k declaring `lie` instead of its true cost,
/// with everyone else truthful: V(routes under lie) - V(routes under truth),
/// both evaluated at true costs. Non-negative by optimality of LCPs.
Cost::rep welfare_loss_of_lie(const graph::Graph& g, NodeId k, Cost lie,
                              const payments::TrafficMatrix& traffic);

struct OverchargeReport {
  Cost::rep total_payment = 0;   ///< sum_ij T_ij * sum_k p^k_ij
  Cost::rep total_true_cost = 0; ///< sum_ij T_ij * c(i,j)
  util::Summary pair_ratio;      ///< per-pair payment / cost (cost > 0 pairs)
  double worst_ratio = 1.0;

  double aggregate_ratio() const {
    return total_true_cost == 0
               ? 1.0
               : static_cast<double>(total_payment) /
                     static_cast<double>(total_true_cost);
  }
};

/// Compares VCG payments with true LCP costs for every traffic-carrying
/// pair. Precondition: biconnected input (finite prices).
OverchargeReport measure_overcharge(const VcgMechanism& mech,
                                    const payments::TrafficMatrix& traffic);

}  // namespace fpss::mechanism
