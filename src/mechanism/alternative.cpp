#include "mechanism/alternative.h"

#include "mechanism/strategyproof.h"
#include "util/contract.h"

namespace fpss::mechanism {

payments::PriceFn cost_plus_pricing(const graph::Graph& declared_graph,
                                    Cost::rep markup_percent) {
  FPSS_EXPECTS(markup_percent >= 0);
  // Copy the graph into the closure: prices must reflect the declared
  // profile they were computed for.
  return [g = declared_graph, markup_percent](NodeId k, NodeId i,
                                              NodeId j) -> Cost {
    (void)i;
    (void)j;
    const Cost::rep c = g.cost(k).value();
    return Cost{c + c * markup_percent / 100};
  };
}

Cost::rep cost_plus_utility(const graph::Graph& declared_graph, NodeId k,
                            Cost true_cost_k, Cost::rep markup_percent,
                            const payments::TrafficMatrix& traffic) {
  FPSS_EXPECTS(declared_graph.contains(k));
  const routing::AllPairsRoutes routes(declared_graph);
  const payments::PriceFn price =
      cost_plus_pricing(declared_graph, markup_percent);
  Cost::rep utility = 0;
  const std::size_t n = declared_graph.node_count();
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) {
      if (i == j || i == k || j == k) continue;
      const std::uint64_t packets = traffic.at(i, j);
      if (packets == 0 || !routes.is_transit(k, i, j)) continue;
      utility += static_cast<Cost::rep>(packets) *
                 (price(k, i, j).value() - true_cost_k.value());
    }
  }
  return utility;
}

ManipulationWitness find_cost_plus_manipulation(
    const graph::Graph& g, NodeId k, Cost::rep markup_percent,
    const payments::TrafficMatrix& traffic) {
  ManipulationWitness witness;
  witness.truthful_utility =
      cost_plus_utility(g, k, g.cost(k), markup_percent, traffic);

  graph::Graph declared = g;
  for (Cost lie : default_deviation_grid(g.cost(k))) {
    declared.set_cost(k, lie);
    const Cost::rep utility =
        cost_plus_utility(declared, k, g.cost(k), markup_percent, traffic);
    if (utility > witness.truthful_utility &&
        (!witness.found || utility > witness.lying_utility)) {
      witness.found = true;
      witness.declared = lie;
      witness.lying_utility = utility;
    }
  }
  return witness;
}

}  // namespace fpss::mechanism
