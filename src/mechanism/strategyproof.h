// Empirical strategyproofness harness for Theorem 1.
//
// An AS plays the game by declaring a transit cost; its utility is
// tau_k(c) = p_k - c^true_k * (transit packets carried). Theorem 1 says
// truth-telling is dominant: for every false declaration x,
// tau_k(c|^k truth) >= tau_k(c|^k x). The harness recomputes routes and
// payments under deviating declarations (footnote 1's two temptations —
// understate to attract traffic, overstate to inflate the price — both
// appear in the sweep) and verifies the inequality.
#pragma once

#include <vector>

#include "graph/graph.h"
#include "payments/traffic.h"
#include "util/cost.h"
#include "util/types.h"

namespace fpss::mechanism {

/// Utility tau_k of node k when all nodes declare `declared` costs but k's
/// true cost is `true_cost_k`: VCG payment under the declared profile minus
/// true incurred cost on the traffic routed through k.
/// Precondition: declared graph connected; biconnected for finite answers.
Cost::rep node_utility(const graph::Graph& declared_graph, NodeId k,
                       Cost true_cost_k,
                       const payments::TrafficMatrix& traffic);

struct Deviation {
  Cost declared;           ///< the lie
  Cost::rep utility = 0;   ///< tau_k under the lie
  Cost::rep gain = 0;      ///< utility - truthful utility (<= 0 iff SP holds)
};

struct DeviationSweep {
  NodeId node = kInvalidNode;
  Cost truthful_cost;
  Cost::rep truthful_utility = 0;
  std::vector<Deviation> deviations;

  /// Largest gain over all tried lies; strategyproofness <=> max_gain <= 0.
  Cost::rep max_gain() const;
  bool strategyproof() const { return max_gain() <= 0; }
};

/// Sweeps node k's declaration over `candidates` (each !=
/// its true cost is fine to include; it is skipped) with every other node
/// truthful, and reports the utility of each lie. `g` carries the true
/// costs.
DeviationSweep sweep_deviations(const graph::Graph& g, NodeId k,
                                const payments::TrafficMatrix& traffic,
                                const std::vector<Cost>& candidates);

/// A default candidate grid around the true cost: zero, halves, small
/// offsets, multiples, and a "nearly opt out" huge declaration.
std::vector<Cost> default_deviation_grid(Cost true_cost);

}  // namespace fpss::mechanism
